// Outlier robustness: reproduces the paper's Figure-1 story end to end.
//
// The history between an OD pair contains mostly direct 15-minute-style
// trips plus a minority of long detours. A history-averaging oracle (TEMP)
// is pulled toward the detours; DOT's diffusion stage infers the *typical*
// route and prices accordingly. We measure both oracles on non-outlier test
// trips as the outlier rate in the training history grows.

#include <cstdio>

#include "baselines/temp.h"
#include "core/dot_oracle.h"
#include "eval/metrics.h"

using namespace dot;

namespace {

double EvalOnNormalTrips(const std::vector<TripSample>& test,
                         const std::function<double(const OdtInput&)>& oracle) {
  MetricsAccumulator acc;
  for (const auto& t : test) {
    if (t.is_outlier) continue;  // judge against typical trips, as in Fig. 1
    acc.Add(oracle(t.odt), t.travel_time_minutes);
  }
  return acc.Finalize().mae;
}

}  // namespace

int main() {
  CityConfig city_cfg = CityConfig::ChengduLike();
  city_cfg.grid_nodes = 10;
  city_cfg.spacing_meters = 1100;
  City city(city_cfg, 41);

  std::printf("outlier rate | TEMP MAE | DOT MAE (minutes, non-outlier test "
              "trips)\n");
  for (double rate : {0.05, 0.20}) {
    TripConfig trip_cfg = TripConfig::ChengduLike();
    trip_cfg.num_trips = 1000;
    trip_cfg.outlier_prob = rate;
    BenchmarkDataset dataset =
        BuildDataset(city, trip_cfg, 43, "outliers");
    Grid grid = dataset.MakeGrid(12).ValueOrDie();

    TempOracle temp;
    if (!temp.Train(dataset.split.train, dataset.split.val).ok()) return 1;

    DotConfig cfg;
    cfg.grid_size = 12;
    cfg.diffusion_steps = 100;
    cfg.sample_steps = 10;
    cfg.unet.base_channels = 12;
    cfg.unet.levels = 2;
    cfg.stage1_epochs = 5;
    cfg.stage2_epochs = 6;
    DotOracle oracle(cfg, grid);
    if (!oracle.TrainStage1(dataset.split.train).ok()) return 1;
    if (!oracle.TrainStage2(dataset.split.train, dataset.split.val).ok()) return 1;

    // Batch DOT predictions for the non-outlier test set.
    std::vector<const TripSample*> normal;
    std::vector<OdtInput> odts;
    for (const auto& t : dataset.split.test) {
      if (!t.is_outlier && normal.size() < 60) {
        normal.push_back(&t);
        odts.push_back(t.odt);
      }
    }
    std::vector<double> dot_minutes =
        oracle.EstimateFromPits(oracle.InferPits(odts), odts);
    MetricsAccumulator dot_acc;
    for (size_t i = 0; i < normal.size(); ++i) {
      dot_acc.Add(dot_minutes[i], normal[i]->travel_time_minutes);
    }

    std::vector<TripSample> capped(dataset.split.test.begin(),
                                   dataset.split.test.end());
    double temp_mae = EvalOnNormalTrips(
        capped, [&](const OdtInput& odt) { return temp.EstimateMinutes(odt); });
    std::printf("     %4.0f%%   |  %6.2f  |  %6.2f\n", rate * 100, temp_mae,
                dot_acc.Finalize().mae);
  }
  std::printf("\nTEMP degrades as detours pollute the history; DOT's inferred\n"
              "PiT stays on the typical route (the Fig. 1 phenomenon).\n");
  return 0;
}
