// Quickstart: build a synthetic city, train a small DOT oracle, and answer
// one origin-destination travel-time query.
//
//   $ ./build/examples/quickstart
//
// The configuration here is deliberately tiny so the example finishes in
// about a minute on one CPU core; see bench/ for the paper-scale runs.

#include <cstdio>

#include "core/dot_oracle.h"
#include "eval/metrics.h"

using namespace dot;

int main() {
  // 1) Data. Real deployments load historical GPS trajectories; here the
  // bundled simulator produces a Chengdu-like taxi dataset (see DESIGN.md).
  CityConfig city_cfg = CityConfig::ChengduLike();
  city_cfg.grid_nodes = 10;  // small city for the quickstart
  city_cfg.spacing_meters = 1100;
  City city(city_cfg, /*seed=*/7);
  TripConfig trip_cfg = TripConfig::ChengduLike();
  trip_cfg.num_trips = 800;
  BenchmarkDataset dataset = BuildDataset(city, trip_cfg, /*seed=*/13, "quickstart");
  std::printf("dataset: %zu train / %zu val / %zu test trips\n",
              dataset.split.train.size(), dataset.split.val.size(),
              dataset.split.test.size());

  // 2) Oracle. The two-stage DOT model: a conditioned diffusion model that
  // infers the Pixelated Trajectory (PiT) of a future trip, and a Masked
  // Vision Transformer that turns the PiT into a travel time.
  DotConfig cfg;
  cfg.grid_size = 12;
  cfg.diffusion_steps = 100;
  cfg.sample_steps = 10;
  cfg.unet.base_channels = 12;
  cfg.unet.levels = 2;
  cfg.stage1_epochs = 4;
  cfg.stage2_epochs = 6;
  cfg.verbose = true;
  Grid grid = dataset.MakeGrid(cfg.grid_size).ValueOrDie();
  DotOracle oracle(cfg, grid);

  Status s = oracle.TrainStage1(dataset.split.train);
  if (!s.ok()) {
    std::fprintf(stderr, "stage 1 failed: %s\n", s.ToString().c_str());
    return 1;
  }
  s = oracle.TrainStage2(dataset.split.train, dataset.split.val);
  if (!s.ok()) {
    std::fprintf(stderr, "stage 2 failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3) Query: where is the taxi going, and how long will it take?
  const TripSample& sample = dataset.split.test.front();
  Result<DotEstimate> estimate = oracle.Estimate(sample.odt);
  if (!estimate.ok()) {
    std::fprintf(stderr, "query failed: %s\n", estimate.status().ToString().c_str());
    return 1;
  }
  std::printf("\nquery: (%.4f, %.4f) -> (%.4f, %.4f), depart %lld\n",
              sample.odt.origin.lng, sample.odt.origin.lat,
              sample.odt.destination.lng, sample.odt.destination.lat,
              static_cast<long long>(sample.odt.departure_time));
  std::printf("estimated travel time: %.1f min (actual: %.1f min)\n",
              estimate->minutes, sample.travel_time_minutes);
  std::printf("inferred route (PiT mask channel):\n%s",
              estimate->pit.RenderMask().c_str());

  // 4) Accuracy over a few test queries.
  MetricsAccumulator acc;
  for (size_t i = 0; i < std::min<size_t>(dataset.split.test.size(), 40); ++i) {
    const TripSample& t = dataset.split.test[i];
    Result<DotEstimate> e = oracle.Estimate(t.odt);
    if (e.ok()) acc.Add(e->minutes, t.travel_time_minutes);
  }
  RegressionMetrics m = acc.Finalize();
  std::printf("\ntest metrics over %lld queries: RMSE %.2f min, MAE %.2f min, "
              "MAPE %.1f%%\n",
              static_cast<long long>(m.count), m.rmse, m.mae, m.mape);
  return 0;
}
