// Fleet pricing: the paper's motivating flex-transport scenario (Sec. 1).
//
// A public entity pays a taxi company per trip based on *estimated* travel
// time — the driver is free to choose any path, so the price must come from
// an ODT-Oracle, and outlier detours in the history must not inflate it.
// This example prices a day of trips with three oracles and compares the
// total payout error:
//   * TEMP        — history averaging (outlier-sensitive),
//   * GBM         — regression on query features,
//   * DOT         — the diffusion-based oracle.

#include <cstdio>

#include "baselines/regression.h"
#include "baselines/temp.h"
#include "core/dot_oracle.h"
#include "eval/metrics.h"

using namespace dot;

int main() {
  // A compact city with a high outlier rate to stress outlier robustness.
  CityConfig city_cfg = CityConfig::ChengduLike();
  city_cfg.grid_nodes = 10;
  city_cfg.spacing_meters = 1100;
  City city(city_cfg, 21);
  TripConfig trip_cfg = TripConfig::ChengduLike();
  trip_cfg.num_trips = 1200;
  trip_cfg.outlier_prob = 0.15;  // noisy history
  BenchmarkDataset dataset = BuildDataset(city, trip_cfg, 23, "pricing");
  Grid grid = dataset.MakeGrid(12).ValueOrDie();

  const double kEurPerMinute = 0.9;  // flex-transport tariff

  // --- TEMP and GBM ---
  TempOracle temp;
  if (!temp.Train(dataset.split.train, dataset.split.val).ok()) return 1;
  GbmOracle gbm(grid);
  if (!gbm.Train(dataset.split.train, dataset.split.val).ok()) return 1;

  // --- DOT ---
  DotConfig cfg;
  cfg.grid_size = 12;
  cfg.diffusion_steps = 100;
  cfg.sample_steps = 10;
  cfg.unet.base_channels = 12;
  cfg.unet.levels = 2;
  cfg.stage1_epochs = 5;
  cfg.stage2_epochs = 6;
  DotOracle oracle(cfg, grid);
  if (!oracle.TrainStage1(dataset.split.train).ok()) return 1;
  if (!oracle.TrainStage2(dataset.split.train, dataset.split.val).ok()) return 1;

  // Price the test day. The fair payout uses the realized travel times.
  size_t n = std::min<size_t>(dataset.split.test.size(), 60);
  double fair = 0, paid_temp = 0, paid_gbm = 0, paid_dot = 0;
  MetricsAccumulator acc_temp, acc_gbm, acc_dot;
  std::vector<OdtInput> odts;
  for (size_t i = 0; i < n; ++i) odts.push_back(dataset.split.test[i].odt);
  std::vector<Pit> pits = oracle.InferPits(odts);
  std::vector<double> dot_minutes = oracle.EstimateFromPits(pits, odts);
  for (size_t i = 0; i < n; ++i) {
    const TripSample& t = dataset.split.test[i];
    double actual = t.travel_time_minutes;
    double m_temp = temp.EstimateMinutes(t.odt);
    double m_gbm = gbm.EstimateMinutes(t.odt);
    fair += actual * kEurPerMinute;
    paid_temp += m_temp * kEurPerMinute;
    paid_gbm += m_gbm * kEurPerMinute;
    paid_dot += dot_minutes[i] * kEurPerMinute;
    acc_temp.Add(m_temp, actual);
    acc_gbm.Add(m_gbm, actual);
    acc_dot.Add(dot_minutes[i], actual);
  }

  std::printf("priced %zu trips; fair payout %.2f EUR\n\n", n, fair);
  auto report = [&](const char* name, double paid, const MetricsAccumulator& acc) {
    RegressionMetrics m = acc.Finalize();
    std::printf("%-6s payout %8.2f EUR (%+6.2f) | per-trip MAE %.2f min, "
                "MAPE %.1f%%\n",
                name, paid, paid - fair, m.mae, m.mape);
  };
  report("TEMP", paid_temp, acc_temp);
  report("GBM", paid_gbm, acc_gbm);
  report("DOT", paid_dot, acc_dot);
  std::printf("\nA lower per-trip error means fairer per-trip prices; the\n"
              "aggregate payout gap shows who absorbs the estimation bias.\n");
  return 0;
}
