// Explainability: the ODT-Oracle does not just return a number — it infers
// the most plausible route as a Pixelated Trajectory (paper Sec. 6.6).
// This example trains a small oracle and shows:
//   1. the inferred route for one query, next to historically driven routes;
//   2. how the inferred route and travel time change across the day
//      (off-peak vs rush hour), driven by the ToD condition.

#include <cstdio>

#include "core/dot_oracle.h"

using namespace dot;

namespace {

void ShowPit(const char* title, const Pit& pit) {
  std::printf("%s\n%s", title, pit.RenderMask().c_str());
}

}  // namespace

int main() {
  CityConfig city_cfg = CityConfig::ChengduLike();
  city_cfg.grid_nodes = 10;
  city_cfg.spacing_meters = 1100;
  City city(city_cfg, 31);
  TripConfig trip_cfg = TripConfig::ChengduLike();
  trip_cfg.num_trips = 1000;
  BenchmarkDataset dataset = BuildDataset(city, trip_cfg, 37, "explain");
  Grid grid = dataset.MakeGrid(12).ValueOrDie();

  DotConfig cfg;
  cfg.grid_size = 12;
  cfg.diffusion_steps = 100;
  cfg.sample_steps = 12;
  cfg.unet.base_channels = 12;
  cfg.unet.levels = 2;
  cfg.stage1_epochs = 5;
  cfg.stage2_epochs = 6;
  DotOracle oracle(cfg, grid);
  if (!oracle.TrainStage1(dataset.split.train).ok()) return 1;
  if (!oracle.TrainStage2(dataset.split.train, dataset.split.val).ok()) return 1;

  // 1) Route explanation for one test query.
  const TripSample& sample = dataset.split.test.front();
  Result<DotEstimate> est = oracle.Estimate(sample.odt);
  if (!est.ok()) return 1;
  ShowPit("actually driven route (ground truth):",
          oracle.GroundTruthPit(sample.trajectory));
  ShowPit("route the oracle expects (inferred PiT):", est->pit);
  std::printf("estimate %.1f min, actual %.1f min\n\n", est->minutes,
              sample.travel_time_minutes);

  // 2) Departure-time sensitivity: query the same OD across the day.
  std::printf("same OD pair queried across the day:\n");
  int64_t day_start =
      sample.odt.departure_time - SecondsOfDay(sample.odt.departure_time);
  std::vector<OdtInput> odts;
  std::vector<int64_t> hours = {3, 8, 13, 18, 22};
  for (int64_t h : hours) {
    OdtInput odt = sample.odt;
    odt.departure_time = day_start + h * 3600;
    odts.push_back(odt);
  }
  std::vector<Pit> pits = oracle.InferPits(odts);
  std::vector<double> minutes = oracle.EstimateFromPits(pits, odts);
  for (size_t i = 0; i < hours.size(); ++i) {
    std::printf("  depart %02lld:00 -> %.1f min (route covers %lld cells)\n",
                static_cast<long long>(hours[i]), minutes[i],
                static_cast<long long>(pits[i].NumVisited()));
  }
  std::printf("\nrush-hour queries should show longer times; the inferred\n"
              "PiT exposes *why*: the expected route and its pace changed.\n");
  return 0;
}
