#!/bin/bash
# Observability / concurrency / robustness gate:
#   1. builds the tree with ThreadSanitizer (-DDOT_SANITIZE=thread) — the
#      sharded counters, trace recorder and service cache are all hit from
#      multiple threads in the tier-1 suite, so data races surface here;
#   2. runs the fast (tier1) ctest suite under that build;
#   3. re-runs obs_test with DOT_METRICS_TEXT set and lints the Prometheus
#      text export: every line must be a comment (# HELP / # TYPE) or a
#      `name{labels} value` sample with a legal metric name and a finite
#      or +Inf number; the fault-tolerance counters (serving degradation,
#      retries, training rollbacks) must be present in the dump;
#   4. builds again with ASan+UBSan (-DDOT_SANITIZE=address,undefined) and
#      runs tier1 plus the robustness suite — the failpoint-driven failure
#      paths (torn writes, NaN losses, degraded serving) run under both
#      sanitizers so the error paths themselves are memory/UB clean;
#   5. smoke-tests DOT_FAILPOINTS environment arming end to end;
#   6. kernel test matrix: re-runs tier1 + the differential GEMM harness
#      under DOT_GEMM_KERNEL=naive, blocked, and simd on the ASan+UBSan
#      build (simd degrades to blocked gracefully on CPUs without AVX2+FMA,
#      and the simd-only differential cases GTEST_SKIP themselves);
#   7. storage-pool matrix on the ASan+UBSan build: tier1 + the alias/pool
#      suite with the pool ON and poison-on-return active (reads of
#      recycled-but-unwritten buffers surface as NaNs), then once with
#      DOT_TENSOR_POOL=off so every recycling path also runs as plain
#      heap alloc/free under ASan;
#   8. serving front-end gate: the wire-protocol fuzzing and fake-clock
#      batcher suites under ASan+UBSan, the multi-client socket stress
#      under TSan, and a loopback e2e smoke (dot_server binary + the
#      load-gen client, SIGTERM, graceful-drain check);
#   9. observability plane gate: the rolling-window / slow-ring / gauge
#      suites under TSan (lock-free record paths are cross-thread), then a
#      live admin-plane smoke against the dot_server binary — /healthz,
#      /metrics (same lint as stage 3, plus the inflight gauge and windowed
#      percentiles), /varz, /slowz, /tracez, a SIGUSR1 stderr stats dump,
#      and the /readyz ready->draining flip during the SIGTERM lame-duck;
#  10. sharded-oracle chaos gate: the chaos harness (crash/NaN/delay
#      injection into shards, quarantine + probe recovery, mid-load hot
#      swaps) under TSan, then a loopback shard-kill smoke — dot_server
#      with 3 shards and a failpoint-killed shard must quarantine it,
#      keep answering, recover it after the fault clears, hot-swap every
#      shard via POST /swapz, export well-formed per-shard labeled
#      metrics, and drain with lost=0;
#  11. int8 quantized-path gate (DESIGN.md §5j): the full tier1 suite plus
#      the quantization-primitive tests and the differential GEMM wall run
#      under ASan+UBSan for DOT_GEMM_PRECISION=fp32 and =int8 across every
#      DOT_GEMM_KERNEL (the int8 packing/microkernel/dequant code paths are
#      all sanitizer-exercised), then a loopback dot_server smoke with
#      DOT_GEMM_PRECISION=int8 whose /metrics export must carry live
#      dot_gemm_quant_* series (the quantized path actually served, the
#      weight cache engaged) and still pass the Prometheus lint;
#  12. continual adaptation gate (DESIGN.md §5k): the trainer-parity and
#      adaptation suites (uncertainty deciles, fine-tune guards) under
#      ASan+UBSan, the fine-tune -> re-seal -> hot-swap chaos case under
#      TSan (the fleet serves while the round publishes), then a live
#      dot_server smoke: POST /adaptz fine-tunes on the incident window
#      and must publish a version bump to every shard, /metrics must carry
#      the labeled dot_train_*{stage=stage1|stage2|finetune} series and
#      still pass the Prometheus lint, SIGHUP must hot-swap once more,
#      and the SIGTERM drain must report lost=0.
# Usage: scripts/check.sh [build_dir] [asan_build_dir]
#   (defaults: build-tsan build-asan)
set -u
cd "$(dirname "$0")/.."
BUILD=${1:-build-tsan}
BUILD_ASAN=${2:-build-asan}
FAILED=0

echo "== configure + build ($BUILD, -DDOT_SANITIZE=thread) =="
cmake -B "$BUILD" -S . -DDOT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  || exit 1
cmake --build "$BUILD" -j || exit 1

echo "== tier1 tests under tsan =="
if ! ctest --test-dir "$BUILD" -L tier1 --output-on-failure -j; then
  echo "CHECK FAILED: tier1 tests"
  FAILED=1
fi

echo "== metrics text export lint =="
METRICS_TXT=$(mktemp)
trap 'rm -f "$METRICS_TXT"' EXIT
if ! DOT_METRICS_TEXT="$METRICS_TXT" "$BUILD"/tests/obs_test \
    --gtest_filter='MetricsRegistryTest.PrometheusExportIsWellFormed' \
    > /dev/null; then
  echo "CHECK FAILED: obs_test export run"
  FAILED=1
fi
if [ ! -s "$METRICS_TXT" ]; then
  echo "CHECK FAILED: metrics text export is empty"
  FAILED=1
fi
# A line is well-formed iff it is a '#' comment or: a metric name in
# [a-zA-Z_:][a-zA-Z0-9_:]* with an optional {label="..."} set, one space,
# and one numeric value (scientific notation, +Inf and NaN allowed).
BAD=$(grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN))$' \
  "$METRICS_TXT")
if [ -n "$BAD" ]; then
  echo "CHECK FAILED: malformed metrics export lines:"
  echo "$BAD"
  FAILED=1
fi
# The fault-tolerance counters must make it through the registry and into the
# export (satellite of the degradation-ladder work): one labeled series per
# degradation level plus the retry and training-rollback totals.
for METRIC in 'dot_serving_degraded_total\{level="[a-z_]+"\}' \
              dot_serving_retries_total \
              'dot_train_rollbacks_total\{stage="[a-z0-9]+"\}'; do
  if ! grep -qE "^${METRIC} " "$METRICS_TXT"; then
    echo "CHECK FAILED: metrics export is missing ${METRIC}"
    FAILED=1
  fi
done

echo "== configure + build ($BUILD_ASAN, -DDOT_SANITIZE=address,undefined) =="
cmake -B "$BUILD_ASAN" -S . -DDOT_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo || exit 1
cmake --build "$BUILD_ASAN" -j || exit 1

echo "== tier1 tests under asan+ubsan =="
if ! ctest --test-dir "$BUILD_ASAN" -L tier1 --output-on-failure -j; then
  echo "CHECK FAILED: tier1 tests (asan+ubsan)"
  FAILED=1
fi

echo "== robustness suite under asan+ubsan =="
if ! "$BUILD_ASAN"/tests/robustness_test > /dev/null; then
  echo "CHECK FAILED: robustness_test (asan+ubsan)"
  FAILED=1
fi

echo "== GEMM kernel test matrix under asan+ubsan =="
for KERNEL in naive blocked simd; do
  echo "-- DOT_GEMM_KERNEL=$KERNEL --"
  if ! DOT_GEMM_KERNEL="$KERNEL" ctest --test-dir "$BUILD_ASAN" -L tier1 -j \
      > /dev/null; then
    echo "CHECK FAILED: tier1 tests (DOT_GEMM_KERNEL=$KERNEL)"
    FAILED=1
  fi
  if ! DOT_GEMM_KERNEL="$KERNEL" "$BUILD_ASAN"/tests/gemm_differential_test \
      > /dev/null; then
    echo "CHECK FAILED: gemm_differential_test (DOT_GEMM_KERNEL=$KERNEL)"
    FAILED=1
  fi
done

echo "== storage pool matrix under asan+ubsan =="
# Pool ON with poison-on-return: stale-read bugs that recycling could mask
# become NaNs; the tier1 numeric assertions + storage_test catch them.
if ! DOT_TENSOR_POOL=on DOT_POOL_POISON=1 \
    ctest --test-dir "$BUILD_ASAN" -L tier1 -j > /dev/null; then
  echo "CHECK FAILED: tier1 tests (DOT_TENSOR_POOL=on, poison)"
  FAILED=1
fi
if ! DOT_TENSOR_POOL=on DOT_POOL_POISON=1 "$BUILD_ASAN"/tests/storage_test \
    > /dev/null; then
  echo "CHECK FAILED: storage_test (DOT_TENSOR_POOL=on, poison)"
  FAILED=1
fi
# Pool OFF: every buffer is a fresh heap allocation freed eagerly, so ASan
# sees true lifetimes (no free-list parking) across the whole tier1 suite.
if ! DOT_TENSOR_POOL=off ctest --test-dir "$BUILD_ASAN" -L tier1 -j \
    > /dev/null; then
  echo "CHECK FAILED: tier1 tests (DOT_TENSOR_POOL=off)"
  FAILED=1
fi

echo "== serving front-end: protocol + batching under asan+ubsan =="
# The wire-protocol fuzzing (truncated headers, oversized lengths, garbage
# payloads, torn writes) and the fake-clock batcher policy suite must be
# memory/UB clean — a hostile byte stream exercising UB is exactly what
# these sanitizers exist to catch.
if ! "$BUILD_ASAN"/tests/serve_protocol_test > /dev/null; then
  echo "CHECK FAILED: serve_protocol_test (asan+ubsan)"
  FAILED=1
fi
if ! "$BUILD_ASAN"/tests/serve_batching_test > /dev/null; then
  echo "CHECK FAILED: serve_batching_test (asan+ubsan)"
  FAILED=1
fi

echo "== serving front-end: concurrency stress under tsan =="
# N client threads vs the poll-loop + batcher thread on a loopback server:
# the connection table, outboxes, and stats are all cross-thread state.
if ! "$BUILD"/tests/serve_stress_test > /dev/null; then
  echo "CHECK FAILED: serve_stress_test (tsan)"
  FAILED=1
fi

echo "== serving front-end: loopback e2e smoke =="
# Full binary-to-binary path: start dot_server (trains the demo oracle),
# query it over TCP with the load-gen client, then SIGTERM and require a
# graceful drain ("DRAINED ..." on stdout) and a zero exit.
SMOKE_DIR=$(mktemp -d)
SERVER_LOG="$SMOKE_DIR/server.log"
PORT_FILE="$SMOKE_DIR/port"
"$BUILD_ASAN"/src/serve/dot_server --port-file "$PORT_FILE" \
  --checkpoint "$SMOKE_DIR/oracle.bin" > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 600); do
  [ -s "$PORT_FILE" ] && break
  if ! kill -0 "$SERVER_PID" 2> /dev/null; then break; fi
  sleep 0.5
done
if [ ! -s "$PORT_FILE" ]; then
  echo "CHECK FAILED: dot_server did not come up"
  cat "$SERVER_LOG"
  FAILED=1
else
  PORT=$(cat "$PORT_FILE")
  if ! "$BUILD_ASAN"/bench/bench_serving_load --client-smoke --port "$PORT" \
      --queries 25; then
    echo "CHECK FAILED: serving loopback smoke client"
    FAILED=1
  fi
  kill -TERM "$SERVER_PID"
  if ! wait "$SERVER_PID"; then
    echo "CHECK FAILED: dot_server exited nonzero after SIGTERM"
    FAILED=1
  fi
  if ! grep -q '^DRAINED ' "$SERVER_LOG"; then
    echo "CHECK FAILED: dot_server did not report a graceful drain"
    cat "$SERVER_LOG"
    FAILED=1
  fi
fi
rm -rf "$SMOKE_DIR"

echo "== DOT_FAILPOINTS env arming smoke =="
# Arms a named failpoint purely through the environment; the EnvArmingSmoke
# test asserts the spec was parsed and the point fires (it skips itself when
# the variable is absent, so plain test runs are unaffected).
if ! DOT_FAILPOINTS="check.smoke=error" "$BUILD_ASAN"/tests/util_test \
    --gtest_filter='FailpointTest.*' > /dev/null; then
  echo "CHECK FAILED: failpoint env smoke run"
  FAILED=1
fi

echo "== observability plane: window/ring/gauge suites under tsan =="
# The rolling-window slot rotation, slow-query ring push, and gauge CAS-add
# are all designed to be called from request threads while an admin thread
# snapshots them — exactly the interleaving TSan checks.
if ! "$BUILD"/tests/obs_test \
    --gtest_filter='RollingWindowTest.*:SlowQueryRingTest.*:GaugeAddTest.*' \
    > /dev/null; then
  echo "CHECK FAILED: obs window/ring/gauge suites (tsan)"
  FAILED=1
fi
if ! "$BUILD"/tests/serve_admin_test > /dev/null; then
  echo "CHECK FAILED: serve_admin_test (tsan)"
  FAILED=1
fi

echo "== observability plane: live admin endpoint smoke =="
# Boots dot_server with the admin plane on an ephemeral port and walks every
# endpoint over real HTTP, then checks the SIGUSR1 stats dump and that
# /readyz flips to draining during the SIGTERM lame-duck window.
ADMIN_DIR=$(mktemp -d)
ADMIN_LOG="$ADMIN_DIR/server.log"
ADMIN_PORT_FILE="$ADMIN_DIR/admin_port"
ADMIN_SRV_PORT_FILE="$ADMIN_DIR/port"
DOT_SERVE_LAME_DUCK_MS=3000 "$BUILD_ASAN"/src/serve/dot_server \
  --port-file "$ADMIN_SRV_PORT_FILE" \
  --admin-port 0 --admin-port-file "$ADMIN_PORT_FILE" \
  --checkpoint "$ADMIN_DIR/oracle.bin" > "$ADMIN_LOG" 2>&1 &
ADMIN_SRV_PID=$!
for _ in $(seq 1 600); do
  [ -s "$ADMIN_PORT_FILE" ] && [ -s "$ADMIN_SRV_PORT_FILE" ] && break
  if ! kill -0 "$ADMIN_SRV_PID" 2> /dev/null; then break; fi
  sleep 0.5
done
if [ ! -s "$ADMIN_PORT_FILE" ]; then
  echo "CHECK FAILED: dot_server admin plane did not come up"
  cat "$ADMIN_LOG"
  FAILED=1
else
  APORT=$(cat "$ADMIN_PORT_FILE")
  SPORT=$(cat "$ADMIN_SRV_PORT_FILE")
  # Send a little traffic so the metrics/windows are non-trivial.
  "$BUILD_ASAN"/bench/bench_serving_load --client-smoke --port "$SPORT" \
    --queries 10 > /dev/null || { echo "CHECK FAILED: admin smoke traffic"; FAILED=1; }
  if [ "$(curl -s "http://127.0.0.1:$APORT/healthz")" != "ok" ]; then
    echo "CHECK FAILED: /healthz"
    FAILED=1
  fi
  if [ "$(curl -s -o /dev/null -w '%{http_code}' \
      "http://127.0.0.1:$APORT/readyz")" != "200" ]; then
    echo "CHECK FAILED: /readyz not ready while serving"
    FAILED=1
  fi
  ADMIN_METRICS="$ADMIN_DIR/metrics.txt"
  curl -s "http://127.0.0.1:$APORT/metrics" > "$ADMIN_METRICS"
  ABAD=$(grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN))$' \
    "$ADMIN_METRICS")
  if [ -n "$ABAD" ]; then
    echo "CHECK FAILED: malformed /metrics lines:"
    echo "$ABAD"
    FAILED=1
  fi
  for METRIC in dot_server_inflight dot_server_request_latency_us_window_p95; do
    if ! grep -qE "^${METRIC} " "$ADMIN_METRICS"; then
      echo "CHECK FAILED: /metrics is missing ${METRIC}"
      FAILED=1
    fi
  done
  if ! curl -s "http://127.0.0.1:$APORT/varz" | grep -q '"windows"'; then
    echo "CHECK FAILED: /varz has no windows section"
    FAILED=1
  fi
  if ! curl -s "http://127.0.0.1:$APORT/slowz" | grep -q '"records"'; then
    echo "CHECK FAILED: /slowz"
    FAILED=1
  fi
  if ! curl -s "http://127.0.0.1:$APORT/tracez?sec=0.2" \
      | grep -q '"traceEvents"'; then
    echo "CHECK FAILED: /tracez"
    FAILED=1
  fi
  kill -USR1 "$ADMIN_SRV_PID"
  sleep 1
  if ! grep -q 'SIGUSR1 varz dump' "$ADMIN_LOG"; then
    echo "CHECK FAILED: SIGUSR1 stats dump missing from server log"
    FAILED=1
  fi
  kill -TERM "$ADMIN_SRV_PID"
  sleep 0.5  # inside the 3s lame-duck window: still serving, but draining
  DRAIN_CODE=$(curl -s -o "$ADMIN_DIR/readyz_drain" -w '%{http_code}' \
    "http://127.0.0.1:$APORT/readyz")
  if [ "$DRAIN_CODE" != "503" ] || ! grep -q draining "$ADMIN_DIR/readyz_drain"; then
    echo "CHECK FAILED: /readyz did not flip to draining during lame-duck"
    FAILED=1
  fi
  if ! wait "$ADMIN_SRV_PID"; then
    echo "CHECK FAILED: dot_server exited nonzero after SIGTERM (admin smoke)"
    FAILED=1
  fi
  if ! grep -q '^DRAINED ' "$ADMIN_LOG"; then
    echo "CHECK FAILED: no graceful drain in admin smoke"
    cat "$ADMIN_LOG"
    FAILED=1
  fi
fi
rm -rf "$ADMIN_DIR"

echo "== sharded oracle: chaos harness under tsan =="
# Shard dispatch, health transitions, probes, and hot swaps all race
# against concurrent load threads in this suite — TSan checks the shard /
# router locking for real.
if ! "$BUILD"/tests/chaos_test > /dev/null; then
  echo "CHECK FAILED: chaos_test (tsan)"
  FAILED=1
fi

echo "== sharded oracle: loopback shard-kill smoke =="
# 3-shard dot_server with shard 1's dispatch failpoint armed for 5 hits:
# 3 consecutive failures quarantine the shard, 2 more eat failed probes,
# then the exhausted failpoint lets a probe succeed and the shard must
# come back — all observed live through /shardz while the smoke client
# keeps querying (no request may be lost: DRAINED must report lost=0).
CHAOS_DIR=$(mktemp -d)
CHAOS_LOG="$CHAOS_DIR/server.log"
CHAOS_PORT_FILE="$CHAOS_DIR/port"
CHAOS_ADMIN_PORT_FILE="$CHAOS_DIR/admin_port"
DOT_SERVE_SHARDS=3 DOT_SERVE_PROBE_BACKOFF_MS=200 \
  DOT_FAILPOINTS="serve.shard_dispatch.1=error:5" \
  "$BUILD_ASAN"/src/serve/dot_server \
  --port-file "$CHAOS_PORT_FILE" \
  --admin-port 0 --admin-port-file "$CHAOS_ADMIN_PORT_FILE" \
  --checkpoint "$CHAOS_DIR/oracle.bin" > "$CHAOS_LOG" 2>&1 &
CHAOS_PID=$!
for _ in $(seq 1 600); do
  [ -s "$CHAOS_PORT_FILE" ] && [ -s "$CHAOS_ADMIN_PORT_FILE" ] && break
  if ! kill -0 "$CHAOS_PID" 2> /dev/null; then break; fi
  sleep 0.5
done
if [ ! -s "$CHAOS_PORT_FILE" ]; then
  echo "CHECK FAILED: sharded dot_server did not come up"
  cat "$CHAOS_LOG"
  FAILED=1
else
  CPORT=$(cat "$CHAOS_PORT_FILE")
  CAPORT=$(cat "$CHAOS_ADMIN_PORT_FILE")
  if ! grep -q '^SHARDS 3$' "$CHAOS_LOG"; then
    echo "CHECK FAILED: dot_server did not report 3 shards"
    FAILED=1
  fi
  # Round 1: enough traffic that shard 1 takes 3 consecutive failures.
  # Every query must still be answered (the ladder serves for the shard).
  if ! "$BUILD_ASAN"/bench/bench_serving_load --client-smoke --port "$CPORT" \
      --queries 30 > /dev/null; then
    echo "CHECK FAILED: smoke traffic failed during shard kill"
    FAILED=1
  fi
  if ! curl -s "http://127.0.0.1:$CAPORT/shardz" | grep -q '"quarantined"'; then
    echo "CHECK FAILED: killed shard was not quarantined"
    curl -s "http://127.0.0.1:$CAPORT/shardz"
    FAILED=1
  fi
  # Keep traffic flowing across the probe backoff windows (200/400/800 ms)
  # until the exhausted failpoint lets a probe through and /shardz shows
  # every shard healthy again.
  RECOVERED=0
  for _ in $(seq 1 30); do
    sleep 0.3
    "$BUILD_ASAN"/bench/bench_serving_load --client-smoke --port "$CPORT" \
      --queries 10 > /dev/null 2>&1
    if ! curl -s "http://127.0.0.1:$CAPORT/shardz" | grep -q '"quarantined"'
    then
      RECOVERED=1
      break
    fi
  done
  if [ "$RECOVERED" -ne 1 ]; then
    echo "CHECK FAILED: killed shard did not recover after failpoint drained"
    curl -s "http://127.0.0.1:$CAPORT/shardz"
    FAILED=1
  fi
  # Zero-downtime hot swap via the admin plane: POST flips every shard to
  # model_version 2 (GET must be rejected — it is the mutating endpoint).
  if [ "$(curl -s -o /dev/null -w '%{http_code}' \
      "http://127.0.0.1:$CAPORT/swapz")" != "405" ]; then
    echo "CHECK FAILED: GET /swapz was not rejected"
    FAILED=1
  fi
  if ! curl -s -X POST "http://127.0.0.1:$CAPORT/swapz" | grep -q 'swap ok'
  then
    echo "CHECK FAILED: POST /swapz"
    FAILED=1
  fi
  if curl -s "http://127.0.0.1:$CAPORT/shardz" \
      | grep -q '"model_version": 1'; then
    echo "CHECK FAILED: a shard still serves model_version 1 after /swapz"
    curl -s "http://127.0.0.1:$CAPORT/shardz"
    FAILED=1
  fi
  # Per-shard labeled series must export well-formed (the stage-3 lint
  # only sees unsharded processes; this is the labeled-metric variant).
  CHAOS_METRICS="$CHAOS_DIR/metrics.txt"
  curl -s "http://127.0.0.1:$CAPORT/metrics" > "$CHAOS_METRICS"
  CBAD=$(grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN))$' \
    "$CHAOS_METRICS")
  if [ -n "$CBAD" ]; then
    echo "CHECK FAILED: malformed sharded /metrics lines:"
    echo "$CBAD"
    FAILED=1
  fi
  for METRIC in 'dot_shard_cache_hits_total\{shard="0"\}' \
                'dot_shard_quality_total\{shard="1",level="fallback"\}' \
                'dot_shard_quarantines_total\{shard="1"\}' \
                'dot_shard_health\{shard="2"\}' \
                'dot_shard_model_version\{shard="0"\}'; do
    if ! grep -qE "^${METRIC} " "$CHAOS_METRICS"; then
      echo "CHECK FAILED: sharded /metrics is missing ${METRIC}"
      FAILED=1
    fi
  done
  kill -TERM "$CHAOS_PID"
  if ! wait "$CHAOS_PID"; then
    echo "CHECK FAILED: sharded dot_server exited nonzero after SIGTERM"
    FAILED=1
  fi
  if ! grep -qE '^DRAINED .*lost=0' "$CHAOS_LOG"; then
    echo "CHECK FAILED: sharded drain lost requests"
    cat "$CHAOS_LOG"
    FAILED=1
  fi
fi
rm -rf "$CHAOS_DIR"

echo "== int8 quantized GEMM path under asan+ubsan =="
# Precision matrix: the whole tier1 suite must pass with the quantized path
# live (inference forwards take it; recording forwards pin themselves to
# fp32 by the grad-mode contract), and the quantization primitives + the
# differential wall run explicitly under both precisions x every kernel so
# the int8 packing, microkernel, dequant, and cache code paths are all
# sanitizer-exercised.
for PRECISION in fp32 int8; do
  echo "-- DOT_GEMM_PRECISION=$PRECISION --"
  if ! DOT_GEMM_PRECISION="$PRECISION" ctest --test-dir "$BUILD_ASAN" \
      -L tier1 -j > /dev/null; then
    echo "CHECK FAILED: tier1 tests (DOT_GEMM_PRECISION=$PRECISION)"
    FAILED=1
  fi
  if ! DOT_GEMM_PRECISION="$PRECISION" "$BUILD_ASAN"/tests/quantize_test \
      > /dev/null; then
    echo "CHECK FAILED: quantize_test (DOT_GEMM_PRECISION=$PRECISION)"
    FAILED=1
  fi
  for KERNEL in naive blocked simd; do
    if ! DOT_GEMM_PRECISION="$PRECISION" DOT_GEMM_KERNEL="$KERNEL" \
        "$BUILD_ASAN"/tests/gemm_differential_test > /dev/null; then
      echo "CHECK FAILED: gemm_differential_test (precision=$PRECISION, kernel=$KERNEL)"
      FAILED=1
    fi
  done
done

echo "== int8 serving loopback smoke + quant metrics lint =="
# dot_server end to end with the quantized path live: the demo oracle must
# train (fp32 — training pins itself), serve the smoke wave through int8
# GEMMs, and export live dot_gemm_quant_* series through /metrics without
# breaking the Prometheus lint.
QUANT_DIR=$(mktemp -d)
QUANT_LOG="$QUANT_DIR/server.log"
QUANT_PORT_FILE="$QUANT_DIR/port"
QUANT_ADMIN_PORT_FILE="$QUANT_DIR/admin_port"
DOT_GEMM_PRECISION=int8 "$BUILD_ASAN"/src/serve/dot_server \
  --port-file "$QUANT_PORT_FILE" \
  --admin-port 0 --admin-port-file "$QUANT_ADMIN_PORT_FILE" \
  --checkpoint "$QUANT_DIR/oracle.bin" > "$QUANT_LOG" 2>&1 &
QUANT_PID=$!
for _ in $(seq 1 600); do
  [ -s "$QUANT_PORT_FILE" ] && [ -s "$QUANT_ADMIN_PORT_FILE" ] && break
  if ! kill -0 "$QUANT_PID" 2> /dev/null; then break; fi
  sleep 0.5
done
if [ ! -s "$QUANT_PORT_FILE" ]; then
  echo "CHECK FAILED: dot_server (int8) did not come up"
  cat "$QUANT_LOG"
  FAILED=1
else
  QPORT=$(cat "$QUANT_PORT_FILE")
  QAPORT=$(cat "$QUANT_ADMIN_PORT_FILE")
  if ! "$BUILD_ASAN"/bench/bench_serving_load --client-smoke --port "$QPORT" \
      --queries 25; then
    echo "CHECK FAILED: int8 serving loopback smoke client"
    FAILED=1
  fi
  QUANT_METRICS="$QUANT_DIR/metrics.txt"
  curl -s "http://127.0.0.1:$QAPORT/metrics" > "$QUANT_METRICS"
  QBAD=$(grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN))$' \
    "$QUANT_METRICS")
  if [ -n "$QBAD" ]; then
    echo "CHECK FAILED: malformed int8 /metrics lines:"
    echo "$QBAD"
    FAILED=1
  fi
  for METRIC in dot_gemm_quant_gemms_total dot_gemm_quant_cache_hits_total \
                dot_gemm_quant_cache_misses_total dot_gemm_quant_cache_entries \
                dot_gemm_quant_cache_bytes; do
    if ! grep -qE "^${METRIC} " "$QUANT_METRICS"; then
      echo "CHECK FAILED: int8 /metrics is missing ${METRIC}"
      FAILED=1
    fi
  done
  # The smoke wave must actually have gone through the quantized path.
  if ! grep -E '^dot_gemm_quant_gemms_total ' "$QUANT_METRICS" \
      | grep -qvE ' 0$'; then
    echo "CHECK FAILED: dot_gemm_quant_gemms_total is zero under DOT_GEMM_PRECISION=int8"
    FAILED=1
  fi
  kill -TERM "$QUANT_PID"
  if ! wait "$QUANT_PID"; then
    echo "CHECK FAILED: dot_server (int8) exited nonzero after SIGTERM"
    FAILED=1
  fi
  if ! grep -q '^DRAINED ' "$QUANT_LOG"; then
    echo "CHECK FAILED: dot_server (int8) did not report a graceful drain"
    cat "$QUANT_LOG"
    FAILED=1
  fi
fi
rm -rf "$QUANT_DIR"

echo "== continual adaptation: trainer parity + adaptation suites under asan+ubsan =="
# The extracted training loop must stay bitwise-parity with the historical
# stage loops, and the uncertainty/fine-tune guards must be memory/UB clean.
if ! "$BUILD_ASAN"/tests/trainer_test > /dev/null; then
  echo "CHECK FAILED: trainer_test (asan+ubsan)"
  FAILED=1
fi
if ! "$BUILD_ASAN"/tests/adaptation_test > /dev/null; then
  echo "CHECK FAILED: adaptation_test (asan+ubsan)"
  FAILED=1
fi

echo "== continual adaptation: fine-tune -> hot-swap chaos under tsan =="
# One adaptation round fine-tunes, re-seals, and swaps a 2-shard fleet
# while a load thread keeps querying it — the shard RW locks, the swap
# path, and the manager's history mutex all race for real here.
if ! "$BUILD"/tests/adaptation_test \
    --gtest_filter='AdaptationFixture.FineTuneHotSwapChaosUnderLoad' \
    > /dev/null; then
  echo "CHECK FAILED: adaptation_test chaos case (tsan)"
  FAILED=1
fi

echo "== continual adaptation: live /adaptz fine-tune + SIGHUP swap smoke =="
# Boots dot_server, runs one continual fine-tune round over the admin
# plane (fresh incident trajectories, replay mix, canary gate, hot-swap
# publish), then SIGHUPs for one more swap and requires a lossless drain.
ADAPT_DIR=$(mktemp -d)
ADAPT_LOG="$ADAPT_DIR/server.log"
ADAPT_PORT_FILE="$ADAPT_DIR/port"
ADAPT_ADMIN_PORT_FILE="$ADAPT_DIR/admin_port"
DOT_SERVE_SHARDS=2 "$BUILD_ASAN"/src/serve/dot_server \
  --port-file "$ADAPT_PORT_FILE" \
  --admin-port 0 --admin-port-file "$ADAPT_ADMIN_PORT_FILE" \
  --checkpoint "$ADAPT_DIR/oracle.bin" > "$ADAPT_LOG" 2>&1 &
ADAPT_PID=$!
for _ in $(seq 1 600); do
  [ -s "$ADAPT_PORT_FILE" ] && [ -s "$ADAPT_ADMIN_PORT_FILE" ] && break
  if ! kill -0 "$ADAPT_PID" 2> /dev/null; then break; fi
  sleep 0.5
done
if [ ! -s "$ADAPT_PORT_FILE" ]; then
  echo "CHECK FAILED: dot_server (adapt smoke) did not come up"
  cat "$ADAPT_LOG"
  FAILED=1
else
  TPORT=$(cat "$ADAPT_PORT_FILE")
  TAPORT=$(cat "$ADAPT_ADMIN_PORT_FILE")
  # Traffic before the round so the swap happens under a warmed fleet.
  "$BUILD_ASAN"/bench/bench_serving_load --client-smoke --port "$TPORT" \
    --queries 10 > /dev/null || { echo "CHECK FAILED: adapt smoke traffic"; FAILED=1; }
  if ! curl -s "http://127.0.0.1:$TAPORT/adaptz" | grep -q '"rounds": 0'; then
    echo "CHECK FAILED: GET /adaptz before any round"
    FAILED=1
  fi
  # The round simulates fresh incident trips and fine-tunes synchronously;
  # give it a generous sanitizer-friendly timeout.
  ADAPT_ROUND="$ADAPT_DIR/round.json"
  if ! curl -s -m 1800 -X POST "http://127.0.0.1:$TAPORT/adaptz" \
      -o "$ADAPT_ROUND"; then
    echo "CHECK FAILED: POST /adaptz"
    FAILED=1
  fi
  if ! grep -q '"published": true' "$ADAPT_ROUND"; then
    echo "CHECK FAILED: adaptation round did not publish:"
    cat "$ADAPT_ROUND"
    FAILED=1
  fi
  if curl -s "http://127.0.0.1:$TAPORT/shardz" \
      | grep -q '"model_version": 1'; then
    echo "CHECK FAILED: a shard still serves model_version 1 after /adaptz"
    curl -s "http://127.0.0.1:$TAPORT/shardz"
    FAILED=1
  fi
  # The adapted model keeps serving.
  "$BUILD_ASAN"/bench/bench_serving_load --client-smoke --port "$TPORT" \
    --queries 10 > /dev/null || { echo "CHECK FAILED: post-adapt traffic"; FAILED=1; }
  # Labeled per-stage training series (base training + the fine-tune that
  # just ran in-process) must export well-formed.
  ADAPT_METRICS="$ADAPT_DIR/metrics.txt"
  curl -s "http://127.0.0.1:$TAPORT/metrics" > "$ADAPT_METRICS"
  TBAD=$(grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN))$' \
    "$ADAPT_METRICS")
  if [ -n "$TBAD" ]; then
    echo "CHECK FAILED: malformed adapt /metrics lines:"
    echo "$TBAD"
    FAILED=1
  fi
  for METRIC in 'dot_train_epochs_total\{stage="stage1"\}' \
                'dot_train_epochs_total\{stage="stage2"\}' \
                'dot_train_epochs_total\{stage="finetune"\}' \
                'dot_train_rollbacks_total\{stage="finetune"\}' \
                'dot_train_epoch_loss\{stage="finetune"\}'; do
    if ! grep -qE "^${METRIC} " "$ADAPT_METRICS"; then
      echo "CHECK FAILED: adapt /metrics is missing ${METRIC}"
      FAILED=1
    fi
  done
  # SIGHUP: one more zero-downtime swap of the freshly sealed checkpoint.
  kill -HUP "$ADAPT_PID"
  SWAPPED=0
  for _ in $(seq 1 60); do
    sleep 0.5
    if grep -q 'SIGHUP swap ok' "$ADAPT_LOG"; then
      SWAPPED=1
      break
    fi
  done
  if [ "$SWAPPED" -ne 1 ]; then
    echo "CHECK FAILED: SIGHUP swap after /adaptz"
    cat "$ADAPT_LOG"
    FAILED=1
  fi
  kill -TERM "$ADAPT_PID"
  if ! wait "$ADAPT_PID"; then
    echo "CHECK FAILED: dot_server (adapt smoke) exited nonzero after SIGTERM"
    FAILED=1
  fi
  if ! grep -qE '^DRAINED .*lost=0' "$ADAPT_LOG"; then
    echo "CHECK FAILED: adapt smoke drain lost requests"
    cat "$ADAPT_LOG"
    FAILED=1
  fi
fi
rm -rf "$ADAPT_DIR"

if [ "$FAILED" -ne 0 ]; then
  echo "CHECK FAILED"
  exit 1
fi
echo "CHECK OK"
