#!/bin/bash
# Observability / concurrency gate:
#   1. builds the tree with ThreadSanitizer (-DDOT_SANITIZE=thread) — the
#      sharded counters, trace recorder and service cache are all hit from
#      multiple threads in the tier-1 suite, so data races surface here;
#   2. runs the fast (tier1) ctest suite under that build;
#   3. re-runs obs_test with DOT_METRICS_TEXT set and lints the Prometheus
#      text export: every line must be a comment (# HELP / # TYPE) or a
#      `name{labels} value` sample with a legal metric name and a finite
#      or +Inf number.
# Usage: scripts/check.sh [build_dir]   (default: build-tsan)
set -u
cd "$(dirname "$0")/.."
BUILD=${1:-build-tsan}
FAILED=0

echo "== configure + build ($BUILD, -DDOT_SANITIZE=thread) =="
cmake -B "$BUILD" -S . -DDOT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  || exit 1
cmake --build "$BUILD" -j || exit 1

echo "== tier1 tests under tsan =="
if ! ctest --test-dir "$BUILD" -L tier1 --output-on-failure -j; then
  echo "CHECK FAILED: tier1 tests"
  FAILED=1
fi

echo "== metrics text export lint =="
METRICS_TXT=$(mktemp)
trap 'rm -f "$METRICS_TXT"' EXIT
if ! DOT_METRICS_TEXT="$METRICS_TXT" "$BUILD"/tests/obs_test \
    --gtest_filter='MetricsRegistryTest.PrometheusExportIsWellFormed' \
    > /dev/null; then
  echo "CHECK FAILED: obs_test export run"
  FAILED=1
fi
if [ ! -s "$METRICS_TXT" ]; then
  echo "CHECK FAILED: metrics text export is empty"
  FAILED=1
fi
# A line is well-formed iff it is a '#' comment or: a metric name in
# [a-zA-Z_:][a-zA-Z0-9_:]* with an optional {label="..."} set, one space,
# and one numeric value (scientific notation, +Inf and NaN allowed).
BAD=$(grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN))$' \
  "$METRICS_TXT")
if [ -n "$BAD" ]; then
  echo "CHECK FAILED: malformed metrics export lines:"
  echo "$BAD"
  FAILED=1
fi

if [ "$FAILED" -ne 0 ]; then
  echo "CHECK FAILED"
  exit 1
fi
echo "CHECK OK"
