#include "core/dot_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "util/checkpoint.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dot {

const char* ServedQualityName(ServedQuality q) {
  switch (q) {
    case ServedQuality::kFull: return "full";
    case ServedQuality::kReducedSteps: return "reduced_steps";
    case ServedQuality::kCachedNeighbor: return "cached_neighbor";
    case ServedQuality::kFallback: return "fallback";
  }
  return "unknown";
}

namespace {

/// Copies a PiT's CHW tensor into row `i` of a [B, 3, L, L] batch.
void CopyPitInto(const Pit& pit, Tensor* batch, int64_t i) {
  int64_t per = pit.tensor().numel();
  std::copy(pit.tensor().data(), pit.tensor().data() + per,
            batch->data() + i * per);
}

/// L2 norm of the accumulated gradients of `params` (training telemetry).
double GradNorm(const std::vector<Tensor>& params) {
  double sq = 0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    for (float g : p.grad_vec()) sq += static_cast<double>(g) * g;
  }
  return std::sqrt(sq);
}

/// Scales every gradient so the global L2 norm is at most `max_norm`
/// (0 = off). Returns the pre-clip norm; a non-finite norm is returned
/// unscaled so callers can treat the step as poisoned.
double ClipGradNorm(std::vector<Tensor> params, float max_norm) {
  double norm = GradNorm(params);
  if (max_norm > 0 && std::isfinite(norm) &&
      norm > static_cast<double>(max_norm)) {
    float scale = static_cast<float>(static_cast<double>(max_norm) / norm);
    for (auto& p : params) {
      if (!p.has_grad()) continue;
      float* g = p.grad();
      for (int64_t i = 0; i < p.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

/// Fault tolerance for one training stage's step loop (DESIGN.md §5d): a
/// step whose loss or gradient norm is non-finite never reaches the
/// optimizer; after `rollback_after` *consecutive* poisoned steps the
/// parameters are restored from the last-good snapshot, which is refreshed
/// at every epoch boundary that saw no poisoned step.
class TrainingGuard {
 public:
  TrainingGuard(const char* stage, std::vector<Tensor> params,
                int64_t rollback_after)
      : stage_(stage),
        params_(std::move(params)),
        rollback_after_(rollback_after),
        skipped_(obs::MetricsRegistry::Get().GetCounter(
            "dot_train_skipped_steps_total")),
        rollbacks_(obs::MetricsRegistry::Get().GetCounter(
            "dot_train_rollbacks_total")) {
    TakeSnapshot();
  }

  void StepOk() { consecutive_bad_ = 0; }

  /// Records a poisoned (skipped) step; rolls back and returns true once
  /// the consecutive-bad budget is exhausted.
  bool StepBad(const char* what) {
    skipped_->Increment();
    epoch_had_bad_ = true;
    ++consecutive_bad_;
    DOT_LOG_WARN << "[" << stage_ << "] skipping step: non-finite " << what
                 << " (" << consecutive_bad_ << " consecutive)";
    if (rollback_after_ > 0 && consecutive_bad_ >= rollback_after_) {
      for (size_t i = 0; i < params_.size(); ++i) {
        params_[i].CopyFrom(snapshot_[i]);
      }
      rollbacks_->Increment();
      ++rollback_count_;
      consecutive_bad_ = 0;
      DOT_LOG_WARN << "[" << stage_ << "] rolled back to last-good weights";
      return true;
    }
    return false;
  }

  /// Call once per epoch: refreshes the snapshot only if the whole epoch
  /// was healthy (a poisoned epoch must not become the rollback target).
  void EndEpoch() {
    if (!epoch_had_bad_) TakeSnapshot();
    epoch_had_bad_ = false;
  }

  int64_t rollback_count() const { return rollback_count_; }

 private:
  void TakeSnapshot() {
    snapshot_.clear();
    snapshot_.reserve(params_.size());
    for (const auto& p : params_) snapshot_.push_back(p.ToVector());
  }

  const char* stage_;
  std::vector<Tensor> params_;
  int64_t rollback_after_;
  int64_t consecutive_bad_ = 0;
  int64_t rollback_count_ = 0;
  bool epoch_had_bad_ = false;
  std::vector<std::vector<float>> snapshot_;
  obs::Counter* skipped_;
  obs::Counter* rollbacks_;
};

/// Per-epoch training gauges for one stage ("stage1" / "stage2").
struct StageMetrics {
  explicit StageMetrics(const char* stage) {
    auto& reg = obs::MetricsRegistry::Get();
    std::string prefix = std::string("dot_train_") + stage;
    epoch_loss = reg.GetGauge(prefix + "_epoch_loss");
    epoch_time_s = reg.GetGauge(prefix + "_epoch_time_seconds");
    grad_norm = reg.GetGauge(prefix + "_grad_norm");
    epochs_total = reg.GetCounter(prefix + "_epochs");
    steps_total = reg.GetCounter(prefix + "_steps");
  }
  obs::Gauge* epoch_loss;
  obs::Gauge* epoch_time_s;
  obs::Gauge* grad_norm;
  obs::Counter* epochs_total;
  obs::Counter* steps_total;
};

}  // namespace

DotOracle::DotOracle(const DotConfig& config, const Grid& grid)
    : config_(config),
      grid_(grid),
      diffusion_(DiffusionSchedule(config.diffusion_steps),
                 config.parameterization),
      rng_(config.seed) {
  DOT_CHECK(grid.grid_size() == config.grid_size)
      << "grid resolution must match config.grid_size";
  DotConfig& cfg = config_;
  cfg.unet.max_steps = std::max(cfg.unet.max_steps, cfg.diffusion_steps);
  cfg.estimator.grid_size = cfg.grid_size;
  Rng init_rng(config.seed ^ 0xD07);
  denoiser_ = std::make_unique<UnetDenoiser>(cfg.unet, &init_rng);
  estimator_ = MakeEstimator(cfg.estimator_kind, cfg.estimator, &init_rng);
}

std::vector<float> DotOracle::EncodeCondition(const OdtInput& odt) const {
  std::vector<float> cond = EncodeOdt(odt, grid_);
  if (!config_.use_od_condition) {
    cond[0] = cond[1] = cond[2] = cond[3] = 0.0f;
  }
  if (!config_.use_time_condition) cond[4] = 0.0f;
  return cond;
}

Pit DotOracle::GroundTruthPit(const Trajectory& t) const {
  return Pit::Build(t, grid_, config_.pit_interpolate);
}

Status DotOracle::TrainStage1(const std::vector<TripSample>& train) {
  if (train.empty()) return Status::InvalidArgument("stage 1: empty training set");
  int64_t l = config_.grid_size;
  int64_t b = std::min<int64_t>(config_.batch_size,
                                static_cast<int64_t>(train.size()));

  // Pre-rasterize PiTs and conditions once.
  std::vector<Pit> pits;
  std::vector<std::vector<float>> conds;
  pits.reserve(train.size());
  conds.reserve(train.size());
  for (const auto& s : train) {
    pits.push_back(GroundTruthPit(s.trajectory));
    conds.push_back(EncodeCondition(s.odt));
  }

  optim::Adam opt(denoiser_->Parameters(), config_.lr);
  std::vector<int64_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);

  StageMetrics sm("stage1");
  TrainingGuard guard("stage1", denoiser_->Parameters(),
                      config_.rollback_after_bad_steps);
  for (int64_t epoch = 0; epoch < config_.stage1_epochs; ++epoch) {
    obs::TraceSpan epoch_span("DotOracle::TrainStage1::epoch");
    Stopwatch epoch_sw;
    // Cosine learning-rate decay to 10% over the training run.
    double progress = config_.stage1_epochs > 1
                          ? static_cast<double>(epoch) /
                                static_cast<double>(config_.stage1_epochs - 1)
                          : 0.0;
    opt.set_lr(static_cast<float>(
        config_.lr * (0.55 + 0.45 * std::cos(progress * 3.14159265))));
    rng_.Shuffle(&order);
    double loss_sum = 0;
    int64_t batches = 0;
    for (size_t start = 0; start + static_cast<size_t>(b) <= order.size();
         start += static_cast<size_t>(b)) {
      Tensor x0 = Tensor::Empty({b, kPitChannels, l, l});
      Tensor cond = Tensor::Empty({b, 5});
      for (int64_t i = 0; i < b; ++i) {
        int64_t idx = order[start + static_cast<size_t>(i)];
        CopyPitInto(pits[static_cast<size_t>(idx)], &x0, i);
        std::copy(conds[static_cast<size_t>(idx)].begin(),
                  conds[static_cast<size_t>(idx)].end(), cond.data() + i * 5);
      }
      // Algorithm 2: sample step + noise, predict, regress the target under
      // the configured parameterization (the added noise, or equivalently
      // the clean PiT).
      std::vector<int64_t> steps;
      Tensor eps;
      Tensor xn = diffusion_.MakeTrainingExample(x0, &rng_, &steps, &eps);
      denoiser_->ZeroGrad();
      Tensor pred = denoiser_->PredictNoise(xn, steps, cond);
      Tensor target =
          config_.parameterization == Parameterization::kX0 ? x0 : eps;
      Tensor loss = MseLoss(pred, target);
      double loss_val = static_cast<double>(loss.item());
      if (DOT_FAILPOINT("train.stage1.nan_loss") == fail::Action::kNan) {
        loss_val = std::numeric_limits<double>::quiet_NaN();
      }
      if (!std::isfinite(loss_val)) {
        guard.StepBad("loss");
        continue;
      }
      loss.Backward();
      double gnorm =
          ClipGradNorm(denoiser_->Parameters(), config_.grad_clip_norm);
      if (!std::isfinite(gnorm)) {
        guard.StepBad("gradient norm");
        continue;
      }
      opt.Step();
      guard.StepOk();
      loss_sum += loss_val;
      ++batches;
    }
    guard.EndEpoch();
    last_stage1_loss_ = batches > 0 ? loss_sum / static_cast<double>(batches) : 0;
    sm.epoch_loss->Set(last_stage1_loss_);
    sm.epoch_time_s->Set(epoch_sw.ElapsedSeconds());
    sm.epochs_total->Increment();
    sm.steps_total->Increment(batches);
    // Grad norm walks every parameter; skip the walk when metrics are off.
    if (obs::MetricsEnabled()) {
      sm.grad_norm->Set(GradNorm(denoiser_->Parameters()));
    }
    if (config_.verbose) {
      DOT_LOG_INFO << "[stage1] epoch " << epoch + 1 << "/"
                   << config_.stage1_epochs << " target MSE "
                   << last_stage1_loss_;
    }
  }
  stage1_trained_ = true;
  return Status::OK();
}

std::vector<Pit> DotOracle::InferPits(const std::vector<OdtInput>& odts) {
  return InferPitsImpl(odts, 0, nullptr);
}

Result<std::vector<Pit>> DotOracle::TryInferPits(
    const std::vector<OdtInput>& odts, int64_t sample_steps) {
  if (!stage1_trained_) {
    return Status::FailedPrecondition("stage 1 untrained");
  }
  if (DOT_FAILPOINT("dot_oracle.infer_pits") == fail::Action::kError) {
    return Status::Internal("failpoint 'dot_oracle.infer_pits' fired");
  }
  bool sane = true;
  std::vector<Pit> pits = InferPitsImpl(odts, sample_steps, &sane);
  if (!sane) {
    return Status::Internal("stage 1 sampler produced non-finite PiT values");
  }
  return pits;
}

std::vector<Pit> DotOracle::InferPitsImpl(const std::vector<OdtInput>& odts,
                                          int64_t sample_steps, bool* sane) {
  DOT_CHECK(stage1_trained_) << "InferPits before TrainStage1";
  // Stage-1 half of the estimation cost (Table 5: diffusion sampling
  // dominates) — kept as a separate span + histogram so the split stays
  // visible in traces and metrics.
  obs::TraceSpan span("DotOracle::InferPits");
  Stopwatch sw;
  std::vector<Pit> out;
  out.reserve(odts.size());
  int64_t l = config_.grid_size;
  int64_t bs = std::max<int64_t>(1, config_.batch_size);
  int64_t steps = sample_steps > 0 ? sample_steps : config_.sample_steps;
  for (size_t start = 0; start < odts.size(); start += static_cast<size_t>(bs)) {
    int64_t b = std::min<int64_t>(bs, static_cast<int64_t>(odts.size() - start));
    Tensor cond = Tensor::Empty({b, 5});
    for (int64_t i = 0; i < b; ++i) {
      auto c = EncodeCondition(odts[start + static_cast<size_t>(i)]);
      std::copy(c.begin(), c.end(), cond.data() + i * 5);
    }
    Tensor x;
    std::vector<int64_t> shape = {b, kPitChannels, l, l};
    if (config_.ancestral_sampling && sample_steps <= 0) {
      x = diffusion_.Sample(*denoiser_, cond, shape, &rng_);
    } else {
      x = diffusion_.SampleStrided(*denoiser_, cond, shape, steps, &rng_);
    }
    if (sane != nullptr && *sane) {
      // Scan the raw sampler output: Canonicalize would clamp values and
      // could mask a diverged pass.
      for (int64_t i = 0; i < x.numel(); ++i) {
        if (!std::isfinite(x.at(i))) {
          *sane = false;
          break;
        }
      }
    }
    for (int64_t i = 0; i < b; ++i) {
      Tensor one = Tensor::Empty({kPitChannels, l, l});
      std::copy(x.data() + i * one.numel(), x.data() + (i + 1) * one.numel(),
                one.data());
      Pit pit = Pit::FromTensor(one).ValueOrDie();
      pit.Canonicalize(config_.mask_threshold);
      if (config_.augment_endpoints) {
        const OdtInput& odt = odts[start + static_cast<size_t>(i)];
        float tod = static_cast<float>(NormalizedTimeOfDay(odt.departure_time));
        Cell o = grid_.Locate(odt.origin);
        if (!pit.Visited(o.row, o.col)) {
          pit.Set(kPitMask, o.row, o.col, 1.0f);
          pit.Set(kPitTimeOfDay, o.row, o.col, tod);
          pit.Set(kPitTimeOffset, o.row, o.col, -1.0f);
        }
        Cell d = grid_.Locate(odt.destination);
        if (!pit.Visited(d.row, d.col)) {
          pit.Set(kPitMask, d.row, d.col, 1.0f);
          pit.Set(kPitTimeOfDay, d.row, d.col, tod);
          pit.Set(kPitTimeOffset, d.row, d.col, 1.0f);
        }
      }
      out.push_back(std::move(pit));
    }
  }
  static obs::Histogram* latency =
      obs::MetricsRegistry::Get().GetHistogram("dot_oracle_stage1_latency_us");
  // Same series into the rolling window: its p95 drives the degradation
  // ladder's deadline triage (current load, not process history).
  static obs::RollingHistogram* latency_window =
      obs::MetricsRegistry::Get().GetWindow("dot_oracle_stage1_latency_us");
  latency->Observe(sw.ElapsedSeconds() * 1e6);
  latency_window->Observe(sw.ElapsedSeconds() * 1e6);
  return out;
}

Status DotOracle::TrainStage2(const std::vector<TripSample>& train,
                              const std::vector<TripSample>& val) {
  if (!stage1_trained_) {
    return Status::FailedPrecondition("stage 2 requires a trained stage 1");
  }
  if (train.empty()) return Status::InvalidArgument("stage 2: empty training set");

  // Target normalization from the training distribution.
  double sum = 0, sq = 0;
  for (const auto& s : train) {
    sum += s.travel_time_minutes;
    sq += s.travel_time_minutes * s.travel_time_minutes;
  }
  double n = static_cast<double>(train.size());
  target_mean_ = sum / n;
  target_std_ = std::sqrt(std::max(1e-6, sq / n - target_mean_ * target_mean_));

  std::vector<Pit> pits;
  std::vector<std::vector<double>> feats;
  pits.reserve(train.size());
  feats.reserve(train.size());
  for (const auto& s : train) {
    pits.push_back(GroundTruthPit(s.trajectory));
    feats.push_back(OdtFeatures(s.odt, grid_));
  }

  // Replace a slice of the training PiTs with stage-1 inferred ones so the
  // estimator sees the distribution it will serve (inferred PiTs differ
  // from rasterized ground truth in sparsity and soft-threshold artifacts).
  int64_t n_inferred = std::min<int64_t>(
      config_.stage2_inferred_cap,
      static_cast<int64_t>(static_cast<double>(train.size()) *
                           config_.stage2_inferred_fraction));
  if (n_inferred > 0) {
    std::vector<int64_t> pick(train.size());
    for (size_t i = 0; i < pick.size(); ++i) pick[i] = static_cast<int64_t>(i);
    rng_.Shuffle(&pick);
    pick.resize(static_cast<size_t>(n_inferred));
    std::vector<OdtInput> odts;
    for (int64_t idx : pick) odts.push_back(train[static_cast<size_t>(idx)].odt);
    std::vector<Pit> inferred = InferPits(odts);
    for (size_t k = 0; k < pick.size(); ++k) {
      pits[static_cast<size_t>(pick[k])] = std::move(inferred[k]);
    }
  }

  // Inferred validation PiTs for early stopping (Sec. 6.3).
  std::vector<Pit> val_pits;
  std::vector<OdtInput> val_odts;
  std::vector<double> val_truth;
  if (config_.val_samples > 0 && !val.empty()) {
    int64_t nv = std::min<int64_t>(config_.val_samples,
                                   static_cast<int64_t>(val.size()));
    for (int64_t i = 0; i < nv; ++i) {
      val_odts.push_back(val[static_cast<size_t>(i)].odt);
      val_truth.push_back(val[static_cast<size_t>(i)].travel_time_minutes);
    }
    val_pits = InferPits(val_odts);
  }

  optim::Adam opt(estimator_->module()->Parameters(), config_.lr);
  std::vector<int64_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  int64_t b = std::min<int64_t>(config_.batch_size,
                                static_cast<int64_t>(train.size()));

  double best_val = 1e18;
  std::vector<std::vector<float>> best_weights;
  int64_t bad_epochs = 0;
  stage2_trained_ = true;  // EstimateFromPits is used for validation below

  StageMetrics sm("stage2");
  TrainingGuard guard("stage2", estimator_->module()->Parameters(),
                      config_.rollback_after_bad_steps);
  obs::Gauge* val_mae_gauge =
      obs::MetricsRegistry::Get().GetGauge("dot_train_stage2_val_mae");
  for (int64_t epoch = 0; epoch < config_.stage2_epochs; ++epoch) {
    obs::TraceSpan epoch_span("DotOracle::TrainStage2::epoch");
    Stopwatch epoch_sw;
    rng_.Shuffle(&order);
    double loss_sum = 0;
    int64_t batches = 0;
    for (size_t start = 0; start + static_cast<size_t>(b) <= order.size();
         start += static_cast<size_t>(b)) {
      std::vector<Pit> batch;
      std::vector<std::vector<double>> batch_feats;
      std::vector<float> targets;
      for (int64_t i = 0; i < b; ++i) {
        int64_t idx = order[start + static_cast<size_t>(i)];
        batch.push_back(pits[static_cast<size_t>(idx)]);
        batch_feats.push_back(feats[static_cast<size_t>(idx)]);
        targets.push_back(static_cast<float>(
            (train[static_cast<size_t>(idx)].travel_time_minutes - target_mean_) /
            target_std_));
      }
      estimator_->module()->ZeroGrad();
      Tensor pred = estimator_->ForwardBatch(batch, batch_feats);
      Tensor loss = MseLoss(pred, Tensor::FromVector({b, 1}, targets));
      double loss_val = static_cast<double>(loss.item());
      if (DOT_FAILPOINT("train.stage2.nan_loss") == fail::Action::kNan) {
        loss_val = std::numeric_limits<double>::quiet_NaN();
      }
      if (!std::isfinite(loss_val)) {
        guard.StepBad("loss");
        continue;
      }
      loss.Backward();
      double gnorm = ClipGradNorm(estimator_->module()->Parameters(),
                                  config_.grad_clip_norm);
      if (!std::isfinite(gnorm)) {
        guard.StepBad("gradient norm");
        continue;
      }
      opt.Step();
      guard.StepOk();
      loss_sum += loss_val;
      ++batches;
    }
    guard.EndEpoch();
    sm.epoch_loss->Set(batches ? loss_sum / static_cast<double>(batches) : 0);
    sm.epoch_time_s->Set(epoch_sw.ElapsedSeconds());
    sm.epochs_total->Increment();
    sm.steps_total->Increment(batches);
    if (obs::MetricsEnabled()) {
      sm.grad_norm->Set(GradNorm(estimator_->module()->Parameters()));
    }
    if (config_.verbose) {
      DOT_LOG_INFO << "[stage2] epoch " << epoch + 1 << "/"
                   << config_.stage2_epochs << " MSE "
                   << (batches ? loss_sum / static_cast<double>(batches) : 0);
    }
    if (!val_pits.empty()) {
      std::vector<double> preds = EstimateFromPits(val_pits, val_odts);
      MetricsAccumulator acc;
      for (size_t i = 0; i < preds.size(); ++i) acc.Add(preds[i], val_truth[i]);
      double mae = acc.Finalize().mae;
      val_mae_gauge->Set(mae);
      if (mae < best_val) {
        best_val = mae;
        bad_epochs = 0;
        best_weights.clear();
        for (auto& p : estimator_->module()->Parameters()) {
          best_weights.push_back(p.ToVector());
        }
      } else if (++bad_epochs >= 2) {
        if (config_.verbose) {
          DOT_LOG_INFO << "[stage2] early stop at epoch " << epoch + 1;
        }
        break;
      }
    }
  }
  if (!best_weights.empty()) {
    auto params = estimator_->module()->Parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].CopyFrom(best_weights[i]);
    }
    // In-place restore: stale int8 panels must not outlive the old values.
    gemm::ClearQuantCache();
  }
  return Status::OK();
}

std::vector<double> DotOracle::EstimateFromPits(
    const std::vector<Pit>& pits, const std::vector<OdtInput>& odts) const {
  DOT_CHECK(stage2_trained_) << "EstimateFromPits before TrainStage2";
  DOT_CHECK(odts.size() == pits.size()) << "odts must parallel pits";
  NoGradGuard guard;
  obs::TraceSpan span("DotOracle::EstimateFromPits");
  Stopwatch sw;
  std::vector<double> out;
  out.reserve(pits.size());
  int64_t bs = std::max<int64_t>(1, config_.batch_size);
  for (size_t start = 0; start < pits.size(); start += static_cast<size_t>(bs)) {
    size_t end = std::min(pits.size(), start + static_cast<size_t>(bs));
    std::vector<Pit> batch(pits.begin() + static_cast<int64_t>(start),
                           pits.begin() + static_cast<int64_t>(end));
    std::vector<std::vector<double>> batch_feats;
    for (size_t i = start; i < end; ++i) {
      batch_feats.push_back(OdtFeatures(odts[i], grid_));
    }
    Tensor pred = estimator_->ForwardBatch(batch, batch_feats);
    for (int64_t i = 0; i < pred.numel(); ++i) {
      out.push_back(static_cast<double>(pred.at(i)) * target_std_ + target_mean_);
    }
  }
  static obs::Histogram* latency =
      obs::MetricsRegistry::Get().GetHistogram("dot_oracle_stage2_latency_us");
  latency->Observe(sw.ElapsedSeconds() * 1e6);
  return out;
}

Status DotOracle::AdoptStage1(const DotOracle& other) {
  if (!other.stage1_trained_) {
    return Status::FailedPrecondition("source oracle's stage 1 is untrained");
  }
  auto src = other.denoiser_->NamedParameters();
  auto dst = denoiser_->NamedParameters();
  if (src.size() != dst.size()) {
    return Status::InvalidArgument("denoiser architectures differ");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].first != dst[i].first ||
        src[i].second.shape() != dst[i].second.shape()) {
      return Status::InvalidArgument("denoiser parameter mismatch at " +
                                     src[i].first);
    }
    dst[i].second.CopyDataFrom(src[i].second);
  }
  gemm::ClearQuantCache();  // in-place weight adoption invalidates panels
  stage1_trained_ = true;
  return Status::OK();
}

namespace {
// Sealed-container magics (util/checkpoint.h). The pre-hardening formats
// ("DOT1"/"DOTS1", no CRC footer) are no longer readable; stale caches
// fail Load and are simply retrained and overwritten.
constexpr char kOracleMagic[] = "DOTCKPT";
constexpr char kStage1Magic[] = "DOTS1CKPT";
constexpr uint64_t kCheckpointVersion = 1;
}  // namespace

Status DotOracle::SaveStage1(const std::string& path) const {
  if (!stage1_trained_) {
    return Status::FailedPrecondition("stage 1 untrained");
  }
  CheckpointWriter w(path, kStage1Magic, kCheckpointVersion);
  if (!w.Ok()) return Status::IOError("cannot open " + path);
  DOT_RETURN_NOT_OK(denoiser_->Save(w.writer()));
  return w.Commit();
}

Status DotOracle::LoadStage1(const std::string& path) {
  if (DOT_FAILPOINT("dot_oracle.load") == fail::Action::kError) {
    return Status::IOError("failpoint 'dot_oracle.load' fired for " + path);
  }
  DOT_ASSIGN_OR_RETURN(CheckpointReader r, CheckpointReader::Open(
                                               path, kStage1Magic,
                                               kCheckpointVersion));
  DOT_RETURN_NOT_OK(denoiser_->Load(&r.reader()));
  stage1_trained_ = true;
  return Status::OK();
}

Status DotOracle::SaveFile(const std::string& path) const {
  if (!stage1_trained_ || !stage2_trained_) {
    return Status::FailedPrecondition("cannot save an untrained oracle");
  }
  CheckpointWriter w(path, kOracleMagic, kCheckpointVersion);
  if (!w.Ok()) return Status::IOError("cannot open " + path);
  w.writer()->WriteF64(target_mean_);
  w.writer()->WriteF64(target_std_);
  DOT_RETURN_NOT_OK(denoiser_->Save(w.writer()));
  DOT_RETURN_NOT_OK(estimator_->module()->Save(w.writer()));
  return w.Commit();
}

Status DotOracle::LoadFile(const std::string& path) {
  if (DOT_FAILPOINT("dot_oracle.load") == fail::Action::kError) {
    return Status::IOError("failpoint 'dot_oracle.load' fired for " + path);
  }
  DOT_ASSIGN_OR_RETURN(CheckpointReader r, CheckpointReader::Open(
                                               path, kOracleMagic,
                                               kCheckpointVersion));
  double mean = r.reader().ReadF64();
  double std = r.reader().ReadF64();
  if (!r.reader().Ok() || !std::isfinite(mean) || !std::isfinite(std) ||
      std <= 0) {
    return Status::InvalidArgument("oracle checkpoint: bad target stats in " +
                                   path);
  }
  DOT_RETURN_NOT_OK(denoiser_->Load(&r.reader()));
  DOT_RETURN_NOT_OK(estimator_->module()->Load(&r.reader()));
  target_mean_ = mean;
  target_std_ = std;
  stage1_trained_ = true;
  stage2_trained_ = true;
  return Status::OK();
}

Result<DotEstimate> DotOracle::Estimate(const OdtInput& odt) {
  Result<std::vector<DotEstimate>> batch = EstimateBatch({odt});
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<std::vector<DotEstimate>> DotOracle::EstimateBatch(
    const std::vector<OdtInput>& odts) {
  if (!stage1_trained_ || !stage2_trained_) {
    return Status::FailedPrecondition("oracle not trained");
  }
  if (odts.empty()) return std::vector<DotEstimate>{};
  obs::TraceSpan span("DotOracle::EstimateBatch");
  std::vector<Pit> pits = InferPits(odts);
  std::vector<double> minutes = EstimateFromPits(pits, odts);
  std::vector<DotEstimate> out;
  out.reserve(odts.size());
  for (size_t i = 0; i < odts.size(); ++i) {
    out.push_back(DotEstimate{minutes[i], std::move(pits[i])});
  }
  return out;
}

}  // namespace dot
