#include "core/dot_oracle.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "tensor/gemm_kernel.h"
#include "util/checkpoint.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dot {

const char* ServedQualityName(ServedQuality q) {
  switch (q) {
    case ServedQuality::kFull: return "full";
    case ServedQuality::kReducedSteps: return "reduced_steps";
    case ServedQuality::kCachedNeighbor: return "cached_neighbor";
    case ServedQuality::kFallback: return "fallback";
  }
  return "unknown";
}

DotOracle::DotOracle(const DotConfig& config, const Grid& grid)
    : config_(config),
      grid_(grid),
      diffusion_(DiffusionSchedule(config.diffusion_steps),
                 config.parameterization),
      rng_(config.seed) {
  DOT_CHECK(grid.grid_size() == config.grid_size)
      << "grid resolution must match config.grid_size";
  DotConfig& cfg = config_;
  cfg.unet.max_steps = std::max(cfg.unet.max_steps, cfg.diffusion_steps);
  cfg.estimator.grid_size = cfg.grid_size;
  Rng init_rng(config.seed ^ 0xD07);
  denoiser_ = std::make_unique<UnetDenoiser>(cfg.unet, &init_rng);
  estimator_ = MakeEstimator(cfg.estimator_kind, cfg.estimator, &init_rng);
}

std::vector<float> DotOracle::EncodeCondition(const OdtInput& odt) const {
  std::vector<float> cond = EncodeOdt(odt, grid_);
  if (!config_.use_od_condition) {
    cond[0] = cond[1] = cond[2] = cond[3] = 0.0f;
  }
  if (!config_.use_time_condition) cond[4] = 0.0f;
  return cond;
}

Pit DotOracle::GroundTruthPit(const Trajectory& t) const {
  return Pit::Build(t, grid_, config_.pit_interpolate);
}

std::vector<Pit> DotOracle::InferPits(const std::vector<OdtInput>& odts) {
  return InferPitsImpl(odts, 0, nullptr);
}

Result<std::vector<Pit>> DotOracle::TryInferPits(
    const std::vector<OdtInput>& odts, int64_t sample_steps) {
  if (!stage1_trained_) {
    return Status::FailedPrecondition("stage 1 untrained");
  }
  if (DOT_FAILPOINT("dot_oracle.infer_pits") == fail::Action::kError) {
    return Status::Internal("failpoint 'dot_oracle.infer_pits' fired");
  }
  bool sane = true;
  std::vector<Pit> pits = InferPitsImpl(odts, sample_steps, &sane);
  if (!sane) {
    return Status::Internal("stage 1 sampler produced non-finite PiT values");
  }
  return pits;
}

std::vector<Pit> DotOracle::InferPitsImpl(const std::vector<OdtInput>& odts,
                                          int64_t sample_steps, bool* sane) {
  DOT_CHECK(stage1_trained_) << "InferPits before TrainStage1";
  // Stage-1 half of the estimation cost (Table 5: diffusion sampling
  // dominates) — kept as a separate span + histogram so the split stays
  // visible in traces and metrics.
  obs::TraceSpan span("DotOracle::InferPits");
  Stopwatch sw;
  std::vector<Pit> out;
  out.reserve(odts.size());
  int64_t l = config_.grid_size;
  int64_t bs = std::max<int64_t>(1, config_.batch_size);
  int64_t steps = sample_steps > 0 ? sample_steps : config_.sample_steps;
  for (size_t start = 0; start < odts.size(); start += static_cast<size_t>(bs)) {
    int64_t b = std::min<int64_t>(bs, static_cast<int64_t>(odts.size() - start));
    Tensor cond = Tensor::Empty({b, 5});
    for (int64_t i = 0; i < b; ++i) {
      auto c = EncodeCondition(odts[start + static_cast<size_t>(i)]);
      std::copy(c.begin(), c.end(), cond.data() + i * 5);
    }
    Tensor x;
    std::vector<int64_t> shape = {b, kPitChannels, l, l};
    if (config_.ancestral_sampling && sample_steps <= 0) {
      x = diffusion_.Sample(*denoiser_, cond, shape, &rng_);
    } else {
      x = diffusion_.SampleStrided(*denoiser_, cond, shape, steps, &rng_);
    }
    if (sane != nullptr && *sane) {
      // Scan the raw sampler output: Canonicalize would clamp values and
      // could mask a diverged pass.
      for (int64_t i = 0; i < x.numel(); ++i) {
        if (!std::isfinite(x.at(i))) {
          *sane = false;
          break;
        }
      }
    }
    for (int64_t i = 0; i < b; ++i) {
      Tensor one = Tensor::Empty({kPitChannels, l, l});
      std::copy(x.data() + i * one.numel(), x.data() + (i + 1) * one.numel(),
                one.data());
      Pit pit = Pit::FromTensor(one).ValueOrDie();
      pit.Canonicalize(config_.mask_threshold);
      if (config_.augment_endpoints) {
        const OdtInput& odt = odts[start + static_cast<size_t>(i)];
        float tod = static_cast<float>(NormalizedTimeOfDay(odt.departure_time));
        Cell o = grid_.Locate(odt.origin);
        if (!pit.Visited(o.row, o.col)) {
          pit.Set(kPitMask, o.row, o.col, 1.0f);
          pit.Set(kPitTimeOfDay, o.row, o.col, tod);
          pit.Set(kPitTimeOffset, o.row, o.col, -1.0f);
        }
        Cell d = grid_.Locate(odt.destination);
        if (!pit.Visited(d.row, d.col)) {
          pit.Set(kPitMask, d.row, d.col, 1.0f);
          pit.Set(kPitTimeOfDay, d.row, d.col, tod);
          pit.Set(kPitTimeOffset, d.row, d.col, 1.0f);
        }
      }
      out.push_back(std::move(pit));
    }
  }
  static obs::Histogram* latency =
      obs::MetricsRegistry::Get().GetHistogram("dot_oracle_stage1_latency_us");
  // Same series into the rolling window: its p95 drives the degradation
  // ladder's deadline triage (current load, not process history).
  static obs::RollingHistogram* latency_window =
      obs::MetricsRegistry::Get().GetWindow("dot_oracle_stage1_latency_us");
  latency->Observe(sw.ElapsedSeconds() * 1e6);
  latency_window->Observe(sw.ElapsedSeconds() * 1e6);
  return out;
}

std::vector<double> DotOracle::EstimateFromPits(
    const std::vector<Pit>& pits, const std::vector<OdtInput>& odts) const {
  DOT_CHECK(stage2_trained_) << "EstimateFromPits before TrainStage2";
  DOT_CHECK(odts.size() == pits.size()) << "odts must parallel pits";
  NoGradGuard guard;
  obs::TraceSpan span("DotOracle::EstimateFromPits");
  Stopwatch sw;
  std::vector<double> out;
  out.reserve(pits.size());
  int64_t bs = std::max<int64_t>(1, config_.batch_size);
  for (size_t start = 0; start < pits.size(); start += static_cast<size_t>(bs)) {
    size_t end = std::min(pits.size(), start + static_cast<size_t>(bs));
    std::vector<Pit> batch(pits.begin() + static_cast<int64_t>(start),
                           pits.begin() + static_cast<int64_t>(end));
    std::vector<std::vector<double>> batch_feats;
    for (size_t i = start; i < end; ++i) {
      batch_feats.push_back(OdtFeatures(odts[i], grid_));
    }
    Tensor pred = estimator_->ForwardBatch(batch, batch_feats);
    for (int64_t i = 0; i < pred.numel(); ++i) {
      out.push_back(static_cast<double>(pred.at(i)) * target_std_ + target_mean_);
    }
  }
  static obs::Histogram* latency =
      obs::MetricsRegistry::Get().GetHistogram("dot_oracle_stage2_latency_us");
  latency->Observe(sw.ElapsedSeconds() * 1e6);
  return out;
}

Status DotOracle::AdoptStage1(const DotOracle& other) {
  if (!other.stage1_trained_) {
    return Status::FailedPrecondition("source oracle's stage 1 is untrained");
  }
  auto src = other.denoiser_->NamedParameters();
  auto dst = denoiser_->NamedParameters();
  if (src.size() != dst.size()) {
    return Status::InvalidArgument("denoiser architectures differ");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].first != dst[i].first ||
        src[i].second.shape() != dst[i].second.shape()) {
      return Status::InvalidArgument("denoiser parameter mismatch at " +
                                     src[i].first);
    }
    dst[i].second.CopyDataFrom(src[i].second);
  }
  gemm::ClearQuantCache();  // in-place weight adoption invalidates panels
  stage1_trained_ = true;
  return Status::OK();
}

namespace {
// Sealed-container magics (util/checkpoint.h). The pre-hardening formats
// ("DOT1"/"DOTS1", no CRC footer) are no longer readable; stale caches
// fail Load and are simply retrained and overwritten.
constexpr char kOracleMagic[] = "DOTCKPT";
constexpr char kStage1Magic[] = "DOTS1CKPT";
constexpr uint64_t kCheckpointVersion = 1;
}  // namespace

Status DotOracle::SaveStage1(const std::string& path) const {
  if (!stage1_trained_) {
    return Status::FailedPrecondition("stage 1 untrained");
  }
  CheckpointWriter w(path, kStage1Magic, kCheckpointVersion);
  if (!w.Ok()) return Status::IOError("cannot open " + path);
  DOT_RETURN_NOT_OK(denoiser_->Save(w.writer()));
  return w.Commit();
}

Status DotOracle::LoadStage1(const std::string& path) {
  if (DOT_FAILPOINT("dot_oracle.load") == fail::Action::kError) {
    return Status::IOError("failpoint 'dot_oracle.load' fired for " + path);
  }
  DOT_ASSIGN_OR_RETURN(CheckpointReader r, CheckpointReader::Open(
                                               path, kStage1Magic,
                                               kCheckpointVersion));
  DOT_RETURN_NOT_OK(denoiser_->Load(&r.reader()));
  stage1_trained_ = true;
  return Status::OK();
}

Status DotOracle::SaveFile(const std::string& path) const {
  if (!stage1_trained_ || !stage2_trained_) {
    return Status::FailedPrecondition("cannot save an untrained oracle");
  }
  CheckpointWriter w(path, kOracleMagic, kCheckpointVersion);
  if (!w.Ok()) return Status::IOError("cannot open " + path);
  w.writer()->WriteF64(target_mean_);
  w.writer()->WriteF64(target_std_);
  DOT_RETURN_NOT_OK(denoiser_->Save(w.writer()));
  DOT_RETURN_NOT_OK(estimator_->module()->Save(w.writer()));
  return w.Commit();
}

Status DotOracle::LoadFile(const std::string& path) {
  if (DOT_FAILPOINT("dot_oracle.load") == fail::Action::kError) {
    return Status::IOError("failpoint 'dot_oracle.load' fired for " + path);
  }
  DOT_ASSIGN_OR_RETURN(CheckpointReader r, CheckpointReader::Open(
                                               path, kOracleMagic,
                                               kCheckpointVersion));
  double mean = r.reader().ReadF64();
  double std = r.reader().ReadF64();
  if (!r.reader().Ok() || !std::isfinite(mean) || !std::isfinite(std) ||
      std <= 0) {
    return Status::InvalidArgument("oracle checkpoint: bad target stats in " +
                                   path);
  }
  DOT_RETURN_NOT_OK(denoiser_->Load(&r.reader()));
  DOT_RETURN_NOT_OK(estimator_->module()->Load(&r.reader()));
  target_mean_ = mean;
  target_std_ = std;
  stage1_trained_ = true;
  stage2_trained_ = true;
  return Status::OK();
}

Result<DotEstimate> DotOracle::Estimate(const OdtInput& odt) {
  Result<std::vector<DotEstimate>> batch = EstimateBatch({odt});
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<std::vector<DotEstimate>> DotOracle::EstimateBatch(
    const std::vector<OdtInput>& odts) {
  if (!stage1_trained_ || !stage2_trained_) {
    return Status::FailedPrecondition("oracle not trained");
  }
  if (odts.empty()) return std::vector<DotEstimate>{};
  obs::TraceSpan span("DotOracle::EstimateBatch");
  std::vector<Pit> pits = InferPits(odts);
  std::vector<double> minutes = EstimateFromPits(pits, odts);
  std::vector<DotEstimate> out;
  out.reserve(odts.size());
  for (size_t i = 0; i < odts.size(); ++i) {
    out.push_back(DotEstimate{minutes[i], std::move(pits[i])});
  }
  return out;
}

}  // namespace dot
