// A worker shard of the sharded oracle service (DESIGN.md §5i): one
// OracleShard owns one model replica (a DotOracle loaded from a sealed
// checkpoint), one OracleService (its own LRU cache + degradation ladder),
// and its own health state. The router (serve/router.h) partitions query
// waves across shards by OD-pair hash; each shard serves its sub-wave
// serially, so N shards give the process N independent serving lanes with
// independent failure domains.
//
// Health state machine:
//
//        p95 over threshold                consecutive stage-1 failures
//   healthy <-----------> degraded ----------------+
//      ^                                           v
//      +------------- probe success ------- quarantined
//                                          (probe on traffic, exponential
//                                           backoff between probes)
//
//   - healthy/degraded shards serve the full path (QueryBatch). Degraded
//     is a triage annotation from the shard's rolling-window p95 — the
//     shard still serves, operators see pressure building before failures.
//   - A stage-1 failure (retries exhausted, NaN-poisoned sampler — NOT a
//     deadline-driven degradation) bumps a consecutive-failure counter;
//     at quarantine_after_failures the shard is quarantined.
//   - Quarantined shards answer every wave through the PR 3 degradation
//     ladder without touching stage 1 (OracleService::QueryDegraded):
//     exact cached bucket, neighboring time-of-day bucket, fallback
//     estimate — tagged with ServedQuality so clients can tell. No wave is
//     ever dropped.
//   - Once the probe backoff elapses, the next wave for the shard is the
//     probe: it runs the full path, and success flips the shard healthy
//     while failure doubles the backoff.
//
// Zero-downtime hot swap: HotSwap() builds a shadow model via the shard's
// ModelFactory (normally a sealed-checkpoint load), warms it with a canary
// batch of recently-served ODs, and atomically publishes a new versioned
// runtime. In-flight waves keep a shared_ptr to the old runtime and finish
// on the old model; the swap never blocks serving.
//
// Fault injection: the `serve.shard_dispatch` failpoint (and its per-shard
// variant `serve.shard_dispatch.<id>`) fires before each full-path
// dispatch. `error`/`nan` simulate a crashed / poisoned model call (the
// wave is answered through the ladder and counts as a shard failure);
// `delay` injects latency ahead of the dispatch (exercises the p95 triage).

#ifndef DOT_CORE_SHARD_H_
#define DOT_CORE_SHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/oracle_service.h"
#include "obs/window.h"
#include "util/failpoint.h"

namespace dot {

/// \brief Shard health (DESIGN.md §5i). Gauge values are the enum values.
enum class ShardHealth : int {
  kHealthy = 0,
  kDegraded = 1,     ///< serving, but windowed p95 is over the threshold
  kQuarantined = 2,  ///< full path disabled; serving through the ladder
};

/// Short lowercase name ("healthy", "degraded", "quarantined").
const char* ShardHealthName(ShardHealth h);

/// Builds a fresh trained model replica for a shard — normally by loading
/// a sealed checkpoint. Called at shard creation and again on every
/// HotSwap() (the swap's shadow model).
using ModelFactory = std::function<Result<std::unique_ptr<DotOracle>>()>;

/// \brief Per-shard configuration.
struct ShardConfig {
  /// Stable identifier: the ring position key, the metric label, and the
  /// per-shard failpoint suffix (`serve.shard_dispatch.<id>`).
  std::string shard_id;

  /// Consecutive stage-1 failures before the shard is quarantined.
  int64_t quarantine_after_failures = 3;
  /// Windowed-p95 threshold (microseconds per wave) above which a healthy
  /// shard is marked degraded. 0 disables the triage.
  double degraded_p95_us = 0;
  /// Minimum window samples before the p95 triage may fire (a single slow
  /// wave after an idle minute is not a trend).
  int64_t degraded_min_samples = 5;

  /// First probe is scheduled this long after quarantine...
  double probe_backoff_initial_ms = 200;
  /// ...and each failed probe doubles the wait, capped here.
  double probe_backoff_max_ms = 10000;

  /// ODs retained from recently-served waves to warm a swap's shadow model
  /// (0 = swap without a canary pass).
  int64_t canary_capacity = 4;

  /// Cache / ladder configuration of the shard's OracleService.
  OracleServiceConfig service;

  /// Rolling window of the p95 triage (seconds).
  double window_seconds = 60.0;
  double window_bucket_seconds = 5.0;

  /// Injectable monotonic clock, milliseconds. Tests drive probe backoff
  /// deterministically; empty = steady_clock.
  std::function<double()> now_ms;
};

/// \brief Point-in-time shard status (rendered by /shardz).
struct ShardStatus {
  std::string id;
  ShardHealth health = ShardHealth::kHealthy;
  int64_t model_version = 0;
  int64_t consecutive_failures = 0;
  int64_t waves = 0;
  int64_t queries = 0;
  int64_t failures = 0;     ///< stage-1/dispatch failures observed
  int64_t quarantines = 0;  ///< healthy->quarantined transitions
  int64_t probes = 0;       ///< probe waves attempted while quarantined
  int64_t swaps = 0;        ///< completed hot swaps
  int64_t cache_size = 0;
  double window_p95_us = 0;
  /// Milliseconds until the next probe is due (0 when not quarantined).
  double next_probe_in_ms = 0;
};

/// \brief One worker shard: model replica + cache + health machine.
class OracleShard {
 public:
  /// Builds the shard's first model via `factory`. Fails if the factory
  /// fails or produces an untrained model.
  static Result<std::unique_ptr<OracleShard>> Create(ModelFactory factory,
                                                     ShardConfig config);

  /// Serves one sub-wave (the router's per-shard slice). Never loses a
  /// request: failures and quarantine serve degraded-tagged answers through
  /// the ladder. Only invalid input / an untrained model error. Waves on
  /// one shard are serialized (the shard's thread budget is one wave).
  Result<std::vector<DotEstimate>> ServeWave(const std::vector<OdtInput>& odts,
                                             const QueryOptions& opts);

  /// Zero-downtime model swap: shadow-load via the factory, canary-warm,
  /// atomically publish a new versioned runtime. In-flight waves finish on
  /// the old model. A factory failure, untrained model, or failed canary
  /// leaves the current model serving and returns the error. On success
  /// the shard re-enters kHealthy (the failure history belonged to the old
  /// model) with a cold cache (cached PiTs were the old model's output).
  Status HotSwap();

  ShardHealth health() const;
  int64_t model_version() const;
  ShardStatus status() const;
  /// JSON object for /shardz.
  std::string StatusJson() const;

  const std::string& id() const { return config_.shard_id; }

 private:
  OracleShard(ShardConfig config);

  /// The versioned model runtime a wave pins for its whole duration.
  struct ModelRuntime {
    std::shared_ptr<DotOracle> oracle;
    std::unique_ptr<OracleService> service;
    int64_t version = 0;
  };

  double NowMs() const;
  std::shared_ptr<ModelRuntime> CurrentRuntime() const;
  /// Builds a runtime around a factory-produced oracle (shared by Create
  /// and HotSwap).
  static Result<std::shared_ptr<ModelRuntime>> BuildRuntime(
      const ModelFactory& factory, const ShardConfig& config,
      int64_t version);

  /// Health bookkeeping after a full-path wave. Caller holds serve_mu_.
  void OnDispatchFailure();
  void OnDispatchSuccess();
  void SetHealthLocked(ShardHealth h);  // caller holds state_mu_

  /// Tallies quality labels + the cache-hit delta of a served wave.
  void RecordWaveMetrics(const std::vector<DotEstimate>& estimates,
                         OracleService* service);

  ShardConfig config_;
  ModelFactory factory_;

  // Resolved once; per-call cost is one relaxed load when disarmed. The
  // DOT_FAILPOINT macro caches per *call site*, which would pin the first
  // shard's name — resolved explicitly instead.
  fail::Failpoint* fp_dispatch_;        // serve.shard_dispatch
  fail::Failpoint* fp_dispatch_shard_;  // serve.shard_dispatch.<id>

  // Per-shard registry metrics (labels {shard=<id>}), resolved once.
  struct Metrics {
    Metrics(const std::string& id);
    obs::Counter* waves;
    obs::Counter* queries;
    obs::Counter* failures;
    obs::Counter* quarantines;
    obs::Counter* probes;
    obs::Counter* swaps;
    obs::Counter* cache_hits;
    obs::Counter* quality[4];  // indexed by ServedQuality
    obs::Gauge* health;
    obs::Gauge* model_version;
  };
  Metrics metrics_;

  /// Rolling wave-latency window feeding the degraded-p95 triage. Owned
  /// here (not the registry's): the triage threshold is per shard and the
  /// window must reset on swap.
  obs::RollingHistogram window_;

  mutable std::mutex serve_mu_;  // serializes waves on this shard
  mutable std::mutex model_mu_;  // guards runtime_ (the swap point)
  std::shared_ptr<ModelRuntime> runtime_;
  std::mutex swap_mu_;  // serializes HotSwap calls

  mutable std::mutex state_mu_;  // guards everything below
  ShardHealth health_ = ShardHealth::kHealthy;
  int64_t consecutive_failures_ = 0;
  double probe_backoff_ms_ = 0;
  double next_probe_ms_ = 0;  // clock time the next probe is due
  int64_t last_cache_hits_ = 0;  // service cache_hits at last wave
  std::vector<OdtInput> canary_;  // ring: most recent ODs for swap warmup
  size_t canary_next_ = 0;        // ring write cursor
  ShardStatus stats_;
};

}  // namespace dot

#endif  // DOT_CORE_SHARD_H_
