// The DOT ODT-Oracle facade (paper Sec. 3.3): stage-1 conditioned
// diffusion PiT inference + stage-2 MViT travel-time estimation, trained
// separately (Sec. 5, last paragraph).

#ifndef DOT_CORE_DOT_ORACLE_H_
#define DOT_CORE_DOT_ORACLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/diffusion.h"
#include "core/estimator.h"
#include "core/unet.h"
#include "eval/dataset.h"
#include "geo/pit.h"
#include "train/trainer.h"
#include "util/result.h"

namespace dot {

/// \brief Full configuration of a DOT oracle.
struct DotConfig {
  int64_t grid_size = 20;        ///< L_G (paper Table 2 optimum)
  int64_t diffusion_steps = 1000;  ///< N
  /// Strided DDIM evaluation steps at inference; diffusion_steps for the
  /// paper's full ancestral process (see `ancestral_sampling`).
  int64_t sample_steps = 25;
  bool ancestral_sampling = false;  ///< Algorithm 1's step-by-step sampler

  UnetConfig unet;              ///< levels = L_D
  EstimatorConfig estimator;    ///< embed_dim = d_E, layers = L_E
  EstimatorKind estimator_kind = EstimatorKind::kMvit;

  /// Denoiser regression target. kEpsilon is the paper's Algorithm 2;
  /// kX0 is its exact reparameterization (DDPM Sec. 3.2), which trains far
  /// better at CPU scale (DESIGN.md §4b) and is therefore the default here.
  Parameterization parameterization = Parameterization::kX0;

  int64_t stage1_epochs = 4;
  int64_t stage2_epochs = 8;
  int64_t batch_size = 8;
  float lr = 1e-3f;             ///< Adam, as in Sec. 6.3
  /// Densify sparse GPS tracks when rasterizing PiTs (cells crossed between
  /// consecutive samples are filled in).
  bool pit_interpolate = true;
  /// Mask-channel decision threshold applied to sampled PiTs (see
  /// Pit::Canonicalize). Slightly negative recovers soft route cells.
  float mask_threshold = -0.3f;
  /// Fraction of the stage-2 training PiTs replaced by stage-1 *inferred*
  /// PiTs (capped by stage2_inferred_cap). The estimator serves inferred
  /// PiTs at query time; training on them closes the
  /// ground-truth-vs-inferred distribution gap (the "inferred training set"
  /// reading of Sec. 6.3) and measurably improves accuracy.
  double stage2_inferred_fraction = 1.0;
  int64_t stage2_inferred_cap = 800;
  /// Enforce the PiT validity invariant on inferred PiTs: every real PiT
  /// contains its origin and destination cells (the trajectory endpoints,
  /// Def. 2), so mark them visited with offset -1/+1 if sampling missed
  /// them.
  bool augment_endpoints = true;
  /// Early-stop stage 2 on this many inferred validation PiTs (0 = skip
  /// early stopping).
  int64_t val_samples = 64;

  /// Condition ablations (Table 7): No-t drops the departure time, No-od
  /// drops the endpoints, both off reproduces No-odt.
  bool use_time_condition = true;
  bool use_od_condition = true;

  /// L2 gradient-norm clip applied before every optimizer step (0 = off).
  float grad_clip_norm = 0.0f;
  /// Training fault tolerance: a step whose loss or gradient norm is
  /// non-finite is skipped (the optimizer never sees it); after this many
  /// *consecutive* poisoned steps the stage rolls back to its last-good
  /// weights (snapshot refreshed at every healthy epoch boundary). 0
  /// disables rollback (poisoned steps are still skipped).
  int64_t rollback_after_bad_steps = 3;

  uint64_t seed = 1;
  bool verbose = false;
};

/// \brief How a serving answer was produced — the degradation ladder level
/// (DESIGN.md §5d). Ordered best-first: quality a > quality b iff a's enum
/// value is smaller.
enum class ServedQuality : int {
  kFull = 0,            ///< full reverse-diffusion pass at configured steps
  kReducedSteps = 1,    ///< DDIM pass with fewer steps (deadline pressure)
  kCachedNeighbor = 2,  ///< PiT borrowed from a neighboring ToD bucket
  kFallback = 3,        ///< cheap fallback estimator (or prior mean); no PiT
};

/// Short name for logs/metric labels ("full", "reduced_steps", ...).
const char* ServedQualityName(ServedQuality q);

/// \brief Knobs of one continual fine-tune pass (DESIGN.md §5k): a short,
/// low-LR run over a fresh trajectory window mixed with replayed history,
/// bounded so it can run online between hot swaps.
struct FineTuneConfig {
  int64_t stage1_epochs = 1;   ///< denoiser epochs (0 = stage 2 only)
  int64_t stage2_epochs = 2;   ///< estimator epochs
  /// LR multiplier on the oracle's base lr (fine-tuning nudges, it does not
  /// retrain).
  double lr_scale = 0.2;
  /// Replayed old samples per fresh sample (guards against catastrophic
  /// forgetting of the pre-incident distribution).
  double replay_fraction = 0.5;
  /// Hard cap on the mixed set (bounds one round's wall time).
  int64_t max_samples = 768;
};

/// \brief An oracle answer: the travel time and the inferred PiT
/// (the explainability output, Sec. 6.6), tagged with the ladder level
/// that produced it.
struct DotEstimate {
  double minutes = 0;
  Pit pit{1};
  ServedQuality quality = ServedQuality::kFull;
  /// Per-query confidence signal (DESIGN.md §5k): cross-draw spread over
  /// K reduced-step diffusion draws plus a magnitude-proportional floor
  /// (see EstimateUncertainty). Negative when not computed for this answer.
  double uncertainty_minutes = -1;
};

/// \brief Two-stage DOT model.
class DotOracle {
 public:
  /// `grid` must cover the query area at config.grid_size resolution.
  DotOracle(const DotConfig& config, const Grid& grid);

  /// Stage 1 (Algorithm 2): trains the conditioned PiT denoiser on the
  /// historical trajectories.
  Status TrainStage1(const std::vector<TripSample>& train);

  /// Stage 2 (Eq. 23): trains the PiT travel-time estimator on ground-truth
  /// training PiTs, early-stopped on *inferred* validation PiTs as in
  /// Sec. 6.3. Stage 1 must have been trained first.
  Status TrainStage2(const std::vector<TripSample>& train,
                     const std::vector<TripSample>& val);

  /// Continual fine-tune (DESIGN.md §5k): a short low-LR run of both stages
  /// over `fresh` (the recent trajectory window) mixed with a replay
  /// subsample of `old` (the original training distribution). Target
  /// normalization stays frozen so serving semantics don't shift. Requires
  /// a fully trained (or loaded) oracle. Metrics and the nan_loss failpoint
  /// use the "finetune" stage tag.
  Status FineTune(const std::vector<TripSample>& fresh,
                  const std::vector<TripSample>& old,
                  const FineTuneConfig& config);

  /// Per-query uncertainty from `draws` independent diffusion draws at
  /// `sample_steps` DDIM steps (0 = configured count): the standard
  /// deviation of the estimated minutes across draws plus a relative
  /// (heteroscedastic) floor proportional to the query's magnitude — the
  /// draw-mean minutes and the sampled route extent in grid cells, the
  /// latter because TTE error grows with trip length even when the scalar
  /// estimate regresses long trips toward the mean. Each value is observed
  /// into the `dot_oracle_uncertainty_minutes` histogram + rolling window,
  /// and is monotone with actual error on the demo world
  /// (tests/adaptation_test.cc), which is what lets the serving ladder
  /// triage low-confidence answers.
  Result<std::vector<double>> EstimateUncertainty(
      const std::vector<OdtInput>& odts, int64_t draws,
      int64_t sample_steps = 0);

  /// Full oracle query (Eq. 1): odt -> (travel time, inferred PiT).
  Result<DotEstimate> Estimate(const OdtInput& odt);

  /// Batched oracle query: one reverse-diffusion process denoises all B
  /// PiTs together and one stage-2 pass estimates their travel times. The
  /// results are bitwise identical to calling Estimate sequentially on the
  /// same oracle state (the samplers fork one noise stream per query, in
  /// query order), so batching is purely a throughput optimization.
  Result<std::vector<DotEstimate>> EstimateBatch(
      const std::vector<OdtInput>& odts);

  /// Stage-1 only: infers PiTs for a batch of queries.
  std::vector<Pit> InferPits(const std::vector<OdtInput>& odts);

  /// Failure-aware stage 1 for the serving path: honors the
  /// `dot_oracle.infer_pits` failpoint, runs the reverse pass with
  /// `sample_steps` DDIM steps (0 = the configured count; the degradation
  /// ladder passes fewer under deadline pressure), and rejects non-finite
  /// sampler output with Internal instead of handing poisoned PiTs to
  /// stage 2.
  Result<std::vector<Pit>> TryInferPits(const std::vector<OdtInput>& odts,
                                        int64_t sample_steps = 0);

  /// Stage-2 only: estimates minutes from already-inferred PiTs. `odts`
  /// must be parallel to `pits` (the estimator's wide component reads the
  /// query features; see EstimatorConfig::use_odt_features).
  std::vector<double> EstimateFromPits(const std::vector<Pit>& pits,
                                       const std::vector<OdtInput>& odts) const;

  /// Rasterizes a trajectory on this oracle's grid (ground-truth PiT).
  Pit GroundTruthPit(const Trajectory& t) const;

  /// Encodes an ODT-Input honoring the condition ablation switches.
  std::vector<float> EncodeCondition(const OdtInput& odt) const;

  int64_t Stage1NumParams() const { return denoiser_->NumParams(); }
  int64_t Stage2NumParams() const { return estimator_->module()->NumParams(); }
  int64_t NumParams() const { return Stage1NumParams() + Stage2NumParams(); }

  /// True once both stages are trained (or loaded) and Estimate* may run.
  bool trained() const { return stage1_trained_ && stage2_trained_; }

  const DotConfig& config() const { return config_; }
  const Grid& grid() const { return grid_; }
  const UnetDenoiser& denoiser() const { return *denoiser_; }

  /// Mean stage-1 training loss of the last epoch (diagnostics).
  double last_stage1_loss() const { return last_stage1_loss_; }

  /// Reports of the last TrainStage1 / TrainStage2 / FineTune runs
  /// (per-epoch loss trajectories, skip/rollback counts).
  const train::TrainReport& stage1_report() const { return stage1_report_; }
  const train::TrainReport& stage2_report() const { return stage2_report_; }
  const train::TrainReport& finetune_report() const {
    return finetune_report_;
  }

  /// Mean travel time of the stage-2 training distribution, minutes — the
  /// serving layer's estimate of last resort when the whole ladder is
  /// exhausted.
  double prior_mean_minutes() const { return target_mean_; }

  /// Persists both stages plus target normalization. The loading oracle
  /// must be constructed with an identical architecture config.
  Status SaveFile(const std::string& path) const;
  Status LoadFile(const std::string& path);

  /// Stage-1-only checkpointing (the denoiser); lets callers iterate on
  /// stage 2 / sampling without repeating the expensive diffusion training.
  Status SaveStage1(const std::string& path) const;
  Status LoadStage1(const std::string& path);

  /// Copies `other`'s trained stage-1 denoiser weights into this oracle
  /// (identical UNet architecture required). Used by the Table-7 ablations
  /// that vary only the stage-2 estimator: the two stages are trained
  /// separately (Sec. 5), so stage 1 can be shared.
  Status AdoptStage1(const DotOracle& other);

 private:
  /// Shared stage-1 body; `sane` (when non-null) is cleared if the sampler
  /// emitted any non-finite value.
  std::vector<Pit> InferPitsImpl(const std::vector<OdtInput>& odts,
                                 int64_t sample_steps, bool* sane);

  /// Shared denoiser training loop (oracle_train.cc): `cosine_lr` enables
  /// the full-training cosine decay; fine-tuning runs at a constant low lr.
  train::TrainReport RunStage1Loop(const std::vector<TripSample>& samples,
                                   const std::string& stage, int64_t epochs,
                                   float lr, bool cosine_lr);
  /// Shared estimator training loop over pre-built PiTs/features/targets;
  /// `validate` (when set) runs after each epoch and returns false to stop.
  train::TrainReport RunStage2Loop(
      const std::vector<Pit>& pits,
      const std::vector<std::vector<double>>& feats,
      const std::vector<float>& norm_targets, const std::string& stage,
      int64_t epochs, float lr,
      const std::function<bool(int64_t)>& validate);

  DotConfig config_;
  Grid grid_;
  Diffusion diffusion_;
  std::unique_ptr<UnetDenoiser> denoiser_;
  std::unique_ptr<PitEstimator> estimator_;
  Rng rng_;
  bool stage1_trained_ = false;
  bool stage2_trained_ = false;
  double target_mean_ = 0, target_std_ = 1;
  double last_stage1_loss_ = 0;
  train::TrainReport stage1_report_;
  train::TrainReport stage2_report_;
  train::TrainReport finetune_report_;
};

}  // namespace dot

#endif  // DOT_CORE_DOT_ORACLE_H_
