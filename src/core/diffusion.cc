#include "core/diffusion.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace dot {

namespace {

/// Failpoint hook shared by both samplers: `diffusion.sample = nan`
/// overwrites the denoised batch with NaNs (a numerically-diverged reverse
/// pass); `delay` injects latency inside Fire() itself.
void MaybeInjectSampleFault(Tensor* x) {
  if (DOT_FAILPOINT("diffusion.sample") == fail::Action::kNan) {
    float nan = std::numeric_limits<float>::quiet_NaN();
    for (int64_t i = 0; i < x->numel(); ++i) x->at(i) = nan;
  }
}

}  // namespace

DiffusionSchedule::DiffusionSchedule(int64_t num_steps, double beta_start,
                                     double beta_end)
    : n_(num_steps) {
  DOT_CHECK(num_steps >= 1) << "diffusion needs at least one step";
  double rescale = 1000.0 / static_cast<double>(num_steps);
  if (beta_start < 0) beta_start = std::min(0.5, 1e-4 * rescale);
  if (beta_end < 0) beta_end = std::min(0.999, 0.02 * rescale);
  beta_.resize(static_cast<size_t>(num_steps));
  alpha_.resize(static_cast<size_t>(num_steps));
  alpha_bar_.resize(static_cast<size_t>(num_steps));
  double bar = 1.0;
  for (int64_t i = 0; i < num_steps; ++i) {
    double frac = num_steps == 1
                      ? 0.0
                      : static_cast<double>(i) / static_cast<double>(num_steps - 1);
    beta_[static_cast<size_t>(i)] = beta_start + frac * (beta_end - beta_start);
    alpha_[static_cast<size_t>(i)] = 1.0 - beta_[static_cast<size_t>(i)];
    bar *= alpha_[static_cast<size_t>(i)];
    alpha_bar_[static_cast<size_t>(i)] = bar;
  }
}

Tensor Diffusion::QSample(const Tensor& x0, const std::vector<int64_t>& steps,
                          const Tensor& eps) const {
  DOT_CHECK(x0.dim() == 4) << "QSample expects [B, C, L, L]";
  DOT_CHECK(SameShape(x0, eps)) << "noise shape mismatch";
  int64_t b = x0.size(0);
  DOT_CHECK(static_cast<int64_t>(steps.size()) == b) << "steps size mismatch";
  Tensor out = Tensor::Empty(x0.shape());
  int64_t per = x0.numel() / b;
  for (int64_t i = 0; i < b; ++i) {
    double ab = schedule_.alpha_bar(steps[static_cast<size_t>(i)]);
    float sa = static_cast<float>(std::sqrt(ab));
    float sn = static_cast<float>(std::sqrt(1.0 - ab));
    const float* x0p = x0.data() + i * per;
    const float* ep = eps.data() + i * per;
    float* op = out.data() + i * per;
    for (int64_t j = 0; j < per; ++j) op[j] = sa * x0p[j] + sn * ep[j];
  }
  return out;
}

Tensor Diffusion::MakeTrainingExample(const Tensor& x0, Rng* rng,
                                      std::vector<int64_t>* steps,
                                      Tensor* eps) const {
  int64_t b = x0.size(0);
  steps->resize(static_cast<size_t>(b));
  for (auto& s : *steps) s = rng->UniformInt(0, schedule_.num_steps() - 1);
  *eps = Tensor::Randn(x0.shape(), rng);
  return QSample(x0, *steps, *eps);
}

void Diffusion::SplitPrediction(float x_t, float model_out, double ab_t,
                                float* x0_hat, float* eps_hat) const {
  float sab = static_cast<float>(std::sqrt(ab_t));
  float snt = static_cast<float>(std::sqrt(1.0 - ab_t));
  if (param_ == Parameterization::kX0) {
    *x0_hat = std::clamp(model_out, -1.0f, 1.0f);
  } else {
    *x0_hat = std::clamp((x_t - snt * model_out) / std::max(1e-8f, sab), -1.0f,
                         1.0f);
  }
  // Noise direction consistent with the (clipped) x0 estimate.
  *eps_hat = snt > 1e-8f ? (x_t - sab * *x0_hat) / snt : model_out;
}

namespace {

/// Span args for one reverse step; built only while tracing (the string
/// construction would otherwise run once per step in the sampling loop).
std::string StepArgs(int64_t step) {
  return "\"step\": " + std::to_string(step);
}

}  // namespace

std::vector<Rng> Diffusion::ForkSampleStreams(Rng* rng, int64_t b) {
  std::vector<Rng> streams;
  streams.reserve(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) streams.push_back(rng->Fork());
  return streams;
}

Tensor Diffusion::InitialNoise(const std::vector<int64_t>& out_shape,
                               std::vector<Rng>* streams) {
  Tensor x = Tensor::Empty(out_shape);
  int64_t b = out_shape[0];
  int64_t per = x.numel() / b;
  for (int64_t i = 0; i < b; ++i) {
    Rng& s = (*streams)[static_cast<size_t>(i)];
    float* p = x.data() + i * per;
    for (int64_t j = 0; j < per; ++j) p[j] = static_cast<float>(s.Normal());
  }
  return x;
}

Tensor Diffusion::Sample(const NoisePredictor& model, const Tensor& cond,
                         const std::vector<int64_t>& out_shape, Rng* rng) const {
  NoGradGuard guard;
  obs::TraceSpan sample_span("Diffusion::Sample");
  int64_t b = out_shape[0];
  // One decorrelated noise stream per sample, forked in batch order. A batch
  // of B consumes exactly B forks from `rng`, so sampling is batch-size
  // invariant: Sample(B=4) is bitwise identical to four Sample(B=1) calls
  // against the same parent generator (the serving-path equivalence the
  // batched oracle relies on).
  std::vector<Rng> streams = ForkSampleStreams(rng, b);
  Tensor x = InitialNoise(out_shape, &streams);
  int64_t per = x.numel() / b;
  std::vector<int64_t> steps(static_cast<size_t>(b));
  // Steady-state allocation contract: x is updated in place, `pred` and
  // every UNet intermediate die each iteration and recycle through the
  // storage pool, and `steps` is reused. After the first iteration warms the
  // free lists, a reverse step performs zero fresh heap allocations
  // (asserted by the allocation-regression test via the pool counters).
  for (int64_t n = schedule_.num_steps() - 1; n >= 0; --n) {
    obs::TraceSpan step_span("reverse_step",
                             obs::TracingEnabled() ? StepArgs(n) : std::string());
    std::fill(steps.begin(), steps.end(), n);
    Tensor pred = model.PredictNoise(x, steps, cond);
    // Eq. 10 via the x0 parameterization with the standard clamp: recover
    // x0_hat = (x_n - sqrt(1-ab_n) eps_theta) / sqrt(ab_n), clip it to the
    // data range [-1, 1] (PiT channels are bounded), then take the DDPM
    // posterior mean. Without the clamp, early steps divide by a tiny
    // sqrt(ab_n) and amplify prediction error catastrophically.
    double alpha = schedule_.alpha(n);
    double beta = schedule_.beta(n);
    double ab = schedule_.alpha_bar(n);
    double ab_prev = n > 0 ? schedule_.alpha_bar(n - 1) : 1.0;
    // Posterior q(x_{n-1} | x_n, x0) coefficients (DDPM Eq. 7).
    float c0 = static_cast<float>(std::sqrt(ab_prev) * beta / (1.0 - ab));
    float ct = static_cast<float>(std::sqrt(alpha) * (1.0 - ab_prev) / (1.0 - ab));
    float sigma = n > 0 ? static_cast<float>(std::sqrt(beta)) : 0.0f;
    const float* pp = pred.data();
    for (int64_t s = 0; s < b; ++s) {
      Rng& stream = streams[static_cast<size_t>(s)];
      float* xp = x.data() + s * per;
      const float* ps = pp + s * per;
      for (int64_t i = 0; i < per; ++i) {
        float x0_hat, eps_hat;
        SplitPrediction(xp[i], ps[i], ab, &x0_hat, &eps_hat);
        float mean = c0 * x0_hat + ct * xp[i];
        float z = sigma > 0 ? static_cast<float>(stream.Normal()) : 0.0f;
        xp[i] = mean + sigma * z;
      }
    }
  }
  MaybeInjectSampleFault(&x);
  return x;
}

Tensor Diffusion::SampleStrided(const NoisePredictor& model, const Tensor& cond,
                                const std::vector<int64_t>& out_shape,
                                int64_t num_eval_steps, Rng* rng) const {
  NoGradGuard guard;
  obs::TraceSpan sample_span("Diffusion::SampleStrided");
  int64_t n_total = schedule_.num_steps();
  num_eval_steps = std::min(num_eval_steps, n_total);
  DOT_CHECK(num_eval_steps >= 1) << "need at least one eval step";
  // Evenly spaced subsequence of steps, descending, always including 0.
  std::vector<int64_t> timeline;
  for (int64_t i = 0; i < num_eval_steps; ++i) {
    int64_t t = (n_total - 1) * (num_eval_steps - 1 - i) /
                std::max<int64_t>(1, num_eval_steps - 1);
    if (timeline.empty() || timeline.back() != t) timeline.push_back(t);
  }
  if (num_eval_steps == 1) timeline = {n_total - 1};

  int64_t b = out_shape[0];
  // Per-sample streams as in Sample(): DDIM only needs the initial noise,
  // but drawing it per sample keeps the sampler batch-size invariant.
  std::vector<Rng> streams = ForkSampleStreams(rng, b);
  Tensor x = InitialNoise(out_shape, &streams);
  std::vector<int64_t> steps(static_cast<size_t>(b));
  for (size_t k = 0; k < timeline.size(); ++k) {
    int64_t t = timeline[k];
    int64_t t_prev = (k + 1 < timeline.size()) ? timeline[k + 1] : -1;
    obs::TraceSpan step_span("reverse_step",
                             obs::TracingEnabled() ? StepArgs(t) : std::string());
    std::fill(steps.begin(), steps.end(), t);
    Tensor pred = model.PredictNoise(x, steps, cond);
    double ab_t = schedule_.alpha_bar(t);
    double ab_prev = t_prev >= 0 ? schedule_.alpha_bar(t_prev) : 1.0;
    // DDIM (eta = 0): x0_hat = (x - sqrt(1-ab_t) eps) / sqrt(ab_t);
    // x_prev = sqrt(ab_prev) x0_hat + sqrt(1 - ab_prev) eps.
    float sab_prev = static_cast<float>(std::sqrt(ab_prev));
    float sn_prev = static_cast<float>(std::sqrt(std::max(0.0, 1.0 - ab_prev)));
    float* xp = x.data();
    const float* pp = pred.data();
    for (int64_t i = 0; i < x.numel(); ++i) {
      // Clip-denoised DDIM step: recover (x0_hat, eps_hat) under the active
      // parameterization and move along the deterministic trajectory.
      float x0_hat, eps_hat;
      SplitPrediction(xp[i], pp[i], ab_t, &x0_hat, &eps_hat);
      xp[i] = sab_prev * x0_hat + sn_prev * eps_hat;
    }
  }
  MaybeInjectSampleFault(&x);
  return x;
}

}  // namespace dot
