// DotOracle's training half: TrainStage1/TrainStage2 as thin TrainTask
// adapters over the shared hardened loop (train/trainer.h), plus the
// continual fine-tune path and the per-query uncertainty estimator
// (DESIGN.md §5k). The serving/inference half lives in dot_oracle.cc.

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "core/dot_oracle.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "train/trainer.h"
#include "util/logging.h"

namespace dot {
namespace {

/// Copies a PiT's CHW tensor into row `i` of a [B, 3, L, L] batch.
void CopyPitInto(const Pit& pit, Tensor* batch, int64_t i) {
  int64_t per = pit.tensor().numel();
  std::copy(pit.tensor().data(), pit.tensor().data() + per,
            batch->data() + i * per);
}

/// Stage 1 as a TrainTask: one batch = one Algorithm-2 step (sample noise
/// level + noise, predict, regress the configured target). `cosine_epochs`
/// > 0 enables the full-training cosine LR decay to 10%; fine-tuning runs
/// at the constant (already scaled-down) lr.
class Stage1Task final : public train::TrainTask {
 public:
  Stage1Task(UnetDenoiser* denoiser, Diffusion* diffusion, Rng* rng,
             std::vector<Pit> pits, std::vector<std::vector<float>> conds,
             Parameterization parameterization, int64_t grid_size, float lr,
             int64_t cosine_epochs)
      : denoiser_(denoiser),
        diffusion_(diffusion),
        rng_(rng),
        pits_(std::move(pits)),
        conds_(std::move(conds)),
        parameterization_(parameterization),
        l_(grid_size),
        lr_(lr),
        cosine_epochs_(cosine_epochs),
        opt_(denoiser->Parameters(), lr) {}

  int64_t NumExamples() const override {
    return static_cast<int64_t>(pits_.size());
  }
  std::vector<Tensor> Parameters() override { return denoiser_->Parameters(); }

  void BeginEpoch(int64_t epoch) override {
    if (cosine_epochs_ <= 0) return;
    double progress = cosine_epochs_ > 1
                          ? static_cast<double>(epoch) /
                                static_cast<double>(cosine_epochs_ - 1)
                          : 0.0;
    opt_.set_lr(static_cast<float>(
        lr_ * (0.55 + 0.45 * std::cos(progress * 3.14159265))));
  }

  double Forward(const std::vector<int64_t>& batch) override {
    int64_t b = static_cast<int64_t>(batch.size());
    Tensor x0 = Tensor::Empty({b, kPitChannels, l_, l_});
    Tensor cond = Tensor::Empty({b, 5});
    for (int64_t i = 0; i < b; ++i) {
      int64_t idx = batch[static_cast<size_t>(i)];
      CopyPitInto(pits_[static_cast<size_t>(idx)], &x0, i);
      std::copy(conds_[static_cast<size_t>(idx)].begin(),
                conds_[static_cast<size_t>(idx)].end(), cond.data() + i * 5);
    }
    std::vector<int64_t> steps;
    Tensor eps;
    Tensor xn = diffusion_->MakeTrainingExample(x0, rng_, &steps, &eps);
    denoiser_->ZeroGrad();
    Tensor pred = denoiser_->PredictNoise(xn, steps, cond);
    Tensor target = parameterization_ == Parameterization::kX0 ? x0 : eps;
    loss_ = MseLoss(pred, target);
    return static_cast<double>(loss_.item());
  }

  void Backward() override { loss_.Backward(); }
  void OptimizerStep() override { opt_.Step(); }

 private:
  UnetDenoiser* denoiser_;
  Diffusion* diffusion_;
  Rng* rng_;
  std::vector<Pit> pits_;
  std::vector<std::vector<float>> conds_;
  Parameterization parameterization_;
  int64_t l_;
  double lr_;
  int64_t cosine_epochs_;
  optim::Adam opt_;
  Tensor loss_;
};

/// Stage 2 as a TrainTask: MSE regression of normalized travel times from
/// (PiT, query-feature) batches. Validation/early-stop policy is injected
/// through `validate` (run from EndEpoch).
class Stage2Task final : public train::TrainTask {
 public:
  Stage2Task(PitEstimator* estimator, const std::vector<Pit>* pits,
             const std::vector<std::vector<double>>* feats,
             const std::vector<float>* targets, float lr,
             std::function<bool(int64_t)> validate)
      : estimator_(estimator),
        pits_(pits),
        feats_(feats),
        targets_(targets),
        validate_(std::move(validate)),
        opt_(estimator->module()->Parameters(), lr) {}

  int64_t NumExamples() const override {
    return static_cast<int64_t>(targets_->size());
  }
  std::vector<Tensor> Parameters() override {
    return estimator_->module()->Parameters();
  }

  double Forward(const std::vector<int64_t>& batch) override {
    int64_t b = static_cast<int64_t>(batch.size());
    std::vector<Pit> batch_pits;
    std::vector<std::vector<double>> batch_feats;
    std::vector<float> batch_targets;
    for (int64_t idx : batch) {
      batch_pits.push_back((*pits_)[static_cast<size_t>(idx)]);
      batch_feats.push_back((*feats_)[static_cast<size_t>(idx)]);
      batch_targets.push_back((*targets_)[static_cast<size_t>(idx)]);
    }
    estimator_->module()->ZeroGrad();
    Tensor pred = estimator_->ForwardBatch(batch_pits, batch_feats);
    loss_ = MseLoss(pred, Tensor::FromVector({b, 1}, batch_targets));
    return static_cast<double>(loss_.item());
  }

  void Backward() override { loss_.Backward(); }
  void OptimizerStep() override { opt_.Step(); }
  bool EndEpoch(int64_t epoch, double mean_loss) override {
    (void)mean_loss;
    return validate_ ? validate_(epoch) : true;
  }

 private:
  PitEstimator* estimator_;
  const std::vector<Pit>* pits_;
  const std::vector<std::vector<double>>* feats_;
  const std::vector<float>* targets_;
  std::function<bool(int64_t)> validate_;
  optim::Adam opt_;
  Tensor loss_;
};

}  // namespace

train::TrainReport DotOracle::RunStage1Loop(
    const std::vector<TripSample>& samples, const std::string& stage,
    int64_t epochs, float lr, bool cosine_lr) {
  // Pre-rasterize PiTs and conditions once.
  std::vector<Pit> pits;
  std::vector<std::vector<float>> conds;
  pits.reserve(samples.size());
  conds.reserve(samples.size());
  for (const auto& s : samples) {
    pits.push_back(GroundTruthPit(s.trajectory));
    conds.push_back(EncodeCondition(s.odt));
  }
  Stage1Task task(denoiser_.get(), &diffusion_, &rng_, std::move(pits),
                  std::move(conds), config_.parameterization,
                  config_.grid_size, lr, cosine_lr ? epochs : 0);
  train::TrainerConfig tc;
  tc.stage = stage;
  tc.epochs = epochs;
  tc.batch_size = config_.batch_size;
  tc.grad_clip_norm = config_.grad_clip_norm;
  tc.rollback_after_bad_steps = config_.rollback_after_bad_steps;
  tc.verbose = config_.verbose;
  return train::Trainer(tc).Run(&task, &rng_);
}

train::TrainReport DotOracle::RunStage2Loop(
    const std::vector<Pit>& pits, const std::vector<std::vector<double>>& feats,
    const std::vector<float>& norm_targets, const std::string& stage,
    int64_t epochs, float lr, const std::function<bool(int64_t)>& validate) {
  Stage2Task task(estimator_.get(), &pits, &feats, &norm_targets, lr,
                  validate);
  train::TrainerConfig tc;
  tc.stage = stage;
  tc.epochs = epochs;
  tc.batch_size = config_.batch_size;
  tc.grad_clip_norm = config_.grad_clip_norm;
  tc.rollback_after_bad_steps = config_.rollback_after_bad_steps;
  tc.verbose = config_.verbose;
  return train::Trainer(tc).Run(&task, &rng_);
}

Status DotOracle::TrainStage1(const std::vector<TripSample>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("stage 1: empty training set");
  }
  stage1_report_ = RunStage1Loop(train, "stage1", config_.stage1_epochs,
                                 config_.lr, /*cosine_lr=*/true);
  last_stage1_loss_ = stage1_report_.last_epoch_loss();
  stage1_trained_ = true;
  return Status::OK();
}

Status DotOracle::TrainStage2(const std::vector<TripSample>& train,
                              const std::vector<TripSample>& val) {
  if (!stage1_trained_) {
    return Status::FailedPrecondition("stage 2 requires a trained stage 1");
  }
  if (train.empty()) {
    return Status::InvalidArgument("stage 2: empty training set");
  }

  // Target normalization from the training distribution.
  double sum = 0, sq = 0;
  for (const auto& s : train) {
    sum += s.travel_time_minutes;
    sq += s.travel_time_minutes * s.travel_time_minutes;
  }
  double n = static_cast<double>(train.size());
  target_mean_ = sum / n;
  target_std_ = std::sqrt(std::max(1e-6, sq / n - target_mean_ * target_mean_));

  std::vector<Pit> pits;
  std::vector<std::vector<double>> feats;
  std::vector<float> norm_targets;
  pits.reserve(train.size());
  feats.reserve(train.size());
  norm_targets.reserve(train.size());
  for (const auto& s : train) {
    pits.push_back(GroundTruthPit(s.trajectory));
    feats.push_back(OdtFeatures(s.odt, grid_));
    norm_targets.push_back(static_cast<float>(
        (s.travel_time_minutes - target_mean_) / target_std_));
  }

  // Replace a slice of the training PiTs with stage-1 inferred ones so the
  // estimator sees the distribution it will serve (inferred PiTs differ
  // from rasterized ground truth in sparsity and soft-threshold artifacts).
  int64_t n_inferred = std::min<int64_t>(
      config_.stage2_inferred_cap,
      static_cast<int64_t>(static_cast<double>(train.size()) *
                           config_.stage2_inferred_fraction));
  if (n_inferred > 0) {
    std::vector<int64_t> pick(train.size());
    for (size_t i = 0; i < pick.size(); ++i) pick[i] = static_cast<int64_t>(i);
    rng_.Shuffle(&pick);
    pick.resize(static_cast<size_t>(n_inferred));
    std::vector<OdtInput> odts;
    for (int64_t idx : pick) odts.push_back(train[static_cast<size_t>(idx)].odt);
    std::vector<Pit> inferred = InferPits(odts);
    for (size_t k = 0; k < pick.size(); ++k) {
      pits[static_cast<size_t>(pick[k])] = std::move(inferred[k]);
    }
  }

  // Inferred validation PiTs for early stopping (Sec. 6.3).
  std::vector<Pit> val_pits;
  std::vector<OdtInput> val_odts;
  std::vector<double> val_truth;
  if (config_.val_samples > 0 && !val.empty()) {
    int64_t nv = std::min<int64_t>(config_.val_samples,
                                   static_cast<int64_t>(val.size()));
    for (int64_t i = 0; i < nv; ++i) {
      val_odts.push_back(val[static_cast<size_t>(i)].odt);
      val_truth.push_back(val[static_cast<size_t>(i)].travel_time_minutes);
    }
    val_pits = InferPits(val_odts);
  }

  stage2_trained_ = true;  // EstimateFromPits is used for validation below

  double best_val = 1e18;
  std::vector<std::vector<float>> best_weights;
  int64_t bad_epochs = 0;
  std::function<bool(int64_t)> validate;
  if (!val_pits.empty()) {
    obs::Gauge* val_mae_gauge = obs::MetricsRegistry::Get().GetGauge(
        "dot_train_val_mae", {{"stage", "stage2"}});
    validate = [&, val_mae_gauge](int64_t epoch) {
      std::vector<double> preds = EstimateFromPits(val_pits, val_odts);
      MetricsAccumulator acc;
      for (size_t i = 0; i < preds.size(); ++i) acc.Add(preds[i], val_truth[i]);
      double mae = acc.Finalize().mae;
      val_mae_gauge->Set(mae);
      if (mae < best_val) {
        best_val = mae;
        bad_epochs = 0;
        best_weights.clear();
        for (auto& p : estimator_->module()->Parameters()) {
          best_weights.push_back(p.ToVector());
        }
      } else if (++bad_epochs >= 2) {
        if (config_.verbose) {
          DOT_LOG_INFO << "[stage2] early stop at epoch " << epoch + 1;
        }
        return false;
      }
      return true;
    };
  }

  stage2_report_ = RunStage2Loop(pits, feats, norm_targets, "stage2",
                                 config_.stage2_epochs, config_.lr, validate);

  if (!best_weights.empty()) {
    auto params = estimator_->module()->Parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].CopyFrom(best_weights[i]);
    }
    // In-place restore: stale int8 panels must not outlive the old values.
    gemm::ClearQuantCache();
  }
  return Status::OK();
}

Status DotOracle::FineTune(const std::vector<TripSample>& fresh,
                           const std::vector<TripSample>& old,
                           const FineTuneConfig& config) {
  if (!stage1_trained_ || !stage2_trained_) {
    return Status::FailedPrecondition("fine-tune requires a trained oracle");
  }
  if (fresh.empty()) {
    return Status::InvalidArgument("fine-tune: empty fresh window");
  }

  // Replay mix: every fresh sample plus a shuffled subsample of the old
  // distribution, capped so one round stays cheap.
  std::vector<TripSample> mixed = fresh;
  int64_t want_replay =
      std::min<int64_t>(static_cast<int64_t>(static_cast<double>(fresh.size()) *
                                             config.replay_fraction),
                        static_cast<int64_t>(old.size()));
  if (want_replay > 0) {
    std::vector<int64_t> pick(old.size());
    for (size_t i = 0; i < pick.size(); ++i) pick[i] = static_cast<int64_t>(i);
    rng_.Shuffle(&pick);
    for (int64_t k = 0; k < want_replay; ++k) {
      mixed.push_back(old[static_cast<size_t>(pick[static_cast<size_t>(k)])]);
    }
  }
  if (static_cast<int64_t>(mixed.size()) > config.max_samples) {
    std::vector<int64_t> keep(mixed.size());
    for (size_t i = 0; i < keep.size(); ++i) keep[i] = static_cast<int64_t>(i);
    rng_.Shuffle(&keep);
    std::vector<TripSample> capped;
    capped.reserve(static_cast<size_t>(config.max_samples));
    for (int64_t k = 0; k < config.max_samples; ++k) {
      capped.push_back(std::move(mixed[static_cast<size_t>(keep[static_cast<size_t>(k)])]));
    }
    mixed = std::move(capped);
  }

  float lr = static_cast<float>(config_.lr * config.lr_scale);
  train::TrainReport combined;
  if (config.stage1_epochs > 0) {
    combined.Accumulate(RunStage1Loop(mixed, "finetune", config.stage1_epochs,
                                      lr, /*cosine_lr=*/false));
  }
  if (config.stage2_epochs > 0) {
    // Target normalization stays frozen: the fine-tuned model must keep the
    // serving semantics (and checkpoints) of the model it replaces.
    std::vector<Pit> pits;
    std::vector<std::vector<double>> feats;
    std::vector<float> norm_targets;
    pits.reserve(mixed.size());
    feats.reserve(mixed.size());
    norm_targets.reserve(mixed.size());
    for (const auto& s : mixed) {
      pits.push_back(GroundTruthPit(s.trajectory));
      feats.push_back(OdtFeatures(s.odt, grid_));
      norm_targets.push_back(static_cast<float>(
          (s.travel_time_minutes - target_mean_) / target_std_));
    }
    combined.Accumulate(RunStage2Loop(pits, feats, norm_targets, "finetune",
                                      config.stage2_epochs, lr, nullptr));
  }
  finetune_report_ = combined;
  // Weights moved in place under a potentially serving oracle: stale int8
  // panels must not outlive them.
  gemm::ClearQuantCache();
  return Status::OK();
}

Result<std::vector<double>> DotOracle::EstimateUncertainty(
    const std::vector<OdtInput>& odts, int64_t draws, int64_t sample_steps) {
  if (!stage1_trained_ || !stage2_trained_) {
    return Status::FailedPrecondition("oracle not trained");
  }
  if (draws < 2) {
    return Status::InvalidArgument("uncertainty needs at least 2 draws");
  }
  if (odts.empty()) return std::vector<double>{};
  obs::TraceSpan span("DotOracle::EstimateUncertainty");
  std::vector<double> sum(odts.size(), 0.0);
  std::vector<double> sq(odts.size(), 0.0);
  std::vector<double> cells(odts.size(), 0.0);
  for (int64_t d = 0; d < draws; ++d) {
    DOT_ASSIGN_OR_RETURN(std::vector<Pit> pits,
                         TryInferPits(odts, sample_steps));
    std::vector<double> minutes = EstimateFromPits(pits, odts);
    for (size_t i = 0; i < minutes.size(); ++i) {
      sum[i] += minutes[i];
      sq[i] += minutes[i] * minutes[i];
      cells[i] += static_cast<double>(pits[i].NumVisited());
    }
  }
  // Heteroscedastic noise model: the cross-draw spread is the sampler's own
  // disagreement, floored by a relative term proportional to the query's
  // magnitude. TTE error grows with trip length, and the sampled route
  // extent (visited cells) tracks length even when the scalar estimate
  // regresses long trips toward the mean, so both magnitude readouts enter.
  constexpr double kMinutesPerCell = 1.0;
  constexpr double kRelativeNoise = 0.25;
  static obs::Histogram* hist = obs::MetricsRegistry::Get().GetHistogram(
      "dot_oracle_uncertainty_minutes",
      obs::Histogram::LinearBounds(0.25, 0.25, 40));
  static obs::RollingHistogram* window = obs::MetricsRegistry::Get().GetWindow(
      "dot_oracle_uncertainty_minutes",
      obs::Histogram::LinearBounds(0.25, 0.25, 40));
  std::vector<double> out(odts.size());
  double dn = static_cast<double>(draws);
  for (size_t i = 0; i < odts.size(); ++i) {
    double mean = sum[i] / dn;
    double var = std::max(0.0, sq[i] / dn - mean * mean);
    double magnitude = mean + kMinutesPerCell * cells[i] / dn;
    out[i] = std::sqrt(var) + kRelativeNoise * std::max(0.0, magnitude);
    hist->Observe(out[i]);
    window->Observe(out[i]);
  }
  return out;
}

}  // namespace dot
