#include "core/oracle_service.h"

#include <chrono>
#include <cmath>
#include <random>
#include <thread>
#include <unordered_set>

#include "obs/trace.h"
#include "obs/window.h"

namespace dot {

OracleService::Metrics::Metrics() {
  auto& reg = obs::MetricsRegistry::Get();
  query_latency_us = reg.GetHistogram("dot_service_query_latency_us");
  batch_latency_us = reg.GetHistogram("dot_service_batch_latency_us");
  batch_size = reg.GetHistogram("dot_service_batch_size",
                                obs::Histogram::LinearBounds(1, 1, 64));
  queries = reg.GetCounter("dot_service_queries_total");
  cache_hits = reg.GetCounter("dot_service_cache_hits_total");
  dedup_hits = reg.GetCounter("dot_service_dedup_hits_total");
  cache_misses = reg.GetCounter("dot_service_cache_misses_total");
  evictions = reg.GetCounter("dot_service_evictions_total");
  stage1_latency_us = reg.GetHistogram("dot_oracle_stage1_latency_us");
  stage1_window = reg.GetWindow("dot_oracle_stage1_latency_us");
  retries = reg.GetCounter("dot_serving_retries_total");
  degraded_reduced_steps = reg.GetCounter(
      "dot_serving_degraded_total",
      {{"level", ServedQualityName(ServedQuality::kReducedSteps)}});
  degraded_cached_neighbor = reg.GetCounter(
      "dot_serving_degraded_total",
      {{"level", ServedQualityName(ServedQuality::kCachedNeighbor)}});
  degraded_fallback = reg.GetCounter(
      "dot_serving_degraded_total",
      {{"level", ServedQualityName(ServedQuality::kFallback)}});
}

OracleService::OracleService(DotOracle* oracle, OracleServiceConfig config)
    : oracle_(oracle), config_(config) {}

int64_t OracleService::BucketOf(const OdtInput& odt) const {
  const Grid& grid = oracle_->grid();
  int64_t o = grid.CellIndex(grid.Locate(odt.origin));
  int64_t d = grid.CellIndex(grid.Locate(odt.destination));
  int64_t slot = SecondsOfDay(odt.departure_time) * config_.tod_slots / 86400;
  return (o * grid.num_cells() + d) * config_.tod_slots + slot;
}

void OracleService::Touch(
    std::unordered_map<int64_t, CacheEntry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  it->second.lru_it = lru_.begin();
}

void OracleService::InsertLocked(int64_t bucket, Pit pit) {
  auto it = cache_.find(bucket);
  if (it != cache_.end()) {  // another thread filled it first: refresh
    it->second.pit = std::move(pit);
    Touch(it);
    return;
  }
  if (config_.max_entries <= 0) return;
  while (static_cast<int64_t>(cache_.size()) >= config_.max_entries &&
         !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    metrics_.evictions->Increment();
  }
  lru_.push_front(bucket);
  cache_.emplace(bucket, CacheEntry{std::move(pit), lru_.begin()});
}

OracleServiceStats OracleService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t OracleService::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(cache_.size());
}

void OracleService::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
}

Status OracleService::ValidateQuery(const OdtInput& odt) const {
  auto finite = [](const GpsPoint& p) {
    return std::isfinite(p.lng) && std::isfinite(p.lat);
  };
  if (!finite(odt.origin) || !finite(odt.destination)) {
    return Status::InvalidArgument("query: non-finite coordinates");
  }
  BoundingBox area = oracle_->grid().box().Inflated(0.01);
  if (!area.Contains(odt.origin)) {
    return Status::InvalidArgument("query: origin outside the service area");
  }
  if (!area.Contains(odt.destination)) {
    return Status::InvalidArgument(
        "query: destination outside the service area");
  }
  if (odt.departure_time < 0) {
    return Status::InvalidArgument("query: negative departure time");
  }
  return Status::OK();
}

Result<std::vector<Pit>> OracleService::TryInferWithRetry(
    const std::vector<OdtInput>& odts, int64_t sample_steps,
    const QueryOptions& opts, const Stopwatch& sw) {
  int64_t attempts = 1 + std::max<int64_t>(0, config_.max_retries);
  Status last = Status::Internal("stage 1: no attempt made");
  for (int64_t a = 0; a < attempts; ++a) {
    if (a > 0) {
      // Exponential backoff with ±25% jitter: after a common-cause failure
      // every shard retries on its own schedule instead of re-storming the
      // backend in lockstep.
      thread_local std::mt19937_64 jitter_rng(
          std::hash<std::thread::id>{}(std::this_thread::get_id()));
      std::uniform_real_distribution<double> jitter(0.75, 1.25);
      double backoff_ms =
          static_cast<double>(config_.retry_backoff_ms << (a - 1)) *
          jitter(jitter_rng);
      if (opts.deadline_ms > 0 &&
          opts.deadline_ms - sw.ElapsedSeconds() * 1e3 <= backoff_ms) {
        break;  // the backoff alone would bust the deadline: stop retrying
      }
      metrics_.retries->Increment();
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
    std::unique_lock<std::mutex> olock(oracle_mu_);
    Result<std::vector<Pit>> r = oracle_->TryInferPits(odts, sample_steps);
    olock.unlock();
    if (r.ok()) return r;
    last = r.status();
    // Only Internal failures (failpoints, diverged samplers) are worth a
    // retry; anything else (untrained, bad input) is permanent.
    if (last.code() != StatusCode::kInternal) break;
  }
  return last;
}

bool OracleService::LookupNeighborLocked(int64_t bucket, Pit* pit) {
  int64_t slot = bucket % config_.tod_slots;
  int64_t od = bucket / config_.tod_slots;
  for (int64_t r = 1; r <= config_.neighbor_slot_radius; ++r) {
    for (int64_t sign : {-1, +1}) {
      int64_t s =
          ((slot + sign * r) % config_.tod_slots + config_.tod_slots) %
          config_.tod_slots;
      auto it = cache_.find(od * config_.tod_slots + s);
      if (it != cache_.end()) {
        Touch(it);
        *pit = it->second.pit;
        return true;
      }
    }
  }
  return false;
}

OracleService::MissServe OracleService::ServeMisses(
    const std::vector<OdtInput>& miss_odts,
    const std::vector<int64_t>& miss_buckets, const QueryOptions& opts,
    const Stopwatch& sw) {
  size_t m = miss_odts.size();
  MissServe out;
  out.pits.assign(m, Pit{1});
  out.minutes.assign(m, 0.0);
  out.quality.assign(m, ServedQuality::kFallback);

  // Deadline triage: predict the full pass's cost from the p95 of the
  // observed stage-1 latencies and pick the highest ladder level whose
  // predicted cost fits the remaining budget. Reduced-step cost is scaled
  // linearly in the step count (the denoiser dominates each step).
  ServedQuality target = ServedQuality::kFull;
  int64_t steps = 0;  // 0 = the oracle's configured sample_steps
  bool skip_stage1 = false;
  if (opts.deadline_ms > 0) {
    // Cost prediction from the rolling window (current load); an idle
    // window falls back to the lifetime histogram so a freshly quiet
    // server still triages from what it has seen.
    double p95 = 0;
    bool have_cost = false;
    if (metrics_.stage1_window->Count() > 0) {
      p95 = metrics_.stage1_window->Quantile(0.95);
      have_cost = true;
    } else if (metrics_.stage1_latency_us->Count() > 0) {
      p95 = metrics_.stage1_latency_us->Quantile(0.95);
      have_cost = true;
    }
    double remaining_us =
        opts.deadline_ms * 1e3 - sw.ElapsedSeconds() * 1e6;
    if (have_cost && p95 > remaining_us) {
      double frac = static_cast<double>(config_.degraded_sample_steps) /
                    static_cast<double>(
                        std::max<int64_t>(1, oracle_->config().sample_steps));
      if (p95 * frac <= remaining_us) {
        target = ServedQuality::kReducedSteps;
        steps = config_.degraded_sample_steps;
      } else {
        skip_stage1 = true;  // even a reduced pass is predicted to run late
      }
    }
  }

  if (!skip_stage1) {
    Result<std::vector<Pit>> r =
        TryInferWithRetry(miss_odts, steps, opts, sw);
    if (!r.ok() && target == ServedQuality::kFull) {
      // Stage 1 failed at full quality: one more round at reduced steps
      // before abandoning inference for this wave.
      target = ServedQuality::kReducedSteps;
      r = TryInferWithRetry(miss_odts, config_.degraded_sample_steps, opts,
                            sw);
    }
    if (r.ok()) {
      out.pits = std::move(*r);
      out.quality.assign(m, target);
      out.fresh = true;
      return out;
    }
    out.stage1_error = true;  // attempted and exhausted — a real failure
  }

  // Ladder tail, per miss: a cached PiT from a neighboring time-of-day
  // bucket, else the fallback estimate. Never fails.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < m; ++i) {
      if (LookupNeighborLocked(miss_buckets[i], &out.pits[i])) {
        out.quality[i] = ServedQuality::kCachedNeighbor;
      }
    }
  }
  for (size_t i = 0; i < m; ++i) {
    if (out.quality[i] != ServedQuality::kFallback) continue;
    out.minutes[i] = config_.fallback_estimator
                         ? config_.fallback_estimator(miss_odts[i])
                         : oracle_->prior_mean_minutes();
  }
  return out;
}

void OracleService::RecordQuality(ServedQuality q) {
  switch (q) {
    case ServedQuality::kFull:
      break;
    case ServedQuality::kReducedSteps:
      metrics_.degraded_reduced_steps->Increment();
      break;
    case ServedQuality::kCachedNeighbor:
      metrics_.degraded_cached_neighbor->Increment();
      break;
    case ServedQuality::kFallback:
      metrics_.degraded_fallback->Increment();
      break;
  }
}

Result<DotEstimate> OracleService::Query(const OdtInput& odt,
                                         const QueryOptions& opts) {
  DOT_RETURN_NOT_OK(ValidateQuery(odt));
  if (!oracle_->trained()) {
    return Status::FailedPrecondition("oracle not trained");
  }
  obs::TraceSpan span("OracleService::Query");
  Stopwatch sw;
  if (opts.stage1_failed != nullptr) *opts.stage1_failed = false;
  metrics_.queries->Increment();
  int64_t bucket = BucketOf(odt);
  bool hit = false;
  Pit pit{1};
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    auto it = cache_.find(bucket);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      Touch(it);
      pit = it->second.pit;  // copy: the entry may be evicted after unlock
      hit = true;
    } else {
      ++stats_.cache_misses;
    }
  }
  if (hit) {
    metrics_.cache_hits->Increment();
    Stopwatch stage2_sw;
    std::unique_lock<std::mutex> olock(oracle_mu_);
    double minutes = oracle_->EstimateFromPits({pit}, {odt})[0];
    olock.unlock();
    if (opts.timing != nullptr) {
      opts.timing->stage2_us = stage2_sw.ElapsedSeconds() * 1e6;
    }
    metrics_.query_latency_us->Observe(sw.ElapsedSeconds() * 1e6);
    return DotEstimate{minutes, std::move(pit)};
  }
  metrics_.cache_misses->Increment();
  Stopwatch stage1_sw;
  MissServe served = ServeMisses({odt}, {bucket}, opts, sw);
  if (opts.timing != nullptr) {
    opts.timing->stage1_us = stage1_sw.ElapsedSeconds() * 1e6;
  }
  if (opts.stage1_failed != nullptr && served.stage1_error) {
    *opts.stage1_failed = true;
  }
  DotEstimate est;
  est.quality = served.quality[0];
  if (est.quality == ServedQuality::kFallback) {
    est.minutes = served.minutes[0];
  } else {
    Stopwatch stage2_sw;
    std::unique_lock<std::mutex> olock(oracle_mu_);
    est.minutes = oracle_->EstimateFromPits({served.pits[0]}, {odt})[0];
    olock.unlock();
    if (opts.timing != nullptr) {
      opts.timing->stage2_us = stage2_sw.ElapsedSeconds() * 1e6;
    }
    est.pit = std::move(served.pits[0]);
  }
  if (served.fresh && est.quality == ServedQuality::kFull) {
    // Degraded PiTs are served but never cached: a warm entry promises
    // full quality to every later hit.
    std::lock_guard<std::mutex> lock(mu_);
    InsertLocked(bucket, est.pit);
  }
  RecordQuality(est.quality);
  metrics_.query_latency_us->Observe(sw.ElapsedSeconds() * 1e6);
  return est;
}

Result<std::vector<DotEstimate>> OracleService::QueryBatch(
    const std::vector<OdtInput>& odts, const QueryOptions& opts) {
  if (odts.empty()) return std::vector<DotEstimate>{};
  for (size_t i = 0; i < odts.size(); ++i) {
    Status s = ValidateQuery(odts[i]);
    if (!s.ok()) {
      return Status::InvalidArgument("batch query " + std::to_string(i) +
                                     ": " + s.message());
    }
  }
  if (!oracle_->trained()) {
    return Status::FailedPrecondition("oracle not trained");
  }
  obs::TraceSpan span("OracleService::QueryBatch");
  Stopwatch sw;
  if (opts.stage1_failed != nullptr) *opts.stage1_failed = false;
  size_t n = odts.size();
  metrics_.queries->Increment(static_cast<int64_t>(n));
  metrics_.batch_size->Observe(static_cast<double>(n));
  std::vector<int64_t> buckets(n);
  for (size_t i = 0; i < n; ++i) buckets[i] = BucketOf(odts[i]);

  // Partition the wave into cache hits and deduplicated misses. Duplicate
  // missing buckets within the wave ride along on the single miss-fill
  // exactly as sequential queries would reuse the fresh cache entry; they
  // are accounted as dedup_hits, not cache_hits — the cache was cold for
  // them, the wave itself was redundant.
  std::vector<Pit> pits(n, Pit{1});
  std::vector<char> resolved(n, 0);
  std::vector<size_t> miss_rep;  // wave index of each unique missing bucket
  std::unordered_map<int64_t, size_t> miss_slot;  // bucket -> miss_rep index
  int64_t wave_hits = 0, wave_dedup = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.queries += static_cast<int64_t>(n);
    ++stats_.batch_queries;
    for (size_t i = 0; i < n; ++i) {
      auto it = cache_.find(buckets[i]);
      if (it != cache_.end()) {
        ++stats_.cache_hits;
        ++wave_hits;
        Touch(it);
        pits[i] = it->second.pit;
        resolved[i] = 1;
      } else if (miss_slot.count(buckets[i])) {
        ++stats_.dedup_hits;  // free rider on this wave's miss-fill
        ++wave_dedup;
      } else {
        ++stats_.cache_misses;
        miss_slot.emplace(buckets[i], miss_rep.size());
        miss_rep.push_back(i);
      }
    }
  }
  metrics_.cache_hits->Increment(wave_hits);
  metrics_.dedup_hits->Increment(wave_dedup);
  metrics_.cache_misses->Increment(static_cast<int64_t>(miss_rep.size()));

  // Single batched miss-fill through the degradation ladder: one
  // reverse-diffusion pass (possibly at reduced steps) denoises every
  // missing bucket's PiT, and a wave whose stage 1 fails outright falls to
  // neighbor-bucket / fallback answers instead of erroring.
  std::vector<ServedQuality> quality(n, ServedQuality::kFull);
  std::vector<double> fallback_minutes(n, 0.0);
  if (!miss_rep.empty()) {
    std::vector<OdtInput> miss_odts;
    std::vector<int64_t> miss_buckets;
    miss_odts.reserve(miss_rep.size());
    miss_buckets.reserve(miss_rep.size());
    for (size_t idx : miss_rep) {
      miss_odts.push_back(odts[idx]);
      miss_buckets.push_back(buckets[idx]);
    }
    Stopwatch stage1_sw;
    MissServe served = ServeMisses(miss_odts, miss_buckets, opts, sw);
    if (opts.timing != nullptr) {
      opts.timing->stage1_us = stage1_sw.ElapsedSeconds() * 1e6;
    }
    if (opts.stage1_failed != nullptr && served.stage1_error) {
      *opts.stage1_failed = true;
    }
    if (served.fresh && served.quality[0] == ServedQuality::kFull) {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t k = 0; k < miss_rep.size(); ++k) {
        InsertLocked(miss_buckets[k], served.pits[k]);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (resolved[i]) continue;
      size_t k = miss_slot.at(buckets[i]);
      quality[i] = served.quality[k];
      if (quality[i] == ServedQuality::kFallback) {
        fallback_minutes[i] = served.minutes[k];
      } else {
        pits[i] = served.pits[k];
      }
      resolved[i] = 1;
    }
  }

  // One batched stage-2 pass over every query that has a PiT (all of them
  // unless some fell through to kFallback, which carries no PiT).
  std::vector<size_t> with_pit;
  with_pit.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (quality[i] != ServedQuality::kFallback) with_pit.push_back(i);
  }
  std::vector<double> minutes(n, 0.0);
  if (!with_pit.empty()) {
    std::vector<Pit> est_pits;
    std::vector<OdtInput> est_odts;
    est_pits.reserve(with_pit.size());
    est_odts.reserve(with_pit.size());
    for (size_t i : with_pit) {
      est_pits.push_back(pits[i]);
      est_odts.push_back(odts[i]);
    }
    Stopwatch stage2_sw;
    std::vector<double> est;
    {
      std::lock_guard<std::mutex> olock(oracle_mu_);
      est = oracle_->EstimateFromPits(est_pits, est_odts);
    }
    if (opts.timing != nullptr) {
      opts.timing->stage2_us = stage2_sw.ElapsedSeconds() * 1e6;
    }
    for (size_t k = 0; k < with_pit.size(); ++k) minutes[with_pit[k]] = est[k];
  }
  std::vector<DotEstimate> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RecordQuality(quality[i]);
    double m = quality[i] == ServedQuality::kFallback ? fallback_minutes[i]
                                                      : minutes[i];
    out.push_back(DotEstimate{m, std::move(pits[i]), quality[i]});
  }
  metrics_.batch_latency_us->Observe(sw.ElapsedSeconds() * 1e6);
  return out;
}

Result<std::vector<DotEstimate>> OracleService::QueryDegraded(
    const std::vector<OdtInput>& odts) {
  if (odts.empty()) return std::vector<DotEstimate>{};
  for (size_t i = 0; i < odts.size(); ++i) {
    Status s = ValidateQuery(odts[i]);
    if (!s.ok()) {
      return Status::InvalidArgument("batch query " + std::to_string(i) +
                                     ": " + s.message());
    }
  }
  if (!oracle_->trained()) {
    return Status::FailedPrecondition("oracle not trained");
  }
  obs::TraceSpan span("OracleService::QueryDegraded");
  Stopwatch sw;
  size_t n = odts.size();
  metrics_.queries->Increment(static_cast<int64_t>(n));
  std::vector<Pit> pits(n, Pit{1});
  std::vector<ServedQuality> quality(n, ServedQuality::kFallback);
  int64_t wave_hits = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.queries += static_cast<int64_t>(n);
    ++stats_.batch_queries;
    for (size_t i = 0; i < n; ++i) {
      int64_t bucket = BucketOf(odts[i]);
      auto it = cache_.find(bucket);
      if (it != cache_.end()) {
        ++stats_.cache_hits;
        ++wave_hits;
        Touch(it);
        pits[i] = it->second.pit;
        quality[i] = ServedQuality::kFull;
      } else if (LookupNeighborLocked(bucket, &pits[i])) {
        quality[i] = ServedQuality::kCachedNeighbor;
      }
      // No cache-miss accounting: this path never attempts the fill, so a
      // miss here is not a miss the cache could have prevented.
    }
  }
  metrics_.cache_hits->Increment(wave_hits);

  // One batched stage-2 pass over every query that found a PiT; the rest
  // get the fallback estimate. Stage 1 is never touched.
  std::vector<size_t> with_pit;
  with_pit.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (quality[i] != ServedQuality::kFallback) with_pit.push_back(i);
  }
  std::vector<double> minutes(n, 0.0);
  if (!with_pit.empty()) {
    std::vector<Pit> est_pits;
    std::vector<OdtInput> est_odts;
    est_pits.reserve(with_pit.size());
    est_odts.reserve(with_pit.size());
    for (size_t i : with_pit) {
      est_pits.push_back(pits[i]);
      est_odts.push_back(odts[i]);
    }
    std::vector<double> est;
    {
      std::lock_guard<std::mutex> olock(oracle_mu_);
      est = oracle_->EstimateFromPits(est_pits, est_odts);
    }
    for (size_t k = 0; k < with_pit.size(); ++k) minutes[with_pit[k]] = est[k];
  }
  std::vector<DotEstimate> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    RecordQuality(quality[i]);
    double m = quality[i] == ServedQuality::kFallback
                   ? (config_.fallback_estimator
                          ? config_.fallback_estimator(odts[i])
                          : oracle_->prior_mean_minutes())
                   : minutes[i];
    out.push_back(DotEstimate{m, std::move(pits[i]), quality[i]});
  }
  metrics_.batch_latency_us->Observe(sw.ElapsedSeconds() * 1e6);
  return out;
}

Status OracleService::Warm(const std::vector<OdtInput>& odts) {
  // Deduplicate buckets, then batch-infer the missing ones.
  std::vector<OdtInput> missing;
  std::vector<int64_t> buckets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unordered_set<int64_t> queued;
    for (const auto& odt : odts) {
      int64_t bucket = BucketOf(odt);
      if (cache_.count(bucket) || !queued.insert(bucket).second) continue;
      missing.push_back(odt);
      buckets.push_back(bucket);
    }
  }
  if (missing.empty()) return Status::OK();
  std::vector<Pit> pits;
  {
    std::lock_guard<std::mutex> olock(oracle_mu_);
    pits = oracle_->InferPits(missing);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < pits.size(); ++i) {
    InsertLocked(buckets[i], std::move(pits[i]));
  }
  return Status::OK();
}

}  // namespace dot
