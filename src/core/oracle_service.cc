#include "core/oracle_service.h"

namespace dot {

OracleService::OracleService(DotOracle* oracle, OracleServiceConfig config)
    : oracle_(oracle), config_(config) {}

int64_t OracleService::BucketOf(const OdtInput& odt) const {
  const Grid& grid = oracle_->grid();
  int64_t o = grid.CellIndex(grid.Locate(odt.origin));
  int64_t d = grid.CellIndex(grid.Locate(odt.destination));
  int64_t slot = SecondsOfDay(odt.departure_time) * config_.tod_slots / 86400;
  return (o * grid.num_cells() + d) * config_.tod_slots + slot;
}

Result<DotEstimate> OracleService::Query(const OdtInput& odt) {
  ++stats_.queries;
  int64_t bucket = BucketOf(odt);
  auto it = cache_.find(bucket);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    DotEstimate est{oracle_->EstimateFromPits({it->second}, {odt})[0],
                    it->second};
    return est;
  }
  Result<DotEstimate> est = oracle_->Estimate(odt);
  if (!est.ok()) return est;
  if (static_cast<int64_t>(cache_.size()) >= config_.max_entries) cache_.clear();
  cache_.emplace(bucket, est->pit);
  return est;
}

Status OracleService::Warm(const std::vector<OdtInput>& odts) {
  // Deduplicate buckets, then batch-infer the missing ones.
  std::vector<OdtInput> missing;
  std::vector<int64_t> buckets;
  for (const auto& odt : odts) {
    int64_t bucket = BucketOf(odt);
    if (cache_.count(bucket)) continue;
    bool queued = false;
    for (int64_t b : buckets) queued = queued || b == bucket;
    if (queued) continue;
    missing.push_back(odt);
    buckets.push_back(bucket);
  }
  if (missing.empty()) return Status::OK();
  std::vector<Pit> pits = oracle_->InferPits(missing);
  for (size_t i = 0; i < pits.size(); ++i) {
    if (static_cast<int64_t>(cache_.size()) >= config_.max_entries) break;
    cache_.emplace(buckets[i], std::move(pits[i]));
  }
  return Status::OK();
}

}  // namespace dot
