#include "core/oracle_service.h"

#include <unordered_set>

#include "obs/trace.h"
#include "util/stopwatch.h"

namespace dot {

OracleService::Metrics::Metrics() {
  auto& reg = obs::MetricsRegistry::Get();
  query_latency_us = reg.GetHistogram("dot_service_query_latency_us");
  batch_latency_us = reg.GetHistogram("dot_service_batch_latency_us");
  batch_size = reg.GetHistogram("dot_service_batch_size",
                                obs::Histogram::LinearBounds(1, 1, 64));
  queries = reg.GetCounter("dot_service_queries_total");
  cache_hits = reg.GetCounter("dot_service_cache_hits_total");
  dedup_hits = reg.GetCounter("dot_service_dedup_hits_total");
  cache_misses = reg.GetCounter("dot_service_cache_misses_total");
  evictions = reg.GetCounter("dot_service_evictions_total");
}

OracleService::OracleService(DotOracle* oracle, OracleServiceConfig config)
    : oracle_(oracle), config_(config) {}

int64_t OracleService::BucketOf(const OdtInput& odt) const {
  const Grid& grid = oracle_->grid();
  int64_t o = grid.CellIndex(grid.Locate(odt.origin));
  int64_t d = grid.CellIndex(grid.Locate(odt.destination));
  int64_t slot = SecondsOfDay(odt.departure_time) * config_.tod_slots / 86400;
  return (o * grid.num_cells() + d) * config_.tod_slots + slot;
}

void OracleService::Touch(
    std::unordered_map<int64_t, CacheEntry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  it->second.lru_it = lru_.begin();
}

void OracleService::InsertLocked(int64_t bucket, Pit pit) {
  auto it = cache_.find(bucket);
  if (it != cache_.end()) {  // another thread filled it first: refresh
    it->second.pit = std::move(pit);
    Touch(it);
    return;
  }
  if (config_.max_entries <= 0) return;
  while (static_cast<int64_t>(cache_.size()) >= config_.max_entries &&
         !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    metrics_.evictions->Increment();
  }
  lru_.push_front(bucket);
  cache_.emplace(bucket, CacheEntry{std::move(pit), lru_.begin()});
}

OracleServiceStats OracleService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t OracleService::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(cache_.size());
}

void OracleService::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
}

Result<DotEstimate> OracleService::Query(const OdtInput& odt) {
  obs::TraceSpan span("OracleService::Query");
  Stopwatch sw;
  metrics_.queries->Increment();
  int64_t bucket = BucketOf(odt);
  bool hit = false;
  Pit pit{1};
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    auto it = cache_.find(bucket);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      Touch(it);
      pit = it->second.pit;  // copy: the entry may be evicted after unlock
      hit = true;
    } else {
      ++stats_.cache_misses;
    }
  }
  if (hit) {
    metrics_.cache_hits->Increment();
    std::lock_guard<std::mutex> olock(oracle_mu_);
    double minutes = oracle_->EstimateFromPits({pit}, {odt})[0];
    metrics_.query_latency_us->Observe(sw.ElapsedSeconds() * 1e6);
    return DotEstimate{minutes, std::move(pit)};
  }
  metrics_.cache_misses->Increment();
  std::unique_lock<std::mutex> olock(oracle_mu_);
  Result<DotEstimate> est = oracle_->Estimate(odt);
  olock.unlock();
  if (!est.ok()) return est;
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(bucket, est->pit);
  metrics_.query_latency_us->Observe(sw.ElapsedSeconds() * 1e6);
  return est;
}

Result<std::vector<DotEstimate>> OracleService::QueryBatch(
    const std::vector<OdtInput>& odts) {
  if (odts.empty()) return std::vector<DotEstimate>{};
  if (!oracle_->trained()) {
    return Status::FailedPrecondition("oracle not trained");
  }
  obs::TraceSpan span("OracleService::QueryBatch");
  Stopwatch sw;
  size_t n = odts.size();
  metrics_.queries->Increment(static_cast<int64_t>(n));
  metrics_.batch_size->Observe(static_cast<double>(n));
  std::vector<int64_t> buckets(n);
  for (size_t i = 0; i < n; ++i) buckets[i] = BucketOf(odts[i]);

  // Partition the wave into cache hits and deduplicated misses. Duplicate
  // missing buckets within the wave ride along on the single miss-fill
  // exactly as sequential queries would reuse the fresh cache entry; they
  // are accounted as dedup_hits, not cache_hits — the cache was cold for
  // them, the wave itself was redundant.
  std::vector<Pit> pits(n, Pit{1});
  std::vector<char> resolved(n, 0);
  std::vector<size_t> miss_rep;  // wave index of each unique missing bucket
  std::unordered_map<int64_t, size_t> miss_slot;  // bucket -> miss_rep index
  int64_t wave_hits = 0, wave_dedup = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.queries += static_cast<int64_t>(n);
    ++stats_.batch_queries;
    for (size_t i = 0; i < n; ++i) {
      auto it = cache_.find(buckets[i]);
      if (it != cache_.end()) {
        ++stats_.cache_hits;
        ++wave_hits;
        Touch(it);
        pits[i] = it->second.pit;
        resolved[i] = 1;
      } else if (miss_slot.count(buckets[i])) {
        ++stats_.dedup_hits;  // free rider on this wave's miss-fill
        ++wave_dedup;
      } else {
        ++stats_.cache_misses;
        miss_slot.emplace(buckets[i], miss_rep.size());
        miss_rep.push_back(i);
      }
    }
  }
  metrics_.cache_hits->Increment(wave_hits);
  metrics_.dedup_hits->Increment(wave_dedup);
  metrics_.cache_misses->Increment(static_cast<int64_t>(miss_rep.size()));

  // Single batched miss-fill: one reverse-diffusion pass denoises every
  // missing bucket's PiT.
  if (!miss_rep.empty()) {
    std::vector<OdtInput> miss_odts;
    miss_odts.reserve(miss_rep.size());
    for (size_t idx : miss_rep) miss_odts.push_back(odts[idx]);
    std::vector<Pit> inferred;
    {
      std::lock_guard<std::mutex> olock(oracle_mu_);
      inferred = oracle_->InferPits(miss_odts);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t k = 0; k < miss_rep.size(); ++k) {
        InsertLocked(buckets[miss_rep[k]], inferred[k]);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (resolved[i]) continue;
      pits[i] = inferred[miss_slot.at(buckets[i])];
      resolved[i] = 1;
    }
  }

  // One batched stage-2 pass over the whole wave.
  std::vector<double> minutes;
  {
    std::lock_guard<std::mutex> olock(oracle_mu_);
    minutes = oracle_->EstimateFromPits(pits, odts);
  }
  std::vector<DotEstimate> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(DotEstimate{minutes[i], std::move(pits[i])});
  }
  metrics_.batch_latency_us->Observe(sw.ElapsedSeconds() * 1e6);
  return out;
}

Status OracleService::Warm(const std::vector<OdtInput>& odts) {
  // Deduplicate buckets, then batch-infer the missing ones.
  std::vector<OdtInput> missing;
  std::vector<int64_t> buckets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unordered_set<int64_t> queued;
    for (const auto& odt : odts) {
      int64_t bucket = BucketOf(odt);
      if (cache_.count(bucket) || !queued.insert(bucket).second) continue;
      missing.push_back(odt);
      buckets.push_back(bucket);
    }
  }
  if (missing.empty()) return Status::OK();
  std::vector<Pit> pits;
  {
    std::lock_guard<std::mutex> olock(oracle_mu_);
    pits = oracle_->InferPits(missing);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < pits.size(); ++i) {
    InsertLocked(buckets[i], std::move(pits[i]));
  }
  return Status::OK();
}

}  // namespace dot
