// Stage-2 travel-time estimators over (inferred) PiTs (paper Sec. 5):
// the Masked Vision Transformer (MViT), the vanilla ViT it is compared
// against, and the CNN ablation (Est-CNN, Table 7).

#ifndef DOT_CORE_ESTIMATOR_H_
#define DOT_CORE_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "geo/pit.h"
#include "tensor/nn.h"

namespace dot {

/// Which stage-2 estimator to build.
enum class EstimatorKind {
  kMvit,  ///< masked attention over valid cells only (Fig. 7b)
  kVit,   ///< full attention with a -inf mask (Fig. 7a)
  kCnn,   ///< convolutional ablation (Table 7, Est-CNN)
};

/// \brief Hyper-parameters of the stage-2 estimator.
struct EstimatorConfig {
  int64_t grid_size = 20;  ///< L_G
  int64_t embed_dim = 64;  ///< d_E (paper Table 2)
  int64_t layers = 2;      ///< L_E
  int64_t heads = 2;
  int64_t ffn_mult = 2;
  /// Ablations (Table 7): No-CE removes the cell-embedding module; No-ST
  /// removes the latent casting of the three PiT channels.
  bool use_cell_embedding = true;
  bool use_latent_cast = true;
  /// Wide component: fuse the engineered query features (OdtFeatures) into
  /// the pooled representation before the head. The paper's estimator uses
  /// the PiT alone — affordable when inferred routes are near-perfect; at
  /// CPU-scale stage-1 quality the explicit query features recover the
  /// remaining signal (DESIGN.md §4b).
  bool use_odt_features = true;
};

/// Number of engineered query features (see OdtFeatures in baselines; the
/// estimator receives the same vector).
inline constexpr int64_t kOdtFeatureDim = 7;

/// \brief Common interface: PiT batch -> normalized travel-time predictions.
class PitEstimator {
 public:
  virtual ~PitEstimator() = default;

  /// Returns [B, 1] predictions in normalized target space; the returned
  /// tensor is autograd-attached so callers can backprop a loss through it.
  /// `odt_features` is one kOdtFeatureDim vector per PiT (pass {} when the
  /// wide component is disabled).
  virtual Tensor ForwardBatch(
      const std::vector<Pit>& pits,
      const std::vector<std::vector<double>>& odt_features) const = 0;

  /// The underlying trainable module.
  virtual nn::Module* module() = 0;
  virtual const nn::Module* module() const = 0;
};

/// \brief Transformer estimator; `masked` selects MViT vs vanilla ViT.
///
/// Both share the token construction of Eq. 17/18: per-cell latent =
/// cell embedding + positional encoding + FC_ST(channels). MViT packs the
/// valid cells into a short sequence (computation scales with the number of
/// visited cells); ViT attends over all L_G^2 tokens with invalid keys
/// masked out. Their outputs agree up to float rounding (property-tested).
class TransformerEstimator : public nn::Module, public PitEstimator {
 public:
  TransformerEstimator(const EstimatorConfig& config, bool masked, Rng* rng);

  Tensor ForwardBatch(const std::vector<Pit>& pits,
                      const std::vector<std::vector<double>>& odt_features)
      const override;
  nn::Module* module() override { return this; }
  const nn::Module* module() const override { return this; }

  bool masked() const { return masked_; }
  const EstimatorConfig& config() const { return config_; }

 private:
  Tensor ForwardOne(const Pit& pit, const std::vector<double>* features) const;

  EstimatorConfig config_;
  bool masked_;
  Tensor pos_encoding_;  // [L^2, d_E], constant (Eq. 12 applied to positions)
  std::unique_ptr<nn::Embedding> cell_embedding_;  // E, Eq. 18
  std::unique_ptr<nn::Linear> fc_st_;              // FC_ST: R^3 -> R^dE

  struct Layer {
    std::unique_ptr<nn::LayerNorm> norm1, norm2;
    std::unique_ptr<nn::MultiheadAttention> att;
    std::unique_ptr<nn::FeedForward> ffn;
  };
  std::vector<Layer> layers_;
  std::unique_ptr<nn::LayerNorm> final_norm_;
  std::unique_ptr<nn::Linear> odt_fc1_, odt_fc2_;  // wide component (optional)
  std::unique_ptr<nn::Linear> head_;               // FC_pre, Eq. 22
};

/// \brief CNN baseline estimator (Est-CNN): stacked conv + pooling + head.
class CnnEstimator : public nn::Module, public PitEstimator {
 public:
  CnnEstimator(const EstimatorConfig& config, Rng* rng);

  Tensor ForwardBatch(const std::vector<Pit>& pits,
                      const std::vector<std::vector<double>>& odt_features)
      const override;
  nn::Module* module() override { return this; }
  const nn::Module* module() const override { return this; }

 private:
  EstimatorConfig config_;
  std::unique_ptr<nn::Conv2dLayer> conv1_, conv2_;
  std::unique_ptr<nn::Linear> odt_fc1_, odt_fc2_;
  std::unique_ptr<nn::Linear> head_;
};

/// Factory over EstimatorKind.
std::unique_ptr<PitEstimator> MakeEstimator(EstimatorKind kind,
                                            const EstimatorConfig& config,
                                            Rng* rng);

}  // namespace dot

#endif  // DOT_CORE_ESTIMATOR_H_
