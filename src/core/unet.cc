#include "core/unet.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace dot {

namespace {

// Groups are chosen so each group spans >= 4 channels: normalization over a
// single channel would cancel the per-channel conditioning shift of Eq. 15.
int64_t GroupsFor(int64_t channels) {
  for (int64_t g : {8, 4, 2}) {
    if (channels % g == 0 && channels / g >= 4) return g;
  }
  return 1;
}

/// Crops an NCHW tensor's spatial dims down to (h, w).
Tensor CropTo(const Tensor& x, int64_t h, int64_t w) {
  Tensor out = x;
  if (out.size(2) > h) out = Slice(out, 2, 0, h);
  if (out.size(3) > w) out = Slice(out, 3, 0, w);
  return out;
}

}  // namespace

namespace internal {

OCConv::OCConv(int64_t in_channels, int64_t out_channels, int64_t cond_dim,
               Rng* rng)
    : conv_in_(in_channels, in_channels, 3, 1, 1, rng),
      fc_cond_(cond_dim, in_channels, rng),
      norm1_(in_channels, GroupsFor(in_channels)),
      norm2_(out_channels, GroupsFor(out_channels)),
      conv1_(in_channels, out_channels, 3, 1, 1, rng),
      conv2_(out_channels, out_channels, 3, 1, 1, rng),
      res_(in_channels, out_channels, 1, 1, 0, rng) {
  RegisterModule("conv_in", &conv_in_);
  RegisterModule("fc_cond", &fc_cond_);
  RegisterModule("norm1", &norm1_);
  RegisterModule("norm2", &norm2_);
  RegisterModule("conv1", &conv1_);
  RegisterModule("conv2", &conv2_);
  RegisterModule("res", &res_);
}

Tensor OCConv::Forward(const Tensor& x, const Tensor& cond) const {
  // Eq. 14: dimension-preserving convolution (with a pre-normalization for
  // training stability; normalizing *after* the conditioning would cancel
  // the channel-wise shift of Eq. 15).
  Tensor h = conv_in_.Forward(norm1_.Forward(x));
  // Eq. 15: add the conditioned vector to every pixel, channel-wise. `h` is
  // a fresh conv output, so inference adds in place (AddReuse).
  Tensor c = fc_cond_.Forward(cond);                    // [B, C_in]
  c = Reshape(c, {c.size(0), c.size(1), 1, 1});         // broadcast over H, W
  h = AddReuse(h, c);
  // Eq. 16: two-layer convolution with GELU, plus the residual projection.
  h = conv1_.Forward(Gelu(h));
  h = conv2_.Forward(Gelu(norm2_.Forward(h)));
  return AddReuse(h, res_.Forward(x));
}

SpatialAttention::SpatialAttention(int64_t channels, int64_t heads, Rng* rng)
    : norm_(channels, GroupsFor(channels)), att_(channels, heads, rng) {
  RegisterModule("norm", &norm_);
  RegisterModule("att", &att_);
}

Tensor SpatialAttention::Forward(const Tensor& x) const {
  int64_t b = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  Tensor seq = Reshape(norm_.Forward(x), {b, c, -1});
  seq = Permute(seq, {0, 2, 1});  // [B, HW, C]
  seq = att_.Forward(seq);
  seq = Permute(seq, {0, 2, 1});
  // The permuted copy is exclusively owned; its reshaped view carries the
  // residual add in place under inference (x itself is never mutated).
  return AddReuse(Reshape(seq, {b, c, h, w}), x);
}

}  // namespace internal

UnetDenoiser::UnetDenoiser(const UnetConfig& config, Rng* rng) : config_(config) {
  step_encoding_ = nn::SinusoidalEncoding(config.max_steps, config.cond_dim);
  fc_od_ = std::make_unique<nn::Linear>(5, config.cond_dim, rng);
  RegisterModule("fc_od", fc_od_.get());

  std::vector<int64_t> ch(static_cast<size_t>(config.levels) + 1);
  for (int64_t i = 0; i <= config.levels; ++i) {
    ch[static_cast<size_t>(i)] = config.base_channels << i;
  }

  int64_t stem_in = config.in_channels + (config.spatial_condition ? 3 : 0);
  stem_ = std::make_unique<nn::Conv2dLayer>(stem_in, ch[0], 3, 1, 1, rng);
  RegisterModule("stem", stem_.get());

  for (int64_t i = 0; i < config.levels; ++i) {
    DownLevel level;
    level.block1 = std::make_unique<internal::OCConv>(
        ch[static_cast<size_t>(i)], ch[static_cast<size_t>(i)], config.cond_dim, rng);
    level.block2 = std::make_unique<internal::OCConv>(
        ch[static_cast<size_t>(i)], ch[static_cast<size_t>(i)], config.cond_dim, rng);
    level.att = std::make_unique<internal::SpatialAttention>(
        ch[static_cast<size_t>(i)], config.heads, rng);
    level.down = std::make_unique<nn::Conv2dLayer>(
        ch[static_cast<size_t>(i)], ch[static_cast<size_t>(i + 1)], 3, 2, 1, rng);
    std::string p = "down" + std::to_string(i);
    RegisterModule(p + ".block1", level.block1.get());
    RegisterModule(p + ".block2", level.block2.get());
    RegisterModule(p + ".att", level.att.get());
    RegisterModule(p + ".down", level.down.get());
    down_.push_back(std::move(level));
  }

  int64_t cm = ch[static_cast<size_t>(config.levels)];
  mid1_ = std::make_unique<internal::OCConv>(cm, cm, config.cond_dim, rng);
  mid_att_ = std::make_unique<internal::SpatialAttention>(cm, config.heads, rng);
  mid2_ = std::make_unique<internal::OCConv>(cm, cm, config.cond_dim, rng);
  RegisterModule("mid1", mid1_.get());
  RegisterModule("mid_att", mid_att_.get());
  RegisterModule("mid2", mid2_.get());

  for (int64_t i = config.levels - 1; i >= 0; --i) {
    UpLevel level;
    level.up_conv = std::make_unique<nn::Conv2dLayer>(
        ch[static_cast<size_t>(i + 1)], ch[static_cast<size_t>(i)], 3, 1, 1, rng);
    level.block1 = std::make_unique<internal::OCConv>(
        2 * ch[static_cast<size_t>(i)], ch[static_cast<size_t>(i)], config.cond_dim,
        rng);
    level.block2 = std::make_unique<internal::OCConv>(
        ch[static_cast<size_t>(i)], ch[static_cast<size_t>(i)], config.cond_dim, rng);
    level.att = std::make_unique<internal::SpatialAttention>(
        ch[static_cast<size_t>(i)], config.heads, rng);
    std::string p = "up" + std::to_string(i);
    RegisterModule(p + ".up_conv", level.up_conv.get());
    RegisterModule(p + ".block1", level.block1.get());
    RegisterModule(p + ".block2", level.block2.get());
    RegisterModule(p + ".att", level.att.get());
    up_.push_back(std::move(level));
  }

  out_norm_ = std::make_unique<nn::GroupNorm>(ch[0], GroupsFor(ch[0]));
  out_conv_ = std::make_unique<nn::Conv2dLayer>(ch[0], config.in_channels, 3, 1, 1,
                                                rng);
  RegisterModule("out_norm", out_norm_.get());
  RegisterModule("out_conv", out_conv_.get());
}

Tensor UnetDenoiser::SpatialCondition(const Tensor& cond, int64_t h,
                                      int64_t w) const {
  int64_t b = cond.size(0);
  Tensor maps = Tensor::Zeros({b, 3, h, w});
  for (int64_t i = 0; i < b; ++i) {
    const float* c = cond.data() + i * 5;
    float* base = maps.data() + i * 3 * h * w;
    // Channels 0/1: Gaussian blobs (sigma = 1 cell) at origin/destination.
    for (int64_t which = 0; which < 2; ++which) {
      double cx = (static_cast<double>(c[2 * which]) + 1.0) / 2.0 *
                  static_cast<double>(w - 1);
      double cy = (static_cast<double>(c[2 * which + 1]) + 1.0) / 2.0 *
                  static_cast<double>(h - 1);
      float* plane = base + which * h * w;
      for (int64_t r = 0; r < h; ++r) {
        for (int64_t col = 0; col < w; ++col) {
          double dx = static_cast<double>(col) - cx;
          double dy = static_cast<double>(r) - cy;
          plane[r * w + col] =
              static_cast<float>(std::exp(-0.5 * (dx * dx + dy * dy)));
        }
      }
    }
    // Channel 2: constant normalized time-of-day plane.
    std::fill(base + 2 * h * w, base + 3 * h * w, c[4]);
  }
  return maps;
}

Tensor UnetDenoiser::CondVector(const std::vector<int64_t>& steps,
                                const Tensor& cond) const {
  for (int64_t s : steps) {
    DOT_CHECK(s >= 0 && s < config_.max_steps) << "step index out of range";
  }
  Tensor pe = Rows(step_encoding_, steps);  // constant: no grad flows into it
  return Add(pe, fc_od_->Forward(cond));    // PE(n) + FC_OD(odt), Eq. 15
}

Tensor UnetDenoiser::PredictNoise(const Tensor& x,
                                  const std::vector<int64_t>& steps,
                                  const Tensor& cond) const {
  DOT_CHECK(x.dim() == 4) << "denoiser expects [B, C, L, L]";
  DOT_CHECK(cond.dim() == 2 && cond.size(1) == 5) << "cond must be [B, 5]";
  Tensor cvec = CondVector(steps, cond);

  Tensor inp = x;
  if (config_.spatial_condition) {
    inp = Concat({x, SpatialCondition(cond, x.size(2), x.size(3))}, 1);
  }
  Tensor h = stem_->Forward(inp);
  std::vector<Tensor> skips;
  for (const auto& level : down_) {
    h = level.block1->Forward(h, cvec);
    h = level.block2->Forward(h, cvec);
    if (h.size(2) * h.size(3) <= config_.attention_max_hw) {
      h = level.att->Forward(h);
    }
    skips.push_back(h);
    h = level.down->Forward(h);
  }

  h = mid1_->Forward(h, cvec);
  if (h.size(2) * h.size(3) <= config_.attention_max_hw) {
    h = mid_att_->Forward(h);
  }
  h = mid2_->Forward(h, cvec);

  for (size_t i = 0; i < up_.size(); ++i) {
    const auto& level = up_[i];
    const Tensor& skip = skips[skips.size() - 1 - i];
    h = level.up_conv->Forward(UpsampleNearest2x(h));
    h = CropTo(h, skip.size(2), skip.size(3));
    h = Concat({h, skip}, 1);
    h = level.block1->Forward(h, cvec);
    h = level.block2->Forward(h, cvec);
    if (h.size(2) * h.size(3) <= config_.attention_max_hw) {
      h = level.att->Forward(h);
    }
  }

  return out_conv_->Forward(Gelu(out_norm_->Forward(h)));
}

}  // namespace dot
