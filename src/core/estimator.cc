#include "core/estimator.h"

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace dot {

TransformerEstimator::TransformerEstimator(const EstimatorConfig& config,
                                           bool masked, Rng* rng)
    : config_(config), masked_(masked) {
  int64_t cells = config.grid_size * config.grid_size;
  pos_encoding_ = nn::SinusoidalEncoding(cells, config.embed_dim);
  if (config.use_cell_embedding) {
    cell_embedding_ = std::make_unique<nn::Embedding>(cells, config.embed_dim, rng);
    RegisterModule("cell_embedding", cell_embedding_.get());
  }
  if (config.use_latent_cast) {
    fc_st_ = std::make_unique<nn::Linear>(kPitChannels, config.embed_dim, rng);
    RegisterModule("fc_st", fc_st_.get());
  }
  for (int64_t i = 0; i < config.layers; ++i) {
    Layer layer;
    layer.norm1 = std::make_unique<nn::LayerNorm>(config.embed_dim);
    layer.norm2 = std::make_unique<nn::LayerNorm>(config.embed_dim);
    layer.att = std::make_unique<nn::MultiheadAttention>(config.embed_dim,
                                                         config.heads, rng);
    layer.ffn = std::make_unique<nn::FeedForward>(
        config.embed_dim, config.embed_dim * config.ffn_mult, rng);
    std::string p = "layer" + std::to_string(i);
    RegisterModule(p + ".norm1", layer.norm1.get());
    RegisterModule(p + ".att", layer.att.get());
    RegisterModule(p + ".norm2", layer.norm2.get());
    RegisterModule(p + ".ffn", layer.ffn.get());
    layers_.push_back(std::move(layer));
  }
  final_norm_ = std::make_unique<nn::LayerNorm>(config.embed_dim);
  if (config.use_odt_features) {
    odt_fc1_ = std::make_unique<nn::Linear>(kOdtFeatureDim, config.embed_dim, rng);
    odt_fc2_ = std::make_unique<nn::Linear>(config.embed_dim, config.embed_dim, rng);
    RegisterModule("odt_fc1", odt_fc1_.get());
    RegisterModule("odt_fc2", odt_fc2_.get());
  }
  head_ = std::make_unique<nn::Linear>(config.embed_dim, 1, rng);
  RegisterModule("final_norm", final_norm_.get());
  RegisterModule("head", head_.get());
}

Tensor TransformerEstimator::ForwardOne(const Pit& pit,
                                        const std::vector<double>* features) const {
  DOT_CHECK(pit.grid_size() == config_.grid_size)
      << "PiT size does not match estimator config";
  int64_t l = config_.grid_size;
  int64_t cells = l * l;
  std::vector<int64_t> valid = pit.VisitedIndices();
  // A degenerate inferred PiT with no visited cell falls back to the full
  // grid so the model still produces an estimate.
  if (valid.empty()) {
    valid.resize(static_cast<size_t>(cells));
    for (int64_t i = 0; i < cells; ++i) valid[static_cast<size_t>(i)] = i;
  }

  // Token ids for this sample: the packed valid cells (MViT) or every cell
  // (vanilla ViT).
  std::vector<int64_t> token_ids;
  std::vector<float> key_bias;
  if (masked_) {
    token_ids = valid;
  } else {
    token_ids.resize(static_cast<size_t>(cells));
    for (int64_t i = 0; i < cells; ++i) token_ids[static_cast<size_t>(i)] = i;
    key_bias.assign(static_cast<size_t>(cells), -1e9f);
    for (int64_t i : valid) key_bias[static_cast<size_t>(i)] = 0.0f;
  }
  int64_t n_tokens = static_cast<int64_t>(token_ids.size());

  // Eq. 18: latent = E[cell] + PE(cell) + FC_ST(channels).
  std::vector<float> channel_values(static_cast<size_t>(n_tokens * kPitChannels));
  for (int64_t i = 0; i < n_tokens; ++i) {
    int64_t idx = token_ids[static_cast<size_t>(i)];
    int64_t row = idx / l, col = idx % l;
    for (int64_t c = 0; c < kPitChannels; ++c) {
      channel_values[static_cast<size_t>(i * kPitChannels + c)] =
          pit.At(c, row, col);
    }
  }
  Tensor latent;
  if (fc_st_) {
    latent = fc_st_->Forward(
        Tensor::FromVector({n_tokens, kPitChannels}, std::move(channel_values)));
  } else {
    latent = Tensor::Zeros({n_tokens, config_.embed_dim});
  }
  latent = AddReuse(latent, Rows(pos_encoding_, token_ids));
  if (cell_embedding_) {
    latent = AddReuse(latent, cell_embedding_->Forward(token_ids));
  }

  // Pre-norm Transformer layers; attention is the masked scheme selected at
  // construction. Each residual add reuses the running activation's buffer
  // during inference (x is a freshly materialized intermediate throughout).
  Tensor x = Reshape(latent, {1, -1, config_.embed_dim});
  const std::vector<float>* bias = masked_ ? nullptr : &key_bias;
  for (const auto& layer : layers_) {
    x = AddReuse(x, layer.att->Forward(layer.norm1->Forward(x), bias));
    x = AddReuse(x, layer.ffn->Forward(layer.norm2->Forward(x)));
  }
  x = final_norm_->Forward(x);

  // Mean pooling over valid tokens only (Eq. 22). For ViT, gather the valid
  // rows first so masked-out tokens do not contaminate the pool.
  Tensor seq = Reshape(x, {-1, config_.embed_dim});
  if (!masked_) seq = Rows(seq, valid);
  Tensor pooled = MeanAxis(seq, 0, /*keepdim=*/true);  // [1, d]
  if (odt_fc1_ && features != nullptr) {
    std::vector<float> f(features->begin(), features->end());
    Tensor wide = Relu(odt_fc1_->Forward(
        Tensor::FromVector({1, kOdtFeatureDim}, std::move(f))));
    wide = Relu(odt_fc2_->Forward(wide));
    pooled = AddReuse(pooled, wide);
  }
  return head_->Forward(pooled);                       // [1, 1]
}

Tensor TransformerEstimator::ForwardBatch(
    const std::vector<Pit>& pits,
    const std::vector<std::vector<double>>& odt_features) const {
  DOT_CHECK(!pits.empty()) << "empty PiT batch";
  DOT_CHECK(odt_features.empty() || odt_features.size() == pits.size())
      << "odt_features must be empty or parallel to pits";
  obs::TraceSpan span(masked_ ? "MVit::ForwardBatch" : "Vit::ForwardBatch");
  std::vector<Tensor> outs;
  outs.reserve(pits.size());
  for (size_t i = 0; i < pits.size(); ++i) {
    const std::vector<double>* f =
        odt_features.empty() ? nullptr : &odt_features[i];
    outs.push_back(ForwardOne(pits[i], f));
  }
  return Concat(outs, 0);  // [B, 1]
}

CnnEstimator::CnnEstimator(const EstimatorConfig& config, Rng* rng)
    : config_(config) {
  conv1_ = std::make_unique<nn::Conv2dLayer>(kPitChannels, 16, 3, 1, 1, rng);
  conv2_ = std::make_unique<nn::Conv2dLayer>(16, 32, 3, 1, 1, rng);
  if (config.use_odt_features) {
    odt_fc1_ = std::make_unique<nn::Linear>(kOdtFeatureDim, 32, rng);
    odt_fc2_ = std::make_unique<nn::Linear>(32, 32, rng);
    RegisterModule("odt_fc1", odt_fc1_.get());
    RegisterModule("odt_fc2", odt_fc2_.get());
  }
  head_ = std::make_unique<nn::Linear>(32, 1, rng);
  RegisterModule("conv1", conv1_.get());
  RegisterModule("conv2", conv2_.get());
  RegisterModule("head", head_.get());
}

Tensor CnnEstimator::ForwardBatch(
    const std::vector<Pit>& pits,
    const std::vector<std::vector<double>>& odt_features) const {
  DOT_CHECK(!pits.empty()) << "empty PiT batch";
  DOT_CHECK(odt_features.empty() || odt_features.size() == pits.size())
      << "odt_features must be empty or parallel to pits";
  int64_t b = static_cast<int64_t>(pits.size());
  int64_t l = config_.grid_size;
  Tensor x = Tensor::Empty({b, kPitChannels, l, l});
  int64_t per = kPitChannels * l * l;
  for (int64_t i = 0; i < b; ++i) {
    DOT_CHECK(pits[static_cast<size_t>(i)].grid_size() == l) << "PiT size mismatch";
    const Tensor& t = pits[static_cast<size_t>(i)].tensor();
    std::copy(t.data(), t.data() + per, x.data() + i * per);
  }
  Tensor h = Gelu(conv1_->Forward(x));
  if (h.size(2) % 2 == 0) h = AvgPool2d(h);
  h = Gelu(conv2_->Forward(h));
  // Global average pool -> [B, C].
  h = MeanAxis(MeanAxis(h, 3), 2);
  if (odt_fc1_ && !odt_features.empty()) {
    std::vector<float> f;
    f.reserve(static_cast<size_t>(b * kOdtFeatureDim));
    for (const auto& row : odt_features) {
      for (double v : row) f.push_back(static_cast<float>(v));
    }
    Tensor wide = Relu(odt_fc1_->Forward(
        Tensor::FromVector({b, kOdtFeatureDim}, std::move(f))));
    wide = Relu(odt_fc2_->Forward(wide));
    h = AddReuse(h, wide);
  }
  return head_->Forward(h);  // [B, 1]
}

std::unique_ptr<PitEstimator> MakeEstimator(EstimatorKind kind,
                                            const EstimatorConfig& config,
                                            Rng* rng) {
  switch (kind) {
    case EstimatorKind::kMvit:
      return std::make_unique<TransformerEstimator>(config, /*masked=*/true, rng);
    case EstimatorKind::kVit:
      return std::make_unique<TransformerEstimator>(config, /*masked=*/false, rng);
    case EstimatorKind::kCnn:
      return std::make_unique<CnnEstimator>(config, rng);
  }
  return nullptr;
}

}  // namespace dot
