// Denoising-diffusion machinery for PiT inference (paper Sec. 4.1):
// the forward noising process q (Eq. 2-5), the conditioned reverse process
// p_theta (Eq. 6-10), and the training objective (Eq. 11, Algorithm 2).

#ifndef DOT_CORE_DIFFUSION_H_
#define DOT_CORE_DIFFUSION_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace dot {

/// \brief Noise schedule: linear betas over N steps, as in DDPM [15] and
/// Sec. 4.1.1. The canonical 1e-4..0.02 range is calibrated for N = 1000;
/// for other N the range is rescaled by 1000/N (the standard "scaled
/// linear" rule) so the terminal alpha_bar stays near zero — otherwise the
/// reverse process would start from pure noise while the forward process
/// never reached it. Pass explicit bounds to override.
class DiffusionSchedule {
 public:
  explicit DiffusionSchedule(int64_t num_steps, double beta_start = -1,
                             double beta_end = -1);

  int64_t num_steps() const { return n_; }
  /// 1-based step indices in the paper map to 0-based [0, N) here.
  double beta(int64_t step) const { return beta_[static_cast<size_t>(step)]; }
  double alpha(int64_t step) const { return alpha_[static_cast<size_t>(step)]; }
  double alpha_bar(int64_t step) const {
    return alpha_bar_[static_cast<size_t>(step)];
  }

 private:
  int64_t n_;
  std::vector<double> beta_, alpha_, alpha_bar_;
};

/// \brief Interface the diffusion process uses to query the learned noise
/// predictor epsilon_theta(X_n, n, odt).
class NoisePredictor {
 public:
  virtual ~NoisePredictor() = default;

  /// x: [B, C, L, L] noisy PiTs; steps: B 0-based step indices; cond: [B, 5]
  /// encoded ODT-Inputs. Returns predicted noise of the same shape as x.
  virtual Tensor PredictNoise(const Tensor& x, const std::vector<int64_t>& steps,
                              const Tensor& cond) const = 0;
};

/// What the network's output head regresses. DDPM's Eq. 11 / Algorithm 2 use
/// the epsilon form; the x0 form is its exact reparameterization (DDPM
/// Sec. 3.2) and trains markedly better for small models on near-binary
/// images like PiTs (see DESIGN.md §4b).
enum class Parameterization {
  kEpsilon,  ///< network output is the added noise (paper Algorithm 2)
  kX0,       ///< network output is the clean PiT
};

/// \brief Forward q and reverse p processes around a NoisePredictor.
class Diffusion {
 public:
  explicit Diffusion(DiffusionSchedule schedule,
                     Parameterization param = Parameterization::kEpsilon)
      : schedule_(std::move(schedule)), param_(param) {}

  const DiffusionSchedule& schedule() const { return schedule_; }
  Parameterization parameterization() const { return param_; }

  /// Diffuses clean images to step `n` in closed form (Eq. 4):
  /// x_n = sqrt(alpha_bar_n) x_0 + sqrt(1 - alpha_bar_n) eps.
  /// `eps` must be standard normal of x0's shape.
  Tensor QSample(const Tensor& x0, const std::vector<int64_t>& steps,
                 const Tensor& eps) const;

  /// Ancestral sampling (Algorithm 1 / Eq. 10): starts from N(0, I) and
  /// denoises step by step under the condition. Runs under NoGrad.
  ///
  /// Noise is drawn from one decorrelated stream per batch sample, each
  /// forked from `rng` in batch order (exactly one fork per sample). A
  /// batched call is therefore bitwise identical to the corresponding
  /// sequence of single-sample calls against the same parent generator —
  /// the property the batched serving path (DotOracle::EstimateBatch,
  /// OracleService::QueryBatch) relies on.
  Tensor Sample(const NoisePredictor& model, const Tensor& cond,
                const std::vector<int64_t>& out_shape, Rng* rng) const;

  /// Strided deterministic sampling (DDIM, eta = 0) using `num_eval_steps`
  /// evenly spaced steps — the fast-inference option benchmarked in the
  /// hyper-parameter study. With num_eval_steps == N this approaches the
  /// full reverse process at a fraction of the cost.
  Tensor SampleStrided(const NoisePredictor& model, const Tensor& cond,
                       const std::vector<int64_t>& out_shape,
                       int64_t num_eval_steps, Rng* rng) const;

  /// One training step's loss target setup (Algorithm 2, lines 2-5): given
  /// x0 batch, draws per-sample steps and noise, returns x_n and fills
  /// `steps`/`eps`. The caller computes ||eps - eps_theta(x_n, n, odt)||^2.
  Tensor MakeTrainingExample(const Tensor& x0, Rng* rng,
                             std::vector<int64_t>* steps, Tensor* eps) const;

 private:
  /// Converts the network output at step `t` into (clipped x0_hat, eps_hat).
  void SplitPrediction(float x_t, float model_out, double ab_t, float* x0_hat,
                       float* eps_hat) const;

  /// Forks one noise stream per batch sample (batch-size invariance above).
  static std::vector<Rng> ForkSampleStreams(Rng* rng, int64_t b);
  /// Draws x_N from N(0, I), sample i from stream i.
  static Tensor InitialNoise(const std::vector<int64_t>& out_shape,
                             std::vector<Rng>* streams);

  DiffusionSchedule schedule_;
  Parameterization param_;
};

}  // namespace dot

#endif  // DOT_CORE_DIFFUSION_H_
