// The conditioned PiT denoiser (paper Sec. 4.2, Fig. 6): a UNet whose
// OCConv blocks fuse the ODT-Input condition and the diffusion-step
// encoding into every level.

#ifndef DOT_CORE_UNET_H_
#define DOT_CORE_UNET_H_

#include <memory>
#include <vector>

#include "core/diffusion.h"
#include "tensor/nn.h"

namespace dot {

/// \brief Hyper-parameters of the denoiser.
struct UnetConfig {
  int64_t in_channels = 3;   ///< PiT channels
  int64_t base_channels = 16;
  int64_t levels = 3;        ///< L_D down-sampling blocks (paper Table 2)
  int64_t cond_dim = 64;     ///< d in Eq. 12/13
  int64_t heads = 2;         ///< attention heads
  /// Self-attention is applied in blocks whose H*W is at most this (the
  /// standard DDPM practice of attending at coarse resolutions; full
  /// attention at the native PiT resolution is prohibitively slow on CPU).
  int64_t attention_max_hw = 160;
  int64_t max_steps = 1000;  ///< size of the step-encoding table (>= N)
  /// When set (default), the ODT-Input is additionally rendered as three
  /// spatial channels concatenated to the noisy PiT: Gaussian blobs at the
  /// origin and destination cells plus a constant time-of-day plane. The
  /// paper's global FC_OD pathway (Eq. 13/15) is kept either way; the
  /// spatial channels give the small CPU-scale UNet a localized view of the
  /// endpoints that the full-scale model learns from data (DESIGN.md).
  bool spatial_condition = true;
};

namespace internal {

/// \brief ODT-Input Conditioned Convolutional module (Fig. 6b, Eq. 14-16).
///
/// GroupNorm layers are inserted before the activations for training
/// stability (the paper's ConvNeXt backbone normalizes likewise).
class OCConv : public nn::Module {
 public:
  OCConv(int64_t in_channels, int64_t out_channels, int64_t cond_dim, Rng* rng);

  /// x: [B, C_in, H, W], cond: [B, cond_dim] -> [B, C_out, H, W].
  Tensor Forward(const Tensor& x, const Tensor& cond) const;

 private:
  nn::Conv2dLayer conv_in_;    // Eq. 14: dimension-preserving Conv2D
  nn::Linear fc_cond_;         // Eq. 15: FC_Cond
  nn::GroupNorm norm1_, norm2_;
  nn::Conv2dLayer conv1_, conv2_;  // Eq. 16 two-layer conv with activation
  nn::Conv2dLayer res_;        // Eq. 16 ResConv (1x1)
};

/// \brief Spatial self-attention over an NCHW feature map.
class SpatialAttention : public nn::Module {
 public:
  SpatialAttention(int64_t channels, int64_t heads, Rng* rng);

  Tensor Forward(const Tensor& x) const;  ///< residual attention

 private:
  nn::GroupNorm norm_;
  nn::MultiheadAttention att_;
};

}  // namespace internal

/// \brief The conditioned PiT denoiser epsilon_theta(X_n, n, odt).
class UnetDenoiser : public nn::Module, public NoisePredictor {
 public:
  UnetDenoiser(const UnetConfig& config, Rng* rng);

  /// NoisePredictor: x [B, C, L, L], per-sample 0-based steps, cond [B, 5].
  Tensor PredictNoise(const Tensor& x, const std::vector<int64_t>& steps,
                      const Tensor& cond) const override;

  const UnetConfig& config() const { return config_; }

 private:
  Tensor CondVector(const std::vector<int64_t>& steps, const Tensor& cond) const;
  /// Rasterizes the ODT condition into [B, 3, h, w] spatial planes.
  Tensor SpatialCondition(const Tensor& cond, int64_t h, int64_t w) const;

  UnetConfig config_;
  Tensor step_encoding_;  // [max_steps, cond_dim], constant (Eq. 12)
  std::unique_ptr<nn::Linear> fc_od_;  // Eq. 13
  std::unique_ptr<nn::Conv2dLayer> stem_;

  struct DownLevel {
    std::unique_ptr<internal::OCConv> block1, block2;
    std::unique_ptr<internal::SpatialAttention> att;  // null if disabled
    std::unique_ptr<nn::Conv2dLayer> down;            // stride-2
  };
  struct UpLevel {
    std::unique_ptr<nn::Conv2dLayer> up_conv;  // after nearest upsample
    std::unique_ptr<internal::OCConv> block1, block2;
    std::unique_ptr<internal::SpatialAttention> att;
  };
  std::vector<DownLevel> down_;
  std::unique_ptr<internal::OCConv> mid1_, mid2_;
  std::unique_ptr<internal::SpatialAttention> mid_att_;
  std::vector<UpLevel> up_;
  std::unique_ptr<nn::GroupNorm> out_norm_;
  std::unique_ptr<nn::Conv2dLayer> out_conv_;
};

}  // namespace dot

#endif  // DOT_CORE_UNET_H_
