// A serving layer over DotOracle for map-based services: queries are
// bucketed by (origin cell, destination cell, time-of-day slot) and the
// inferred PiT of a bucket is cached with LRU eviction, so repeated
// queries for the same OD neighborhood skip the diffusion sampling
// entirely (the expensive part of Table 5's estimation cost).
//
// QueryBatch is the high-throughput entry point: a request wave is
// partitioned into cache hits and misses, the misses are deduplicated by
// bucket and denoised in a single batched reverse-diffusion pass, and all
// travel times come from one batched stage-2 pass. Results are bitwise
// identical to issuing the same queries sequentially (the diffusion
// samplers fork one noise stream per query, in query order).
//
// The service is thread-safe: the cache and statistics are guarded by one
// mutex and calls into the underlying DotOracle (which is stateful and not
// thread-safe — it owns the sampling RNG) are serialized by another.
//
// Fault tolerance (DESIGN.md §5d): queries carry an optional deadline, and
// a miss that cannot afford (or repeatedly fails) the full reverse-
// diffusion pass degrades down a ladder — fewer DDIM steps, then a PiT
// borrowed from a neighboring time-of-day bucket, then a cheap fallback
// estimate — so a wave never fails wholesale because stage 1 did. Every
// estimate is tagged with the ServedQuality level that produced it.

#ifndef DOT_CORE_ORACLE_SERVICE_H_
#define DOT_CORE_ORACLE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/dot_oracle.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace dot {

/// \brief Caching and fault-tolerance configuration.
struct OracleServiceConfig {
  /// Time-of-day slots per day used in the cache key (48 = 30-minute bins).
  int64_t tod_slots = 48;
  /// Maximum cached buckets; the least-recently-used bucket is evicted when
  /// an insert would exceed this.
  int64_t max_entries = 200000;

  /// DDIM steps of the kReducedSteps ladder level (must be < the oracle's
  /// configured sample_steps to actually save time).
  int64_t degraded_sample_steps = 4;
  /// Bounded retry for transient (Internal) stage-1 failures: total
  /// attempts per ladder level are 1 + max_retries.
  int64_t max_retries = 2;
  /// Backoff before retry k is retry_backoff_ms << (k-1) milliseconds,
  /// jittered by ±25% so shards that fail from a common cause desynchronize
  /// instead of re-storming the oracle in lockstep; retries that cannot fit
  /// their backoff inside the deadline are skipped.
  int64_t retry_backoff_ms = 1;
  /// kCachedNeighbor searches this many time-of-day slots on each side of
  /// the missing bucket for a cached PiT of the same OD pair.
  int64_t neighbor_slot_radius = 1;
  /// Estimate of last resort (kFallback). When unset, the oracle's stage-2
  /// training-mean travel time is served.
  std::function<double(const OdtInput&)> fallback_estimator;
};

/// \brief Per-call stage wall times, filled when QueryOptions::timing is
/// set. Lets the serving front-end split a request's latency into queue /
/// batch / stage-1 / stage-2 segments without re-instrumenting the core.
struct StageTiming {
  double stage1_us = 0;  ///< miss serving (ladder incl. diffusion sampling)
  double stage2_us = 0;  ///< batched travel-time estimator pass
};

/// \brief Per-request serving options.
struct QueryOptions {
  /// Soft deadline for the whole call, milliseconds since the call started
  /// (0 = none). When the predicted stage-1 cost (windowed p95 of the
  /// observed latency, lifetime p95 when the window is empty) exceeds the
  /// remaining budget, the service degrades instead of running late.
  double deadline_ms = 0;
  /// When set, Query/QueryBatch write their stage wall times here (output
  /// parameter; must outlive the call).
  StageTiming* timing = nullptr;
  /// When set, receives true iff stage-1 inference *failed* during the call
  /// (retries exhausted / NaN-poisoned sampler), false otherwise. Deadline-
  /// driven degradations do NOT count — they are the service working as
  /// intended, not the model failing. The shard health machinery keys its
  /// consecutive-failure quarantine off this signal.
  bool* stage1_failed = nullptr;
};

/// \brief Query statistics of an OracleService.
struct OracleServiceStats {
  int64_t queries = 0;        ///< individual queries (batch members count)
  int64_t batch_queries = 0;  ///< QueryBatch invocations
  int64_t cache_hits = 0;     ///< answered from a pre-existing cache entry
  /// Batch "free riders": queries whose bucket missed the cache but was
  /// filled by another query of the same wave, so they cost no extra
  /// diffusion pass. Counted separately from cache_hits — a dedup hit says
  /// the *wave* was redundant, not that the cache was warm.
  int64_t dedup_hits = 0;
  int64_t cache_misses = 0;   ///< bucket absent: paid a stage-1 inference
  int64_t evictions = 0;      ///< LRU evictions
  /// Fraction of queries that skipped stage-1 sampling (cache + dedup).
  double hit_rate() const {
    return queries > 0 ? static_cast<double>(cache_hits + dedup_hits) /
                             static_cast<double>(queries)
                       : 0.0;
  }
};

/// \brief Bucketed LRU-cache front end for a trained DotOracle.
class OracleService {
 public:
  /// `oracle` must be trained and outlive the service.
  OracleService(DotOracle* oracle, OracleServiceConfig config = {});

  /// Answers a query, reusing the bucket's cached PiT when available. A
  /// miss that busts the deadline or exhausts stage-1 retries is answered
  /// at a degraded ladder level (see DotEstimate::quality) rather than
  /// failing; only invalid input or an untrained oracle return an error.
  Result<DotEstimate> Query(const OdtInput& odt, const QueryOptions& opts = {});

  /// Answers a wave of queries: cache hits are served from their buckets,
  /// the remaining buckets are deduplicated and filled by one batched
  /// stage-1 sampling pass, and stage 2 runs once over the whole wave.
  /// Returns one estimate per input, in input order. Stage-1 failures
  /// degrade per the ladder and never fail the wave; any invalid input
  /// rejects the whole wave with InvalidArgument (naming the index).
  Result<std::vector<DotEstimate>> QueryBatch(const std::vector<OdtInput>& odts,
                                              const QueryOptions& opts = {});

  /// Answers a wave *without ever running stage 1* — the bounded-failover
  /// path for queries whose home shard is quarantined: an exact cached
  /// bucket serves at kFull, a neighboring time-of-day bucket at
  /// kCachedNeighbor, everything else at kFallback. One batched stage-2
  /// pass covers every query that found a PiT. Never trains, never samples,
  /// so it is safe to call against a shard whose model is poisoned.
  Result<std::vector<DotEstimate>> QueryDegraded(
      const std::vector<OdtInput>& odts);

  /// Pre-computes the buckets for a set of expected queries (e.g. a
  /// morning's dispatch plan) so later Query calls are cache hits.
  Status Warm(const std::vector<OdtInput>& odts);

  /// Snapshot of the running statistics.
  OracleServiceStats stats() const;
  int64_t cache_size() const;
  void ClearCache();

 private:
  struct CacheEntry {
    Pit pit;
    std::list<int64_t>::iterator lru_it;  // position in lru_ (front = MRU)
  };

  /// Outcome of serving a set of cache misses through the ladder. The
  /// vectors are parallel to the misses; `pits[i]` is meaningful iff
  /// `quality[i] != kFallback`, `minutes[i]` iff it is. `fresh` marks pits
  /// produced by a stage-1 pass in this call (cacheable when kFull).
  struct MissServe {
    std::vector<Pit> pits;
    std::vector<double> minutes;
    std::vector<ServedQuality> quality;
    bool fresh = false;
    /// Stage-1 inference was attempted and failed (exhausted retries). Not
    /// set by deadline-driven skips. Feeds QueryOptions::stage1_failed.
    bool stage1_error = false;
  };

  int64_t BucketOf(const OdtInput& odt) const;
  /// Moves `it`'s bucket to the MRU position. Caller holds mu_.
  void Touch(std::unordered_map<int64_t, CacheEntry>::iterator it);
  /// Inserts (or refreshes) a bucket, evicting LRU entries as needed.
  /// Caller holds mu_.
  void InsertLocked(int64_t bucket, Pit pit);

  /// Boundary validation: finite in-area coordinates, non-negative
  /// departure time. The service area is the grid box inflated by 1% (GPS
  /// jitter at the boundary must not reject a serviceable trip).
  Status ValidateQuery(const OdtInput& odt) const;
  /// Stage-1 inference with bounded retry + exponential backoff on
  /// transient (Internal) failures. Takes/releases oracle_mu_ per attempt.
  Result<std::vector<Pit>> TryInferWithRetry(const std::vector<OdtInput>& odts,
                                             int64_t sample_steps,
                                             const QueryOptions& opts,
                                             const Stopwatch& sw);
  /// kCachedNeighbor lookup: a cached PiT of the same OD pair within
  /// neighbor_slot_radius time-of-day slots. Caller holds mu_.
  bool LookupNeighborLocked(int64_t bucket, Pit* pit);
  /// Runs the degradation ladder over a set of cache misses. Never fails:
  /// every miss comes back with a PiT or a fallback estimate.
  MissServe ServeMisses(const std::vector<OdtInput>& miss_odts,
                        const std::vector<int64_t>& miss_buckets,
                        const QueryOptions& opts, const Stopwatch& sw);
  /// Bumps the per-level degradation counter (no-op for kFull).
  void RecordQuality(ServedQuality q);

  DotOracle* oracle_;
  OracleServiceConfig config_;

  // Registry metrics (process-wide, shared across service instances);
  // resolved once here so the hot path never touches the registry map.
  struct Metrics {
    Metrics();
    obs::Histogram* query_latency_us;   // per-Query wall time
    obs::Histogram* batch_latency_us;   // per-QueryBatch wall time
    obs::Histogram* batch_size;         // QueryBatch wave sizes
    obs::Counter* queries;
    obs::Counter* cache_hits;
    obs::Counter* dedup_hits;
    obs::Counter* cache_misses;
    obs::Counter* evictions;
    // Fault-tolerance series (DESIGN.md §5d). The stage-1 latency
    // histogram is the oracle's own (shared registry object); the rolling
    // window over the same series is the deadline triage's cost
    // prediction (current load, not process history), with the lifetime
    // p95 as fallback while the window is empty.
    obs::Histogram* stage1_latency_us;
    obs::RollingHistogram* stage1_window;
    obs::Counter* retries;                    // dot_serving_retries_total
    obs::Counter* degraded_reduced_steps;     // ..._degraded_total{level=...}
    obs::Counter* degraded_cached_neighbor;
    obs::Counter* degraded_fallback;
  };
  Metrics metrics_;

  mutable std::mutex mu_;  // guards cache_, lru_, stats_
  std::unordered_map<int64_t, CacheEntry> cache_;
  std::list<int64_t> lru_;  // front = most recently used
  OracleServiceStats stats_;

  std::mutex oracle_mu_;  // serializes calls into the stateful oracle
};

}  // namespace dot

#endif  // DOT_CORE_ORACLE_SERVICE_H_
