// A thin serving layer over DotOracle for map-based services: queries are
// bucketed by (origin cell, destination cell, time-of-day slot) and the
// inferred PiT of a bucket is cached, so repeated queries for the same OD
// neighborhood skip the diffusion sampling entirely (the expensive part of
// Table 5's estimation cost).

#ifndef DOT_CORE_ORACLE_SERVICE_H_
#define DOT_CORE_ORACLE_SERVICE_H_

#include <cstdint>
#include <unordered_map>

#include "core/dot_oracle.h"

namespace dot {

/// \brief Caching configuration.
struct OracleServiceConfig {
  /// Time-of-day slots per day used in the cache key (48 = 30-minute bins).
  int64_t tod_slots = 48;
  /// Maximum cached buckets; the cache is cleared wholesale when exceeded
  /// (simple and allocation-friendly; typical working sets fit easily).
  int64_t max_entries = 200000;
};

/// \brief Query statistics of an OracleService.
struct OracleServiceStats {
  int64_t queries = 0;
  int64_t cache_hits = 0;
  double hit_rate() const {
    return queries > 0 ? static_cast<double>(cache_hits) /
                             static_cast<double>(queries)
                       : 0.0;
  }
};

/// \brief Bucketed-cache front end for a trained DotOracle.
class OracleService {
 public:
  /// `oracle` must be trained and outlive the service.
  OracleService(DotOracle* oracle, OracleServiceConfig config = {});

  /// Answers a query, reusing the bucket's cached PiT when available.
  Result<DotEstimate> Query(const OdtInput& odt);

  /// Pre-computes the buckets for a set of expected queries (e.g. a
  /// morning's dispatch plan) so later Query calls are cache hits.
  Status Warm(const std::vector<OdtInput>& odts);

  const OracleServiceStats& stats() const { return stats_; }
  int64_t cache_size() const { return static_cast<int64_t>(cache_.size()); }
  void ClearCache() { cache_.clear(); }

 private:
  int64_t BucketOf(const OdtInput& odt) const;

  DotOracle* oracle_;
  OracleServiceConfig config_;
  std::unordered_map<int64_t, Pit> cache_;
  OracleServiceStats stats_;
};

}  // namespace dot

#endif  // DOT_CORE_ORACLE_SERVICE_H_
