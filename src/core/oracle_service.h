// A serving layer over DotOracle for map-based services: queries are
// bucketed by (origin cell, destination cell, time-of-day slot) and the
// inferred PiT of a bucket is cached with LRU eviction, so repeated
// queries for the same OD neighborhood skip the diffusion sampling
// entirely (the expensive part of Table 5's estimation cost).
//
// QueryBatch is the high-throughput entry point: a request wave is
// partitioned into cache hits and misses, the misses are deduplicated by
// bucket and denoised in a single batched reverse-diffusion pass, and all
// travel times come from one batched stage-2 pass. Results are bitwise
// identical to issuing the same queries sequentially (the diffusion
// samplers fork one noise stream per query, in query order).
//
// The service is thread-safe: the cache and statistics are guarded by one
// mutex and calls into the underlying DotOracle (which is stateful and not
// thread-safe — it owns the sampling RNG) are serialized by another.

#ifndef DOT_CORE_ORACLE_SERVICE_H_
#define DOT_CORE_ORACLE_SERVICE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/dot_oracle.h"
#include "obs/metrics.h"

namespace dot {

/// \brief Caching configuration.
struct OracleServiceConfig {
  /// Time-of-day slots per day used in the cache key (48 = 30-minute bins).
  int64_t tod_slots = 48;
  /// Maximum cached buckets; the least-recently-used bucket is evicted when
  /// an insert would exceed this.
  int64_t max_entries = 200000;
};

/// \brief Query statistics of an OracleService.
struct OracleServiceStats {
  int64_t queries = 0;        ///< individual queries (batch members count)
  int64_t batch_queries = 0;  ///< QueryBatch invocations
  int64_t cache_hits = 0;     ///< answered from a pre-existing cache entry
  /// Batch "free riders": queries whose bucket missed the cache but was
  /// filled by another query of the same wave, so they cost no extra
  /// diffusion pass. Counted separately from cache_hits — a dedup hit says
  /// the *wave* was redundant, not that the cache was warm.
  int64_t dedup_hits = 0;
  int64_t cache_misses = 0;   ///< bucket absent: paid a stage-1 inference
  int64_t evictions = 0;      ///< LRU evictions
  /// Fraction of queries that skipped stage-1 sampling (cache + dedup).
  double hit_rate() const {
    return queries > 0 ? static_cast<double>(cache_hits + dedup_hits) /
                             static_cast<double>(queries)
                       : 0.0;
  }
};

/// \brief Bucketed LRU-cache front end for a trained DotOracle.
class OracleService {
 public:
  /// `oracle` must be trained and outlive the service.
  OracleService(DotOracle* oracle, OracleServiceConfig config = {});

  /// Answers a query, reusing the bucket's cached PiT when available.
  Result<DotEstimate> Query(const OdtInput& odt);

  /// Answers a wave of queries: cache hits are served from their buckets,
  /// the remaining buckets are deduplicated and filled by one batched
  /// stage-1 sampling pass, and stage 2 runs once over the whole wave.
  /// Returns one estimate per input, in input order.
  Result<std::vector<DotEstimate>> QueryBatch(const std::vector<OdtInput>& odts);

  /// Pre-computes the buckets for a set of expected queries (e.g. a
  /// morning's dispatch plan) so later Query calls are cache hits.
  Status Warm(const std::vector<OdtInput>& odts);

  /// Snapshot of the running statistics.
  OracleServiceStats stats() const;
  int64_t cache_size() const;
  void ClearCache();

 private:
  struct CacheEntry {
    Pit pit;
    std::list<int64_t>::iterator lru_it;  // position in lru_ (front = MRU)
  };

  int64_t BucketOf(const OdtInput& odt) const;
  /// Moves `it`'s bucket to the MRU position. Caller holds mu_.
  void Touch(std::unordered_map<int64_t, CacheEntry>::iterator it);
  /// Inserts (or refreshes) a bucket, evicting LRU entries as needed.
  /// Caller holds mu_.
  void InsertLocked(int64_t bucket, Pit pit);

  DotOracle* oracle_;
  OracleServiceConfig config_;

  // Registry metrics (process-wide, shared across service instances);
  // resolved once here so the hot path never touches the registry map.
  struct Metrics {
    Metrics();
    obs::Histogram* query_latency_us;   // per-Query wall time
    obs::Histogram* batch_latency_us;   // per-QueryBatch wall time
    obs::Histogram* batch_size;         // QueryBatch wave sizes
    obs::Counter* queries;
    obs::Counter* cache_hits;
    obs::Counter* dedup_hits;
    obs::Counter* cache_misses;
    obs::Counter* evictions;
  };
  Metrics metrics_;

  mutable std::mutex mu_;  // guards cache_, lru_, stats_
  std::unordered_map<int64_t, CacheEntry> cache_;
  std::list<int64_t> lru_;  // front = most recently used
  OracleServiceStats stats_;

  std::mutex oracle_mu_;  // serializes calls into the stateful oracle
};

}  // namespace dot

#endif  // DOT_CORE_ORACLE_SERVICE_H_
