#include "core/shard.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace dot {

const char* ShardHealthName(ShardHealth h) {
  switch (h) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

OracleShard::Metrics::Metrics(const std::string& id) {
  auto& reg = obs::MetricsRegistry::Get();
  std::vector<std::pair<std::string, std::string>> l{{"shard", id}};
  waves = reg.GetCounter("dot_shard_waves_total", l);
  queries = reg.GetCounter("dot_shard_queries_total", l);
  failures = reg.GetCounter("dot_shard_failures_total", l);
  quarantines = reg.GetCounter("dot_shard_quarantines_total", l);
  probes = reg.GetCounter("dot_shard_probes_total", l);
  swaps = reg.GetCounter("dot_shard_swaps_total", l);
  cache_hits = reg.GetCounter("dot_shard_cache_hits_total", l);
  for (int q = 0; q < 4; ++q) {
    quality[q] = reg.GetCounter(
        "dot_shard_quality_total",
        {{"shard", id},
         {"level", ServedQualityName(static_cast<ServedQuality>(q))}});
  }
  health = reg.GetGauge("dot_shard_health", l);
  model_version = reg.GetGauge("dot_shard_model_version", l);
}

OracleShard::OracleShard(ShardConfig config)
    : config_(std::move(config)),
      fp_dispatch_(fail::Get("serve.shard_dispatch")),
      fp_dispatch_shard_(
          fail::Get("serve.shard_dispatch." + config_.shard_id)),
      metrics_(config_.shard_id),
      window_(obs::Histogram::LatencyBoundsUs(), config_.window_seconds,
              config_.window_bucket_seconds) {}

double OracleShard::NowMs() const {
  if (config_.now_ms) return config_.now_ms();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::shared_ptr<OracleShard::ModelRuntime> OracleShard::CurrentRuntime()
    const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return runtime_;
}

Result<std::shared_ptr<OracleShard::ModelRuntime>> OracleShard::BuildRuntime(
    const ModelFactory& factory, const ShardConfig& config, int64_t version) {
  Result<std::unique_ptr<DotOracle>> oracle = factory();
  if (!oracle.ok()) return oracle.status();
  if (*oracle == nullptr || !(*oracle)->trained()) {
    return Status::FailedPrecondition(
        "shard " + config.shard_id +
        ": model factory produced an untrained model");
  }
  auto rt = std::make_shared<ModelRuntime>();
  rt->oracle = std::shared_ptr<DotOracle>(std::move(*oracle));
  rt->service =
      std::make_unique<OracleService>(rt->oracle.get(), config.service);
  rt->version = version;
  return rt;
}

Result<std::unique_ptr<OracleShard>> OracleShard::Create(ModelFactory factory,
                                                         ShardConfig config) {
  if (config.shard_id.empty()) {
    return Status::InvalidArgument("shard: shard_id must be non-empty");
  }
  if (!factory) {
    return Status::InvalidArgument("shard: model factory must be set");
  }
  std::unique_ptr<OracleShard> shard(new OracleShard(std::move(config)));
  Result<std::shared_ptr<ModelRuntime>> rt =
      BuildRuntime(factory, shard->config_, 1);
  if (!rt.ok()) return rt.status();
  shard->factory_ = std::move(factory);
  shard->runtime_ = std::move(*rt);
  shard->metrics_.health->Set(0);
  shard->metrics_.model_version->Set(1);
  return shard;
}

void OracleShard::SetHealthLocked(ShardHealth h) {
  health_ = h;
  metrics_.health->Set(static_cast<double>(static_cast<int>(h)));
}

void OracleShard::OnDispatchFailure() {
  std::lock_guard<std::mutex> lock(state_mu_);
  ++consecutive_failures_;
  ++stats_.failures;
  metrics_.failures->Increment();
  if (health_ == ShardHealth::kQuarantined) {
    // Failed probe: the shard stays quarantined and the next probe waits
    // twice as long (capped) — a dead shard costs O(log) probes, not a
    // probe per wave.
    probe_backoff_ms_ =
        std::min(probe_backoff_ms_ * 2, config_.probe_backoff_max_ms);
    next_probe_ms_ = NowMs() + probe_backoff_ms_;
  } else if (consecutive_failures_ >= config_.quarantine_after_failures) {
    SetHealthLocked(ShardHealth::kQuarantined);
    ++stats_.quarantines;
    metrics_.quarantines->Increment();
    probe_backoff_ms_ = config_.probe_backoff_initial_ms;
    next_probe_ms_ = NowMs() + probe_backoff_ms_;
    DOT_LOG_WARN << "shard " << config_.shard_id << " quarantined after "
                 << consecutive_failures_ << " consecutive failures";
  }
}

void OracleShard::OnDispatchSuccess() {
  std::lock_guard<std::mutex> lock(state_mu_);
  consecutive_failures_ = 0;
  if (health_ == ShardHealth::kQuarantined) {
    // Successful probe: full recovery.
    SetHealthLocked(ShardHealth::kHealthy);
    probe_backoff_ms_ = 0;
    next_probe_ms_ = 0;
    DOT_LOG_INFO << "shard " << config_.shard_id
                 << " recovered (probe succeeded)";
    return;
  }
  // Windowed-p95 triage: pressure marks the shard degraded before it
  // fails; relief flips it back. Quarantine dominates (handled above).
  if (config_.degraded_p95_us > 0 &&
      window_.Count() >= config_.degraded_min_samples) {
    double p95 = window_.Quantile(0.95);
    if (health_ == ShardHealth::kHealthy && p95 > config_.degraded_p95_us) {
      SetHealthLocked(ShardHealth::kDegraded);
    } else if (health_ == ShardHealth::kDegraded &&
               p95 <= config_.degraded_p95_us) {
      SetHealthLocked(ShardHealth::kHealthy);
    }
  }
}

void OracleShard::RecordWaveMetrics(const std::vector<DotEstimate>& estimates,
                                    OracleService* service) {
  for (const auto& e : estimates) {
    int q = static_cast<int>(e.quality);
    if (q >= 0 && q < 4) metrics_.quality[q]->Increment();
  }
  int64_t hits = service->stats().cache_hits;
  std::lock_guard<std::mutex> lock(state_mu_);
  if (hits > last_cache_hits_) {
    metrics_.cache_hits->Increment(hits - last_cache_hits_);
  }
  last_cache_hits_ = hits;
}

Result<std::vector<DotEstimate>> OracleShard::ServeWave(
    const std::vector<OdtInput>& odts, const QueryOptions& opts) {
  if (odts.empty()) return std::vector<DotEstimate>{};
  std::lock_guard<std::mutex> serve_lock(serve_mu_);
  std::shared_ptr<ModelRuntime> rt = CurrentRuntime();
  metrics_.waves->Increment();
  metrics_.queries->Increment(static_cast<int64_t>(odts.size()));

  bool probe = false;
  bool ladder_only = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.waves;
    stats_.queries += static_cast<int64_t>(odts.size());
    if (health_ == ShardHealth::kQuarantined) {
      if (NowMs() >= next_probe_ms_) {
        probe = true;  // this wave doubles as the recovery probe
        ++stats_.probes;
      } else {
        ladder_only = true;
      }
    }
  }
  if (probe) metrics_.probes->Increment();

  if (ladder_only) {
    // Quarantined and no probe due: bounded failover through the ladder,
    // never touching the (suspect) stage-1 model.
    Result<std::vector<DotEstimate>> r = rt->service->QueryDegraded(odts);
    if (r.ok()) RecordWaveMetrics(*r, rt->service.get());
    return r;
  }

  // Chaos hook: fires before the model dispatch. The global point first;
  // an unarmed global falls through to the per-shard point so counts armed
  // on `serve.shard_dispatch.<id>` are consumed only by this shard. The
  // stopwatch starts before the hook so a kDelay sleep inside Fire() lands
  // in the wave time and exercises the p95 triage.
  Stopwatch sw;
  fail::Action injected = fp_dispatch_->Fire();
  if (injected == fail::Action::kOff) injected = fp_dispatch_shard_->Fire();
  if (injected == fail::Action::kError || injected == fail::Action::kNan ||
      injected == fail::Action::kTruncate) {
    // The model call "crashed" (error) or returned garbage (nan): count a
    // shard failure, then answer the wave through the ladder anyway — the
    // failure mode quarantines the shard, it never loses requests.
    OnDispatchFailure();
    Result<std::vector<DotEstimate>> r = rt->service->QueryDegraded(odts);
    if (r.ok()) RecordWaveMetrics(*r, rt->service.get());
    return r;
  }
  bool stage1_failed = false;
  QueryOptions wave_opts = opts;
  wave_opts.stage1_failed = &stage1_failed;
  Result<std::vector<DotEstimate>> r = rt->service->QueryBatch(odts, wave_opts);
  window_.Observe(sw.ElapsedSeconds() * 1e6);
  if (!r.ok()) return r;  // invalid input: the request's fault, not health
  if (opts.stage1_failed != nullptr) *opts.stage1_failed = stage1_failed;
  if (stage1_failed) {
    OnDispatchFailure();
  } else {
    OnDispatchSuccess();
    // Ring of the most recently served ODs: a swap's canary warm should
    // cover the *current* hot set, not whatever was hot at startup.
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const auto& odt : odts) {
      if (config_.canary_capacity <= 0) break;
      if (static_cast<int64_t>(canary_.size()) < config_.canary_capacity) {
        canary_.push_back(odt);
      } else {
        canary_[canary_next_ % canary_.size()] = odt;
      }
      ++canary_next_;
    }
  }
  RecordWaveMetrics(*r, rt->service.get());
  return r;
}

Status OracleShard::HotSwap() {
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  int64_t next_version = model_version() + 1;
  Result<std::shared_ptr<ModelRuntime>> shadow =
      BuildRuntime(factory_, config_, next_version);
  if (!shadow.ok()) return shadow.status();

  // Canary warmup: the shadow model must answer recently-served ODs at
  // full quality with finite estimates before it may take traffic. As a
  // side effect the canary buckets land in the shadow's (otherwise cold)
  // cache.
  std::vector<OdtInput> canary;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    canary = canary_;
  }
  if (!canary.empty()) {
    bool stage1_failed = false;
    QueryOptions copts;
    copts.stage1_failed = &stage1_failed;
    Result<std::vector<DotEstimate>> warm =
        (*shadow)->service->QueryBatch(canary, copts);
    if (!warm.ok()) {
      return Status::Internal("hot swap: canary batch failed: " +
                              warm.status().message());
    }
    if (stage1_failed) {
      return Status::Internal(
          "hot swap: canary stage-1 inference failed; keeping the current "
          "model");
    }
    for (const auto& e : *warm) {
      if (!std::isfinite(e.minutes)) {
        return Status::Internal(
            "hot swap: canary produced a non-finite estimate; keeping the "
            "current model");
      }
    }
  }

  // Publish: one pointer store under model_mu_. In-flight waves hold the
  // old runtime's shared_ptr and finish on the old model; the old runtime
  // is destroyed when the last wave releases it.
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    runtime_ = std::move(*shadow);
  }
  window_.Reset();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    consecutive_failures_ = 0;
    probe_backoff_ms_ = 0;
    next_probe_ms_ = 0;
    last_cache_hits_ = 0;  // the new service's hit counter starts at zero
    ++stats_.swaps;
    SetHealthLocked(ShardHealth::kHealthy);
  }
  metrics_.swaps->Increment();
  metrics_.model_version->Set(static_cast<double>(next_version));
  DOT_LOG_INFO << "shard " << config_.shard_id << " hot-swapped to model v"
               << next_version;
  return Status::OK();
}

ShardHealth OracleShard::health() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return health_;
}

int64_t OracleShard::model_version() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return runtime_->version;
}

ShardStatus OracleShard::status() const {
  ShardStatus s;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    s = stats_;
    s.health = health_;
    s.consecutive_failures = consecutive_failures_;
    if (health_ == ShardHealth::kQuarantined) {
      s.next_probe_in_ms = std::max(0.0, next_probe_ms_ - NowMs());
    }
  }
  s.id = config_.shard_id;
  std::shared_ptr<ModelRuntime> rt = CurrentRuntime();
  s.model_version = rt->version;
  s.cache_size = rt->service->cache_size();
  s.window_p95_us = window_.Quantile(0.95);
  return s;
}

std::string OracleShard::StatusJson() const {
  ShardStatus s = status();
  auto num = [](int64_t v) { return std::to_string(v); };
  std::string out = "{\"id\": \"" + obs::JsonEscape(s.id) + "\"";
  out += ", \"health\": \"" + std::string(ShardHealthName(s.health)) + "\"";
  out += ", \"model_version\": " + num(s.model_version);
  out += ", \"consecutive_failures\": " + num(s.consecutive_failures);
  out += ", \"waves\": " + num(s.waves);
  out += ", \"queries\": " + num(s.queries);
  out += ", \"failures\": " + num(s.failures);
  out += ", \"quarantines\": " + num(s.quarantines);
  out += ", \"probes\": " + num(s.probes);
  out += ", \"swaps\": " + num(s.swaps);
  out += ", \"cache_size\": " + num(s.cache_size);
  out += ", \"window_p95_us\": " + std::to_string(s.window_p95_us);
  out += ", \"next_probe_in_ms\": " + std::to_string(s.next_probe_in_ms);
  out += "}";
  return out;
}

}  // namespace dot
