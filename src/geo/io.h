// Trajectory dataset I/O: a line-oriented CSV format for importing real GPS
// data into the oracle, plus a compact binary cache.
//
// CSV format (one GPS sample per line, sorted within a trip):
//   trip_id,lng,lat,unix_time
// Lines starting with '#' and a single optional header line are skipped.

#ifndef DOT_GEO_IO_H_
#define DOT_GEO_IO_H_

#include <string>
#include <vector>

#include "geo/trajectory.h"
#include "util/result.h"

namespace dot {

/// Reads trajectories from a CSV of (trip_id, lng, lat, unix_time) rows.
/// Rows of one trip must be contiguous; points are sorted by time within a
/// trip. Returns InvalidArgument on malformed rows (with line number).
Result<std::vector<Trajectory>> LoadTrajectoriesCsv(const std::string& path);

/// Writes trajectories in the same CSV format (trip ids are 0..n-1).
Status SaveTrajectoriesCsv(const std::string& path,
                           const std::vector<Trajectory>& trajectories);

/// Binary round-trip (much faster; used to cache simulated datasets).
Status SaveTrajectoriesBinary(const std::string& path,
                              const std::vector<Trajectory>& trajectories);
Result<std::vector<Trajectory>> LoadTrajectoriesBinary(const std::string& path);

}  // namespace dot

#endif  // DOT_GEO_IO_H_
