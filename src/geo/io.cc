#include "geo/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/serialize.h"

namespace dot {

Result<std::vector<Trajectory>> LoadTrajectoriesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<Trajectory> out;
  std::string line;
  int64_t line_no = 0;
  std::string current_id;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string id, lng_s, lat_s, time_s;
    if (!std::getline(ss, id, ',') || !std::getline(ss, lng_s, ',') ||
        !std::getline(ss, lat_s, ',') || !std::getline(ss, time_s)) {
      return Status::InvalidArgument("malformed CSV row at line " +
                                     std::to_string(line_no));
    }
    char* end = nullptr;
    double lng = std::strtod(lng_s.c_str(), &end);
    if (end == lng_s.c_str()) {
      // Tolerate one header line.
      if (first_data_line) {
        first_data_line = false;
        continue;
      }
      return Status::InvalidArgument("bad longitude at line " +
                                     std::to_string(line_no));
    }
    double lat = std::strtod(lat_s.c_str(), &end);
    if (end == lat_s.c_str()) {
      return Status::InvalidArgument("bad latitude at line " +
                                     std::to_string(line_no));
    }
    long long time = std::strtoll(time_s.c_str(), &end, 10);
    if (end == time_s.c_str()) {
      return Status::InvalidArgument("bad timestamp at line " +
                                     std::to_string(line_no));
    }
    first_data_line = false;
    if (out.empty() || id != current_id) {
      out.emplace_back();
      current_id = id;
    }
    out.back().points.push_back({{lng, lat}, static_cast<int64_t>(time)});
  }
  for (auto& t : out) {
    std::stable_sort(t.points.begin(), t.points.end(),
                     [](const TrajectoryPoint& a, const TrajectoryPoint& b) {
                       return a.time < b.time;
                     });
  }
  return out;
}

Status SaveTrajectoriesCsv(const std::string& path,
                           const std::vector<Trajectory>& trajectories) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "trip_id,lng,lat,unix_time\n";
  for (size_t i = 0; i < trajectories.size(); ++i) {
    for (const auto& p : trajectories[i].points) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%zu,%.7f,%.7f,%lld\n", i, p.gps.lng,
                    p.gps.lat, static_cast<long long>(p.time));
      out << buf;
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status SaveTrajectoriesBinary(const std::string& path,
                              const std::vector<Trajectory>& trajectories) {
  BinaryWriter w(path);
  if (!w.Ok()) return Status::IOError("cannot open " + path);
  w.WriteString("DOTTRAJ1");
  w.WriteU64(trajectories.size());
  for (const auto& t : trajectories) {
    w.WriteU64(t.points.size());
    for (const auto& p : t.points) {
      w.WriteF64(p.gps.lng);
      w.WriteF64(p.gps.lat);
      w.WriteI64(p.time);
    }
  }
  return w.Close();
}

Result<std::vector<Trajectory>> LoadTrajectoriesBinary(const std::string& path) {
  BinaryReader r(path);
  if (!r.Ok()) return Status::IOError("cannot open " + path);
  if (r.ReadString() != "DOTTRAJ1") {
    return Status::InvalidArgument("bad trajectory file magic");
  }
  uint64_t n = r.ReadU64();
  std::vector<Trajectory> out(n);
  for (auto& t : out) {
    uint64_t m = r.ReadU64();
    if (!r.Ok()) return Status::IOError("truncated trajectory file");
    t.points.resize(m);
    for (auto& p : t.points) {
      p.gps.lng = r.ReadF64();
      p.gps.lat = r.ReadF64();
      p.time = r.ReadI64();
    }
  }
  if (!r.Ok()) return Status::IOError("truncated trajectory file");
  return out;
}

}  // namespace dot
