// Basic geographic types: GPS points, bounding boxes, distances and a local
// planar projection used by the road network and simulator.

#ifndef DOT_GEO_GEO_H_
#define DOT_GEO_GEO_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace dot {

/// \brief A WGS84 GPS coordinate (degrees).
struct GpsPoint {
  double lng = 0;
  double lat = 0;

  bool operator==(const GpsPoint& o) const = default;
};

/// Approximate great-circle distance in meters (equirectangular; accurate to
/// well under 0.1% at city scale, which is all this library needs).
double DistanceMeters(const GpsPoint& a, const GpsPoint& b);

/// \brief Axis-aligned lng/lat bounding box.
struct BoundingBox {
  double min_lng = 0, min_lat = 0, max_lng = 0, max_lat = 0;

  double width_deg() const { return max_lng - min_lng; }
  double height_deg() const { return max_lat - min_lat; }
  bool Contains(const GpsPoint& p) const {
    return p.lng >= min_lng && p.lng <= max_lng && p.lat >= min_lat &&
           p.lat <= max_lat;
  }
  /// Grows the box to cover `p`.
  void Extend(const GpsPoint& p);
  /// Expands all sides by `margin_frac` of the current extent.
  BoundingBox Inflated(double margin_frac) const;
  /// Approximate box extent in meters.
  double WidthMeters() const;
  double HeightMeters() const;

  /// Smallest box covering all points (dies on empty input).
  static BoundingBox Cover(const std::vector<GpsPoint>& points);
};

/// \brief Equirectangular projection anchored at a reference point: maps GPS
/// to planar meters and back. The simulator builds road networks in meters
/// and converts to GPS through this.
class Projection {
 public:
  explicit Projection(GpsPoint anchor);

  GpsPoint ToGps(double x_meters, double y_meters) const;
  void ToMeters(const GpsPoint& p, double* x, double* y) const;

  const GpsPoint& anchor() const { return anchor_; }

 private:
  GpsPoint anchor_;
  double meters_per_deg_lng_;
  double meters_per_deg_lat_;
};

}  // namespace dot

#endif  // DOT_GEO_GEO_H_
