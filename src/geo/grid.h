// The spatial grid over the area of interest (paper Definition 2): L_G x L_G
// equal splits of the longitude and latitude extents.

#ifndef DOT_GEO_GRID_H_
#define DOT_GEO_GRID_H_

#include <cstdint>

#include "geo/geo.h"
#include "util/result.h"

namespace dot {

/// \brief Row/column cell address, 0-based. Row 0 is the southern edge.
struct Cell {
  int64_t row = 0;
  int64_t col = 0;

  bool operator==(const Cell& o) const = default;
};

/// \brief Uniform L_G x L_G grid over a bounding box.
class Grid {
 public:
  /// Creates a grid; fails on empty boxes or non-positive sizes.
  static Result<Grid> Make(const BoundingBox& box, int64_t grid_size);

  int64_t grid_size() const { return size_; }
  int64_t num_cells() const { return size_ * size_; }
  const BoundingBox& box() const { return box_; }

  /// Cell containing `p`; points outside the box clamp to the border cells
  /// (a PiT must place every point somewhere).
  Cell Locate(const GpsPoint& p) const;

  /// Flat index in row-major order (matches the paper's PiT flattening,
  /// Eq. 17).
  int64_t CellIndex(const Cell& c) const { return c.row * size_ + c.col; }
  Cell CellAt(int64_t index) const { return {index / size_, index % size_}; }

  /// GPS coordinate of a cell's center.
  GpsPoint CellCenter(const Cell& c) const;

  /// Normalized cell-space coordinate of a point in [-1, 1] per axis (used
  /// to encode the ODT-Input condition).
  void Normalized(const GpsPoint& p, double* nx, double* ny) const;

 private:
  Grid(const BoundingBox& box, int64_t size) : box_(box), size_(size) {}

  BoundingBox box_;
  int64_t size_;
};

}  // namespace dot

#endif  // DOT_GEO_GRID_H_
