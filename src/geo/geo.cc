#include "geo/geo.h"

#include "util/logging.h"

namespace dot {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusMeters = 6371000.0;
constexpr double kMetersPerDegLat = kEarthRadiusMeters * kPi / 180.0;
}  // namespace

double DistanceMeters(const GpsPoint& a, const GpsPoint& b) {
  double mean_lat = 0.5 * (a.lat + b.lat) * kPi / 180.0;
  double dx = (a.lng - b.lng) * kMetersPerDegLat * std::cos(mean_lat);
  double dy = (a.lat - b.lat) * kMetersPerDegLat;
  return std::sqrt(dx * dx + dy * dy);
}

void BoundingBox::Extend(const GpsPoint& p) {
  min_lng = std::min(min_lng, p.lng);
  max_lng = std::max(max_lng, p.lng);
  min_lat = std::min(min_lat, p.lat);
  max_lat = std::max(max_lat, p.lat);
}

BoundingBox BoundingBox::Inflated(double margin_frac) const {
  BoundingBox b = *this;
  double mw = width_deg() * margin_frac;
  double mh = height_deg() * margin_frac;
  b.min_lng -= mw;
  b.max_lng += mw;
  b.min_lat -= mh;
  b.max_lat += mh;
  return b;
}

double BoundingBox::WidthMeters() const {
  return DistanceMeters({min_lng, (min_lat + max_lat) / 2},
                        {max_lng, (min_lat + max_lat) / 2});
}

double BoundingBox::HeightMeters() const {
  return DistanceMeters({min_lng, min_lat}, {min_lng, max_lat});
}

BoundingBox BoundingBox::Cover(const std::vector<GpsPoint>& points) {
  DOT_CHECK(!points.empty()) << "BoundingBox::Cover on empty point set";
  BoundingBox b{points[0].lng, points[0].lat, points[0].lng, points[0].lat};
  for (const auto& p : points) b.Extend(p);
  return b;
}

Projection::Projection(GpsPoint anchor) : anchor_(anchor) {
  meters_per_deg_lat_ = kMetersPerDegLat;
  meters_per_deg_lng_ = kMetersPerDegLat * std::cos(anchor.lat * kPi / 180.0);
}

GpsPoint Projection::ToGps(double x_meters, double y_meters) const {
  return {anchor_.lng + x_meters / meters_per_deg_lng_,
          anchor_.lat + y_meters / meters_per_deg_lat_};
}

void Projection::ToMeters(const GpsPoint& p, double* x, double* y) const {
  *x = (p.lng - anchor_.lng) * meters_per_deg_lng_;
  *y = (p.lat - anchor_.lat) * meters_per_deg_lat_;
}

}  // namespace dot
