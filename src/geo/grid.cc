#include "geo/grid.h"

#include <algorithm>

namespace dot {

Result<Grid> Grid::Make(const BoundingBox& box, int64_t grid_size) {
  if (grid_size <= 0) {
    return Status::InvalidArgument("grid size must be positive");
  }
  if (box.width_deg() <= 0 || box.height_deg() <= 0) {
    return Status::InvalidArgument("grid bounding box is degenerate");
  }
  return Grid(box, grid_size);
}

Cell Grid::Locate(const GpsPoint& p) const {
  double fx = (p.lng - box_.min_lng) / box_.width_deg();
  double fy = (p.lat - box_.min_lat) / box_.height_deg();
  auto clamp_idx = [this](double f) {
    int64_t i = static_cast<int64_t>(f * static_cast<double>(size_));
    return std::clamp<int64_t>(i, 0, size_ - 1);
  };
  return Cell{clamp_idx(fy), clamp_idx(fx)};
}

GpsPoint Grid::CellCenter(const Cell& c) const {
  double fx = (static_cast<double>(c.col) + 0.5) / static_cast<double>(size_);
  double fy = (static_cast<double>(c.row) + 0.5) / static_cast<double>(size_);
  return {box_.min_lng + fx * box_.width_deg(),
          box_.min_lat + fy * box_.height_deg()};
}

void Grid::Normalized(const GpsPoint& p, double* nx, double* ny) const {
  *nx = std::clamp(2.0 * (p.lng - box_.min_lng) / box_.width_deg() - 1.0, -1.0, 1.0);
  *ny = std::clamp(2.0 * (p.lat - box_.min_lat) / box_.height_deg() - 1.0, -1.0, 1.0);
}

}  // namespace dot
