// Trajectories (Definition 1) and ODT-Inputs (Definition 3), plus the
// preprocessing filters from Sec. 6.1 of the paper.

#ifndef DOT_GEO_TRAJECTORY_H_
#define DOT_GEO_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/geo.h"

namespace dot {

/// \brief A timestamped GPS sample.
struct TrajectoryPoint {
  GpsPoint gps;
  int64_t time = 0;  ///< Unix timestamp, seconds.
};

/// \brief A sequence of timestamped GPS points (paper Definition 1).
struct Trajectory {
  std::vector<TrajectoryPoint> points;

  int64_t size() const { return static_cast<int64_t>(points.size()); }
  bool empty() const { return points.empty(); }

  const TrajectoryPoint& front() const { return points.front(); }
  const TrajectoryPoint& back() const { return points.back(); }

  /// Travel time in seconds (arrival - departure).
  int64_t DurationSeconds() const;
  /// Sum of consecutive point distances, meters.
  double LengthMeters() const;
  /// Mean gap between consecutive samples, seconds.
  double MeanSampleIntervalSeconds() const;
  /// Largest gap between consecutive samples, seconds.
  int64_t MaxSampleIntervalSeconds() const;
};

/// \brief Query tuple for the ODT-Oracle (paper Definition 3): origin,
/// destination, and departure time.
struct OdtInput {
  GpsPoint origin;
  GpsPoint destination;
  int64_t departure_time = 0;  ///< Unix timestamp, seconds.
};

/// Extracts the ODT-Input of a historical trajectory (its endpoints and
/// departure time).
OdtInput OdtFromTrajectory(const Trajectory& t);

/// Seconds-of-day in [0, 86400).
int64_t SecondsOfDay(int64_t unix_time);

/// Normalized time-of-day in [-1, 1] (paper Definition 2, ToD channel).
double NormalizedTimeOfDay(int64_t unix_time);

/// \brief Preprocessing thresholds from Sec. 6.1.
struct TrajectoryFilter {
  double min_length_meters = 500.0;
  int64_t min_duration_seconds = 5 * 60;
  int64_t max_duration_seconds = 60 * 60;
  int64_t max_sample_interval_seconds = 80;

  /// True if the trajectory survives all filters.
  bool Keep(const Trajectory& t) const;
};

/// Removes trajectories rejected by `filter`; returns number removed.
int64_t FilterTrajectories(std::vector<Trajectory>* trajectories,
                           const TrajectoryFilter& filter);

/// \brief Summary statistics for a trajectory dataset (paper Table 1).
struct DatasetStats {
  int64_t num_trajectories = 0;
  double mean_travel_time_minutes = 0;
  double mean_travel_distance_meters = 0;
  double mean_sample_interval_seconds = 0;
  double area_width_km = 0;
  double area_height_km = 0;
};

/// Computes Table-1 statistics over a dataset.
DatasetStats ComputeStats(const std::vector<Trajectory>& trajectories);

}  // namespace dot

#endif  // DOT_GEO_TRAJECTORY_H_
