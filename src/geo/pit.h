// Pixelated Trajectories (paper Definition 2): an L_G x L_G x 3 image with
// Mask, Time-of-Day and Time-offset channels; unvisited cells hold -1 in all
// channels.

#ifndef DOT_GEO_PIT_H_
#define DOT_GEO_PIT_H_

#include <vector>

#include "geo/grid.h"
#include "geo/trajectory.h"
#include "tensor/tensor.h"
#include "util/result.h"

namespace dot {

/// Channel indices within a PiT.
enum PitChannel : int64_t {
  kPitMask = 0,
  kPitTimeOfDay = 1,
  kPitTimeOffset = 2,
};
inline constexpr int64_t kPitChannels = 3;

/// \brief A PiT stored as a CHW float tensor [3, L_G, L_G], values in [-1, 1].
class Pit {
 public:
  /// All-unvisited PiT (every channel -1).
  explicit Pit(int64_t grid_size);
  /// Wraps an existing CHW tensor (must be [3, L, L]).
  static Result<Pit> FromTensor(const Tensor& chw);

  /// Builds the PiT of a trajectory on `grid` per Definition 2: for each
  /// cell, the earliest GPS point falling in it defines the channels.
  /// If `interpolate` is set, cells crossed between consecutive samples are
  /// filled by linear interpolation (useful for sparse trajectories).
  static Pit Build(const Trajectory& t, const Grid& grid,
                   bool interpolate = false);

  int64_t grid_size() const { return size_; }

  float At(int64_t channel, int64_t row, int64_t col) const;
  void Set(int64_t channel, int64_t row, int64_t col, float v);

  /// True if the mask channel marks (row, col) visited (>= 0, Eq. 19).
  bool Visited(int64_t row, int64_t col) const {
    return At(kPitMask, row, col) >= 0.0f;
  }

  /// Number of visited cells.
  int64_t NumVisited() const;

  /// Flat row-major indices of visited cells (Eq. 17 ordering).
  std::vector<int64_t> VisitedIndices() const;

  /// Underlying CHW tensor (shared storage).
  const Tensor& tensor() const { return data_; }
  Tensor& tensor() { return data_; }

  /// Clamps all channels to [-1, 1] and snaps the mask channel to {-1, +1}
  /// (used to round diffusion outputs into valid PiTs). `mask_threshold`
  /// decides visited-ness: cells with mask >= threshold become +1. The
  /// natural midpoint is 0; a slightly negative threshold trades mask
  /// precision for recall on soft diffusion outputs.
  void Canonicalize(float mask_threshold = 0.0f);

  /// ASCII rendering of the mask channel ('#' visited, '.' empty) with row 0
  /// printed at the bottom (south). For case-study output.
  std::string RenderMask() const;

 private:
  explicit Pit(Tensor data);

  Tensor data_;  // [3, size_, size_]
  int64_t size_;
};

/// \brief Per-channel and overall reconstruction error between two PiTs
/// (paper Table 8).
struct PitError {
  double overall_rmse = 0, overall_mae = 0;
  double channel_rmse[kPitChannels] = {0, 0, 0};
  double channel_mae[kPitChannels] = {0, 0, 0};
};

/// Computes RMSE/MAE between inferred and ground-truth PiTs.
PitError ComparePits(const Pit& inferred, const Pit& truth);

/// Accumulates PitError over many pairs (mean of per-pair errors).
PitError MeanPitError(const std::vector<PitError>& errors);

/// \brief Route-overlap metrics on the mask channel (paper Table 9).
struct RouteAccuracy {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

/// Precision/recall/F1 of `inferred`'s visited set against `truth`'s.
RouteAccuracy CompareRoutes(const Pit& inferred, const Pit& truth);

/// Mean route accuracy over many pairs.
RouteAccuracy MeanRouteAccuracy(const std::vector<RouteAccuracy>& accs);

/// Orders a PiT's visited cells by the Time-offset channel, recovering the
/// travel sequence (used to feed inferred PiTs to the sequential path-based
/// estimators in the Infer.+Path-based ablation, Table 7).
std::vector<int64_t> PitToCellSequence(const Pit& pit);

/// Encodes an ODT-Input as the 5-feature condition vector fed to FC_OD
/// (paper Eq. 13): normalized origin (x, y), destination (x, y), and
/// time-of-day, all in [-1, 1].
std::vector<float> EncodeOdt(const OdtInput& odt, const Grid& grid);

/// Engineered query features shared by the regression baselines and the
/// estimator's wide component: normalized endpoints, straight-line distance
/// (km), and cyclic time-of-day encoding (7 values).
std::vector<double> OdtFeatures(const OdtInput& odt, const Grid& grid);

}  // namespace dot

#endif  // DOT_GEO_PIT_H_
