#include "geo/trajectory.h"

#include <algorithm>

#include "util/logging.h"

namespace dot {

int64_t Trajectory::DurationSeconds() const {
  if (points.size() < 2) return 0;
  return points.back().time - points.front().time;
}

double Trajectory::LengthMeters() const {
  double total = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    total += DistanceMeters(points[i - 1].gps, points[i].gps);
  }
  return total;
}

double Trajectory::MeanSampleIntervalSeconds() const {
  if (points.size() < 2) return 0;
  return static_cast<double>(DurationSeconds()) /
         static_cast<double>(points.size() - 1);
}

int64_t Trajectory::MaxSampleIntervalSeconds() const {
  int64_t mx = 0;
  for (size_t i = 1; i < points.size(); ++i) {
    mx = std::max(mx, points[i].time - points[i - 1].time);
  }
  return mx;
}

OdtInput OdtFromTrajectory(const Trajectory& t) {
  DOT_CHECK(!t.empty()) << "ODT of empty trajectory";
  return OdtInput{t.front().gps, t.back().gps, t.front().time};
}

int64_t SecondsOfDay(int64_t unix_time) {
  int64_t s = unix_time % 86400;
  if (s < 0) s += 86400;
  return s;
}

double NormalizedTimeOfDay(int64_t unix_time) {
  return 2.0 * static_cast<double>(SecondsOfDay(unix_time)) / 86400.0 - 1.0;
}

bool TrajectoryFilter::Keep(const Trajectory& t) const {
  if (t.size() < 2) return false;
  if (t.LengthMeters() < min_length_meters) return false;
  int64_t dur = t.DurationSeconds();
  if (dur < min_duration_seconds || dur > max_duration_seconds) return false;
  if (t.MaxSampleIntervalSeconds() > max_sample_interval_seconds) return false;
  return true;
}

int64_t FilterTrajectories(std::vector<Trajectory>* trajectories,
                           const TrajectoryFilter& filter) {
  int64_t before = static_cast<int64_t>(trajectories->size());
  trajectories->erase(
      std::remove_if(trajectories->begin(), trajectories->end(),
                     [&](const Trajectory& t) { return !filter.Keep(t); }),
      trajectories->end());
  return before - static_cast<int64_t>(trajectories->size());
}

DatasetStats ComputeStats(const std::vector<Trajectory>& trajectories) {
  DatasetStats s;
  s.num_trajectories = static_cast<int64_t>(trajectories.size());
  if (trajectories.empty()) return s;
  double time_sum = 0, dist_sum = 0, interval_sum = 0;
  std::vector<GpsPoint> all;
  for (const auto& t : trajectories) {
    time_sum += static_cast<double>(t.DurationSeconds()) / 60.0;
    dist_sum += t.LengthMeters();
    interval_sum += t.MeanSampleIntervalSeconds();
    for (const auto& p : t.points) all.push_back(p.gps);
  }
  double n = static_cast<double>(trajectories.size());
  s.mean_travel_time_minutes = time_sum / n;
  s.mean_travel_distance_meters = dist_sum / n;
  s.mean_sample_interval_seconds = interval_sum / n;
  BoundingBox box = BoundingBox::Cover(all);
  s.area_width_km = box.WidthMeters() / 1000.0;
  s.area_height_km = box.HeightMeters() / 1000.0;
  return s;
}

}  // namespace dot
