#include "geo/pit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace dot {

Pit::Pit(int64_t grid_size)
    : data_(Tensor::Full({kPitChannels, grid_size, grid_size}, -1.0f)),
      size_(grid_size) {}

Pit::Pit(Tensor data) : data_(std::move(data)), size_(data_.size(1)) {}

Result<Pit> Pit::FromTensor(const Tensor& chw) {
  if (chw.dim() != 3 || chw.size(0) != kPitChannels || chw.size(1) != chw.size(2)) {
    return Status::InvalidArgument("PiT tensor must be [3, L, L], got " +
                                   chw.ShapeString());
  }
  return Pit(chw);
}

float Pit::At(int64_t channel, int64_t row, int64_t col) const {
  return data_.at((channel * size_ + row) * size_ + col);
}

void Pit::Set(int64_t channel, int64_t row, int64_t col, float v) {
  data_.at((channel * size_ + row) * size_ + col) = v;
}

int64_t Pit::NumVisited() const {
  int64_t n = 0;
  for (int64_t i = 0; i < size_ * size_; ++i) {
    if (data_.at(kPitMask * size_ * size_ + i) >= 0.0f) ++n;
  }
  return n;
}

std::vector<int64_t> Pit::VisitedIndices() const {
  std::vector<int64_t> out;
  for (int64_t i = 0; i < size_ * size_; ++i) {
    if (data_.at(kPitMask * size_ * size_ + i) >= 0.0f) out.push_back(i);
  }
  return out;
}

namespace {

/// Writes one cell's channels if it has not been visited yet (Definition 2
/// keeps the earliest point per cell).
void MarkCell(Pit* pit, const Cell& c, int64_t time, int64_t t0, int64_t t_end) {
  if (pit->Visited(c.row, c.col)) return;
  pit->Set(kPitMask, c.row, c.col, 1.0f);
  pit->Set(kPitTimeOfDay, c.row, c.col,
           static_cast<float>(NormalizedTimeOfDay(time)));
  double denom = static_cast<double>(std::max<int64_t>(1, t_end - t0));
  double offset = 2.0 * static_cast<double>(time - t0) / denom - 1.0;
  pit->Set(kPitTimeOffset, c.row, c.col, static_cast<float>(offset));
}

}  // namespace

Pit Pit::Build(const Trajectory& t, const Grid& grid, bool interpolate) {
  Pit pit(grid.grid_size());
  if (t.empty()) return pit;
  int64_t t0 = t.front().time;
  int64_t t_end = t.back().time;
  for (size_t i = 0; i < t.points.size(); ++i) {
    const auto& p = t.points[i];
    MarkCell(&pit, grid.Locate(p.gps), p.time, t0, t_end);
    if (interpolate && i + 1 < t.points.size()) {
      const auto& q = t.points[i + 1];
      // Subdivide the segment finely enough to touch every crossed cell.
      double dist = DistanceMeters(p.gps, q.gps);
      double cell_m = grid.box().WidthMeters() / static_cast<double>(grid.grid_size());
      int64_t steps = static_cast<int64_t>(dist / std::max(1.0, cell_m * 0.5));
      for (int64_t s = 1; s < steps; ++s) {
        double f = static_cast<double>(s) / static_cast<double>(steps);
        GpsPoint mid{p.gps.lng + f * (q.gps.lng - p.gps.lng),
                     p.gps.lat + f * (q.gps.lat - p.gps.lat)};
        int64_t mid_t = p.time + static_cast<int64_t>(f * static_cast<double>(
                                                              q.time - p.time));
        MarkCell(&pit, grid.Locate(mid), mid_t, t0, t_end);
      }
    }
  }
  return pit;
}

void Pit::Canonicalize(float mask_threshold) {
  int64_t hw = size_ * size_;
  for (int64_t i = 0; i < hw; ++i) {
    float& m = data_.at(kPitMask * hw + i);
    m = m >= mask_threshold ? 1.0f : -1.0f;
  }
  for (int64_t c = 1; c < kPitChannels; ++c) {
    for (int64_t i = 0; i < hw; ++i) {
      float& v = data_.at(c * hw + i);
      if (data_.at(kPitMask * hw + i) < 0.0f) {
        v = -1.0f;
      } else {
        v = std::clamp(v, -1.0f, 1.0f);
      }
    }
  }
}

std::string Pit::RenderMask() const {
  std::ostringstream os;
  for (int64_t row = size_ - 1; row >= 0; --row) {
    for (int64_t col = 0; col < size_; ++col) {
      os << (Visited(row, col) ? '#' : '.');
    }
    os << "\n";
  }
  return os.str();
}

PitError ComparePits(const Pit& inferred, const Pit& truth) {
  DOT_CHECK(inferred.grid_size() == truth.grid_size()) << "PiT size mismatch";
  PitError e;
  int64_t hw = inferred.grid_size() * inferred.grid_size();
  double total_sq = 0, total_abs = 0;
  for (int64_t c = 0; c < kPitChannels; ++c) {
    double sq = 0, ab = 0;
    for (int64_t i = 0; i < hw; ++i) {
      int64_t row = i / inferred.grid_size();
      int64_t col = i % inferred.grid_size();
      double d = static_cast<double>(inferred.At(c, row, col)) -
                 static_cast<double>(truth.At(c, row, col));
      sq += d * d;
      ab += std::fabs(d);
    }
    e.channel_rmse[c] = std::sqrt(sq / static_cast<double>(hw));
    e.channel_mae[c] = ab / static_cast<double>(hw);
    total_sq += sq;
    total_abs += ab;
  }
  e.overall_rmse = std::sqrt(total_sq / static_cast<double>(hw * kPitChannels));
  e.overall_mae = total_abs / static_cast<double>(hw * kPitChannels);
  return e;
}

PitError MeanPitError(const std::vector<PitError>& errors) {
  PitError m;
  if (errors.empty()) return m;
  double n = static_cast<double>(errors.size());
  for (const auto& e : errors) {
    m.overall_rmse += e.overall_rmse / n;
    m.overall_mae += e.overall_mae / n;
    for (int64_t c = 0; c < kPitChannels; ++c) {
      m.channel_rmse[c] += e.channel_rmse[c] / n;
      m.channel_mae[c] += e.channel_mae[c] / n;
    }
  }
  return m;
}

RouteAccuracy CompareRoutes(const Pit& inferred, const Pit& truth) {
  DOT_CHECK(inferred.grid_size() == truth.grid_size()) << "PiT size mismatch";
  int64_t tp = 0, fp = 0, fn = 0;
  int64_t l = inferred.grid_size();
  for (int64_t r = 0; r < l; ++r) {
    for (int64_t c = 0; c < l; ++c) {
      bool pred = inferred.Visited(r, c);
      bool real = truth.Visited(r, c);
      if (pred && real) ++tp;
      if (pred && !real) ++fp;
      if (!pred && real) ++fn;
    }
  }
  RouteAccuracy a;
  a.precision = tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0;
  a.recall = tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0;
  a.f1 = (a.precision + a.recall) > 0
             ? 2 * a.precision * a.recall / (a.precision + a.recall)
             : 0;
  return a;
}

RouteAccuracy MeanRouteAccuracy(const std::vector<RouteAccuracy>& accs) {
  RouteAccuracy m;
  if (accs.empty()) return m;
  double n = static_cast<double>(accs.size());
  for (const auto& a : accs) {
    m.precision += a.precision / n;
    m.recall += a.recall / n;
    m.f1 += a.f1 / n;
  }
  return m;
}

std::vector<int64_t> PitToCellSequence(const Pit& pit) {
  std::vector<std::pair<float, int64_t>> cells;  // (offset, flat index)
  int64_t l = pit.grid_size();
  for (int64_t r = 0; r < l; ++r) {
    for (int64_t c = 0; c < l; ++c) {
      if (pit.Visited(r, c)) {
        cells.emplace_back(pit.At(kPitTimeOffset, r, c), r * l + c);
      }
    }
  }
  std::sort(cells.begin(), cells.end());
  std::vector<int64_t> out;
  out.reserve(cells.size());
  for (auto& [offset, idx] : cells) {
    (void)offset;
    out.push_back(idx);
  }
  return out;
}

std::vector<double> OdtFeatures(const OdtInput& odt, const Grid& grid) {
  double ox, oy, dx, dy;
  grid.Normalized(odt.origin, &ox, &oy);
  grid.Normalized(odt.destination, &dx, &dy);
  double dist_km = DistanceMeters(odt.origin, odt.destination) / 1000.0;
  double tod = 2.0 * 3.14159265358979 *
               static_cast<double>(SecondsOfDay(odt.departure_time)) / 86400.0;
  return {ox, oy, dx, dy, dist_km, std::sin(tod), std::cos(tod)};
}

std::vector<float> EncodeOdt(const OdtInput& odt, const Grid& grid) {
  double ox, oy, dx, dy;
  grid.Normalized(odt.origin, &ox, &oy);
  grid.Normalized(odt.destination, &dx, &dy);
  return {static_cast<float>(ox), static_cast<float>(oy), static_cast<float>(dx),
          static_cast<float>(dy),
          static_cast<float>(NormalizedTimeOfDay(odt.departure_time))};
}

}  // namespace dot
