// Wire protocol of the DOT serving front-end (DESIGN.md §5g).
//
// Frames are length-prefixed: a 4-byte little-endian payload length
// followed by the payload. The first payload byte is the message type,
// the rest fixed-width little-endian fields (floats as IEEE-754 bit
// patterns), so the encoding is unambiguous across hosts and trivially
// fuzzable. Four message types:
//
//   kQueryRequest   id, OdtInput fields, client deadline_ms
//   kQueryResponse  id, Status code, ServedQuality, minutes, error message
//   kPing / kPong   id (liveness probe; the server echoes the id)
//
// Protocol V2 (request tracing) extends both query messages with distinct
// type bytes so old peers keep working unchanged:
//
//   kQueryRequestV2   V1 fields + 64-bit trace_id + a flags byte
//                     (kQueryFlagSampled, kQueryFlagWantBreakdown)
//   kQueryResponseV2  V1 fields + the per-request timing breakdown
//
// The encoder picks the oldest type that carries the message (a request
// with trace_id == 0 and flags == 0 encodes as V1; a response without a
// breakdown encodes as V1), so a V2-aware client talking to an old server
// degrades to exactly the V1 byte stream when it doesn't use the new
// fields, and an old client never sees a V2 response it didn't ask for.
//
// Decoding is strict — unknown type, wrong payload size, or an error
// message overrunning the payload are InvalidArgument, never UB — and
// FrameReader enforces a maximum frame size so a hostile length prefix
// cannot balloon memory. Torn writes (a peer dying mid-frame) leave an
// incomplete buffer that simply never yields a frame.

#ifndef DOT_SERVE_PROTOCOL_H_
#define DOT_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/result.h"

namespace dot {
namespace serve {

/// Hard cap on a frame payload; a length prefix above this is a protocol
/// error (the connection is dropped, no allocation happens).
constexpr uint32_t kMaxFramePayload = 4096;
/// Error messages are truncated to this many bytes on the wire.
constexpr size_t kMaxErrorMessage = 512;

enum class MsgType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kPing = 3,
  kPong = 4,
  kQueryRequestV2 = 5,
  kQueryResponseV2 = 6,
};

/// Request flag bits (QueryRequest::flags, V2 only on the wire).
/// The request's spans are recorded into the active trace recording.
constexpr uint8_t kQueryFlagSampled = 0x1;
/// Echo the per-request timing breakdown in the response.
constexpr uint8_t kQueryFlagWantBreakdown = 0x2;

/// \brief Server-side latency segments of one request, echoed in a V2
/// response when the request set kQueryFlagWantBreakdown.
struct TimingBreakdown {
  double queue_us = 0;       ///< batcher queue wait before wave formation
  double batch_wait_us = 0;  ///< wave wall time outside stage 1/2
  double stage1_us = 0;      ///< diffusion miss-serve (0 on a cache hit)
  double stage2_us = 0;      ///< batched travel-time estimator
  double serialize_us = 0;   ///< response encode + outbox queueing
};

/// \brief A travel-time query (OdtInput fields + serving options).
struct QueryRequest {
  uint64_t id = 0;  ///< client-chosen correlation id, echoed in the response
  double origin_lng = 0, origin_lat = 0;
  double dest_lng = 0, dest_lat = 0;
  int64_t departure_time = 0;  ///< Unix seconds
  /// Client latency budget from the moment the server dequeues the frame
  /// (0 = none). Propagated into QueryOptions as the wave's earliest
  /// deadline, so the degradation ladder honors it.
  double deadline_ms = 0;
  /// Client-generated trace context (V2): a nonzero trace_id or any flag
  /// bit makes the encoder emit kQueryRequestV2.
  uint64_t trace_id = 0;
  uint8_t flags = 0;  ///< kQueryFlagSampled | kQueryFlagWantBreakdown
};

/// \brief The oracle's answer (or a typed error).
struct QueryResponse {
  uint64_t id = 0;
  uint8_t code = 0;     ///< StatusCode as integer; 0 = OK
  uint8_t quality = 0;  ///< ServedQuality as integer (valid when code == 0)
  double minutes = 0;
  std::string message;  ///< error detail (empty when code == 0)
  /// V2: set when the request asked for (and the server produced) a timing
  /// breakdown; makes the encoder emit kQueryResponseV2.
  bool has_breakdown = false;
  TimingBreakdown breakdown;
};

struct Ping {
  uint64_t id = 0;
};
struct Pong {
  uint64_t id = 0;
};

using Message = std::variant<QueryRequest, QueryResponse, Ping, Pong>;

/// Serializes a message payload (no frame header).
std::vector<uint8_t> EncodePayload(const Message& msg);
/// Parses one complete payload. Strict: any size/type mismatch is
/// InvalidArgument.
Result<Message> DecodePayload(const std::vector<uint8_t>& payload);

/// Serializes a full frame: 4-byte LE payload length + payload.
std::vector<uint8_t> EncodeFrame(const Message& msg);

/// \brief Incremental frame parser over a byte stream.
///
/// Feed() appends raw bytes (in any fragmentation — single bytes, half
/// frames, many frames at once); Next() pops complete payloads in order.
/// A length prefix above `max_payload` poisons the reader (sticky error):
/// the connection should be closed.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends stream bytes. Returns the sticky error state.
  Status Feed(const uint8_t* data, size_t n);
  /// Pops the next complete payload into `*payload`. False when no
  /// complete frame is buffered (or the reader is poisoned).
  bool Next(std::vector<uint8_t>* payload);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }
  const Status& status() const { return status_; }

 private:
  uint32_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status status_;
};

/// Writes one full frame to `fd`, handling short writes. Honors the
/// `serve.write_frame` failpoint: kTruncate sends only half the frame and
/// reports success (torn-write simulation; the peer must cope), kError
/// fails without writing.
Status WriteFrame(int fd, const Message& msg);

}  // namespace serve
}  // namespace dot

#endif  // DOT_SERVE_PROTOCOL_H_
