// The tiny demo world the standalone server and the serving bench share:
// one fast-to-train oracle over an 8x8-node Chengdu-like city. Both sides
// construct it from these functions so the load generator's demand is
// guaranteed to fall inside the city the server answers for.

#ifndef DOT_SERVE_DEMO_H_
#define DOT_SERVE_DEMO_H_

#include <memory>
#include <string>

#include "core/dot_oracle.h"
#include "eval/dataset.h"
#include "sim/city.h"
#include "sim/trips.h"

namespace dot {
namespace serve {

/// City / trip / model parameters of the demo world (small enough to train
/// in seconds, big enough that waves of distinct ODs form).
CityConfig DemoCityConfig();
TripConfig DemoTripConfig();
DotConfig DemoDotConfig();

constexpr uint64_t kDemoCitySeed = 4;
constexpr uint64_t kDemoDataSeed = 17;

/// \brief The assembled demo world: city, dataset, grid, trained oracle.
struct DemoWorld {
  std::unique_ptr<City> city;
  std::unique_ptr<BenchmarkDataset> dataset;  // references `city`
  std::unique_ptr<Grid> grid;
  std::unique_ptr<DotOracle> oracle;
};

/// Builds the demo city and trains the demo oracle. When `checkpoint` is
/// non-empty the trained weights are loaded from that file if it exists and
/// saved there after training otherwise, so repeated server starts skip the
/// training pass.
Result<DemoWorld> BuildDemoWorld(const std::string& checkpoint = "");

}  // namespace serve
}  // namespace dot

#endif  // DOT_SERVE_DEMO_H_
