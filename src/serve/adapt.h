// Online continual adaptation (DESIGN.md §5k): when an incident schedule
// disrupts the city, the serving model — trained on clear-day trajectories
// — goes stale inside the incident window. The AdaptationManager closes
// the loop: it simulates fresh trajectories from the disrupted city,
// fine-tunes a copy of the sealed model on a fresh+replay mix at low LR,
// measures held-out incident-window MAE before and after, re-seals the
// checkpoint only on improvement, and publishes through the shard fleet's
// zero-downtime hot swap (ShardRouter::SwapAll).
//
// Exposed on the admin plane as /adaptz: GET returns the round history as
// JSON, POST runs one adaptation round synchronously.
//
// Env knobs (AdaptConfig::FromEnv):
//   DOT_ADAPT_STAGE1_EPOCHS    fine-tune epochs for the diffusion stage
//   DOT_ADAPT_STAGE2_EPOCHS    fine-tune epochs for the estimator stage
//   DOT_ADAPT_LR_SCALE         LR multiplier vs the base training LR
//   DOT_ADAPT_REPLAY_FRACTION  replayed clear-day samples per fresh sample
//   DOT_ADAPT_MAX_SAMPLES      cap on the mixed fine-tune set
//   DOT_ADAPT_FRESH_TRIPS      incident-window trajectories simulated/round
//   DOT_ADAPT_HOLDOUT_TRIPS    held-out incident trips for the MAE gate

#ifndef DOT_SERVE_ADAPT_H_
#define DOT_SERVE_ADAPT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/dot_oracle.h"
#include "serve/demo.h"
#include "sim/incidents.h"

namespace dot {
namespace serve {

struct AdaptConfig {
  FineTuneConfig finetune;
  /// Incident-window trajectories simulated per round (fine-tune pool).
  int64_t fresh_trips = 200;
  /// Additional held-out incident trips scoring the before/after MAE.
  int64_t holdout_trips = 60;
  /// Base seed of the per-round trip simulation (round index is mixed in
  /// so successive rounds see fresh trajectories).
  uint64_t seed = 99;

  static AdaptConfig FromEnv();
};

/// \brief Outcome of one adaptation round (one JSON object in /adaptz).
struct AdaptRound {
  int64_t round = 0;
  int64_t fresh_samples = 0;   ///< fine-tune pool size after filtering
  int64_t holdout_samples = 0;
  double mae_before = 0;       ///< stale model, incident-window holdout
  double mae_after = 0;        ///< fine-tuned model, same holdout
  bool improved = false;
  bool published = false;      ///< resealed + hot-swapped into the fleet
  std::string error;           ///< non-empty when the round failed

  std::string ToJson() const;
};

/// \brief Drives continual fine-tune rounds against a demo-world serving
/// process. Thread-safe; RunRound serializes behind a mutex (one shadow
/// fine-tune at a time bounds memory, mirroring SwapAll's serial swaps).
class AdaptationManager {
 public:
  /// `city` is mutated: the incident schedule installs into it so the
  /// round's trip simulation sees the disruption. `replay` is the clear-day
  /// training pool sampled into every fine-tune mix; `checkpoint` is the
  /// sealed model file shared with the shard factories.
  AdaptationManager(City* city, const Grid* grid,
                    std::vector<TripSample> replay, std::string checkpoint,
                    AdaptConfig config);

  /// Installs the disruption the next rounds adapt to. `window_start` /
  /// `window_end` bound the half-open departure window fresh trips are
  /// drawn from (normally the schedule's own envelope).
  void SetIncidents(std::shared_ptr<const IncidentSchedule> schedule,
                    int64_t window_start, int64_t window_end);

  /// One continual-learning round. `publish` pushes the re-sealed
  /// checkpoint into serving (ShardRouter::SwapAll in production; may be
  /// null for offline use). Returns the round record; a Status error means
  /// the round could not run at all (no incidents installed, load failure).
  Result<AdaptRound> RunRound(const std::function<Status()>& publish);

  /// JSON document for GET /adaptz.
  std::string StatusJson() const;

  int64_t rounds() const;

 private:
  City* city_;
  const Grid* grid_;
  std::vector<TripSample> replay_;
  std::string checkpoint_;
  AdaptConfig config_;

  mutable std::mutex mu_;
  std::shared_ptr<const IncidentSchedule> schedule_;
  int64_t window_start_ = 0;
  int64_t window_end_ = 0;
  std::vector<AdaptRound> history_;
};

}  // namespace serve
}  // namespace dot

#endif  // DOT_SERVE_ADAPT_H_
