// Shard router (DESIGN.md §5i): sits between the DynamicBatcher and the
// worker shards. Each wave the batcher forms is split by OD-pair hash on a
// consistent-hash ring, the per-shard sub-waves are served concurrently
// (one std::thread per extra shard; the largest sub-wave runs inline on
// the caller), and the answers are merged back in input order — the
// batcher cannot tell it is talking to N shards instead of one service.
//
// The partition key hashes the *quantized OD pair* (origin + destination
// at ~100 m resolution) and deliberately excludes the departure time: all
// time-of-day buckets of one OD pair land on the same shard, so that
// shard's LRU cache and neighbor-bucket ladder see every query that could
// share a PiT. The consistent-hash ring (virtual nodes) keeps the
// assignment stable under shard count changes — adding or removing one of
// N shards moves ~1/N of the keys, so warm caches survive a resize.

#ifndef DOT_SERVE_ROUTER_H_
#define DOT_SERVE_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/shard.h"
#include "serve/batcher.h"

namespace dot {
namespace serve {

/// Shard partition key of a query: a mix of the origin and destination
/// quantized to ~100 m. Departure time is excluded so every time-of-day
/// slot of one OD pair shares a shard (cache affinity).
uint64_t OdKey(const OdtInput& odt);

/// \brief Consistent-hash ring with virtual nodes.
///
/// Each shard id is hashed to `vnodes_per_shard` points on a uint64 ring;
/// a key belongs to the shard owning the first point at or clockwise of
/// the key. Lookup is O(log vnodes); add/remove of one shard out of N
/// moves ~1/N of the key space.
class HashRing {
 public:
  explicit HashRing(int64_t vnodes_per_shard = 256);

  void AddShard(const std::string& id);
  void RemoveShard(const std::string& id);
  /// Owning shard of `key`. Must not be called on an empty ring.
  const std::string& ShardFor(uint64_t key) const;

  size_t num_shards() const { return num_shards_; }
  bool empty() const { return ring_.empty(); }

 private:
  int64_t vnodes_;
  size_t num_shards_ = 0;
  std::map<uint64_t, std::string> ring_;  // point -> shard id
};

/// \brief Routes batcher waves across a fleet of owned worker shards.
class ShardRouter {
 public:
  /// Takes ownership of the shards. At least one is required; ids must be
  /// unique (they are the ring keys).
  explicit ShardRouter(std::vector<std::unique_ptr<OracleShard>> shards,
                       int64_t vnodes_per_shard = 256);

  /// Splits the wave by shard, serves the sub-waves concurrently, merges
  /// the answers in input order. Per-request semantics match
  /// OracleService::QueryBatch: exactly one answer per input, stage
  /// timings merged by max across sub-waves, stage1_failed OR-ed.
  Result<std::vector<DotEstimate>> Route(const std::vector<OdtInput>& odts,
                                         const QueryOptions& opts);

  /// Hot-swaps every shard (serially — one shadow model trains/loads at a
  /// time, bounding the swap's memory overhead). Continues past per-shard
  /// failures and returns the first error, if any.
  Status SwapAll();
  /// Hot-swaps one shard by id (NotFound if the id is unknown).
  Status SwapShard(const std::string& id);

  std::vector<ShardStatus> Statuses() const;
  /// JSON document for /shardz: {"shards": [...]}.
  std::string ShardzJson() const;

  size_t shard_count() const { return shards_.size(); }
  OracleShard* shard(size_t i) { return shards_[i].get(); }
  /// Shard that would serve `odt` (testing / diagnostics).
  OracleShard* ShardForQuery(const OdtInput& odt);

 private:
  std::vector<std::unique_ptr<OracleShard>> shards_;
  std::unordered_map<std::string, size_t> index_by_id_;
  HashRing ring_;
};

/// Adapts a ShardRouter into the batcher's BatchBackend (the sharded
/// production wiring, replacing OracleBackend's single service).
BatchBackend RouterBackend(ShardRouter* router);

}  // namespace serve
}  // namespace dot

#endif  // DOT_SERVE_ROUTER_H_
