#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dot {
namespace serve {

namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DynamicBatcher::Metrics::Metrics() {
  auto& reg = obs::MetricsRegistry::Get();
  wave_size = reg.GetHistogram("dot_server_wave_size",
                               obs::Histogram::LinearBounds(1, 1, 64));
  queue_wait_us = reg.GetHistogram("dot_server_queue_wait_us");
  queue_depth = reg.GetHistogram("dot_server_queue_depth",
                                 obs::Histogram::ExponentialBounds(1, 2, 12));
  flush_size =
      reg.GetCounter("dot_server_wave_flush_total", {{"trigger", "size"}});
  flush_age =
      reg.GetCounter("dot_server_wave_flush_total", {{"trigger", "age"}});
  flush_drain =
      reg.GetCounter("dot_server_wave_flush_total", {{"trigger", "drain"}});
  rejected_full = reg.GetCounter("dot_server_overload_rejected_total",
                                 {{"reason", "queue_full"}});
  rejected_stale = reg.GetCounter("dot_server_overload_rejected_total",
                                  {{"reason", "queue_stale"}});
}

DynamicBatcher::DynamicBatcher(BatchBackend backend, BatcherConfig config)
    : backend_(std::move(backend)), config_(std::move(config)) {
  DOT_CHECK(backend_ != nullptr) << "batcher needs a backend";
  DOT_CHECK(config_.max_batch >= 1) << "max_batch must be positive";
  if (!config_.now_ms) {
    config_.now_ms = SteadyNowMs;
  } else {
    DOT_CHECK(config_.manual_pump)
        << "a custom clock requires manual_pump (the batcher thread sleeps "
           "in real time)";
  }
  if (!config_.manual_pump) {
    thread_ = std::thread([this] { ThreadLoop(); });
  }
}

DynamicBatcher::~DynamicBatcher() { Shutdown(); }

Status DynamicBatcher::Submit(const OdtInput& odt, double deadline_ms,
                              ResponseCallback done) {
  return Submit(odt, deadline_ms, RequestContext{},
                [done = std::move(done)](const Result<DotEstimate>& r,
                                         const RequestTiming&) { done(r); });
}

Status DynamicBatcher::Submit(const OdtInput& odt, double deadline_ms,
                              RequestContext ctx, TimedResponseCallback done) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    return Status::FailedPrecondition("batcher: shutting down");
  }
  if (static_cast<int64_t>(queue_.size()) >= config_.queue_capacity) {
    ++stats_.rejected_full;
    metrics_.rejected_full->Increment();
    return Status::ResourceExhausted("server overloaded: queue full");
  }
  double now = Now();
  if (!queue_.empty() &&
      now - queue_.front().enqueue_ms > config_.queue_budget_ms) {
    // The head has already waited past the latency budget: the backend is
    // behind, and anything admitted now would only be served stale. Shed.
    ++stats_.rejected_stale;
    metrics_.rejected_stale->Increment();
    return Status::ResourceExhausted("server overloaded: queue stale");
  }
  Pending p{odt, deadline_ms, now, ctx, 0, std::move(done)};
  // Only a traced request (root_span set at decode, implying tracing was
  // on) pays the trace-clock read; the plain hot path stays clock-free.
  if (ctx.root_span != 0) p.enqueue_trace_us = obs::TraceNowUs();
  queue_.push_back(std::move(p));
  ++stats_.submitted;
  metrics_.queue_depth->Observe(static_cast<double>(queue_.size()));
  cv_.notify_all();
  return Status::OK();
}

int64_t DynamicBatcher::FlushWaveLocked(std::unique_lock<std::mutex>* lock,
                                        FlushReason reason) {
  size_t n = std::min<size_t>(queue_.size(),
                              static_cast<size_t>(config_.max_batch));
  if (n == 0) return 0;
  double now = Now();
  std::vector<OdtInput> odts;
  std::vector<TimedResponseCallback> callbacks;
  std::vector<double> queue_us;
  std::vector<RequestContext> ctxs;
  std::vector<int64_t> enqueue_trace_us;
  odts.reserve(n);
  callbacks.reserve(n);
  queue_us.reserve(n);
  ctxs.reserve(n);
  enqueue_trace_us.reserve(n);
  // The wave honors the earliest remaining deadline of its members: the
  // most urgent request dictates how much the whole wave may degrade.
  double earliest = 0;
  for (size_t i = 0; i < n; ++i) {
    Pending& p = queue_.front();
    double waited_ms = now - p.enqueue_ms;
    metrics_.queue_wait_us->Observe(waited_ms * 1e3);
    if (p.deadline_ms > 0) {
      // An already-expired deadline still maps to a tiny positive budget so
      // the ladder sees maximal pressure (0 would mean "no deadline").
      double remaining = std::max(0.1, p.deadline_ms - waited_ms);
      earliest = earliest == 0 ? remaining : std::min(earliest, remaining);
    }
    odts.push_back(p.odt);
    callbacks.push_back(std::move(p.done));
    queue_us.push_back(waited_ms * 1e3);
    ctxs.push_back(p.ctx);
    enqueue_trace_us.push_back(p.enqueue_trace_us);
    queue_.pop_front();
  }
  ++stats_.waves;
  switch (reason) {
    case FlushReason::kSize:
      ++stats_.size_flushes;
      metrics_.flush_size->Increment();
      break;
    case FlushReason::kAge:
      ++stats_.age_flushes;
      metrics_.flush_age->Increment();
      break;
    case FlushReason::kDrain:
      ++stats_.drain_flushes;
      metrics_.flush_drain->Increment();
      break;
  }
  metrics_.wave_size->Observe(static_cast<double>(n));
  lock->unlock();

  // Trace stitching: every traced member gets its queue wait recorded as a
  // span under its own root, and the wave's backend spans are parented to
  // the first traced member's root (one wave = one subtree; concurrent
  // traced members share it). One relaxed load when tracing is off.
  uint64_t owner_root = 0;
  if (obs::TracingEnabled()) {
    int64_t now_trace_us = obs::TraceNowUs();
    for (size_t i = 0; i < n; ++i) {
      if (ctxs[i].root_span == 0) continue;
      if (owner_root == 0) owner_root = ctxs[i].root_span;
      obs::RecordSpan("queue_wait", obs::NewSpanId(), ctxs[i].root_span,
                      enqueue_trace_us[i],
                      now_trace_us - enqueue_trace_us[i]);
    }
  }

  QueryOptions opts;
  opts.deadline_ms = earliest;
  StageTiming stage_timing;
  opts.timing = &stage_timing;
  Stopwatch wave_sw;
  Result<std::vector<DotEstimate>> result = std::vector<DotEstimate>{};
  {
    // The wave span covers the whole backend call; InheritedParent makes
    // it (and everything the backend opens, across the thread pool) a
    // descendant of the owning request's root.
    std::optional<obs::InheritedParent> inherit;
    std::optional<obs::TraceSpan> wave_span;
    if (owner_root != 0) {
      inherit.emplace(owner_root);
      wave_span.emplace("wave", "\"size\": " + std::to_string(n));
    }
    result = backend_(odts, opts);
  }
  double wave_us = wave_sw.ElapsedSeconds() * 1e6;
  if (result.ok() && result->size() != odts.size()) {
    result = Status::Internal("backend returned " +
                              std::to_string(result->size()) +
                              " answers for a wave of " +
                              std::to_string(odts.size()));
  }
  RequestTiming timing;
  timing.stage1_us = stage_timing.stage1_us;
  timing.stage2_us = stage_timing.stage2_us;
  timing.batch_wait_us =
      std::max(0.0, wave_us - stage_timing.stage1_us - stage_timing.stage2_us);
  for (size_t i = 0; i < callbacks.size(); ++i) {
    timing.queue_us = queue_us[i];
    if (result.ok()) {
      callbacks[i](Result<DotEstimate>((*result)[i]), timing);
    } else {
      callbacks[i](Result<DotEstimate>(result.status()), timing);
    }
  }

  lock->lock();
  stats_.completed += static_cast<int64_t>(n);
  cv_.notify_all();
  return static_cast<int64_t>(n);
}

void DynamicBatcher::ThreadLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) break;
      continue;
    }
    // Wait for a trigger: the size trigger (new submissions notify) or the
    // age trigger (timed wait until the oldest request's flush due time).
    while (!stopping_ &&
           static_cast<int64_t>(queue_.size()) < config_.max_batch) {
      double due_in_ms =
          queue_.front().enqueue_ms + config_.max_wave_age_ms - Now();
      if (due_in_ms <= 0) break;
      cv_.wait_for(lock,
                   std::chrono::duration<double, std::milli>(due_in_ms));
    }
    if (queue_.empty()) continue;
    FlushReason reason =
        static_cast<int64_t>(queue_.size()) >= config_.max_batch
            ? FlushReason::kSize
            : (stopping_ ? FlushReason::kDrain : FlushReason::kAge);
    FlushWaveLocked(&lock, reason);
  }
}

void DynamicBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_.notify_all();
  }
  {
    // Serialize the join: Shutdown may race the destructor.
    std::lock_guard<std::mutex> jlock(join_mu_);
    if (thread_.joinable()) {
      thread_.join();  // the loop drains the queue before exiting
    }
  }
  if (!config_.manual_pump) return;
  // Manual mode: drain inline.
  std::unique_lock<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    FlushWaveLocked(&lock, FlushReason::kDrain);
  }
}

int64_t DynamicBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

BatcherStats DynamicBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t DynamicBatcher::PumpOnce(bool force) {
  DOT_CHECK(config_.manual_pump) << "PumpOnce requires manual_pump";
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty()) return 0;
  bool size_trigger =
      static_cast<int64_t>(queue_.size()) >= config_.max_batch;
  bool age_trigger =
      Now() - queue_.front().enqueue_ms >= config_.max_wave_age_ms;
  if (!size_trigger && !age_trigger && !force) return 0;
  FlushReason reason = size_trigger ? FlushReason::kSize
                       : age_trigger ? FlushReason::kAge
                                     : FlushReason::kDrain;
  return FlushWaveLocked(&lock, reason);
}

BatchBackend OracleBackend(OracleService* service) {
  return [service](const std::vector<OdtInput>& odts,
                   const QueryOptions& opts) {
    return service->QueryBatch(odts, opts);
  };
}

}  // namespace serve
}  // namespace dot
