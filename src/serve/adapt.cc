#include "serve/adapt.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "eval/metrics.h"
#include "geo/trajectory.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dot {
namespace serve {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return (end && *end == '\0') ? parsed : fallback;
}

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

AdaptConfig AdaptConfig::FromEnv() {
  AdaptConfig c;
  c.finetune.stage1_epochs =
      EnvLong("DOT_ADAPT_STAGE1_EPOCHS", c.finetune.stage1_epochs);
  c.finetune.stage2_epochs =
      EnvLong("DOT_ADAPT_STAGE2_EPOCHS", c.finetune.stage2_epochs);
  c.finetune.lr_scale = EnvDouble("DOT_ADAPT_LR_SCALE", c.finetune.lr_scale);
  c.finetune.replay_fraction =
      EnvDouble("DOT_ADAPT_REPLAY_FRACTION", c.finetune.replay_fraction);
  c.finetune.max_samples =
      EnvLong("DOT_ADAPT_MAX_SAMPLES", c.finetune.max_samples);
  c.fresh_trips = EnvLong("DOT_ADAPT_FRESH_TRIPS", c.fresh_trips);
  c.holdout_trips = EnvLong("DOT_ADAPT_HOLDOUT_TRIPS", c.holdout_trips);
  return c;
}

std::string AdaptRound::ToJson() const {
  std::string json = "{";
  json += "\"round\": " + std::to_string(round);
  json += ", \"fresh_samples\": " + std::to_string(fresh_samples);
  json += ", \"holdout_samples\": " + std::to_string(holdout_samples);
  json += ", \"mae_before\": " + Num(mae_before);
  json += ", \"mae_after\": " + Num(mae_after);
  json += std::string(", \"improved\": ") + (improved ? "true" : "false");
  json += std::string(", \"published\": ") + (published ? "true" : "false");
  json += ", \"error\": \"" + JsonEscape(error) + "\"";
  json += "}";
  return json;
}

AdaptationManager::AdaptationManager(City* city, const Grid* grid,
                                     std::vector<TripSample> replay,
                                     std::string checkpoint,
                                     AdaptConfig config)
    : city_(city),
      grid_(grid),
      replay_(std::move(replay)),
      checkpoint_(std::move(checkpoint)),
      config_(config) {}

void AdaptationManager::SetIncidents(
    std::shared_ptr<const IncidentSchedule> schedule, int64_t window_start,
    int64_t window_end) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_ = std::move(schedule);
  window_start_ = window_start;
  window_end_ = window_end;
  city_->SetIncidents(schedule_);
}

Result<AdaptRound> AdaptationManager::RunRound(
    const std::function<Status()>& publish) {
  std::lock_guard<std::mutex> lock(mu_);
  if (schedule_ == nullptr || schedule_->empty()) {
    return Status::FailedPrecondition(
        "no incident schedule installed; call SetIncidents first");
  }
  AdaptRound round;
  round.round = static_cast<int64_t>(history_.size()) + 1;
  obs::TraceSpan span("AdaptationManager::RunRound");

  // 1) Simulate fresh trajectories from the disrupted city, confined to
  // the incident window. Trip generation covers the window's days; kept
  // samples must depart inside [window_start, window_end). The filter's
  // duration ceiling is doubled: a closure legitimately produces trips a
  // clear-day filter would reject as too slow.
  TripConfig tc = DemoTripConfig();
  int64_t day0 = window_start_ - SecondsOfDay(window_start_);
  tc.start_unix = day0;
  tc.num_days =
      std::max<int64_t>(1, (window_end_ - day0 + 86399) / 86400);
  TrajectoryFilter filter;
  filter.max_duration_seconds = 120 * 60;
  std::vector<TripSample> window_samples;
  int64_t want = config_.fresh_trips + config_.holdout_trips;
  for (int chunk = 0;
       chunk < 5 && static_cast<int64_t>(window_samples.size()) < want;
       ++chunk) {
    tc.num_trips = want;
    TripGenerator gen(city_, config_.seed +
                                 static_cast<uint64_t>(round.round) * 131 +
                                 static_cast<uint64_t>(chunk) * 7919);
    std::vector<TripSample> samples = ToSamples(gen.Generate(tc), filter);
    for (auto& s : samples) {
      if (s.odt.departure_time < window_start_ ||
          s.odt.departure_time >= window_end_) {
        continue;
      }
      window_samples.push_back(std::move(s));
      if (static_cast<int64_t>(window_samples.size()) >= want) break;
    }
  }
  if (static_cast<int64_t>(window_samples.size()) <
      std::max<int64_t>(8, config_.holdout_trips)) {
    return Status::Internal("incident window produced too few trips (" +
                            std::to_string(window_samples.size()) +
                            "); widen the window");
  }
  int64_t n_holdout = std::min<int64_t>(
      config_.holdout_trips, static_cast<int64_t>(window_samples.size()) / 2);
  std::vector<TripSample> holdout(window_samples.begin(),
                                  window_samples.begin() + n_holdout);
  std::vector<TripSample> fresh(window_samples.begin() + n_holdout,
                                window_samples.end());
  round.fresh_samples = static_cast<int64_t>(fresh.size());
  round.holdout_samples = static_cast<int64_t>(holdout.size());

  // 2) Load the sealed (stale) model into a shadow oracle.
  DotOracle shadow(DemoDotConfig(), *grid_);
  DOT_RETURN_NOT_OK(shadow.LoadFile(checkpoint_));

  std::vector<OdtInput> holdout_odts;
  std::vector<double> holdout_truth;
  for (const auto& s : holdout) {
    holdout_odts.push_back(s.odt);
    holdout_truth.push_back(s.travel_time_minutes);
  }
  auto holdout_mae = [&]() -> Result<double> {
    DOT_ASSIGN_OR_RETURN(std::vector<DotEstimate> est,
                         shadow.EstimateBatch(holdout_odts));
    MetricsAccumulator acc;
    for (size_t i = 0; i < est.size(); ++i) {
      acc.Add(est[i].minutes, holdout_truth[i]);
    }
    return acc.Finalize().mae;
  };

  // 3) Staleness gap before, fine-tune, gap after.
  DOT_ASSIGN_OR_RETURN(round.mae_before, holdout_mae());
  Status tuned = shadow.FineTune(fresh, replay_, config_.finetune);
  if (!tuned.ok()) {
    round.error = tuned.ToString();
    history_.push_back(round);
    return round;
  }
  DOT_ASSIGN_OR_RETURN(round.mae_after, holdout_mae());
  round.improved = round.mae_after < round.mae_before;

  // 4) Publish only improvements: re-seal the checkpoint (atomic
  // tmp+rename inside SaveFile) and hot-swap the fleet onto it. A
  // regressed fine-tune leaves the sealed model untouched.
  if (round.improved) {
    Status sealed = shadow.SaveFile(checkpoint_);
    if (!sealed.ok()) {
      round.error = sealed.ToString();
      history_.push_back(round);
      return round;
    }
    if (publish) {
      Status swapped = publish();
      if (swapped.ok()) {
        round.published = true;
      } else {
        round.error = swapped.ToString();
      }
    }
  }
  DOT_LOG_INFO << "adaptation round " << round.round << ": holdout MAE "
               << round.mae_before << " -> " << round.mae_after
               << (round.published ? " (published)" : " (not published)");
  history_.push_back(round);
  return round;
}

std::string AdaptationManager::StatusJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string json = "{";
  json += "\"rounds\": " + std::to_string(history_.size());
  json += ", \"window_start\": " + std::to_string(window_start_);
  json += ", \"window_end\": " + std::to_string(window_end_);
  json += ", \"incidents\": " +
          std::to_string(schedule_ ? schedule_->incidents().size() : 0);
  json += ", \"history\": [";
  for (size_t i = 0; i < history_.size(); ++i) {
    if (i > 0) json += ", ";
    json += history_[i].ToJson();
  }
  json += "]}";
  return json;
}

int64_t AdaptationManager::rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(history_.size());
}

}  // namespace serve
}  // namespace dot
