// Blocking TCP client for the DOT serving protocol — the counterpart the
// load harness, the e2e smoke, and the stress tests talk through.
//
// The client supports pipelining: many Send()s may be in flight before the
// matching Receive()s. Responses carry the request id, and the server may
// reorder (inline overload rejections overtake batched answers), so
// ReceiveFor(id) parks out-of-order responses in a small stash until the
// caller asks for them.

#ifndef DOT_SERVE_CLIENT_H_
#define DOT_SERVE_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/dot_oracle.h"
#include "serve/protocol.h"

namespace dot {
namespace serve {

/// \brief Blocking protocol client over one TCP connection.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects (TCP_NODELAY, blocking socket). IOError on refusal.
  Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Writes one frame. The socket is blocking, so this returns once the
  /// kernel accepted the bytes.
  Status Send(const Message& msg);

  /// Sends a query request built from an OdtInput. A nonzero `flags`
  /// (kQueryFlagSampled / kQueryFlagWantBreakdown) upgrades the wire
  /// message to V2; when flags are set and trace_id is 0 a fresh id from
  /// NewTraceId() is stamped automatically.
  Status SendQuery(uint64_t id, const OdtInput& odt, double deadline_ms = 0,
                   uint64_t trace_id = 0, uint8_t flags = 0);

  /// A process-unique nonzero 64-bit trace id (thread-local PRNG).
  static uint64_t NewTraceId();

  /// Blocks (up to timeout_ms; <=0 = forever) for the next inbound message,
  /// in arrival order. DeadlineExceeded on timeout, IOError when the server
  /// closed the connection.
  Result<Message> Receive(double timeout_ms = -1);

  /// Blocks for the QueryResponse matching `id`; other query responses
  /// arriving first are stashed and returned by their own ReceiveFor call.
  Result<QueryResponse> ReceiveFor(uint64_t id, double timeout_ms = -1);

  /// Round-trips one query (Send + ReceiveFor).
  Result<QueryResponse> Call(uint64_t id, const OdtInput& odt,
                             double deadline_ms = 0, double timeout_ms = -1,
                             uint64_t trace_id = 0, uint8_t flags = 0);

  /// Liveness probe: sends a ping and waits for the echoing pong.
  Status PingServer(uint64_t id, double timeout_ms = -1);

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::map<uint64_t, QueryResponse> stash_;  // out-of-order query responses
};

}  // namespace serve
}  // namespace dot

#endif  // DOT_SERVE_CLIENT_H_
