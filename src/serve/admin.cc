#include "serve/admin.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dot {
namespace serve {
namespace {

// A request line longer than this is hostile; the connection is dropped.
constexpr size_t kMaxRequestBytes = 4096;
// Per-connection socket read timeout: a peer that connects and stalls
// cannot wedge the (single) admin thread for longer than this.
constexpr int kConnTimeoutMs = 2000;

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string TextResponse(int code, const char* reason,
                         const std::string& body) {
  return HttpResponse(code, reason, "text/plain; charset=utf-8", body);
}

std::string JsonResponse(const std::string& body) {
  return HttpResponse(200, "OK", "application/json", body);
}

}  // namespace

AdminConfig AdminConfig::FromEnv() {
  AdminConfig config;
  const char* v = std::getenv("DOT_SERVE_ADMIN_PORT");
  if (v && *v) {
    char* end = nullptr;
    long parsed = std::strtol(v, &end, 10);
    if (end && *end == '\0') config.port = static_cast<int>(parsed);
  }
  return config;
}

AdminServer::AdminServer(AdminConfig config, AdminHooks hooks)
    : config_(std::move(config)), hooks_(std::move(hooks)) {}

AdminServer::~AdminServer() { Shutdown(); }

Status AdminServer::Start() {
  DOT_CHECK(!started_) << "Start() called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad admin host: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s =
        Status::IOError(std::string("admin bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status s =
        Status::IOError(std::string("admin listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_pipe_) < 0) {
    Status s = Status::IOError(std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void AdminServer::Shutdown() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  started_ = false;
}

void AdminServer::Loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, 500);
    if (rc <= 0) continue;
    if (fds[1].revents != 0) continue;  // woken for shutdown; loop re-checks
    if (fds[0].revents == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    timeval tv{};
    tv.tv_sec = kConnTimeoutMs / 1000;
    tv.tv_usec = (kConnTimeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    HandleConn(fd);
    ::close(fd);
  }
}

void AdminServer::HandleConn(int fd) {
  // Read until the end of the headers (we ignore everything after the
  // request line) or the cap / timeout hits.
  std::string req;
  char buf[1024];
  while (req.find("\r\n") == std::string::npos &&
         req.size() < kMaxRequestBytes) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // timeout, error, or EOF before a full request line
    }
    req.append(buf, static_cast<size_t>(n));
  }
  size_t eol = req.find("\r\n");
  if (eol == std::string::npos) return;
  std::string line = req.substr(0, eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    std::string bad = TextResponse(400, "Bad Request", "bad request line\n");
    [[maybe_unused]] ssize_t n = ::send(fd, bad.data(), bad.size(), MSG_NOSIGNAL);
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string resp = Respond(method, target);
  size_t off = 0;
  while (off < resp.size()) {
    ssize_t n =
        ::send(fd, resp.data() + off, resp.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

std::string AdminServer::Respond(const std::string& method,
                                 const std::string& target) {
  if (method != "GET" && method != "POST") {
    return TextResponse(405, "Method Not Allowed",
                        "only GET and POST are supported\n");
  }
  std::string path = target;
  std::string query;
  size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    path = target.substr(0, qpos);
    query = target.substr(qpos + 1);
  }
  // /swapz is the one mutating endpoint, hence the one POST target —
  // scrapers and curious GETs must not trigger a model swap.
  if (path == "/swapz") {
    if (!hooks_.swap) {
      return TextResponse(404, "Not Found", "no shards to swap\n");
    }
    if (method != "POST") {
      return TextResponse(405, "Method Not Allowed", "swap requires POST\n");
    }
    Status s = hooks_.swap();
    if (!s.ok()) {
      return TextResponse(500, "Internal Server Error", s.ToString() + "\n");
    }
    return TextResponse(200, "OK", "swap ok\n");
  }
  // /adaptz: GET = round history, POST = run one continual fine-tune
  // round (fine-tune on the incident window, re-seal, hot-swap).
  if (path == "/adaptz") {
    if (method == "POST") {
      if (!hooks_.adapt_run) {
        return TextResponse(404, "Not Found", "no adaptation loop\n");
      }
      Result<std::string> round = hooks_.adapt_run();
      if (!round.ok()) {
        return TextResponse(500, "Internal Server Error",
                            round.status().ToString() + "\n");
      }
      return JsonResponse(*round);
    }
    if (!hooks_.adapt_json) {
      return TextResponse(404, "Not Found", "no adaptation loop\n");
    }
    return JsonResponse(hooks_.adapt_json());
  }
  if (method != "GET") {
    return TextResponse(405, "Method Not Allowed", "only GET is supported\n");
  }
  if (path == "/shardz") {
    if (!hooks_.shardz_json) {
      return TextResponse(404, "Not Found", "no shards\n");
    }
    return JsonResponse(hooks_.shardz_json());
  }
  if (path == "/healthz") {
    return TextResponse(200, "OK", "ok\n");
  }
  if (path == "/readyz") {
    return ready() ? TextResponse(200, "OK", "ready\n")
                   : TextResponse(503, "Service Unavailable", "draining\n");
  }
  if (path == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4",
                        obs::MetricsToPrometheusText());
  }
  if (path == "/varz") {
    std::string server_section =
        hooks_.server_json ? hooks_.server_json() : "null";
    return JsonResponse("{\"metrics\": " + obs::MetricsToJson() +
                        ", \"server\": " + server_section + "}");
  }
  if (path == "/slowz") {
    if (hooks_.slow_ring == nullptr) {
      return JsonResponse("{\"capacity\": 0, \"total\": 0, \"records\": []}");
    }
    return JsonResponse(hooks_.slow_ring->ToJson());
  }
  if (path == "/tracez") {
    double sec = 1.0;
    if (!query.empty()) {
      if (query.rfind("sec=", 0) != 0) {
        return TextResponse(400, "Bad Request", "usage: /tracez?sec=N\n");
      }
      char* end = nullptr;
      sec = std::strtod(query.c_str() + 4, &end);
      if (!end || *end != '\0' || !(sec >= 0)) {
        return TextResponse(400, "Bad Request", "bad sec value\n");
      }
    }
    if (sec > config_.max_trace_sec) sec = config_.max_trace_sec;
    if (obs::TracingEnabled()) {
      // A DOT_TRACE recording (or a concurrent /tracez) owns the buffer;
      // stealing it would truncate that capture.
      return TextResponse(409, "Conflict",
                          "a trace recording is already active\n");
    }
    obs::StartTracing();  // in-memory only
    double waited = 0;
    while (waited < sec && !stopping_.load(std::memory_order_relaxed)) {
      double chunk = std::min(0.1, sec - waited);
      std::this_thread::sleep_for(std::chrono::duration<double>(chunk));
      waited += chunk;
    }
    std::vector<obs::TraceEvent> events = obs::StopTracing();
    return JsonResponse(obs::ToChromeJson(events));
  }
  return TextResponse(404, "Not Found", "no such endpoint\n");
}

}  // namespace serve
}  // namespace dot
