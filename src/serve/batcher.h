// Deadline-aware dynamic batcher (DESIGN.md §5g): coalesces concurrent
// single queries into OracleService::QueryBatch waves.
//
// Requests enter a bounded FIFO queue; a wave is flushed when the queue
// reaches `max_batch` (size trigger) or the oldest queued request has
// waited `max_wave_age_ms` (age trigger — bounds the latency a lone query
// pays for the chance of sharing a diffusion pass). The wave's
// QueryOptions carry the *earliest* remaining deadline of its members, so
// the degradation ladder serves the whole wave at the quality the most
// urgent request can afford.
//
// Admission control is the backpressure mechanism: a Submit against a full
// queue, or while the queue's head has already waited past
// `queue_budget_ms` (the backend is not keeping up; anything added now
// would be served stale), is rejected immediately with a typed
// ResourceExhausted — overload answers in microseconds instead of queueing
// without bound.
//
// Shutdown() drains gracefully: no new admissions, every queued request is
// flushed in waves and answered before the call returns.
//
// The clock is injectable (BatcherConfig::now_ms) and `manual_pump` mode
// runs no background thread — tests drive wave formation deterministically
// with PumpOnce() under a fake clock.

#ifndef DOT_SERVE_BATCHER_H_
#define DOT_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/oracle_service.h"
#include "obs/metrics.h"

namespace dot {
namespace serve {

/// The batched backend a wave is handed to — normally
/// OracleService::QueryBatch, a stub in tests.
using BatchBackend = std::function<Result<std::vector<DotEstimate>>(
    const std::vector<OdtInput>&, const QueryOptions&)>;

/// Per-request completion callback. Invoked exactly once for every
/// *admitted* request (rejected Submits never get a callback — the Submit
/// status itself is the answer), on the batcher thread (or inside
/// PumpOnce/Shutdown).
using ResponseCallback = std::function<void(const Result<DotEstimate>&)>;

/// \brief Wire trace context a request carries through the batcher.
struct RequestContext {
  uint64_t trace_id = 0;  ///< client-generated wire id (0 = none)
  /// Span id of the request's root span in the active obs recording
  /// (0 = untraced). When set, the batcher records a queue_wait span under
  /// it and parents the wave's backend spans to the first traced member.
  uint64_t root_span = 0;
  bool want_timing = false;  ///< client asked for the response breakdown
};

/// \brief Server-side latency segments measured by the batcher per wave
/// member (serialize_us is added later by the server's response path).
struct RequestTiming {
  double queue_us = 0;       ///< this member's wait before wave formation
  double batch_wait_us = 0;  ///< wave wall time outside stage 1/2
  double stage1_us = 0;      ///< wave's miss-serve time (shared)
  double stage2_us = 0;      ///< wave's estimator time (shared)
};

/// Timing-aware completion callback (same contract as ResponseCallback).
using TimedResponseCallback =
    std::function<void(const Result<DotEstimate>&, const RequestTiming&)>;

struct BatcherConfig {
  /// Size trigger: a wave never exceeds this many queries.
  int64_t max_batch = 16;
  /// Age trigger: flush once the oldest queued request has waited this long.
  double max_wave_age_ms = 5.0;
  /// Admission control: hard queue bound...
  int64_t queue_capacity = 1024;
  /// ...and the staleness budget — reject new arrivals while the queue's
  /// head has already waited longer than this.
  double queue_budget_ms = 100.0;
  /// Injectable monotonic clock in milliseconds; defaults to steady_clock.
  /// Custom clocks require manual_pump (the background thread sleeps in
  /// real time).
  std::function<double()> now_ms;
  /// No background thread; tests call PumpOnce() to form waves.
  bool manual_pump = false;
};

/// \brief Running batcher counters (all guarded by the queue mutex).
struct BatcherStats {
  int64_t submitted = 0;        ///< admitted requests
  int64_t completed = 0;        ///< callbacks delivered
  int64_t rejected_full = 0;    ///< typed overload: queue at capacity
  int64_t rejected_stale = 0;   ///< typed overload: head waited past budget
  int64_t waves = 0;            ///< backend invocations
  int64_t size_flushes = 0;     ///< waves triggered by max_batch
  int64_t age_flushes = 0;      ///< waves triggered by max_wave_age_ms
  int64_t drain_flushes = 0;    ///< waves flushed by Shutdown()
};

/// \brief Coalesces Submit()ed queries into batched backend calls.
class DynamicBatcher {
 public:
  DynamicBatcher(BatchBackend backend, BatcherConfig config = {});
  ~DynamicBatcher();  // implies Shutdown()

  /// Admits a query (callback fires later, with its estimate or the
  /// backend's error) or rejects it: ResourceExhausted under overload,
  /// FailedPrecondition after Shutdown. `deadline_ms` is the client budget
  /// from now (0 = none).
  Status Submit(const OdtInput& odt, double deadline_ms, ResponseCallback done);

  /// As above, carrying a trace context and receiving the per-request
  /// timing breakdown alongside the result.
  Status Submit(const OdtInput& odt, double deadline_ms, RequestContext ctx,
                TimedResponseCallback done);

  /// Graceful drain: stops admissions, flushes every queued request, waits
  /// for all callbacks, stops the thread. Idempotent.
  void Shutdown();

  /// Manual mode: flushes one wave if a trigger (size, age, or `force`)
  /// fires. Returns the wave size (0 = no trigger). Requires manual_pump.
  int64_t PumpOnce(bool force = false);

  int64_t queue_depth() const;
  BatcherStats stats() const;

 private:
  struct Pending {
    OdtInput odt;
    double deadline_ms = 0;  // client budget measured from enqueue_ms
    double enqueue_ms = 0;
    RequestContext ctx;
    int64_t enqueue_trace_us = 0;  // TraceNowUs() at Submit (traced only)
    TimedResponseCallback done;
  };
  enum class FlushReason { kSize, kAge, kDrain };

  double Now() const { return config_.now_ms(); }
  /// Pops up to max_batch requests and answers them through the backend.
  /// Called with mu_ held; unlocks around the backend call. Returns the
  /// wave size.
  int64_t FlushWaveLocked(std::unique_lock<std::mutex>* lock,
                          FlushReason reason);
  void ThreadLoop();

  BatchBackend backend_;
  BatcherConfig config_;

  struct Metrics {
    Metrics();
    obs::Histogram* wave_size;       // dot_server_wave_size
    obs::Histogram* queue_wait_us;   // dot_server_queue_wait_us
    obs::Histogram* queue_depth;     // dot_server_queue_depth (at admission)
    obs::Counter* flush_size;        // dot_server_wave_flush_total{trigger=..}
    obs::Counter* flush_age;
    obs::Counter* flush_drain;
    obs::Counter* rejected_full;     // dot_server_overload_rejected_total{..}
    obs::Counter* rejected_stale;
  };
  Metrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  BatcherStats stats_;
  bool stopping_ = false;
  std::mutex join_mu_;  // serializes Shutdown/destructor joins
  std::thread thread_;
};

/// Adapts an OracleService into a BatchBackend (the production wiring).
BatchBackend OracleBackend(OracleService* service);

}  // namespace serve
}  // namespace dot

#endif  // DOT_SERVE_BATCHER_H_
