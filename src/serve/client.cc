#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <random>
#include <utility>

namespace dot {
namespace serve {

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      stash_(std::move(other.stash_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    stash_ = std::move(other.stash_);
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Connect(const std::string& host, int port) {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  reader_ = FrameReader();
  stash_.clear();
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Send(const Message& msg) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  return WriteFrame(fd_, msg);
}

Status Client::SendQuery(uint64_t id, const OdtInput& odt, double deadline_ms,
                         uint64_t trace_id, uint8_t flags) {
  QueryRequest q;
  q.id = id;
  q.origin_lng = odt.origin.lng;
  q.origin_lat = odt.origin.lat;
  q.dest_lng = odt.destination.lng;
  q.dest_lat = odt.destination.lat;
  q.departure_time = odt.departure_time;
  q.deadline_ms = deadline_ms;
  if (flags != 0 && trace_id == 0) trace_id = NewTraceId();
  q.trace_id = trace_id;
  q.flags = flags;
  return Send(Message{q});
}

uint64_t Client::NewTraceId() {
  thread_local std::mt19937_64 rng{std::random_device{}()};
  uint64_t id = 0;
  while (id == 0) id = rng();
  return id;
}

Result<Message> Client::Receive(double timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  std::vector<uint8_t> payload;
  uint8_t buf[4096];
  while (true) {
    if (reader_.Next(&payload)) return DecodePayload(payload);
    if (!reader_.status().ok()) return reader_.status();
    if (timeout_ms > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (rc == 0) {
        return Status::DeadlineExceeded("receive timed out after " +
                                        std::to_string(timeout_ms) + "ms");
      }
      if (rc < 0 && errno != EINTR) {
        return Status::IOError(std::string("poll: ") + std::strerror(errno));
      }
      if (rc < 0) continue;
    }
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read: ") + std::strerror(errno));
    }
    Status fed = reader_.Feed(buf, static_cast<size_t>(n));
    if (!fed.ok()) return fed;
  }
}

Result<QueryResponse> Client::ReceiveFor(uint64_t id, double timeout_ms) {
  auto it = stash_.find(id);
  if (it != stash_.end()) {
    QueryResponse r = std::move(it->second);
    stash_.erase(it);
    return r;
  }
  while (true) {
    Result<Message> msg = Receive(timeout_ms);
    if (!msg.ok()) return msg.status();
    const auto* r = std::get_if<QueryResponse>(&*msg);
    if (r == nullptr) continue;  // stray pong etc. — not ours
    if (r->id == id) return *r;
    stash_[r->id] = *r;  // arrived out of order; hold for its caller
  }
}

Result<QueryResponse> Client::Call(uint64_t id, const OdtInput& odt,
                                   double deadline_ms, double timeout_ms,
                                   uint64_t trace_id, uint8_t flags) {
  Status sent = SendQuery(id, odt, deadline_ms, trace_id, flags);
  if (!sent.ok()) return sent;
  return ReceiveFor(id, timeout_ms);
}

Status Client::PingServer(uint64_t id, double timeout_ms) {
  Status sent = Send(Message{Ping{id}});
  if (!sent.ok()) return sent;
  while (true) {
    Result<Message> msg = Receive(timeout_ms);
    if (!msg.ok()) return msg.status();
    const auto* pong = std::get_if<Pong>(&*msg);
    if (pong != nullptr && pong->id == id) return Status::OK();
    if (const auto* r = std::get_if<QueryResponse>(&*msg)) {
      stash_[r->id] = *r;  // keep pipelined responses for ReceiveFor
    }
  }
}

}  // namespace serve
}  // namespace dot
