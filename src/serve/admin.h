// Admin / introspection plane (DESIGN.md §5h): a tiny HTTP/1.0 listener
// that exposes the process's observability state to curl and scrapers,
// off the serving port so operational traffic never competes with query
// frames. One thread, serial request handling — every endpoint is a
// read-only snapshot and renders in microseconds, so concurrency would
// buy nothing and cost locking.
//
//   GET /healthz  liveness: "ok" while the process runs
//   GET /readyz   readiness: 200 "ready" until drain starts, then 503
//   GET /metrics  Prometheus text exposition (MetricsToPrometheusText)
//   GET /varz     JSON: full registry dump + a server-provided section
//   GET /slowz    JSON dump of the slow/degraded query ring
//   GET /shardz   JSON status of every worker shard (health, model
//                 version, probe/quarantine counters); 404 without shards
//   POST /swapz   zero-downtime model hot-swap across all shards; 200 on
//                 success, 500 with the error otherwise, 405 on GET
//   GET  /adaptz  JSON history of continual fine-tune rounds; 404 when
//                 the process runs without an adaptation loop
//   POST /adaptz  runs one adaptation round synchronously (fine-tune on
//                 the incident window, re-seal, hot-swap on improvement)
//                 and returns the round's JSON record
//   GET /tracez?sec=N  records a bounded N-second trace and returns it as
//                 chrome://tracing JSON (409 if a recording is active)
//
// The port comes from DOT_SERVE_ADMIN_PORT (or AdminConfig); port 0 binds
// an ephemeral port, readable from AdminServer::port() after Start().

#ifndef DOT_SERVE_ADMIN_H_
#define DOT_SERVE_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/ring.h"
#include "util/result.h"

namespace dot {
namespace serve {

struct AdminConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral
  /// Hard cap on /tracez capture length.
  double max_trace_sec = 10.0;

  /// Reads DOT_SERVE_ADMIN_PORT over the default.
  static AdminConfig FromEnv();
};

/// \brief Callbacks the admin plane renders live state through. All must
/// be safe to call from the admin thread at any time between Start() and
/// Shutdown().
struct AdminHooks {
  /// Extra JSON object rendered under "server" in /varz (null if absent).
  std::function<std::string()> server_json;
  /// Slow-query ring behind /slowz (empty dump if absent).
  obs::SlowQueryRing* slow_ring = nullptr;
  /// Shard status JSON behind /shardz (404 if absent — the process runs
  /// unsharded).
  std::function<std::string()> shardz_json;
  /// Hot-swap trigger behind POST /swapz. Runs on the admin thread; the
  /// swap is expected to block until the shadow models are live (the 200
  /// means "the new version is serving"). 404 if absent.
  std::function<Status()> swap;
  /// Adaptation round history behind GET /adaptz (404 if absent — the
  /// process runs without a continual-learning loop).
  std::function<std::string()> adapt_json;
  /// One synchronous continual fine-tune round behind POST /adaptz.
  /// Returns the round's JSON record; blocks until the round (and any
  /// publish hot-swap it triggers) finishes. 404 if absent.
  std::function<Result<std::string>()> adapt_run;
};

/// \brief Single-threaded HTTP/1.0 introspection server.
class AdminServer {
 public:
  explicit AdminServer(AdminConfig config = {}, AdminHooks hooks = {});
  ~AdminServer();  // implies Shutdown()

  Status Start();
  /// Stops the listener thread and closes the socket. Idempotent.
  void Shutdown();

  /// The bound port (resolved after Start() when config.port was 0).
  int port() const { return port_; }

  /// Flips what /readyz reports; the server flips this false when a drain
  /// begins so load balancers stop routing before connections die.
  void SetReady(bool ready) {
    ready_.store(ready, std::memory_order_relaxed);
  }
  bool ready() const { return ready_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  void HandleConn(int fd);
  /// Routes one request line; returns the full HTTP response bytes.
  std::string Respond(const std::string& method, const std::string& target);

  AdminConfig config_;
  AdminHooks hooks_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> ready_{true};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread thread_;
};

}  // namespace serve
}  // namespace dot

#endif  // DOT_SERVE_ADMIN_H_
