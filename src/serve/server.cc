#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"
#include "obs/window.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dot {
namespace serve {
namespace {

// A connection whose peer stops reading cannot buffer responses forever;
// past this outbox size it is considered dead and closed.
constexpr size_t kMaxOutboxBytes = 1 << 20;
// How long Shutdown keeps flushing unsent outboxes before giving up.
constexpr double kDrainFlushGraceMs = 5000;

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return (end && *end == '\0') ? parsed : fallback;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  return (end && *end == '\0') ? static_cast<int64_t>(parsed) : fallback;
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

uint8_t CodeByte(const Status& s) { return static_cast<uint8_t>(s.code()); }

}  // namespace

ServerConfig ServerConfig::FromEnv() {
  ServerConfig config;
  config.port = static_cast<int>(EnvInt("DOT_SERVE_PORT", config.port));
  config.batcher.max_batch =
      EnvInt("DOT_SERVE_MAX_BATCH", config.batcher.max_batch);
  config.batcher.max_wave_age_ms =
      EnvDouble("DOT_SERVE_MAX_WAVE_AGE_MS", config.batcher.max_wave_age_ms);
  config.batcher.queue_capacity =
      EnvInt("DOT_SERVE_QUEUE_CAP", config.batcher.queue_capacity);
  config.batcher.queue_budget_ms =
      EnvDouble("DOT_SERVE_QUEUE_BUDGET_MS", config.batcher.queue_budget_ms);
  config.slow_request_ms = EnvDouble("DOT_SERVE_SLOW_MS", config.slow_request_ms);
  return config;
}

Server::Metrics::Metrics() {
  auto& reg = obs::MetricsRegistry::Get();
  connections = reg.GetCounter("dot_server_connections_total");
  requests = reg.GetCounter("dot_server_requests_total");
  responses = reg.GetCounter("dot_server_responses_total");
  protocol_errors = reg.GetCounter("dot_server_protocol_errors_total");
  pings = reg.GetCounter("dot_server_pings_total");
  open_connections = reg.GetGauge("dot_server_open_connections");
  inflight = reg.GetGauge("dot_server_inflight");
  request_latency_us = reg.GetHistogram("dot_server_request_latency_us");
  win_request_latency = reg.GetWindow("dot_server_request_latency_us");
  win_queue = reg.GetWindow("dot_server_breakdown_queue_us");
  win_batch_wait = reg.GetWindow("dot_server_breakdown_batch_wait_us");
  win_stage1 = reg.GetWindow("dot_server_breakdown_stage1_us");
  win_stage2 = reg.GetWindow("dot_server_breakdown_stage2_us");
  win_serialize = reg.GetWindow("dot_server_breakdown_serialize_us");
}

Server::Server(BatchBackend backend, ServerConfig config)
    : backend_(std::move(backend)), config_(std::move(config)) {
  DOT_CHECK(backend_ != nullptr) << "server needs a backend";
  DOT_CHECK(!config_.batcher.manual_pump)
      << "the server drives the batcher with its own thread";
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  DOT_CHECK(!started_) << "Start() called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, config_.backlog) < 0) {
    Status s = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);
  if (::pipe(wake_pipe_) < 0) {
    Status s = Status::IOError(std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);
  batcher_ = std::make_unique<DynamicBatcher>(backend_, config_.batcher);
  started_ = true;
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void Server::WakeIo() {
  char b = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void Server::QueueResponse(int64_t conn_id, const Message& msg) {
  std::vector<uint8_t> frame = EncodeFrame(msg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;  // connection died while serving
    Conn& conn = it->second;
    conn.outbox.insert(conn.outbox.end(), frame.begin(), frame.end());
    if (std::holds_alternative<QueryResponse>(msg)) {
      ++stats_.responses;
      metrics_.responses->Increment();
    }
  }
  WakeIo();
}

void Server::AcceptReady() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: poll again later
    }
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    conn.reader = FrameReader(config_.max_frame_payload);
    conns_.emplace(next_conn_id_++, std::move(conn));
    ++stats_.connections_accepted;
    ++stats_.connections_open;
    metrics_.connections->Increment();
    metrics_.open_connections->Set(
        static_cast<double>(stats_.connections_open));
  }
}

bool Server::ReadReady(int64_t conn_id, Conn* conn) {
  uint8_t buf[4096];
  bool alive = true;
  while (alive) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n == 0) {
      alive = false;  // peer closed; frames already buffered still count
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      alive = false;
      break;
    }
    if (!conn->reader.Feed(buf, static_cast<size_t>(n)).ok()) {
      ++stats_.protocol_errors;
      metrics_.protocol_errors->Increment();
      return false;  // oversized length prefix: drop the connection
    }
  }
  std::vector<uint8_t> payload;
  while (conn->reader.Next(&payload)) {
    Result<Message> decoded = DecodePayload(payload);
    if (!decoded.ok()) {
      ++stats_.protocol_errors;
      metrics_.protocol_errors->Increment();
      return false;
    }
    if (const auto* ping = std::get_if<Ping>(&*decoded)) {
      ++stats_.pings;
      metrics_.pings->Increment();
      std::vector<uint8_t> frame = EncodeFrame(Pong{ping->id});
      conn->outbox.insert(conn->outbox.end(), frame.begin(), frame.end());
      continue;
    }
    const auto* query = std::get_if<QueryRequest>(&*decoded);
    if (query == nullptr) {  // a client must not send responses/pongs
      ++stats_.protocol_errors;
      metrics_.protocol_errors->Increment();
      return false;
    }
    ++stats_.requests;
    metrics_.requests->Increment();
    OdtInput odt;
    odt.origin = {query->origin_lng, query->origin_lat};
    odt.destination = {query->dest_lng, query->dest_lat};
    odt.departure_time = query->departure_time;
    uint64_t id = query->id;
    uint64_t trace_id = query->trace_id;
    bool want_breakdown = (query->flags & kQueryFlagWantBreakdown) != 0;
    // A sampled request gets a root span in the active recording; every
    // downstream span (queue wait, wave, oracle stages) is stitched under
    // it. With tracing off this is one relaxed atomic load.
    uint64_t root_span = 0;
    int64_t root_start_us = 0;
    if ((query->flags & kQueryFlagSampled) && obs::TracingEnabled()) {
      root_span = obs::NewSpanId();
      root_start_us = obs::TraceNowUs();
    }
    RequestContext ctx;
    ctx.trace_id = trace_id;
    ctx.root_span = root_span;
    ctx.want_timing = want_breakdown;
    // The callback runs on the batcher thread after the wave completes;
    // it must not assume the connection still exists. Inflight is raised
    // before Submit because the callback may fire before Submit returns.
    metrics_.inflight->Add(1.0);
    auto start = std::chrono::steady_clock::now();
    Status admitted = batcher_->Submit(
        odt, query->deadline_ms, ctx,
        [this, conn_id, id, trace_id, want_breakdown, root_span,
         root_start_us, start](const Result<DotEstimate>& r,
                               const RequestTiming& timing) {
          QueryResponse resp;
          resp.id = id;
          if (r.ok()) {
            resp.quality = static_cast<uint8_t>(r->quality);
            resp.minutes = r->minutes;
          } else {
            resp.code = CodeByte(r.status());
            resp.message = r.status().message();
          }
          if (want_breakdown) {
            resp.has_breakdown = true;
            resp.breakdown.queue_us = timing.queue_us;
            resp.breakdown.batch_wait_us = timing.batch_wait_us;
            resp.breakdown.stage1_us = timing.stage1_us;
            resp.breakdown.stage2_us = timing.stage2_us;
            // The echoed breakdown cannot contain its own encode time; the
            // serialize segment is observable via the rolling window.
            resp.breakdown.serialize_us = 0;
          }
          double latency_us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
          metrics_.request_latency_us->Observe(latency_us);
          metrics_.win_request_latency->Observe(latency_us);
          metrics_.win_queue->Observe(timing.queue_us);
          metrics_.win_batch_wait->Observe(timing.batch_wait_us);
          metrics_.win_stage1->Observe(timing.stage1_us);
          metrics_.win_stage2->Observe(timing.stage2_us);
          Stopwatch serialize_sw;
          QueueResponse(conn_id, resp);
          double serialize_us = serialize_sw.ElapsedSeconds() * 1e6;
          metrics_.win_serialize->Observe(serialize_us);
          metrics_.inflight->Add(-1.0);
          if (root_span != 0) {
            obs::RecordSpan("request", root_span, 0, root_start_us,
                            obs::TraceNowUs() - root_start_us,
                            "\"trace_id\": " + std::to_string(trace_id) +
                                ", \"id\": " + std::to_string(id));
          }
          bool degraded =
              r.ok() &&
              r->quality != ServedQuality::kFull;
          double latency_ms = latency_us / 1e3;
          if (!r.ok() || degraded || latency_ms > config_.slow_request_ms) {
            obs::SlowQueryRecord rec;
            rec.trace_id = trace_id;
            rec.request_id = id;
            rec.unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::system_clock::now()
                                  .time_since_epoch())
                              .count();
            rec.latency_ms = latency_ms;
            rec.quality = r.ok() ? static_cast<int>(r->quality) : 0;
            rec.code = r.ok() ? 0 : static_cast<int>(CodeByte(r.status()));
            rec.queue_us = timing.queue_us;
            rec.batch_wait_us = timing.batch_wait_us;
            rec.stage1_us = timing.stage1_us;
            rec.stage2_us = timing.stage2_us;
            rec.serialize_us = serialize_us;
            rec.note = !r.ok() ? r.status().message()
                     : degraded ? ServedQualityName(r->quality)
                                : "slow";
            slow_ring_.Push(std::move(rec));
          }
        });
    if (!admitted.ok()) {
      metrics_.inflight->Add(-1.0);
      // Typed rejection (overload or draining), answered inline: shedding
      // must be cheap exactly when the server is busiest.
      if (admitted.IsResourceExhausted()) ++stats_.overload_rejected;
      QueryResponse resp;
      resp.id = id;
      resp.code = CodeByte(admitted);
      resp.message = admitted.message();
      std::vector<uint8_t> frame = EncodeFrame(resp);
      conn->outbox.insert(conn->outbox.end(), frame.begin(), frame.end());
      ++stats_.responses;
      metrics_.responses->Increment();
    }
  }
  if (conn->outbox.size() - conn->sent > kMaxOutboxBytes) return false;
  return alive;
}

bool Server::WriteReady(Conn* conn) {
  while (conn->sent < conn->outbox.size()) {
    ssize_t n = ::send(conn->fd, conn->outbox.data() + conn->sent,
                       conn->outbox.size() - conn->sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // EPIPE etc.
    }
    conn->sent += static_cast<size_t>(n);
  }
  conn->outbox.clear();
  conn->sent = 0;
  return true;
}

void Server::CloseConn(int64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
  --stats_.connections_open;
  metrics_.open_connections->Set(static_cast<double>(stats_.connections_open));
}

void Server::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<int64_t> ids;  // parallel to fds; 0 = listen/wake entries
  Stopwatch drain_sw;
  bool drain_timer_started = false;
  while (true) {
    fds.clear();
    ids.clear();
    bool stopping;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping = stopping_;
      if (!stopping) {
        fds.push_back({listen_fd_, POLLIN, 0});
        ids.push_back(0);
      }
      fds.push_back({wake_pipe_[0], POLLIN, 0});
      ids.push_back(0);
      for (auto& [conn_id, conn] : conns_) {
        short events = POLLIN;
        if (conn.sent < conn.outbox.size()) events |= POLLOUT;
        fds.push_back({conn.fd, events, 0});
        ids.push_back(conn_id);
      }
    }
    ::poll(fds.data(), fds.size(), stopping ? 10 : 100);

    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == wake_pipe_[0]) {
        uint8_t scratch[256];
        while (::read(wake_pipe_[0], scratch, sizeof(scratch)) > 0) {
        }
        continue;
      }
      if (fds[i].fd == listen_fd_ && ids[i] == 0) {
        if (!stopping_) AcceptReady();
        continue;
      }
      int64_t conn_id = ids[i];
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      Conn& conn = it->second;
      bool alive = !(fds[i].revents & (POLLERR | POLLNVAL));
      // Read before honoring POLLHUP: a peer that closed right after
      // sending still gets its final frames decoded (ReadReady reports the
      // EOF itself).
      if (alive && (fds[i].revents & (POLLIN | POLLHUP))) {
        alive = ReadReady(conn_id, &conn);
      }
      if (alive && conn.sent < conn.outbox.size()) alive = WriteReady(&conn);
      if (!alive) CloseConn(conn_id);
    }
    // Unsolicited flush: responses queued by the batcher thread while we
    // were polling are written eagerly rather than waiting one poll cycle.
    for (auto it = conns_.begin(); it != conns_.end();) {
      int64_t conn_id = it->first;
      Conn& conn = it->second;
      ++it;
      if (conn.sent < conn.outbox.size() && !WriteReady(&conn)) {
        CloseConn(conn_id);
      }
    }
    if (stopping_ && drain_done_) {
      if (!drain_timer_started) {
        drain_timer_started = true;
        drain_sw.Restart();
      }
      bool all_flushed = true;
      for (const auto& [conn_id, conn] : conns_) {
        if (conn.sent < conn.outbox.size()) {
          all_flushed = false;
          break;
        }
      }
      if (all_flushed || drain_sw.ElapsedMillis() > kDrainFlushGraceMs) break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [conn_id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
  stats_.connections_open = 0;
  metrics_.open_connections->Set(0);
}

void Server::Shutdown() {
  // One caller performs the entire teardown; concurrent callers block here
  // and then observe started_ == false. Without this, a second caller's
  // WakeIo() could read wake_pipe_[1] while the first closes it.
  std::lock_guard<std::mutex> slock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || shut_down_) return;
    stopping_ = true;
  }
  WakeIo();
  batcher_->Shutdown();  // answers everything admitted; callbacks all done
  {
    std::lock_guard<std::mutex> lock(mu_);
    drain_done_ = true;
  }
  WakeIo();
  if (io_thread_.joinable()) io_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_pipe_[0] >= 0) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
  std::lock_guard<std::mutex> lock(mu_);
  shut_down_ = true;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace dot
