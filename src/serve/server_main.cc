// Standalone DOT serving front-end: trains (or loads) the demo oracle,
// serves the binary protocol on a TCP port, and drains gracefully on
// SIGTERM/SIGINT. Used by the check.sh loopback smoke and available for
// manual poking with the bench client.
//
// Usage: dot_server [--port N] [--port-file PATH] [--checkpoint PATH]
//
//   --port N          listen port (default: DOT_SERVE_PORT or ephemeral)
//   --port-file PATH  write the bound port to PATH once listening (how
//                     scripts discover an ephemeral port)
//   --checkpoint PATH cache the trained demo oracle weights at PATH
//
// Batching / admission knobs come from the environment (DOT_SERVE_*, see
// ServerConfig::FromEnv). Prints "LISTENING <port>" on stdout when ready.

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/demo.h"
#include "serve/server.h"
#include "util/logging.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string port_file;
  std::string checkpoint;
  dot::serve::ServerConfig config = dot::serve::ServerConfig::FromEnv();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = std::atoi(next());
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--checkpoint") {
      checkpoint = next();
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: dot_server [--port N] "
                   "[--port-file PATH] [--checkpoint PATH]\n",
                   arg.c_str());
      return 2;
    }
  }

  DOT_LOG_INFO << "building demo world (oracle training may take a moment)";
  dot::Result<dot::serve::DemoWorld> world =
      dot::serve::BuildDemoWorld(checkpoint);
  if (!world.ok()) {
    std::fprintf(stderr, "demo world: %s\n", world.status().ToString().c_str());
    return 1;
  }
  dot::OracleService service(world->oracle.get());

  dot::serve::Server server(dot::serve::OracleBackend(&service), config);
  dot::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "port file %s: %s\n", port_file.c_str(),
                   std::strerror(errno));
      server.Shutdown();
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }
  std::printf("LISTENING %d\n", server.port());
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  DOT_LOG_INFO << "signal received; draining";
  server.Shutdown();
  dot::serve::ServerStats stats = server.stats();
  dot::serve::BatcherStats bstats = server.batcher_stats();
  std::printf(
      "DRAINED conns=%lld requests=%lld responses=%lld rejected=%lld "
      "waves=%lld\n",
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.responses),
      static_cast<long long>(stats.overload_rejected),
      static_cast<long long>(bstats.waves));
  std::fflush(stdout);
  return 0;
}
