// Standalone DOT serving front-end: trains (or loads) the demo oracle,
// serves the binary protocol on a TCP port through a fleet of worker
// shards, and drains gracefully on SIGTERM/SIGINT.  Used by the check.sh
// loopback smokes and available for manual poking with the bench client.
//
// Usage: dot_server [--port N] [--port-file PATH] [--checkpoint PATH]
//                   [--admin-port N] [--admin-port-file PATH] [--shards N]
//
//   --port N            listen port (default: DOT_SERVE_PORT or ephemeral)
//   --port-file PATH    write the bound port to PATH once listening (how
//                       scripts discover an ephemeral port)
//   --checkpoint PATH   cache the trained demo oracle weights at PATH
//   --admin-port N      admin/introspection HTTP port (default:
//                       DOT_SERVE_ADMIN_PORT; unset = no admin plane)
//   --admin-port-file PATH  write the bound admin port to PATH
//   --shards N          worker shard count (default: DOT_SERVE_SHARDS or 1)
//
// Sharding (DESIGN.md §5i): the demo model is trained once and sealed to
// a checkpoint; every shard loads its own replica from that checkpoint, so
// shards fail (and hot-swap) independently. The router partitions queries
// across shards by OD-pair hash. /shardz (admin) reports per-shard health;
// POST /swapz or SIGHUP hot-swaps every shard from the checkpoint with
// zero downtime. Shard health knobs come from the environment:
// DOT_SERVE_QUARANTINE_FAILURES, DOT_SERVE_PROBE_BACKOFF_MS,
// DOT_SERVE_PROBE_BACKOFF_MAX_MS, DOT_SERVE_DEGRADED_P95_US.
//
// Continual adaptation (DESIGN.md §5k): the process carries an incident
// storm scheduled for the day after the demo training window. POST
// /adaptz fine-tunes the sealed model on fresh incident trajectories
// (DOT_ADAPT_* knobs, see serve/adapt.h), re-seals the checkpoint on
// improvement, and hot-swaps every shard onto it; GET /adaptz reports the
// round history.
//
// Batching / admission knobs come from the environment (DOT_SERVE_*, see
// ServerConfig::FromEnv). Prints "LISTENING <port>" (plus "ADMIN <port>"
// when the admin plane is up, and "SHARDS <n>") on stdout when ready.
//
// Signals (handled via a self-pipe; the handlers only write one byte):
//   SIGTERM/SIGINT  graceful drain: /readyz flips to 503, the process
//                   lingers DOT_SERVE_LAME_DUCK_MS (default 0) so load
//                   balancers observe the flip, then drains and exits.
//   SIGUSR1         dumps the /varz-equivalent JSON snapshot to stderr.
//   SIGHUP          zero-downtime model hot-swap across all shards.

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/shard.h"
#include "obs/metrics.h"
#include "serve/adapt.h"
#include "serve/admin.h"
#include "serve/demo.h"
#include "serve/router.h"
#include "serve/server.h"
#include "sim/incidents.h"
#include "util/logging.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
int g_signal_pipe[2] = {-1, -1};

void HandleStopSignal(int) {
  g_stop = 1;
  char b = 't';
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

void HandleUsr1(int) {
  char b = 'u';
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

void HandleHup(int) {
  char b = 'h';
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return (end && *end == '\0') ? parsed : fallback;
}

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

// The "server" section of /varz and the SIGUSR1 dump: point-in-time
// front-end counters that live outside the metrics registry.
std::string ServerStatsJson(const dot::serve::Server& server) {
  dot::serve::ServerStats s = server.stats();
  dot::serve::BatcherStats b = server.batcher_stats();
  auto num = [](long long v) { return std::to_string(v); };
  return std::string("{") + "\"port\": " + std::to_string(server.port()) +
         ", \"connections_accepted\": " + num(s.connections_accepted) +
         ", \"connections_open\": " + num(s.connections_open) +
         ", \"requests\": " + num(s.requests) +
         ", \"responses\": " + num(s.responses) +
         ", \"overload_rejected\": " + num(s.overload_rejected) +
         ", \"protocol_errors\": " + num(s.protocol_errors) +
         ", \"pings\": " + num(s.pings) + ", \"waves\": " + num(b.waves) +
         ", \"submitted\": " + num(b.submitted) +
         ", \"completed\": " + num(b.completed) + "}";
}

bool WritePortFile(const std::string& path, int port) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "port file %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  std::fprintf(f, "%d\n", port);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string port_file;
  std::string admin_port_file;
  std::string checkpoint;
  dot::serve::ServerConfig config = dot::serve::ServerConfig::FromEnv();
  dot::serve::AdminConfig admin_config = dot::serve::AdminConfig::FromEnv();
  bool admin_enabled = std::getenv("DOT_SERVE_ADMIN_PORT") != nullptr;
  long num_shards = EnvLong("DOT_SERVE_SHARDS", 1);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = std::atoi(next());
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--checkpoint") {
      checkpoint = next();
    } else if (arg == "--admin-port") {
      admin_config.port = std::atoi(next());
      admin_enabled = true;
    } else if (arg == "--admin-port-file") {
      admin_port_file = next();
    } else if (arg == "--shards") {
      num_shards = std::atol(next());
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: dot_server [--port N] "
                   "[--port-file PATH] [--checkpoint PATH] [--admin-port N] "
                   "[--admin-port-file PATH] [--shards N]\n",
                   arg.c_str());
      return 2;
    }
  }
  if (num_shards < 1) num_shards = 1;

  DOT_LOG_INFO << "building demo world (oracle training may take a moment)";
  dot::Result<dot::serve::DemoWorld> world =
      dot::serve::BuildDemoWorld(checkpoint);
  if (!world.ok()) {
    std::fprintf(stderr, "demo world: %s\n", world.status().ToString().c_str());
    return 1;
  }

  // Every shard loads its own model replica from a sealed checkpoint (the
  // shard factories re-run on hot swap). Without --checkpoint, the trained
  // demo weights are sealed to a private temp file.
  std::string shard_checkpoint = checkpoint;
  bool temp_checkpoint = false;
  if (shard_checkpoint.empty()) {
    shard_checkpoint =
        "/tmp/dot_server_demo_" + std::to_string(::getpid()) + ".ckpt";
    temp_checkpoint = true;
  }
  {
    dot::Status sealed = world->oracle->SaveFile(shard_checkpoint);
    if (!sealed.ok()) {
      std::fprintf(stderr, "seal checkpoint %s: %s\n",
                   shard_checkpoint.c_str(), sealed.ToString().c_str());
      return 1;
    }
  }
  dot::ModelFactory factory =
      [&world, shard_checkpoint]() -> dot::Result<std::unique_ptr<dot::DotOracle>> {
    auto oracle = std::make_unique<dot::DotOracle>(dot::serve::DemoDotConfig(),
                                                   *world->grid);
    dot::Status loaded = oracle->LoadFile(shard_checkpoint);
    if (!loaded.ok()) return loaded;
    return oracle;
  };

  std::vector<std::unique_ptr<dot::OracleShard>> shards;
  for (long s = 0; s < num_shards; ++s) {
    dot::ShardConfig shard_config;
    shard_config.shard_id = std::to_string(s);
    shard_config.quarantine_after_failures =
        EnvLong("DOT_SERVE_QUARANTINE_FAILURES", 3);
    shard_config.probe_backoff_initial_ms =
        EnvDouble("DOT_SERVE_PROBE_BACKOFF_MS", 200);
    shard_config.probe_backoff_max_ms =
        EnvDouble("DOT_SERVE_PROBE_BACKOFF_MAX_MS", 10000);
    shard_config.degraded_p95_us = EnvDouble("DOT_SERVE_DEGRADED_P95_US", 0);
    dot::Result<std::unique_ptr<dot::OracleShard>> shard =
        dot::OracleShard::Create(factory, std::move(shard_config));
    if (!shard.ok()) {
      std::fprintf(stderr, "shard %ld: %s\n", s,
                   shard.status().ToString().c_str());
      return 1;
    }
    shards.push_back(std::move(*shard));
  }
  dot::serve::ShardRouter router(std::move(shards));

  dot::serve::Server server(dot::serve::RouterBackend(&router), config);
  dot::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    return 1;
  }

  // Continual adaptation loop (DESIGN.md §5k): an incident storm disrupts
  // the day after the training data ends; POST /adaptz fine-tunes the
  // sealed model on fresh incident-window trajectories and hot-swaps the
  // fleet onto the result.
  dot::TripConfig demo_trips = dot::serve::DemoTripConfig();
  int64_t storm_start =
      demo_trips.start_unix + demo_trips.num_days * 86400 + 7 * 3600;
  int64_t storm_end = storm_start + 12 * 3600;
  auto storm = std::make_shared<dot::IncidentSchedule>(
      dot::IncidentSchedule::Storm(*world->city, storm_start, storm_end,
                                   dot::serve::kDemoCitySeed));
  dot::serve::AdaptationManager adapt(
      world->city.get(), world->grid.get(), world->dataset->split.train,
      shard_checkpoint, dot::serve::AdaptConfig::FromEnv());
  adapt.SetIncidents(storm, storm_start, storm_end);

  dot::serve::AdminHooks hooks;
  hooks.server_json = [&server] { return ServerStatsJson(server); };
  hooks.slow_ring = server.slow_ring();
  hooks.shardz_json = [&router] { return router.ShardzJson(); };
  hooks.swap = [&router] { return router.SwapAll(); };
  hooks.adapt_json = [&adapt] { return adapt.StatusJson(); };
  hooks.adapt_run = [&adapt, &router]() -> dot::Result<std::string> {
    dot::Result<dot::serve::AdaptRound> round =
        adapt.RunRound([&router] { return router.SwapAll(); });
    if (!round.ok()) return round.status();
    return round->ToJson();
  };
  dot::serve::AdminServer admin(admin_config, hooks);
  if (admin_enabled) {
    dot::Status admin_started = admin.Start();
    if (!admin_started.ok()) {
      std::fprintf(stderr, "admin: %s\n", admin_started.ToString().c_str());
      server.Shutdown();
      return 1;
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "signal pipe: %s\n", std::strerror(errno));
    server.Shutdown();
    return 1;
  }
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGUSR1, HandleUsr1);
  std::signal(SIGHUP, HandleHup);

  if (!port_file.empty() && !WritePortFile(port_file, server.port())) {
    server.Shutdown();
    return 1;
  }
  if (admin_enabled && !admin_port_file.empty() &&
      !WritePortFile(admin_port_file, admin.port())) {
    server.Shutdown();
    return 1;
  }
  std::printf("LISTENING %d\n", server.port());
  if (admin_enabled) std::printf("ADMIN %d\n", admin.port());
  std::printf("SHARDS %ld\n", num_shards);
  std::fflush(stdout);

  while (!g_stop) {
    pollfd pfd{g_signal_pipe[0], POLLIN, 0};
    int rc = ::poll(&pfd, 1, 500);
    if (rc <= 0) continue;  // timeout or EINTR; g_stop is the backstop
    char bytes[64];
    ssize_t n = ::read(g_signal_pipe[0], bytes, sizeof(bytes));
    for (ssize_t i = 0; i < n; ++i) {
      if (bytes[i] == 'u') {
        // /varz-equivalent snapshot, greppable in the server's stderr log.
        std::fprintf(stderr, "SIGUSR1 varz dump: {\"metrics\": %s, \"server\": %s}\n",
                     dot::obs::MetricsToJson().c_str(),
                     ServerStatsJson(server).c_str());
        std::fflush(stderr);
      } else if (bytes[i] == 'h') {
        // SIGHUP hot swap runs on the main thread; the serving and admin
        // threads keep answering on the old models until each shard's
        // shadow is canary-warmed and published.
        DOT_LOG_INFO << "SIGHUP: hot-swapping " << router.shard_count()
                     << " shard(s) from " << shard_checkpoint;
        dot::Status swapped = router.SwapAll();
        if (swapped.ok()) {
          std::fprintf(stderr, "SIGHUP swap ok\n");
        } else {
          std::fprintf(stderr, "SIGHUP swap failed: %s\n",
                       swapped.ToString().c_str());
        }
        std::fflush(stderr);
      }
    }
  }

  // Lame duck: readiness flips immediately; the serving socket stays up
  // for DOT_SERVE_LAME_DUCK_MS so load balancers can observe the flip and
  // stop routing before connections start failing.
  admin.SetReady(false);
  double lame_duck_ms = EnvDouble("DOT_SERVE_LAME_DUCK_MS", 0);
  DOT_LOG_INFO << "signal received; lame duck " << lame_duck_ms
               << "ms, then draining";
  if (lame_duck_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(lame_duck_ms));
  }
  server.Shutdown();
  dot::serve::ServerStats stats = server.stats();
  dot::serve::BatcherStats bstats = server.batcher_stats();
  std::printf(
      "DRAINED conns=%lld requests=%lld responses=%lld rejected=%lld "
      "waves=%lld lost=%lld\n",
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.responses),
      static_cast<long long>(stats.overload_rejected),
      static_cast<long long>(bstats.waves),
      static_cast<long long>(bstats.submitted - bstats.completed));
  std::fflush(stdout);
  admin.Shutdown();
  if (temp_checkpoint) ::unlink(shard_checkpoint.c_str());
  return 0;
}
