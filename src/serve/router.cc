#include "serve/router.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace dot {
namespace serve {
namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit avalanche.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a 64 over a string — the ring's deterministic base hash (std::hash
/// is implementation-defined; ring placement must not change across
/// standard libraries).
uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

uint64_t OdKey(const OdtInput& odt) {
  // ~100 m quantization: 1e-3 degrees of latitude is ~111 m. Queries whose
  // endpoints jitter within a cell keep their shard; departure time is
  // deliberately excluded (see the header).
  auto q = [](double deg) {
    return static_cast<uint64_t>(
        static_cast<int64_t>(std::llround(deg * 1000.0)));
  };
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  h = SplitMix64(h ^ q(odt.origin.lat));
  h = SplitMix64(h ^ q(odt.origin.lng));
  h = SplitMix64(h ^ q(odt.destination.lat));
  h = SplitMix64(h ^ q(odt.destination.lng));
  return h;
}

HashRing::HashRing(int64_t vnodes_per_shard)
    : vnodes_(std::max<int64_t>(1, vnodes_per_shard)) {}

void HashRing::AddShard(const std::string& id) {
  size_t before = ring_.size();
  for (int64_t v = 0; v < vnodes_; ++v) {
    uint64_t point = SplitMix64(Fnv1a64(id + "#" + std::to_string(v)));
    ring_.emplace(point, id);
  }
  // Vnode point collisions across shards are possible in principle
  // (emplace keeps the incumbent); they only shave single vnodes, never a
  // shard.
  if (ring_.size() > before) ++num_shards_;
}

void HashRing::RemoveShard(const std::string& id) {
  bool removed = false;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == id) {
      it = ring_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  if (removed && num_shards_ > 0) --num_shards_;
}

const std::string& HashRing::ShardFor(uint64_t key) const {
  DOT_CHECK(!ring_.empty()) << "ShardFor on an empty ring";
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->second;
}

ShardRouter::ShardRouter(std::vector<std::unique_ptr<OracleShard>> shards,
                         int64_t vnodes_per_shard)
    : shards_(std::move(shards)), ring_(vnodes_per_shard) {
  DOT_CHECK(!shards_.empty()) << "router needs at least one shard";
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string& id = shards_[i]->id();
    DOT_CHECK(index_by_id_.emplace(id, i).second)
        << "duplicate shard id " << id;
    ring_.AddShard(id);
  }
}

OracleShard* ShardRouter::ShardForQuery(const OdtInput& odt) {
  return shards_[index_by_id_.at(ring_.ShardFor(OdKey(odt)))].get();
}

Result<std::vector<DotEstimate>> ShardRouter::Route(
    const std::vector<OdtInput>& odts, const QueryOptions& opts) {
  if (odts.empty()) return std::vector<DotEstimate>{};
  size_t n = odts.size();

  // Split the wave by owning shard, preserving each member's wave index
  // for the merge.
  std::vector<std::vector<size_t>> member_idx(shards_.size());
  for (size_t i = 0; i < n; ++i) {
    member_idx[index_by_id_.at(ring_.ShardFor(OdKey(odts[i])))].push_back(i);
  }

  struct SubWave {
    size_t shard = 0;
    std::vector<size_t> idx;
    std::vector<OdtInput> inputs;
    Result<std::vector<DotEstimate>> result =
        Status::Internal("sub-wave never served");
    StageTiming timing;
    bool stage1_failed = false;
  };
  std::vector<SubWave> subs;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (member_idx[s].empty()) continue;
    SubWave sub;
    sub.shard = s;
    sub.idx = std::move(member_idx[s]);
    sub.inputs.reserve(sub.idx.size());
    for (size_t i : sub.idx) sub.inputs.push_back(odts[i]);
    subs.push_back(std::move(sub));
  }

  auto serve_one = [&](SubWave* sub) {
    QueryOptions sub_opts = opts;
    sub_opts.timing = &sub->timing;
    sub_opts.stage1_failed = &sub->stage1_failed;
    sub->result = shards_[sub->shard]->ServeWave(sub->inputs, sub_opts);
  };

  // Dispatch: the largest sub-wave runs inline on the caller's thread
  // (whoever pays the most work pays no thread spawn); the rest get one
  // thread each. Shards serialize waves internally, so per-shard
  // concurrency stays one regardless of how the batcher calls us.
  size_t largest = 0;
  for (size_t k = 1; k < subs.size(); ++k) {
    if (subs[k].idx.size() > subs[largest].idx.size()) largest = k;
  }
  std::vector<std::thread> workers;
  workers.reserve(subs.size());
  for (size_t k = 0; k < subs.size(); ++k) {
    if (k == largest) continue;
    workers.emplace_back(serve_one, &subs[k]);
  }
  serve_one(&subs[largest]);
  for (auto& w : workers) w.join();

  // Merge. Any sub-wave error fails the whole wave (the batcher answers
  // every member with that error — exactly one answer per request either
  // way).
  for (const auto& sub : subs) {
    if (!sub.result.ok()) return sub.result.status();
  }
  std::vector<DotEstimate> out(n);
  bool any_stage1_failed = false;
  double stage1_us = 0, stage2_us = 0;
  for (auto& sub : subs) {
    std::vector<DotEstimate>& got = *sub.result;
    for (size_t k = 0; k < sub.idx.size(); ++k) {
      out[sub.idx[k]] = std::move(got[k]);
    }
    any_stage1_failed = any_stage1_failed || sub.stage1_failed;
    // Sub-waves overlap in time; the max is the wave's critical path.
    stage1_us = std::max(stage1_us, sub.timing.stage1_us);
    stage2_us = std::max(stage2_us, sub.timing.stage2_us);
  }
  if (opts.timing != nullptr) {
    opts.timing->stage1_us = stage1_us;
    opts.timing->stage2_us = stage2_us;
  }
  if (opts.stage1_failed != nullptr) *opts.stage1_failed = any_stage1_failed;
  return out;
}

Status ShardRouter::SwapAll() {
  Status first_error = Status::OK();
  for (auto& shard : shards_) {
    Status s = shard->HotSwap();
    if (!s.ok()) {
      DOT_LOG_WARN << "shard " << shard->id()
                   << " swap failed: " << s.ToString();
      if (first_error.ok()) first_error = s;
    }
  }
  return first_error;
}

Status ShardRouter::SwapShard(const std::string& id) {
  auto it = index_by_id_.find(id);
  if (it == index_by_id_.end()) {
    return Status::NotFound("no shard with id " + id);
  }
  return shards_[it->second]->HotSwap();
}

std::vector<ShardStatus> ShardRouter::Statuses() const {
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->status());
  return out;
}

std::string ShardRouter::ShardzJson() const {
  std::string out = "{\"shards\": [";
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) out += ", ";
    out += shards_[i]->StatusJson();
  }
  out += "]}";
  return out;
}

BatchBackend RouterBackend(ShardRouter* router) {
  return [router](const std::vector<OdtInput>& odts,
                  const QueryOptions& opts) {
    return router->Route(odts, opts);
  };
}

}  // namespace serve
}  // namespace dot
