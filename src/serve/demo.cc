#include "serve/demo.h"

#include <sys/stat.h>

#include <utility>

#include "util/logging.h"

namespace dot {
namespace serve {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

CityConfig DemoCityConfig() {
  CityConfig cc = CityConfig::ChengduLike();
  cc.grid_nodes = 8;
  cc.spacing_meters = 1300;
  return cc;
}

TripConfig DemoTripConfig() {
  TripConfig tc = TripConfig::ChengduLike();
  tc.num_trips = 240;
  return tc;
}

DotConfig DemoDotConfig() {
  DotConfig config;
  config.grid_size = 8;
  config.diffusion_steps = 20;
  config.sample_steps = 4;
  config.unet.base_channels = 8;
  config.unet.levels = 2;
  config.unet.cond_dim = 32;
  config.estimator.embed_dim = 32;
  config.estimator.layers = 1;
  config.stage1_epochs = 1;
  config.stage2_epochs = 1;
  config.val_samples = 0;
  config.stage2_inferred_fraction = 0.0;
  return config;
}

Result<DemoWorld> BuildDemoWorld(const std::string& checkpoint) {
  DemoWorld world;
  world.city = std::make_unique<City>(DemoCityConfig(), kDemoCitySeed);
  world.dataset = std::make_unique<BenchmarkDataset>(
      BuildDataset(*world.city, DemoTripConfig(), kDemoDataSeed, "serve-demo"));
  Result<Grid> grid = world.dataset->MakeGrid(DemoDotConfig().grid_size);
  if (!grid.ok()) return grid.status();
  world.grid = std::make_unique<Grid>(std::move(grid).ValueOrDie());
  world.oracle = std::make_unique<DotOracle>(DemoDotConfig(), *world.grid);
  if (!checkpoint.empty() && FileExists(checkpoint)) {
    Status loaded = world.oracle->LoadFile(checkpoint);
    if (loaded.ok()) {
      DOT_LOG_INFO << "demo oracle loaded from " << checkpoint;
      return world;
    }
    DOT_LOG_WARN << "stale demo checkpoint " << checkpoint << " ("
                 << loaded.ToString() << "); retraining";
  }
  DOT_RETURN_NOT_OK(world.oracle->TrainStage1(world.dataset->split.train));
  DOT_RETURN_NOT_OK(world.oracle->TrainStage2(world.dataset->split.train,
                                              world.dataset->split.val));
  if (!checkpoint.empty()) {
    Status saved = world.oracle->SaveFile(checkpoint);
    if (!saved.ok()) {
      DOT_LOG_WARN << "demo checkpoint write failed: " << saved.ToString();
    }
  }
  return world;
}

}  // namespace serve
}  // namespace dot
