#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"

namespace dot {
namespace serve {
namespace {

// Fixed payload sizes (type byte included). A query response additionally
// carries a u16-length error message after the fixed part.
constexpr size_t kQueryRequestSize = 1 + 8 * 7;
constexpr size_t kQueryResponseFixedSize = 1 + 8 + 1 + 1 + 8 + 2;
constexpr size_t kPingSize = 1 + 8;
// V2 extensions: the request appends trace_id (u64) + flags (u8); the
// response appends the five f64 breakdown fields before the message.
constexpr size_t kQueryRequestV2Size = kQueryRequestSize + 8 + 1;
constexpr size_t kQueryResponseV2FixedSize = kQueryResponseFixedSize + 8 * 5;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

int64_t GetI64(const uint8_t* p) { return static_cast<int64_t>(GetU64(p)); }

double GetF64(const uint8_t* p) {
  uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::vector<uint8_t> EncodePayload(const Message& msg) {
  std::vector<uint8_t> out;
  if (const auto* q = std::get_if<QueryRequest>(&msg)) {
    // Oldest type that carries the message: plain V1 requests keep their
    // exact PR 6 bytes, so old servers interoperate.
    bool v2 = q->trace_id != 0 || q->flags != 0;
    out.reserve(v2 ? kQueryRequestV2Size : kQueryRequestSize);
    out.push_back(static_cast<uint8_t>(v2 ? MsgType::kQueryRequestV2
                                          : MsgType::kQueryRequest));
    PutU64(&out, q->id);
    PutF64(&out, q->origin_lng);
    PutF64(&out, q->origin_lat);
    PutF64(&out, q->dest_lng);
    PutF64(&out, q->dest_lat);
    PutI64(&out, q->departure_time);
    PutF64(&out, q->deadline_ms);
    if (v2) {
      PutU64(&out, q->trace_id);
      out.push_back(q->flags);
    }
  } else if (const auto* r = std::get_if<QueryResponse>(&msg)) {
    size_t msg_len = std::min(r->message.size(), kMaxErrorMessage);
    bool v2 = r->has_breakdown;
    out.reserve((v2 ? kQueryResponseV2FixedSize : kQueryResponseFixedSize) +
                msg_len);
    out.push_back(static_cast<uint8_t>(v2 ? MsgType::kQueryResponseV2
                                          : MsgType::kQueryResponse));
    PutU64(&out, r->id);
    out.push_back(r->code);
    out.push_back(r->quality);
    PutF64(&out, r->minutes);
    if (v2) {
      PutF64(&out, r->breakdown.queue_us);
      PutF64(&out, r->breakdown.batch_wait_us);
      PutF64(&out, r->breakdown.stage1_us);
      PutF64(&out, r->breakdown.stage2_us);
      PutF64(&out, r->breakdown.serialize_us);
    }
    PutU16(&out, static_cast<uint16_t>(msg_len));
    out.insert(out.end(), r->message.begin(), r->message.begin() + msg_len);
  } else if (const auto* ping = std::get_if<Ping>(&msg)) {
    out.reserve(kPingSize);
    out.push_back(static_cast<uint8_t>(MsgType::kPing));
    PutU64(&out, ping->id);
  } else {
    const Pong& pong = std::get<Pong>(msg);
    out.reserve(kPingSize);
    out.push_back(static_cast<uint8_t>(MsgType::kPong));
    PutU64(&out, pong.id);
  }
  return out;
}

Result<Message> DecodePayload(const std::vector<uint8_t>& payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("protocol: empty payload");
  }
  const uint8_t* p = payload.data();
  switch (static_cast<MsgType>(payload[0])) {
    case MsgType::kQueryRequest:
    case MsgType::kQueryRequestV2: {
      bool v2 = static_cast<MsgType>(payload[0]) == MsgType::kQueryRequestV2;
      size_t want = v2 ? kQueryRequestV2Size : kQueryRequestSize;
      if (payload.size() != want) {
        return Status::InvalidArgument(
            "protocol: query request payload must be " +
            std::to_string(want) + " bytes, got " +
            std::to_string(payload.size()));
      }
      QueryRequest q;
      q.id = GetU64(p + 1);
      q.origin_lng = GetF64(p + 9);
      q.origin_lat = GetF64(p + 17);
      q.dest_lng = GetF64(p + 25);
      q.dest_lat = GetF64(p + 33);
      q.departure_time = GetI64(p + 41);
      q.deadline_ms = GetF64(p + 49);
      if (v2) {
        q.trace_id = GetU64(p + 57);
        q.flags = p[65];
      }
      return Message{q};
    }
    case MsgType::kQueryResponse:
    case MsgType::kQueryResponseV2: {
      bool v2 = static_cast<MsgType>(payload[0]) == MsgType::kQueryResponseV2;
      size_t fixed = v2 ? kQueryResponseV2FixedSize : kQueryResponseFixedSize;
      if (payload.size() < fixed) {
        return Status::InvalidArgument("protocol: short query response");
      }
      QueryResponse r;
      r.id = GetU64(p + 1);
      r.code = p[9];
      r.quality = p[10];
      r.minutes = GetF64(p + 11);
      size_t off = 19;
      if (v2) {
        r.has_breakdown = true;
        r.breakdown.queue_us = GetF64(p + off);
        r.breakdown.batch_wait_us = GetF64(p + off + 8);
        r.breakdown.stage1_us = GetF64(p + off + 16);
        r.breakdown.stage2_us = GetF64(p + off + 24);
        r.breakdown.serialize_us = GetF64(p + off + 32);
        off += 40;
      }
      uint16_t msg_len = GetU16(p + off);
      if (payload.size() != fixed + msg_len) {
        return Status::InvalidArgument(
            "protocol: query response message length mismatch");
      }
      r.message.assign(reinterpret_cast<const char*>(p) + fixed, msg_len);
      return Message{r};
    }
    case MsgType::kPing: {
      if (payload.size() != kPingSize) {
        return Status::InvalidArgument("protocol: bad ping payload size");
      }
      return Message{Ping{GetU64(p + 1)}};
    }
    case MsgType::kPong: {
      if (payload.size() != kPingSize) {
        return Status::InvalidArgument("protocol: bad pong payload size");
      }
      return Message{Pong{GetU64(p + 1)}};
    }
    default:
      return Status::InvalidArgument("protocol: unknown message type " +
                                     std::to_string(payload[0]));
  }
}

std::vector<uint8_t> EncodeFrame(const Message& msg) {
  std::vector<uint8_t> payload = EncodePayload(msg);
  std::vector<uint8_t> frame;
  frame.reserve(4 + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<uint8_t>(len >> (8 * i)));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

Status FrameReader::Feed(const uint8_t* data, size_t n) {
  if (!status_.ok()) return status_;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
  // Validate the next length prefix eagerly: a hostile length is reported
  // at Feed time, before any payload bytes arrive.
  if (buffered() >= 4) {
    const uint8_t* p = buf_.data() + pos_;
    uint32_t len = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
                   (static_cast<uint32_t>(p[2]) << 16) |
                   (static_cast<uint32_t>(p[3]) << 24);
    if (len > max_payload_) {
      status_ = Status::InvalidArgument(
          "protocol: frame payload length " + std::to_string(len) +
          " exceeds limit " + std::to_string(max_payload_));
    }
  }
  return status_;
}

bool FrameReader::Next(std::vector<uint8_t>* payload) {
  if (!status_.ok() || buffered() < 4) return false;
  const uint8_t* p = buf_.data() + pos_;
  uint32_t len = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
                 (static_cast<uint32_t>(p[2]) << 16) |
                 (static_cast<uint32_t>(p[3]) << 24);
  if (len > max_payload_) {  // poisoned between Feed calls (defensive)
    status_ = Status::InvalidArgument("protocol: oversized frame");
    return false;
  }
  if (buffered() < 4 + static_cast<size_t>(len)) return false;
  payload->assign(p + 4, p + 4 + len);
  pos_ += 4 + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

Status WriteFrame(int fd, const Message& msg) {
  std::vector<uint8_t> frame = EncodeFrame(msg);
  size_t n = frame.size();
  switch (DOT_FAILPOINT("serve.write_frame")) {
    case fail::Action::kError:
      return Status::IOError("injected frame write failure");
    case fail::Action::kTruncate:
      n = n / 2;  // torn write: half the frame reaches the wire
      break;
    default:
      break;
  }
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a process kill.
    ssize_t w = ::send(fd, frame.data() + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace dot
