// Socket serving front-end (DESIGN.md §5g): a poll()-based TCP server
// that speaks the length-prefixed binary protocol of serve/protocol.h and
// feeds every query through the deadline-aware DynamicBatcher into a
// batched oracle backend.
//
// Threading model: one IO thread owns every socket (accept, read, write —
// no per-connection threads, connections scale with fd limits, not
// threads); the batcher's worker thread runs the backend and hands
// finished responses back through a self-pipe that wakes the poll loop.
// Overload rejections and pings are answered inline on the IO thread.
//
// Shutdown() drains gracefully: stop accepting, let the batcher answer
// everything queued, flush every connection's outbox, then close.
//
// Config knobs are also readable from the environment (DOT_SERVE_*, see
// ServerConfig::FromEnv) so the standalone server and benches can be tuned
// without recompiling.

#ifndef DOT_SERVE_SERVER_H_
#define DOT_SERVE_SERVER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/ring.h"
#include "serve/batcher.h"
#include "serve/protocol.h"

namespace dot {
namespace serve {

struct ServerConfig {
  /// Listen address. Port 0 binds an ephemeral port (see Server::port()).
  std::string host = "127.0.0.1";
  int port = 0;
  /// Listen backlog and the frame-size cap enforced per connection.
  int backlog = 64;
  uint32_t max_frame_payload = kMaxFramePayload;
  /// A request slower than this lands in the slow-query ring (/slowz)
  /// even when it was served at full quality.
  double slow_request_ms = 100.0;
  /// Batcher policy (wave formation + admission control).
  BatcherConfig batcher;

  /// Reads DOT_SERVE_PORT, DOT_SERVE_MAX_BATCH, DOT_SERVE_MAX_WAVE_AGE_MS,
  /// DOT_SERVE_QUEUE_CAP, DOT_SERVE_QUEUE_BUDGET_MS and DOT_SERVE_SLOW_MS
  /// over the defaults. Unset / unparsable variables keep the default.
  static ServerConfig FromEnv();
};

/// \brief Point-in-time server counters (IO-thread state).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_open = 0;
  int64_t requests = 0;           ///< query frames decoded
  int64_t responses = 0;          ///< query responses written out
  int64_t overload_rejected = 0;  ///< answered with kResourceExhausted
  int64_t protocol_errors = 0;    ///< malformed frames / unexpected types
  int64_t pings = 0;
};

/// \brief TCP front-end over a batched oracle backend.
class Server {
 public:
  /// `backend` is normally OracleBackend(service); any BatchBackend works
  /// (the stress tests serve synthetic answers without a model).
  Server(BatchBackend backend, ServerConfig config = {});
  ~Server();  // implies Shutdown()

  /// Binds, listens, and starts the IO + batcher threads. Fails with
  /// IOError if the address cannot be bound.
  Status Start();

  /// Graceful drain: stop accepting, answer everything admitted, flush all
  /// outboxes, close every socket, stop the threads. Idempotent.
  void Shutdown();

  /// The bound port (resolved after Start() when config.port was 0).
  int port() const { return port_; }
  ServerStats stats() const;
  const BatcherStats batcher_stats() const { return batcher_->stats(); }

  /// Recent slow / degraded / failed requests (drives the /slowz endpoint).
  obs::SlowQueryRing* slow_ring() { return &slow_ring_; }

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::vector<uint8_t> outbox;  // unsent bytes (appended under out_mu_)
    size_t sent = 0;              // prefix of outbox already written
  };

  void IoLoop();
  /// Accepts until EAGAIN. IO thread only.
  void AcceptReady();
  /// Drains readable bytes and dispatches complete frames. Returns false
  /// when the connection must be closed. IO thread only.
  bool ReadReady(int64_t conn_id, Conn* conn);
  /// Writes buffered outbox bytes until EAGAIN. False = close. IO thread.
  bool WriteReady(Conn* conn);
  void CloseConn(int64_t conn_id);
  /// Appends an encoded frame to a connection's outbox and wakes the poll
  /// loop. Safe from any thread; drops silently if the connection died.
  void QueueResponse(int64_t conn_id, const Message& msg);
  void WakeIo();

  BatchBackend backend_;
  ServerConfig config_;

  struct Metrics {
    Metrics();
    obs::Counter* connections;      // dot_server_connections_total
    obs::Counter* requests;         // dot_server_requests_total
    obs::Counter* responses;        // dot_server_responses_total
    obs::Counter* protocol_errors;  // dot_server_protocol_errors_total
    obs::Counter* pings;            // dot_server_pings_total
    obs::Gauge* open_connections;   // dot_server_open_connections
    obs::Gauge* inflight;           // dot_server_inflight (admitted, unanswered)
    obs::Histogram* request_latency_us;  // dot_server_request_latency_us
    // Rolling 60s windows: live SLO percentiles for /varz and /metrics.
    obs::RollingHistogram* win_request_latency;
    obs::RollingHistogram* win_queue;
    obs::RollingHistogram* win_batch_wait;
    obs::RollingHistogram* win_stage1;
    obs::RollingHistogram* win_stage2;
    obs::RollingHistogram* win_serialize;
  };
  Metrics metrics_;
  obs::SlowQueryRing slow_ring_{256};

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::unique_ptr<DynamicBatcher> batcher_;
  std::thread io_thread_;

  // Connection table and outboxes are shared between the IO thread and the
  // batcher callback; one mutex guards both plus the stats.
  mutable std::mutex mu_;
  std::map<int64_t, Conn> conns_;
  int64_t next_conn_id_ = 1;
  ServerStats stats_;
  bool stopping_ = false;    // stop accepting; drain
  bool drain_done_ = false;  // batcher fully drained; flush outboxes + exit
  bool started_ = false;
  bool shut_down_ = false;   // teardown finished; Shutdown is a no-op now
  // Serializes the whole teardown (join + fd close): concurrent Shutdown
  // callers queue here instead of racing WakeIo against the pipe close.
  std::mutex shutdown_mu_;
};

}  // namespace serve
}  // namespace dot

#endif  // DOT_SERVE_SERVER_H_
