// GEMM kernel engine: naive reference kernels, the blocked/packed engine,
// and the SIMD microkernels. See gemm_kernel.h for the contract.
//
// Blocked engine layout (BLIS-style):
//
//   for jc (NC columns):                      L3-resident B slice
//     for pc (KC of k):                       fixed k-block order
//       pack B[pc:pc+KC, jc:jc+NC] -> Bp     NR-wide panels, parallel
//       for ic (MC rows):                     parallel across the pool
//         pack A[ic:ic+MC, pc:pc+KC] -> Ap   MR-tall panels, per task
//         for jr, ir: microkernel(Ap, Bp) -> C tile
//
// The microkernel accumulates an MR x NR tile in registers over one KC
// block and writes C once per block (store on the first block of a
// non-accumulating product, add afterwards). Work is distributed only
// across disjoint output regions (B panels while packing, MC row blocks
// while computing) and the k order is fixed, so results are bitwise
// identical for every thread count — the batched-serving equivalence and
// determinism suites rely on this.
//
// Packed panels are 64-byte aligned so the 32/64-byte SIMD loads never
// split a cache line (measured ~2x on the 256^3 bench shape).

#include "tensor/gemm_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/profile.h"
#include "util/thread_pool.h"

#if defined(__AVX2__) && defined(__FMA__)
#define DOT_GEMM_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__AVX512F__) && defined(__FMA__)
#define DOT_GEMM_HAVE_AVX512 1
#endif

namespace dot {
namespace gemm {

namespace {

// ---- Shared helpers ---------------------------------------------------------

constexpr int64_t kKC = 256;   // k-block: one packed B panel column in L1
constexpr int64_t kMCBase = 128;   // row block (rounded up to MR)
constexpr int64_t kNCBase = 2048;  // column block (rounded up to NR)
constexpr int64_t kMaxMR = 8;
constexpr int64_t kMaxNR = 32;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }
int64_t RoundUp(int64_t a, int64_t b) { return CeilDiv(a, b) * b; }

/// 64-byte-aligned scratch buffer (cache-line aligned packed panels).
struct AlignedBuffer {
  explicit AlignedBuffer(int64_t floats) {
    void* p = nullptr;
    if (posix_memalign(&p, 64, static_cast<size_t>(floats) * sizeof(float)) != 0) {
      p = nullptr;
    }
    data = static_cast<float*>(p);
  }
  ~AlignedBuffer() { std::free(data); }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  float* data = nullptr;
};

// Rows above which a naive GEMM is split across the global thread pool.
constexpr int64_t kParallelRowThreshold = 64;

template <typename RowFn>
void ForEachRow(int64_t m, RowFn fn) {
  if (m >= kParallelRowThreshold && ThreadPool::Global()->num_threads() > 1) {
    ParallelFor(
        ThreadPool::Global(), m,
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) fn(i);
        },
        /*min_chunk=*/8);
  } else {
    for (int64_t i = 0; i < m; ++i) fn(i);
  }
}

// ---- Naive reference kernels ------------------------------------------------
// The original triple-loop kernels, unchanged: they are the oracle the
// differential harness compares every other kernel against.

void NaiveNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate) {
  // Short-and-wide GEMMs — the batched-conv shape [OC, CKK] x [CKK, B*OHW]
  // with few rows but a long streaming dimension — parallelize over column
  // blocks instead of rows. Every output element keeps the same
  // k-accumulation order as the serial kernel, so the result is bitwise
  // identical for any thread count or block partitioning.
  constexpr int64_t kParallelColThreshold = 2048;
  if (m < kParallelRowThreshold && n >= kParallelColThreshold &&
      ThreadPool::Global()->num_threads() > 1) {
    ParallelFor(
        ThreadPool::Global(), n,
        [&](int64_t jb, int64_t je) {
          for (int64_t i = 0; i < m; ++i) {
            float* crow = c + i * n;
            if (!accumulate) std::fill(crow + jb, crow + je, 0.0f);
            const float* arow = a + i * k;
            for (int64_t kk = 0; kk < k; ++kk) {
              float av = arow[kk];
              if (av == 0.0f) continue;
              const float* brow = b + kk * n;
              for (int64_t j = jb; j < je; ++j) crow[j] += av * brow[j];
            }
          }
        },
        /*min_chunk=*/512);
    return;
  }
  // i-k-j loop order: unit-stride access on B and C.
  ForEachRow(m, [&](int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    const float* arow = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

void NaiveTA(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate) {
  // A is [k, m]; C[i, j] = sum_kk A[kk, i] * B[kk, j].
  ForEachRow(m, [&](int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = a[kk * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

void NaiveTB(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate) {
  // B is [n, k]; C[i, j] = dot(A[i, :], B[j, :]).
  ForEachRow(m, [&](int64_t i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  });
}

void RunNaive(Layout layout, const float* a, const float* b, float* c,
              int64_t m, int64_t k, int64_t n, bool accumulate) {
  switch (layout) {
    case Layout::kNN:
      NaiveNN(a, b, c, m, k, n, accumulate);
      return;
    case Layout::kTA:
      NaiveTA(a, b, c, m, k, n, accumulate);
      return;
    case Layout::kTB:
      NaiveTB(a, b, c, m, k, n, accumulate);
      return;
  }
}

// ---- Packing ----------------------------------------------------------------
// Ap panel layout: MR-tall row panels, element (p, r) at ap[p * MR + r].
// Bp panel layout: NR-wide column panels, element (p, c) at bp[p * NR + c].
// Short panels are zero-padded so the microkernel never branches on the
// edge (padded lanes multiply by zero and are dropped at writeback).

/// Packs rows [i0, i0+rows) x k-range [p0, p0+kc) of op(A) into one panel.
void PackAPanel(const float* a, Layout layout, int64_t m, int64_t k,
                int64_t i0, int64_t rows, int64_t p0, int64_t kc, int64_t mr,
                float* dst) {
  if (layout == Layout::kTA) {
    // A is [k, m]: a row of the panel is contiguous in memory.
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = a + (p0 + p) * m + i0;
      float* d = dst + p * mr;
      for (int64_t r = 0; r < rows; ++r) d[r] = src[r];
      for (int64_t r = rows; r < mr; ++r) d[r] = 0.0f;
    }
    return;
  }
  // A is [m, k] (kNN and kTB): strided transpose into the panel.
  for (int64_t p = 0; p < kc; ++p) {
    float* d = dst + p * mr;
    for (int64_t r = 0; r < rows; ++r) d[r] = a[(i0 + r) * k + p0 + p];
    for (int64_t r = rows; r < mr; ++r) d[r] = 0.0f;
  }
}

/// Packs cols [j0, j0+cols) x k-range [p0, p0+kc) of op(B) into one panel.
void PackBPanel(const float* b, Layout layout, int64_t k, int64_t n,
                int64_t p0, int64_t kc, int64_t j0, int64_t cols, int64_t nr,
                float* dst) {
  if (layout == Layout::kTB) {
    // B is [n, k]: one packed column is contiguous in memory.
    for (int64_t p = 0; p < kc; ++p) {
      float* d = dst + p * nr;
      for (int64_t cc = cols; cc < nr; ++cc) d[cc] = 0.0f;
    }
    for (int64_t cc = 0; cc < cols; ++cc) {
      const float* src = b + (j0 + cc) * k + p0;
      for (int64_t p = 0; p < kc; ++p) dst[p * nr + cc] = src[p];
    }
    return;
  }
  // B is [k, n] (kNN and kTA): a packed row is a contiguous slice.
  const float* src = b + p0 * n + j0;
  if (cols == nr) {
    for (int64_t p = 0; p < kc; ++p) {
      std::memcpy(dst + p * nr, src + p * n,
                  static_cast<size_t>(nr) * sizeof(float));
    }
    return;
  }
  for (int64_t p = 0; p < kc; ++p) {
    float* d = dst + p * nr;
    for (int64_t cc = 0; cc < cols; ++cc) d[cc] = src[p * n + cc];
    for (int64_t cc = cols; cc < nr; ++cc) d[cc] = 0.0f;
  }
}

// ---- Microkernels -----------------------------------------------------------
// Signature: accumulate op(A)-panel x op(B)-panel over one KC block into the
// MR x NR tile at c (row stride ldc). `first` overwrites the tile (beta=0),
// otherwise the tile is added to (beta=1).

struct MicroKernel {
  int64_t mr;
  int64_t nr;
  void (*fn)(int64_t kc, const float* ap, const float* bp, float* c,
             int64_t ldc, bool first);
};

/// Portable 8x8 register tile. The local accumulator has a fixed 64-float
/// footprint the compiler keeps in vector registers; with autovectorization
/// each row is one or two FMA lanes wide.
void MicroScalar8x8(int64_t kc, const float* __restrict__ ap,
                    const float* __restrict__ bp, float* __restrict__ c,
                    int64_t ldc, bool first) {
  float acc[8][8] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * 8;
    const float* b = bp + p * 8;
    for (int r = 0; r < 8; ++r) {
      float av = a[r];
      for (int j = 0; j < 8; ++j) acc[r][j] += av * b[j];
    }
  }
  if (first) {
    for (int r = 0; r < 8; ++r)
      for (int j = 0; j < 8; ++j) c[r * ldc + j] = acc[r][j];
  } else {
    for (int r = 0; r < 8; ++r)
      for (int j = 0; j < 8; ++j) c[r * ldc + j] += acc[r][j];
  }
}

MicroKernel ScalarMicro() { return {8, 8, &MicroScalar8x8}; }

#if defined(DOT_GEMM_HAVE_AVX2)
/// 8x8 AVX2/FMA tile: one ymm accumulator per row (8 of 16 registers),
/// one B load and eight A broadcasts per k step.
void MicroAvx2_8x8(int64_t kc, const float* __restrict__ ap,
                   const float* __restrict__ bp, float* __restrict__ c,
                   int64_t ldc, bool first) {
  __m256 c0, c1, c2, c3, c4, c5, c6, c7;
  if (first) {
    c0 = c1 = c2 = c3 = c4 = c5 = c6 = c7 = _mm256_setzero_ps();
  } else {
    c0 = _mm256_loadu_ps(c + 0 * ldc);
    c1 = _mm256_loadu_ps(c + 1 * ldc);
    c2 = _mm256_loadu_ps(c + 2 * ldc);
    c3 = _mm256_loadu_ps(c + 3 * ldc);
    c4 = _mm256_loadu_ps(c + 4 * ldc);
    c5 = _mm256_loadu_ps(c + 5 * ldc);
    c6 = _mm256_loadu_ps(c + 6 * ldc);
    c7 = _mm256_loadu_ps(c + 7 * ldc);
  }
#define DOT_AVX2_STEP(pp)                                          \
  do {                                                             \
    __m256 bv = _mm256_loadu_ps(bp + (pp) * 8);                    \
    const float* a = ap + (pp) * 8;                                \
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 0), bv, c0);      \
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 1), bv, c1);      \
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 2), bv, c2);      \
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 3), bv, c3);      \
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 4), bv, c4);      \
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 5), bv, c5);      \
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 6), bv, c6);      \
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 7), bv, c7);      \
  } while (0)
  int64_t p = 0;
  for (; p + 2 <= kc; p += 2) {
    DOT_AVX2_STEP(p);
    DOT_AVX2_STEP(p + 1);
  }
  for (; p < kc; ++p) DOT_AVX2_STEP(p);
#undef DOT_AVX2_STEP
  _mm256_storeu_ps(c + 0 * ldc, c0);
  _mm256_storeu_ps(c + 1 * ldc, c1);
  _mm256_storeu_ps(c + 2 * ldc, c2);
  _mm256_storeu_ps(c + 3 * ldc, c3);
  _mm256_storeu_ps(c + 4 * ldc, c4);
  _mm256_storeu_ps(c + 5 * ldc, c5);
  _mm256_storeu_ps(c + 6 * ldc, c6);
  _mm256_storeu_ps(c + 7 * ldc, c7);
}
#endif  // DOT_GEMM_HAVE_AVX2

#if defined(DOT_GEMM_HAVE_AVX512)
/// 8x32 AVX-512 tile: 16 zmm accumulators (individually named — array
/// indexing makes gcc spill to the stack), two B loads and eight A
/// broadcasts per k step. Reaches ~80% of the single-core FMA peak on the
/// 256^3 bench shape.
void MicroAvx512_8x32(int64_t kc, const float* __restrict__ ap,
                      const float* __restrict__ bp, float* __restrict__ c,
                      int64_t ldc, bool first) {
  __m512 c00, c01, c10, c11, c20, c21, c30, c31;
  __m512 c40, c41, c50, c51, c60, c61, c70, c71;
  if (first) {
    c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = _mm512_setzero_ps();
    c40 = c41 = c50 = c51 = c60 = c61 = c70 = c71 = _mm512_setzero_ps();
  } else {
    c00 = _mm512_loadu_ps(c + 0 * ldc);
    c01 = _mm512_loadu_ps(c + 0 * ldc + 16);
    c10 = _mm512_loadu_ps(c + 1 * ldc);
    c11 = _mm512_loadu_ps(c + 1 * ldc + 16);
    c20 = _mm512_loadu_ps(c + 2 * ldc);
    c21 = _mm512_loadu_ps(c + 2 * ldc + 16);
    c30 = _mm512_loadu_ps(c + 3 * ldc);
    c31 = _mm512_loadu_ps(c + 3 * ldc + 16);
    c40 = _mm512_loadu_ps(c + 4 * ldc);
    c41 = _mm512_loadu_ps(c + 4 * ldc + 16);
    c50 = _mm512_loadu_ps(c + 5 * ldc);
    c51 = _mm512_loadu_ps(c + 5 * ldc + 16);
    c60 = _mm512_loadu_ps(c + 6 * ldc);
    c61 = _mm512_loadu_ps(c + 6 * ldc + 16);
    c70 = _mm512_loadu_ps(c + 7 * ldc);
    c71 = _mm512_loadu_ps(c + 7 * ldc + 16);
  }
#define DOT_AVX512_ROW(r, a, b0, b1)                               \
  do {                                                             \
    __m512 av = _mm512_set1_ps((a)[r]);                            \
    c##r##0 = _mm512_fmadd_ps(av, b0, c##r##0);                    \
    c##r##1 = _mm512_fmadd_ps(av, b1, c##r##1);                    \
  } while (0)
#define DOT_AVX512_STEP(pp)                                        \
  do {                                                             \
    __m512 b0 = _mm512_loadu_ps(bp + (pp) * 32);                   \
    __m512 b1 = _mm512_loadu_ps(bp + (pp) * 32 + 16);              \
    const float* a = ap + (pp) * 8;                                \
    DOT_AVX512_ROW(0, a, b0, b1);                                  \
    DOT_AVX512_ROW(1, a, b0, b1);                                  \
    DOT_AVX512_ROW(2, a, b0, b1);                                  \
    DOT_AVX512_ROW(3, a, b0, b1);                                  \
    DOT_AVX512_ROW(4, a, b0, b1);                                  \
    DOT_AVX512_ROW(5, a, b0, b1);                                  \
    DOT_AVX512_ROW(6, a, b0, b1);                                  \
    DOT_AVX512_ROW(7, a, b0, b1);                                  \
  } while (0)
  int64_t p = 0;
  for (; p + 2 <= kc; p += 2) {
    DOT_AVX512_STEP(p);
    DOT_AVX512_STEP(p + 1);
  }
  for (; p < kc; ++p) DOT_AVX512_STEP(p);
#undef DOT_AVX512_STEP
#undef DOT_AVX512_ROW
  _mm512_storeu_ps(c + 0 * ldc, c00);
  _mm512_storeu_ps(c + 0 * ldc + 16, c01);
  _mm512_storeu_ps(c + 1 * ldc, c10);
  _mm512_storeu_ps(c + 1 * ldc + 16, c11);
  _mm512_storeu_ps(c + 2 * ldc, c20);
  _mm512_storeu_ps(c + 2 * ldc + 16, c21);
  _mm512_storeu_ps(c + 3 * ldc, c30);
  _mm512_storeu_ps(c + 3 * ldc + 16, c31);
  _mm512_storeu_ps(c + 4 * ldc, c40);
  _mm512_storeu_ps(c + 4 * ldc + 16, c41);
  _mm512_storeu_ps(c + 5 * ldc, c50);
  _mm512_storeu_ps(c + 5 * ldc + 16, c51);
  _mm512_storeu_ps(c + 6 * ldc, c60);
  _mm512_storeu_ps(c + 6 * ldc + 16, c61);
  _mm512_storeu_ps(c + 7 * ldc, c70);
  _mm512_storeu_ps(c + 7 * ldc + 16, c71);
}
#endif  // DOT_GEMM_HAVE_AVX512

enum class SimdLevel { kNone, kAvx2, kAvx512 };

SimdLevel DetectSimdLevel() {
#if defined(__GNUC__) || defined(__clang__)
#if defined(DOT_GEMM_HAVE_AVX512)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx512;
  }
#endif
#if defined(DOT_GEMM_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
#endif
  return SimdLevel::kNone;
}

SimdLevel CachedSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

bool SimdMicroAvailable() { return CachedSimdLevel() != SimdLevel::kNone; }

MicroKernel SimdMicro() {
#if defined(DOT_GEMM_HAVE_AVX512)
  if (CachedSimdLevel() == SimdLevel::kAvx512) return {8, 32, &MicroAvx512_8x32};
#endif
#if defined(DOT_GEMM_HAVE_AVX2)
  if (CachedSimdLevel() == SimdLevel::kAvx2) return {8, 8, &MicroAvx2_8x8};
#endif
  return ScalarMicro();  // unreachable when callers check SimdMicroAvailable()
}

// ---- Blocked engine ---------------------------------------------------------

void RunBlockedEngine(Layout layout, const float* a, const float* b, float* c,
                      int64_t m, int64_t k, int64_t n, bool accumulate,
                      const MicroKernel& uk) {
  const int64_t mr = uk.mr, nr = uk.nr;
  const int64_t mc_max = RoundUp(kMCBase, mr);
  const int64_t nc_max = RoundUp(kNCBase, nr);
  ThreadPool* pool = ThreadPool::Global();
  AlignedBuffer bpack(kKC * nc_max);
  for (int64_t jc = 0; jc < n; jc += nc_max) {
    const int64_t nc = std::min(nc_max, n - jc);
    const int64_t n_panels = CeilDiv(nc, nr);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      const bool first = (pc == 0) && !accumulate;
      // Pack the B block. Panels are disjoint writes, so the partitioning
      // cannot affect the packed bytes.
      ParallelFor(
          pool, n_panels,
          [&](int64_t pb, int64_t pe) {
            for (int64_t pj = pb; pj < pe; ++pj) {
              PackBPanel(b, layout, k, n, pc, kc, jc + pj * nr,
                         std::min(nr, nc - pj * nr), nr,
                         bpack.data + pj * nr * kc);
            }
          },
          /*min_chunk=*/4);
      // Row blocks own disjoint C rows; each packs its own A panels and
      // runs the microkernel grid with the fixed k order.
      const int64_t m_blocks = CeilDiv(m, mc_max);
      ParallelFor(
          pool, m_blocks,
          [&](int64_t bb, int64_t be) {
            AlignedBuffer apack(mc_max * kKC);
            alignas(64) float acc[kMaxMR * kMaxNR];
            for (int64_t ib = bb; ib < be; ++ib) {
              const int64_t ic = ib * mc_max;
              const int64_t mc = std::min(mc_max, m - ic);
              const int64_t m_panels = CeilDiv(mc, mr);
              for (int64_t pi = 0; pi < m_panels; ++pi) {
                PackAPanel(a, layout, m, k, ic + pi * mr,
                           std::min(mr, mc - pi * mr), pc, kc, mr,
                           apack.data + pi * mr * kc);
              }
              for (int64_t pj = 0; pj < n_panels; ++pj) {
                const int64_t nrr = std::min(nr, nc - pj * nr);
                const float* bp = bpack.data + pj * nr * kc;
                for (int64_t pi = 0; pi < m_panels; ++pi) {
                  const int64_t mrr = std::min(mr, mc - pi * mr);
                  const float* ap = apack.data + pi * mr * kc;
                  float* cdst = c + (ic + pi * mr) * n + jc + pj * nr;
                  if (mrr == mr && nrr == nr) {
                    uk.fn(kc, ap, bp, cdst, n, first);
                    continue;
                  }
                  // Edge tile: run the microkernel on a padded scratch tile
                  // seeded with the live C values, so each element sees
                  // exactly the full-tile arithmetic. Merging a zero-based
                  // partial instead would round differently on later KC
                  // blocks, and whether an element sits in an edge tile
                  // depends on n — the batched-vs-single conv bitwise
                  // equivalence would break.
                  std::memset(acc, 0,
                              static_cast<size_t>(mr * nr) * sizeof(float));
                  if (!first) {
                    for (int64_t r = 0; r < mrr; ++r)
                      for (int64_t j = 0; j < nrr; ++j)
                        acc[r * nr + j] = cdst[r * n + j];
                  }
                  uk.fn(kc, ap, bp, acc, nr, first);
                  for (int64_t r = 0; r < mrr; ++r)
                    for (int64_t j = 0; j < nrr; ++j)
                      cdst[r * n + j] = acc[r * nr + j];
                }
              }
            }
          },
          /*min_chunk=*/1);
    }
  }
}

// ---- Kernel selection -------------------------------------------------------

std::atomic<int> g_active_kernel{-1};

Kernel ResolveFromEnv() {
  Kernel kernel = SimdAvailable() ? Kernel::kSimd : Kernel::kBlocked;
  if (const char* env = std::getenv("DOT_GEMM_KERNEL")) {
    Kernel parsed;
    if (ParseKernelName(env, &parsed)) {
      kernel = parsed;
      if (kernel == Kernel::kSimd && !SimdAvailable()) {
        kernel = Kernel::kBlocked;  // graceful fallback, never an error
      }
    } else if (env[0] != '\0') {
      std::fprintf(stderr,
                   "[dot] unknown DOT_GEMM_KERNEL '%s' "
                   "(want naive|blocked|simd); using %s\n",
                   env, KernelName(kernel));
    }
  }
  return kernel;
}

}  // namespace

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kNaive:
      return "naive";
    case Kernel::kBlocked:
      return "blocked";
    case Kernel::kSimd:
      return "simd";
  }
  return "?";
}

bool ParseKernelName(const char* name, Kernel* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "naive") == 0) {
    *out = Kernel::kNaive;
  } else if (std::strcmp(name, "blocked") == 0) {
    *out = Kernel::kBlocked;
  } else if (std::strcmp(name, "simd") == 0) {
    *out = Kernel::kSimd;
  } else {
    return false;
  }
  return true;
}

bool SimdAvailable() { return SimdMicroAvailable(); }

Kernel ActiveKernel() {
  int v = g_active_kernel.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Kernel>(v);
  int resolved = static_cast<int>(ResolveFromEnv());
  int expected = -1;
  g_active_kernel.compare_exchange_strong(expected, resolved,
                                          std::memory_order_relaxed);
  return static_cast<Kernel>(g_active_kernel.load(std::memory_order_relaxed));
}

Kernel SetKernel(Kernel kernel) {
  if (kernel == Kernel::kSimd && !SimdAvailable()) kernel = Kernel::kBlocked;
  g_active_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
  return kernel;
}

void Run(Kernel kernel, Layout layout, const float* a, const float* b,
         float* c, int64_t m, int64_t k, int64_t n, bool accumulate) {
  // Degenerate products never touch the (possibly null) data pointers.
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) std::fill(c, c + m * n, 0.0f);
    return;
  }
  obs::OpTimer op_timer(obs::OpKind::kGemmKernel,
                        2.0 * static_cast<double>(m) *
                            static_cast<double>(k) * static_cast<double>(n));
  if (kernel == Kernel::kSimd && !SimdAvailable()) kernel = Kernel::kBlocked;
  switch (kernel) {
    case Kernel::kNaive:
      RunNaive(layout, a, b, c, m, k, n, accumulate);
      return;
    case Kernel::kBlocked:
      RunBlockedEngine(layout, a, b, c, m, k, n, accumulate, ScalarMicro());
      return;
    case Kernel::kSimd:
      RunBlockedEngine(layout, a, b, c, m, k, n, accumulate, SimdMicro());
      return;
  }
}

}  // namespace gemm
}  // namespace dot
