// GEMM kernel engine: naive reference kernels, the blocked/packed engine,
// and the SIMD microkernels. See gemm_kernel.h for the contract.
//
// Blocked engine layout (BLIS-style):
//
//   for jc (NC columns):                      L3-resident B slice
//     for pc (KC of k):                       fixed k-block order
//       pack B[pc:pc+KC, jc:jc+NC] -> Bp     NR-wide panels, parallel
//       for ic (MC rows):                     parallel across the pool
//         pack A[ic:ic+MC, pc:pc+KC] -> Ap   MR-tall panels, per task
//         for jr, ir: microkernel(Ap, Bp) -> C tile
//
// The microkernel accumulates an MR x NR tile in registers over one KC
// block and writes C once per block (store on the first block of a
// non-accumulating product, add afterwards). Work is distributed only
// across disjoint output regions (B panels while packing, MC row blocks
// while computing) and the k order is fixed, so results are bitwise
// identical for every thread count — the batched-serving equivalence and
// determinism suites rely on this.
//
// Packed panels are 64-byte aligned so the 32/64-byte SIMD loads never
// split a cache line (measured ~2x on the 256^3 bench shape).

#include "tensor/gemm_kernel.h"

#include <algorithm>
#include <atomic>
#include <cfloat>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "tensor/quantize.h"
#include "tensor/storage.h"
#include "util/thread_pool.h"

#if defined(__AVX2__) && defined(__FMA__)
#define DOT_GEMM_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__AVX512F__) && defined(__FMA__)
#define DOT_GEMM_HAVE_AVX512 1
#endif

namespace dot {
namespace gemm {

namespace {

// ---- Shared helpers ---------------------------------------------------------

constexpr int64_t kKC = 256;   // k-block: one packed B panel column in L1
constexpr int64_t kMCBase = 128;   // row block (rounded up to MR)
constexpr int64_t kNCBase = 2048;  // column block (rounded up to NR)
constexpr int64_t kMaxMR = 8;
constexpr int64_t kMaxNR = 32;

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }
int64_t RoundUp(int64_t a, int64_t b) { return CeilDiv(a, b) * b; }

/// 64-byte-aligned scratch buffer (cache-line aligned packed panels).
struct AlignedBuffer {
  explicit AlignedBuffer(int64_t floats) {
    void* p = nullptr;
    if (posix_memalign(&p, 64, static_cast<size_t>(floats) * sizeof(float)) != 0) {
      p = nullptr;
    }
    data = static_cast<float*>(p);
  }
  ~AlignedBuffer() { std::free(data); }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  float* data = nullptr;
};

// Rows above which a naive GEMM is split across the global thread pool.
constexpr int64_t kParallelRowThreshold = 64;

template <typename RowFn>
void ForEachRow(int64_t m, RowFn fn) {
  if (m >= kParallelRowThreshold && ThreadPool::Global()->num_threads() > 1) {
    ParallelFor(
        ThreadPool::Global(), m,
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) fn(i);
        },
        /*min_chunk=*/8);
  } else {
    for (int64_t i = 0; i < m; ++i) fn(i);
  }
}

// ---- Naive reference kernels ------------------------------------------------
// The original triple-loop kernels, unchanged: they are the oracle the
// differential harness compares every other kernel against.

void NaiveNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate) {
  // Short-and-wide GEMMs — the batched-conv shape [OC, CKK] x [CKK, B*OHW]
  // with few rows but a long streaming dimension — parallelize over column
  // blocks instead of rows. Every output element keeps the same
  // k-accumulation order as the serial kernel, so the result is bitwise
  // identical for any thread count or block partitioning.
  constexpr int64_t kParallelColThreshold = 2048;
  if (m < kParallelRowThreshold && n >= kParallelColThreshold &&
      ThreadPool::Global()->num_threads() > 1) {
    ParallelFor(
        ThreadPool::Global(), n,
        [&](int64_t jb, int64_t je) {
          for (int64_t i = 0; i < m; ++i) {
            float* crow = c + i * n;
            if (!accumulate) std::fill(crow + jb, crow + je, 0.0f);
            const float* arow = a + i * k;
            for (int64_t kk = 0; kk < k; ++kk) {
              float av = arow[kk];
              if (av == 0.0f) continue;
              const float* brow = b + kk * n;
              for (int64_t j = jb; j < je; ++j) crow[j] += av * brow[j];
            }
          }
        },
        /*min_chunk=*/512);
    return;
  }
  // i-k-j loop order: unit-stride access on B and C.
  ForEachRow(m, [&](int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    const float* arow = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

void NaiveTA(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate) {
  // A is [k, m]; C[i, j] = sum_kk A[kk, i] * B[kk, j].
  ForEachRow(m, [&](int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = a[kk * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

void NaiveTB(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate) {
  // B is [n, k]; C[i, j] = dot(A[i, :], B[j, :]).
  ForEachRow(m, [&](int64_t i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  });
}

void RunNaive(Layout layout, const float* a, const float* b, float* c,
              int64_t m, int64_t k, int64_t n, bool accumulate) {
  switch (layout) {
    case Layout::kNN:
      NaiveNN(a, b, c, m, k, n, accumulate);
      return;
    case Layout::kTA:
      NaiveTA(a, b, c, m, k, n, accumulate);
      return;
    case Layout::kTB:
      NaiveTB(a, b, c, m, k, n, accumulate);
      return;
  }
}

// ---- Packing ----------------------------------------------------------------
// Ap panel layout: MR-tall row panels, element (p, r) at ap[p * MR + r].
// Bp panel layout: NR-wide column panels, element (p, c) at bp[p * NR + c].
// Short panels are zero-padded so the microkernel never branches on the
// edge (padded lanes multiply by zero and are dropped at writeback).

/// Packs rows [i0, i0+rows) x k-range [p0, p0+kc) of op(A) into one panel.
void PackAPanel(const float* a, Layout layout, int64_t m, int64_t k,
                int64_t i0, int64_t rows, int64_t p0, int64_t kc, int64_t mr,
                float* dst) {
  if (layout == Layout::kTA) {
    // A is [k, m]: a row of the panel is contiguous in memory.
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = a + (p0 + p) * m + i0;
      float* d = dst + p * mr;
      for (int64_t r = 0; r < rows; ++r) d[r] = src[r];
      for (int64_t r = rows; r < mr; ++r) d[r] = 0.0f;
    }
    return;
  }
  // A is [m, k] (kNN and kTB): strided transpose into the panel.
  for (int64_t p = 0; p < kc; ++p) {
    float* d = dst + p * mr;
    for (int64_t r = 0; r < rows; ++r) d[r] = a[(i0 + r) * k + p0 + p];
    for (int64_t r = rows; r < mr; ++r) d[r] = 0.0f;
  }
}

/// Packs cols [j0, j0+cols) x k-range [p0, p0+kc) of op(B) into one panel.
void PackBPanel(const float* b, Layout layout, int64_t k, int64_t n,
                int64_t p0, int64_t kc, int64_t j0, int64_t cols, int64_t nr,
                float* dst) {
  if (layout == Layout::kTB) {
    // B is [n, k]: one packed column is contiguous in memory.
    for (int64_t p = 0; p < kc; ++p) {
      float* d = dst + p * nr;
      for (int64_t cc = cols; cc < nr; ++cc) d[cc] = 0.0f;
    }
    for (int64_t cc = 0; cc < cols; ++cc) {
      const float* src = b + (j0 + cc) * k + p0;
      for (int64_t p = 0; p < kc; ++p) dst[p * nr + cc] = src[p];
    }
    return;
  }
  // B is [k, n] (kNN and kTA): a packed row is a contiguous slice.
  const float* src = b + p0 * n + j0;
  if (cols == nr) {
    for (int64_t p = 0; p < kc; ++p) {
      std::memcpy(dst + p * nr, src + p * n,
                  static_cast<size_t>(nr) * sizeof(float));
    }
    return;
  }
  for (int64_t p = 0; p < kc; ++p) {
    float* d = dst + p * nr;
    for (int64_t cc = 0; cc < cols; ++cc) d[cc] = src[p * n + cc];
    for (int64_t cc = cols; cc < nr; ++cc) d[cc] = 0.0f;
  }
}

// ---- Microkernels -----------------------------------------------------------
// Signature: accumulate op(A)-panel x op(B)-panel over one KC block into the
// MR x NR tile at c (row stride ldc). `first` overwrites the tile (beta=0),
// otherwise the tile is added to (beta=1).

struct MicroKernel {
  int64_t mr;
  int64_t nr;
  void (*fn)(int64_t kc, const float* ap, const float* bp, float* c,
             int64_t ldc, bool first);
};

/// Portable 8x8 register tile. The local accumulator has a fixed 64-float
/// footprint the compiler keeps in vector registers; with autovectorization
/// each row is one or two FMA lanes wide.
void MicroScalar8x8(int64_t kc, const float* __restrict__ ap,
                    const float* __restrict__ bp, float* __restrict__ c,
                    int64_t ldc, bool first) {
  float acc[8][8] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * 8;
    const float* b = bp + p * 8;
    for (int r = 0; r < 8; ++r) {
      float av = a[r];
      for (int j = 0; j < 8; ++j) acc[r][j] += av * b[j];
    }
  }
  if (first) {
    for (int r = 0; r < 8; ++r)
      for (int j = 0; j < 8; ++j) c[r * ldc + j] = acc[r][j];
  } else {
    for (int r = 0; r < 8; ++r)
      for (int j = 0; j < 8; ++j) c[r * ldc + j] += acc[r][j];
  }
}

MicroKernel ScalarMicro() { return {8, 8, &MicroScalar8x8}; }

#if defined(DOT_GEMM_HAVE_AVX2)
/// 8x8 AVX2/FMA tile: one ymm accumulator per row (8 of 16 registers),
/// one B load and eight A broadcasts per k step.
void MicroAvx2_8x8(int64_t kc, const float* __restrict__ ap,
                   const float* __restrict__ bp, float* __restrict__ c,
                   int64_t ldc, bool first) {
  __m256 c0, c1, c2, c3, c4, c5, c6, c7;
  if (first) {
    c0 = c1 = c2 = c3 = c4 = c5 = c6 = c7 = _mm256_setzero_ps();
  } else {
    c0 = _mm256_loadu_ps(c + 0 * ldc);
    c1 = _mm256_loadu_ps(c + 1 * ldc);
    c2 = _mm256_loadu_ps(c + 2 * ldc);
    c3 = _mm256_loadu_ps(c + 3 * ldc);
    c4 = _mm256_loadu_ps(c + 4 * ldc);
    c5 = _mm256_loadu_ps(c + 5 * ldc);
    c6 = _mm256_loadu_ps(c + 6 * ldc);
    c7 = _mm256_loadu_ps(c + 7 * ldc);
  }
#define DOT_AVX2_STEP(pp)                                          \
  do {                                                             \
    __m256 bv = _mm256_loadu_ps(bp + (pp) * 8);                    \
    const float* a = ap + (pp) * 8;                                \
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 0), bv, c0);      \
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 1), bv, c1);      \
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 2), bv, c2);      \
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 3), bv, c3);      \
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 4), bv, c4);      \
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 5), bv, c5);      \
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 6), bv, c6);      \
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 7), bv, c7);      \
  } while (0)
  int64_t p = 0;
  for (; p + 2 <= kc; p += 2) {
    DOT_AVX2_STEP(p);
    DOT_AVX2_STEP(p + 1);
  }
  for (; p < kc; ++p) DOT_AVX2_STEP(p);
#undef DOT_AVX2_STEP
  _mm256_storeu_ps(c + 0 * ldc, c0);
  _mm256_storeu_ps(c + 1 * ldc, c1);
  _mm256_storeu_ps(c + 2 * ldc, c2);
  _mm256_storeu_ps(c + 3 * ldc, c3);
  _mm256_storeu_ps(c + 4 * ldc, c4);
  _mm256_storeu_ps(c + 5 * ldc, c5);
  _mm256_storeu_ps(c + 6 * ldc, c6);
  _mm256_storeu_ps(c + 7 * ldc, c7);
}
#endif  // DOT_GEMM_HAVE_AVX2

#if defined(DOT_GEMM_HAVE_AVX512)
/// 8x32 AVX-512 tile: 16 zmm accumulators (individually named — array
/// indexing makes gcc spill to the stack), two B loads and eight A
/// broadcasts per k step. Reaches ~80% of the single-core FMA peak on the
/// 256^3 bench shape.
void MicroAvx512_8x32(int64_t kc, const float* __restrict__ ap,
                      const float* __restrict__ bp, float* __restrict__ c,
                      int64_t ldc, bool first) {
  __m512 c00, c01, c10, c11, c20, c21, c30, c31;
  __m512 c40, c41, c50, c51, c60, c61, c70, c71;
  if (first) {
    c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = _mm512_setzero_ps();
    c40 = c41 = c50 = c51 = c60 = c61 = c70 = c71 = _mm512_setzero_ps();
  } else {
    c00 = _mm512_loadu_ps(c + 0 * ldc);
    c01 = _mm512_loadu_ps(c + 0 * ldc + 16);
    c10 = _mm512_loadu_ps(c + 1 * ldc);
    c11 = _mm512_loadu_ps(c + 1 * ldc + 16);
    c20 = _mm512_loadu_ps(c + 2 * ldc);
    c21 = _mm512_loadu_ps(c + 2 * ldc + 16);
    c30 = _mm512_loadu_ps(c + 3 * ldc);
    c31 = _mm512_loadu_ps(c + 3 * ldc + 16);
    c40 = _mm512_loadu_ps(c + 4 * ldc);
    c41 = _mm512_loadu_ps(c + 4 * ldc + 16);
    c50 = _mm512_loadu_ps(c + 5 * ldc);
    c51 = _mm512_loadu_ps(c + 5 * ldc + 16);
    c60 = _mm512_loadu_ps(c + 6 * ldc);
    c61 = _mm512_loadu_ps(c + 6 * ldc + 16);
    c70 = _mm512_loadu_ps(c + 7 * ldc);
    c71 = _mm512_loadu_ps(c + 7 * ldc + 16);
  }
#define DOT_AVX512_ROW(r, a, b0, b1)                               \
  do {                                                             \
    __m512 av = _mm512_set1_ps((a)[r]);                            \
    c##r##0 = _mm512_fmadd_ps(av, b0, c##r##0);                    \
    c##r##1 = _mm512_fmadd_ps(av, b1, c##r##1);                    \
  } while (0)
#define DOT_AVX512_STEP(pp)                                        \
  do {                                                             \
    __m512 b0 = _mm512_loadu_ps(bp + (pp) * 32);                   \
    __m512 b1 = _mm512_loadu_ps(bp + (pp) * 32 + 16);              \
    const float* a = ap + (pp) * 8;                                \
    DOT_AVX512_ROW(0, a, b0, b1);                                  \
    DOT_AVX512_ROW(1, a, b0, b1);                                  \
    DOT_AVX512_ROW(2, a, b0, b1);                                  \
    DOT_AVX512_ROW(3, a, b0, b1);                                  \
    DOT_AVX512_ROW(4, a, b0, b1);                                  \
    DOT_AVX512_ROW(5, a, b0, b1);                                  \
    DOT_AVX512_ROW(6, a, b0, b1);                                  \
    DOT_AVX512_ROW(7, a, b0, b1);                                  \
  } while (0)
  int64_t p = 0;
  for (; p + 2 <= kc; p += 2) {
    DOT_AVX512_STEP(p);
    DOT_AVX512_STEP(p + 1);
  }
  for (; p < kc; ++p) DOT_AVX512_STEP(p);
#undef DOT_AVX512_STEP
#undef DOT_AVX512_ROW
  _mm512_storeu_ps(c + 0 * ldc, c00);
  _mm512_storeu_ps(c + 0 * ldc + 16, c01);
  _mm512_storeu_ps(c + 1 * ldc, c10);
  _mm512_storeu_ps(c + 1 * ldc + 16, c11);
  _mm512_storeu_ps(c + 2 * ldc, c20);
  _mm512_storeu_ps(c + 2 * ldc + 16, c21);
  _mm512_storeu_ps(c + 3 * ldc, c30);
  _mm512_storeu_ps(c + 3 * ldc + 16, c31);
  _mm512_storeu_ps(c + 4 * ldc, c40);
  _mm512_storeu_ps(c + 4 * ldc + 16, c41);
  _mm512_storeu_ps(c + 5 * ldc, c50);
  _mm512_storeu_ps(c + 5 * ldc + 16, c51);
  _mm512_storeu_ps(c + 6 * ldc, c60);
  _mm512_storeu_ps(c + 6 * ldc + 16, c61);
  _mm512_storeu_ps(c + 7 * ldc, c70);
  _mm512_storeu_ps(c + 7 * ldc + 16, c71);
}
#endif  // DOT_GEMM_HAVE_AVX512

enum class SimdLevel { kNone, kAvx2, kAvx512 };

SimdLevel DetectSimdLevel() {
#if defined(__GNUC__) || defined(__clang__)
#if defined(DOT_GEMM_HAVE_AVX512)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx512;
  }
#endif
#if defined(DOT_GEMM_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
#endif
  return SimdLevel::kNone;
}

SimdLevel CachedSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

bool SimdMicroAvailable() { return CachedSimdLevel() != SimdLevel::kNone; }

MicroKernel SimdMicro() {
#if defined(DOT_GEMM_HAVE_AVX512)
  if (CachedSimdLevel() == SimdLevel::kAvx512) return {8, 32, &MicroAvx512_8x32};
#endif
#if defined(DOT_GEMM_HAVE_AVX2)
  if (CachedSimdLevel() == SimdLevel::kAvx2) return {8, 8, &MicroAvx2_8x8};
#endif
  return ScalarMicro();  // unreachable when callers check SimdMicroAvailable()
}

// ---- Blocked engine ---------------------------------------------------------

void RunBlockedEngine(Layout layout, const float* a, const float* b, float* c,
                      int64_t m, int64_t k, int64_t n, bool accumulate,
                      const MicroKernel& uk) {
  const int64_t mr = uk.mr, nr = uk.nr;
  const int64_t mc_max = RoundUp(kMCBase, mr);
  const int64_t nc_max = RoundUp(kNCBase, nr);
  ThreadPool* pool = ThreadPool::Global();
  AlignedBuffer bpack(kKC * nc_max);
  for (int64_t jc = 0; jc < n; jc += nc_max) {
    const int64_t nc = std::min(nc_max, n - jc);
    const int64_t n_panels = CeilDiv(nc, nr);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      const bool first = (pc == 0) && !accumulate;
      // Pack the B block. Panels are disjoint writes, so the partitioning
      // cannot affect the packed bytes.
      ParallelFor(
          pool, n_panels,
          [&](int64_t pb, int64_t pe) {
            for (int64_t pj = pb; pj < pe; ++pj) {
              PackBPanel(b, layout, k, n, pc, kc, jc + pj * nr,
                         std::min(nr, nc - pj * nr), nr,
                         bpack.data + pj * nr * kc);
            }
          },
          /*min_chunk=*/4);
      // Row blocks own disjoint C rows; each packs its own A panels and
      // runs the microkernel grid with the fixed k order.
      const int64_t m_blocks = CeilDiv(m, mc_max);
      ParallelFor(
          pool, m_blocks,
          [&](int64_t bb, int64_t be) {
            AlignedBuffer apack(mc_max * kKC);
            alignas(64) float acc[kMaxMR * kMaxNR];
            for (int64_t ib = bb; ib < be; ++ib) {
              const int64_t ic = ib * mc_max;
              const int64_t mc = std::min(mc_max, m - ic);
              const int64_t m_panels = CeilDiv(mc, mr);
              for (int64_t pi = 0; pi < m_panels; ++pi) {
                PackAPanel(a, layout, m, k, ic + pi * mr,
                           std::min(mr, mc - pi * mr), pc, kc, mr,
                           apack.data + pi * mr * kc);
              }
              for (int64_t pj = 0; pj < n_panels; ++pj) {
                const int64_t nrr = std::min(nr, nc - pj * nr);
                const float* bp = bpack.data + pj * nr * kc;
                for (int64_t pi = 0; pi < m_panels; ++pi) {
                  const int64_t mrr = std::min(mr, mc - pi * mr);
                  const float* ap = apack.data + pi * mr * kc;
                  float* cdst = c + (ic + pi * mr) * n + jc + pj * nr;
                  if (mrr == mr && nrr == nr) {
                    uk.fn(kc, ap, bp, cdst, n, first);
                    continue;
                  }
                  // Edge tile: run the microkernel on a padded scratch tile
                  // seeded with the live C values, so each element sees
                  // exactly the full-tile arithmetic. Merging a zero-based
                  // partial instead would round differently on later KC
                  // blocks, and whether an element sits in an edge tile
                  // depends on n — the batched-vs-single conv bitwise
                  // equivalence would break.
                  std::memset(acc, 0,
                              static_cast<size_t>(mr * nr) * sizeof(float));
                  if (!first) {
                    for (int64_t r = 0; r < mrr; ++r)
                      for (int64_t j = 0; j < nrr; ++j)
                        acc[r * nr + j] = cdst[r * n + j];
                  }
                  uk.fn(kc, ap, bp, acc, nr, first);
                  for (int64_t r = 0; r < mrr; ++r)
                    for (int64_t j = 0; j < nrr; ++j)
                      cdst[r * n + j] = acc[r * nr + j];
                }
              }
            }
          },
          /*min_chunk=*/1);
    }
  }
}

// ---- Int8 quantized path ----------------------------------------------------
//
// C = dequant(op(A)_q * op(B)_q): symmetric per-channel int8 (quantize.h)
// with one scale per op(A) row and one per op(B) column, exact int32
// accumulation over the full k, and a single fp32 dequant multiply at the
// C write. Design consequences (DESIGN.md §5j):
//   - integer sums are association-free, so for a fixed precision the
//     result is bitwise identical across thread counts, across all three
//     kernels, and across batch composition (per-column activation scales
//     keep a column's quantization independent of where it lands in a
//     panel — the property the batch-position-invariance test pins);
//   - |acc| <= k * 127^2, so k <= kMaxQuantK guarantees no int32 overflow
//     and anything larger falls back to fp32 (counted, never wrong);
//   - non-finite operands refuse to quantize and fall back to fp32, the
//     same rejection contract the fp32 loss guard follows.

constexpr int64_t kQMR = 8;  // int8 microkernel tile: 8 rows x 8 columns
constexpr int64_t kQNR = 8;
// Largest k whose worst-case accumulator magnitude k * 127 * 127 still
// fits in int32 (133144 * 16129 = 2147479576 <= INT32_MAX).
constexpr int64_t kMaxQuantK = 133144;

struct QuantMetrics {
  obs::Counter* gemms;
  obs::Counter* fallback_nonfinite;
  obs::Counter* fallback_bigk;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_drops;
  obs::Gauge* cache_entries;
  obs::Gauge* cache_bytes;
};

QuantMetrics& GetQuantMetrics() {
  static QuantMetrics* m = [] {
    auto* qm = new QuantMetrics();
    auto& reg = obs::MetricsRegistry::Get();
    qm->gemms = reg.GetCounter("dot_gemm_quant_gemms_total");
    qm->fallback_nonfinite =
        reg.GetCounter("dot_gemm_quant_fallbacks_total", {{"reason", "nonfinite"}});
    qm->fallback_bigk =
        reg.GetCounter("dot_gemm_quant_fallbacks_total", {{"reason", "bigk"}});
    qm->cache_hits = reg.GetCounter("dot_gemm_quant_cache_hits_total");
    qm->cache_misses = reg.GetCounter("dot_gemm_quant_cache_misses_total");
    qm->cache_drops = reg.GetCounter("dot_gemm_quant_cache_drops_total");
    qm->cache_entries = reg.GetGauge("dot_gemm_quant_cache_entries");
    qm->cache_bytes = reg.GetGauge("dot_gemm_quant_cache_bytes");
    return qm;
  }();
  return *m;
}

// Pair-interleaved packed panels. One k-pair of an 8-lane tile stores its
// 16 values as [l0p0 l0p1 l1p0 l1p1 ... l7p0 l7p1] so a single
// _mm256_madd_epi16 accumulates both halves of the pair per lane; odd k is
// padded with one zero pair-half, short edge panels with zero lanes (zeros
// contribute nothing to integer sums, so padding never changes a result).
// A-panels pre-widen to int16 — the madd operand width — while B-panels
// stay int8 and widen in-register.
struct QuantPanelsA {
  int64_t m = 0, k = 0;
  Layout layout = Layout::kNN;
  const float* src = nullptr;   // packed-from pointer (cache validation)
  std::vector<float> scales;    // per op(A) row
  std::vector<int16_t> panels;  // CeilDiv(m,8) panels of RoundUp(k,2)*8
  int64_t bytes() const {
    return static_cast<int64_t>(scales.size() * sizeof(float) +
                                panels.size() * sizeof(int16_t));
  }
};

struct QuantPanelsB {
  int64_t k = 0, n = 0;
  Layout layout = Layout::kNN;
  const float* src = nullptr;
  std::vector<float> scales;   // per op(B) column
  std::vector<int8_t> panels;  // CeilDiv(n,8) panels of RoundUp(k,2)*8
  int64_t bytes() const {
    return static_cast<int64_t>(scales.size() * sizeof(float) +
                                panels.size() * sizeof(int8_t));
  }
};

// Contiguous quantization of `count` values with one scale. The AVX2 body
// is bitwise identical to the scalar tail: _mm256_cvtps_epi32 rounds
// nearest-even under the default MXCSR, exactly like lrintf, and the
// product v * inv is one float multiply on both paths. (The packers are
// the pack-time hot loop — a scalar lrintf per element would cost more
// than the int8 product itself at serving shapes.)
void QuantizeRun(const float* src, int64_t count, float inv, int8_t* dst) {
  int64_t i = 0;
#if defined(DOT_GEMM_HAVE_AVX2)
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i vmax = _mm256_set1_epi32(quant::kQuantMax);
  const __m256i vmin = _mm256_set1_epi32(-quant::kQuantMax);
  for (; i + 8 <= count; i += 8) {
    __m256i q =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(src + i), vinv));
    q = _mm256_min_epi32(q, vmax);
    q = _mm256_max_epi32(q, vmin);
    __m128i w = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                _mm256_extracti128_si256(q, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i),
                     _mm_packs_epi16(w, w));
  }
#endif
  for (; i < count; ++i) dst[i] = quant::QuantizeValue(src[i], inv);
}

// Returns null when any element is non-finite (caller falls back to fp32).
std::shared_ptr<QuantPanelsA> PackQuantA(const float* a, Layout layout,
                                         int64_t m, int64_t k) {
  auto out = std::make_shared<QuantPanelsA>();
  out->m = m;
  out->k = k;
  out->layout = layout;
  out->src = a;
  out->scales.assign(static_cast<size_t>(m), 0.0f);
  // op(A) row i: row i of A[m,k] (kNN/kTB) or column i of A[k,m] (kTA).
  const int64_t stride = (layout == Layout::kTA) ? m : 1;
  auto row_ptr = [&](int64_t i) {
    return (layout == Layout::kTA) ? a + i : a + i * k;
  };
  for (int64_t i = 0; i < m; ++i) {
    if (!quant::ChannelScale(row_ptr(i), k, stride, &out->scales[i])) {
      return nullptr;
    }
  }
  const int64_t k2p = CeilDiv(k, 2);
  const int64_t pm = CeilDiv(m, kQMR);
  out->panels.assign(static_cast<size_t>(pm * k2p * 16), 0);
  ParallelFor(
      ThreadPool::Global(), pm,
      [&](int64_t begin, int64_t end) {
        std::vector<int8_t> tmp(static_cast<size_t>(k));
        for (int64_t pi = begin; pi < end; ++pi) {
          int16_t* panel = out->panels.data() + pi * k2p * 16;
          int64_t rows = std::min<int64_t>(kQMR, m - pi * kQMR);
          for (int64_t r = 0; r < rows; ++r) {
            const int64_t i = pi * kQMR + r;
            const float* row = row_ptr(i);
            const float inv = quant::InverseScale(out->scales[i]);
            if (stride == 1) {
              QuantizeRun(row, k, inv, tmp.data());
            } else {
              for (int64_t p = 0; p < k; ++p) {
                tmp[p] = quant::QuantizeValue(row[p * stride], inv);
              }
            }
            for (int64_t p2 = 0; p2 < k / 2; ++p2) {
              int16_t* slot = panel + p2 * 16 + r * 2;
              slot[0] = tmp[2 * p2];
              slot[1] = tmp[2 * p2 + 1];
            }
            if (k & 1) panel[(k >> 1) * 16 + r * 2] = tmp[k - 1];
          }
        }
      },
      /*min_chunk=*/1);
  return out;
}

std::shared_ptr<QuantPanelsB> PackQuantB(const float* b, Layout layout,
                                         int64_t k, int64_t n) {
  auto out = std::make_shared<QuantPanelsB>();
  out->k = k;
  out->n = n;
  out->layout = layout;
  out->src = b;
  out->scales.assign(static_cast<size_t>(n), 0.0f);
  if (layout == Layout::kTB) {
    // op(B) column j = row j of B[n,k], contiguous.
    for (int64_t j = 0; j < n; ++j) {
      if (!quant::ChannelScale(b + j * k, k, 1, &out->scales[j])) {
        return nullptr;
      }
    }
  } else {
    // B[k,n]: per-column maxima in one streaming pass over the rows.
    // Branchless non-finite accumulation keeps the inner loop vectorized
    // (!(av <= FLT_MAX) is true for Inf and NaN both).
    std::vector<float> maxabs(static_cast<size_t>(n), 0.0f);
    bool bad = false;
    for (int64_t p = 0; p < k; ++p) {
      const float* row = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        float av = std::fabs(row[j]);
        bad |= !(av <= FLT_MAX);
        maxabs[j] = av > maxabs[j] ? av : maxabs[j];
      }
    }
    if (bad) return nullptr;
    for (int64_t j = 0; j < n; ++j) {
      out->scales[j] = maxabs[j] / static_cast<float>(quant::kQuantMax);
    }
  }
  const int64_t k2p = CeilDiv(k, 2);
  const int64_t pn = CeilDiv(n, kQNR);
  out->panels.assign(static_cast<size_t>(pn * k2p * 16), 0);
  ParallelFor(
      ThreadPool::Global(), pn,
      [&](int64_t begin, int64_t end) {
        for (int64_t pj = begin; pj < end; ++pj) {
          int8_t* panel = out->panels.data() + pj * k2p * 16;
          int64_t cols = std::min<int64_t>(kQNR, n - pj * kQNR);
          if (layout == Layout::kTB) {
            for (int64_t jj = 0; jj < cols; ++jj) {
              const int64_t j = pj * kQNR + jj;
              const float* row = b + j * k;
              const float inv = quant::InverseScale(out->scales[j]);
              for (int64_t p = 0; p < k; ++p) {
                panel[(p >> 1) * 16 + jj * 2 + (p & 1)] =
                    quant::QuantizeValue(row[p], inv);
              }
            }
          } else {
            float inv[kQNR] = {0};
            for (int64_t jj = 0; jj < cols; ++jj) {
              inv[jj] = quant::InverseScale(out->scales[pj * kQNR + jj]);
            }
            const float* base = b + pj * kQNR;
#if defined(DOT_GEMM_HAVE_AVX2)
            if (cols == kQNR) {
              // Full panel: quantize a k-pair of 8-column rows and weave
              // them with one byte interleave — unpacklo(q_even, q_odd)
              // emits exactly the [j0p0 j0p1 j1p0 j1p1 ...] pair layout.
              const __m256 vinv = _mm256_loadu_ps(inv);
              const __m256i vmax = _mm256_set1_epi32(quant::kQuantMax);
              const __m256i vmin = _mm256_set1_epi32(-quant::kQuantMax);
              auto quantize8 = [&](const float* src) {
                __m256i q = _mm256_cvtps_epi32(
                    _mm256_mul_ps(_mm256_loadu_ps(src), vinv));
                q = _mm256_min_epi32(q, vmax);
                q = _mm256_max_epi32(q, vmin);
                __m128i w = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                            _mm256_extracti128_si256(q, 1));
                return _mm_packs_epi16(w, w);
              };
              const __m128i zero = _mm_setzero_si128();
              for (int64_t p2 = 0; p2 < k2p; ++p2) {
                __m128i even = quantize8(base + 2 * p2 * n);
                __m128i odd =
                    2 * p2 + 1 < k ? quantize8(base + (2 * p2 + 1) * n) : zero;
                _mm_storeu_si128(reinterpret_cast<__m128i*>(panel + p2 * 16),
                                 _mm_unpacklo_epi8(even, odd));
              }
              continue;
            }
#endif
            for (int64_t p = 0; p < k; ++p) {
              const float* row = base + p * n;
              int8_t* dst = panel + (p >> 1) * 16 + (p & 1);
              for (int64_t jj = 0; jj < cols; ++jj) {
                dst[jj * 2] = quant::QuantizeValue(row[jj], inv[jj]);
              }
            }
          }
        }
      },
      /*min_chunk=*/1);
  return out;
}

// The one dequantization expression every int8 kernel shares. Fixed
// operation order — (float)acc * (sa * sb) — is what makes naive, blocked,
// and simd agree bitwise on the int8 path.
inline float DequantElem(int32_t acc, float sa, float sb) {
  // The volatile pins the product to a rounded float: without it, an
  // accumulating caller's `crow[j] + DequantElem(...)` can be contracted
  // into an fma (-ffp-contract=fast is the -O3 default), skipping this
  // rounding at some call sites but not others and silently breaking the
  // bitwise agreement. Cost is one store+load per C element — O(mn),
  // noise next to the O(mnk) kernel.
  volatile float v = static_cast<float>(acc) * (sa * sb);
  return v;
}

// int8 8x8 microkernels: acc[r*8+j] = sum_p a_q[r][p] * b_q[j][p], fully
// overwriting `acc`. `k2p` counts k-pairs.
void QMicroScalar8x8(int64_t k2p, const int16_t* ap, const int8_t* bp,
                     int32_t* acc) {
  int32_t local[kQMR * kQNR] = {0};
  for (int64_t p2 = 0; p2 < k2p; ++p2) {
    const int16_t* apair = ap + p2 * 16;
    const int8_t* bpair = bp + p2 * 16;
    for (int64_t r = 0; r < kQMR; ++r) {
      const int32_t a0 = apair[r * 2];
      const int32_t a1 = apair[r * 2 + 1];
      int32_t* row = local + r * kQNR;
      for (int64_t j = 0; j < kQNR; ++j) {
        row[j] += a0 * bpair[j * 2] + a1 * bpair[j * 2 + 1];
      }
    }
  }
  std::memcpy(acc, local, sizeof(local));
}

#if defined(DOT_GEMM_HAVE_AVX2)
// AVX2 emulation of the VNNI dot-product idiom: widen the B pair-lanes to
// int16 and _mm256_madd_epi16 against a broadcast A pair. Products are
// bounded by 127^2, so the two int16 multiplies per lane sum exactly into
// int32 — madd never saturates here.
void QMicroAvx2_8x8(int64_t k2p, const int16_t* ap, const int8_t* bp,
                    int32_t* acc) {
  __m256i cc[kQMR];
  for (int r = 0; r < kQMR; ++r) cc[r] = _mm256_setzero_si256();
  for (int64_t p2 = 0; p2 < k2p; ++p2) {
    const __m256i bw = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp + p2 * 16)));
    const int16_t* apair = ap + p2 * 16;
    for (int r = 0; r < kQMR; ++r) {
      int32_t pair;
      std::memcpy(&pair, apair + r * 2, sizeof(pair));
      cc[r] = _mm256_add_epi32(
          cc[r], _mm256_madd_epi16(_mm256_set1_epi32(pair), bw));
    }
  }
  for (int r = 0; r < kQMR; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kQNR), cc[r]);
  }
}
#endif  // DOT_GEMM_HAVE_AVX2

using QMicroFn = void (*)(int64_t, const int16_t*, const int8_t*, int32_t*);

QMicroFn PickQuantMicro(Kernel kernel) {
#if defined(DOT_GEMM_HAVE_AVX2)
  if (kernel == Kernel::kSimd && SimdMicroAvailable()) return &QMicroAvx2_8x8;
#else
  (void)kernel;
#endif
  return &QMicroScalar8x8;
}

// Full-k tile sweep over the packed panels. Parallelized across C tiles:
// writers are disjoint and integer accumulation is order-free, so any
// partitioning is bitwise identical.
void RunInt8Tiles(const QuantPanelsA& qa, const QuantPanelsB& qb, float* c,
                  int64_t m, int64_t n, bool accumulate, QMicroFn micro) {
  const int64_t k2p = CeilDiv(qa.k, 2);
  const int64_t pm = CeilDiv(m, kQMR);
  const int64_t pn = CeilDiv(n, kQNR);
  ParallelFor(
      ThreadPool::Global(), pm * pn,
      [&](int64_t begin, int64_t end) {
        alignas(32) int32_t acc[kQMR * kQNR];
        for (int64_t t = begin; t < end; ++t) {
          const int64_t pi = t / pn;
          const int64_t pj = t % pn;
          micro(k2p, qa.panels.data() + pi * k2p * 16,
                qb.panels.data() + pj * k2p * 16, acc);
          const int64_t rows = std::min<int64_t>(kQMR, m - pi * kQMR);
          const int64_t cols = std::min<int64_t>(kQNR, n - pj * kQNR);
          const float* sa = qa.scales.data() + pi * kQMR;
          const float* sb = qb.scales.data() + pj * kQNR;
          float* ctile = c + pi * kQMR * n + pj * kQNR;
          for (int64_t r = 0; r < rows; ++r) {
            float* crow = ctile + r * n;
            for (int64_t j = 0; j < cols; ++j) {
              const float v = DequantElem(acc[r * kQNR + j], sa[r], sb[j]);
              crow[j] = accumulate ? crow[j] + v : v;
            }
          }
        }
      },
      /*min_chunk=*/8);
}

// Flat (unpanelled) quantization for the naive reference: op(A) row-major
// [m,k] and op(B) row-major [k,n]. Same scale + rounding functions as the
// packers, so every element quantizes identically on both paths.
bool QuantizeAFlat(const float* a, Layout layout, int64_t m, int64_t k,
                   std::vector<int8_t>* q, std::vector<float>* scales) {
  const int64_t stride = (layout == Layout::kTA) ? m : 1;
  scales->assign(static_cast<size_t>(m), 0.0f);
  q->resize(static_cast<size_t>(m * k));
  for (int64_t i = 0; i < m; ++i) {
    const float* row = (layout == Layout::kTA) ? a + i : a + i * k;
    if (!quant::ChannelScale(row, k, stride, &(*scales)[i])) return false;
    quant::QuantizeChannel(row, k, stride, (*scales)[i], q->data() + i * k);
  }
  return true;
}

bool QuantizeBFlat(const float* b, Layout layout, int64_t k, int64_t n,
                   std::vector<int8_t>* q, std::vector<float>* scales) {
  scales->assign(static_cast<size_t>(n), 0.0f);
  q->resize(static_cast<size_t>(k * n));
  if (layout == Layout::kTB) {
    for (int64_t j = 0; j < n; ++j) {
      if (!quant::ChannelScale(b + j * k, k, 1, &(*scales)[j])) return false;
      const float inv = quant::InverseScale((*scales)[j]);
      for (int64_t p = 0; p < k; ++p) {
        (*q)[p * n + j] = quant::QuantizeValue(b[j * k + p], inv);
      }
    }
    return true;
  }
  for (int64_t j = 0; j < n; ++j) {
    if (!quant::ChannelScale(b + j, k, n, &(*scales)[j])) return false;
  }
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t j = 0; j < n; ++j) {
      (*q)[p * n + j] = quant::QuantizeValue(
          b[p * n + j], quant::InverseScale((*scales)[j]));
    }
  }
  return true;
}

void RunInt8Naive(const int8_t* qa, const float* sa, const int8_t* qb,
                  const float* sb, float* c, int64_t m, int64_t k, int64_t n,
                  bool accumulate) {
  ForEachRow(m, [&](int64_t i) {
    const int8_t* arow = qa + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(qb[p * n + j]);
      }
      const float v = DequantElem(acc, sa[i], sb[j]);
      crow[j] = accumulate ? crow[j] + v : v;
    }
  });
}

// ---- Quantized-weight cache -------------------------------------------------
// Keyed on Storage::id() — a process-unique monotonic id, so a recycled
// allocation can never alias a dead entry — with the packed-from pointer
// and shape re-validated on every hit. Entries are dropped by the
// Storage destructor (flag-gated), by ClearQuantCache() after in-place
// weight mutation, and implicitly on hot swap when the retired model's
// Storages die.

struct QuantCacheEntry {
  std::shared_ptr<const QuantPanelsA> a;
  std::shared_ptr<const QuantPanelsB> b;
};

struct QuantCacheState {
  std::mutex mu;
  std::unordered_map<uint64_t, QuantCacheEntry> map;
  int64_t bytes = 0;
  int64_t entries = 0;  // populated role slots (a storage can hold both)
};

QuantCacheState& QuantCache() {
  static QuantCacheState* state = new QuantCacheState();  // leaked: dtor-safe
  return *state;
}

void PublishQuantGauges(const QuantCacheState& state) {
  QuantMetrics& qm = GetQuantMetrics();
  qm.cache_entries->Set(static_cast<double>(state.entries));
  qm.cache_bytes->Set(static_cast<double>(state.bytes));
}

std::shared_ptr<const QuantPanelsA> CacheLookupA(Storage* storage,
                                                 const float* a, Layout layout,
                                                 int64_t m, int64_t k) {
  QuantCacheState& state = QuantCache();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.map.find(storage->id());
  if (it != state.map.end() && it->second.a != nullptr &&
      it->second.a->src == a && it->second.a->layout == layout &&
      it->second.a->m == m && it->second.a->k == k) {
    return it->second.a;
  }
  return nullptr;
}

std::shared_ptr<const QuantPanelsB> CacheLookupB(Storage* storage,
                                                 const float* b, Layout layout,
                                                 int64_t k, int64_t n) {
  QuantCacheState& state = QuantCache();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.map.find(storage->id());
  if (it != state.map.end() && it->second.b != nullptr &&
      it->second.b->src == b && it->second.b->layout == layout &&
      it->second.b->k == k && it->second.b->n == n) {
    return it->second.b;
  }
  return nullptr;
}

void CacheStoreA(Storage* storage, std::shared_ptr<const QuantPanelsA> qa) {
  QuantCacheState& state = QuantCache();
  std::lock_guard<std::mutex> lock(state.mu);
  QuantCacheEntry& e = state.map[storage->id()];
  if (e.a != nullptr) {
    state.bytes -= e.a->bytes();
    --state.entries;
  }
  state.bytes += qa->bytes();
  ++state.entries;
  e.a = std::move(qa);
  storage->MarkQuantCached();
  PublishQuantGauges(state);
}

void CacheStoreB(Storage* storage, std::shared_ptr<const QuantPanelsB> qb) {
  QuantCacheState& state = QuantCache();
  std::lock_guard<std::mutex> lock(state.mu);
  QuantCacheEntry& e = state.map[storage->id()];
  if (e.b != nullptr) {
    state.bytes -= e.b->bytes();
    --state.entries;
  }
  state.bytes += qb->bytes();
  ++state.entries;
  e.b = std::move(qb);
  storage->MarkQuantCached();
  PublishQuantGauges(state);
}

// Runs the product on the int8 path, or returns false when it must fall
// back to fp32 (oversized k, non-finite operand). Degenerate dims are
// handled by the caller before this point.
bool TryRunInt8(Kernel kernel, Layout layout, const float* a, const float* b,
                float* c, int64_t m, int64_t k, int64_t n, bool accumulate,
                Storage* a_storage, Storage* b_storage) {
  QuantMetrics& qm = GetQuantMetrics();
  if (k > kMaxQuantK) {
    qm.fallback_bigk->Increment();
    return false;
  }
  if (kernel == Kernel::kNaive) {
    // Reference path: flat quantized operands, triple loop, no cache.
    std::vector<int8_t> qa, qb;
    std::vector<float> sa, sb;
    if (!QuantizeAFlat(a, layout, m, k, &qa, &sa) ||
        !QuantizeBFlat(b, layout, k, n, &qb, &sb)) {
      qm.fallback_nonfinite->Increment();
      return false;
    }
    RunInt8Naive(qa.data(), sa.data(), qb.data(), sb.data(), c, m, k, n,
                 accumulate);
    qm.gemms->Increment();
    return true;
  }
  std::shared_ptr<const QuantPanelsA> qa;
  if (a_storage != nullptr) {
    qa = CacheLookupA(a_storage, a, layout, m, k);
    (qa != nullptr ? qm.cache_hits : qm.cache_misses)->Increment();
  }
  if (qa == nullptr) {
    qa = PackQuantA(a, layout, m, k);
    if (qa == nullptr) {
      qm.fallback_nonfinite->Increment();
      return false;
    }
    if (a_storage != nullptr) CacheStoreA(a_storage, qa);
  }
  std::shared_ptr<const QuantPanelsB> qb;
  if (b_storage != nullptr) {
    qb = CacheLookupB(b_storage, b, layout, k, n);
    (qb != nullptr ? qm.cache_hits : qm.cache_misses)->Increment();
  }
  if (qb == nullptr) {
    qb = PackQuantB(b, layout, k, n);
    if (qb == nullptr) {
      qm.fallback_nonfinite->Increment();
      return false;
    }
    if (b_storage != nullptr) CacheStoreB(b_storage, qb);
  }
  RunInt8Tiles(*qa, *qb, c, m, n, accumulate, PickQuantMicro(kernel));
  qm.gemms->Increment();
  return true;
}

// ---- Kernel selection -------------------------------------------------------

std::atomic<int> g_active_kernel{-1};

Kernel ResolveFromEnv() {
  Kernel kernel = SimdAvailable() ? Kernel::kSimd : Kernel::kBlocked;
  if (const char* env = std::getenv("DOT_GEMM_KERNEL")) {
    Kernel parsed;
    if (ParseKernelName(env, &parsed)) {
      kernel = parsed;
      if (kernel == Kernel::kSimd && !SimdAvailable()) {
        kernel = Kernel::kBlocked;  // graceful fallback, never an error
      }
    } else if (env[0] != '\0') {
      std::fprintf(stderr,
                   "[dot] unknown DOT_GEMM_KERNEL '%s' "
                   "(want naive|blocked|simd); using %s\n",
                   env, KernelName(kernel));
    }
  }
  return kernel;
}

std::atomic<int> g_active_precision{-1};

Precision ResolvePrecisionFromEnv() {
  Precision precision = Precision::kFp32;
  if (const char* env = std::getenv("DOT_GEMM_PRECISION")) {
    Precision parsed;
    if (ParsePrecisionName(env, &parsed)) {
      precision = parsed;
    } else if (env[0] != '\0') {
      std::fprintf(stderr,
                   "[dot] unknown DOT_GEMM_PRECISION '%s' "
                   "(want fp32|int8); using %s\n",
                   env, PrecisionName(precision));
    }
  }
  return precision;
}

}  // namespace

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kNaive:
      return "naive";
    case Kernel::kBlocked:
      return "blocked";
    case Kernel::kSimd:
      return "simd";
  }
  return "?";
}

bool ParseKernelName(const char* name, Kernel* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "naive") == 0) {
    *out = Kernel::kNaive;
  } else if (std::strcmp(name, "blocked") == 0) {
    *out = Kernel::kBlocked;
  } else if (std::strcmp(name, "simd") == 0) {
    *out = Kernel::kSimd;
  } else {
    return false;
  }
  return true;
}

bool SimdAvailable() { return SimdMicroAvailable(); }

Kernel ActiveKernel() {
  int v = g_active_kernel.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Kernel>(v);
  int resolved = static_cast<int>(ResolveFromEnv());
  int expected = -1;
  g_active_kernel.compare_exchange_strong(expected, resolved,
                                          std::memory_order_relaxed);
  return static_cast<Kernel>(g_active_kernel.load(std::memory_order_relaxed));
}

Kernel SetKernel(Kernel kernel) {
  if (kernel == Kernel::kSimd && !SimdAvailable()) kernel = Kernel::kBlocked;
  g_active_kernel.store(static_cast<int>(kernel), std::memory_order_relaxed);
  return kernel;
}

void Run(Kernel kernel, Layout layout, const float* a, const float* b,
         float* c, int64_t m, int64_t k, int64_t n, bool accumulate) {
  // Degenerate products never touch the (possibly null) data pointers.
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) std::fill(c, c + m * n, 0.0f);
    return;
  }
  obs::OpTimer op_timer(obs::OpKind::kGemmKernel,
                        2.0 * static_cast<double>(m) *
                            static_cast<double>(k) * static_cast<double>(n));
  if (kernel == Kernel::kSimd && !SimdAvailable()) kernel = Kernel::kBlocked;
  switch (kernel) {
    case Kernel::kNaive:
      RunNaive(layout, a, b, c, m, k, n, accumulate);
      return;
    case Kernel::kBlocked:
      RunBlockedEngine(layout, a, b, c, m, k, n, accumulate, ScalarMicro());
      return;
    case Kernel::kSimd:
      RunBlockedEngine(layout, a, b, c, m, k, n, accumulate, SimdMicro());
      return;
  }
}

const char* PrecisionName(Precision precision) {
  switch (precision) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
  }
  return "?";
}

bool ParsePrecisionName(const char* name, Precision* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "fp32") == 0) {
    *out = Precision::kFp32;
  } else if (std::strcmp(name, "int8") == 0) {
    *out = Precision::kInt8;
  } else {
    return false;
  }
  return true;
}

Precision ActivePrecision() {
  int v = g_active_precision.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Precision>(v);
  int resolved = static_cast<int>(ResolvePrecisionFromEnv());
  int expected = -1;
  g_active_precision.compare_exchange_strong(expected, resolved,
                                             std::memory_order_relaxed);
  return static_cast<Precision>(
      g_active_precision.load(std::memory_order_relaxed));
}

Precision SetPrecision(Precision precision) {
  g_active_precision.store(static_cast<int>(precision),
                           std::memory_order_relaxed);
  return precision;
}

void RunEx(Kernel kernel, Precision precision, Layout layout, const float* a,
           const float* b, float* c, int64_t m, int64_t k, int64_t n,
           bool accumulate, Storage* a_storage, Storage* b_storage) {
  if (precision == Precision::kInt8 && m > 0 && n > 0 && k > 0) {
    if (kernel == Kernel::kSimd && !SimdAvailable()) kernel = Kernel::kBlocked;
    obs::OpTimer op_timer(obs::OpKind::kGemmKernel,
                          2.0 * static_cast<double>(m) *
                              static_cast<double>(k) * static_cast<double>(n));
    if (TryRunInt8(kernel, layout, a, b, c, m, k, n, accumulate, a_storage,
                   b_storage)) {
      return;
    }
    // Refused (non-finite operand or oversized k): fall through to fp32.
    // The rejection scan is cheap relative to the product, so the nested
    // OpTimer's double count is noise on this rare path.
  }
  Run(kernel, layout, a, b, c, m, k, n, accumulate);
}

int64_t QuantCacheEntries() {
  QuantCacheState& state = QuantCache();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.entries;
}

int64_t QuantCacheBytes() {
  QuantCacheState& state = QuantCache();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.bytes;
}

void ClearQuantCache() {
  QuantCacheState& state = QuantCache();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.map.empty()) return;
  GetQuantMetrics().cache_drops->Increment(state.entries);
  state.map.clear();
  state.bytes = 0;
  state.entries = 0;
  PublishQuantGauges(state);
}

namespace internal {

void DropQuantEntriesFor(uint64_t storage_id) {
  QuantCacheState& state = QuantCache();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.map.find(storage_id);
  if (it == state.map.end()) return;  // already cleared (ClearQuantCache)
  int64_t dropped = 0;
  if (it->second.a != nullptr) {
    state.bytes -= it->second.a->bytes();
    ++dropped;
  }
  if (it->second.b != nullptr) {
    state.bytes -= it->second.b->bytes();
    ++dropped;
  }
  state.entries -= dropped;
  state.map.erase(it);
  GetQuantMetrics().cache_drops->Increment(dropped);
  PublishQuantGauges(state);
}

}  // namespace internal

}  // namespace gemm
}  // namespace dot
