#include "tensor/storage.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#include "obs/metrics.h"
#include "tensor/gemm_kernel.h"
#include "util/logging.h"

namespace dot {
namespace storage {
namespace {

// Smallest bucket: 64 floats = 256 bytes. Anything below rounds up to this,
// so tiny tensors (biases, cond vectors, scalars) all share one free list.
constexpr int64_t kMinBucketFloats = 64;
// Buffers are 64-byte aligned so pooled data behaves like the packed panels
// the SIMD GEMM allocates for itself.
constexpr size_t kAlignment = 64;
// Signaling pattern written over recycled buffers under poisoning: a quiet
// NaN, so a read of unwritten recycled memory propagates loudly.
constexpr uint32_t kPoisonBits = 0x7fc0d07eu;  // NaN payload spells "d07e"

int BucketIndex(int64_t capacity) {
  int idx = 0;
  while ((kMinBucketFloats << idx) < capacity) ++idx;
  return idx;
}

struct Pool {
  std::mutex mu;
  // free_lists[i] holds buffers of exactly (kMinBucketFloats << i) floats.
  static constexpr int kNumBuckets = 40;  // up to 64 << 39 floats — plenty
  std::vector<float*> free_lists[kNumBuckets];

  // Counters/gauges mirrored into the obs registry below; kept as local
  // atomics too so GetPoolStats() works even with metrics disabled.
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> misses{0};
  std::atomic<int64_t> returns{0};
  std::atomic<int64_t> bytes_live{0};
  std::atomic<int64_t> bytes_pooled{0};
  std::atomic<int64_t> high_water{0};

  ~Pool() = delete;  // process-lifetime singleton (never destroyed)
};

Pool& GetPool() {
  static Pool* pool = new Pool();
  return *pool;
}

struct ObsMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* returns;
  obs::Gauge* bytes_live;
  obs::Gauge* bytes_pooled;
  obs::Gauge* high_water;
};

ObsMetrics& GetObsMetrics() {
  static ObsMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Get();
    ObsMetrics out;
    out.hits = reg.GetCounter("dot_pool_hits_total");
    out.misses = reg.GetCounter("dot_pool_misses_total");
    out.returns = reg.GetCounter("dot_pool_returns_total");
    out.bytes_live = reg.GetGauge("dot_pool_bytes_live");
    out.bytes_pooled = reg.GetGauge("dot_pool_bytes_pooled");
    out.high_water = reg.GetGauge("dot_pool_high_water_bytes");
    return out;
  }();
  return m;
}

bool EnvFlag(const char* name, bool default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return default_value;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "false") == 0) {
    return false;
  }
  if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0 ||
      std::strcmp(env, "true") == 0) {
    return true;
  }
  DOT_LOG_WARN << "unrecognized " << name << "='" << env << "' (want on|off)";
  return default_value;
}

std::atomic<bool> g_pool_enabled{EnvFlag("DOT_TENSOR_POOL", true)};
std::atomic<bool> g_poison_enabled{EnvFlag("DOT_POOL_POISON", false)};

float* RawAlloc(int64_t floats) {
  return static_cast<float*>(::operator new(
      static_cast<size_t>(floats) * sizeof(float), std::align_val_t(kAlignment)));
}

void RawFree(float* p) { ::operator delete(p, std::align_val_t(kAlignment)); }

void UpdateLive(Pool& pool, int64_t delta_bytes) {
  int64_t live = pool.bytes_live.fetch_add(delta_bytes,
                                           std::memory_order_relaxed) +
                 delta_bytes;
  auto& m = GetObsMetrics();
  m.bytes_live->Set(static_cast<double>(live));
  if (delta_bytes > 0) {
    int64_t hw = pool.high_water.load(std::memory_order_relaxed);
    while (live > hw && !pool.high_water.compare_exchange_weak(
                            hw, live, std::memory_order_relaxed)) {
    }
    m.high_water->Set(
        static_cast<double>(pool.high_water.load(std::memory_order_relaxed)));
  }
}

}  // namespace

bool PoolEnabled() { return g_pool_enabled.load(std::memory_order_relaxed); }
void SetPoolEnabled(bool enabled) {
  g_pool_enabled.store(enabled, std::memory_order_relaxed);
}

bool PoisonEnabled() { return g_poison_enabled.load(std::memory_order_relaxed); }
void SetPoisonEnabled(bool enabled) {
  g_poison_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t BucketFor(int64_t n) {
  DOT_CHECK(n >= 0) << "negative allocation";
  int64_t cap = kMinBucketFloats;
  while (cap < n) cap <<= 1;
  return cap;
}

PoolStats GetPoolStats() {
  Pool& pool = GetPool();
  PoolStats s;
  s.hits = pool.hits.load(std::memory_order_relaxed);
  s.misses = pool.misses.load(std::memory_order_relaxed);
  s.returns = pool.returns.load(std::memory_order_relaxed);
  s.bytes_live = pool.bytes_live.load(std::memory_order_relaxed);
  s.bytes_pooled = pool.bytes_pooled.load(std::memory_order_relaxed);
  s.high_water_bytes = pool.high_water.load(std::memory_order_relaxed);
  return s;
}

void ResetPoolStats() {
  Pool& pool = GetPool();
  pool.hits.store(0, std::memory_order_relaxed);
  pool.misses.store(0, std::memory_order_relaxed);
  pool.returns.store(0, std::memory_order_relaxed);
  pool.high_water.store(pool.bytes_live.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

void TrimPool() {
  Pool& pool = GetPool();
  std::vector<float*> to_free;
  int64_t freed_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    for (int i = 0; i < Pool::kNumBuckets; ++i) {
      int64_t cap = kMinBucketFloats << i;
      for (float* p : pool.free_lists[i]) {
        to_free.push_back(p);
        freed_bytes += cap * static_cast<int64_t>(sizeof(float));
      }
      pool.free_lists[i].clear();
    }
  }
  for (float* p : to_free) RawFree(p);
  int64_t pooled = pool.bytes_pooled.fetch_sub(freed_bytes,
                                               std::memory_order_relaxed) -
                   freed_bytes;
  GetObsMetrics().bytes_pooled->Set(static_cast<double>(pooled));
}

}  // namespace storage

std::shared_ptr<Storage> Storage::Allocate(int64_t n) {
  using storage::GetObsMetrics;
  using storage::GetPool;
  int64_t cap = storage::BucketFor(n);
  int64_t bytes = cap * static_cast<int64_t>(sizeof(float));
  auto& pool = GetPool();
  float* data = nullptr;
  if (storage::PoolEnabled()) {
    int idx = storage::BucketIndex(cap);
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      auto& list = pool.free_lists[idx];
      if (!list.empty()) {
        data = list.back();
        list.pop_back();
      }
    }
    if (data != nullptr) {
      pool.hits.fetch_add(1, std::memory_order_relaxed);
      int64_t pooled =
          pool.bytes_pooled.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
      auto& m = GetObsMetrics();
      m.hits->Increment();
      m.bytes_pooled->Set(static_cast<double>(pooled));
    } else {
      pool.misses.fetch_add(1, std::memory_order_relaxed);
      GetObsMetrics().misses->Increment();
      data = storage::RawAlloc(cap);
    }
  } else {
    data = storage::RawAlloc(cap);
  }
  storage::UpdateLive(pool, bytes);
  static std::atomic<uint64_t> next_id{1};
  return std::shared_ptr<Storage>(
      new Storage(data, cap, next_id.fetch_add(1, std::memory_order_relaxed)));
}

Storage::~Storage() {
  using storage::GetObsMetrics;
  using storage::GetPool;
  if (quant_cached_.load(std::memory_order_relaxed)) {
    gemm::internal::DropQuantEntriesFor(id_);
  }
  auto& pool = GetPool();
  int64_t bytes = capacity_ * static_cast<int64_t>(sizeof(float));
  storage::UpdateLive(pool, -bytes);
  if (storage::PoolEnabled()) {
    if (storage::PoisonEnabled()) {
      uint32_t bits = storage::kPoisonBits;
      float poison;
      std::memcpy(&poison, &bits, sizeof(poison));
      std::fill(data_, data_ + capacity_, poison);
    }
    int idx = storage::BucketIndex(capacity_);
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      pool.free_lists[idx].push_back(data_);
    }
    pool.returns.fetch_add(1, std::memory_order_relaxed);
    int64_t pooled =
        pool.bytes_pooled.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    auto& m = GetObsMetrics();
    m.returns->Increment();
    m.bytes_pooled->Set(static_cast<double>(pooled));
  } else {
    storage::RawFree(data_);
  }
}

}  // namespace dot
