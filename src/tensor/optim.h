// First-order optimizers for training the DOT models.

#ifndef DOT_TENSOR_OPTIM_H_
#define DOT_TENSOR_OPTIM_H_

#include <vector>

#include "tensor/tensor.h"

namespace dot::optim {

/// \brief Adam (Kingma & Ba) with bias correction — the optimizer the paper
/// uses for both stages (Sec. 6.3, lr = 0.001).
class Adam {
 public:
  explicit Adam(std::vector<Tensor> params, float lr = 1e-3f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  /// Applies one update using the gradients currently stored on parameters.
  void Step();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t step_count() const { return t_; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_, v_;
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
};

/// \brief Plain SGD with optional momentum (used by small baselines).
class SGD {
 public:
  explicit SGD(std::vector<Tensor> params, float lr = 1e-2f, float momentum = 0.0f);

  void Step();
  void ZeroGrad();

  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> vel_;
  float lr_, momentum_;
};

}  // namespace dot::optim

#endif  // DOT_TENSOR_OPTIM_H_
