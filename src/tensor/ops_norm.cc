// Softmax and normalization layers (layer norm, group norm).

#include <cmath>

#include "tensor/ops.h"
#include "tensor/ops_internal.h"

namespace dot {

using internal::AttachNode;
using internal::NeedsGrad;

Tensor Softmax(const Tensor& a) {
  DOT_CHECK(a.dim() >= 1) << "Softmax needs at least 1-D input";
  int64_t d = a.size(-1);
  int64_t rows = a.numel() / d;
  Tensor out = Tensor::Empty(a.shape());
  const float* ap = a.data();
  float* op = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = ap + r * d;
    float* o = op + r * d;
    float mx = in[0];
    for (int64_t i = 1; i < d; ++i) mx = std::max(mx, in[i]);
    float sum = 0;
    for (int64_t i = 0; i < d; ++i) {
      o[i] = std::exp(in[i] - mx);
      sum += o[i];
    }
    float inv = 1.0f / sum;
    for (int64_t i = 0; i < d; ++i) o[i] *= inv;
  }
  Tensor a_cap = a;
  AttachNode(&out, "softmax", {a}, [a_cap, rows, d](const Tensor& o) {
    Tensor a = a_cap;
    float* ga = a.grad();
    const float* gout = o.grad_vec().data();
    const float* y = o.data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* yr = y + r * d;
      const float* gr = gout + r * d;
      float dot = 0;
      for (int64_t i = 0; i < d; ++i) dot += gr[i] * yr[i];
      float* gar = ga + r * d;
      for (int64_t i = 0; i < d; ++i) gar[i] += yr[i] * (gr[i] - dot);
    }
  });
  return out;
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  int64_t d = x.size(-1);
  DOT_CHECK(gamma.numel() == d && beta.numel() == d) << "LayerNorm affine size";
  int64_t rows = x.numel() / d;
  Tensor out = Tensor::Empty(x.shape());
  // Backward needs per-row inv-std and normalized values; only cache them
  // when a graph node will actually be attached. Under NoGradGuard (the
  // sampling loop) the normalized value lives in a register instead, so the
  // op allocates nothing beyond its output.
  bool record = GradModeEnabled() &&
                (NeedsGrad(x) || NeedsGrad(gamma) || NeedsGrad(beta));
  std::shared_ptr<Storage> xhat =
      record ? Storage::Allocate(x.numel()) : nullptr;
  std::shared_ptr<Storage> inv_std = record ? Storage::Allocate(rows) : nullptr;
  const float* xp = x.data();
  const float* g = gamma.data();
  const float* b = beta.data();
  float* op = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = xp + r * d;
    float mean = 0;
    for (int64_t i = 0; i < d; ++i) mean += in[i];
    mean /= static_cast<float>(d);
    float var = 0;
    for (int64_t i = 0; i < d; ++i) {
      float c = in[i] - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    float istd = 1.0f / std::sqrt(var + eps);
    float* o = op + r * d;
    if (record) {
      inv_std->data()[r] = istd;
      float* xh = xhat->data() + r * d;
      for (int64_t i = 0; i < d; ++i) {
        xh[i] = (in[i] - mean) * istd;
        o[i] = g[i] * xh[i] + b[i];
      }
    } else {
      for (int64_t i = 0; i < d; ++i) {
        float xh = (in[i] - mean) * istd;
        o[i] = g[i] * xh + b[i];
      }
    }
  }
  if (!record) return out;
  Tensor x_cap = x, g_cap = gamma, b_cap = beta;
  AttachNode(&out, "layer_norm", {x, gamma, beta},
             [x_cap, g_cap, b_cap, xhat, inv_std, rows, d](const Tensor& o) {
               Tensor x = x_cap, gamma = g_cap, beta = b_cap;
               const float* gout = o.grad_vec().data();
               const float* g = gamma.data();
               bool need_x = NeedsGrad(x);
               float* gx = need_x ? x.grad() : nullptr;
               float* gg = NeedsGrad(gamma) ? gamma.grad() : nullptr;
               float* gb = NeedsGrad(beta) ? beta.grad() : nullptr;
               for (int64_t r = 0; r < rows; ++r) {
                 const float* go = gout + r * d;
                 const float* xh = xhat->data() + r * d;
                 if (gg || gb) {
                   for (int64_t i = 0; i < d; ++i) {
                     if (gg) gg[i] += go[i] * xh[i];
                     if (gb) gb[i] += go[i];
                   }
                 }
                 if (need_x) {
                   // dxhat = go * gamma; dx = istd*(dxhat - mean(dxhat)
                   //        - xhat * mean(dxhat*xhat))
                   float m1 = 0, m2 = 0;
                   for (int64_t i = 0; i < d; ++i) {
                     float dxh = go[i] * g[i];
                     m1 += dxh;
                     m2 += dxh * xh[i];
                   }
                   m1 /= static_cast<float>(d);
                   m2 /= static_cast<float>(d);
                   float istd = inv_std->data()[r];
                   float* gxr = gx + r * d;
                   for (int64_t i = 0; i < d; ++i) {
                     float dxh = go[i] * g[i];
                     gxr[i] += istd * (dxh - m1 - xh[i] * m2);
                   }
                 }
               }
             });
  return out;
}

Tensor GroupNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   int64_t groups, float eps) {
  DOT_CHECK(x.dim() == 4) << "GroupNorm needs NCHW";
  int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  DOT_CHECK(c % groups == 0) << "GroupNorm: channels not divisible by groups";
  DOT_CHECK(gamma.numel() == c && beta.numel() == c) << "GroupNorm affine size";
  int64_t cg = c / groups;         // channels per group
  int64_t glen = cg * h * w;       // elements per (sample, group)
  Tensor out = Tensor::Empty(x.shape());
  // As in LayerNormOp: cache normalization state only when backward will run.
  bool record = GradModeEnabled() &&
                (NeedsGrad(x) || NeedsGrad(gamma) || NeedsGrad(beta));
  std::shared_ptr<Storage> xhat =
      record ? Storage::Allocate(x.numel()) : nullptr;
  std::shared_ptr<Storage> inv_std =
      record ? Storage::Allocate(n * groups) : nullptr;
  const float* xp = x.data();
  const float* g = gamma.data();
  const float* b = beta.data();
  float* op = out.data();
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t gr = 0; gr < groups; ++gr) {
      const float* in = xp + (s * c + gr * cg) * h * w;
      float mean = 0;
      for (int64_t i = 0; i < glen; ++i) mean += in[i];
      mean /= static_cast<float>(glen);
      float var = 0;
      for (int64_t i = 0; i < glen; ++i) {
        float d = in[i] - mean;
        var += d * d;
      }
      var /= static_cast<float>(glen);
      float istd = 1.0f / std::sqrt(var + eps);
      float* o = op + (s * c + gr * cg) * h * w;
      if (record) {
        inv_std->data()[s * groups + gr] = istd;
        float* xh = xhat->data() + (s * c + gr * cg) * h * w;
        for (int64_t cc = 0; cc < cg; ++cc) {
          int64_t ch = gr * cg + cc;
          const float* ic = in + cc * h * w;
          float* xc = xh + cc * h * w;
          float* oc = o + cc * h * w;
          for (int64_t i = 0; i < h * w; ++i) {
            xc[i] = (ic[i] - mean) * istd;
            oc[i] = g[ch] * xc[i] + b[ch];
          }
        }
      } else {
        for (int64_t cc = 0; cc < cg; ++cc) {
          int64_t ch = gr * cg + cc;
          const float* ic = in + cc * h * w;
          float* oc = o + cc * h * w;
          for (int64_t i = 0; i < h * w; ++i) {
            float xc = (ic[i] - mean) * istd;
            oc[i] = g[ch] * xc + b[ch];
          }
        }
      }
    }
  }
  if (!record) return out;
  Tensor x_cap = x, g_cap = gamma, b_cap = beta;
  AttachNode(
      &out, "group_norm", {x, gamma, beta},
      [x_cap, g_cap, b_cap, xhat, inv_std, n, c, h, w, groups, cg,
       glen](const Tensor& o) {
        Tensor x = x_cap, gamma = g_cap, beta = b_cap;
        const float* gout = o.grad_vec().data();
        const float* g = gamma.data();
        bool need_x = NeedsGrad(x);
        float* gx = need_x ? x.grad() : nullptr;
        float* gg = NeedsGrad(gamma) ? gamma.grad() : nullptr;
        float* gb = NeedsGrad(beta) ? beta.grad() : nullptr;
        int64_t hw = h * w;
        for (int64_t s = 0; s < n; ++s) {
          for (int64_t gr = 0; gr < groups; ++gr) {
            int64_t base = (s * c + gr * cg) * hw;
            const float* go = gout + base;
            const float* xh = xhat->data() + base;
            if (gg || gb) {
              for (int64_t cc = 0; cc < cg; ++cc) {
                int64_t ch = gr * cg + cc;
                const float* goc = go + cc * hw;
                const float* xhc = xh + cc * hw;
                float sg = 0, sb = 0;
                for (int64_t i = 0; i < hw; ++i) {
                  sg += goc[i] * xhc[i];
                  sb += goc[i];
                }
                if (gg) gg[ch] += sg;
                if (gb) gb[ch] += sb;
              }
            }
            if (need_x) {
              float m1 = 0, m2 = 0;
              for (int64_t cc = 0; cc < cg; ++cc) {
                int64_t ch = gr * cg + cc;
                const float* goc = go + cc * hw;
                const float* xhc = xh + cc * hw;
                for (int64_t i = 0; i < hw; ++i) {
                  float dxh = goc[i] * g[ch];
                  m1 += dxh;
                  m2 += dxh * xhc[i];
                }
              }
              m1 /= static_cast<float>(glen);
              m2 /= static_cast<float>(glen);
              float istd = inv_std->data()[s * groups + gr];
              float* gxg = gx + base;
              for (int64_t cc = 0; cc < cg; ++cc) {
                int64_t ch = gr * cg + cc;
                const float* goc = go + cc * hw;
                const float* xhc = xh + cc * hw;
                float* gxc = gxg + cc * hw;
                for (int64_t i = 0; i < hw; ++i) {
                  float dxh = goc[i] * g[ch];
                  gxc[i] += istd * (dxh - m1 - xhc[i] * m2);
                }
              }
            }
          }
        }
      });
  return out;
}

}  // namespace dot
