// Symmetric per-channel int8 quantization primitives for the GEMM engine.
//
// The quantized GEMM path (gemm_kernel.h, DOT_GEMM_PRECISION=int8) maps
// every channel (a row of op(A), a column of op(B)) onto the symmetric
// int8 grid with its own scale:
//
//   scale = max|x| / 127        q = clamp(round(x / scale), -127, 127)
//
// so dequantization is exactly q * scale. The representable range is
// symmetric (-127..127; -128 is never produced), which keeps |q_a * q_b|
// <= 127^2 and makes the int32 accumulator overflow bound a pure function
// of k. An all-zero channel gets scale 0 and quantizes to all zeros
// (inverse scale 0 by convention). Channels containing NaN/Inf are
// rejected outright — the same non-finite-rejection contract the loss
// guard and checkpoint reader follow — and the caller falls back to fp32.
//
// Every consumer (naive reference, blocked engine, tests) must go through
// these functions: cross-kernel bitwise equality of the int8 path depends
// on each element quantizing identically everywhere.

#ifndef DOT_TENSOR_QUANTIZE_H_
#define DOT_TENSOR_QUANTIZE_H_

#include <cstdint>

namespace dot {
namespace quant {

/// Largest representable quantized magnitude. The grid is symmetric:
/// values saturate at +/-127, never -128.
constexpr int32_t kQuantMax = 127;

/// Per-channel scale of `n` values starting at `x` with the given element
/// stride: max|x| / 127 (0 for an empty or all-zero channel). Returns
/// false — leaving `*scale` at 0 — when any value is non-finite.
bool ChannelScale(const float* x, int64_t n, int64_t stride, float* scale);

/// 1/scale for quantization; 0 when scale == 0 (all-zero channel), so the
/// quantized values come out 0 instead of Inf.
float InverseScale(float scale);

/// Quantizes one finite value: clamp(lrintf(v * inv_scale), -127, 127).
/// Round-to-nearest-even at *.5 boundaries (the default FP environment).
int8_t QuantizeValue(float v, float inv_scale);

/// Quantizes `n` strided values with one channel scale into `out`
/// (contiguous). `scale` must come from ChannelScale over the same data.
void QuantizeChannel(const float* x, int64_t n, int64_t stride, float scale,
                     int8_t* out);

/// Per-row scales of the row-major matrix a[rows, cols] into
/// scales[rows]. Returns false — zeroing all `rows` scales — if any
/// element is non-finite (PR 3 rejection idiom: refuse, don't clamp).
bool ComputeRowScales(const float* a, int64_t rows, int64_t cols,
                      float* scales);

}  // namespace quant
}  // namespace dot

#endif  // DOT_TENSOR_QUANTIZE_H_
