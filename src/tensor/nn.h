// Neural-network modules built on the tensor ops: parameter registry,
// initialization, checkpoint save/load, and the layers needed by the DOT
// models (Linear, Conv2d, Embedding, norms, multi-head attention, GRUCell).

#ifndef DOT_TENSOR_NN_H_
#define DOT_TENSOR_NN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/result.h"
#include "util/serialize.h"
#include "util/status.h"

namespace dot::nn {

/// \brief Base class with a named-parameter registry.
///
/// Subclasses register their parameters and sub-modules in their
/// constructor; Parameters() flattens the tree in registration order, which
/// also defines the checkpoint layout.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module and its children (depth-first,
  /// registration order).
  std::vector<Tensor> Parameters() const;

  /// (qualified name, parameter) pairs, e.g. "block1.conv.weight".
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total scalar parameter count.
  int64_t NumParams() const;

  /// Approximate in-memory model size in bytes (float32 weights).
  int64_t SizeBytes() const { return NumParams() * 4; }

  /// Zeroes gradients of all parameters.
  void ZeroGrad();

  /// Writes all parameters (with names and shapes) to `w`.
  Status Save(BinaryWriter* w) const;
  /// Reads parameters; names/shapes must match the current architecture.
  Status Load(BinaryReader* r);

  /// Convenience file-based checkpointing.
  Status SaveFile(const std::string& path) const;
  Status LoadFile(const std::string& path);

 protected:
  /// Registers a trainable tensor under `name`; marks it requires_grad.
  Tensor RegisterParameter(const std::string& name, Tensor t);
  /// Registers `child` (not owned) under `name`.
  void RegisterModule(const std::string& name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>* out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

// ---- Initialization helpers --------------------------------------------------

/// Kaiming-uniform init for a weight with given fan-in.
Tensor KaimingUniform(std::vector<int64_t> shape, int64_t fan_in, Rng* rng);

// ---- Layers -------------------------------------------------------------------

/// \brief Affine map y = x W + b with W stored [in, out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias = true);

  /// x: [..., in] -> [..., out].
  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

 private:
  int64_t in_, out_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

/// \brief 2-D convolution over NCHW tensors.
class Conv2dLayer : public Module {
 public:
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel,
              int64_t stride, int64_t padding, Rng* rng, bool bias = true);

  Tensor Forward(const Tensor& x) const;

  int64_t out_channels() const { return weight_.size(0); }

 private:
  int64_t stride_, padding_;
  Tensor weight_;  // [oc, ic, k, k]
  Tensor bias_;    // [oc] or undefined
};

/// \brief Lookup table of `count` embeddings of width `dim`.
class Embedding : public Module {
 public:
  Embedding(int64_t count, int64_t dim, Rng* rng);

  /// ids -> [ids.size(), dim].
  Tensor Forward(const std::vector<int64_t>& ids) const;

  int64_t dim() const { return table_.size(1); }

 private:
  Tensor table_;  // [count, dim]
};

/// \brief Layer normalization over the last dimension.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim);
  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_, beta_;
};

/// \brief Group normalization over NCHW channels.
class GroupNorm : public Module {
 public:
  GroupNorm(int64_t channels, int64_t groups);
  Tensor Forward(const Tensor& x) const;

 private:
  int64_t groups_;
  Tensor gamma_, beta_;
};

/// \brief Multi-head scaled-dot-product self-attention.
///
/// Forward takes [B, L, d] and applies attention over L. The MViT packs
/// valid tokens before calling this, so no attention mask is required here
/// (that *is* the paper's masking scheme, Fig. 7b).
class MultiheadAttention : public Module {
 public:
  MultiheadAttention(int64_t dim, int64_t heads, Rng* rng);

  /// Self-attention over [B, L, d]. If `key_bias` is non-null it must hold L
  /// values added to every attention-score row before the softmax — pass
  /// -1e9 on invalid positions to mask them (the vanilla-ViT masking scheme
  /// of the paper's Fig. 7a, which still pays for the full L x L scores).
  Tensor Forward(const Tensor& x, const std::vector<float>* key_bias = nullptr) const;

  int64_t heads() const { return heads_; }

 private:
  int64_t dim_, heads_;
  Linear wq_, wk_, wv_, wo_;
};

/// \brief Single GRU cell (used by the RNN path-based baselines).
class GRUCell : public Module {
 public:
  GRUCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// x: [B, input_dim], h: [B, hidden_dim] -> new hidden [B, hidden_dim].
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int64_t hidden_dim() const { return hidden_; }

 private:
  int64_t hidden_;
  Linear xz_, hz_, xr_, hr_, xn_, hn_;
};

/// \brief Two-layer feed-forward block with GELU (Transformer FFN).
class FeedForward : public Module {
 public:
  FeedForward(int64_t dim, int64_t hidden, Rng* rng);
  Tensor Forward(const Tensor& x) const;

 private:
  Linear fc1_, fc2_;
};

/// Sinusoidal positional/step encoding (paper Eq. 12): returns [count, dim].
/// Not trainable; computed once and cached by callers.
Tensor SinusoidalEncoding(int64_t count, int64_t dim);

}  // namespace dot::nn

#endif  // DOT_TENSOR_NN_H_
