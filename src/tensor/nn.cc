#include "tensor/nn.h"

#include <cmath>

#include "obs/profile.h"
#include "tensor/gemm_kernel.h"
#include "util/checkpoint.h"

namespace dot::nn {

// ---- Module -------------------------------------------------------------------

Tensor Module::RegisterParameter(const std::string& name, Tensor t) {
  t.set_requires_grad(true);
  params_.emplace_back(name, t);
  return t;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  children_.emplace_back(name, child);
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, t] : params_) out->emplace_back(prefix + name, t);
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectNamed("", &out);
  return out;
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (auto& [name, t] : NamedParameters()) {
    (void)name;
    out.push_back(t);
  }
  return out;
}

int64_t Module::NumParams() const {
  int64_t n = 0;
  for (const auto& t : Parameters()) n += t.numel();
  return n;
}

void Module::ZeroGrad() {
  for (auto& t : Parameters()) t.ZeroGrad();
}

Status Module::Save(BinaryWriter* w) const {
  auto named = NamedParameters();
  w->WriteU64(named.size());
  for (const auto& [name, t] : named) {
    w->WriteString(name);
    w->WriteI64Vector(t.shape());
    w->WriteF32Vector(t.ToVector());
  }
  if (!w->Ok()) return Status::IOError("model save failed");
  return Status::OK();
}

Status Module::Load(BinaryReader* r) {
  auto named = NamedParameters();
  uint64_t count = r->ReadU64();
  if (!r->Ok()) return Status::IOError("model load: cannot read header");
  if (count != named.size()) {
    return Status::InvalidArgument("model load: parameter count mismatch");
  }
  for (auto& [name, t] : named) {
    std::string fname = r->ReadString();
    std::vector<int64_t> shape = r->ReadI64Vector();
    std::vector<float> data = r->ReadF32Vector();
    if (!r->Ok()) return Status::IOError("model load: truncated file");
    if (fname != name) {
      return Status::InvalidArgument("model load: parameter name mismatch: " +
                                     fname + " vs " + name);
    }
    if (shape != t.shape() || static_cast<int64_t>(data.size()) != t.numel()) {
      return Status::InvalidArgument("model load: shape mismatch for " + name);
    }
    for (float v : data) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("model load: non-finite weight in " +
                                       name);
      }
    }
    t.CopyFrom(data);
  }
  // Parameters were overwritten in place: drop any quantized panels the
  // int8 GEMM path cached from the old values.
  gemm::ClearQuantCache();
  return Status::OK();
}

namespace {
constexpr char kModuleMagic[] = "DOTMOD";
constexpr uint64_t kModuleVersion = 1;
}  // namespace

Status Module::SaveFile(const std::string& path) const {
  CheckpointWriter w(path, kModuleMagic, kModuleVersion);
  if (!w.Ok()) return Status::IOError("cannot open " + path);
  DOT_RETURN_NOT_OK(Save(w.writer()));
  return w.Commit();
}

Status Module::LoadFile(const std::string& path) {
  DOT_ASSIGN_OR_RETURN(CheckpointReader r,
                       CheckpointReader::Open(path, kModuleMagic, kModuleVersion));
  return Load(&r.reader());
}

// ---- Init ---------------------------------------------------------------------

Tensor KaimingUniform(std::vector<int64_t> shape, int64_t fan_in, Rng* rng) {
  float bound = std::sqrt(3.0f / static_cast<float>(std::max<int64_t>(1, fan_in)));
  return Tensor::Rand(std::move(shape), rng, -bound, bound);
}

// ---- Linear -------------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : in_(in_features), out_(out_features) {
  weight_ = RegisterParameter(
      "weight", KaimingUniform({in_features, out_features}, in_features, rng));
  if (bias) {
    bias_ = RegisterParameter("bias",
                              KaimingUniform({out_features}, in_features, rng));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor x2 = x;
  std::vector<int64_t> orig = x.shape();
  if (x.dim() != 2) x2 = Reshape(x, {-1, in_});
  Tensor y = MatMul(x2, weight_);
  if (bias_.defined()) y = Add(y, bias_);
  if (x.dim() != 2) {
    orig.back() = out_;
    y = Reshape(y, orig);
  }
  return y;
}

// ---- Conv2dLayer ----------------------------------------------------------------

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel,
                         int64_t stride, int64_t padding, Rng* rng, bool bias)
    : stride_(stride), padding_(padding) {
  int64_t fan_in = in_channels * kernel * kernel;
  weight_ = RegisterParameter(
      "weight",
      KaimingUniform({out_channels, in_channels, kernel, kernel}, fan_in, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", KaimingUniform({out_channels}, fan_in, rng));
  }
}

Tensor Conv2dLayer::Forward(const Tensor& x) const {
  return Conv2d(x, weight_, bias_, stride_, padding_);
}

// ---- Embedding ------------------------------------------------------------------

Embedding::Embedding(int64_t count, int64_t dim, Rng* rng) {
  Tensor t = Tensor::Randn({count, dim}, rng);
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] *= 0.02f;  // small-normal init
  table_ = RegisterParameter("table", t);
}

Tensor Embedding::Forward(const std::vector<int64_t>& ids) const {
  return Rows(table_, ids);
}

// ---- Norms ----------------------------------------------------------------------

LayerNorm::LayerNorm(int64_t dim) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return LayerNormOp(x, gamma_, beta_);
}

GroupNorm::GroupNorm(int64_t channels, int64_t groups) : groups_(groups) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({channels}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({channels}));
}

Tensor GroupNorm::Forward(const Tensor& x) const {
  return GroupNormOp(x, gamma_, beta_, groups_);
}

// ---- MultiheadAttention -----------------------------------------------------------

MultiheadAttention::MultiheadAttention(int64_t dim, int64_t heads, Rng* rng)
    : dim_(dim),
      heads_(heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  DOT_CHECK(dim % heads == 0) << "attention dim must divide heads";
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
}

Tensor MultiheadAttention::Forward(const Tensor& x,
                                   const std::vector<float>* key_bias) const {
  DOT_CHECK(x.dim() == 3) << "attention expects [B, L, d]";
  int64_t b = x.size(0), l = x.size(1);
  int64_t dh = dim_ / heads_;
  // FLOPs: four [B*L, d] x [d, d] projections plus the two [L, L] score /
  // context batched products per head. Inclusive of the GEMMs below (which
  // are also counted under kGemm — see obs/profile.h).
  obs::OpTimer op_timer(
      obs::OpKind::kAttention,
      2.0 * static_cast<double>(b * l) *
          (4.0 * static_cast<double>(dim_ * dim_) +
           2.0 * static_cast<double>(l * dim_)));
  auto split = [&](const Tensor& t) {
    // [B, L, d] -> [B*h, L, dh]
    Tensor r = Reshape(t, {b, l, heads_, dh});
    r = Permute(r, {0, 2, 1, 3});
    return Reshape(r, {b * heads_, l, dh});
  };
  Tensor q = split(wq_.Forward(x));
  Tensor k = split(wk_.Forward(x));
  Tensor v = split(wv_.Forward(x));
  Tensor kt = Permute(k, {0, 2, 1});  // [B*h, dh, L]
  // The raw score matrix is freshly materialized and exclusively owned, so
  // inference scales (and biases) it in place instead of allocating.
  Tensor scores = ScaleReuse(BatchMatMul(q, kt),
                             1.0f / std::sqrt(static_cast<float>(dh)));
  if (key_bias != nullptr) {
    DOT_CHECK(static_cast<int64_t>(key_bias->size()) == l)
        << "key_bias length must equal sequence length";
    Tensor bias = Tensor::FromVector({l}, *key_bias);
    scores = AddReuse(scores, bias);  // broadcast over rows and heads
  }
  Tensor att = Softmax(scores);          // [B*h, L, L]
  Tensor ctx = BatchMatMul(att, v);      // [B*h, L, dh]
  ctx = Reshape(ctx, {b, heads_, l, dh});
  ctx = Permute(ctx, {0, 2, 1, 3});
  ctx = Reshape(ctx, {b, l, dim_});
  return wo_.Forward(ctx);
}

// ---- GRUCell --------------------------------------------------------------------

GRUCell::GRUCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : hidden_(hidden_dim),
      xz_(input_dim, hidden_dim, rng),
      hz_(hidden_dim, hidden_dim, rng, /*bias=*/false),
      xr_(input_dim, hidden_dim, rng),
      hr_(hidden_dim, hidden_dim, rng, /*bias=*/false),
      xn_(input_dim, hidden_dim, rng),
      hn_(hidden_dim, hidden_dim, rng, /*bias=*/false) {
  RegisterModule("xz", &xz_);
  RegisterModule("hz", &hz_);
  RegisterModule("xr", &xr_);
  RegisterModule("hr", &hr_);
  RegisterModule("xn", &xn_);
  RegisterModule("hn", &hn_);
}

Tensor GRUCell::Forward(const Tensor& x, const Tensor& h) const {
  Tensor z = Sigmoid(Add(xz_.Forward(x), hz_.Forward(h)));
  Tensor r = Sigmoid(Add(xr_.Forward(x), hr_.Forward(h)));
  Tensor n = Tanh(Add(xn_.Forward(x), hn_.Forward(Mul(r, h))));
  // h' = (1 - z) * n + z * h
  Tensor one_minus_z = AddScalar(Neg(z), 1.0f);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

// ---- FeedForward -----------------------------------------------------------------

FeedForward::FeedForward(int64_t dim, int64_t hidden, Rng* rng)
    : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

Tensor FeedForward::Forward(const Tensor& x) const {
  return fc2_.Forward(Gelu(fc1_.Forward(x)));
}

// ---- SinusoidalEncoding ------------------------------------------------------------

Tensor SinusoidalEncoding(int64_t count, int64_t dim) {
  Tensor out = Tensor::Empty({count, dim});
  for (int64_t pos = 0; pos < count; ++pos) {
    for (int64_t i = 0; i < dim; ++i) {
      // Pairs (sin, cos) over geometric frequencies, as in Eq. 12.
      double freq = std::pow(10000.0, -static_cast<double>(2 * (i / 2)) /
                                          static_cast<double>(dim));
      double angle = static_cast<double>(pos) * freq;
      out.at(pos * dim + i) = static_cast<float>((i % 2 == 0) ? std::sin(angle)
                                                              : std::cos(angle));
    }
  }
  return out;
}

}  // namespace dot::nn
