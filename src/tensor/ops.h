// Differentiable operations over Tensor. All functions build autograd graph
// nodes when GradModeEnabled() and any input requires (transitively) a
// gradient; under NoGradGuard they are pure forward computations.
//
// Broadcasting: binary elementwise ops support full numpy-style
// right-aligned broadcasting; gradients are reduce-summed back to each
// input's shape.

#ifndef DOT_TENSOR_OPS_H_
#define DOT_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace dot {

// ---- Binary elementwise (broadcasting) ------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// ---- Scalar ----------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// ---- Unary -----------------------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  ///< natural log; input must be positive
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
/// Gaussian Error Linear Unit (tanh approximation), the activation used in
/// the OCConv blocks (paper Eq. 16).
Tensor Gelu(const Tensor& a);
Tensor Silu(const Tensor& a);

// ---- Shape -----------------------------------------------------------------

/// Returns a zero-copy view with a new shape (shares the input's Storage).
/// One dimension may be -1 (inferred); dies with both shapes in the message
/// when the element counts cannot match.
Tensor Reshape(const Tensor& a, std::vector<int64_t> shape);
/// Reshape(a, {a.numel()}): zero-copy 1-D view.
Tensor Flatten(const Tensor& a);
/// Transpose of a 2-D tensor.
Tensor Transpose2D(const Tensor& a);
/// Generalized dimension permutation.
Tensor Permute(const Tensor& a, std::vector<int64_t> perm);
/// Concatenates tensors along `axis`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t axis);
/// Contiguous slice [start, start+len) along `axis`. Axis-0 slices are
/// zero-copy views into the input's Storage; other axes copy.
Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len);
/// Gathers rows of a 2-D tensor: out[i, :] = a[ids[i], :]. Backward
/// scatter-adds (used for embeddings and MViT token packing).
Tensor Rows(const Tensor& a, const std::vector<int64_t>& ids);

// ---- Reductions ------------------------------------------------------------

Tensor Sum(const Tensor& a);
Tensor Mean(const Tensor& a);
Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor MeanAxis(const Tensor& a, int64_t axis, bool keepdim = false);

// ---- Linear algebra ---------------------------------------------------------

/// 2-D matrix product [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// Batched 3-D matrix product [B,m,k] x [B,k,n] -> [B,m,n].
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

// ---- Neural-network functional ----------------------------------------------

/// Softmax over the last dimension.
Tensor Softmax(const Tensor& a);
/// Layer normalization over the last dimension with affine gamma/beta [d].
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);
/// Group normalization for NCHW inputs; gamma/beta have shape [C].
Tensor GroupNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   int64_t groups, float eps = 1e-5f);
/// 2-D convolution, NCHW x [OC,C,KH,KW] (+ optional bias [OC]).
Tensor Conv2d(const Tensor& x, const Tensor& w, const Tensor& bias, int64_t stride,
              int64_t padding);
/// Non-overlapping 2x2 average pooling (H, W must be even).
Tensor AvgPool2d(const Tensor& x);
/// Nearest-neighbour 2x upsampling of NCHW input.
Tensor UpsampleNearest2x(const Tensor& x);
/// Mean squared error between same-shaped tensors (scalar).
Tensor MseLoss(const Tensor& pred, const Tensor& target);

// ---- In-place (inference-only) ---------------------------------------------
// These mutate the first argument's buffer and therefore die (DOT_CHECK)
// when autograd is recording. Arithmetic is bitwise identical to the
// functional counterparts, so the sampling path stays deterministic with
// respect to the pure ops. Beware aliasing: the mutation is visible through
// every view sharing the Storage.

/// a += b (broadcasting b; the result shape must equal a's shape).
Tensor& AddInPlace_(Tensor& a, const Tensor& b);
/// a *= s.
Tensor& Scale_(Tensor& a, float s);

/// Add(a, b) while autograd records, AddInPlace_(a, b) under NoGradGuard.
/// Use for residual adds where `a` is freshly materialized and exclusively
/// owned, so inference reuses its buffer instead of allocating.
Tensor AddReuse(Tensor a, const Tensor& b);
/// MulScalar(a, s) while autograd records, Scale_(a, s) under NoGradGuard.
Tensor ScaleReuse(Tensor a, float s);

// The raw GEMM kernels (internal::Gemm/GemmTA/GemmTB) live in
// tensor/ops_internal.h; the engine behind them is tensor/gemm_kernel.h.

namespace internal {

/// Right-aligned numpy broadcast of two shapes; dies on incompatibility.
std::vector<int64_t> BroadcastShape(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b);

}  // namespace internal

}  // namespace dot

#endif  // DOT_TENSOR_OPS_H_
