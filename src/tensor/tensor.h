// A minimal float32 tensor with reverse-mode automatic differentiation.
//
// This is the training substrate for the DOT reproduction: the conditioned
// PiT denoiser (UNet), the MViT estimator, and all neural baselines are
// trained with it. Design notes:
//   * Row-major, always-contiguous data backed by pooled Storage
//     (tensor/storage.h): a TensorImpl is a (storage, offset, shape)
//     triple. Reshape / Detach / Flatten and contiguous axis-0 Slice are
//     zero-copy aliases into the same Storage; everything else copies.
//     Aliasing contract: writes through a view are visible in the base (and
//     vice versa); Clone() is the only guaranteed deep copy.
//   * Tensor::Empty contents are UNINITIALIZED — recycled pool buffers hold
//     stale bytes (or NaN poison under DOT_POOL_POISON). Every op must
//     write each output element; use Zeros when zero-fill is part of the
//     contract.
//   * Define-by-run autograd: each op may attach a GradFn node holding its
//     inputs and a backward closure; Tensor::Backward() runs a topological
//     sweep and accumulates gradients into leaf tensors. Gradient buffers
//     are per-impl (never shared between views); view ops route gradients
//     to their base through their backward node like any other op.
//   * A global grad-mode flag (NoGradGuard) disables graph construction
//     during inference (e.g. the 1000-step diffusion sampling loop).

#ifndef DOT_TENSOR_TENSOR_H_
#define DOT_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/storage.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dot {

class Tensor;

namespace internal {

/// Backward-graph node: knows its input tensors and how to push the output
/// gradient back into them.
struct GradFn {
  std::string name;
  std::vector<Tensor> inputs;
  // Called with the output tensor (whose grad is fully accumulated).
  std::function<void(const Tensor& out)> backward;
};

struct TensorImpl {
  std::vector<int64_t> shape;
  std::shared_ptr<Storage> storage;  // pooled buffer (possibly shared by views)
  int64_t offset = 0;                // float offset of element 0 into storage
  int64_t numel = 0;
  std::vector<float> grad;  // same size as numel once touched; empty otherwise
  bool requires_grad = false;
  std::shared_ptr<GradFn> grad_fn;  // non-null only for non-leaf outputs
};

}  // namespace internal

/// True when autograd graph construction is enabled (default).
bool GradModeEnabled();

/// \brief RAII guard that disables autograd within its scope. Nests: the
/// destructor restores the mode that was active at construction.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// \brief Shared-ownership handle to a float32 n-dimensional array.
///
/// Copying a Tensor copies the handle, not the data (PyTorch semantics).
/// Use Clone() for a deep copy.
class Tensor {
 public:
  /// An empty (null) tensor. defined() is false.
  Tensor() = default;

  bool defined() const { return impl_ != nullptr; }

  // ---- Creation -----------------------------------------------------------

  /// Uninitialized tensor of the given shape (see file comment: contents
  /// are stale pool bytes — every element must be written before reading).
  static Tensor Empty(std::vector<int64_t> shape);
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  /// Standard-normal entries drawn from `rng`.
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng);
  /// Uniform entries in [lo, hi).
  static Tensor Rand(std::vector<int64_t> shape, Rng* rng, float lo = 0.f,
                     float hi = 1.f);
  /// Copies `values` (size must match the shape's element count).
  static Tensor FromVector(std::vector<int64_t> shape, std::vector<float> values);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);

  // ---- Shape --------------------------------------------------------------

  const std::vector<int64_t>& shape() const { return impl_->shape; }
  int64_t dim() const { return static_cast<int64_t>(impl_->shape.size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const { return impl_->numel; }

  // ---- Data access --------------------------------------------------------

  float* data() { return impl_->storage->data() + impl_->offset; }
  const float* data() const { return impl_->storage->data() + impl_->offset; }

  /// The backing Storage (views share it). Identity handle for the GEMM
  /// quantized-weight cache; never null on a defined tensor.
  Storage* storage_ptr() const { return impl_->storage.get(); }

  /// Element access by flat index.
  float& at(int64_t i) { return data()[i]; }
  float at(int64_t i) const { return data()[i]; }

  /// Value of a 0-d or 1-element tensor.
  float item() const;

  /// Copies the elements out into a std::vector.
  std::vector<float> ToVector() const;
  /// Overwrites the elements from `values` (size must equal numel()).
  void CopyFrom(const std::vector<float>& values);
  /// Overwrites the elements from `src` (shapes' element counts must match).
  void CopyDataFrom(const Tensor& src);
  /// Sets every element to `value`.
  void Fill(float value);

  /// Deep copy (detached from the autograd graph; never aliases).
  Tensor Clone() const;
  /// Same data, detached from the graph. Zero-copy: shares this tensor's
  /// Storage (writes through either handle are visible in both).
  Tensor Detach() const;

  // ---- Autograd -----------------------------------------------------------

  bool requires_grad() const { return impl_->requires_grad; }
  Tensor& set_requires_grad(bool v) {
    impl_->requires_grad = v;
    return *this;
  }

  /// Gradient buffer; allocated (zero-filled) on first access.
  float* grad();
  const std::vector<float>& grad_vec() const { return impl_->grad; }
  bool has_grad() const { return !impl_->grad.empty(); }
  /// Zeroes the gradient buffer if allocated.
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this (scalar) tensor.
  /// Seeds d(this)/d(this) = 1. Dies with a diagnostic when called on a
  /// non-scalar, or on a tensor that neither requires grad nor has a
  /// backward graph (e.g. one produced under NoGradGuard).
  void Backward();

  // ---- Introspection ------------------------------------------------------

  std::string ShapeString() const;
  /// Debug rendering (small tensors only).
  std::string ToString() const;
  /// True if this tensor shares its Storage with `other` (aliasing views).
  bool SharesStorageWith(const Tensor& other) const {
    return defined() && other.defined() && impl_->storage == other.impl_->storage;
  }

  // ---- Internal (used by ops.cc / nn.cc) ----------------------------------

  internal::TensorImpl* impl() const { return impl_.get(); }
  void set_grad_fn(std::shared_ptr<internal::GradFn> fn) {
    impl_->grad_fn = std::move(fn);
  }
  const std::shared_ptr<internal::GradFn>& grad_fn() const {
    return impl_->grad_fn;
  }
  /// Accumulates `delta` (size numel()) into the grad buffer.
  void AccumulateGrad(const float* delta, int64_t n);

  /// Zero-copy view of `base` with a new shape, starting `offset` floats
  /// into base's elements (shape's element count + offset must fit in
  /// base). The view is a fresh autograd node (no grad_fn, own grad
  /// buffer); callers attach backward nodes as for any op output.
  static Tensor View(const Tensor& base, std::vector<int64_t> shape,
                     int64_t offset = 0);

 private:
  explicit Tensor(std::shared_ptr<internal::TensorImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::TensorImpl> impl_;
};

/// Number of elements implied by a shape.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

/// True if two shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace dot

#endif  // DOT_TENSOR_TENSOR_H_
