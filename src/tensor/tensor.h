// A minimal float32 tensor with reverse-mode automatic differentiation.
//
// This is the training substrate for the DOT reproduction: the conditioned
// PiT denoiser (UNet), the MViT estimator, and all neural baselines are
// trained with it. Design notes:
//   * Row-major, always-contiguous storage. Views copy (shapes here are
//     small; simplicity beats aliasing bugs).
//   * Define-by-run autograd: each op may attach a GradFn node holding its
//     inputs and a backward closure; Tensor::Backward() runs a topological
//     sweep and accumulates gradients into leaf tensors.
//   * A global grad-mode flag (NoGradGuard) disables graph construction
//     during inference (e.g. the 1000-step diffusion sampling loop).

#ifndef DOT_TENSOR_TENSOR_H_
#define DOT_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace dot {

class Tensor;

namespace internal {

/// Backward-graph node: knows its input tensors and how to push the output
/// gradient back into them.
struct GradFn {
  std::string name;
  std::vector<Tensor> inputs;
  // Called with the output tensor (whose grad is fully accumulated).
  std::function<void(const Tensor& out)> backward;
};

struct TensorImpl {
  std::vector<int64_t> shape;
  std::vector<float> data;
  std::vector<float> grad;  // same size as data once touched; empty otherwise
  bool requires_grad = false;
  std::shared_ptr<GradFn> grad_fn;  // non-null only for non-leaf outputs
};

}  // namespace internal

/// True when autograd graph construction is enabled (default).
bool GradModeEnabled();

/// \brief RAII guard that disables autograd within its scope.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// \brief Shared-ownership handle to a float32 n-dimensional array.
///
/// Copying a Tensor copies the handle, not the data (PyTorch semantics).
/// Use Clone() for a deep copy.
class Tensor {
 public:
  /// An empty (null) tensor. defined() is false.
  Tensor() = default;

  bool defined() const { return impl_ != nullptr; }

  // ---- Creation -----------------------------------------------------------

  /// Uninitialized tensor of the given shape.
  static Tensor Empty(std::vector<int64_t> shape);
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  /// Standard-normal entries drawn from `rng`.
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng);
  /// Uniform entries in [lo, hi).
  static Tensor Rand(std::vector<int64_t> shape, Rng* rng, float lo = 0.f,
                     float hi = 1.f);
  /// Copies `values` (size must match the shape's element count).
  static Tensor FromVector(std::vector<int64_t> shape, std::vector<float> values);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);

  // ---- Shape --------------------------------------------------------------

  const std::vector<int64_t>& shape() const { return impl_->shape; }
  int64_t dim() const { return static_cast<int64_t>(impl_->shape.size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const { return static_cast<int64_t>(impl_->data.size()); }

  // ---- Data access --------------------------------------------------------

  float* data() { return impl_->data.data(); }
  const float* data() const { return impl_->data.data(); }
  std::vector<float>& vec() { return impl_->data; }
  const std::vector<float>& vec() const { return impl_->data; }

  /// Element access by flat index.
  float& at(int64_t i) { return impl_->data[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return impl_->data[static_cast<size_t>(i)]; }

  /// Value of a 0-d or 1-element tensor.
  float item() const;

  /// Deep copy (detached from the autograd graph).
  Tensor Clone() const;
  /// Same data, detached from the graph (shares storage).
  Tensor Detach() const;

  // ---- Autograd -----------------------------------------------------------

  bool requires_grad() const { return impl_->requires_grad; }
  Tensor& set_requires_grad(bool v) {
    impl_->requires_grad = v;
    return *this;
  }

  /// Gradient buffer; allocated (zero-filled) on first access.
  float* grad();
  const std::vector<float>& grad_vec() const { return impl_->grad; }
  bool has_grad() const { return !impl_->grad.empty(); }
  /// Zeroes the gradient buffer if allocated.
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this (scalar) tensor.
  /// Seeds d(this)/d(this) = 1.
  void Backward();

  // ---- Introspection ------------------------------------------------------

  std::string ShapeString() const;
  /// Debug rendering (small tensors only).
  std::string ToString() const;

  // ---- Internal (used by ops.cc / nn.cc) ----------------------------------

  internal::TensorImpl* impl() const { return impl_.get(); }
  void set_grad_fn(std::shared_ptr<internal::GradFn> fn) {
    impl_->grad_fn = std::move(fn);
  }
  const std::shared_ptr<internal::GradFn>& grad_fn() const {
    return impl_->grad_fn;
  }
  /// Accumulates `delta` (size numel()) into the grad buffer.
  void AccumulateGrad(const float* delta, int64_t n);

 private:
  explicit Tensor(std::shared_ptr<internal::TensorImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::TensorImpl> impl_;
};

/// Number of elements implied by a shape.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

/// True if two shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace dot

#endif  // DOT_TENSOR_TENSOR_H_
