#include "tensor/optim.h"

#include <cmath>

#include "tensor/gemm_kernel.h"

namespace dot::optim {

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.numel(), 0.0f);
    v_.emplace_back(p.numel(), 0.0f);
  }
}

void Adam::Step() {
  // Weights are about to mutate in place: any quantized panels cached from
  // them are stale. (No-op unless an int8 serving pass ran on this model.)
  gemm::ClearQuantCache();
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;  // parameter untouched this step
    const float* g = p.grad_vec().data();
    float* data = p.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      float mhat = m[j] / bc1;
      float vhat = v[j] / bc2;
      data[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

SGD::SGD(std::vector<Tensor> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  vel_.reserve(params_.size());
  for (const auto& p : params_) vel_.emplace_back(p.numel(), 0.0f);
}

void SGD::Step() {
  gemm::ClearQuantCache();  // in-place weight mutation (see Adam::Step)
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad_vec().data();
    float* data = p.data();
    float* v = vel_[i].data();
    int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      v[j] = momentum_ * v[j] + g[j];
      data[j] -= lr_ * v[j];
    }
  }
}

void SGD::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

}  // namespace dot::optim
