// Matrix multiplication kernels and differentiable wrappers.

#include <algorithm>

#include "obs/profile.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"
#include "util/thread_pool.h"

namespace dot {

using internal::AttachNode;
using internal::NeedsGrad;

namespace internal {

namespace {
// Rows above which a GEMM is split across the global thread pool.
constexpr int64_t kParallelRowThreshold = 64;

template <typename RowFn>
void ForEachRow(int64_t m, RowFn fn) {
  if (m >= kParallelRowThreshold && ThreadPool::Global()->num_threads() > 1) {
    ParallelFor(
        ThreadPool::Global(), m,
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) fn(i);
        },
        /*min_chunk=*/8);
  } else {
    for (int64_t i = 0; i < m; ++i) fn(i);
  }
}
}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate) {
  // Short-and-wide GEMMs — the batched-conv shape [OC, CKK] x [CKK, B*OHW]
  // with few rows but a long streaming dimension — parallelize over column
  // blocks instead of rows. Every output element keeps the same
  // k-accumulation order as the serial kernel, so the result is bitwise
  // identical for any thread count or block partitioning.
  constexpr int64_t kParallelColThreshold = 2048;
  if (m < kParallelRowThreshold && n >= kParallelColThreshold &&
      ThreadPool::Global()->num_threads() > 1) {
    ParallelFor(
        ThreadPool::Global(), n,
        [&](int64_t jb, int64_t je) {
          for (int64_t i = 0; i < m; ++i) {
            float* crow = c + i * n;
            if (!accumulate) std::fill(crow + jb, crow + je, 0.0f);
            const float* arow = a + i * k;
            for (int64_t kk = 0; kk < k; ++kk) {
              float av = arow[kk];
              if (av == 0.0f) continue;
              const float* brow = b + kk * n;
              for (int64_t j = jb; j < je; ++j) crow[j] += av * brow[j];
            }
          }
        },
        /*min_chunk=*/512);
    return;
  }
  // i-k-j loop order: unit-stride access on B and C.
  ForEachRow(m, [&](int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    const float* arow = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

void GemmTA(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  // A is [k, m]; C[i, j] = sum_kk A[kk, i] * B[kk, j].
  ForEachRow(m, [&](int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = a[kk * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

void GemmTB(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  // B is [n, k]; C[i, j] = dot(A[i, :], B[j, :]).
  ForEachRow(m, [&](int64_t i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  });
}

}  // namespace internal

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DOT_CHECK(a.dim() == 2 && b.dim() == 2) << "MatMul needs 2-D inputs";
  int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  DOT_CHECK(b.size(0) == k) << "MatMul inner-dim mismatch: " << a.ShapeString()
                            << " x " << b.ShapeString();
  obs::OpTimer op_timer(obs::OpKind::kGemm,
                        2.0 * static_cast<double>(m) * static_cast<double>(k) *
                            static_cast<double>(n));
  Tensor out = Tensor::Empty({m, n});
  internal::Gemm(a.data(), b.data(), out.data(), m, k, n, /*accumulate=*/false);
  Tensor a_cap = a, b_cap = b;
  AttachNode(&out, "matmul", {a, b}, [a_cap, b_cap, m, k, n](const Tensor& o) {
    Tensor a = a_cap, b = b_cap;
    const float* gout = o.grad_vec().data();
    if (NeedsGrad(a)) {
      // dA = dC * B^T : [m,n] x [k,n]^T -> [m,k]
      internal::GemmTB(gout, b.data(), a.grad(), m, n, k, /*accumulate=*/true);
    }
    if (NeedsGrad(b)) {
      // dB = A^T * dC : [m,k]^T x [m,n] -> [k,n]
      internal::GemmTA(a.data(), gout, b.grad(), k, m, n, /*accumulate=*/true);
    }
  });
  return out;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  DOT_CHECK(a.dim() == 3 && b.dim() == 3) << "BatchMatMul needs 3-D inputs";
  int64_t bs = a.size(0), m = a.size(1), k = a.size(2), n = b.size(2);
  DOT_CHECK(b.size(0) == bs && b.size(1) == k)
      << "BatchMatMul shape mismatch: " << a.ShapeString() << " x "
      << b.ShapeString();
  obs::OpTimer op_timer(obs::OpKind::kGemm,
                        2.0 * static_cast<double>(bs) * static_cast<double>(m) *
                            static_cast<double>(k) * static_cast<double>(n));
  Tensor out = Tensor::Empty({bs, m, n});
  for (int64_t i = 0; i < bs; ++i) {
    internal::Gemm(a.data() + i * m * k, b.data() + i * k * n,
                   out.data() + i * m * n, m, k, n, /*accumulate=*/false);
  }
  Tensor a_cap = a, b_cap = b;
  AttachNode(&out, "bmm", {a, b}, [a_cap, b_cap, bs, m, k, n](const Tensor& o) {
    Tensor a = a_cap, b = b_cap;
    const float* gout = o.grad_vec().data();
    bool need_a = NeedsGrad(a), need_b = NeedsGrad(b);
    float* ga = need_a ? a.grad() : nullptr;
    float* gb = need_b ? b.grad() : nullptr;
    for (int64_t i = 0; i < bs; ++i) {
      const float* g = gout + i * m * n;
      if (need_a) {
        internal::GemmTB(g, b.data() + i * k * n, ga + i * m * k, m, n, k, true);
      }
      if (need_b) {
        internal::GemmTA(a.data() + i * m * k, g, gb + i * k * n, k, m, n, true);
      }
    }
  });
  return out;
}

}  // namespace dot
