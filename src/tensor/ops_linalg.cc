// Matrix multiplication dispatch and differentiable wrappers.
//
// The kernel bodies live in gemm_kernel.cc; internal::Gemm* are thin
// dispatchers through the process-wide kernel choice (DOT_GEMM_KERNEL /
// gemm::SetKernel), so conv2d, MatMul/BatchMatMul (attention), and every FC
// layer all route through the same engine.

#include "obs/profile.h"
#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"

namespace dot {

using internal::AttachNode;
using internal::NeedsGrad;

namespace internal {

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate) {
  GemmEx(a, b, c, m, k, n, accumulate, nullptr, nullptr);
}

void GemmEx(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate, Storage* a_storage,
            Storage* b_storage) {
  // Int8 is an inference-path precision: any GEMM issued while autograd is
  // recording stays fp32 so training and gradcheck see exact-gradient
  // arithmetic regardless of DOT_GEMM_PRECISION.
  gemm::Precision precision =
      GradModeEnabled() ? gemm::Precision::kFp32 : gemm::ActivePrecision();
  gemm::RunEx(gemm::ActiveKernel(), precision, gemm::Layout::kNN, a, b, c, m,
              k, n, accumulate, a_storage, b_storage);
}

void GemmTA(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  // A is [k, m]; C[i, j] = sum_kk A[kk, i] * B[kk, j].
  gemm::Run(gemm::ActiveKernel(), gemm::Layout::kTA, a, b, c, m, k, n,
            accumulate);
}

void GemmTB(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  // B is [n, k]; C[i, j] = dot(A[i, :], B[j, :]).
  gemm::Run(gemm::ActiveKernel(), gemm::Layout::kTB, a, b, c, m, k, n,
            accumulate);
}

}  // namespace internal

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DOT_CHECK(a.dim() == 2 && b.dim() == 2) << "MatMul needs 2-D inputs";
  int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  DOT_CHECK(b.size(0) == k) << "MatMul inner-dim mismatch: " << a.ShapeString()
                            << " x " << b.ShapeString();
  obs::OpTimer op_timer(obs::OpKind::kGemm,
                        2.0 * static_cast<double>(m) * static_cast<double>(k) *
                            static_cast<double>(n));
  Tensor out = Tensor::Empty({m, n});
  internal::GemmEx(a.data(), b.data(), out.data(), m, k, n,
                   /*accumulate=*/false, internal::QuantWeightHandle(a),
                   internal::QuantWeightHandle(b));
  Tensor a_cap = a, b_cap = b;
  AttachNode(&out, "matmul", {a, b}, [a_cap, b_cap, m, k, n](const Tensor& o) {
    Tensor a = a_cap, b = b_cap;
    const float* gout = o.grad_vec().data();
    if (NeedsGrad(a)) {
      // dA = dC * B^T : [m,n] x [k,n]^T -> [m,k]
      internal::GemmTB(gout, b.data(), a.grad(), m, n, k, /*accumulate=*/true);
    }
    if (NeedsGrad(b)) {
      // dB = A^T * dC : [m,k]^T x [m,n] -> [k,n]
      internal::GemmTA(a.data(), gout, b.grad(), k, m, n, /*accumulate=*/true);
    }
  });
  return out;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  DOT_CHECK(a.dim() == 3 && b.dim() == 3) << "BatchMatMul needs 3-D inputs";
  int64_t bs = a.size(0), m = a.size(1), k = a.size(2), n = b.size(2);
  DOT_CHECK(b.size(0) == bs && b.size(1) == k)
      << "BatchMatMul shape mismatch: " << a.ShapeString() << " x "
      << b.ShapeString();
  obs::OpTimer op_timer(obs::OpKind::kGemm,
                        2.0 * static_cast<double>(bs) * static_cast<double>(m) *
                            static_cast<double>(k) * static_cast<double>(n));
  Tensor out = Tensor::Empty({bs, m, n});
  for (int64_t i = 0; i < bs; ++i) {
    internal::Gemm(a.data() + i * m * k, b.data() + i * k * n,
                   out.data() + i * m * n, m, k, n, /*accumulate=*/false);
  }
  Tensor a_cap = a, b_cap = b;
  AttachNode(&out, "bmm", {a, b}, [a_cap, b_cap, bs, m, k, n](const Tensor& o) {
    Tensor a = a_cap, b = b_cap;
    const float* gout = o.grad_vec().data();
    bool need_a = NeedsGrad(a), need_b = NeedsGrad(b);
    float* ga = need_a ? a.grad() : nullptr;
    float* gb = need_b ? b.grad() : nullptr;
    for (int64_t i = 0; i < bs; ++i) {
      const float* g = gout + i * m * n;
      if (need_a) {
        internal::GemmTB(g, b.data() + i * k * n, ga + i * m * k, m, n, k, true);
      }
      if (need_b) {
        internal::GemmTA(a.data() + i * m * k, g, gb + i * k * n, k, m, n, true);
      }
    }
  });
  return out;
}

}  // namespace dot
