#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dot {

namespace {
thread_local bool g_grad_enabled = true;

std::shared_ptr<internal::TensorImpl> MakeImpl(std::vector<int64_t> shape) {
  int64_t n = ShapeNumel(shape);
  DOT_CHECK(n >= 0) << "negative shape";
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->numel = n;
  impl->storage = Storage::Allocate(n);
  return impl;
}

}  // namespace

bool GradModeEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

Tensor Tensor::Empty(std::vector<int64_t> shape) {
  return Tensor(MakeImpl(std::move(shape)));
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  Tensor t = Empty(std::move(shape));
  t.Fill(0.0f);
  return t;
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t = Empty(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = static_cast<float>(rng->Normal());
  return t;
}

Tensor Tensor::Rand(std::vector<int64_t> shape, Rng* rng, float lo, float hi) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> values) {
  DOT_CHECK(ShapeNumel(shape) == static_cast<int64_t>(values.size()))
      << "FromVector: shape/value size mismatch";
  Tensor t = Empty(std::move(shape));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t = Empty({n});
  for (int64_t i = 0; i < n; ++i) t.at(i) = static_cast<float>(i);
  return t;
}

Tensor Tensor::View(const Tensor& base, std::vector<int64_t> shape,
                    int64_t offset) {
  DOT_CHECK(base.defined()) << "View of undefined tensor";
  int64_t n = ShapeNumel(shape);
  DOT_CHECK(offset >= 0 && offset + n <= base.numel())
      << "View out of bounds: offset " << offset << " + " << n
      << " elements exceeds base " << base.ShapeString();
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->numel = n;
  impl->storage = base.impl_->storage;
  impl->offset = base.impl_->offset + offset;
  return Tensor(std::move(impl));
}

int64_t Tensor::size(int64_t d) const {
  if (d < 0) d += dim();
  DOT_CHECK(d >= 0 && d < dim()) << "size(): dim out of range";
  return impl_->shape[static_cast<size_t>(d)];
}

float Tensor::item() const {
  DOT_CHECK(numel() == 1) << "item() on tensor with " << numel() << " elements";
  return data()[0];
}

std::vector<float> Tensor::ToVector() const {
  return std::vector<float>(data(), data() + numel());
}

void Tensor::CopyFrom(const std::vector<float>& values) {
  DOT_CHECK(static_cast<int64_t>(values.size()) == numel())
      << "CopyFrom: size mismatch (" << values.size() << " values into "
      << ShapeString() << ")";
  std::copy(values.begin(), values.end(), data());
}

void Tensor::CopyDataFrom(const Tensor& src) {
  DOT_CHECK(src.numel() == numel())
      << "CopyDataFrom: element count mismatch " << src.ShapeString() << " -> "
      << ShapeString();
  std::copy(src.data(), src.data() + numel(), data());
}

void Tensor::Fill(float value) { std::fill(data(), data() + numel(), value); }

Tensor Tensor::Clone() const {
  Tensor t = Empty(impl_->shape);
  std::copy(data(), data() + numel(), t.data());
  return t;
}

Tensor Tensor::Detach() const {
  // Zero-copy: the detached handle shares this tensor's Storage but has no
  // autograd state of its own.
  return View(*this, impl_->shape, 0);
}

float* Tensor::grad() {
  if (impl_->grad.empty()) {
    impl_->grad.assign(static_cast<size_t>(impl_->numel), 0.0f);
  }
  return impl_->grad.data();
}

void Tensor::ZeroGrad() {
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

void Tensor::AccumulateGrad(const float* delta, int64_t n) {
  DOT_CHECK(n == numel()) << "AccumulateGrad size mismatch";
  float* g = grad();
  for (int64_t i = 0; i < n; ++i) g[i] += delta[i];
}

void Tensor::Backward() {
  DOT_CHECK(defined()) << "Backward() on undefined tensor";
  DOT_CHECK(numel() == 1) << "Backward() requires a scalar output, got "
                          << ShapeString();
  // A tensor with neither a backward graph nor requires_grad cannot
  // propagate anything: calling Backward() on it is a caller bug (the usual
  // cause is a forward pass run under NoGradGuard).
  DOT_CHECK(grad_fn() != nullptr || requires_grad())
      << "Backward() on a tensor with no autograd graph (requires_grad is "
         "false and no grad_fn — was the forward pass run under NoGradGuard?)";

  // Topological order over the GradFn DAG (identity = TensorImpl*).
  std::vector<Tensor> topo;
  std::unordered_set<internal::TensorImpl*> visited;
  // Iterative DFS to avoid deep recursion on long graphs.
  struct Frame {
    Tensor t;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  if (grad_fn()) stack.push_back({*this, 0});
  visited.insert(impl());
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& fn = f.t.grad_fn();
    if (!fn || f.next_child >= fn->inputs.size()) {
      topo.push_back(f.t);
      stack.pop_back();
      continue;
    }
    Tensor child = fn->inputs[f.next_child++];
    if (child.grad_fn() && !visited.count(child.impl())) {
      visited.insert(child.impl());
      stack.push_back({child, 0});
    }
  }

  // Seed and sweep in reverse topological order.
  grad()[0] = 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    auto& fn = it->grad_fn();
    if (fn && fn->backward) fn->backward(*it);
  }
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (int64_t i = 0; i < dim(); ++i) {
    if (i) os << ", ";
    os << impl_->shape[static_cast<size_t>(i)];
  }
  os << "]";
  return os.str();
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor" << ShapeString() << " {";
  int64_t n = std::min<int64_t>(numel(), 32);
  const float* p = data();
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << p[i];
  }
  if (numel() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace dot
