#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dot {

namespace {
thread_local bool g_grad_enabled = true;
}

bool GradModeEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

Tensor Tensor::Empty(std::vector<int64_t> shape) {
  auto impl = std::make_shared<internal::TensorImpl>();
  int64_t n = ShapeNumel(shape);
  DOT_CHECK(n >= 0) << "negative shape";
  impl->shape = std::move(shape);
  impl->data.resize(static_cast<size_t>(n));
  return Tensor(std::move(impl));
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Empty(std::move(shape));  // vector default-initializes to 0
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t = Empty(std::move(shape));
  std::fill(t.vec().begin(), t.vec().end(), value);
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng) {
  Tensor t = Empty(std::move(shape));
  for (auto& v : t.vec()) v = static_cast<float>(rng->Normal());
  return t;
}

Tensor Tensor::Rand(std::vector<int64_t> shape, Rng* rng, float lo, float hi) {
  Tensor t = Empty(std::move(shape));
  for (auto& v : t.vec()) v = static_cast<float>(rng->Uniform(lo, hi));
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> values) {
  DOT_CHECK(ShapeNumel(shape) == static_cast<int64_t>(values.size()))
      << "FromVector: shape/value size mismatch";
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(values);
  return Tensor(std::move(impl));
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t = Empty({n});
  for (int64_t i = 0; i < n; ++i) t.at(i) = static_cast<float>(i);
  return t;
}

int64_t Tensor::size(int64_t d) const {
  if (d < 0) d += dim();
  DOT_CHECK(d >= 0 && d < dim()) << "size(): dim out of range";
  return impl_->shape[static_cast<size_t>(d)];
}

float Tensor::item() const {
  DOT_CHECK(numel() == 1) << "item() on tensor with " << numel() << " elements";
  return impl_->data[0];
}

Tensor Tensor::Clone() const {
  Tensor t = Empty(impl_->shape);
  t.vec() = impl_->data;
  return t;
}

Tensor Tensor::Detach() const {
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // copy: keeps semantics simple & safe
  return Tensor(std::move(impl));
}

float* Tensor::grad() {
  if (impl_->grad.empty()) impl_->grad.assign(impl_->data.size(), 0.0f);
  return impl_->grad.data();
}

void Tensor::ZeroGrad() {
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

void Tensor::AccumulateGrad(const float* delta, int64_t n) {
  DOT_CHECK(n == numel()) << "AccumulateGrad size mismatch";
  float* g = grad();
  for (int64_t i = 0; i < n; ++i) g[i] += delta[i];
}

void Tensor::Backward() {
  DOT_CHECK(defined()) << "Backward() on undefined tensor";
  DOT_CHECK(numel() == 1) << "Backward() requires a scalar output";

  // Topological order over the GradFn DAG (identity = TensorImpl*).
  std::vector<Tensor> topo;
  std::unordered_set<internal::TensorImpl*> visited;
  // Iterative DFS to avoid deep recursion on long graphs.
  struct Frame {
    Tensor t;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  if (grad_fn()) stack.push_back({*this, 0});
  visited.insert(impl());
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& fn = f.t.grad_fn();
    if (!fn || f.next_child >= fn->inputs.size()) {
      topo.push_back(f.t);
      stack.pop_back();
      continue;
    }
    Tensor child = fn->inputs[f.next_child++];
    if (child.grad_fn() && !visited.count(child.impl())) {
      visited.insert(child.impl());
      stack.push_back({child, 0});
    }
  }

  // Seed and sweep in reverse topological order.
  grad()[0] = 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    auto& fn = it->grad_fn();
    if (fn && fn->backward) fn->backward(*it);
  }
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (int64_t i = 0; i < dim(); ++i) {
    if (i) os << ", ";
    os << impl_->shape[static_cast<size_t>(i)];
  }
  os << "]";
  return os.str();
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor" << ShapeString() << " {";
  int64_t n = std::min<int64_t>(numel(), 32);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << impl_->data[static_cast<size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace dot
