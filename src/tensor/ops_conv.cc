// Convolution, pooling and upsampling for NCHW tensors.
//
// Conv2d lowers the whole batch to a single GEMM: im2col writes every
// sample's patch matrix into one [C*KH*KW, B*OH*OW] buffer so the matrix
// product runs with a long streaming dimension (order-of-magnitude better
// throughput on one core than per-sample GEMMs). The products route
// through the blocked/SIMD engine behind internal::Gemm* (DOT_GEMM_KERNEL,
// see tensor/gemm_kernel.h); per-element results are independent of the
// batch position, so batched and per-sample convs stay bitwise equal under
// every kernel. The backward pass recomputes the column buffer
// (memory-for-time trade-off appropriate to the small PiT images this
// library trains on).
//
// The im2col / col2im / output-scatter loops are partitioned over
// ThreadPool::Global() by (sample, channel) — each work item writes a
// disjoint region of the destination buffer and performs no cross-item
// reduction, so results are bitwise identical for any thread count (the
// determinism the batched serving path and determinism_test rely on).

#include <algorithm>

#include "obs/profile.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"
#include "util/thread_pool.h"

namespace dot {

using internal::AttachNode;
using internal::NeedsGrad;

namespace {

struct ConvDims {
  int64_t n, c, h, w;      // input
  int64_t oc, kh, kw;      // kernel
  int64_t oh, ow;          // output
  int64_t stride, pad;
  int64_t ckk() const { return c * kh * kw; }
  int64_t ohw() const { return oh * ow; }
};

/// Picks a ParallelFor chunk size so each task covers at least
/// `kMinParallelElems` written elements (`per_item` = elements per item).
int64_t ChunkFor(int64_t per_item) {
  constexpr int64_t kMinParallelElems = 4096;
  return std::max<int64_t>(1, kMinParallelElems / std::max<int64_t>(1, per_item));
}

/// Expands one (sample, channel) plane into the batch column buffer: row r
/// of the patch matrix lands at col + r * row_stride + col_offset.
void Im2ColChannel(const float* xc, const ConvDims& d, int64_t c, float* col,
                   int64_t row_stride, int64_t col_offset) {
  for (int64_t kh = 0; kh < d.kh; ++kh) {
    for (int64_t kw = 0; kw < d.kw; ++kw) {
      float* crow = col + ((c * d.kh + kh) * d.kw + kw) * row_stride + col_offset;
      for (int64_t oh = 0; oh < d.oh; ++oh) {
        int64_t ih = oh * d.stride + kh - d.pad;
        float* dst = crow + oh * d.ow;
        if (ih < 0 || ih >= d.h) {
          std::fill(dst, dst + d.ow, 0.0f);
          continue;
        }
        const float* src = xc + ih * d.w;
        for (int64_t ow = 0; ow < d.ow; ++ow) {
          int64_t iw = ow * d.stride + kw - d.pad;
          dst[ow] = (iw >= 0 && iw < d.w) ? src[iw] : 0.0f;
        }
      }
    }
  }
}

/// Scatter-adds one (sample, channel) plane's column gradients (strided
/// layout) back into that plane's input gradient.
void Col2ImChannel(const float* col, const ConvDims& d, int64_t c,
                   int64_t row_stride, int64_t col_offset, float* gc) {
  for (int64_t kh = 0; kh < d.kh; ++kh) {
    for (int64_t kw = 0; kw < d.kw; ++kw) {
      const float* crow =
          col + ((c * d.kh + kh) * d.kw + kw) * row_stride + col_offset;
      for (int64_t oh = 0; oh < d.oh; ++oh) {
        int64_t ih = oh * d.stride + kh - d.pad;
        if (ih < 0 || ih >= d.h) continue;
        const float* src = crow + oh * d.ow;
        float* dst = gc + ih * d.w;
        for (int64_t ow = 0; ow < d.ow; ++ow) {
          int64_t iw = ow * d.stride + kw - d.pad;
          if (iw >= 0 && iw < d.w) dst[iw] += src[ow];
        }
      }
    }
  }
}

/// Fills the batch column buffer [CKK, B*OHW] from an NCHW input,
/// partitioned over the pool by (sample, channel) plane. Each plane writes
/// a disjoint set of column-buffer rows/columns, so the result does not
/// depend on the partitioning.
void BatchIm2Col(const float* x, const ConvDims& d, float* col) {
  int64_t total = d.n * d.ohw();
  int64_t items = d.n * d.c;
  ParallelFor(
      ThreadPool::Global(), items,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          int64_t b = i / d.c, c = i % d.c;
          Im2ColChannel(x + (b * d.c + c) * d.h * d.w, d, c, col, total,
                        b * d.ohw());
        }
      },
      ChunkFor(d.kh * d.kw * d.ohw()));
}

/// Scatters the whole batch's column gradients back into the input
/// gradient, partitioned like BatchIm2Col. Each (sample, channel) plane
/// accumulates only into its own gx slice in a fixed loop order.
void BatchCol2Im(const float* col, const ConvDims& d, float* gx) {
  int64_t total = d.n * d.ohw();
  int64_t items = d.n * d.c;
  ParallelFor(
      ThreadPool::Global(), items,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          int64_t b = i / d.c, c = i % d.c;
          Col2ImChannel(col, d, c, total, b * d.ohw(),
                        gx + (b * d.c + c) * d.h * d.w);
        }
      },
      ChunkFor(d.kh * d.kw * d.ohw()));
}

}  // namespace

Tensor Conv2d(const Tensor& x, const Tensor& w, const Tensor& bias, int64_t stride,
              int64_t padding) {
  DOT_CHECK(x.dim() == 4 && w.dim() == 4) << "Conv2d needs NCHW input and OIHW kernel";
  ConvDims d;
  d.n = x.size(0);
  d.c = x.size(1);
  d.h = x.size(2);
  d.w = x.size(3);
  d.oc = w.size(0);
  DOT_CHECK(w.size(1) == d.c) << "Conv2d channel mismatch";
  d.kh = w.size(2);
  d.kw = w.size(3);
  d.stride = stride;
  d.pad = padding;
  d.oh = (d.h + 2 * padding - d.kh) / stride + 1;
  d.ow = (d.w + 2 * padding - d.kw) / stride + 1;
  DOT_CHECK(d.oh > 0 && d.ow > 0) << "Conv2d output collapsed to zero";
  bool has_bias = bias.defined();
  if (has_bias) DOT_CHECK(bias.numel() == d.oc) << "Conv2d bias size";

  // Observability hooks; both collapse to one relaxed load when disabled.
  // FLOPs: the lowered GEMM's 2 * OC * CKK multiply-adds per output pixel.
  obs::OpTimer op_timer(obs::OpKind::kConv2d,
                        2.0 * static_cast<double>(d.oc) *
                            static_cast<double>(d.ckk()) *
                            static_cast<double>(d.n * d.ohw()));
  obs::TraceSpan span("conv2d");

  int64_t cols = d.n * d.ohw();
  Tensor out = Tensor::Empty({d.n, d.oc, d.oh, d.ow});
  {
    // Pooled scratch: both buffers recycle into the pool at scope exit, so
    // repeated same-shape convs (every reverse-diffusion step) allocate
    // nothing fresh. Contents start uninitialized; BatchIm2Col writes every
    // column element and Gemm(accumulate=false) fully overwrites tmp.
    storage::Scratch col(d.ckk() * cols);
    storage::Scratch tmp(d.oc * cols);
    BatchIm2Col(x.data(), d, col.data());
    // One GEMM for the whole batch: [OC, CKK] x [CKK, B*OHW]. The weight is
    // the A operand — its quantized panels are cacheable when serving.
    internal::GemmEx(w.data(), col.data(), tmp.data(), d.oc, d.ckk(), cols,
                     false, internal::QuantWeightHandle(w), nullptr);
    // Scatter [OC, B*OHW] -> [B, OC, OHW], fusing the bias. Each
    // (sample, out-channel) row is written by exactly one task.
    const float* bias_ptr = has_bias ? bias.data() : nullptr;
    float* out_ptr = out.data();
    const float* tmp_ptr = tmp.data();
    ParallelFor(
        ThreadPool::Global(), d.n * d.oc,
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            int64_t b = i / d.oc, oc = i % d.oc;
            const float* src = tmp_ptr + oc * cols + b * d.ohw();
            float* dst = out_ptr + i * d.ohw();
            float bv = bias_ptr ? bias_ptr[oc] : 0.0f;
            for (int64_t j = 0; j < d.ohw(); ++j) dst[j] = src[j] + bv;
          }
        },
        ChunkFor(d.ohw()));
  }

  std::vector<Tensor> inputs = {x, w};
  if (has_bias) inputs.push_back(bias);
  Tensor x_cap = x, w_cap = w, b_cap = bias;
  AttachNode(&out, "conv2d", inputs,
             [x_cap, w_cap, b_cap, d, has_bias, cols](const Tensor& o) {
               Tensor x = x_cap, w = w_cap, b = b_cap;
               const float* gout = o.grad_vec().data();
               bool need_x = NeedsGrad(x);
               bool need_w = NeedsGrad(w);
               bool need_b = has_bias && NeedsGrad(b);

               // Gather dOut into [OC, B*OHW] once (disjoint row segments
               // per task, deterministic for any partitioning). Pooled
               // scratch; every element is written by the copy below.
               storage::Scratch gall(d.oc * cols);
               float* gall_ptr = gall.data();
               ParallelFor(
                   ThreadPool::Global(), d.n * d.oc,
                   [&](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) {
                       int64_t bb = i / d.oc, oc = i % d.oc;
                       const float* src = gout + i * d.ohw();
                       float* dst = gall_ptr + oc * cols + bb * d.ohw();
                       std::copy(src, src + d.ohw(), dst);
                     }
                   },
                   ChunkFor(d.ohw()));
               if (need_b) {
                 float* gb = b.grad();
                 for (int64_t oc = 0; oc < d.oc; ++oc) {
                   const float* row = gall.data() + oc * cols;
                   float acc = 0;
                   for (int64_t i = 0; i < cols; ++i) acc += row[i];
                   gb[oc] += acc;
                 }
               }
               if (need_w) {
                 storage::Scratch col(d.ckk() * cols);
                 BatchIm2Col(x.data(), d, col.data());
                 // dW += dOut_all * col^T : one GEMM over the long k = B*OHW.
                 internal::GemmTB(gall.data(), col.data(), w.grad(), d.oc, cols,
                                  d.ckk(), true);
               }
               if (need_x) {
                 storage::Scratch gcol(d.ckk() * cols);
                 // dcol = W^T * dOut_all : [CKK, OC] x [OC, B*OHW].
                 internal::GemmTA(w.data(), gall.data(), gcol.data(), d.ckk(),
                                  d.oc, cols, false);
                 BatchCol2Im(gcol.data(), d, x.grad());
               }
             });
  return out;
}

Tensor AvgPool2d(const Tensor& x) {
  DOT_CHECK(x.dim() == 4) << "AvgPool2d needs NCHW";
  int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  DOT_CHECK(h % 2 == 0 && w % 2 == 0) << "AvgPool2d requires even H and W";
  int64_t oh = h / 2, ow = w / 2;
  Tensor out = Tensor::Empty({n, c, oh, ow});
  const float* xp = x.data();
  float* op = out.data();
  for (int64_t nc = 0; nc < n * c; ++nc) {
    const float* in = xp + nc * h * w;
    float* o = op + nc * oh * ow;
    for (int64_t i = 0; i < oh; ++i) {
      for (int64_t j = 0; j < ow; ++j) {
        const float* p = in + (2 * i) * w + 2 * j;
        o[i * ow + j] = 0.25f * (p[0] + p[1] + p[w] + p[w + 1]);
      }
    }
  }
  Tensor x_cap = x;
  AttachNode(&out, "avg_pool2d", {x}, [x_cap, n, c, h, w, oh, ow](const Tensor& o) {
    Tensor x = x_cap;
    float* gx = x.grad();
    const float* gout = o.grad_vec().data();
    for (int64_t nc = 0; nc < n * c; ++nc) {
      float* gi = gx + nc * h * w;
      const float* go = gout + nc * oh * ow;
      for (int64_t i = 0; i < oh; ++i) {
        for (int64_t j = 0; j < ow; ++j) {
          float g = 0.25f * go[i * ow + j];
          float* p = gi + (2 * i) * w + 2 * j;
          p[0] += g;
          p[1] += g;
          p[w] += g;
          p[w + 1] += g;
        }
      }
    }
  });
  return out;
}

Tensor UpsampleNearest2x(const Tensor& x) {
  DOT_CHECK(x.dim() == 4) << "UpsampleNearest2x needs NCHW";
  int64_t n = x.size(0), c = x.size(1), h = x.size(2), w = x.size(3);
  int64_t oh = 2 * h, ow = 2 * w;
  Tensor out = Tensor::Empty({n, c, oh, ow});
  const float* xp = x.data();
  float* op = out.data();
  for (int64_t nc = 0; nc < n * c; ++nc) {
    const float* in = xp + nc * h * w;
    float* o = op + nc * oh * ow;
    for (int64_t i = 0; i < oh; ++i) {
      const float* irow = in + (i / 2) * w;
      float* orow = o + i * ow;
      for (int64_t j = 0; j < ow; ++j) orow[j] = irow[j / 2];
    }
  }
  Tensor x_cap = x;
  AttachNode(&out, "upsample2x", {x}, [x_cap, n, c, h, w, oh, ow](const Tensor& o) {
    Tensor x = x_cap;
    float* gx = x.grad();
    const float* gout = o.grad_vec().data();
    for (int64_t nc = 0; nc < n * c; ++nc) {
      float* gi = gx + nc * h * w;
      const float* go = gout + nc * oh * ow;
      for (int64_t i = 0; i < oh; ++i) {
        float* irow = gi + (i / 2) * w;
        const float* orow = go + i * ow;
        for (int64_t j = 0; j < ow; ++j) irow[j / 2] += orow[j];
      }
    }
  });
  return out;
}

}  // namespace dot
