// Elementwise, shape and reduction operators.

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "tensor/ops_internal.h"

namespace dot {

using internal::AttachNode;
using internal::NeedsGrad;
using internal::RowMajorStrides;

namespace {

// Broadcast execution plan: per-output-dim input strides (0 on broadcast dims).
struct BcastPlan {
  std::vector<int64_t> out_shape;
  std::vector<int64_t> a_stride;
  std::vector<int64_t> b_stride;
  bool same = false;  // fast path: identical shapes
};

BcastPlan MakeBcastPlan(const Tensor& a, const Tensor& b) {
  BcastPlan plan;
  if (SameShape(a, b)) {
    plan.out_shape = a.shape();
    plan.same = true;
    return plan;
  }
  plan.out_shape = internal::BroadcastShape(a.shape(), b.shape());
  size_t nd = plan.out_shape.size();
  auto expand = [&](const std::vector<int64_t>& shape) {
    std::vector<int64_t> strides = RowMajorStrides(shape);
    std::vector<int64_t> out(nd, 0);
    size_t offset = nd - shape.size();
    for (size_t i = 0; i < shape.size(); ++i) {
      out[offset + i] = (shape[i] == 1) ? 0 : strides[i];
    }
    return out;
  };
  plan.a_stride = expand(a.shape());
  plan.b_stride = expand(b.shape());
  return plan;
}

/// Generic broadcasting binary op. `fwd(av,bv)` computes the value;
/// `dfa`/`dfb` compute local derivatives from the two input values.
template <typename F, typename DA, typename DB>
Tensor BinaryOp(const char* name, const Tensor& a, const Tensor& b, F fwd, DA dfa,
                DB dfb) {
  BcastPlan plan = MakeBcastPlan(a, b);
  Tensor out = Tensor::Empty(plan.out_shape);
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  int64_t n = out.numel();
  if (plan.same) {
    for (int64_t i = 0; i < n; ++i) op[i] = fwd(ap[i], bp[i]);
  } else {
    size_t nd = plan.out_shape.size();
    std::vector<int64_t> idx(nd, 0);
    for (int64_t flat = 0; flat < n; ++flat) {
      int64_t ai = 0, bi = 0;
      for (size_t d = 0; d < nd; ++d) {
        ai += idx[d] * plan.a_stride[d];
        bi += idx[d] * plan.b_stride[d];
      }
      op[flat] = fwd(ap[ai], bp[bi]);
      for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
        if (++idx[d] < plan.out_shape[d]) break;
        idx[d] = 0;
      }
    }
  }
  Tensor a_cap = a, b_cap = b;
  AttachNode(&out, name, {a, b}, [a_cap, b_cap, plan, dfa, dfb](const Tensor& o) {
    Tensor a = a_cap, b = b_cap;
    const float* gout = o.grad_vec().data();
    const float* ap = a.data();
    const float* bp = b.data();
    int64_t n = o.numel();
    if (plan.same) {
      if (NeedsGrad(a)) {
        float* ga = a.grad();
        for (int64_t i = 0; i < n; ++i) ga[i] += gout[i] * dfa(ap[i], bp[i]);
      }
      if (NeedsGrad(b)) {
        float* gb = b.grad();
        for (int64_t i = 0; i < n; ++i) gb[i] += gout[i] * dfb(ap[i], bp[i]);
      }
      return;
    }
    size_t nd = plan.out_shape.size();
    bool need_a = NeedsGrad(a), need_b = NeedsGrad(b);
    float* ga = need_a ? a.grad() : nullptr;
    float* gb = need_b ? b.grad() : nullptr;
    std::vector<int64_t> idx(nd, 0);
    for (int64_t flat = 0; flat < n; ++flat) {
      int64_t ai = 0, bi = 0;
      for (size_t d = 0; d < nd; ++d) {
        ai += idx[d] * plan.a_stride[d];
        bi += idx[d] * plan.b_stride[d];
      }
      if (need_a) ga[ai] += gout[flat] * dfa(ap[ai], bp[bi]);
      if (need_b) gb[bi] += gout[flat] * dfb(ap[ai], bp[bi]);
      for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
        if (++idx[d] < plan.out_shape[d]) break;
        idx[d] = 0;
      }
    }
  });
  return out;
}

/// Generic unary op; derivative receives (input value, output value).
template <typename F, typename D>
Tensor UnaryOp(const char* name, const Tensor& a, F fwd, D dfdx) {
  Tensor out = Tensor::Empty(a.shape());
  const float* ap = a.data();
  float* op = out.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) op[i] = fwd(ap[i]);
  Tensor a_cap = a;
  AttachNode(&out, name, {a}, [a_cap, dfdx](const Tensor& o) {
    Tensor a = a_cap;
    const float* gout = o.grad_vec().data();
    const float* ap = a.data();
    const float* op = o.data();
    float* ga = a.grad();
    int64_t n = o.numel();
    for (int64_t i = 0; i < n; ++i) ga[i] += gout[i] * dfdx(ap[i], op[i]);
  });
  return out;
}

}  // namespace

namespace internal {

std::vector<int64_t> BroadcastShape(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b) {
  size_t nd = std::max(a.size(), b.size());
  std::vector<int64_t> out(nd);
  for (size_t i = 0; i < nd; ++i) {
    int64_t da = i < nd - a.size() ? 1 : a[i - (nd - a.size())];
    int64_t db = i < nd - b.size() ? 1 : b[i - (nd - b.size())];
    DOT_CHECK(da == db || da == 1 || db == 1)
        << "broadcast mismatch at dim " << i << ": " << da << " vs " << db;
    out[i] = std::max(da, db);
  }
  return out;
}

}  // namespace internal

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "add", a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "sub", a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "div", a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      "add_scalar", a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      "mul_scalar", a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      "exp", a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      "log", a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      "sqrt", a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      "square", a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      "abs", a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0 ? 1.0f : -1.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      "sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      "tanh", a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      "relu", a, [](float x) { return x > 0 ? x : 0.0f; },
      [](float x, float) { return x > 0 ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation: 0.5*x*(1+tanh(sqrt(2/pi)*(x+0.044715 x^3))).
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  return UnaryOp(
      "gelu", a,
      [](float x) {
        float inner = kC * (x + kA * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        float x3 = x * x * x;
        float inner = kC * (x + kA * x3);
        float t = std::tanh(inner);
        float dinner = kC * (1.0f + 3.0f * kA * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor Silu(const Tensor& a) {
  return UnaryOp(
      "silu", a,
      [](float x) { return x / (1.0f + std::exp(-x)); },
      [](float x, float) {
        float s = 1.0f / (1.0f + std::exp(-x));
        return s * (1.0f + x * (1.0f - s));
      });
}

// ---- Shape ops --------------------------------------------------------------

namespace {

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::string s = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

}  // namespace

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  const std::vector<int64_t> requested = shape;
  int64_t known = 1;
  int64_t infer = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      DOT_CHECK(infer == -1) << "Reshape: multiple -1 dims in "
                             << ShapeToString(requested);
      infer = static_cast<int64_t>(i);
    } else {
      DOT_CHECK(shape[i] >= 0) << "Reshape: invalid dim " << shape[i] << " in "
                               << ShapeToString(requested);
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    DOT_CHECK(known > 0 && a.numel() % known == 0)
        << "Reshape: cannot infer -1 dim: " << a.ShapeString() << " ("
        << a.numel() << " elements) does not divide into "
        << ShapeToString(requested);
    shape[static_cast<size_t>(infer)] = a.numel() / known;
  }
  DOT_CHECK(ShapeNumel(shape) == a.numel())
      << "Reshape: element count mismatch: " << a.ShapeString() << " ("
      << a.numel() << " elements) -> " << ShapeToString(requested) << " ("
      << ShapeNumel(shape) << " elements)";
  // Zero-copy alias: the reshaped tensor shares a's Storage.
  Tensor out = Tensor::View(a, std::move(shape));
  Tensor a_cap = a;
  AttachNode(&out, "reshape", {a}, [a_cap](const Tensor& o) {
    Tensor a = a_cap;
    a.AccumulateGrad(o.grad_vec().data(), o.numel());
  });
  return out;
}

Tensor Flatten(const Tensor& a) { return Reshape(a, {a.numel()}); }

Tensor Transpose2D(const Tensor& a) {
  DOT_CHECK(a.dim() == 2) << "Transpose2D needs 2-D input";
  return Permute(a, {1, 0});
}

Tensor Permute(const Tensor& a, std::vector<int64_t> perm) {
  DOT_CHECK(static_cast<int64_t>(perm.size()) == a.dim()) << "Permute rank mismatch";
  std::vector<int64_t> out_shape(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) out_shape[i] = a.size(perm[i]);
  Tensor out = Tensor::Empty(out_shape);
  size_t nd = perm.size();
  std::vector<int64_t> in_stride = RowMajorStrides(a.shape());
  std::vector<int64_t> mapped(nd);  // stride of out-dim d within input
  for (size_t d = 0; d < nd; ++d) mapped[d] = in_stride[static_cast<size_t>(perm[d])];
  const float* ap = a.data();
  float* op = out.data();
  int64_t n = a.numel();
  std::vector<int64_t> idx(nd, 0);
  for (int64_t flat = 0; flat < n; ++flat) {
    int64_t ai = 0;
    for (size_t d = 0; d < nd; ++d) ai += idx[d] * mapped[d];
    op[flat] = ap[ai];
    for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
      if (++idx[d] < out_shape[d]) break;
      idx[d] = 0;
    }
  }
  Tensor a_cap = a;
  AttachNode(&out, "permute", {a},
             [a_cap, mapped, out_shape, nd](const Tensor& o) {
               Tensor a = a_cap;
               float* ga = a.grad();
               const float* gout = o.grad_vec().data();
               int64_t n = o.numel();
               std::vector<int64_t> idx(nd, 0);
               for (int64_t flat = 0; flat < n; ++flat) {
                 int64_t ai = 0;
                 for (size_t d = 0; d < nd; ++d) ai += idx[d] * mapped[d];
                 ga[ai] += gout[flat];
                 for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
                   if (++idx[d] < out_shape[d]) break;
                   idx[d] = 0;
                 }
               }
             });
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t axis) {
  DOT_CHECK(!parts.empty()) << "Concat of zero tensors";
  if (axis < 0) axis += parts[0].dim();
  std::vector<int64_t> out_shape = parts[0].shape();
  int64_t total = 0;
  for (const auto& p : parts) {
    DOT_CHECK(p.dim() == parts[0].dim()) << "Concat rank mismatch";
    for (int64_t d = 0; d < p.dim(); ++d) {
      if (d != axis) DOT_CHECK(p.size(d) == out_shape[static_cast<size_t>(d)]);
    }
    total += p.size(axis);
  }
  out_shape[static_cast<size_t>(axis)] = total;
  Tensor out = Tensor::Empty(out_shape);

  // Treat tensors as [outer, axis_len, inner] blocks.
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= out_shape[static_cast<size_t>(d)];
  for (int64_t d = axis + 1; d < parts[0].dim(); ++d) {
    inner *= out_shape[static_cast<size_t>(d)];
  }
  float* op = out.data();
  int64_t out_row = total * inner;
  int64_t offset = 0;
  for (const auto& p : parts) {
    int64_t len = p.size(axis) * inner;
    const float* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(pp + o * len, pp + (o + 1) * len, op + o * out_row + offset);
    }
    offset += len;
  }
  std::vector<Tensor> caps = parts;
  AttachNode(&out, "concat", parts,
             [caps, outer, inner, total](const Tensor& o) {
               const float* gout = o.grad_vec().data();
               int64_t out_row = total * inner;
               int64_t offset = 0;
               for (auto part : caps) {
                 int64_t axis_len = part.numel() / (outer * inner);
                 int64_t row = axis_len * inner;
                 if (NeedsGrad(part)) {
                   float* gp = part.grad();
                   for (int64_t oo = 0; oo < outer; ++oo) {
                     const float* src = gout + oo * out_row + offset;
                     float* dst = gp + oo * row;
                     for (int64_t i = 0; i < row; ++i) dst[i] += src[i];
                   }
                 }
                 offset += row;
               }
             });
  return out;
}

Tensor Slice(const Tensor& a, int64_t axis, int64_t start, int64_t len) {
  if (axis < 0) axis += a.dim();
  DOT_CHECK(axis >= 0 && axis < a.dim()) << "Slice axis out of range";
  DOT_CHECK(start >= 0 && len >= 0 && start + len <= a.size(axis))
      << "Slice bounds: [" << start << ", " << start + len << ") of "
      << a.ShapeString() << " axis " << axis;
  std::vector<int64_t> out_shape = a.shape();
  out_shape[static_cast<size_t>(axis)] = len;
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= a.size(d);
  for (int64_t d = axis + 1; d < a.dim(); ++d) inner *= a.size(d);
  int64_t in_row = a.size(axis) * inner;
  int64_t out_row = len * inner;
  Tensor out;
  if (outer == 1) {
    // Contiguous slice (axis 0, or every leading dim is 1): the selected
    // elements are one contiguous run — alias them instead of copying.
    out = Tensor::View(a, out_shape, start * inner);
  } else {
    out = Tensor::Empty(out_shape);
    const float* ap = a.data();
    float* op = out.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(ap + o * in_row + start * inner,
                ap + o * in_row + (start + len) * inner, op + o * out_row);
    }
  }
  Tensor a_cap = a;
  AttachNode(&out, "slice", {a},
             [a_cap, outer, inner, in_row, out_row, start](const Tensor& o) {
               Tensor a = a_cap;
               float* ga = a.grad();
               const float* gout = o.grad_vec().data();
               for (int64_t oo = 0; oo < outer; ++oo) {
                 float* dst = ga + oo * in_row + start * inner;
                 const float* src = gout + oo * out_row;
                 for (int64_t i = 0; i < out_row; ++i) dst[i] += src[i];
               }
             });
  return out;
}

Tensor Rows(const Tensor& a, const std::vector<int64_t>& ids) {
  DOT_CHECK(a.dim() == 2) << "Rows needs a 2-D table";
  int64_t d = a.size(1);
  Tensor out = Tensor::Empty({static_cast<int64_t>(ids.size()), d});
  const float* ap = a.data();
  float* op = out.data();
  for (size_t i = 0; i < ids.size(); ++i) {
    int64_t r = ids[i];
    DOT_CHECK(r >= 0 && r < a.size(0)) << "Rows: index out of range";
    std::copy(ap + r * d, ap + (r + 1) * d, op + static_cast<int64_t>(i) * d);
  }
  Tensor a_cap = a;
  std::vector<int64_t> ids_cap = ids;
  AttachNode(&out, "rows", {a}, [a_cap, ids_cap, d](const Tensor& o) {
    Tensor a = a_cap;
    float* ga = a.grad();
    const float* gout = o.grad_vec().data();
    for (size_t i = 0; i < ids_cap.size(); ++i) {
      float* dst = ga + ids_cap[i] * d;
      const float* src = gout + static_cast<int64_t>(i) * d;
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  });
  return out;
}

// ---- Reductions --------------------------------------------------------------

Tensor Sum(const Tensor& a) {
  double acc = 0;
  const float* ap = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += ap[i];
  Tensor out = Tensor::FromVector({1}, {static_cast<float>(acc)});
  Tensor a_cap = a;
  AttachNode(&out, "sum", {a}, [a_cap](const Tensor& o) {
    Tensor a = a_cap;
    float g = o.grad_vec()[0];
    float* ga = a.grad();
    for (int64_t i = 0; i < a.numel(); ++i) ga[i] += g;
  });
  return out;
}

Tensor Mean(const Tensor& a) {
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.dim();
  DOT_CHECK(axis >= 0 && axis < a.dim()) << "SumAxis axis out of range";
  int64_t outer = 1, inner = 1, len = a.size(axis);
  for (int64_t d = 0; d < axis; ++d) outer *= a.size(d);
  for (int64_t d = axis + 1; d < a.dim(); ++d) inner *= a.size(d);
  std::vector<int64_t> out_shape;
  for (int64_t d = 0; d < a.dim(); ++d) {
    if (d == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.size(d));
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);
  Tensor out = Tensor::Zeros(out_shape);
  const float* ap = a.data();
  float* op = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t l = 0; l < len; ++l) {
      const float* src = ap + (o * len + l) * inner;
      float* dst = op + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  Tensor a_cap = a;
  AttachNode(&out, "sum_axis", {a},
             [a_cap, outer, inner, len](const Tensor& o) {
               Tensor a = a_cap;
               float* ga = a.grad();
               const float* gout = o.grad_vec().data();
               for (int64_t oo = 0; oo < outer; ++oo) {
                 for (int64_t l = 0; l < len; ++l) {
                   float* dst = ga + (oo * len + l) * inner;
                   const float* src = gout + oo * inner;
                   for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
                 }
               }
             });
  return out;
}

Tensor MeanAxis(const Tensor& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.dim();
  return MulScalar(SumAxis(a, axis, keepdim), 1.0f / static_cast<float>(a.size(axis)));
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  DOT_CHECK(SameShape(pred, target)) << "MseLoss shape mismatch";
  return Mean(Square(Sub(pred, target)));
}

// ---- In-place (inference-only) ----------------------------------------------
// These mutate their first argument's buffer, so they are forbidden while
// autograd is recording: a graph node may hold the pre-mutation values for
// its backward pass. The iteration order matches the out-of-place ops
// exactly, so `AddInPlace_(a, b)` is bitwise identical to `a = Add(a, b)`.

Tensor& AddInPlace_(Tensor& a, const Tensor& b) {
  DOT_CHECK(!GradModeEnabled())
      << "AddInPlace_ while autograd is recording (wrap in NoGradGuard)";
  BcastPlan plan = MakeBcastPlan(a, b);
  DOT_CHECK(plan.out_shape == a.shape())
      << "AddInPlace_: broadcasting " << b.ShapeString()
      << " would change the target shape " << a.ShapeString();
  float* ap = a.data();
  const float* bp = b.data();
  int64_t n = a.numel();
  if (plan.same) {
    for (int64_t i = 0; i < n; ++i) ap[i] += bp[i];
  } else {
    size_t nd = plan.out_shape.size();
    std::vector<int64_t> idx(nd, 0);
    for (int64_t flat = 0; flat < n; ++flat) {
      int64_t bi = 0;
      for (size_t d = 0; d < nd; ++d) bi += idx[d] * plan.b_stride[d];
      ap[flat] += bp[bi];
      for (int64_t d = static_cast<int64_t>(nd) - 1; d >= 0; --d) {
        if (++idx[d] < plan.out_shape[d]) break;
        idx[d] = 0;
      }
    }
  }
  return a;
}

Tensor& Scale_(Tensor& a, float s) {
  DOT_CHECK(!GradModeEnabled())
      << "Scale_ while autograd is recording (wrap in NoGradGuard)";
  float* ap = a.data();
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) ap[i] *= s;
  return a;
}

Tensor AddReuse(Tensor a, const Tensor& b) {
  if (GradModeEnabled()) return Add(a, b);
  AddInPlace_(a, b);
  return a;
}

Tensor ScaleReuse(Tensor a, float s) {
  if (GradModeEnabled()) return MulScalar(a, s);
  Scale_(a, s);
  return a;
}

}  // namespace dot
