// Blocked + vectorized GEMM microkernel engine.
//
// Every dense hot path in DOT — the UNet's im2col conv2d, the MViT's
// attention products, and all FC layers — bottoms out in one of three GEMM
// variants (plain, A-transposed, B-transposed). This header exposes a
// single engine behind a runtime kernel switch:
//
//   naive    the original triple-loop kernels, kept verbatim as the
//            reference oracle for the differential test harness;
//   blocked  L1/L2-aware cache blocking (MC/KC/NC tiling with packed A/B
//            panels) around a portable 8x8 register-tiled microkernel —
//            plain C loops the compiler can autovectorize;
//   simd     the same blocked engine with an explicit AVX2/FMA (8x8) or
//            AVX-512 (8x32) microkernel, selected by a runtime CPU check.
//
// Selection: DOT_GEMM_KERNEL=naive|blocked|simd in the environment, or
// SetKernel() programmatically (tests/benches). The default is `simd` when
// the build and CPU support it, else `blocked`. Requesting `simd` on an
// unsupported CPU (or in a build without the intrinsics) falls back to
// `blocked` gracefully — ActiveKernel() reports what actually runs.
//
// Precision: an orthogonal DOT_GEMM_PRECISION=fp32|int8 knob (or
// SetPrecision()) selects a quantized serving path: symmetric per-channel
// int8 quantization (per row of op(A), per column of op(B)), int8 x int8
// -> int32 microkernels (scalar + AVX2 madd), and fp32 dequantization at
// the C-tile write. RunEx() is the precision-aware entry; plain Run() is
// always fp32. The int8 path composes with every Kernel value — kNaive is
// again the reference oracle — and falls back to fp32 per call for inputs
// it refuses (non-finite operands, k beyond the int32 accumulator bound).
// Weights can skip requantization via a cache keyed on their Storage; see
// DESIGN.md §5j for the scheme, tolerances, and invalidation contract.
//
// Determinism: for a fixed kernel, results are bitwise identical for any
// thread count. The engine partitions work across ThreadPool::Global() only
// along output rows/columns (packed-panel writers are disjoint) and keeps a
// fixed k-accumulation order (KC blocks ascending, k ascending inside each
// block), so no floating-point reduction ever depends on the partitioning.
// Tolerance across kernels is documented in DESIGN.md §5e and enforced by
// tests/gemm_differential_test.cc.

#ifndef DOT_TENSOR_GEMM_KERNEL_H_
#define DOT_TENSOR_GEMM_KERNEL_H_

#include <cstdint>

namespace dot {

class Storage;  // tensor/storage.h

namespace gemm {

enum class Kernel : int {
  kNaive = 0,
  kBlocked = 1,
  kSimd = 2,
};

/// Arithmetic the engine runs in. kInt8 quantizes both operands per
/// channel and accumulates exactly in int32, so for a fixed precision the
/// bitwise-determinism guarantees below still hold — and within kInt8 the
/// three kernels agree bitwise with each other (integer sums have no
/// association order).
enum class Precision : int {
  kFp32 = 0,
  kInt8 = 1,
};

/// Operand layout of the product C[m,n] = op(A) * op(B).
enum class Layout : int {
  kNN = 0,  ///< A[m,k] * B[k,n]
  kTA = 1,  ///< A[k,m]^T * B[k,n]
  kTB = 2,  ///< A[m,k] * B[n,k]^T
};

/// Stable lowercase name ("naive", "blocked", "simd").
const char* KernelName(Kernel kernel);

/// Parses a kernel name; returns false (and leaves `out` alone) on unknown
/// input. Accepts exactly the names produced by KernelName().
bool ParseKernelName(const char* name, Kernel* out);

/// True when the SIMD microkernel is compiled in AND the running CPU
/// supports it (AVX2+FMA at minimum; AVX-512F upgrades the tile width).
bool SimdAvailable();

/// The kernel every internal::Gemm* dispatch routes through. Resolved once
/// from DOT_GEMM_KERNEL (falling back to the default described above);
/// SetKernel overrides it for the rest of the process.
Kernel ActiveKernel();

/// Overrides the active kernel. A request for kSimd without SimdAvailable()
/// resolves to kBlocked. Returns the kernel that will actually run.
Kernel SetKernel(Kernel kernel);

/// C[m,n] (+)= op(A) * op(B) with the given kernel. `accumulate` adds into
/// existing C contents, otherwise C is overwritten. Degenerate problems are
/// handled uniformly for every kernel: m==0 or n==0 returns immediately and
/// k==0 only zero-fills C when !accumulate — `a`/`b`/`c` may be null
/// whenever the corresponding operand is empty.
void Run(Kernel kernel, Layout layout, const float* a, const float* b,
         float* c, int64_t m, int64_t k, int64_t n, bool accumulate);

/// Stable lowercase name ("fp32", "int8").
const char* PrecisionName(Precision precision);

/// Parses a precision name; returns false (and leaves `out` alone) on
/// unknown input. Accepts exactly the names produced by PrecisionName().
bool ParsePrecisionName(const char* name, Precision* out);

/// The precision RunEx-based dispatches route through. Resolved once from
/// DOT_GEMM_PRECISION (default kFp32); SetPrecision overrides it for the
/// rest of the process.
Precision ActivePrecision();

/// Overrides the active precision. Returns the precision that will run.
Precision SetPrecision(Precision precision);

/// Precision-aware Run(). For kFp32 this is exactly Run(). For kInt8 the
/// product is computed on quantized operands when eligible, falling back
/// to the fp32 kernel otherwise (degenerate dims always take the fp32
/// degenerate path — they never quantize). `a_storage` / `b_storage`
/// optionally name the backing Storage of a long-lived operand (a weight):
/// when non-null, its quantized panels are cached across calls keyed on
/// Storage::id() and dropped when the storage dies. Pass null for
/// activations and anything that may mutate between calls without its
/// storage being destroyed.
void RunEx(Kernel kernel, Precision precision, Layout layout, const float* a,
           const float* b, float* c, int64_t m, int64_t k, int64_t n,
           bool accumulate, Storage* a_storage = nullptr,
           Storage* b_storage = nullptr);

/// Quantized-weight cache introspection (tests, /metrics mirror these as
/// dot_gemm_quant_cache_entries / _bytes gauges).
int64_t QuantCacheEntries();
int64_t QuantCacheBytes();

/// Drops every cached quantized weight. Called by the optimizers and
/// Module::LoadFile after in-place weight mutation; hot swap needs no call
/// because the old model's Storages die and drop their own entries.
void ClearQuantCache();

namespace internal {
/// Storage::~Storage hook: drops the cache entries keyed on `storage_id`
/// (flag-gated on the storage side, so untouched storages never call in).
void DropQuantEntriesFor(uint64_t storage_id);
}  // namespace internal

}  // namespace gemm
}  // namespace dot

#endif  // DOT_TENSOR_GEMM_KERNEL_H_
