// Pooled tensor storage: the allocation substrate behind TensorImpl.
//
// Every float buffer in the tensor stack (op outputs, im2col / norm
// scratch, parameters) is owned by a Storage object. Allocation goes
// through a process-wide, thread-safe, size-bucketed buffer pool: requests
// are rounded up to a power-of-two bucket, served from that bucket's free
// list when possible, and recycled back into it when the Storage dies
// (RAII — no explicit free anywhere in the stack). After one warmup pass of
// a fixed-shape workload (e.g. a reverse-diffusion step) every subsequent
// pass allocates exclusively from the free lists: zero fresh heap
// allocations in steady state, which is what makes the 1000-step sampling
// loop of Alg. 2 allocator-quiet.
//
// Knobs and safety:
//   - DOT_TENSOR_POOL=on|off (or storage::SetPoolEnabled) disables
//     recycling entirely; buffers are heap-allocated and freed eagerly.
//     Results are bitwise identical either way (determinism_test sweeps it).
//   - DOT_POOL_POISON=1 (or storage::SetPoisonEnabled) fills buffers with a
//     signaling NaN pattern when they enter the free list, so any op that
//     reads recycled-but-unwritten memory surfaces as NaNs instead of
//     silently reusing stale values (and recycling cannot mask a
//     use-after-free from ASan's perspective of freshly-written data).
//   - Pool traffic is observable: storage::GetPoolStats() plus the obs
//     gauges/counters dot_pool_{hits,misses,returns}_total,
//     dot_pool_bytes_live, dot_pool_bytes_pooled, dot_pool_high_water_bytes.

#ifndef DOT_TENSOR_STORAGE_H_
#define DOT_TENSOR_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace dot {

/// \brief A refcounted float buffer, allocated through the pool and
/// recycled into it on destruction. Never constructed directly — use
/// Allocate(). TensorImpl holds one via shared_ptr; zero-copy views share
/// the same Storage with a different offset/shape.
class Storage {
 public:
  /// Pool-aware allocation able to hold `n` floats (capacity() may be
  /// larger — the bucket size). n == 0 is allowed.
  static std::shared_ptr<Storage> Allocate(int64_t n);

  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  /// Bucket capacity in floats (>= the requested size).
  int64_t capacity() const { return capacity_; }

  /// Process-unique monotonic id. Cache keys (the GEMM quantized-weight
  /// cache) use this instead of the object address: a recycled allocation
  /// gets a fresh id, so a dead entry can never alias a new storage.
  uint64_t id() const { return id_; }

  /// Flags this storage as holding entries in the GEMM quantized-weight
  /// cache, so ~Storage drops them (gemm::internal::DropQuantEntriesFor).
  /// One-way: the flag stays set even if the cache is cleared first — the
  /// destructor's drop call then finds nothing, which is fine.
  void MarkQuantCached() {
    quant_cached_.store(true, std::memory_order_relaxed);
  }

 private:
  Storage(float* data, int64_t capacity, uint64_t id)
      : data_(data), capacity_(capacity), id_(id) {}

  float* data_ = nullptr;
  int64_t capacity_ = 0;
  uint64_t id_ = 0;
  std::atomic<bool> quant_cached_{false};
};

namespace storage {

/// True when recycling is active. Initialized once from DOT_TENSOR_POOL
/// (on|off|1|0, default on); SetPoolEnabled overrides at runtime.
bool PoolEnabled();
void SetPoolEnabled(bool enabled);

/// Poison-on-return (DOT_POOL_POISON=1, default off; see file comment).
bool PoisonEnabled();
void SetPoisonEnabled(bool enabled);

/// Point-in-time pool accounting. Counters are cumulative since process
/// start (or the last ResetPoolStats); byte gauges are current values.
struct PoolStats {
  int64_t hits = 0;      ///< allocations served from a free list
  int64_t misses = 0;    ///< allocations that had to touch the heap
  int64_t returns = 0;   ///< buffers recycled into a free list
  int64_t bytes_live = 0;      ///< bytes owned by live Storage objects
  int64_t bytes_pooled = 0;    ///< bytes parked in free lists
  int64_t high_water_bytes = 0;  ///< max bytes_live ever observed
};
PoolStats GetPoolStats();

/// Zeroes the hit/miss/return counters and re-bases the high-water mark to
/// the current live bytes. Byte gauges are preserved (they track real
/// memory). For tests and bench sections.
void ResetPoolStats();

/// Frees every buffer parked in the free lists. Live Storage objects are
/// untouched. Useful to re-measure warmup, or to release memory after a
/// large one-off workload.
void TrimPool();

/// The bucket capacity (floats) an allocation of `n` floats maps to:
/// max(kMinBucketFloats, next power of two >= n).
int64_t BucketFor(int64_t n);

/// \brief RAII pooled scratch buffer for op workspaces (im2col columns,
/// GEMM staging, normalization caches). A thin Storage handle that is not
/// a Tensor: no shape, no autograd, contents uninitialized.
class Scratch {
 public:
  explicit Scratch(int64_t n) : s_(Storage::Allocate(n)) {}
  float* data() { return s_->data(); }
  const float* data() const { return s_->data(); }

 private:
  std::shared_ptr<Storage> s_;
};

}  // namespace storage
}  // namespace dot

#endif  // DOT_TENSOR_STORAGE_H_
