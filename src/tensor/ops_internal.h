// Helpers shared by the ops_*.cc translation units. Not part of the public API.

#ifndef DOT_TENSOR_OPS_INTERNAL_H_
#define DOT_TENSOR_OPS_INTERNAL_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace dot {
namespace internal {

// ---- Raw GEMM kernels (no autograd; exposed for reuse and testing) ----------
// Dispatchers through the process-wide kernel selected by DOT_GEMM_KERNEL /
// gemm::SetKernel (see tensor/gemm_kernel.h). Degenerate products are safe:
// m==0 or n==0 returns immediately, k==0 only zero-fills C when !accumulate,
// and null pointers are allowed for empty operands.

/// C[m,n] (+)= A[m,k] * B[k,n]; `accumulate` keeps existing C contents.
/// Precision-aware: routes to the int8 quantized path when the active
/// precision is int8 AND autograd recording is off. Recording forwards
/// (training, gradcheck) always run fp32 — quantization noise under a
/// gradient graph would desync forward from backward.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate);
/// Gemm() plus quantized-weight cache handles: `a_storage` / `b_storage`
/// (either may be null) identify a long-lived operand — a parameter —
/// whose int8 panels should be cached across calls (gemm_kernel.h).
void GemmEx(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate, Storage* a_storage,
            Storage* b_storage);
/// C = A^T * B with A[k,m], B[k,n] -> C[m,n]. Always fp32: only backward
/// passes use the transposed layouts, and backward math stays full
/// precision by design.
void GemmTA(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate);
/// C = A * B^T with A[m,k], B[n,k] -> C[m,n]. Always fp32 (see GemmTA).
void GemmTB(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate);

/// The cache handle a forward GEMM should pass for operand `t`: its
/// Storage when `t` is a whole-storage parameter tensor consumed outside
/// autograd recording (a served weight), else null. Activations fail the
/// requires_grad test under NoGradGuard; training forwards fail the grad
/// mode test (and run fp32 anyway); view tensors are excluded because the
/// cache validates whole-buffer identity only.
inline Storage* QuantWeightHandle(const Tensor& t) {
  if (GradModeEnabled() || !t.defined() || !t.requires_grad()) return nullptr;
  Storage* s = t.storage_ptr();
  return t.data() == s->data() ? s : nullptr;
}

/// True if gradients must flow through `t` (leaf parameter or graph output).
inline bool NeedsGrad(const Tensor& t) {
  return t.requires_grad() || t.grad_fn() != nullptr;
}

/// Attaches a backward node to `out` when autograd is active and at least one
/// input participates in differentiation.
inline void AttachNode(Tensor* out, const char* name, std::vector<Tensor> inputs,
                       std::function<void(const Tensor&)> backward) {
  if (!GradModeEnabled()) return;
  bool any = false;
  for (const auto& t : inputs) any = any || NeedsGrad(t);
  if (!any) return;
  auto fn = std::make_shared<GradFn>();
  fn->name = name;
  fn->inputs = std::move(inputs);
  fn->backward = std::move(backward);
  out->set_grad_fn(std::move(fn));
}

/// Row-major (C) strides of a contiguous shape.
inline std::vector<int64_t> RowMajorStrides(const std::vector<int64_t>& shape) {
  std::vector<int64_t> s(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] = s[static_cast<size_t>(i + 1)] * shape[static_cast<size_t>(i + 1)];
  }
  return s;
}

}  // namespace internal
}  // namespace dot

#endif  // DOT_TENSOR_OPS_INTERNAL_H_
