// Helpers shared by the ops_*.cc translation units. Not part of the public API.

#ifndef DOT_TENSOR_OPS_INTERNAL_H_
#define DOT_TENSOR_OPS_INTERNAL_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace dot {
namespace internal {

// ---- Raw GEMM kernels (no autograd; exposed for reuse and testing) ----------
// Dispatchers through the process-wide kernel selected by DOT_GEMM_KERNEL /
// gemm::SetKernel (see tensor/gemm_kernel.h). Degenerate products are safe:
// m==0 or n==0 returns immediately, k==0 only zero-fills C when !accumulate,
// and null pointers are allowed for empty operands.

/// C[m,n] (+)= A[m,k] * B[k,n]; `accumulate` keeps existing C contents.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate);
/// C = A^T * B with A[k,m], B[k,n] -> C[m,n].
void GemmTA(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate);
/// C = A * B^T with A[m,k], B[n,k] -> C[m,n].
void GemmTB(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate);

/// True if gradients must flow through `t` (leaf parameter or graph output).
inline bool NeedsGrad(const Tensor& t) {
  return t.requires_grad() || t.grad_fn() != nullptr;
}

/// Attaches a backward node to `out` when autograd is active and at least one
/// input participates in differentiation.
inline void AttachNode(Tensor* out, const char* name, std::vector<Tensor> inputs,
                       std::function<void(const Tensor&)> backward) {
  if (!GradModeEnabled()) return;
  bool any = false;
  for (const auto& t : inputs) any = any || NeedsGrad(t);
  if (!any) return;
  auto fn = std::make_shared<GradFn>();
  fn->name = name;
  fn->inputs = std::move(inputs);
  fn->backward = std::move(backward);
  out->set_grad_fn(std::move(fn));
}

/// Row-major (C) strides of a contiguous shape.
inline std::vector<int64_t> RowMajorStrides(const std::vector<int64_t>& shape) {
  std::vector<int64_t> s(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] = s[static_cast<size_t>(i + 1)] * shape[static_cast<size_t>(i + 1)];
  }
  return s;
}

}  // namespace internal
}  // namespace dot

#endif  // DOT_TENSOR_OPS_INTERNAL_H_
