#include "tensor/quantize.h"

#include <cfloat>
#include <cmath>

namespace dot {
namespace quant {

bool ChannelScale(const float* x, int64_t n, int64_t stride, float* scale) {
  *scale = 0.0f;
  float maxabs = 0.0f;
  bool bad = false;  // branchless accumulation keeps the loop vectorizable
  for (int64_t i = 0; i < n; ++i) {
    float av = std::fabs(x[i * stride]);
    // !(av <= FLT_MAX) catches both Inf and NaN (NaN fails every compare).
    bad |= !(av <= FLT_MAX);
    maxabs = av > maxabs ? av : maxabs;
  }
  if (bad) return false;
  *scale = maxabs / static_cast<float>(kQuantMax);
  return true;
}

float InverseScale(float scale) {
  return scale > 0.0f ? 1.0f / scale : 0.0f;
}

int8_t QuantizeValue(float v, float inv_scale) {
  long q = std::lrintf(v * inv_scale);
  if (q > kQuantMax) q = kQuantMax;
  if (q < -kQuantMax) q = -kQuantMax;
  return static_cast<int8_t>(q);
}

void QuantizeChannel(const float* x, int64_t n, int64_t stride, float scale,
                     int8_t* out) {
  float inv = InverseScale(scale);
  for (int64_t i = 0; i < n; ++i) out[i] = QuantizeValue(x[i * stride], inv);
}

bool ComputeRowScales(const float* a, int64_t rows, int64_t cols,
                      float* scales) {
  for (int64_t i = 0; i < rows; ++i) {
    if (!ChannelScale(a + i * cols, cols, 1, &scales[i])) {
      for (int64_t j = 0; j < rows; ++j) scales[j] = 0.0f;
      return false;
    }
  }
  return true;
}

}  // namespace quant
}  // namespace dot
