// Dataset assembly: simulated trips -> filtered samples -> chronological
// train/validation/test split (8:1:1, Sec. 6.3).

#ifndef DOT_EVAL_DATASET_H_
#define DOT_EVAL_DATASET_H_

#include <string>
#include <vector>

#include "geo/grid.h"
#include "geo/trajectory.h"
#include "sim/city.h"
#include "sim/trips.h"
#include "util/result.h"

namespace dot {

/// \brief One supervised example for an ODT-Oracle.
struct TripSample {
  Trajectory trajectory;
  OdtInput odt;
  double travel_time_minutes = 0;
  bool is_outlier = false;             ///< simulator ground truth
  std::vector<int64_t> edge_path;      ///< simulator ground truth route
};

/// \brief Chronological 8:1:1 split.
struct DatasetSplit {
  std::vector<TripSample> train;
  std::vector<TripSample> val;
  std::vector<TripSample> test;
};

/// Converts simulated trips into samples, dropping those rejected by the
/// preprocessing filter (Sec. 6.1).
std::vector<TripSample> ToSamples(const std::vector<SimulatedTrip>& trips,
                                  const TrajectoryFilter& filter);

/// Sorts by departure time and splits train/val/test by the given fractions.
DatasetSplit ChronologicalSplit(std::vector<TripSample> samples,
                                double train_frac = 0.8, double val_frac = 0.1);

/// \brief A fully assembled benchmark dataset: city + split + grid box.
struct BenchmarkDataset {
  std::string name;
  const City* city = nullptr;  ///< not owned
  DatasetSplit split;
  BoundingBox area;  ///< grid area (city bounds, slightly inflated)

  /// Grid over the dataset area at the requested resolution (L_G).
  Result<Grid> MakeGrid(int64_t grid_size) const { return Grid::Make(area, grid_size); }
};

/// Generates, filters, and splits a dataset for `city`.
BenchmarkDataset BuildDataset(const City& city, const TripConfig& trips,
                              uint64_t seed, const std::string& name);

/// Plain trajectories of a sample vector (for SegmentStats etc.).
std::vector<Trajectory> TrajectoriesOf(const std::vector<TripSample>& samples);

}  // namespace dot

#endif  // DOT_EVAL_DATASET_H_
