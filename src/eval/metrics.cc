#include "eval/metrics.h"

#include <cmath>

namespace dot {

void MetricsAccumulator::Add(double predicted, double truth) {
  double err = predicted - truth;
  sq_sum_ += err * err;
  abs_sum_ += std::fabs(err);
  if (std::fabs(truth) > 1e-9) {
    ape_sum_ += std::fabs(err) / std::fabs(truth);
    ++ape_count_;
  }
  ++count_;
}

RegressionMetrics MetricsAccumulator::Finalize() const {
  RegressionMetrics m;
  m.count = count_;
  if (count_ == 0) return m;
  m.rmse = std::sqrt(sq_sum_ / static_cast<double>(count_));
  m.mae = abs_sum_ / static_cast<double>(count_);
  m.mape = ape_count_ > 0 ? 100.0 * ape_sum_ / static_cast<double>(ape_count_) : 0;
  return m;
}

}  // namespace dot
