// Regression metrics used throughout the evaluation (RMSE / MAE / MAPE,
// Sec. 6.3).

#ifndef DOT_EVAL_METRICS_H_
#define DOT_EVAL_METRICS_H_

#include <cstdint>

namespace dot {

/// \brief RMSE / MAE / MAPE over accumulated (prediction, truth) pairs.
struct RegressionMetrics {
  double rmse = 0;  ///< minutes
  double mae = 0;   ///< minutes
  double mape = 0;  ///< percent
  int64_t count = 0;
};

/// \brief Streaming accumulator for RegressionMetrics.
class MetricsAccumulator {
 public:
  /// Adds one (prediction, ground truth) pair, both in minutes. Pairs with
  /// truth <= epsilon are excluded from MAPE (division guard).
  void Add(double predicted, double truth);

  RegressionMetrics Finalize() const;

  int64_t count() const { return count_; }

 private:
  double sq_sum_ = 0;
  double abs_sum_ = 0;
  double ape_sum_ = 0;
  int64_t ape_count_ = 0;
  int64_t count_ = 0;
};

}  // namespace dot

#endif  // DOT_EVAL_METRICS_H_
