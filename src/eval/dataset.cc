#include "eval/dataset.h"

#include <algorithm>

namespace dot {

std::vector<TripSample> ToSamples(const std::vector<SimulatedTrip>& trips,
                                  const TrajectoryFilter& filter) {
  std::vector<TripSample> samples;
  samples.reserve(trips.size());
  for (const auto& trip : trips) {
    if (!filter.Keep(trip.trajectory)) continue;
    TripSample s;
    s.trajectory = trip.trajectory;
    s.odt = trip.odt;
    s.travel_time_minutes =
        static_cast<double>(trip.trajectory.DurationSeconds()) / 60.0;
    s.is_outlier = trip.is_outlier;
    s.edge_path = trip.edge_path;
    samples.push_back(std::move(s));
  }
  return samples;
}

DatasetSplit ChronologicalSplit(std::vector<TripSample> samples, double train_frac,
                                double val_frac) {
  std::sort(samples.begin(), samples.end(),
            [](const TripSample& a, const TripSample& b) {
              return a.odt.departure_time < b.odt.departure_time;
            });
  DatasetSplit split;
  size_t n = samples.size();
  size_t n_train = static_cast<size_t>(static_cast<double>(n) * train_frac);
  size_t n_val = static_cast<size_t>(static_cast<double>(n) * val_frac);
  for (size_t i = 0; i < n; ++i) {
    if (i < n_train) {
      split.train.push_back(std::move(samples[i]));
    } else if (i < n_train + n_val) {
      split.val.push_back(std::move(samples[i]));
    } else {
      split.test.push_back(std::move(samples[i]));
    }
  }
  return split;
}

BenchmarkDataset BuildDataset(const City& city, const TripConfig& trips,
                              uint64_t seed, const std::string& name) {
  BenchmarkDataset ds;
  ds.name = name;
  ds.city = &city;
  TripGenerator gen(&city, seed);
  std::vector<SimulatedTrip> raw = gen.Generate(trips);
  TrajectoryFilter filter;
  ds.split = ChronologicalSplit(ToSamples(raw, filter));
  ds.area = city.network().Bounds().Inflated(0.03);
  return ds;
}

std::vector<Trajectory> TrajectoriesOf(const std::vector<TripSample>& samples) {
  std::vector<Trajectory> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.trajectory);
  return out;
}

}  // namespace dot
