#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/profile.h"
#include "obs/window.h"

namespace dot {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{[] {
  const char* env = std::getenv("DOT_METRICS");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}()};

std::string SanitizeName(const std::string& name) {
  std::string out = name.empty() ? std::string("_") : name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string SanitizeLabelValue(const std::string& value) {
  std::string out = value;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':' || c == '.' ||
              c == '/' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

/// Prometheus-safe number rendering (no locale, no trailing garbage).
std::string Num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// JSON-safe number rendering: JSON has no literal for NaN/Inf, so
/// non-finite values are emitted as quoted strings ("NaN", "+Inf") instead
/// of producing an unparsable document.
std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "\"" + Num(v) + "\"";
  return Num(v);
}

void AtomicAddDouble(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

uint32_t Counter::ShardIndex() {
  // Threads take sequential shard slots on first use; with kShards a power
  // of two the mask spreads any thread count across all shards.
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      bucket_counts_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.size() + 1 != bucket_counts_.size()) {
    // Duplicates were dropped; reallocate to the deduplicated size.
    std::vector<std::atomic<int64_t>> fresh(bounds_.size() + 1);
    bucket_counts_.swap(fresh);
  }
}

void Histogram::Observe(double v) {
  // First bucket whose inclusive upper bound admits v; past-the-end is the
  // +inf overflow bucket.
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  bucket_counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
}

namespace internal {

double BucketQuantile(const std::vector<double>& bounds,
                      const std::vector<int64_t>& counts, int64_t total,
                      double q) {
  if (total <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(total);
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    int64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      double lo = i == 0 ? 0.0 : bounds[i - 1];
      // The overflow bucket has no finite upper edge; report its lower one.
      double hi = i < bounds.size() ? bounds[i] : lo;
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace internal

double Histogram::Quantile(double q) const {
  std::vector<int64_t> counts(bucket_counts_.size());
  int64_t total = 0;
  for (size_t i = 0; i < bucket_counts_.size(); ++i) {
    counts[i] = bucket_counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  return internal::BucketQuantile(bounds_, counts, total, q);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = Count();
  s.sum = Sum();
  s.p50 = Quantile(0.50);
  s.p95 = Quantile(0.95);
  s.p99 = Quantile(0.99);
  int64_t cum = 0;
  s.cumulative_buckets.reserve(bucket_counts_.size());
  for (size_t i = 0; i < bucket_counts_.size(); ++i) {
    cum += bucket_counts_[i].load(std::memory_order_relaxed);
    double bound = i < bounds_.size()
                       ? bounds_[i]
                       : std::numeric_limits<double>::infinity();
    s.cumulative_buckets.emplace_back(bound, cum);
  }
  return s;
}

void Histogram::Reset() {
  for (auto& b : bucket_counts_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::LatencyBoundsUs() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e7; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(1e8);  // 100 s
  return bounds;
}

std::vector<double> Histogram::LinearBounds(double start, double step, int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(0, n)));
  for (int i = 0; i < n; ++i) bounds.push_back(start + step * i);
  return bounds;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(0, n)));
  double b = start;
  for (int i = 0; i < n; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

// Out of line: the maps hold unique_ptr<RollingHistogram>, which is only
// forward-declared in the header.
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[SanitizeName(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

namespace {

/// Canonical registry key of a labeled series: `name{k="v",...}` with the
/// same sanitization rules the text export relies on.
std::string LabeledKey(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string key = SanitizeName(name);
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    key += SanitizeName(k) + "=\"" + SanitizeLabelValue(v) + "\"";
    first = false;
  }
  key += '}';
  return key;
}

}  // namespace

Counter* MetricsRegistry::GetCounter(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[LabeledKey(name, labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[SanitizeName(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[LabeledKey(name, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[SanitizeName(name)];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::LatencyBoundsUs();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

RollingHistogram* MetricsRegistry::GetWindow(const std::string& name,
                                             std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = windows_[SanitizeName(name)];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::LatencyBoundsUs();
    slot = std::make_unique<RollingHistogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->Snapshot();
  for (const auto& [name, w] : windows_) s.windows[name] = w->Snapshot();
  return s;
}

std::string MetricsRegistry::ToPrometheusText() const {
  MetricsSnapshot s = Snapshot();
  std::ostringstream out;
  std::string last_base;
  for (const auto& [name, v] : s.counters) {
    // Labeled series share their base name's TYPE comment (the map is
    // sorted, so all series of one base are adjacent).
    std::string base = name.substr(0, name.find('{'));
    if (base != last_base) {
      out << "# TYPE " << base << " counter\n";
      last_base = base;
    }
    out << name << " " << v << "\n";
  }
  last_base.clear();
  for (const auto& [name, v] : s.gauges) {
    // Labeled gauges share their base name's TYPE comment, as counters do.
    std::string base = name.substr(0, name.find('{'));
    if (base != last_base) {
      out << "# TYPE " << base << " gauge\n";
      last_base = base;
    }
    out << name << " " << Num(v) << "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    out << "# TYPE " << name << " histogram\n";
    for (const auto& [bound, cum] : h.cumulative_buckets) {
      out << name << "_bucket{le=\"" << Num(bound) << "\"} " << cum << "\n";
    }
    out << name << "_sum " << Num(h.sum) << "\n";
    out << name << "_count " << h.count << "\n";
  }
  // Windowed percentiles export as plain gauges: a Prometheus histogram
  // carries cumulative-forever semantics, while these series answer "what
  // is the p95 right now" directly.
  for (const auto& [name, w] : s.windows) {
    const struct { const char* suffix; double v; } series[] = {
        {"_window_p50", w.p50},
        {"_window_p95", w.p95},
        {"_window_p99", w.p99},
        {"_window_count", static_cast<double>(w.count)},
    };
    for (const auto& sr : series) {
      out << "# TYPE " << name << sr.suffix << " gauge\n";
      out << name << sr.suffix << " " << Num(sr.v) << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::ToJson() const {
  MetricsSnapshot s = Snapshot();
  std::ostringstream out;
  // Every key goes through JsonEscape (sanitized names are already safe,
  // but labeled series carry `{key="value"}` quotes) and every double
  // through JsonNum (a non-finite gauge must not break the document).
  auto histogram_json = [&out](const HistogramSnapshot& h) {
    out << "{\"count\": " << h.count << ", \"sum\": " << JsonNum(h.sum)
        << ", \"p50\": " << JsonNum(h.p50) << ", \"p95\": " << JsonNum(h.p95)
        << ", \"p99\": " << JsonNum(h.p99) << ", \"buckets\": [";
    for (size_t i = 0; i < h.cumulative_buckets.size(); ++i) {
      const auto& [bound, cum] = h.cumulative_buckets[i];
      out << (i ? ", " : "") << "{\"le\": " << JsonNum(bound)
          << ", \"count\": " << cum << "}";
    }
    out << "]}";
  };
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": " << v;
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
        << "\": " << JsonNum(v);
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": ";
    histogram_json(h);
    first = false;
  }
  out << "\n  },\n  \"windows\": {";
  first = true;
  for (const auto& [name, w] : s.windows) {
    out << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": ";
    histogram_json(w);
    first = false;
  }
  out << "\n  }\n}";
  return out.str();
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, w] : windows_) w->Reset();
}

MetricsSnapshot SnapshotMetrics() { return MetricsRegistry::Get().Snapshot(); }
std::string MetricsToPrometheusText() {
  return MetricsRegistry::Get().ToPrometheusText();
}
std::string MetricsToJson() { return MetricsRegistry::Get().ToJson(); }

bool DumpMetrics(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  // One top-level object: the registry dump plus the op-profiler section,
  // so benches get the whole picture from one file.
  std::string registry = MetricsToJson();
  // Replace the final "\n}" with the ops section.
  if (registry.size() >= 2 && registry.back() == '}') {
    registry.resize(registry.size() - 1);
    registry += ",\n  \"ops\": " + OpProfiler::ToJson() + "\n}";
  }
  out << registry << "\n";
  return static_cast<bool>(out);
}

}  // namespace obs
}  // namespace dot
