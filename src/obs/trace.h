// Scoped-span tracing with chrome://tracing JSON export.
//
// Usage: wrap a region in `obs::TraceSpan span("name");`. When tracing is
// enabled (DOT_TRACE=<out.json> in the environment, or StartTracing()),
// each span records a complete event with its thread, wall-clock interval,
// and parent span; when disabled, constructing a span is one relaxed
// atomic load and nothing else, so instrumentation can stay in hot paths.
//
// Nesting is tracked with a thread-local span stack. Work shipped to the
// thread pool keeps its logical parent: ThreadPool::Submit captures the
// submitting thread's current span id and re-installs it (via
// InheritedParent) around the task, so spans opened inside pool tasks
// report the submitting span as their parent even though they run on a
// different thread.
//
// The export (WriteChromeTrace / StopTracing) is the Trace Event Format's
// "X" (complete) events; load the file at chrome://tracing or
// https://ui.perfetto.dev. Parent ids are also embedded in each event's
// args for programmatic checks.

#ifndef DOT_OBS_TRACE_H_
#define DOT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dot {
namespace obs {

/// \brief One finished span (a chrome "X" event).
struct TraceEvent {
  std::string name;
  std::string args;     ///< extra JSON key-values, e.g. "\"step\": 7" (may be empty)
  int64_t ts_us = 0;    ///< start, microseconds since tracing started
  int64_t dur_us = 0;
  int tid = 0;          ///< small sequential thread id
  uint64_t id = 0;      ///< span id, unique within the recording
  uint64_t parent_id = 0;  ///< 0 = top-level
};

/// True while a recording is active (relaxed load; safe in hot paths).
bool TracingEnabled();

/// Starts recording. `path` is where StopTracing / process exit writes the
/// chrome trace JSON; empty keeps the recording in memory only (tests).
/// Recording restarts from an empty buffer and a fresh time origin.
void StartTracing(const std::string& path = "");

/// Stops recording, writes the JSON file when a path was given, and
/// returns the finished events.
std::vector<TraceEvent> StopTracing();

/// Snapshot of the events recorded so far (recording keeps running).
std::vector<TraceEvent> TraceEvents();

/// Serializes `events` in Trace Event Format.
std::string ToChromeJson(const std::vector<TraceEvent>& events);

/// Id of the innermost span open on this thread (0 = none). Includes a
/// parent inherited from ThreadPool::Submit when the local stack is empty.
uint64_t CurrentSpanId();

/// Allocates a span id from the active recording (0 when tracing is
/// disabled). For manually recorded spans — see RecordSpan.
uint64_t NewSpanId();

/// Microseconds since the active recording's time origin (0 when tracing
/// is disabled). Timestamps handed to RecordSpan must come from this clock
/// so manual spans line up with TraceSpan intervals.
int64_t TraceNowUs();

/// Records a completed span with an explicit interval, outside the RAII
/// scope discipline — for spans whose lifetime crosses threads or is only
/// known after the fact (a request's root span closed on the IO thread,
/// queue-wait segments reconstructed at wave formation). Does not touch
/// the thread-local span stack. Dropped silently when tracing is off or
/// `id` is 0.
void RecordSpan(const char* name, uint64_t id, uint64_t parent_id,
                int64_t ts_us, int64_t dur_us, std::string args = {});

/// \brief RAII: installs `parent` as this thread's inherited span parent.
/// Used by the thread pool to bridge spans across Submit; tasks nested in
/// tasks restore the previous value on destruction.
class InheritedParent {
 public:
  explicit InheritedParent(uint64_t parent);
  ~InheritedParent();
  InheritedParent(const InheritedParent&) = delete;
  InheritedParent& operator=(const InheritedParent&) = delete;

 private:
  uint64_t saved_;
};

/// \brief RAII scoped span; see file comment.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : TraceSpan(name, std::string()) {}
  /// `args` is injected verbatim into the event's JSON args object, e.g.
  /// "\"step\": 12" — build it only when TracingEnabled().
  TraceSpan(const char* name, std::string args);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  std::string args_;
  int64_t start_us_ = 0;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
};

}  // namespace obs
}  // namespace dot

#endif  // DOT_OBS_TRACE_H_
