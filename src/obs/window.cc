#include "obs/window.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace dot {
namespace obs {

namespace {

double SteadySeconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double>(clock::now() - origin).count();
}

}  // namespace

RollingHistogram::RollingHistogram(std::vector<double> bounds,
                                   double window_seconds,
                                   double bucket_seconds)
    : bounds_(std::move(bounds)),
      bucket_s_(bucket_seconds > 0 ? bucket_seconds : 5.0) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (window_seconds < bucket_s_) window_seconds = bucket_s_;
  // Full closed slots covering the window, plus the currently-filling one.
  num_slots_ =
      static_cast<int64_t>(std::llround(window_seconds / bucket_s_)) + 1;
  slots_ = std::vector<Slot>(static_cast<size_t>(num_slots_));
  for (auto& s : slots_) {
    s.counts = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

double RollingHistogram::NowSeconds() const {
  return now_override_ ? now_override_() : SteadySeconds();
}

int64_t RollingHistogram::EpochNow() const {
  return static_cast<int64_t>(std::floor(NowSeconds() / bucket_s_));
}

double RollingHistogram::window_seconds() const {
  return static_cast<double>(num_slots_ - 1) * bucket_s_;
}

void RollingHistogram::SetClockForTesting(
    std::function<double()> now_seconds) {
  now_override_ = std::move(now_seconds);
}

RollingHistogram::Slot* RollingHistogram::ClaimSlot(int64_t epoch) {
  Slot& slot = slots_[static_cast<size_t>(epoch % num_slots_)];
  int64_t held = slot.epoch.load(std::memory_order_acquire);
  while (held != epoch) {
    if (held > epoch) return nullptr;  // a newer epoch owns this slot
    if (slot.epoch.compare_exchange_weak(held, epoch,
                                         std::memory_order_acq_rel)) {
      // We rotated the slot: zero the expired contents. Samples recorded by
      // racers between the CAS and these stores can be wiped — acceptable
      // loss, bounded per rotation.
      for (size_t i = 0; i <= bounds_.size(); ++i) {
        slot.counts[i].store(0, std::memory_order_relaxed);
      }
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum.store(0.0, std::memory_order_relaxed);
      return &slot;
    }
  }
  return &slot;
}

void RollingHistogram::Observe(double v) {
  Slot* slot = ClaimSlot(EpochNow());
  if (slot == nullptr) return;
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  slot->counts[idx].fetch_add(1, std::memory_order_relaxed);
  slot->count.fetch_add(1, std::memory_order_relaxed);
  double cur = slot->sum.load(std::memory_order_relaxed);
  while (!slot->sum.compare_exchange_weak(cur, cur + v,
                                          std::memory_order_relaxed)) {
  }
}

int64_t RollingHistogram::LiveCounts(std::vector<int64_t>* counts,
                                     double* sum) const {
  counts->assign(bounds_.size() + 1, 0);
  *sum = 0.0;
  int64_t now_epoch = EpochNow();
  int64_t oldest_live = now_epoch - (num_slots_ - 1);
  int64_t total = 0;
  for (const auto& slot : slots_) {
    int64_t held = slot.epoch.load(std::memory_order_acquire);
    // held < 0 covers both never-used and Reset() slots (whose counts are
    // stale until ClaimSlot recycles them).
    if (held < 0 || held < oldest_live || held > now_epoch) continue;
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      (*counts)[i] += slot.counts[i].load(std::memory_order_relaxed);
    }
    total += slot.count.load(std::memory_order_relaxed);
    *sum += slot.sum.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t RollingHistogram::Count() const {
  std::vector<int64_t> counts;
  double sum = 0;
  return LiveCounts(&counts, &sum);
}

double RollingHistogram::Quantile(double q) const {
  std::vector<int64_t> counts;
  double sum = 0;
  int64_t total = LiveCounts(&counts, &sum);
  return internal::BucketQuantile(bounds_, counts, total, q);
}

HistogramSnapshot RollingHistogram::Snapshot() const {
  std::vector<int64_t> counts;
  double sum = 0;
  int64_t total = LiveCounts(&counts, &sum);
  HistogramSnapshot s;
  s.count = total;
  s.sum = sum;
  s.p50 = internal::BucketQuantile(bounds_, counts, total, 0.50);
  s.p95 = internal::BucketQuantile(bounds_, counts, total, 0.95);
  s.p99 = internal::BucketQuantile(bounds_, counts, total, 0.99);
  int64_t cum = 0;
  s.cumulative_buckets.reserve(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    double bound = i < bounds_.size()
                       ? bounds_[i]
                       : std::numeric_limits<double>::infinity();
    s.cumulative_buckets.emplace_back(bound, cum);
  }
  return s;
}

void RollingHistogram::Reset() {
  // Marking every slot "never used" drops its contents from LiveCounts and
  // lets ClaimSlot recycle it on the next Observe.
  for (auto& slot : slots_) {
    slot.epoch.store(-1, std::memory_order_release);
  }
}

}  // namespace obs
}  // namespace dot
