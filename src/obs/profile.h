// Op-level profiling for the tensor library: cumulative wall time, call
// count, and estimated FLOPs per op kind (conv2d / GEMM / attention / ...).
//
// The hooks are designed to vanish from hot paths: an OpTimer constructed
// while profiling is disabled performs exactly one relaxed atomic load and
// never reads the clock, so instrumented kernels stay bitwise and speed
// identical to the uninstrumented build (the acceptance bar for the
// batched serving bench). Enable with DOT_OP_PROFILE=1 or
// OpProfiler::Enable(true).
//
// Timings are inclusive: the attention entry contains the GEMMs it issues
// (which are counted again under kGemm), while Conv2d calls the raw GEMM
// kernel directly and is counted only under kConv2d. kGemmKernel sits below
// all of them — gemm::Run records every raw product (2*m*k*n FLOPs), so its
// gflops() is the achieved microkernel throughput regardless of which op
// drove it.

#ifndef DOT_OBS_PROFILE_H_
#define DOT_OBS_PROFILE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace dot {
namespace obs {

enum class OpKind : int {
  kConv2d = 0,
  kGemm,        // MatMul / BatchMatMul wrappers
  kAttention,   // MultiheadAttention::Forward
  kGemmKernel,  // gemm::Run — every raw GEMM, whichever op issued it
  kNumKinds,
};

const char* OpKindName(OpKind kind);

/// \brief Cumulative statistics of one op kind.
struct OpStats {
  int64_t calls = 0;
  int64_t total_ns = 0;
  double flops = 0;  ///< estimated, forward pass only
  double total_ms() const { return static_cast<double>(total_ns) * 1e-6; }
  /// Achieved GFLOP/s over the accumulated time (0 when unused).
  double gflops() const {
    return total_ns > 0 ? flops / static_cast<double>(total_ns) : 0;
  }
};

/// \brief Process-wide per-op accumulators.
class OpProfiler {
 public:
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void Enable(bool on);

  static void Record(OpKind kind, int64_t ns, double flops);
  static OpStats Get(OpKind kind);
  static void Reset();

  /// JSON object {"conv2d": {"calls": .., "total_ms": .., "flops": ..,
  /// "gflops": ..}, ...} — embedded in obs::DumpMetrics output.
  static std::string ToJson();

 private:
  struct Slot {
    std::atomic<int64_t> calls{0};
    std::atomic<int64_t> total_ns{0};
    std::atomic<double> flops{0};
  };
  static std::atomic<bool> enabled_;
  static Slot slots_[static_cast<int>(OpKind::kNumKinds)];
};

/// \brief RAII timer: records into OpProfiler on destruction when profiling
/// was enabled at construction.
class OpTimer {
 public:
  OpTimer(OpKind kind, double flops) {
    if (OpProfiler::Enabled()) {
      active_ = true;
      kind_ = kind;
      flops_ = flops;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~OpTimer() {
    if (active_) {
      int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
      OpProfiler::Record(kind_, ns, flops_);
    }
  }
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  bool active_ = false;
  OpKind kind_ = OpKind::kConv2d;
  double flops_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace dot

#endif  // DOT_OBS_PROFILE_H_
