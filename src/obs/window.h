// Rolling-window histogram: the same fixed-bucket layout as obs::Histogram,
// but only samples from roughly the last minute contribute to counts and
// quantiles, so p50/p95/p99 track *current* load instead of process history.
//
// Implementation: time is cut into fixed-width buckets (default 5s); a ring
// of slots holds one histogram per time bucket, sized so that a full window
// (default 60s) of closed slots plus the currently-filling one are live at
// once. The record path is lock-free: locate the slot for "now", and if it
// still holds an expired epoch, CAS-claim it and zero it for reuse. A
// racing Observe that lands between the claim and the zeroing can lose its
// sample — bounded to a handful of events per rotation, which is noise at
// the sample rates these track (per-request latencies).
//
// Snapshots aggregate every live slot, so the reported window spans between
// window_seconds and window_seconds + bucket_seconds depending on how full
// the current slot is.

#ifndef DOT_OBS_WINDOW_H_
#define DOT_OBS_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.h"

namespace dot {
namespace obs {

/// \brief Fixed-bucket histogram over a rolling time window.
class RollingHistogram {
 public:
  /// `bounds` as in Histogram (sorted inclusive upper bounds; +inf overflow
  /// bucket implied). The window must be a multiple of the bucket width.
  explicit RollingHistogram(std::vector<double> bounds,
                            double window_seconds = 60.0,
                            double bucket_seconds = 5.0);

  /// Lock-free record into the current time bucket.
  void Observe(double v);

  /// Aggregate of every live slot. cumulative_buckets/sum/count/quantiles
  /// cover only the window.
  HistogramSnapshot Snapshot() const;
  /// Quantile over the live window (0 when the window is empty).
  double Quantile(double q) const;
  /// Samples currently inside the window.
  int64_t Count() const;
  /// Drops all recorded samples (marks every slot expired).
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }
  double window_seconds() const;
  double bucket_seconds() const { return bucket_s_; }

  /// Replaces the clock (seconds, monotonic). Test-only: call before any
  /// concurrent use; not synchronized against in-flight Observe calls.
  void SetClockForTesting(std::function<double()> now_seconds);

 private:
  struct Slot {
    /// Which time bucket this slot currently holds; -1 = never used.
    std::atomic<int64_t> epoch{-1};
    std::unique_ptr<std::atomic<int64_t>[]> counts;  // bounds.size() + 1
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  double NowSeconds() const;
  int64_t EpochNow() const;
  /// Returns the slot for `epoch`, CAS-claiming and zeroing it if it still
  /// holds an older epoch. Returns nullptr if another epoch won the slot
  /// (clock raced far ahead — drop the sample).
  Slot* ClaimSlot(int64_t epoch);
  /// Aggregates live slots into per-bucket counts; returns total count.
  int64_t LiveCounts(std::vector<int64_t>* counts, double* sum) const;

  std::vector<double> bounds_;
  double bucket_s_;
  int64_t num_slots_;
  std::vector<Slot> slots_;
  std::function<double()> now_override_;  // test clock; empty = steady clock
};

}  // namespace obs
}  // namespace dot

#endif  // DOT_OBS_WINDOW_H_
