// Bounded ring buffer of slow / degraded query records: the server pushes
// one record per request that missed its latency target or was answered
// below kFull quality, and the admin plane's /slowz endpoint dumps the
// ring as JSON. Capacity-bounded and mutex-guarded — pushes happen at most
// once per slow request, never on the per-request fast path.

#ifndef DOT_OBS_RING_H_
#define DOT_OBS_RING_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dot {
namespace obs {

/// \brief One slow/degraded request, with its wire identity and breakdown.
struct SlowQueryRecord {
  uint64_t trace_id = 0;    ///< client-generated wire trace id (0 = none)
  uint64_t request_id = 0;  ///< protocol request id
  int64_t unix_ms = 0;      ///< wall-clock time the record was pushed
  double latency_ms = 0;    ///< end-to-end server-side latency
  int quality = 0;          ///< core::ServedQuality as an int
  int code = 0;             ///< StatusCode as an int (0 = OK)
  double queue_us = 0;
  double batch_wait_us = 0;
  double stage1_us = 0;
  double stage2_us = 0;
  double serialize_us = 0;
  std::string note;  ///< quality/error annotation (free text, escaped on dump)
};

/// \brief Fixed-capacity ring of the most recent SlowQueryRecords.
class SlowQueryRing {
 public:
  explicit SlowQueryRing(size_t capacity = 128);

  void Push(SlowQueryRecord rec);
  /// Copies the live records, oldest first.
  std::vector<SlowQueryRecord> Snapshot() const;
  /// {"capacity": N, "total": M, "records": [...]} with escaped strings.
  std::string ToJson() const;

  /// Total pushes ever (>= capacity once the ring has wrapped).
  int64_t total_pushed() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryRecord> ring_;  // ring_[next_ % capacity_] is oldest
  int64_t pushed_ = 0;
};

}  // namespace obs
}  // namespace dot

#endif  // DOT_OBS_RING_H_
