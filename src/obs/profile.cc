#include "obs/profile.h"

#include <cstdlib>
#include <sstream>

namespace dot {
namespace obs {

namespace {

bool EnvEnabled() {
  const char* env = std::getenv("DOT_OP_PROFILE");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

void AtomicAddDouble(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

}  // namespace

std::atomic<bool> OpProfiler::enabled_{EnvEnabled()};
OpProfiler::Slot OpProfiler::slots_[static_cast<int>(OpKind::kNumKinds)];

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2d:
      return "conv2d";
    case OpKind::kGemm:
      return "gemm";
    case OpKind::kAttention:
      return "attention";
    case OpKind::kGemmKernel:
      return "gemm_kernel";
    case OpKind::kNumKinds:
      break;
  }
  return "?";
}

void OpProfiler::Enable(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void OpProfiler::Record(OpKind kind, int64_t ns, double flops) {
  Slot& s = slots_[static_cast<int>(kind)];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  s.total_ns.fetch_add(ns, std::memory_order_relaxed);
  AtomicAddDouble(&s.flops, flops);
}

OpStats OpProfiler::Get(OpKind kind) {
  const Slot& s = slots_[static_cast<int>(kind)];
  OpStats out;
  out.calls = s.calls.load(std::memory_order_relaxed);
  out.total_ns = s.total_ns.load(std::memory_order_relaxed);
  out.flops = s.flops.load(std::memory_order_relaxed);
  return out;
}

void OpProfiler::Reset() {
  for (auto& s : slots_) {
    s.calls.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    s.flops.store(0, std::memory_order_relaxed);
  }
}

std::string OpProfiler::ToJson() {
  std::ostringstream out;
  out << "{";
  for (int k = 0; k < static_cast<int>(OpKind::kNumKinds); ++k) {
    OpStats s = Get(static_cast<OpKind>(k));
    out << (k ? ", " : "") << "\"" << OpKindName(static_cast<OpKind>(k))
        << "\": {\"calls\": " << s.calls << ", \"total_ms\": " << s.total_ms()
        << ", \"flops\": " << s.flops << ", \"gflops\": " << s.gflops() << "}";
  }
  out << "}";
  return out.str();
}

}  // namespace obs
}  // namespace dot
