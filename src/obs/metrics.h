// Metrics registry for the DOT serving and training stack: counters,
// gauges, and fixed-bucket latency histograms, registered by name in a
// process-wide registry and exportable as Prometheus-style text or JSON.
//
// Design constraints (DESIGN.md §"Observability"):
//   - Recording must be cheap enough to leave on in serving hot paths:
//     counters are sharded across cache lines (one relaxed fetch_add, no
//     contention between threads), histograms are one binary search plus
//     two relaxed atomics. All recording is lock-free.
//   - Metric objects are created once (mutex-guarded registration) and the
//     returned pointers stay valid for the process lifetime, so call sites
//     look them up in a constructor / static and never pay the map lookup
//     on the hot path.
//   - This library sits below util (the thread pool reports into it), so it
//     depends on nothing but the standard library.

#ifndef DOT_OBS_METRICS_H_
#define DOT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dot {
namespace obs {

/// True unless metrics were disabled (DOT_METRICS=0 or SetMetricsEnabled).
/// Recording into an existing metric is always safe; this gate exists for
/// instrumentation that must *compute* something before recording it
/// (e.g. a gradient norm), which should be skipped entirely when disabled.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// \brief Monotonic counter, sharded to keep concurrent increments from
/// bouncing one cache line between cores.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Sum over shards. Concurrent increments may or may not be included.
  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr int kShards = 16;  // power of two (masked index)
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  static uint32_t ShardIndex();
  Shard shards_[kShards];
};

/// \brief Last-value gauge (epoch loss, grad norm, cache size, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Atomic add (CAS loop) — for up/down quantities recorded from several
  /// threads (in-flight requests), where Set() would lose concurrent
  /// updates.
  void Add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// \brief Read-only view of a histogram (see Histogram::Snapshot).
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  /// Pairs of (inclusive upper bound, cumulative count); the final pair's
  /// bound is +infinity.
  std::vector<std::pair<double, int64_t>> cumulative_buckets;
};

/// \brief Fixed-bucket histogram with quantile extraction.
///
/// Buckets are defined by a sorted list of inclusive upper bounds; an
/// implicit overflow bucket (+inf) catches everything above the last bound.
/// Quantiles are estimated by linear interpolation inside the bucket that
/// contains the target rank — exact at bucket boundaries, off by at most a
/// bucket width inside.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Quantile estimate for q in [0, 1]; 0 when empty.
  double Quantile(double q) const;
  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// Default bounds for latencies recorded in microseconds: roughly
  /// logarithmic from 1us to 100s (1-2-5 decades).
  static std::vector<double> LatencyBoundsUs();
  /// Small linear bounds for batch-size style distributions: 1..max in
  /// steps of `step`.
  static std::vector<double> LinearBounds(double start, double step, int n);
  /// Geometric bounds start, start*factor, ... (n bounds) for long-tailed
  /// count distributions (queue depth, wave sizes under overload).
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int n);

 private:
  std::vector<double> bounds_;                      // sorted, inclusive upper
  std::vector<std::atomic<int64_t>> bucket_counts_;  // bounds.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class RollingHistogram;  // obs/window.h

/// \brief One registry entry of any kind (used by MetricsSnapshot).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Rolling-window histograms (obs/window.h): only samples from the last
  /// window contribute, so count/p50/p95/p99 track current load.
  std::map<std::string, HistogramSnapshot> windows;
};

/// \brief Process-wide name -> metric registry.
///
/// Names are sanitized to the Prometheus charset [a-zA-Z0-9_:] (invalid
/// characters become '_'). Requesting an existing name returns the same
/// object; requesting it as a different kind aborts (programmer error).
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter* GetCounter(const std::string& name);
  /// Labeled counter: registers/returns the series `name{key="value",...}`.
  /// Labels follow Prometheus semantics — one Counter object per distinct
  /// label set. Label values are sanitized to [a-zA-Z0-9_.:/-] so the text
  /// export never needs escaping; the `# TYPE` comment is emitted once per
  /// base name.
  Counter* GetCounter(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& labels);
  Gauge* GetGauge(const std::string& name);
  /// Labeled gauge: registers/returns the series `name{key="value",...}`
  /// (same label semantics and sanitization as the labeled counter). Used
  /// by per-shard state series such as `dot_shard_health{shard="0"}`.
  Gauge* GetGauge(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& labels);
  /// `bounds` is used only on first registration (empty = latency default).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});
  /// Rolling-window histogram (60s window / 5s buckets, obs/window.h).
  /// `bounds` is used only on first registration (empty = latency default).
  /// Window series export as `<name>_window_p50/_p95/_p99/_count` gauges in
  /// the Prometheus text and under "windows" in the JSON dump.
  RollingHistogram* GetWindow(const std::string& name,
                              std::vector<double> bounds = {});

  /// Point-in-time copy of every registered metric.
  MetricsSnapshot Snapshot() const;
  /// Prometheus text exposition format (counters as `_total`-suffixed names
  /// verbatim, histograms as `_bucket`/`_sum`/`_count` series).
  std::string ToPrometheusText() const;
  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with per-histogram count/sum/p50/p95/p99 and cumulative buckets.
  std::string ToJson() const;

  /// Zeroes every metric's value without invalidating pointers (tests,
  /// bench sections). Registered names persist.
  void ResetValues();

 private:
  MetricsRegistry();
  ~MetricsRegistry();  // defined where RollingHistogram is complete

  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<RollingHistogram>> windows_;
};

/// Convenience wrappers over MetricsRegistry::Get().
MetricsSnapshot SnapshotMetrics();
std::string MetricsToPrometheusText();
std::string MetricsToJson();
/// Writes the combined JSON dump (registry + op profiler section) to
/// `path`. Returns false on I/O failure.
bool DumpMetrics(const std::string& path);

/// Escapes `s` for inclusion inside a JSON string literal: quote,
/// backslash, and every control character (< 0x20) become escape
/// sequences. The canonical escaper for every JSON emitter in the tree
/// (chrome-trace export, metrics JSON, /varz, slow-query ring).
std::string JsonEscape(const std::string& s);

namespace internal {
/// Quantile estimate by linear interpolation over per-bucket counts — the
/// shared math behind Histogram::Quantile and RollingHistogram::Quantile.
/// `counts` has bounds.size() + 1 entries (last one = +inf overflow);
/// `total` is their sum. Returns 0 when total <= 0.
double BucketQuantile(const std::vector<double>& bounds,
                      const std::vector<int64_t>& counts, int64_t total,
                      double q);
}  // namespace internal

}  // namespace obs
}  // namespace dot

#endif  // DOT_OBS_METRICS_H_
