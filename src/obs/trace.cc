#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"  // JsonEscape

namespace dot {
namespace obs {

namespace {

/// Global recorder state. Events from all threads funnel through one mutex;
/// spans are opened/closed at millisecond-ish granularity in practice
/// (service calls, reverse steps, convs), so contention is negligible
/// compared to the work inside them.
struct Recorder {
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> next_id{1};
  std::chrono::steady_clock::time_point origin;
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::string path;
  // Hard cap so a forgotten recording can't grow without bound; overflow
  // is counted and reported in the export.
  static constexpr size_t kMaxEvents = 1 << 20;
  size_t dropped = 0;
};

Recorder& Rec() {
  static Recorder* r = new Recorder();  // never destroyed
  return *r;
}

void FlushAtExit() {
  if (Rec().enabled.load(std::memory_order_relaxed)) StopTracing();
}

/// DOT_TRACE=<path> starts a process-lifetime recording flushed at exit.
/// The returned bool only forces one-time evaluation.
const bool g_env_init = [] {
  if (const char* path = std::getenv("DOT_TRACE")) {
    if (path[0] != '\0') {
      StartTracing(path);
      std::atexit(FlushAtExit);
    }
  }
  return true;
}();

// Thread-local span context.
thread_local std::vector<uint64_t> t_span_stack;
thread_local uint64_t t_inherited_parent = 0;

int ThisThreadTid() {
  static std::atomic<int> next_tid{1};
  thread_local int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Rec().origin)
      .count();
}

}  // namespace

bool TracingEnabled() {
  return Rec().enabled.load(std::memory_order_relaxed);
}

void StartTracing(const std::string& path) {
  Recorder& r = Rec();
  std::lock_guard<std::mutex> lock(r.mu);
  r.events.clear();
  r.dropped = 0;
  r.path = path;
  r.origin = std::chrono::steady_clock::now();
  r.next_id.store(1, std::memory_order_relaxed);
  r.enabled.store(true, std::memory_order_release);
}

std::vector<TraceEvent> StopTracing() {
  Recorder& r = Rec();
  r.enabled.store(false, std::memory_order_release);
  std::vector<TraceEvent> events;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    events.swap(r.events);
    path.swap(r.path);
    if (r.dropped > 0) {
      std::fprintf(stderr, "[obs] trace buffer overflow: dropped %zu events\n",
                   r.dropped);
      r.dropped = 0;
    }
  }
  if (!path.empty()) {
    std::ofstream out(path);
    if (out) {
      out << ToChromeJson(events);
    } else {
      std::fprintf(stderr, "[obs] cannot write trace to %s\n", path.c_str());
    }
  }
  return events;
}

std::vector<TraceEvent> TraceEvents() {
  Recorder& r = Rec();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.events;
}

std::string ToChromeJson(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out << (i ? ",\n" : "\n") << "  {\"name\": \"" << JsonEscape(e.name)
        << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
        << ", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us
        << ", \"args\": {\"id\": " << e.id << ", \"parent\": " << e.parent_id;
    if (!e.args.empty()) out << ", " << e.args;
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

uint64_t CurrentSpanId() {
  if (!t_span_stack.empty()) return t_span_stack.back();
  return t_inherited_parent;
}

uint64_t NewSpanId() {
  if (!TracingEnabled()) return 0;
  return Rec().next_id.fetch_add(1, std::memory_order_relaxed);
}

int64_t TraceNowUs() {
  if (!TracingEnabled()) return 0;
  return NowUs();
}

void RecordSpan(const char* name, uint64_t id, uint64_t parent_id,
                int64_t ts_us, int64_t dur_us, std::string args) {
  if (id == 0 || !TracingEnabled()) return;
  TraceEvent e;
  e.name = name;
  e.args = std::move(args);
  e.ts_us = ts_us;
  e.dur_us = dur_us < 0 ? 0 : dur_us;
  e.tid = ThisThreadTid();
  e.id = id;
  e.parent_id = parent_id;

  Recorder& r = Rec();
  std::lock_guard<std::mutex> lock(r.mu);
  // As with TraceSpan: a Stop that raced us already flushed the buffer this
  // span belongs to.
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  if (r.events.size() >= Recorder::kMaxEvents) {
    ++r.dropped;
    return;
  }
  r.events.push_back(std::move(e));
}

InheritedParent::InheritedParent(uint64_t parent) : saved_(t_inherited_parent) {
  t_inherited_parent = parent;
}

InheritedParent::~InheritedParent() { t_inherited_parent = saved_; }

TraceSpan::TraceSpan(const char* name, std::string args) {
  if (!TracingEnabled()) return;
  active_ = true;
  name_ = name;
  args_ = std::move(args);
  parent_id_ = CurrentSpanId();
  id_ = Rec().next_id.fetch_add(1, std::memory_order_relaxed);
  t_span_stack.push_back(id_);
  start_us_ = NowUs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  int64_t end_us = NowUs();
  // Unwind to this span even if an inner span leaked past its scope.
  while (!t_span_stack.empty() && t_span_stack.back() != id_) {
    t_span_stack.pop_back();
  }
  if (!t_span_stack.empty()) t_span_stack.pop_back();

  TraceEvent e;
  e.name = name_;
  e.args = std::move(args_);
  e.ts_us = start_us_;
  e.dur_us = end_us - start_us_;
  e.tid = ThisThreadTid();
  e.id = id_;
  e.parent_id = parent_id_;

  Recorder& r = Rec();
  std::lock_guard<std::mutex> lock(r.mu);
  // A Stop between construction and destruction discards the span: its
  // interval would be clipped and its parent already flushed.
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  if (r.events.size() >= Recorder::kMaxEvents) {
    ++r.dropped;
    return;
  }
  r.events.push_back(std::move(e));
}

}  // namespace obs
}  // namespace dot
