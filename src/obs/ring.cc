#include "obs/ring.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace dot {
namespace obs {

namespace {

/// JSON-valid number rendering (non-finite values quoted — JSON has no
/// literal for them).
std::string Num(double v) {
  if (std::isnan(v)) return "\"NaN\"";
  if (std::isinf(v)) return v > 0 ? "\"+Inf\"" : "\"-Inf\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

SlowQueryRing::SlowQueryRing(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void SlowQueryRing::Push(SlowQueryRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pos = static_cast<size_t>(pushed_ % static_cast<int64_t>(capacity_));
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[pos] = std::move(rec);
  }
  ++pushed_;
}

std::vector<SlowQueryRecord> SlowQueryRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryRecord> out;
  out.reserve(ring_.size());
  // Before the first wrap ring_ is already oldest-first; afterwards the
  // slot about to be overwritten is the oldest.
  size_t start = ring_.size() < capacity_
                     ? 0
                     : static_cast<size_t>(pushed_ %
                                           static_cast<int64_t>(capacity_));
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

int64_t SlowQueryRing::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

std::string SlowQueryRing::ToJson() const {
  std::vector<SlowQueryRecord> records = Snapshot();
  int64_t total = total_pushed();
  std::ostringstream out;
  out << "{\"capacity\": " << capacity_ << ", \"total\": " << total
      << ", \"records\": [";
  for (size_t i = 0; i < records.size(); ++i) {
    const SlowQueryRecord& r = records[i];
    out << (i ? ",\n" : "\n") << "  {\"trace_id\": " << r.trace_id
        << ", \"request_id\": " << r.request_id
        << ", \"unix_ms\": " << r.unix_ms
        << ", \"latency_ms\": " << Num(r.latency_ms)
        << ", \"quality\": " << r.quality << ", \"code\": " << r.code
        << ", \"queue_us\": " << Num(r.queue_us)
        << ", \"batch_wait_us\": " << Num(r.batch_wait_us)
        << ", \"stage1_us\": " << Num(r.stage1_us)
        << ", \"stage2_us\": " << Num(r.stage2_us)
        << ", \"serialize_us\": " << Num(r.serialize_us) << ", \"note\": \""
        << JsonEscape(r.note) << "\"}";
  }
  out << (records.empty() ? "" : "\n") << "]}";
  return out.str();
}

}  // namespace obs
}  // namespace dot
