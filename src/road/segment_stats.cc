#include "road/segment_stats.h"

#include <algorithm>

namespace dot {

std::vector<int64_t> MapMatcher::MatchNodes(const Trajectory& t) const {
  std::vector<int64_t> nodes;
  nodes.reserve(t.points.size());
  for (const auto& p : t.points) {
    int64_t id = net_->NearestNode(p.gps);
    if (nodes.empty() || nodes.back() != id) nodes.push_back(id);
  }
  return nodes;
}

SegmentStats SegmentStats::Learn(const RoadNetwork& net,
                                 const std::vector<Trajectory>& trajectories) {
  SegmentStats stats;
  std::vector<double> sum(static_cast<size_t>(net.num_edges()), 0.0);
  std::vector<double> count(static_cast<size_t>(net.num_edges()), 0.0);
  MapMatcher matcher(&net);

  for (const auto& t : trajectories) {
    if (t.size() < 2) continue;
    // Match each point, keeping timestamps; merge consecutive duplicates.
    std::vector<std::pair<int64_t, int64_t>> matched;  // (node, time)
    for (const auto& p : t.points) {
      int64_t id = net.NearestNode(p.gps);
      if (matched.empty() || matched.back().first != id) {
        matched.emplace_back(id, p.time);
      }
    }
    for (size_t i = 1; i < matched.size(); ++i) {
      auto [a, ta] = matched[i - 1];
      auto [b, tb] = matched[i];
      double elapsed = static_cast<double>(tb - ta);
      if (elapsed <= 0) continue;
      RoutingResult path = net.ShortestPath(a, b);
      if (!path.found() || path.edge_path.empty()) continue;
      double total_ff = 0;
      for (int64_t eid : path.edge_path) total_ff += net.FreeFlowSeconds(eid);
      if (total_ff <= 0) continue;
      for (int64_t eid : path.edge_path) {
        double share = net.FreeFlowSeconds(eid) / total_ff;
        sum[static_cast<size_t>(eid)] += elapsed * share;
        count[static_cast<size_t>(eid)] += share;
      }
    }
  }

  stats.edge_seconds_.resize(static_cast<size_t>(net.num_edges()));
  for (int64_t e = 0; e < net.num_edges(); ++e) {
    if (count[static_cast<size_t>(e)] > 1e-9) {
      stats.edge_seconds_[static_cast<size_t>(e)] =
          sum[static_cast<size_t>(e)] / count[static_cast<size_t>(e)];
      ++stats.num_observed_;
    } else {
      stats.edge_seconds_[static_cast<size_t>(e)] = net.FreeFlowSeconds(e);
    }
  }
  return stats;
}

}  // namespace dot
