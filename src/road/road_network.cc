#include "road/road_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "util/logging.h"

namespace dot {

int64_t RoadNetwork::AddNode(GpsPoint gps) {
  nodes_.push_back(RoadNode{gps});
  out_edges_.emplace_back();
  return num_nodes() - 1;
}

int64_t RoadNetwork::AddEdge(int64_t from, int64_t to, double speed_mps,
                             double length_meters) {
  DOT_CHECK(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes())
      << "AddEdge: node id out of range";
  RoadEdge e;
  e.from = from;
  e.to = to;
  e.free_flow_speed_mps = speed_mps;
  e.length_meters = length_meters >= 0
                        ? length_meters
                        : DistanceMeters(node(from).gps, node(to).gps);
  edges_.push_back(e);
  int64_t id = num_edges() - 1;
  out_edges_[static_cast<size_t>(from)].push_back(id);
  return id;
}

int64_t RoadNetwork::AddBidirectional(int64_t a, int64_t b, double speed_mps) {
  int64_t id = AddEdge(a, b, speed_mps);
  AddEdge(b, a, speed_mps);
  return id;
}

double RoadNetwork::FreeFlowSeconds(int64_t edge_id) const {
  const RoadEdge& e = edge(edge_id);
  return e.length_meters / std::max(0.1, e.free_flow_speed_mps);
}

void RoadNetwork::BuildIndex(int64_t buckets_per_axis) {
  DOT_CHECK(num_nodes() > 0) << "BuildIndex on empty network";
  index_box_ = Bounds();
  index_buckets_ = buckets_per_axis;
  index_cells_.assign(static_cast<size_t>(buckets_per_axis * buckets_per_axis), {});
  for (int64_t i = 0; i < num_nodes(); ++i) {
    const GpsPoint& p = node(i).gps;
    int64_t bx = std::clamp<int64_t>(
        static_cast<int64_t>((p.lng - index_box_.min_lng) /
                             std::max(1e-12, index_box_.width_deg()) *
                             static_cast<double>(buckets_per_axis)),
        0, buckets_per_axis - 1);
    int64_t by = std::clamp<int64_t>(
        static_cast<int64_t>((p.lat - index_box_.min_lat) /
                             std::max(1e-12, index_box_.height_deg()) *
                             static_cast<double>(buckets_per_axis)),
        0, buckets_per_axis - 1);
    index_cells_[static_cast<size_t>(by * buckets_per_axis + bx)].push_back(i);
  }
}

int64_t RoadNetwork::NearestNode(const GpsPoint& p) const {
  DOT_CHECK(num_nodes() > 0) << "NearestNode on empty network";
  if (index_buckets_ == 0) {
    int64_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (int64_t i = 0; i < num_nodes(); ++i) {
      double d = DistanceMeters(p, node(i).gps);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    return best;
  }
  int64_t bx = std::clamp<int64_t>(
      static_cast<int64_t>((p.lng - index_box_.min_lng) /
                           std::max(1e-12, index_box_.width_deg()) *
                           static_cast<double>(index_buckets_)),
      0, index_buckets_ - 1);
  int64_t by = std::clamp<int64_t>(
      static_cast<int64_t>((p.lat - index_box_.min_lat) /
                           std::max(1e-12, index_box_.height_deg()) *
                           static_cast<double>(index_buckets_)),
      0, index_buckets_ - 1);
  // Expand rings until a candidate is found, then one extra ring to be safe.
  int64_t best = -1;
  double best_d = std::numeric_limits<double>::max();
  for (int64_t radius = 0; radius < index_buckets_; ++radius) {
    bool scanned_any = false;
    for (int64_t y = std::max<int64_t>(0, by - radius);
         y <= std::min(index_buckets_ - 1, by + radius); ++y) {
      for (int64_t x = std::max<int64_t>(0, bx - radius);
           x <= std::min(index_buckets_ - 1, bx + radius); ++x) {
        if (std::max(std::abs(x - bx), std::abs(y - by)) != radius) continue;
        scanned_any = true;
        for (int64_t id : index_cells_[static_cast<size_t>(y * index_buckets_ + x)]) {
          double d = DistanceMeters(p, node(id).gps);
          if (d < best_d) {
            best_d = d;
            best = id;
          }
        }
      }
    }
    if (best >= 0 && radius > 0) break;  // found plus one safety ring
    if (!scanned_any && radius > 0 && best >= 0) break;
  }
  return best >= 0 ? best : 0;
}

BoundingBox RoadNetwork::Bounds() const {
  std::vector<GpsPoint> pts;
  pts.reserve(static_cast<size_t>(num_nodes()));
  for (const auto& n : nodes_) pts.push_back(n.gps);
  return BoundingBox::Cover(pts);
}

double RoadNetwork::EdgeWeight(int64_t edge_id,
                               const std::vector<double>& weights) const {
  if (!weights.empty()) return weights[static_cast<size_t>(edge_id)];
  return FreeFlowSeconds(edge_id);
}

RoutingResult RoadNetwork::ShortestPath(int64_t from, int64_t to,
                                        const std::vector<double>& weights) const {
  return ShortestPathAvoiding(from, to, weights, {}, {});
}

RoutingResult RoadNetwork::ShortestPathAvoiding(
    int64_t from, int64_t to, const std::vector<double>& weights,
    const std::vector<bool>& banned_edges,
    const std::vector<bool>& banned_nodes) const {
  DOT_CHECK(!(!weights.empty() &&
              static_cast<int64_t>(weights.size()) != num_edges()))
      << "weights size must equal edge count";
  const double kInf = std::numeric_limits<double>::max();
  std::vector<double> dist(static_cast<size_t>(num_nodes()), kInf);
  std::vector<int64_t> prev_edge(static_cast<size_t>(num_nodes()), -1);
  using Item = std::pair<double, int64_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<size_t>(from)] = 0;
  heap.emplace(0.0, from);
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    if (u == to) break;
    for (int64_t eid : OutEdges(u)) {
      if (!banned_edges.empty() && banned_edges[static_cast<size_t>(eid)]) continue;
      const RoadEdge& e = edge(eid);
      if (!banned_nodes.empty() && banned_nodes[static_cast<size_t>(e.to)]) continue;
      double nd = d + EdgeWeight(eid, weights);
      if (nd < dist[static_cast<size_t>(e.to)]) {
        dist[static_cast<size_t>(e.to)] = nd;
        prev_edge[static_cast<size_t>(e.to)] = eid;
        heap.emplace(nd, e.to);
      }
    }
  }
  RoutingResult r;
  if (dist[static_cast<size_t>(to)] == kInf) return r;
  r.cost = dist[static_cast<size_t>(to)];
  int64_t cur = to;
  while (cur != from) {
    int64_t eid = prev_edge[static_cast<size_t>(cur)];
    r.edge_path.push_back(eid);
    r.node_path.push_back(cur);
    cur = edge(eid).from;
  }
  r.node_path.push_back(from);
  std::reverse(r.node_path.begin(), r.node_path.end());
  std::reverse(r.edge_path.begin(), r.edge_path.end());
  return r;
}

std::vector<RoutingResult> RoadNetwork::KShortestPaths(
    int64_t from, int64_t to, int64_t k, const std::vector<double>& weights) const {
  std::vector<RoutingResult> result;
  RoutingResult first = ShortestPath(from, to, weights);
  if (!first.found() || k <= 0) return result;
  result.push_back(first);

  // Yen's algorithm with a candidate set keyed by cost.
  auto path_less = [](const RoutingResult& a, const RoutingResult& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.node_path < b.node_path;
  };
  std::set<std::pair<double, std::vector<int64_t>>> seen;
  seen.insert({first.cost, first.node_path});
  std::vector<RoutingResult> candidates;

  for (int64_t ki = 1; ki < k; ++ki) {
    const RoutingResult& prev = result.back();
    for (size_t spur = 0; spur + 1 < prev.node_path.size(); ++spur) {
      int64_t spur_node = prev.node_path[spur];
      // Root path: prefix up to the spur node.
      std::vector<bool> banned_edges(static_cast<size_t>(num_edges()), false);
      std::vector<bool> banned_nodes(static_cast<size_t>(num_nodes()), false);
      for (const auto& p : result) {
        if (p.node_path.size() > spur &&
            std::equal(p.node_path.begin(), p.node_path.begin() + spur + 1,
                       prev.node_path.begin())) {
          banned_edges[static_cast<size_t>(p.edge_path[spur])] = true;
        }
      }
      for (size_t i = 0; i < spur; ++i) {
        banned_nodes[static_cast<size_t>(prev.node_path[i])] = true;
      }
      RoutingResult spur_path =
          ShortestPathAvoiding(spur_node, to, weights, banned_edges, banned_nodes);
      if (!spur_path.found()) continue;
      RoutingResult total;
      total.node_path.assign(prev.node_path.begin(), prev.node_path.begin() + spur);
      total.node_path.insert(total.node_path.end(), spur_path.node_path.begin(),
                             spur_path.node_path.end());
      total.edge_path.assign(prev.edge_path.begin(), prev.edge_path.begin() + spur);
      total.edge_path.insert(total.edge_path.end(), spur_path.edge_path.begin(),
                             spur_path.edge_path.end());
      total.cost = spur_path.cost;
      for (size_t i = 0; i < spur; ++i) {
        total.cost += EdgeWeight(prev.edge_path[i], weights);
      }
      if (seen.insert({total.cost, total.node_path}).second) {
        candidates.push_back(std::move(total));
      }
    }
    if (candidates.empty()) break;
    auto best = std::min_element(candidates.begin(), candidates.end(), path_less);
    result.push_back(*best);
    candidates.erase(best);
  }
  return result;
}

}  // namespace dot
