// Map matching and historical per-segment travel times.
//
// The routing baselines (Sec. 6.2.1) are "provided with a weighted road
// network, where the weights represent the average travel time of road
// segments that is calculated from historical trajectories". SegmentStats
// computes exactly those weights.

#ifndef DOT_ROAD_SEGMENT_STATS_H_
#define DOT_ROAD_SEGMENT_STATS_H_

#include <vector>

#include "geo/trajectory.h"
#include "road/road_network.h"

namespace dot {

/// \brief Snaps GPS trajectories onto the road network.
class MapMatcher {
 public:
  explicit MapMatcher(const RoadNetwork* net) : net_(net) {}

  /// Nearest network node for each GPS point, consecutive duplicates merged.
  std::vector<int64_t> MatchNodes(const Trajectory& t) const;

  /// Nearest node for a single point.
  int64_t Match(const GpsPoint& p) const { return net_->NearestNode(p); }

 private:
  const RoadNetwork* net_;
};

/// \brief Historical average travel time per road segment.
class SegmentStats {
 public:
  /// Learns edge weights from trajectories: every consecutive matched node
  /// pair contributes its elapsed time, distributed over the free-flow
  /// shortest path between the nodes proportionally to free-flow times.
  /// Edges never observed fall back to free-flow travel time.
  static SegmentStats Learn(const RoadNetwork& net,
                            const std::vector<Trajectory>& trajectories);

  /// Seconds per edge, aligned with RoadNetwork edge ids.
  const std::vector<double>& edge_seconds() const { return edge_seconds_; }

  /// Number of edges with at least one observation.
  int64_t num_observed() const { return num_observed_; }

 private:
  std::vector<double> edge_seconds_;
  int64_t num_observed_ = 0;
};

}  // namespace dot

#endif  // DOT_ROAD_SEGMENT_STATS_H_
