// Directed road network with a spatial index, shortest-path routing
// (Dijkstra), and k-shortest-path enumeration (Yen). This is the substrate
// for the routing baselines (Sec. 6.2.1) and the trajectory simulator.

#ifndef DOT_ROAD_ROAD_NETWORK_H_
#define DOT_ROAD_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "geo/geo.h"
#include "util/result.h"

namespace dot {

/// \brief A road-network vertex.
struct RoadNode {
  GpsPoint gps;
};

/// \brief A directed road segment.
struct RoadEdge {
  int64_t from = 0;
  int64_t to = 0;
  double length_meters = 0;
  double free_flow_speed_mps = 13.9;  ///< ~50 km/h default
};

/// \brief Result of a shortest-path query.
struct RoutingResult {
  std::vector<int64_t> node_path;  ///< empty when unreachable
  std::vector<int64_t> edge_path;
  double cost = 0;  ///< sum of edge weights (seconds when weights are times)

  bool found() const { return !node_path.empty(); }
};

/// \brief Directed graph over road nodes with per-edge lengths/speeds.
class RoadNetwork {
 public:
  int64_t AddNode(GpsPoint gps);
  /// Adds a directed edge; length defaults to the node distance.
  int64_t AddEdge(int64_t from, int64_t to, double speed_mps = 13.9,
                  double length_meters = -1);
  /// Adds edges in both directions; returns the forward edge id.
  int64_t AddBidirectional(int64_t a, int64_t b, double speed_mps = 13.9);

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }
  const RoadNode& node(int64_t id) const { return nodes_[static_cast<size_t>(id)]; }
  const RoadEdge& edge(int64_t id) const { return edges_[static_cast<size_t>(id)]; }
  const std::vector<int64_t>& OutEdges(int64_t node) const {
    return out_edges_[static_cast<size_t>(node)];
  }

  /// Free-flow travel time of an edge, seconds.
  double FreeFlowSeconds(int64_t edge_id) const;

  /// Builds the nearest-node spatial index; call after all nodes are added.
  void BuildIndex(int64_t buckets_per_axis = 64);
  /// Nearest node to `p` (linear scan fallback if the index is absent).
  int64_t NearestNode(const GpsPoint& p) const;

  /// Bounding box over all nodes.
  BoundingBox Bounds() const;

  /// Dijkstra shortest path with per-edge weights (seconds). `weights` must
  /// have one entry per edge; pass {} to use free-flow times.
  RoutingResult ShortestPath(int64_t from, int64_t to,
                             const std::vector<double>& weights = {}) const;

  /// Yen's k-shortest loopless paths (used by the simulator's route-choice
  /// model). Returns at most k paths sorted by cost.
  std::vector<RoutingResult> KShortestPaths(
      int64_t from, int64_t to, int64_t k,
      const std::vector<double>& weights = {}) const;

 private:
  double EdgeWeight(int64_t edge_id, const std::vector<double>& weights) const;
  RoutingResult ShortestPathAvoiding(int64_t from, int64_t to,
                                     const std::vector<double>& weights,
                                     const std::vector<bool>& banned_edges,
                                     const std::vector<bool>& banned_nodes) const;

  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<int64_t>> out_edges_;

  // Spatial hash for NearestNode.
  BoundingBox index_box_;
  int64_t index_buckets_ = 0;
  std::vector<std::vector<int64_t>> index_cells_;
};

}  // namespace dot

#endif  // DOT_ROAD_ROAD_NETWORK_H_
