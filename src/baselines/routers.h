// Routing baselines (Sec. 6.2.1):
//   Dijkstra [23] — shortest path on the road network weighted with
//                   historical average segment travel times.
//   DeepST   [26] — data-driven router: a destination- and time-conditioned
//                   spatial transition model learned from historical
//                   trajectories (the learned stand-in documented in
//                   DESIGN.md).

#ifndef DOT_BASELINES_ROUTERS_H_
#define DOT_BASELINES_ROUTERS_H_

#include <memory>

#include "baselines/cell_history.h"
#include "baselines/oracle.h"
#include "road/road_network.h"
#include "road/segment_stats.h"

namespace dot {

/// \brief Dijkstra on the historically weighted road network.
class DijkstraRouter : public Router {
 public:
  /// `net` must outlive the router.
  DijkstraRouter(const RoadNetwork* net, const Grid& grid)
      : net_(net), grid_(grid) {}

  Status Train(const std::vector<TripSample>& train) override;
  std::vector<int64_t> Route(const OdtInput& odt) const override;
  double EstimateMinutes(const OdtInput& odt) const override;
  std::string name() const override { return "Dijkstra"; }
  int64_t SizeBytes() const override;

  /// Node-level route (exposed for tests / conversions).
  RoutingResult NodeRoute(const OdtInput& odt) const;

 private:
  const RoadNetwork* net_;
  Grid grid_;
  std::vector<double> edge_weights_;  // learned historical seconds
};

/// \brief DeepST-like learned router over grid cells.
///
/// Learns P(next cell | current cell, direction-to-destination, ToD slot)
/// from historical transitions and walks greedily-stochastically from origin
/// to destination; travel time is the sum of learned transition times.
class DeepStRouter : public Router {
 public:
  DeepStRouter(const Grid& grid, uint64_t seed = 23, int64_t max_steps = 400,
               double greedy_prob = 0.97)
      : grid_(grid), rng_(seed), max_steps_(max_steps), greedy_prob_(greedy_prob) {}

  Status Train(const std::vector<TripSample>& train) override;
  std::vector<int64_t> Route(const OdtInput& odt) const override;
  double EstimateMinutes(const OdtInput& odt) const override;
  std::string name() const override { return "DeepST"; }
  int64_t SizeBytes() const override;

  const CellHistory& history() const { return *history_; }

 private:
  /// Score of stepping from `from` to `to` heading to `dest` (higher =
  /// preferred): learned popularity times directional progress.
  double StepScore(int64_t from, int64_t to, int64_t dest) const;

  Grid grid_;
  mutable Rng rng_;
  int64_t max_steps_;
  double greedy_prob_;
  std::unique_ptr<CellHistory> history_;
};

}  // namespace dot

#endif  // DOT_BASELINES_ROUTERS_H_
