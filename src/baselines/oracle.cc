#include "baselines/oracle.h"

// OdtFeatures lives in geo/pit.cc (shared with the core estimator).
