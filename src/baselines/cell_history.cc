#include "baselines/cell_history.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dot {

std::vector<int64_t> CellPathOf(const Trajectory& t, const Grid& grid,
                                bool interpolate) {
  // Reuse the PiT builder's interpolation semantics by walking the points.
  std::vector<int64_t> path;
  auto push = [&](const GpsPoint& p) {
    int64_t idx = grid.CellIndex(grid.Locate(p));
    if (path.empty() || path.back() != idx) path.push_back(idx);
  };
  for (size_t i = 0; i < t.points.size(); ++i) {
    push(t.points[i].gps);
    if (interpolate && i + 1 < t.points.size()) {
      const GpsPoint& a = t.points[i].gps;
      const GpsPoint& b = t.points[i + 1].gps;
      double dist = DistanceMeters(a, b);
      double cell_m =
          grid.box().WidthMeters() / static_cast<double>(grid.grid_size());
      int64_t steps = static_cast<int64_t>(dist / std::max(1.0, cell_m * 0.5));
      for (int64_t s = 1; s < steps; ++s) {
        double f = static_cast<double>(s) / static_cast<double>(steps);
        push({a.lng + f * (b.lng - a.lng), a.lat + f * (b.lat - a.lat)});
      }
    }
  }
  return path;
}

int64_t CellHistory::SlotOf(int64_t unix_time) const {
  return SecondsOfDay(unix_time) * tod_slots_ / 86400;
}

CellHistory CellHistory::Learn(const std::vector<TripSample>& train,
                               const Grid& grid, int64_t tod_slots) {
  CellHistory h;
  h.grid_size_ = grid.grid_size();
  h.tod_slots_ = tod_slots;
  int64_t cells = grid.num_cells();
  double total_sum = 0, total_count = 0;
  for (const auto& s : train) {
    const Trajectory& t = s.trajectory;
    if (t.size() < 2) continue;
    // Timestamped cell entries (no interpolation: we need real times).
    std::vector<std::pair<int64_t, int64_t>> entries;  // (cell, time)
    for (const auto& p : t.points) {
      int64_t idx = grid.CellIndex(grid.Locate(p.gps));
      if (entries.empty() || entries.back().first != idx) {
        entries.emplace_back(idx, p.time);
      }
    }
    for (size_t i = 1; i < entries.size(); ++i) {
      auto [from, t0] = entries[i - 1];
      auto [to, t1] = entries[i];
      double secs = static_cast<double>(t1 - t0);
      if (secs <= 0 || secs > 1800) continue;
      int64_t key = from * cells + to;
      Stat& st = h.transitions_[key];
      if (st.slot_count.empty()) {
        st.slot_count.assign(static_cast<size_t>(tod_slots), 0);
        st.slot_sum.assign(static_cast<size_t>(tod_slots), 0);
        h.successors_[from].push_back(to);
      }
      st.count += 1;
      st.sum_seconds += secs;
      int64_t slot = h.SlotOf(t0);
      st.slot_count[static_cast<size_t>(slot)] += 1;
      st.slot_sum[static_cast<size_t>(slot)] += secs;
      total_sum += secs;
      total_count += 1;
    }
  }
  if (total_count > 0) h.global_mean_seconds_ = total_sum / total_count;
  return h;
}

double CellHistory::TransitionCount(int64_t from, int64_t to) const {
  auto it = transitions_.find(from * grid_size_ * grid_size_ + to);
  return it == transitions_.end() ? 0.0 : it->second.count;
}

double CellHistory::TransitionSeconds(int64_t from, int64_t to,
                                      int64_t slot) const {
  auto it = transitions_.find(from * grid_size_ * grid_size_ + to);
  if (it == transitions_.end()) return global_mean_seconds_;
  const Stat& st = it->second;
  double all_day =
      st.count > 0 ? st.sum_seconds / st.count : global_mean_seconds_;
  if (slot >= 0 && slot < tod_slots_ &&
      st.slot_count[static_cast<size_t>(slot)] > 0) {
    // Shrink the sparse per-slot mean toward the all-day mean (empirical
    // Bayes with pseudo-count 3) so thin slots do not dominate.
    constexpr double kPrior = 3.0;
    double cnt = st.slot_count[static_cast<size_t>(slot)];
    return (st.slot_sum[static_cast<size_t>(slot)] + kPrior * all_day) /
           (cnt + kPrior);
  }
  return all_day;
}

std::vector<int64_t> CellHistory::Successors(int64_t from) const {
  auto it = successors_.find(from);
  return it == successors_.end() ? std::vector<int64_t>{} : it->second;
}

Pit CellHistory::RouteToPit(const std::vector<int64_t>& cell_path,
                            int64_t depart_time) const {
  Pit pit(grid_size_);
  if (cell_path.empty()) return pit;
  // Accumulate historical times along the route to synthesize timestamps.
  std::vector<int64_t> times;
  times.push_back(depart_time);
  int64_t now = depart_time;
  for (size_t i = 1; i < cell_path.size(); ++i) {
    now += static_cast<int64_t>(
        TransitionSeconds(cell_path[i - 1], cell_path[i], SlotOf(now)));
    times.push_back(now);
  }
  int64_t t0 = times.front(), t_end = std::max(times.back(), t0 + 1);
  for (size_t i = 0; i < cell_path.size(); ++i) {
    int64_t row = cell_path[i] / grid_size_;
    int64_t col = cell_path[i] % grid_size_;
    if (pit.Visited(row, col)) continue;
    pit.Set(kPitMask, row, col, 1.0f);
    pit.Set(kPitTimeOfDay, row, col,
            static_cast<float>(NormalizedTimeOfDay(times[i])));
    pit.Set(kPitTimeOffset, row, col,
            static_cast<float>(2.0 * static_cast<double>(times[i] - t0) /
                                   static_cast<double>(t_end - t0) -
                               1.0));
  }
  return pit;
}

double CellHistory::RouteMinutes(const std::vector<int64_t>& cell_path,
                                 int64_t depart_time) const {
  if (cell_path.size() < 2) return global_mean_seconds_ / 60.0;
  int64_t now = depart_time;
  for (size_t i = 1; i < cell_path.size(); ++i) {
    now += static_cast<int64_t>(
        TransitionSeconds(cell_path[i - 1], cell_path[i], SlotOf(now)));
  }
  return static_cast<double>(now - depart_time) / 60.0;
}

int64_t CellHistory::SizeBytes() const {
  int64_t per_stat = static_cast<int64_t>(sizeof(Stat)) +
                     2 * tod_slots_ * static_cast<int64_t>(sizeof(double));
  return static_cast<int64_t>(transitions_.size()) * per_stat;
}

}  // namespace dot
