#include "baselines/routers.h"

#include <cmath>

#include "util/logging.h"

namespace dot {

// ---- Dijkstra ----------------------------------------------------------------------

Status DijkstraRouter::Train(const std::vector<TripSample>& train) {
  SegmentStats stats = SegmentStats::Learn(*net_, TrajectoriesOf(train));
  edge_weights_ = stats.edge_seconds();
  return Status::OK();
}

RoutingResult DijkstraRouter::NodeRoute(const OdtInput& odt) const {
  int64_t from = net_->NearestNode(odt.origin);
  int64_t to = net_->NearestNode(odt.destination);
  return net_->ShortestPath(from, to, edge_weights_);
}

std::vector<int64_t> DijkstraRouter::Route(const OdtInput& odt) const {
  RoutingResult r = NodeRoute(odt);
  std::vector<int64_t> cells;
  for (int64_t node : r.node_path) {
    int64_t idx = grid_.CellIndex(grid_.Locate(net_->node(node).gps));
    if (cells.empty() || cells.back() != idx) cells.push_back(idx);
  }
  return cells;
}

double DijkstraRouter::EstimateMinutes(const OdtInput& odt) const {
  RoutingResult r = NodeRoute(odt);
  if (!r.found()) return 15.0;  // conservative fallback
  return r.cost / 60.0;
}

int64_t DijkstraRouter::SizeBytes() const {
  // The weighted road network: nodes + edges + learned weights.
  return net_->num_nodes() * static_cast<int64_t>(sizeof(RoadNode)) +
         net_->num_edges() * static_cast<int64_t>(sizeof(RoadEdge)) +
         static_cast<int64_t>(edge_weights_.size() * sizeof(double));
}

// ---- DeepST ------------------------------------------------------------------------

Status DeepStRouter::Train(const std::vector<TripSample>& train) {
  history_ = std::make_unique<CellHistory>(CellHistory::Learn(train, grid_));
  return Status::OK();
}

double DeepStRouter::StepScore(int64_t from, int64_t to, int64_t dest) const {
  int64_t l = grid_.grid_size();
  auto row = [&](int64_t c) { return c / l; };
  auto col = [&](int64_t c) { return c % l; };
  double before = std::abs(row(from) - row(dest)) + std::abs(col(from) - col(dest));
  double after = std::abs(row(to) - row(dest)) + std::abs(col(to) - col(dest));
  // Learned popularity discounted by whether the step makes progress; the
  // exponential progress factor is the "travel behavior prior" that Dijkstra
  // lacks.
  double popularity = history_->TransitionCount(from, to);
  double progress = std::exp(1.2 * (before - after));
  return (1.0 + popularity) * progress;
}

std::vector<int64_t> DeepStRouter::Route(const OdtInput& odt) const {
  DOT_CHECK(history_ != nullptr) << "DeepST queried before Train";
  int64_t l = grid_.grid_size();
  int64_t cur = grid_.CellIndex(grid_.Locate(odt.origin));
  int64_t dest = grid_.CellIndex(grid_.Locate(odt.destination));
  std::vector<int64_t> path{cur};
  std::vector<bool> visited(static_cast<size_t>(grid_.num_cells()), false);
  visited[static_cast<size_t>(cur)] = true;
  for (int64_t step = 0; step < max_steps_ && cur != dest; ++step) {
    // Candidates: historically observed successors plus the 4-neighborhood
    // (fallback when history is sparse).
    std::vector<int64_t> candidates = history_->Successors(cur);
    int64_t r = cur / l, c = cur % l;
    if (r > 0) candidates.push_back(cur - l);
    if (r < l - 1) candidates.push_back(cur + l);
    if (c > 0) candidates.push_back(cur - 1);
    if (c < l - 1) candidates.push_back(cur + 1);
    std::vector<int64_t> fresh;
    std::vector<double> scores;
    for (int64_t cand : candidates) {
      if (cand < 0 || cand >= grid_.num_cells()) continue;
      if (visited[static_cast<size_t>(cand)]) continue;
      fresh.push_back(cand);
      scores.push_back(StepScore(cur, cand, dest));
    }
    if (fresh.empty()) break;
    // Near-greedy walk: pick the best with high probability, sample
    // otherwise (matches DeepST's probabilistic generation).
    int64_t pick;
    if (rng_.Bernoulli(greedy_prob_)) {
      pick = 0;
      for (size_t i = 1; i < scores.size(); ++i) {
        if (scores[i] > scores[static_cast<size_t>(pick)]) {
          pick = static_cast<int64_t>(i);
        }
      }
    } else {
      pick = rng_.Categorical(scores);
      if (pick < 0) pick = 0;
    }
    cur = fresh[static_cast<size_t>(pick)];
    visited[static_cast<size_t>(cur)] = true;
    path.push_back(cur);
  }
  return path;
}

double DeepStRouter::EstimateMinutes(const OdtInput& odt) const {
  DOT_CHECK(history_ != nullptr) << "DeepST queried before Train";
  std::vector<int64_t> path = Route(odt);
  return history_->RouteMinutes(path, odt.departure_time);
}

int64_t DeepStRouter::SizeBytes() const {
  return history_ ? history_->SizeBytes() : 0;
}

}  // namespace dot
