#include "baselines/outlier.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "baselines/cell_history.h"

namespace dot {

namespace {

/// Jaccard similarity of two cell sets.
double Jaccard(const std::unordered_set<int64_t>& a,
               const std::unordered_set<int64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  int64_t inter = 0;
  for (int64_t x : a) inter += b.count(x) ? 1 : 0;
  int64_t uni = static_cast<int64_t>(a.size() + b.size()) - inter;
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<int64_t>(mid), v.end());
  return v[mid];
}

}  // namespace

OutlierReport DetectOutliers(const std::vector<TripSample>& samples,
                             const Grid& grid, const OutlierConfig& config) {
  OutlierReport report;
  report.is_outlier.assign(samples.size(), false);
  report.similarity.assign(samples.size(), 1.0);
  if (samples.empty()) return report;

  // Primary signal: circuity — the driven length relative to the straight
  // OD displacement. Detour outliers are global circuity extremes
  // regardless of how dense their OD group is. Robust z via median/MAD.
  std::vector<double> circuity(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    double direct = std::max(
        200.0, DistanceMeters(samples[i].odt.origin, samples[i].odt.destination));
    circuity[i] = samples[i].trajectory.LengthMeters() / direct;
  }
  double med = Median(circuity);
  std::vector<double> dev(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) dev[i] = std::fabs(circuity[i] - med);
  double mad = std::max(1e-3, Median(dev));

  for (size_t i = 0; i < samples.size(); ++i) {
    double z = (circuity[i] - med) / (1.4826 * mad);  // MAD -> sigma
    if (z > config.max_duration_z) {
      report.is_outlier[i] = true;
      ++report.num_flagged;
    }
  }

  // Secondary signal: route-shape disagreement within (coarse OD bucket,
  // ToD slot) groups, where density permits — the time-aware component.
  Grid bucket_grid = Grid::Make(grid.box(), config.bucket_grid_size).ValueOrDie();
  std::unordered_map<int64_t, std::vector<size_t>> groups;
  int64_t cells = bucket_grid.num_cells();
  for (size_t i = 0; i < samples.size(); ++i) {
    const OdtInput& odt = samples[i].odt;
    int64_t o = bucket_grid.CellIndex(bucket_grid.Locate(odt.origin));
    int64_t d = bucket_grid.CellIndex(bucket_grid.Locate(odt.destination));
    int64_t slot = SecondsOfDay(odt.departure_time) * config.tod_slots / 86400;
    groups[(o * cells + d) * config.tod_slots + slot].push_back(i);
  }

  std::vector<std::unordered_set<int64_t>> shapes(samples.size());
  auto shape_of = [&](size_t i) -> const std::unordered_set<int64_t>& {
    if (shapes[i].empty()) {
      for (int64_t c : CellPathOf(samples[i].trajectory, grid, true)) {
        shapes[i].insert(c);
      }
    }
    return shapes[i];
  };

  for (auto& [key, members] : groups) {
    (void)key;
    if (static_cast<int64_t>(members.size()) < config.min_group) continue;
    double n = static_cast<double>(members.size());
    for (size_t i : members) {
      double sim_sum = 0;
      for (size_t j : members) {
        if (i == j) continue;
        sim_sum += Jaccard(shape_of(i), shape_of(j));
      }
      double sim = sim_sum / (n - 1);
      report.similarity[i] = sim;
      // Flag only clear shape dissenters: well below both the absolute
      // threshold and the group's typical agreement.
      if (sim < config.min_similarity && !report.is_outlier[i]) {
        double group_mean = 0;
        for (size_t j : members) {
          if (j == i) continue;
          double s = 0;
          for (size_t k : members) {
            if (k == j) continue;
            s += Jaccard(shape_of(j), shape_of(k));
          }
          group_mean += s / (n - 1);
        }
        group_mean /= (n - 1);
        if (sim < 0.6 * group_mean) {
          report.is_outlier[i] = true;
          ++report.num_flagged;
        }
      }
    }
  }
  return report;
}

std::vector<TripSample> RemoveOutliers(const std::vector<TripSample>& samples,
                                       const Grid& grid,
                                       const OutlierConfig& config) {
  OutlierReport report = DetectOutliers(samples, grid, config);
  std::vector<TripSample> kept;
  kept.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    if (!report.is_outlier[i]) kept.push_back(samples[i]);
  }
  return kept;
}

}  // namespace dot
