// Grid-cell statistics extracted from historical trajectories: cell paths,
// transition counts and transition travel times per time-of-day slot.
// Shared by the DeepST router, the path-based baselines, and the
// Routing+Est. ablation (which needs historical temporal channels).

#ifndef DOT_BASELINES_CELL_HISTORY_H_
#define DOT_BASELINES_CELL_HISTORY_H_

#include <unordered_map>
#include <vector>

#include "eval/dataset.h"
#include "geo/grid.h"
#include "geo/pit.h"

namespace dot {

/// Cell-index path of a trajectory (consecutive duplicates merged). With
/// `interpolate`, cells crossed between samples are included.
std::vector<int64_t> CellPathOf(const Trajectory& t, const Grid& grid,
                                bool interpolate = true);

/// \brief Aggregated transition statistics over the training trajectories.
class CellHistory {
 public:
  /// `tod_slots` buckets the day (default 12 two-hour slots, as in Fig. 12).
  static CellHistory Learn(const std::vector<TripSample>& train, const Grid& grid,
                           int64_t tod_slots = 12);

  int64_t tod_slots() const { return tod_slots_; }
  int64_t grid_size() const { return grid_size_; }

  /// Number of observed traversals cell a -> cell b (any time).
  double TransitionCount(int64_t from, int64_t to) const;

  /// Mean seconds to move from cell a to adjacent cell b in a ToD slot;
  /// falls back to the all-day mean, then to the global mean.
  double TransitionSeconds(int64_t from, int64_t to, int64_t slot) const;

  /// Outgoing neighbors of a cell observed in history.
  std::vector<int64_t> Successors(int64_t from) const;

  /// Mean seconds of any observed transition (global fallback).
  double global_mean_seconds() const { return global_mean_seconds_; }

  /// ToD slot of a unix timestamp.
  int64_t SlotOf(int64_t unix_time) const;

  /// Renders a cell route into a PiT: mask from the route, temporal channels
  /// populated from historical average transition times (the Routing+Est.
  /// construction of Sec. 6.5.4, observation (1)).
  Pit RouteToPit(const std::vector<int64_t>& cell_path, int64_t depart_time) const;

  /// Sum of historical transition times along a route, minutes.
  double RouteMinutes(const std::vector<int64_t>& cell_path,
                      int64_t depart_time) const;

  /// Approximate memory footprint (Table 5 accounting).
  int64_t SizeBytes() const;

 private:
  struct Stat {
    double count = 0;
    double sum_seconds = 0;
    std::vector<double> slot_count;
    std::vector<double> slot_sum;
  };

  int64_t grid_size_ = 0;
  int64_t tod_slots_ = 12;
  double global_mean_seconds_ = 60.0;
  std::unordered_map<int64_t, Stat> transitions_;  // key = from * cells + to
  std::unordered_map<int64_t, std::vector<int64_t>> successors_;
};

}  // namespace dot

#endif  // DOT_BASELINES_CELL_HISTORY_H_
