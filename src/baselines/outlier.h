// Time-aware trajectory outlier detection (the DeepTEA [13] stand-in used
// for Table 6; see DESIGN.md for the substitution rationale). A trajectory
// is an outlier when its route shape disagrees with the other historical
// trajectories of the same OD bucket and time slot, or when its travel time
// is an extreme within that group.

#ifndef DOT_BASELINES_OUTLIER_H_
#define DOT_BASELINES_OUTLIER_H_

#include <vector>

#include "eval/dataset.h"
#include "geo/grid.h"

namespace dot {

/// \brief Detector configuration.
struct OutlierConfig {
  /// Coarse grid resolution used to bucket (origin, destination) pairs:
  /// coarse enough that recurring OD pairs share a bucket.
  int64_t bucket_grid_size = 6;
  int64_t tod_slots = 4;  ///< 6-hour departure-time buckets
  /// Minimum group size to judge outliers; smaller groups are kept intact.
  int64_t min_group = 3;
  /// A trajectory is flagged when its mean route Jaccard similarity to the
  /// rest of the group falls below this...
  double min_similarity = 0.35;
  /// ...or when its duration z-score within the group exceeds this.
  double max_duration_z = 2.5;
};

/// \brief Per-trajectory outlier scores and flags.
struct OutlierReport {
  std::vector<bool> is_outlier;     ///< aligned with the input samples
  std::vector<double> similarity;   ///< mean Jaccard to same-group routes
  int64_t num_flagged = 0;
};

/// Scores every training sample. `grid` is the *shape* grid (route rasters);
/// OD bucketing uses a coarser grid derived from config.bucket_grid_size.
OutlierReport DetectOutliers(const std::vector<TripSample>& samples,
                             const Grid& grid, const OutlierConfig& config = {});

/// Convenience: returns the samples that survive outlier removal.
std::vector<TripSample> RemoveOutliers(const std::vector<TripSample>& samples,
                                       const Grid& grid,
                                       const OutlierConfig& config = {});

}  // namespace dot

#endif  // DOT_BASELINES_OUTLIER_H_
