#include "baselines/path_tte.h"

#include <cmath>

#include "baselines/cell_history.h"
#include "eval/metrics.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "util/logging.h"

namespace dot {

struct RecurrentPathEstimator::Net : nn::Module {
  nn::Embedding cell_emb;
  nn::GRUCell gru1;
  std::unique_ptr<nn::GRUCell> gru2;  // STDGCN's extra layer
  nn::Linear wide;                    // WDDRA's wide component on odt features
  nn::Linear head_time, head_dist;

  Net(int64_t cells, int64_t embed, int64_t hidden, bool deep, Rng* rng)
      : cell_emb(cells, embed, rng),
        gru1(embed, hidden, rng),
        wide(7, hidden, rng),
        head_time(2 * hidden, 1, rng),
        head_dist(2 * hidden, 1, rng) {
    RegisterModule("cell_emb", &cell_emb);
    RegisterModule("gru1", &gru1);
    if (deep) {
      gru2 = std::make_unique<nn::GRUCell>(hidden, hidden, rng);
      RegisterModule("gru2", gru2.get());
    }
    RegisterModule("wide", &wide);
    RegisterModule("head_time", &head_time);
    RegisterModule("head_dist", &head_dist);
  }
};

RecurrentPathEstimator::RecurrentPathEstimator(const Grid& grid, bool deep,
                                               PathTteConfig config)
    : grid_(grid), deep_(deep), config_(config) {
  Rng rng(config.seed);
  net_ = std::make_shared<Net>(grid.num_cells(), config.embed_dim,
                               config.hidden_dim, deep, &rng);
}

namespace {

std::vector<int64_t> Subsample(const std::vector<int64_t>& path, int64_t max_len) {
  if (static_cast<int64_t>(path.size()) <= max_len) return path;
  std::vector<int64_t> out;
  for (int64_t i = 0; i < max_len; ++i) {
    size_t idx = static_cast<size_t>(i * (static_cast<int64_t>(path.size()) - 1) /
                                     (max_len - 1));
    out.push_back(path[idx]);
  }
  return out;
}

}  // namespace

Tensor RecurrentPathEstimator::ForwardPath(const std::vector<int64_t>& path,
                                           const OdtInput& odt) const {
  std::vector<int64_t> p = Subsample(path, config_.max_path_len);
  if (p.empty()) p.push_back(grid_.CellIndex(grid_.Locate(odt.origin)));
  Tensor h1 = Tensor::Zeros({1, config_.hidden_dim});
  Tensor h2 = Tensor::Zeros({1, config_.hidden_dim});
  for (int64_t cell : p) {
    Tensor x = net_->cell_emb.Forward({cell});
    h1 = net_->gru1.Forward(x, h1);
    if (net_->gru2) h2 = net_->gru2->Forward(h1, h2);
  }
  Tensor deep_rep = net_->gru2 ? h2 : h1;
  // Wide component: the engineered query features.
  std::vector<double> f = OdtFeatures(odt, grid_);
  std::vector<float> ff(f.begin(), f.end());
  Tensor wide_rep = Relu(net_->wide.Forward(Tensor::FromVector({1, 7}, ff)));
  return Concat({deep_rep, wide_rep}, 1);  // [1, 2*hidden]
}

Status RecurrentPathEstimator::Train(const std::vector<TripSample>& train,
                                     const std::vector<TripSample>& /*val*/) {
  if (train.empty()) return Status::InvalidArgument("path TTE: empty training set");
  std::vector<double> times, dists;
  std::vector<std::vector<int64_t>> paths;
  for (const auto& s : train) {
    times.push_back(s.travel_time_minutes);
    dists.push_back(s.trajectory.LengthMeters() / 1000.0);
    paths.push_back(CellPathOf(s.trajectory, grid_, true));
  }
  auto standardize = [](const std::vector<double>& v, double* m, double* sd) {
    double sum = 0, sq = 0;
    for (double x : v) {
      sum += x;
      sq += x * x;
    }
    double n = std::max<double>(1, static_cast<double>(v.size()));
    *m = sum / n;
    *sd = std::sqrt(std::max(1e-6, sq / n - *m * *m));
  };
  standardize(times, &mean_t_, &std_t_);
  standardize(dists, &mean_d_, &std_d_);

  Rng rng(config_.seed + 1);
  optim::Adam opt(net_->Parameters(), config_.lr);
  std::vector<int64_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start + static_cast<size_t>(config_.batch_size) <=
                           order.size();
         start += static_cast<size_t>(config_.batch_size)) {
      std::vector<Tensor> reps;
      std::vector<float> yt, yd;
      for (int64_t k = 0; k < config_.batch_size; ++k) {
        int64_t i = order[start + static_cast<size_t>(k)];
        reps.push_back(ForwardPath(paths[static_cast<size_t>(i)],
                                   train[static_cast<size_t>(i)].odt));
        yt.push_back(static_cast<float>(
            (times[static_cast<size_t>(i)] - mean_t_) / std_t_));
        yd.push_back(static_cast<float>(
            (dists[static_cast<size_t>(i)] - mean_d_) / std_d_));
      }
      int64_t b = config_.batch_size;
      net_->ZeroGrad();
      Tensor rep = Concat(reps, 0);
      Tensor loss =
          MseLoss(net_->head_time.Forward(rep), Tensor::FromVector({b, 1}, yt));
      // WDDRA's auxiliary objective (also used in the deep variant).
      Tensor aux =
          MseLoss(net_->head_dist.Forward(rep), Tensor::FromVector({b, 1}, yd));
      loss = Add(loss, MulScalar(aux, config_.aux_weight));
      loss.Backward();
      opt.Step();
    }
  }
  return Status::OK();
}

double RecurrentPathEstimator::EstimateMinutes(const std::vector<int64_t>& path,
                                               const OdtInput& odt) const {
  NoGradGuard guard;
  Tensor rep = ForwardPath(path, odt);
  return static_cast<double>(net_->head_time.Forward(rep).at(0)) * std_t_ + mean_t_;
}

int64_t RecurrentPathEstimator::SizeBytes() const { return net_->NumParams() * 4; }

std::unique_ptr<RecurrentPathEstimator> SearchStdgcn(
    const Grid& grid, const std::vector<TripSample>& train,
    const std::vector<TripSample>& val, PathTteConfig base) {
  std::unique_ptr<RecurrentPathEstimator> best;
  double best_mae = 1e18;
  for (int64_t hidden : {base.hidden_dim, base.hidden_dim * 2}) {
    PathTteConfig cfg = base;
    cfg.hidden_dim = hidden;
    auto model = std::make_unique<RecurrentPathEstimator>(grid, /*deep=*/true, cfg);
    if (!model->Train(train, val).ok()) continue;
    MetricsAccumulator acc;
    size_t n = std::min<size_t>(val.size(), 128);
    for (size_t i = 0; i < n; ++i) {
      std::vector<int64_t> path = CellPathOf(val[i].trajectory, grid, true);
      acc.Add(model->EstimateMinutes(path, val[i].odt), val[i].travel_time_minutes);
    }
    double mae = acc.Finalize().mae;
    if (mae < best_mae) {
      best_mae = mae;
      best = std::move(model);
    }
  }
  DOT_CHECK(best != nullptr) << "STDGCN search produced no model";
  return best;
}

}  // namespace dot
