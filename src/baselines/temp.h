// TEMP [48]: temporally weighted neighbor averaging (Sec. 6.2.3). Caches all
// historical trips; a query averages the travel times of trips with similar
// origin, destination and departure time, widening the neighborhood until
// enough neighbors are found.

#ifndef DOT_BASELINES_TEMP_H_
#define DOT_BASELINES_TEMP_H_

#include "baselines/oracle.h"

namespace dot {

/// \brief Configuration of the TEMP baseline.
struct TempConfig {
  double initial_radius_meters = 500.0;
  double radius_growth = 2.0;      ///< multiplier per widening round
  int64_t max_rounds = 5;
  int64_t min_neighbors = 3;
  int64_t tod_window_seconds = 3600;  ///< +- departure-time window
};

/// \brief The TEMP history-average ODT-Oracle.
class TempOracle : public OdtOracle {
 public:
  explicit TempOracle(TempConfig config = {}) : config_(config) {}

  Status Train(const std::vector<TripSample>& train,
               const std::vector<TripSample>& val) override;
  double EstimateMinutes(const OdtInput& odt) const override;
  std::string name() const override { return "TEMP"; }
  int64_t SizeBytes() const override;

 private:
  struct Entry {
    GpsPoint origin, destination;
    int64_t seconds_of_day;
    double minutes;
  };

  TempConfig config_;
  std::vector<Entry> history_;
  double global_mean_ = 15.0;
};

}  // namespace dot

#endif  // DOT_BASELINES_TEMP_H_
