// DeepOD [58] (Sec. 6.2.3): learns an OD representation whose embedding is
// pulled toward the embedding of the affiliated historical trajectory by an
// auxiliary loss; the OD representation alone predicts the travel time at
// query time.

#ifndef DOT_BASELINES_DEEPOD_H_
#define DOT_BASELINES_DEEPOD_H_

#include <memory>

#include "baselines/oracle.h"
#include "tensor/nn.h"

namespace dot {

/// \brief DeepOD hyper-parameters.
struct DeepOdConfig {
  int64_t hidden_dim = 32;
  int64_t embed_dim = 16;
  int64_t epochs = 15;
  int64_t batch_size = 32;
  float lr = 1e-3f;
  float aux_weight = 0.3f;  ///< weight of the OD/trajectory matching loss
  /// Trajectory cell paths longer than this are subsampled (GRU cost cap).
  int64_t max_path_len = 24;
  uint64_t seed = 17;
};

/// \brief The DeepOD ODT-Oracle.
class DeepOdOracle : public OdtOracle {
 public:
  DeepOdOracle(const Grid& grid, DeepOdConfig config = {});

  Status Train(const std::vector<TripSample>& train,
               const std::vector<TripSample>& val) override;
  double EstimateMinutes(const OdtInput& odt) const override;
  std::string name() const override { return "DeepOD"; }
  int64_t SizeBytes() const override;

 private:
  Grid grid_;
  DeepOdConfig config_;
  struct Net;
  std::shared_ptr<Net> net_;
  double mean_t_ = 0, std_t_ = 1;
};

}  // namespace dot

#endif  // DOT_BASELINES_DEEPOD_H_
