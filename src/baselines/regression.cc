#include "baselines/regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace dot {

// ---- Linear regression ----------------------------------------------------------

Status LinearRegressionOracle::Train(const std::vector<TripSample>& train,
                                     const std::vector<TripSample>& /*val*/) {
  if (train.empty()) return Status::InvalidArgument("LR: empty training set");
  size_t d = OdtFeatures(train[0].odt, grid_).size() + 1;  // + intercept
  // Normal equations with ridge: (X^T X + l2 I) w = X^T y, solved by
  // Gaussian elimination with partial pivoting.
  std::vector<double> xtx(d * d, 0.0), xty(d, 0.0);
  for (const auto& s : train) {
    std::vector<double> x = OdtFeatures(s.odt, grid_);
    x.push_back(1.0);
    for (size_t i = 0; i < d; ++i) {
      xty[i] += x[i] * s.travel_time_minutes;
      for (size_t j = 0; j < d; ++j) xtx[i * d + j] += x[i] * x[j];
    }
  }
  for (size_t i = 0; i < d; ++i) xtx[i * d + i] += l2_;

  // Gaussian elimination.
  std::vector<double> a = xtx, b = xty;
  for (size_t col = 0; col < d; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < d; ++r) {
      if (std::fabs(a[r * d + col]) > std::fabs(a[pivot * d + col])) pivot = r;
    }
    if (std::fabs(a[pivot * d + col]) < 1e-12) {
      return Status::Internal("LR: singular normal equations");
    }
    if (pivot != col) {
      for (size_t j = 0; j < d; ++j) std::swap(a[col * d + j], a[pivot * d + j]);
      std::swap(b[col], b[pivot]);
    }
    for (size_t r = col + 1; r < d; ++r) {
      double f = a[r * d + col] / a[col * d + col];
      for (size_t j = col; j < d; ++j) a[r * d + j] -= f * a[col * d + j];
      b[r] -= f * b[col];
    }
  }
  weights_.assign(d, 0.0);
  for (int64_t i = static_cast<int64_t>(d) - 1; i >= 0; --i) {
    double acc = b[static_cast<size_t>(i)];
    for (size_t j = static_cast<size_t>(i) + 1; j < d; ++j) {
      acc -= a[static_cast<size_t>(i) * d + j] * weights_[j];
    }
    weights_[static_cast<size_t>(i)] = acc / a[static_cast<size_t>(i) * d +
                                               static_cast<size_t>(i)];
  }
  return Status::OK();
}

double LinearRegressionOracle::EstimateMinutes(const OdtInput& odt) const {
  DOT_CHECK(!weights_.empty()) << "LR queried before Train";
  std::vector<double> x = OdtFeatures(odt, grid_);
  x.push_back(1.0);
  double y = 0;
  for (size_t i = 0; i < x.size(); ++i) y += x[i] * weights_[i];
  return y;
}

// ---- Regression tree -------------------------------------------------------------

double RegressionTree::Predict(const std::vector<double>& x) const {
  int idx = 0;
  while (nodes[static_cast<size_t>(idx)].feature >= 0) {
    const Node& n = nodes[static_cast<size_t>(idx)];
    idx = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<size_t>(idx)].value;
}

namespace {

/// Recursive CART builder on residuals.
struct TreeBuilder {
  const std::vector<std::vector<double>>& features;
  const std::vector<double>& residuals;
  const GbmConfig& config;
  RegressionTree* tree;

  int Build(std::vector<int64_t> idx, int64_t depth) {
    double mean = 0;
    for (int64_t i : idx) mean += residuals[static_cast<size_t>(i)];
    mean /= static_cast<double>(idx.size());

    RegressionTree::Node node;
    node.value = mean;
    int node_id = static_cast<int>(tree->nodes.size());
    tree->nodes.push_back(node);
    if (depth >= config.max_depth ||
        static_cast<int64_t>(idx.size()) < 2 * config.min_samples_leaf) {
      return node_id;
    }

    // Best split over a quantile grid of thresholds per feature.
    size_t nfeat = features[0].size();
    double best_gain = 1e-12;
    int best_feature = -1;
    double best_threshold = 0;
    double total_sum = 0, total_sq = 0;
    for (int64_t i : idx) {
      double r = residuals[static_cast<size_t>(i)];
      total_sum += r;
      total_sq += r * r;
    }
    double n_total = static_cast<double>(idx.size());
    double parent_sse = total_sq - total_sum * total_sum / n_total;

    std::vector<double> values(idx.size());
    for (size_t f = 0; f < nfeat; ++f) {
      for (size_t i = 0; i < idx.size(); ++i) {
        values[i] = features[static_cast<size_t>(idx[i])][f];
      }
      std::vector<double> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      for (int64_t q = 1; q < config.candidate_splits; ++q) {
        double threshold =
            sorted[static_cast<size_t>(q * static_cast<int64_t>(sorted.size()) /
                                       config.candidate_splits)];
        double left_sum = 0, left_sq = 0, left_n = 0;
        for (size_t i = 0; i < idx.size(); ++i) {
          if (values[i] <= threshold) {
            double r = residuals[static_cast<size_t>(idx[i])];
            left_sum += r;
            left_sq += r * r;
            left_n += 1;
          }
        }
        double right_n = n_total - left_n;
        if (left_n < static_cast<double>(config.min_samples_leaf) ||
            right_n < static_cast<double>(config.min_samples_leaf)) {
          continue;
        }
        double right_sum = total_sum - left_sum;
        double right_sq = total_sq - left_sq;
        double sse = (left_sq - left_sum * left_sum / left_n) +
                     (right_sq - right_sum * right_sum / right_n);
        double gain = parent_sse - sse;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = threshold;
        }
      }
    }
    if (best_feature < 0) return node_id;

    std::vector<int64_t> left_idx, right_idx;
    for (int64_t i : idx) {
      if (features[static_cast<size_t>(i)][static_cast<size_t>(best_feature)] <=
          best_threshold) {
        left_idx.push_back(i);
      } else {
        right_idx.push_back(i);
      }
    }
    int left = Build(std::move(left_idx), depth + 1);
    int right = Build(std::move(right_idx), depth + 1);
    RegressionTree::Node& n = tree->nodes[static_cast<size_t>(node_id)];
    n.feature = best_feature;
    n.threshold = best_threshold;
    n.left = left;
    n.right = right;
    return node_id;
  }
};

}  // namespace

Status GbmOracle::Train(const std::vector<TripSample>& train,
                        const std::vector<TripSample>& /*val*/) {
  if (train.empty()) return Status::InvalidArgument("GBM: empty training set");
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  features.reserve(train.size());
  for (const auto& s : train) {
    features.push_back(OdtFeatures(s.odt, grid_));
    targets.push_back(s.travel_time_minutes);
  }
  base_ = std::accumulate(targets.begin(), targets.end(), 0.0) /
          static_cast<double>(targets.size());

  std::vector<double> preds(targets.size(), base_);
  std::vector<double> residuals(targets.size());
  std::vector<int64_t> all(targets.size());
  std::iota(all.begin(), all.end(), 0);

  trees_.clear();
  for (int64_t t = 0; t < config_.num_trees; ++t) {
    for (size_t i = 0; i < targets.size(); ++i) residuals[i] = targets[i] - preds[i];
    RegressionTree tree;
    TreeBuilder builder{features, residuals, config_, &tree};
    builder.Build(all, 0);
    if (tree.nodes.size() <= 1 && t > 0) break;  // no useful split left
    for (size_t i = 0; i < targets.size(); ++i) {
      preds[i] += config_.learning_rate * tree.Predict(features[i]);
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GbmOracle::EstimateMinutes(const OdtInput& odt) const {
  std::vector<double> x = OdtFeatures(odt, grid_);
  double y = base_;
  for (const auto& tree : trees_) y += config_.learning_rate * tree.Predict(x);
  return y;
}

int64_t GbmOracle::SizeBytes() const {
  int64_t total = static_cast<int64_t>(sizeof(double));
  for (const auto& t : trees_) total += t.SizeBytes();
  return total;
}

}  // namespace dot
