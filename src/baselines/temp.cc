#include "baselines/temp.h"

#include <cmath>

namespace dot {

Status TempOracle::Train(const std::vector<TripSample>& train,
                         const std::vector<TripSample>& /*val*/) {
  if (train.empty()) return Status::InvalidArgument("TEMP: empty training set");
  history_.clear();
  history_.reserve(train.size());
  double sum = 0;
  for (const auto& s : train) {
    history_.push_back(Entry{s.odt.origin, s.odt.destination,
                             SecondsOfDay(s.odt.departure_time),
                             s.travel_time_minutes});
    sum += s.travel_time_minutes;
  }
  global_mean_ = sum / static_cast<double>(train.size());
  return Status::OK();
}

double TempOracle::EstimateMinutes(const OdtInput& odt) const {
  int64_t query_sod = SecondsOfDay(odt.departure_time);
  double radius = config_.initial_radius_meters;
  int64_t window = config_.tod_window_seconds;
  for (int64_t round = 0; round < config_.max_rounds; ++round) {
    double sum = 0;
    int64_t n = 0;
    for (const auto& e : history_) {
      // Circular time-of-day distance.
      int64_t dt = std::abs(e.seconds_of_day - query_sod);
      dt = std::min(dt, 86400 - dt);
      if (dt > window) continue;
      if (DistanceMeters(e.origin, odt.origin) > radius) continue;
      if (DistanceMeters(e.destination, odt.destination) > radius) continue;
      sum += e.minutes;
      ++n;
    }
    if (n >= config_.min_neighbors) return sum / static_cast<double>(n);
    radius *= config_.radius_growth;
    window *= 2;
  }
  return global_mean_;
}

int64_t TempOracle::SizeBytes() const {
  return static_cast<int64_t>(history_.size() * sizeof(Entry));
}

}  // namespace dot
