// Regression baselines (Sec. 6.2.3): closed-form Linear Regression and a
// from-scratch Gradient Boosted Machine (regression trees, squared loss) —
// the XGBoost stand-in documented in DESIGN.md.

#ifndef DOT_BASELINES_REGRESSION_H_
#define DOT_BASELINES_REGRESSION_H_

#include <memory>

#include "baselines/oracle.h"

namespace dot {

/// \brief Ordinary least squares on OdtFeatures (ridge-regularized for
/// numerical safety).
class LinearRegressionOracle : public OdtOracle {
 public:
  explicit LinearRegressionOracle(const Grid& grid, double l2 = 1e-6)
      : grid_(grid), l2_(l2) {}

  Status Train(const std::vector<TripSample>& train,
               const std::vector<TripSample>& val) override;
  double EstimateMinutes(const OdtInput& odt) const override;
  std::string name() const override { return "LR"; }
  int64_t SizeBytes() const override {
    return static_cast<int64_t>(weights_.size() * sizeof(double));
  }

 private:
  Grid grid_;
  double l2_;
  std::vector<double> weights_;  // includes intercept (last)
};

/// \brief One axis-aligned regression tree (CART, squared loss).
struct RegressionTree {
  struct Node {
    int feature = -1;        ///< -1 marks a leaf
    double threshold = 0;
    double value = 0;        ///< leaf prediction
    int left = -1, right = -1;
  };
  std::vector<Node> nodes;

  double Predict(const std::vector<double>& x) const;
  int64_t SizeBytes() const {
    return static_cast<int64_t>(nodes.size() * sizeof(Node));
  }
};

/// \brief GBM hyper-parameters.
struct GbmConfig {
  int64_t num_trees = 60;
  int64_t max_depth = 3;
  double learning_rate = 0.1;
  int64_t min_samples_leaf = 8;
  /// Candidate split thresholds per feature (quantile grid).
  int64_t candidate_splits = 16;
};

/// \brief Gradient-boosted regression trees over OdtFeatures.
class GbmOracle : public OdtOracle {
 public:
  GbmOracle(const Grid& grid, GbmConfig config = {})
      : grid_(grid), config_(config) {}

  Status Train(const std::vector<TripSample>& train,
               const std::vector<TripSample>& val) override;
  double EstimateMinutes(const OdtInput& odt) const override;
  std::string name() const override { return "GBM"; }
  int64_t SizeBytes() const override;

  int64_t num_trees() const { return static_cast<int64_t>(trees_.size()); }

 private:
  Grid grid_;
  GbmConfig config_;
  double base_ = 0;
  std::vector<RegressionTree> trees_;
};

}  // namespace dot

#endif  // DOT_BASELINES_REGRESSION_H_
