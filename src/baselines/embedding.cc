#include "baselines/embedding.h"

#include <cmath>

#include "tensor/ops.h"
#include "tensor/optim.h"
#include "util/logging.h"

namespace dot {

namespace {

/// Mean/std of a scalar column with a variance floor.
void Standardize(const std::vector<double>& values, double* mean, double* std) {
  double sum = 0, sq = 0;
  for (double v : values) {
    sum += v;
    sq += v * v;
  }
  double n = std::max<double>(1, static_cast<double>(values.size()));
  *mean = sum / n;
  *std = std::sqrt(std::max(1e-6, sq / n - *mean * *mean));
}

/// Mini-batch index iterator with shuffling.
struct BatchIter {
  std::vector<int64_t> order;
  Rng* rng;

  explicit BatchIter(size_t n, Rng* rng_in) : rng(rng_in) {
    order.resize(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<int64_t>(i);
  }
  template <typename Fn>
  void ForEachBatch(int64_t batch, Fn fn) {
    rng->Shuffle(&order);
    for (size_t start = 0; start + static_cast<size_t>(batch) <= order.size();
         start += static_cast<size_t>(batch)) {
      fn(std::vector<int64_t>(order.begin() + static_cast<int64_t>(start),
                              order.begin() + static_cast<int64_t>(start) + batch));
    }
  }
};

}  // namespace

// ---- ST-NN -----------------------------------------------------------------------

struct StnnOracle::Net : nn::Module {
  nn::Linear fc1, fc2, head_time, head_dist;

  explicit Net(int64_t hidden, Rng* rng)
      : fc1(4, hidden, rng),
        fc2(hidden, hidden, rng),
        head_time(hidden, 1, rng),
        head_dist(hidden, 1, rng) {
    RegisterModule("fc1", &fc1);
    RegisterModule("fc2", &fc2);
    RegisterModule("head_time", &head_time);
    RegisterModule("head_dist", &head_dist);
  }

  std::pair<Tensor, Tensor> Forward(const Tensor& x) const {
    Tensor h = Relu(fc2.Forward(Relu(fc1.Forward(x))));
    return {head_time.Forward(h), head_dist.Forward(h)};
  }
};

StnnOracle::StnnOracle(const Grid& grid, NeuralBaselineConfig config)
    : grid_(grid), config_(config) {
  Rng rng(config.seed);
  net_ = std::make_shared<Net>(config.hidden_dim, &rng);
}

Tensor StnnOracle::Features(const std::vector<const OdtInput*>& odts) const {
  Tensor x = Tensor::Empty({static_cast<int64_t>(odts.size()), 4});
  for (size_t i = 0; i < odts.size(); ++i) {
    double ox, oy, dx, dy;
    grid_.Normalized(odts[i]->origin, &ox, &oy);
    grid_.Normalized(odts[i]->destination, &dx, &dy);
    float* row = x.data() + static_cast<int64_t>(i) * 4;
    row[0] = static_cast<float>(ox);
    row[1] = static_cast<float>(oy);
    row[2] = static_cast<float>(dx);
    row[3] = static_cast<float>(dy);
  }
  return x;
}

Status StnnOracle::Train(const std::vector<TripSample>& train,
                         const std::vector<TripSample>& /*val*/) {
  if (train.empty()) return Status::InvalidArgument("ST-NN: empty training set");
  std::vector<double> times, dists;
  for (const auto& s : train) {
    times.push_back(s.travel_time_minutes);
    dists.push_back(s.trajectory.LengthMeters() / 1000.0);
  }
  Standardize(times, &mean_t_, &std_t_);
  Standardize(dists, &mean_d_, &std_d_);

  Rng rng(config_.seed + 1);
  optim::Adam opt(net_->Parameters(), config_.lr);
  BatchIter iter(train.size(), &rng);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    iter.ForEachBatch(config_.batch_size, [&](const std::vector<int64_t>& idx) {
      std::vector<const OdtInput*> odts;
      std::vector<float> yt, yd;
      for (int64_t i : idx) {
        odts.push_back(&train[static_cast<size_t>(i)].odt);
        yt.push_back(static_cast<float>((times[static_cast<size_t>(i)] - mean_t_) /
                                        std_t_));
        yd.push_back(static_cast<float>((dists[static_cast<size_t>(i)] - mean_d_) /
                                        std_d_));
      }
      int64_t b = static_cast<int64_t>(idx.size());
      net_->ZeroGrad();
      auto [pt, pd] = net_->Forward(Features(odts));
      Tensor loss = Add(MseLoss(pt, Tensor::FromVector({b, 1}, yt)),
                        MulScalar(MseLoss(pd, Tensor::FromVector({b, 1}, yd)), 0.5f));
      loss.Backward();
      opt.Step();
    });
  }
  return Status::OK();
}

double StnnOracle::EstimateMinutes(const OdtInput& odt) const {
  NoGradGuard guard;
  auto [pt, pd] = net_->Forward(Features({&odt}));
  (void)pd;
  return static_cast<double>(pt.at(0)) * std_t_ + mean_t_;
}

int64_t StnnOracle::SizeBytes() const { return net_->NumParams() * 4; }

// ---- MURAT -----------------------------------------------------------------------

struct MuratOracle::Net : nn::Module {
  nn::Embedding cell_emb, slot_emb;
  nn::Linear fc1, fc2, head_time, head_dist;

  Net(int64_t cells, int64_t embed, int64_t hidden, Rng* rng)
      : cell_emb(cells, embed, rng),
        slot_emb(24, embed, rng),
        fc1(7 + 3 * embed, hidden, rng),
        fc2(hidden, hidden, rng),
        head_time(hidden, 1, rng),
        head_dist(hidden, 1, rng) {
    RegisterModule("cell_emb", &cell_emb);
    RegisterModule("slot_emb", &slot_emb);
    RegisterModule("fc1", &fc1);
    RegisterModule("fc2", &fc2);
    RegisterModule("head_time", &head_time);
    RegisterModule("head_dist", &head_dist);
  }
};

MuratOracle::MuratOracle(const Grid& grid, NeuralBaselineConfig config)
    : grid_(grid), config_(config) {
  Rng rng(config.seed + 2);
  net_ = std::make_shared<Net>(grid.num_cells(), config.embed_dim,
                               config.hidden_dim, &rng);
}

struct MuratForward {
  Tensor time, dist;
};

namespace {

MuratForward MuratRun(const MuratOracle::Net& net, const Grid& grid,
                      const std::vector<const OdtInput*>& odts) {
  int64_t b = static_cast<int64_t>(odts.size());
  Tensor feat = Tensor::Empty({b, 7});
  std::vector<int64_t> o_cells, d_cells, slots;
  for (int64_t i = 0; i < b; ++i) {
    const OdtInput& odt = *odts[static_cast<size_t>(i)];
    std::vector<double> f = OdtFeatures(odt, grid);
    for (int64_t j = 0; j < 7; ++j) {
      feat.at(i * 7 + j) = static_cast<float>(f[static_cast<size_t>(j)]);
    }
    o_cells.push_back(grid.CellIndex(grid.Locate(odt.origin)));
    d_cells.push_back(grid.CellIndex(grid.Locate(odt.destination)));
    slots.push_back(SecondsOfDay(odt.departure_time) / 3600);
  }
  Tensor x = Concat({feat, net.cell_emb.Forward(o_cells),
                     net.cell_emb.Forward(d_cells), net.slot_emb.Forward(slots)},
                    1);
  Tensor h = Relu(net.fc2.Forward(Relu(net.fc1.Forward(x))));
  return {net.head_time.Forward(h), net.head_dist.Forward(h)};
}

}  // namespace

Status MuratOracle::Train(const std::vector<TripSample>& train,
                          const std::vector<TripSample>& /*val*/) {
  if (train.empty()) return Status::InvalidArgument("MURAT: empty training set");
  std::vector<double> times, dists;
  for (const auto& s : train) {
    times.push_back(s.travel_time_minutes);
    dists.push_back(s.trajectory.LengthMeters() / 1000.0);
  }
  Standardize(times, &mean_t_, &std_t_);
  Standardize(dists, &mean_d_, &std_d_);

  Rng rng(config_.seed + 3);
  optim::Adam opt(net_->Parameters(), config_.lr);
  BatchIter iter(train.size(), &rng);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    iter.ForEachBatch(config_.batch_size, [&](const std::vector<int64_t>& idx) {
      std::vector<const OdtInput*> odts;
      std::vector<float> yt, yd;
      for (int64_t i : idx) {
        odts.push_back(&train[static_cast<size_t>(i)].odt);
        yt.push_back(static_cast<float>((times[static_cast<size_t>(i)] - mean_t_) /
                                        std_t_));
        yd.push_back(static_cast<float>((dists[static_cast<size_t>(i)] - mean_d_) /
                                        std_d_));
      }
      int64_t b = static_cast<int64_t>(idx.size());
      net_->ZeroGrad();
      MuratForward out = MuratRun(*net_, grid_, odts);
      Tensor loss =
          Add(MseLoss(out.time, Tensor::FromVector({b, 1}, yt)),
              MulScalar(MseLoss(out.dist, Tensor::FromVector({b, 1}, yd)), 0.5f));
      loss.Backward();
      opt.Step();
    });
  }
  return Status::OK();
}

double MuratOracle::EstimateMinutes(const OdtInput& odt) const {
  NoGradGuard guard;
  MuratForward out = MuratRun(*net_, grid_, {&odt});
  return static_cast<double>(out.time.at(0)) * std_t_ + mean_t_;
}

int64_t MuratOracle::SizeBytes() const { return net_->NumParams() * 4; }

// ---- RNE -------------------------------------------------------------------------

struct RneOracle::Net : nn::Module {
  nn::Embedding cell_emb;
  nn::Linear readout;  // maps |e_o - e_d| to a scalar cost

  Net(int64_t cells, int64_t grid_size, int64_t embed, Rng* rng)
      : cell_emb(cells, embed, rng), readout(embed, 1, rng) {
    RegisterModule("cell_emb", &cell_emb);
    RegisterModule("readout", &readout);
    // RNE's embeddings are built to preserve network distances; seed the
    // first two coordinates with the cell's grid position so the L1
    // embedding distance starts as the Manhattan distance and training
    // only needs to learn the deviations.
    Tensor table = cell_emb.Parameters()[0];  // shared storage handle
    for (int64_t c = 0; c < cells; ++c) {
      table.at(c * embed + 0) =
          static_cast<float>(c % grid_size) / static_cast<float>(grid_size);
      table.at(c * embed + 1) =
          static_cast<float>(c / grid_size) / static_cast<float>(grid_size);
    }
  }

  Tensor Forward(const std::vector<int64_t>& o_cells,
                 const std::vector<int64_t>& d_cells) const {
    Tensor diff = Abs(Sub(cell_emb.Forward(o_cells), cell_emb.Forward(d_cells)));
    return readout.Forward(diff);
  }
};

RneOracle::RneOracle(const Grid& grid, NeuralBaselineConfig config)
    : grid_(grid), config_(config) {
  Rng rng(config.seed + 4);
  net_ = std::make_shared<Net>(grid.num_cells(), grid.grid_size(),
                               config.embed_dim, &rng);
}

Status RneOracle::Train(const std::vector<TripSample>& train,
                        const std::vector<TripSample>& /*val*/) {
  if (train.empty()) return Status::InvalidArgument("RNE: empty training set");
  std::vector<double> times;
  for (const auto& s : train) times.push_back(s.travel_time_minutes);
  Standardize(times, &mean_t_, &std_t_);

  Rng rng(config_.seed + 5);
  optim::Adam opt(net_->Parameters(), config_.lr);
  BatchIter iter(train.size(), &rng);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    iter.ForEachBatch(config_.batch_size, [&](const std::vector<int64_t>& idx) {
      std::vector<int64_t> o_cells, d_cells;
      std::vector<float> yt;
      for (int64_t i : idx) {
        const auto& s = train[static_cast<size_t>(i)];
        o_cells.push_back(grid_.CellIndex(grid_.Locate(s.odt.origin)));
        d_cells.push_back(grid_.CellIndex(grid_.Locate(s.odt.destination)));
        yt.push_back(static_cast<float>((times[static_cast<size_t>(i)] - mean_t_) /
                                        std_t_));
      }
      int64_t b = static_cast<int64_t>(idx.size());
      net_->ZeroGrad();
      Tensor loss = MseLoss(net_->Forward(o_cells, d_cells),
                            Tensor::FromVector({b, 1}, yt));
      loss.Backward();
      opt.Step();
    });
  }
  return Status::OK();
}

double RneOracle::EstimateMinutes(const OdtInput& odt) const {
  NoGradGuard guard;
  std::vector<int64_t> o{grid_.CellIndex(grid_.Locate(odt.origin))};
  std::vector<int64_t> d{grid_.CellIndex(grid_.Locate(odt.destination))};
  return static_cast<double>(net_->Forward(o, d).at(0)) * std_t_ + mean_t_;
}

int64_t RneOracle::SizeBytes() const { return net_->NumParams() * 4; }

}  // namespace dot
