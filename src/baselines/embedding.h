// Neural ODT-Oracle baselines (Sec. 6.2.3):
//   ST-NN  [22] — MLP on raw origin/destination coordinates, jointly
//                 predicting travel distance and time.
//   MURAT  [29] — multi-task representation learning with spatial-cell and
//                 temporal-slot embeddings.
//   RNE    [17] — road-network (here: grid-cell) embeddings whose L1
//                 distance approximates travel cost.

#ifndef DOT_BASELINES_EMBEDDING_H_
#define DOT_BASELINES_EMBEDDING_H_

#include <memory>

#include "baselines/oracle.h"
#include "tensor/nn.h"

namespace dot {

/// \brief Shared training hyper-parameters for the small neural baselines.
struct NeuralBaselineConfig {
  int64_t hidden_dim = 32;
  int64_t embed_dim = 16;
  int64_t epochs = 40;
  int64_t batch_size = 64;
  float lr = 1e-3f;
  uint64_t seed = 7;
};

/// \brief ST-NN: joint distance/time MLP on endpoint coordinates only.
class StnnOracle : public OdtOracle {
 public:
  StnnOracle(const Grid& grid, NeuralBaselineConfig config = {});

  Status Train(const std::vector<TripSample>& train,
               const std::vector<TripSample>& val) override;
  double EstimateMinutes(const OdtInput& odt) const override;
  std::string name() const override { return "ST-NN"; }
  int64_t SizeBytes() const override;

 private:
  Tensor Features(const std::vector<const OdtInput*>& odts) const;

  Grid grid_;
  NeuralBaselineConfig config_;
  struct Net;
  std::shared_ptr<Net> net_;
  double mean_t_ = 0, std_t_ = 1, mean_d_ = 0, std_d_ = 1;
};

/// \brief MURAT: multi-task MLP with cell and time-slot embeddings.
class MuratOracle : public OdtOracle {
 public:
  MuratOracle(const Grid& grid, NeuralBaselineConfig config = {});

  Status Train(const std::vector<TripSample>& train,
               const std::vector<TripSample>& val) override;
  double EstimateMinutes(const OdtInput& odt) const override;
  std::string name() const override { return "MURAT"; }
  int64_t SizeBytes() const override;

  struct Net;  // defined in embedding.cc

 private:
  Grid grid_;
  NeuralBaselineConfig config_;
  std::shared_ptr<Net> net_;
  double mean_t_ = 0, std_t_ = 1, mean_d_ = 0, std_d_ = 1;
};

/// \brief RNE: grid-cell embeddings with an L1-distance readout.
class RneOracle : public OdtOracle {
 public:
  RneOracle(const Grid& grid, NeuralBaselineConfig config = {});

  Status Train(const std::vector<TripSample>& train,
               const std::vector<TripSample>& val) override;
  double EstimateMinutes(const OdtInput& odt) const override;
  std::string name() const override { return "RNE"; }
  int64_t SizeBytes() const override;

 private:
  Grid grid_;
  NeuralBaselineConfig config_;
  struct Net;
  std::shared_ptr<Net> net_;
  double mean_t_ = 0, std_t_ = 1;
};

}  // namespace dot

#endif  // DOT_BASELINES_EMBEDDING_H_
