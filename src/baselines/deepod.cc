#include "baselines/deepod.h"

#include <cmath>

#include "baselines/cell_history.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace dot {

struct DeepOdOracle::Net : nn::Module {
  nn::Embedding cell_emb, slot_emb;
  nn::Linear od_fc1, od_fc2;   // OD representation tower
  nn::GRUCell traj_gru;        // trajectory representation tower
  nn::Linear head;             // travel time from the OD representation

  Net(int64_t cells, int64_t embed, int64_t hidden, Rng* rng)
      : cell_emb(cells, embed, rng),
        slot_emb(24, embed, rng),
        od_fc1(7 + 3 * embed, hidden, rng),
        od_fc2(hidden, hidden, rng),
        traj_gru(embed, hidden, rng),
        head(hidden, 1, rng) {
    RegisterModule("cell_emb", &cell_emb);
    RegisterModule("slot_emb", &slot_emb);
    RegisterModule("od_fc1", &od_fc1);
    RegisterModule("od_fc2", &od_fc2);
    RegisterModule("traj_gru", &traj_gru);
    RegisterModule("head", &head);
  }

  /// OD tower: engineered features + origin/destination/time embeddings.
  Tensor OdRep(const Grid& grid, const std::vector<const OdtInput*>& odts) const {
    int64_t b = static_cast<int64_t>(odts.size());
    Tensor feat = Tensor::Empty({b, 7});
    std::vector<int64_t> o_cells, d_cells, slots;
    for (int64_t i = 0; i < b; ++i) {
      const OdtInput& odt = *odts[static_cast<size_t>(i)];
      std::vector<double> f = OdtFeatures(odt, grid);
      for (int64_t j = 0; j < 7; ++j) {
        feat.at(i * 7 + j) = static_cast<float>(f[static_cast<size_t>(j)]);
      }
      o_cells.push_back(grid.CellIndex(grid.Locate(odt.origin)));
      d_cells.push_back(grid.CellIndex(grid.Locate(odt.destination)));
      slots.push_back(SecondsOfDay(odt.departure_time) / 3600);
    }
    Tensor x = Concat({feat, cell_emb.Forward(o_cells), cell_emb.Forward(d_cells),
                       slot_emb.Forward(slots)},
                      1);
    return Relu(od_fc2.Forward(Relu(od_fc1.Forward(x))));  // [B, hidden]
  }

  /// Trajectory tower: GRU over the cell-path embeddings (single sample).
  Tensor TrajRep(const std::vector<int64_t>& cell_path) const {
    Tensor h = Tensor::Zeros({1, traj_gru.hidden_dim()});
    for (int64_t cell : cell_path) {
      Tensor x = cell_emb.Forward({cell});  // [1, embed]
      h = traj_gru.Forward(x, h);
    }
    return h;  // [1, hidden]
  }
};

DeepOdOracle::DeepOdOracle(const Grid& grid, DeepOdConfig config)
    : grid_(grid), config_(config) {
  Rng rng(config.seed);
  net_ = std::make_shared<Net>(grid.num_cells(), config.embed_dim,
                               config.hidden_dim, &rng);
}

namespace {

/// Uniformly subsamples a path to at most `max_len` cells (keeps endpoints).
std::vector<int64_t> Subsample(const std::vector<int64_t>& path, int64_t max_len) {
  if (static_cast<int64_t>(path.size()) <= max_len) return path;
  std::vector<int64_t> out;
  for (int64_t i = 0; i < max_len; ++i) {
    size_t idx = static_cast<size_t>(i * (static_cast<int64_t>(path.size()) - 1) /
                                     (max_len - 1));
    out.push_back(path[idx]);
  }
  return out;
}

}  // namespace

Status DeepOdOracle::Train(const std::vector<TripSample>& train,
                           const std::vector<TripSample>& /*val*/) {
  if (train.empty()) return Status::InvalidArgument("DeepOD: empty training set");
  std::vector<double> times;
  for (const auto& s : train) times.push_back(s.travel_time_minutes);
  double sum = 0, sq = 0;
  for (double t : times) {
    sum += t;
    sq += t * t;
  }
  double n = static_cast<double>(times.size());
  mean_t_ = sum / n;
  std_t_ = std::sqrt(std::max(1e-6, sq / n - mean_t_ * mean_t_));

  // Pre-extract subsampled cell paths.
  std::vector<std::vector<int64_t>> paths;
  paths.reserve(train.size());
  for (const auto& s : train) {
    paths.push_back(
        Subsample(CellPathOf(s.trajectory, grid_, true), config_.max_path_len));
  }

  Rng rng(config_.seed + 1);
  optim::Adam opt(net_->Parameters(), config_.lr);
  std::vector<int64_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start + static_cast<size_t>(config_.batch_size) <=
                           order.size();
         start += static_cast<size_t>(config_.batch_size)) {
      std::vector<const OdtInput*> odts;
      std::vector<float> yt;
      std::vector<Tensor> traj_reps;
      for (int64_t k = 0; k < config_.batch_size; ++k) {
        int64_t i = order[start + static_cast<size_t>(k)];
        odts.push_back(&train[static_cast<size_t>(i)].odt);
        yt.push_back(static_cast<float>(
            (times[static_cast<size_t>(i)] - mean_t_) / std_t_));
        traj_reps.push_back(net_->TrajRep(paths[static_cast<size_t>(i)]));
      }
      int64_t b = config_.batch_size;
      net_->ZeroGrad();
      Tensor od_rep = net_->OdRep(grid_, odts);                     // [B, h]
      Tensor pred = net_->head.Forward(od_rep);                     // [B, 1]
      Tensor main = MseLoss(pred, Tensor::FromVector({b, 1}, yt));
      // Auxiliary loss: pull the OD representation toward the affiliated
      // trajectory representation (the paper's matching objective).
      // trained jointly: gradients flow into both towers.
      Tensor traj = Concat(traj_reps, 0);                           // [B, h]
      Tensor aux = MseLoss(od_rep, traj);
      Tensor loss = Add(main, MulScalar(aux, config_.aux_weight));
      loss.Backward();
      opt.Step();
    }
  }
  return Status::OK();
}

double DeepOdOracle::EstimateMinutes(const OdtInput& odt) const {
  NoGradGuard guard;
  Tensor rep = net_->OdRep(grid_, {&odt});
  return static_cast<double>(net_->head.Forward(rep).at(0)) * std_t_ + mean_t_;
}

int64_t DeepOdOracle::SizeBytes() const { return net_->NumParams() * 4; }

}  // namespace dot
