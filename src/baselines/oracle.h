// Common interfaces for the comparison methods of Sec. 6.2: ODT-Oracles,
// routing methods, and path-based travel-time estimators.

#ifndef DOT_BASELINES_ORACLE_H_
#define DOT_BASELINES_ORACLE_H_

#include <string>
#include <vector>

#include "eval/dataset.h"
#include "geo/grid.h"
#include "geo/pit.h"
#include "geo/trajectory.h"
#include "util/status.h"

namespace dot {

/// \brief An ODT-Oracle baseline: (O, D, T) -> travel time.
class OdtOracle {
 public:
  virtual ~OdtOracle() = default;

  /// Fits the method on the training split (validation may be used for
  /// early stopping / model selection).
  virtual Status Train(const std::vector<TripSample>& train,
                       const std::vector<TripSample>& val) = 0;

  /// Estimated travel time in minutes.
  virtual double EstimateMinutes(const OdtInput& odt) const = 0;

  virtual std::string name() const = 0;

  /// Approximate model size in bytes (Table 5).
  virtual int64_t SizeBytes() const = 0;
};

/// \brief A routing method (Sec. 6.2.1): produces a grid-cell route and a
/// route-derived travel time for an ODT-Input.
class Router {
 public:
  virtual ~Router() = default;

  virtual Status Train(const std::vector<TripSample>& train) = 0;

  /// Grid-cell route from origin to destination (row-major cell indices,
  /// in travel order). Empty when unroutable.
  virtual std::vector<int64_t> Route(const OdtInput& odt) const = 0;

  /// Travel time along the route (historical average segment times).
  virtual double EstimateMinutes(const OdtInput& odt) const = 0;

  virtual std::string name() const = 0;
  virtual int64_t SizeBytes() const = 0;
};

/// \brief A path-based TTE method (Sec. 6.2.2): estimates the travel time of
/// a given cell path. In the ODT-Oracle setting it is fed generated paths.
class PathEstimator {
 public:
  virtual ~PathEstimator() = default;

  /// Trains on ground-truth cell paths of the training trajectories.
  virtual Status Train(const std::vector<TripSample>& train,
                       const std::vector<TripSample>& val) = 0;

  /// Minutes for a cell path departing at odt.departure_time.
  virtual double EstimateMinutes(const std::vector<int64_t>& cell_path,
                                 const OdtInput& odt) const = 0;

  virtual std::string name() const = 0;
  virtual int64_t SizeBytes() const = 0;
};

}  // namespace dot

#endif  // DOT_BASELINES_ORACLE_H_
