// Deterministic random-number utilities. Every stochastic component in the
// library takes an explicit seed so experiments are reproducible.

#ifndef DOT_UTIL_RNG_H_
#define DOT_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace dot {

/// \brief Seeded pseudo-random generator with convenience samplers.
///
/// Wraps std::mt19937_64. Not thread-safe; create one per thread, derived
/// with Fork() for decorrelated streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double Uniform() { return unit_(engine_); }
  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  /// Standard normal sample.
  double Normal() { return normal_(engine_); }
  /// Normal with given mean/stddev.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }
  /// Bernoulli trial.
  bool Bernoulli(double p) { return Uniform() < p; }
  /// Exponential with given rate.
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }
  /// Samples an index from unnormalized non-negative weights.
  /// Returns -1 if all weights are zero or the vector is empty.
  int64_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return weights.empty() ? -1 : -1;
    double r = Uniform() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return static_cast<int64_t>(i);
    }
    return static_cast<int64_t>(weights.size()) - 1;
  }

  /// Derives a decorrelated child generator (e.g. per worker thread).
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace dot

#endif  // DOT_UTIL_RNG_H_
