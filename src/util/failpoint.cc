#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>

#include "util/logging.h"

namespace dot {
namespace fail {

namespace {

/// Name -> failpoint map. Entries are never removed (Get() hands out raw
/// pointers cached in function-local statics at call sites).
class Registry {
 public:
  static Registry& Get() {
    static Registry* registry = new Registry();  // never destroyed
    return *registry;
  }

  Failpoint* GetOrCreate(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = points_[name];
    if (!slot) slot = std::make_unique<Failpoint>(name);
    return slot.get();
  }

  void DisarmAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, fp] : points_) fp->Disarm();
  }

  std::vector<std::string> Armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    for (const auto& [name, fp] : points_) {
      if (fp->armed()) out.push_back(name);
    }
    return out;
  }

 private:
  Registry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>> points_;
};

Status ParseSpec(const std::string& spec, Registry* reg);

Registry::Registry() {
  // Environment arming happens once, before any failpoint is handed out.
  if (const char* env = std::getenv("DOT_FAILPOINTS")) {
    Status s = ParseSpec(env, this);
    if (!s.ok()) {
      DOT_LOG_WARN << "ignoring DOT_FAILPOINTS: " << s;
    }
  }
}

Status ParseAction(const std::string& token, Action* action, double* arg) {
  std::string name = token;
  *arg = 0;
  size_t open = token.find('(');
  if (open != std::string::npos) {
    if (token.back() != ')') {
      return Status::InvalidArgument("failpoint action missing ')': " + token);
    }
    name = token.substr(0, open);
    std::string arg_str = token.substr(open + 1, token.size() - open - 2);
    char* end = nullptr;
    *arg = std::strtod(arg_str.c_str(), &end);
    if (end == arg_str.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad failpoint action argument: " + token);
    }
  }
  if (name == "off") {
    *action = Action::kOff;
  } else if (name == "error") {
    *action = Action::kError;
  } else if (name == "nan") {
    *action = Action::kNan;
  } else if (name == "delay") {
    *action = Action::kDelay;
  } else if (name == "truncate") {
    *action = Action::kTruncate;
  } else {
    return Status::InvalidArgument("unknown failpoint action: " + name);
  }
  return Status::OK();
}

struct ParsedPoint {
  std::string name;
  Action action;
  double arg;
  int64_t count;
};

Status ParseSpec(const std::string& spec, Registry* reg) {
  // Parse the whole spec before arming anything: a malformed spec must not
  // leave the process half-armed.
  std::vector<ParsedPoint> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint entry missing '=': " + entry);
    }
    ParsedPoint p;
    p.name = entry.substr(0, eq);
    std::string rhs = entry.substr(eq + 1);
    p.count = -1;
    size_t colon = rhs.rfind(':');
    // A ':' after the closing ')' (or with no parens at all) is the count
    // separator; a ':' inside parens would be part of the argument.
    size_t close = rhs.find(')');
    if (colon != std::string::npos &&
        (close == std::string::npos || colon > close)) {
      std::string count_str = rhs.substr(colon + 1);
      char* cend = nullptr;
      p.count = std::strtoll(count_str.c_str(), &cend, 10);
      if (cend == count_str.c_str() || *cend != '\0' || p.count < 0) {
        return Status::InvalidArgument("bad failpoint count: " + entry);
      }
      rhs = rhs.substr(0, colon);
    }
    DOT_RETURN_NOT_OK(ParseAction(rhs, &p.action, &p.arg));
    parsed.push_back(std::move(p));
  }
  for (const auto& p : parsed) {
    if (p.action == Action::kOff) {
      reg->GetOrCreate(p.name)->Disarm();
    } else {
      reg->GetOrCreate(p.name)->Arm(p.action, p.count, p.arg);
    }
  }
  return Status::OK();
}

}  // namespace

const char* ActionName(Action a) {
  switch (a) {
    case Action::kOff: return "off";
    case Action::kError: return "error";
    case Action::kNan: return "nan";
    case Action::kDelay: return "delay";
    case Action::kTruncate: return "truncate";
  }
  return "unknown";
}

Action Failpoint::FireSlow() {
  Action fired = Action::kOff;
  double delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (action_ == Action::kOff) return Action::kOff;
    if (remaining_ == 0) {  // raced with exhaustion
      armed_.store(false, std::memory_order_relaxed);
      return Action::kOff;
    }
    if (remaining_ > 0 && --remaining_ == 0) {
      armed_.store(false, std::memory_order_relaxed);
    }
    fired = action_;
    delay_ms = arg_;
    ++fires_;
  }
  if (fired == Action::kDelay && delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(delay_ms * 1000)));
  }
  return fired;
}

double Failpoint::arg() const {
  std::lock_guard<std::mutex> lock(mu_);
  return arg_;
}

int64_t Failpoint::fire_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_;
}

void Failpoint::Arm(Action action, int64_t count, double arg) {
  std::lock_guard<std::mutex> lock(mu_);
  action_ = action;
  remaining_ = count < 0 ? -1 : count;
  arg_ = arg;
  armed_.store(action != Action::kOff && remaining_ != 0,
               std::memory_order_relaxed);
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  action_ = Action::kOff;
  remaining_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

Failpoint* Get(const std::string& name) {
  return Registry::Get().GetOrCreate(name);
}

void Arm(const std::string& name, Action action, int64_t count, double arg) {
  Get(name)->Arm(action, count, arg);
}

void Disarm(const std::string& name) { Get(name)->Disarm(); }

void DisarmAll() { Registry::Get().DisarmAll(); }

Status ArmFromSpec(const std::string& spec) {
  return ParseSpec(spec, &Registry::Get());
}

std::vector<std::string> ArmedFailpoints() { return Registry::Get().Armed(); }

}  // namespace fail
}  // namespace dot
