// Fixed-size thread pool with a ParallelFor helper. Used to parallelize
// im2col/matmul in the tensor library and dataset generation.

#ifndef DOT_UTIL_THREAD_POOL_H_
#define DOT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dot {

/// \brief A minimal fixed-size worker pool.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool sized to the hardware concurrency, or to the
  /// DOT_NUM_THREADS environment variable when set (clamped to [1, 256]).
  static ThreadPool* Global();

  /// Replaces the global pool with one of `num_threads` workers (<= 0 picks
  /// the default sizing again). For tests that sweep thread counts — e.g.
  /// the determinism suite proving kernels are partition-invariant. Not safe
  /// while other threads are using the pool.
  static void ResetGlobalForTesting(int num_threads = 0);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// \brief Splits [0, n) into contiguous chunks and runs `fn(begin, end)` on
/// the pool; falls back to inline execution for small n or null pool.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk = 1024);

}  // namespace dot

#endif  // DOT_UTIL_THREAD_POOL_H_
