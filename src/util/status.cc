#include "util/status.h"

namespace dot {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace dot
