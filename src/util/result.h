// Result<T>: value-or-Status, the Arrow idiom for fallible producers.

#ifndef DOT_UTIL_RESULT_H_
#define DOT_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace dot {

/// \brief Holds either a value of type T or an error Status.
///
/// \code
///   Result<Grid> r = Grid::Make(bounds, 20);
///   if (!r.ok()) return r.status();
///   Grid grid = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK status (failure). OK status is a bug.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value; undefined if !ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

}  // namespace dot

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define DOT_ASSIGN_OR_RETURN(lhs, rexpr)             \
  auto DOT_CONCAT_(_res_, __LINE__) = (rexpr);       \
  if (!DOT_CONCAT_(_res_, __LINE__).ok())            \
    return DOT_CONCAT_(_res_, __LINE__).status();    \
  lhs = std::move(DOT_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define DOT_CONCAT_IMPL_(a, b) a##b
#define DOT_CONCAT_(a, b) DOT_CONCAT_IMPL_(a, b)

#endif  // DOT_UTIL_RESULT_H_
