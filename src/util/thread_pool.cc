#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "obs/trace.h"

namespace dot {

namespace {

int DefaultPoolThreads() {
  // DOT_NUM_THREADS overrides the hardware concurrency — smaller to bound a
  // shared machine, larger to exercise the parallel partitioning paths on
  // boxes with few cores (the kernels are deterministic either way).
  if (const char* env = std::getenv("DOT_NUM_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return std::min(n, 256);
  }
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

// Lock-free fast path + owner pointer so ResetGlobalForTesting can swap the
// pool. The unique_ptr static still joins the workers at process exit.
std::atomic<ThreadPool*> g_global_pool{nullptr};
std::mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool_owner;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  // Keep trace-span nesting intact across the pool: spans opened inside the
  // task report the submitting thread's innermost span as their parent.
  // Only pay for the wrapper while a recording is active.
  if (obs::TracingEnabled()) {
    uint64_t parent = obs::CurrentSpanId();
    task = [parent, inner = std::move(task)] {
      obs::InheritedParent scope(parent);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool* ThreadPool::Global() {
  ThreadPool* p = g_global_pool.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  p = g_global_pool.load(std::memory_order_relaxed);
  if (p == nullptr) {
    g_global_pool_owner.reset(new ThreadPool(DefaultPoolThreads()));
    p = g_global_pool_owner.get();
    g_global_pool.store(p, std::memory_order_release);
  }
  return p;
}

void ThreadPool::ResetGlobalForTesting(int num_threads) {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  g_global_pool.store(nullptr, std::memory_order_release);
  g_global_pool_owner.reset();  // joins the old workers
  g_global_pool_owner.reset(
      new ThreadPool(num_threads > 0 ? num_threads : DefaultPoolThreads()));
  g_global_pool.store(g_global_pool_owner.get(), std::memory_order_release);
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn,
                 int64_t min_chunk) {
  if (n <= 0) return;
  if (pool == nullptr || n <= min_chunk || pool->num_threads() == 1) {
    fn(0, n);
    return;
  }
  int64_t chunks = std::min<int64_t>(pool->num_threads(), (n + min_chunk - 1) / min_chunk);
  int64_t per = (n + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t begin = c * per;
    int64_t end = std::min(n, begin + per);
    if (begin >= end) break;
    pool->Submit([=, &fn] { fn(begin, end); });
  }
  pool->Wait();
}

}  // namespace dot
