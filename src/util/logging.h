// Minimal leveled logging used by training loops and benches.

#ifndef DOT_UTIL_LOGGING_H_
#define DOT_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dot {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Fatal variant aborts in its destructor.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace dot

#define DOT_LOG_INTERNAL(level)                                            \
  (::dot::GetLogLevel() > (level))                                         \
      ? (void)0                                                            \
      : ::dot::internal::Voidify() &                                       \
            ::dot::internal::LogMessage((level), __FILE__, __LINE__).stream()

#define DOT_LOG_DEBUG DOT_LOG_INTERNAL(::dot::LogLevel::kDebug)
#define DOT_LOG_INFO DOT_LOG_INTERNAL(::dot::LogLevel::kInfo)
#define DOT_LOG_WARN DOT_LOG_INTERNAL(::dot::LogLevel::kWarn)
#define DOT_LOG_ERROR DOT_LOG_INTERNAL(::dot::LogLevel::kError)

/// Aborts with a message when `cond` is false. Active in all build types —
/// used for programmer errors that must never ship (RocksDB assert idiom).
#define DOT_CHECK(cond)                                            \
  (cond) ? (void)0                                                 \
         : ::dot::internal::Voidify() &                            \
               ::dot::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
                   << "Check failed: " #cond " "

#endif  // DOT_UTIL_LOGGING_H_
