// Status: error-signalling value type used across all public DOT APIs.
//
// Follows the RocksDB / Arrow idiom: functions that can fail return a
// Status (or a Result<T>, see result.h) instead of throwing. A Status is
// cheap to copy in the OK case (single enum) and carries a message in the
// error case.

#ifndef DOT_UTIL_STATUS_H_
#define DOT_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace dot {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  /// Admission control / backpressure: the caller should retry later or
  /// shed load (the serving front-end's typed overload rejection).
  kResourceExhausted = 9,
  /// A client-side latency budget expired before the answer arrived.
  kDeadlineExceeded = 10,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Typical usage:
/// \code
///   Status s = grid.Locate(point, &cell);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Shared so Status stays copyable and cheap; immutable after creation.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dot

/// Propagates a non-OK Status to the caller.
#define DOT_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::dot::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

#endif  // DOT_UTIL_STATUS_H_
