#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <ctime>
#include <mutex>

namespace dot {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  // One mutex around the write: stderr is unbuffered but POSIX does not
  // guarantee a single fprintf is atomic, and thread-pool workers log
  // concurrently — without this, lines can tear into each other.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

}  // namespace

// Relaxed is enough: the threshold is advisory (a racing SetLogLevel may
// drop or admit one in-flight message, never corrupt state), and the DOT_LOG
// macros load it on every statement, so it must stay a plain atomic read.
LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}
void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : file_(file), line_(line) {}

FatalLogMessage::~FatalLogMessage() {
  Emit(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace dot
