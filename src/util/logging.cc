#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <ctime>

namespace dot {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : file_(file), line_(line) {}

FatalLogMessage::~FatalLogMessage() {
  Emit(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace dot
