// Wall-clock stopwatch used by the efficiency benchmarks (Table 5, Figure 8).

#ifndef DOT_UTIL_STOPWATCH_H_
#define DOT_UTIL_STOPWATCH_H_

#include <chrono>

namespace dot {

/// \brief Monotonic wall-clock timer.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dot

#endif  // DOT_UTIL_STOPWATCH_H_
