// Failpoint injection framework (the fault-tolerance test surface).
//
// A failpoint is a named hook compiled into production code paths
// (checkpoint commit, diffusion sampling, serving stage transitions) that
// normally does nothing — the disarmed fast path is a single relaxed
// atomic load — but can be armed to inject a fault:
//
//   error     the call site returns a non-OK Status
//   nan       the call site poisons its tensor output with NaNs
//   delay     Fire() itself sleeps `arg` milliseconds (injected latency)
//   truncate  the call site truncates its write (torn-write simulation)
//
// Arming is programmatic (tests) or via the environment:
//
//   DOT_FAILPOINTS="name=action[(arg)][:count],name2=..."
//   DOT_FAILPOINTS="dot_oracle.infer_pits=error:1,checkpoint.commit=truncate"
//
// `count` bounds how many times the failpoint fires before auto-disarming
// (default: unlimited). The environment is parsed once, on first failpoint
// registration.
//
// Call sites use the DOT_FAILPOINT macro, which resolves the registry
// pointer once per site and then costs one relaxed load per call:
//
//   if (DOT_FAILPOINT("dot_oracle.infer_pits") == fail::Action::kError)
//     return Status::Internal("injected stage-1 failure");

#ifndef DOT_UTIL_FAILPOINT_H_
#define DOT_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace dot {
namespace fail {

/// What an armed failpoint injects at its call site.
enum class Action : int {
  kOff = 0,      ///< disarmed (or count exhausted): no effect
  kError,        ///< call site should fail with a non-OK Status
  kNan,          ///< call site should poison its output with NaNs
  kDelay,        ///< Fire() sleeps arg() milliseconds, then reports kDelay
  kTruncate,     ///< call site should truncate its write
};

/// Short lowercase action name ("off", "error", ...).
const char* ActionName(Action a);

/// \brief One named failpoint. Never destroyed once registered.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  /// Evaluates the failpoint: kOff when disarmed (one relaxed load),
  /// otherwise consumes one hit and returns the armed action. A kDelay
  /// action sleeps inside Fire() — injected latency needs no call-site
  /// cooperation.
  Action Fire() {
    if (!armed_.load(std::memory_order_relaxed)) return Action::kOff;
    return FireSlow();
  }

  /// Action argument fixed at arm time (delay milliseconds). Meaningful
  /// only while armed.
  double arg() const;

  /// Arms the failpoint: fire `action` for the next `count` evaluations
  /// (count < 0 = unlimited), then auto-disarm.
  void Arm(Action action, int64_t count = -1, double arg = 0);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Total times this failpoint fired a non-kOff action (test telemetry).
  int64_t fire_count() const;

 private:
  Action FireSlow();

  const std::string name_;
  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;   // guards the armed configuration below
  Action action_ = Action::kOff;
  int64_t remaining_ = 0;   // -1 = unlimited
  double arg_ = 0;
  int64_t fires_ = 0;
};

/// Registry lookup, creating the failpoint on first use. The returned
/// pointer is valid for the process lifetime. The first call parses
/// DOT_FAILPOINTS.
Failpoint* Get(const std::string& name);

/// Programmatic arming by name (creates the failpoint if needed).
void Arm(const std::string& name, Action action, int64_t count = -1,
         double arg = 0);
void Disarm(const std::string& name);
/// Disarms every registered failpoint (test teardown).
void DisarmAll();

/// Parses and applies a DOT_FAILPOINTS-style spec:
///   name=action[(arg)][:count][,name=action...]
/// Returns InvalidArgument on malformed specs (no failpoints are armed from
/// a spec that fails to parse).
Status ArmFromSpec(const std::string& spec);

/// Names of currently armed failpoints (diagnostics).
std::vector<std::string> ArmedFailpoints();

}  // namespace fail
}  // namespace dot

/// Evaluates the named failpoint; resolves the registry pointer once per
/// call site, so the disarmed cost is one relaxed atomic load.
#define DOT_FAILPOINT(name)                                          \
  ([]() -> ::dot::fail::Action {                                     \
    static ::dot::fail::Failpoint* _dot_fp = ::dot::fail::Get(name); \
    return _dot_fp->Fire();                                          \
  }())

#endif  // DOT_UTIL_FAILPOINT_H_
