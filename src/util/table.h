// Console table printer used by the benchmark harness to render the
// paper's tables, plus CSV export for downstream plotting.

#ifndef DOT_UTIL_TABLE_H_
#define DOT_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace dot {

/// \brief A simple row/column table with aligned console rendering.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends a data row. Row lengths may differ from the header; short rows
  /// are padded when printing.
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Formats a double with fixed precision (helper for callers).
  static std::string Num(double v, int precision = 3);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

  /// Writes the table as CSV (header + rows).
  Status WriteCsv(const std::string& path) const;

  const std::string& title() const { return title_; }
  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dot

#endif  // DOT_UTIL_TABLE_H_
