#include "util/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dot {

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ToString() const {
  // Column widths over header + rows.
  size_t ncol = header_.size();
  for (const auto& r : rows_) ncol = std::max(ncol, r.size());
  std::vector<size_t> width(ncol, 0);
  auto measure = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) width[i] = std::max(width[i], r[i].size());
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < ncol; ++i) {
      const std::string cell = i < r.size() ? r[i] : "";
      os << cell << std::string(width[i] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : width) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

namespace {
std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  auto line = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i) f << ",";
      f << CsvEscape(r[i]);
    }
    f << "\n";
  };
  if (!header_.empty()) line(header_);
  for (const auto& r : rows_) line(r);
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace dot
