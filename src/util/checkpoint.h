// Sealed, atomically-written checkpoint container around BinaryWriter /
// BinaryReader (DESIGN.md §5d):
//
//   [magic string] [u64 version] [payload ...] [u32 CRC-32 footer]
//
// The CRC covers everything before the footer, so a truncated tail, a torn
// write, or any flipped byte is rejected at open time with a precise
// Status instead of being parsed into garbage weights. Writes go to
// `path + ".tmp"` and are renamed into place on Commit(), so a crash
// mid-save never clobbers the last good checkpoint.
//
// Failpoints (util/failpoint.h):
//   checkpoint.commit = error      Commit() fails with IOError
//   checkpoint.commit = truncate   Commit() silently publishes a torn file
//                                  (reports OK — simulates a torn write
//                                  that only the CRC footer can catch)

#ifndef DOT_UTIL_CHECKPOINT_H_
#define DOT_UTIL_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/result.h"
#include "util/serialize.h"
#include "util/status.h"

namespace dot {

/// \brief Writes a sealed checkpoint atomically (tmp + rename).
///
/// \code
///   CheckpointWriter w(path, "DOTCKPT", 1);
///   if (!w.Ok()) return Status::IOError(...);
///   ... serialize payload into *w.writer() ...
///   DOT_RETURN_NOT_OK(w.Commit());
/// \endcode
class CheckpointWriter {
 public:
  CheckpointWriter(std::string path, const std::string& magic,
                   uint64_t version);
  /// Removes the temporary file if Commit() was never reached.
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  bool Ok() const { return writer_ && writer_->Ok(); }
  /// Payload sink; header already written.
  BinaryWriter* writer() { return writer_.get(); }

  /// Appends the CRC footer, flushes, and renames the temporary file onto
  /// `path`. After Commit() the writer is closed.
  Status Commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::unique_ptr<BinaryWriter> writer_;
  bool committed_ = false;
};

/// \brief Opens and fully validates a sealed checkpoint.
///
/// Open() verifies, in order: the file exists and holds at least a header
/// plus footer, the CRC-32 footer matches the file contents, the magic
/// matches, and the version is at most `max_version`. Only then is the
/// payload reader handed out, positioned at the first payload byte.
class CheckpointReader {
 public:
  static Result<CheckpointReader> Open(const std::string& path,
                                       const std::string& magic,
                                       uint64_t max_version);

  BinaryReader& reader() { return *reader_; }
  uint64_t version() const { return version_; }

 private:
  CheckpointReader(std::unique_ptr<BinaryReader> reader, uint64_t version)
      : reader_(std::move(reader)), version_(version) {}

  std::unique_ptr<BinaryReader> reader_;
  uint64_t version_ = 0;
};

}  // namespace dot

#endif  // DOT_UTIL_CHECKPOINT_H_
