// Little binary reader/writer for model checkpoints and dataset caches.
//
// Both sides maintain a running CRC-32 over every byte written/read, which
// the checkpoint container (util/checkpoint.h) uses to seal files against
// torn writes and bit flips.

#ifndef DOT_UTIL_SERIALIZE_H_
#define DOT_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace dot {

/// Incremental CRC-32 (IEEE 802.3, the zlib polynomial). Feed `crc` from a
/// previous call to continue a running checksum; start from 0.
uint32_t Crc32(const void* data, size_t bytes, uint32_t crc = 0);

/// \brief Buffered binary writer with length-prefixed strings/vectors.
class BinaryWriter {
 public:
  /// Opens `path` for writing; check Ok() before use.
  explicit BinaryWriter(const std::string& path) : out_(path, std::ios::binary) {}

  bool Ok() const { return static_cast<bool>(out_); }

  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }
  void WriteF32Vector(const std::vector<float>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(float));
  }
  void WriteI64Vector(const std::vector<int64_t>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(int64_t));
  }

  /// CRC-32 of every byte written so far.
  uint32_t crc() const { return crc_; }

  /// Flushes and reports any stream error.
  Status Close() {
    out_.flush();
    if (!out_) return Status::IOError("binary write failed");
    out_.close();
    return Status::OK();
  }

 private:
  void WriteRaw(const void* data, size_t bytes) {
    // data may be null for empty vectors/strings; ostream::write with a
    // null pointer is UB even for zero bytes.
    if (bytes == 0) return;
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
    crc_ = Crc32(data, bytes, crc_);
  }
  std::ofstream out_;
  uint32_t crc_ = 0;
};

/// \brief Counterpart reader. All reads report failure via ok().
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path) : in_(path, std::ios::binary) {}

  bool Ok() const { return static_cast<bool>(in_); }

  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int64_t ReadI64() { return ReadPod<int64_t>(); }
  double ReadF64() { return ReadPod<double>(); }
  float ReadF32() { return ReadPod<float>(); }
  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  std::string ReadString() {
    uint64_t n = ReadU64();
    if (!SaneLength(n)) return {};
    std::string s(n, '\0');
    ReadRaw(s.data(), n);
    return s;
  }
  std::vector<float> ReadF32Vector() {
    uint64_t n = ReadU64();
    if (!SaneLength(n)) return {};
    std::vector<float> v(n);
    ReadRaw(v.data(), n * sizeof(float));
    return v;
  }
  std::vector<int64_t> ReadI64Vector() {
    uint64_t n = ReadU64();
    if (!SaneLength(n)) return {};
    std::vector<int64_t> v(n);
    ReadRaw(v.data(), n * sizeof(int64_t));
    return v;
  }

  /// CRC-32 of every byte successfully read so far.
  uint32_t crc() const { return crc_; }

 private:
  template <typename T>
  T ReadPod() {
    T v{};
    ReadRaw(&v, sizeof(v));
    if (!Ok()) return T{};
    return v;
  }
  void ReadRaw(void* data, size_t bytes) {
    if (bytes == 0) return;
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (in_) crc_ = Crc32(data, bytes, crc_);
  }
  /// Guards length prefixes from corrupt/truncated files: a bad stream or
  /// an absurd length flips the stream into the failed state.
  bool SaneLength(uint64_t n) {
    constexpr uint64_t kMaxElements = 1ull << 33;  // 8G elements
    if (!Ok() || n > kMaxElements) {
      in_.setstate(std::ios::failbit);
      return false;
    }
    return true;
  }
  std::ifstream in_;
  uint32_t crc_ = 0;
};

}  // namespace dot

#endif  // DOT_UTIL_SERIALIZE_H_
