// Little binary reader/writer for model checkpoints and dataset caches.

#ifndef DOT_UTIL_SERIALIZE_H_
#define DOT_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace dot {

/// \brief Buffered binary writer with length-prefixed strings/vectors.
class BinaryWriter {
 public:
  /// Opens `path` for writing; check Ok() before use.
  explicit BinaryWriter(const std::string& path) : out_(path, std::ios::binary) {}

  bool Ok() const { return static_cast<bool>(out_); }

  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }
  void WriteF32Vector(const std::vector<float>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(float));
  }
  void WriteI64Vector(const std::vector<int64_t>& v) {
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(int64_t));
  }

  /// Flushes and reports any stream error.
  Status Close() {
    out_.flush();
    if (!out_) return Status::IOError("binary write failed");
    out_.close();
    return Status::OK();
  }

 private:
  void WriteRaw(const void* data, size_t bytes) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  }
  std::ofstream out_;
};

/// \brief Counterpart reader. All reads report failure via ok().
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path) : in_(path, std::ios::binary) {}

  bool Ok() const { return static_cast<bool>(in_); }

  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int64_t ReadI64() { return ReadPod<int64_t>(); }
  double ReadF64() { return ReadPod<double>(); }
  float ReadF32() { return ReadPod<float>(); }
  std::string ReadString() {
    uint64_t n = ReadU64();
    if (!SaneLength(n)) return {};
    std::string s(n, '\0');
    ReadRaw(s.data(), n);
    return s;
  }
  std::vector<float> ReadF32Vector() {
    uint64_t n = ReadU64();
    if (!SaneLength(n)) return {};
    std::vector<float> v(n);
    ReadRaw(v.data(), n * sizeof(float));
    return v;
  }
  std::vector<int64_t> ReadI64Vector() {
    uint64_t n = ReadU64();
    if (!SaneLength(n)) return {};
    std::vector<int64_t> v(n);
    ReadRaw(v.data(), n * sizeof(int64_t));
    return v;
  }

 private:
  template <typename T>
  T ReadPod() {
    T v{};
    ReadRaw(&v, sizeof(v));
    if (!Ok()) return T{};
    return v;
  }
  void ReadRaw(void* data, size_t bytes) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  }
  /// Guards length prefixes from corrupt/truncated files: a bad stream or
  /// an absurd length flips the stream into the failed state.
  bool SaneLength(uint64_t n) {
    constexpr uint64_t kMaxElements = 1ull << 33;  // 8G elements
    if (!Ok() || n > kMaxElements) {
      in_.setstate(std::ios::failbit);
      return false;
    }
    return true;
  }
  std::ifstream in_;
};

}  // namespace dot

#endif  // DOT_UTIL_SERIALIZE_H_
