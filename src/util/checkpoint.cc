#include "util/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/failpoint.h"

namespace dot {

CheckpointWriter::CheckpointWriter(std::string path, const std::string& magic,
                                   uint64_t version)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  writer_ = std::make_unique<BinaryWriter>(tmp_path_);
  if (!writer_->Ok()) return;
  writer_->WriteString(magic);
  writer_->WriteU64(version);
}

CheckpointWriter::~CheckpointWriter() {
  if (committed_) return;
  writer_.reset();  // close before unlink
  std::error_code ec;
  std::filesystem::remove(tmp_path_, ec);
}

Status CheckpointWriter::Commit() {
  if (committed_) return Status::FailedPrecondition("checkpoint already committed");
  if (!Ok()) return Status::IOError("checkpoint write failed: " + tmp_path_);

  fail::Action injected = DOT_FAILPOINT("checkpoint.commit");
  if (injected == fail::Action::kError) {
    return Status::IOError("failpoint 'checkpoint.commit' fired for " + path_);
  }

  // Footer: CRC over header + payload. The footer bytes themselves are
  // excluded (the verifier checksums everything before the last 4 bytes).
  writer_->WriteU32(writer_->crc());
  DOT_RETURN_NOT_OK(writer_->Close());
  writer_.reset();

  if (injected == fail::Action::kTruncate) {
    // Torn-write simulation: publish a file missing its tail and report
    // success, exactly like a crash between write and fsync would. Only
    // the CRC check at open time can catch this.
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(tmp_path_, ec);
    if (!ec && size > 1) {
      std::filesystem::resize_file(tmp_path_, size / 2, ec);
    }
  }

  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  if (ec) {
    std::filesystem::remove(tmp_path_, ec);
    return Status::IOError("cannot rename checkpoint into place: " + path_);
  }
  committed_ = true;
  return Status::OK();
}

Result<CheckpointReader> CheckpointReader::Open(const std::string& path,
                                                const std::string& magic,
                                                uint64_t max_version) {
  // Whole-file CRC validation first: nothing is parsed from a file whose
  // checksum does not match its footer.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open checkpoint " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Minimum size: magic length prefix (8) + version (8) + footer (4).
  if (bytes.size() < 20) {
    return Status::IOError("checkpoint truncated (" +
                           std::to_string(bytes.size()) + " bytes): " + path);
  }
  size_t body = bytes.size() - sizeof(uint32_t);
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + body, sizeof(stored));
  uint32_t actual = Crc32(bytes.data(), body);
  if (stored != actual) {
    return Status::IOError("checkpoint checksum mismatch (corrupt or torn): " +
                           path);
  }

  auto reader = std::make_unique<BinaryReader>(path);
  if (!reader->Ok()) return Status::IOError("cannot open checkpoint " + path);
  std::string file_magic = reader->ReadString();
  if (!reader->Ok() || file_magic != magic) {
    return Status::InvalidArgument("bad checkpoint magic in " + path +
                                   " (want " + magic + ")");
  }
  uint64_t version = reader->ReadU64();
  if (!reader->Ok() || version > max_version) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) + " in " +
        path + " (max " + std::to_string(max_version) + ")");
  }
  return CheckpointReader(std::move(reader), version);
}

}  // namespace dot
