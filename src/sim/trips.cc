#include "sim/trips.h"

#include <algorithm>
#include <cmath>

#include "sim/incidents.h"
#include "util/logging.h"

namespace dot {

TripConfig TripConfig::ChengduLike() {
  TripConfig c;
  c.start_unix = 1541030400;  // 2018-11-01
  c.num_days = 10;
  c.gps_interval_mean = 29.0;
  c.gps_interval_jitter = 12.0;
  return c;
}

TripConfig TripConfig::HarbinLike() {
  TripConfig c;
  c.start_unix = 1420243200;  // 2015-01-03
  c.num_days = 5;
  c.gps_interval_mean = 44.0;
  c.gps_interval_jitter = 16.0;
  c.max_od_meters = 6500.0;
  return c;
}

TripGenerator::TripGenerator(const City* city, uint64_t seed)
    : city_(city), rng_(seed) {
  // Three activity hotspots: center, north-east business area, south-west
  // station — placed by grid position.
  const RoadNetwork& net = city_->network();
  int64_t n = city_->config().grid_nodes;
  auto node_at = [&](int64_t x, int64_t y) { return y * n + x; };
  hotspots_ = {node_at(n / 2, n / 2), node_at((3 * n) / 4, (3 * n) / 4),
               node_at(n / 4, n / 4)};
  for (int64_t h : hotspots_) {
    DOT_CHECK(h >= 0 && h < net.num_nodes()) << "hotspot out of range";
  }
}

int64_t TripGenerator::SampleSecondsOfDay() {
  // Hourly demand profile: quiet nights, morning and evening peaks.
  static const double kHourWeight[24] = {
      0.4, 0.3, 0.2, 0.2, 0.3, 0.8, 1.6, 2.6, 3.0, 2.2, 1.8, 1.9,
      2.0, 1.8, 1.7, 1.8, 2.2, 2.9, 3.2, 2.6, 2.0, 1.6, 1.1, 0.7};
  std::vector<double> w(kHourWeight, kHourWeight + 24);
  int64_t hour = rng_.Categorical(w);
  return hour * 3600 + rng_.UniformInt(0, 3599);
}

int64_t TripGenerator::SampleNodeNearHotspot() {
  const int64_t n = city_->config().grid_nodes;
  int64_t h = hotspots_[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(hotspots_.size()) - 1))];
  int64_t hx = h % n, hy = h / n;
  int64_t x = std::clamp<int64_t>(
      hx + static_cast<int64_t>(std::lround(rng_.Normal(0, 2.0))), 0, n - 1);
  int64_t y = std::clamp<int64_t>(
      hy + static_cast<int64_t>(std::lround(rng_.Normal(0, 2.0))), 0, n - 1);
  return y * n + x;
}

int64_t TripGenerator::SampleOrigin() {
  if (rng_.Bernoulli(0.5)) return SampleNodeNearHotspot();
  return rng_.UniformInt(0, city_->network().num_nodes() - 1);
}

int64_t TripGenerator::SampleDestination(int64_t origin, const TripConfig& config) {
  const RoadNetwork& net = city_->network();
  for (int attempt = 0; attempt < 64; ++attempt) {
    int64_t d = rng_.Bernoulli(0.5) ? SampleNodeNearHotspot()
                                    : rng_.UniformInt(0, net.num_nodes() - 1);
    if (d == origin) continue;
    double dist = DistanceMeters(net.node(origin).gps, net.node(d).gps);
    if (dist >= config.min_od_meters && dist <= config.max_od_meters) return d;
  }
  return -1;
}

std::vector<int64_t> TripGenerator::ChooseRoute(int64_t from, int64_t to,
                                                int64_t depart_unix,
                                                const TripConfig& config,
                                                bool* is_outlier) {
  const RoadNetwork& net = city_->network();
  // Perceived per-edge costs at the departure time drive route choice: the
  // expected time skewed by the drivers' arterial preference. Time-of-day
  // dependence makes the preferred route flip between off-peak and rush
  // hour; the perception skew separates realized routes from the true
  // time-optimal path. Incident-aware costs also route drivers around
  // active closures, the way real traffic drains off a blocked road.
  std::vector<double> weights(static_cast<size_t>(net.num_edges()));
  for (int64_t e = 0; e < net.num_edges(); ++e) {
    double perception = city_->IsArterial(e) ? config.perceived_arterial_factor
                                             : config.perceived_street_factor;
    weights[static_cast<size_t>(e)] =
        city_->ExpectedEdgeSecondsAt(e, depart_unix) * perception;
  }

  *is_outlier = false;
  std::vector<RoutingResult> candidates =
      net.KShortestPaths(from, to, config.route_candidates, weights);
  if (candidates.empty()) return {};

  if (rng_.Bernoulli(config.outlier_prob)) {
    // Outlier: detour via an unrelated waypoint (Fig. 1's T4 via point B).
    double best_cost = candidates[0].cost;
    for (int attempt = 0; attempt < 32; ++attempt) {
      int64_t via = rng_.UniformInt(0, net.num_nodes() - 1);
      if (via == from || via == to) continue;
      RoutingResult leg1 = net.ShortestPath(from, via, weights);
      RoutingResult leg2 = net.ShortestPath(via, to, weights);
      if (!leg1.found() || !leg2.found()) continue;
      double cost = leg1.cost + leg2.cost;
      if (cost >= config.detour_min_factor * best_cost &&
          cost <= 3.0 * best_cost) {
        std::vector<int64_t> path = leg1.edge_path;
        path.insert(path.end(), leg2.edge_path.begin(), leg2.edge_path.end());
        *is_outlier = true;
        return path;
      }
    }
    // No suitable detour found; fall through to a normal route.
  }

  // Softmax over candidate costs relative to the best.
  std::vector<double> probs;
  for (const auto& c : candidates) {
    probs.push_back(std::exp(-(c.cost - candidates[0].cost) /
                             std::max(1.0, config.route_choice_temp)));
  }
  int64_t pick = rng_.Categorical(probs);
  if (pick < 0) pick = 0;
  return candidates[static_cast<size_t>(pick)].edge_path;
}

Trajectory TripGenerator::Drive(const std::vector<int64_t>& edge_path,
                                int64_t depart_unix, const TripConfig& config) {
  const RoadNetwork& net = city_->network();
  // 1) Walk the path, producing a piecewise-linear position/time curve.
  struct Waypoint {
    GpsPoint gps;
    double time;  // seconds since departure
  };
  std::vector<Waypoint> curve;
  double trip_factor = std::exp(rng_.Normal(0, config.trip_speed_noise));
  double t = 0;
  curve.push_back({net.node(net.edge(edge_path.front()).from).gps, 0.0});
  for (int64_t eid : edge_path) {
    const RoadEdge& e = net.edge(eid);
    double drive = city_->ExpectedEdgeSecondsAt(
                       eid, depart_unix + static_cast<int64_t>(t)) *
                   trip_factor * rng_.Uniform(0.9, 1.1);
    double delay =
        rng_.Uniform(config.intersection_delay_min, config.intersection_delay_max);
    if (city_->IsArterial(eid)) delay *= 0.5;
    t += drive + delay;
    curve.push_back({net.node(e.to).gps, t});
  }
  double total = t;

  // 2) Sample GPS points along the curve at irregular intervals.
  Trajectory traj;
  Projection proj(city_->config().anchor);
  auto position_at = [&](double query) {
    for (size_t i = 1; i < curve.size(); ++i) {
      if (query <= curve[i].time) {
        double span = std::max(1e-9, curve[i].time - curve[i - 1].time);
        double f = (query - curve[i - 1].time) / span;
        return GpsPoint{
            curve[i - 1].gps.lng + f * (curve[i].gps.lng - curve[i - 1].gps.lng),
            curve[i - 1].gps.lat + f * (curve[i].gps.lat - curve[i - 1].gps.lat)};
      }
    }
    return curve.back().gps;
  };
  auto noisy = [&](const GpsPoint& p) {
    double x, y;
    proj.ToMeters(p, &x, &y);
    x += rng_.Normal(0, config.gps_noise_meters);
    y += rng_.Normal(0, config.gps_noise_meters);
    return proj.ToGps(x, y);
  };
  double sample_t = 0;
  while (sample_t < total) {
    traj.points.push_back(
        {noisy(position_at(sample_t)), depart_unix + static_cast<int64_t>(sample_t)});
    double gap = config.gps_interval_mean +
                 rng_.Uniform(-config.gps_interval_jitter, config.gps_interval_jitter);
    sample_t += std::max(5.0, gap);
  }
  // Final fix exactly at the destination/arrival.
  traj.points.push_back(
      {noisy(curve.back().gps), depart_unix + static_cast<int64_t>(total)});
  return traj;
}

std::vector<OdtInput> TripGenerator::GenerateDemand(int64_t n,
                                                    const TripConfig& config) {
  const RoadNetwork& net = city_->network();
  Projection proj(city_->config().anchor);
  auto noisy = [&](const GpsPoint& p) {
    double x, y;
    proj.ToMeters(p, &x, &y);
    x += rng_.Normal(0, config.gps_noise_meters);
    y += rng_.Normal(0, config.gps_noise_meters);
    return proj.ToGps(x, y);
  };
  std::vector<OdtInput> odts;
  odts.reserve(static_cast<size_t>(n));
  int64_t guard = 0;
  while (static_cast<int64_t>(odts.size()) < n && guard < n * 20) {
    ++guard;
    int64_t origin = SampleOrigin();
    int64_t dest = SampleDestination(origin, config);
    if (dest < 0) continue;
    int64_t day = rng_.UniformInt(0, config.num_days - 1);
    OdtInput odt;
    odt.origin = noisy(net.node(origin).gps);
    odt.destination = noisy(net.node(dest).gps);
    odt.departure_time = config.start_unix + day * 86400 + SampleSecondsOfDay();
    odts.push_back(odt);
    // Surge incidents multiply demand in their window: emit extra queries
    // for the same OD/time so the surge share of the stream rises. The
    // branch draws no randomness without a schedule, keeping the clear-day
    // RNG stream (and every existing fixed-seed dataset) bitwise intact.
    const IncidentSchedule* sched = city_->incidents();
    if (sched != nullptr && !sched->empty()) {
      double m = sched->DemandMultiplier(odt.departure_time);
      int64_t extra = static_cast<int64_t>(std::floor(m)) - 1;
      double frac = m - std::floor(m);
      if (frac > 0 && rng_.Bernoulli(frac)) ++extra;
      for (int64_t k = 0; k < extra && static_cast<int64_t>(odts.size()) < n;
           ++k) {
        odts.push_back(odt);
      }
    }
  }
  DOT_CHECK(static_cast<int64_t>(odts.size()) == n)
      << "demand generation starved; relax OD distance bounds";
  return odts;
}

std::vector<SimulatedTrip> TripGenerator::Generate(const TripConfig& config) {
  std::vector<SimulatedTrip> trips;
  trips.reserve(static_cast<size_t>(config.num_trips));
  int64_t guard = 0;
  while (static_cast<int64_t>(trips.size()) < config.num_trips &&
         guard < config.num_trips * 20) {
    ++guard;
    int64_t origin = SampleOrigin();
    int64_t dest = SampleDestination(origin, config);
    if (dest < 0) continue;
    int64_t day = rng_.UniformInt(0, config.num_days - 1);
    int64_t sod = SampleSecondsOfDay();
    int64_t depart = config.start_unix + day * 86400 + sod;
    bool outlier = false;
    std::vector<int64_t> path =
        ChooseRoute(origin, dest, depart, config, &outlier);
    if (path.empty()) continue;
    SimulatedTrip trip;
    trip.edge_path = path;
    trip.is_outlier = outlier;
    trip.trajectory = Drive(path, depart, config);
    if (trip.trajectory.size() < 2) continue;
    trip.odt = OdtFromTrajectory(trip.trajectory);
    trips.push_back(std::move(trip));
  }
  DOT_CHECK(static_cast<int64_t>(trips.size()) == config.num_trips)
      << "trip generation starved; relax OD distance bounds";
  return trips;
}

}  // namespace dot
