#include "sim/city.h"

#include <algorithm>
#include <cmath>

#include "geo/trajectory.h"
#include "sim/incidents.h"
#include "util/logging.h"

namespace dot {

CityConfig CityConfig::ChengduLike() {
  CityConfig c;
  c.name = "Chengdu";
  c.grid_nodes = 20;
  c.spacing_meters = 760;  // ~15.2 km extent, close to Table 1
  c.anchor = {103.95, 30.60};
  c.edge_removal_prob = 0.06;
  c.arterial_every = 4;
  c.rush_hour_strength = 0.6;
  return c;
}

CityConfig CityConfig::HarbinLike() {
  CityConfig c;
  c.name = "Harbin";
  c.grid_nodes = 19;
  c.spacing_meters = 1020;  // ~18.5 km extent
  c.anchor = {126.53, 45.70};
  c.edge_removal_prob = 0.09;
  c.arterial_every = 5;
  c.arterial_speed_mps = 13.0;  // winter city: slower overall
  c.street_speed_mps = 7.5;
  c.rush_hour_strength = 0.65;
  return c;
}

City::City(const CityConfig& config, uint64_t seed) : config_(config) {
  Rng rng(seed);
  const int64_t n = config.grid_nodes;
  DOT_CHECK(n >= 4) << "city grid too small";
  Projection proj(config.anchor);

  // Intersections with slight jitter so streets are not perfectly straight.
  std::vector<int64_t> ids(static_cast<size_t>(n * n));
  for (int64_t y = 0; y < n; ++y) {
    for (int64_t x = 0; x < n; ++x) {
      double jx = rng.Uniform(-0.08, 0.08) * config.spacing_meters;
      double jy = rng.Uniform(-0.08, 0.08) * config.spacing_meters;
      GpsPoint gps = proj.ToGps(static_cast<double>(x) * config.spacing_meters + jx,
                                static_cast<double>(y) * config.spacing_meters + jy);
      ids[static_cast<size_t>(y * n + x)] = network_.AddNode(gps);
    }
  }

  auto is_arterial_line = [&](int64_t idx) {
    return idx % config.arterial_every == config.arterial_every / 2;
  };

  // Horizontal and vertical street segments. Arterial rows/columns are never
  // removed (keeps the network connected); side streets drop out with
  // edge_removal_prob.
  auto add_segment = [&](int64_t a, int64_t b, bool arterial) {
    double speed = arterial ? config.arterial_speed_mps : config.street_speed_mps;
    network_.AddBidirectional(a, b, speed);
    arterial_.push_back(arterial);
    arterial_.push_back(arterial);
  };
  for (int64_t y = 0; y < n; ++y) {
    for (int64_t x = 0; x + 1 < n; ++x) {
      bool arterial = is_arterial_line(y);
      if (!arterial && rng.Bernoulli(config.edge_removal_prob)) continue;
      add_segment(ids[static_cast<size_t>(y * n + x)],
                  ids[static_cast<size_t>(y * n + x + 1)], arterial);
    }
  }
  for (int64_t x = 0; x < n; ++x) {
    for (int64_t y = 0; y + 1 < n; ++y) {
      bool arterial = is_arterial_line(x);
      if (!arterial && rng.Bernoulli(config.edge_removal_prob)) continue;
      add_segment(ids[static_cast<size_t>(y * n + x)],
                  ids[static_cast<size_t>((y + 1) * n + x)], arterial);
    }
  }

  // Static per-edge quality factor (pavement, lanes, signal timing...).
  quality_.resize(static_cast<size_t>(network_.num_edges()));
  for (auto& q : quality_) q = rng.Uniform(0.85, 1.15);

  network_.BuildIndex();
}

double City::SpeedFactor(int64_t edge_id, int64_t seconds_of_day) const {
  double hour = static_cast<double>(seconds_of_day) / 3600.0;
  auto gauss = [](double h, double mu, double sigma) {
    double z = (h - mu) / sigma;
    return std::exp(-0.5 * z * z);
  };
  // Morning and evening rush dips; arterials are hit harder (they carry the
  // through traffic), which flips the fastest route across the day.
  double strength = config_.rush_hour_strength;
  double dip = gauss(hour, 8.0, 1.4) + 1.1 * gauss(hour, 18.0, 1.7);
  double factor = IsArterial(edge_id) ? 1.0 - strength * dip
                                      : 1.0 - 0.35 * strength * dip;
  return std::max(0.25, factor);
}

double City::ExpectedEdgeSeconds(int64_t edge_id, int64_t seconds_of_day) const {
  const RoadEdge& e = network_.edge(edge_id);
  double speed = e.free_flow_speed_mps * SpeedFactor(edge_id, seconds_of_day) *
                 EdgeQuality(edge_id);
  return e.length_meters / std::max(0.5, speed);
}

double City::CongestionFactor(int64_t edge_id, int64_t unix_time) const {
  double factor = SpeedFactor(edge_id, SecondsOfDay(unix_time));
  if (incidents_ == nullptr || incidents_->empty()) return factor;
  const RoadEdge& e = network_.edge(edge_id);
  const GpsPoint& a = network_.node(e.from).gps;
  const GpsPoint& b = network_.node(e.to).gps;
  GpsPoint mid{(a.lng + b.lng) / 2, (a.lat + b.lat) / 2};
  factor *= incidents_->SpeedModifier(mid, unix_time);
  return std::max(0.05, factor);
}

double City::ExpectedEdgeSecondsAt(int64_t edge_id, int64_t unix_time) const {
  if (incidents_ == nullptr || incidents_->empty()) {
    // Bitwise-identical to the seconds-of-day path on a clear day.
    return ExpectedEdgeSeconds(edge_id, SecondsOfDay(unix_time));
  }
  const RoadEdge& e = network_.edge(edge_id);
  double speed = e.free_flow_speed_mps * CongestionFactor(edge_id, unix_time) *
                 EdgeQuality(edge_id);
  return e.length_meters / std::max(0.5, speed);
}

}  // namespace dot
