// Synthetic city: road network generation and time-of-day speed model.
//
// This substitutes for the proprietary Didi Chengdu / Harbin GPS datasets
// (see DESIGN.md). The generator produces the phenomena the paper's
// evaluation depends on: a connected street grid with faster arterials,
// rush-hour congestion that changes route choice across the day, and
// heterogeneous per-edge speeds.

#ifndef DOT_SIM_CITY_H_
#define DOT_SIM_CITY_H_

#include <memory>
#include <string>
#include <vector>

#include "geo/geo.h"
#include "road/road_network.h"
#include "util/rng.h"

namespace dot {

class IncidentSchedule;

/// \brief Parameters of a synthetic city.
struct CityConfig {
  std::string name = "synthetic";
  /// Intersections per axis (grid_nodes^2 total).
  int64_t grid_nodes = 18;
  /// Distance between adjacent intersections, meters.
  double spacing_meters = 750;
  /// GPS anchor of the south-west corner.
  GpsPoint anchor{104.00, 30.60};
  /// Probability that a non-arterial street segment is removed (creates
  /// irregular blocks and forces detours).
  double edge_removal_prob = 0.06;
  /// Every k-th row/column is an arterial with higher free-flow speed.
  int64_t arterial_every = 4;
  double arterial_speed_mps = 15.0;  ///< ~54 km/h
  double street_speed_mps = 8.5;     ///< ~31 km/h
  /// Relative strength of the morning/evening congestion dips.
  double rush_hour_strength = 0.6;

  /// A Chengdu-like city: denser, smaller blocks (Table 1: 15.3 km extent).
  static CityConfig ChengduLike();
  /// A Harbin-like city: sparser, larger extent (Table 1: 18.7 km).
  static CityConfig HarbinLike();
};

/// \brief A generated city: the road network plus its speed model.
class City {
 public:
  /// Builds the network deterministically from `seed`.
  City(const CityConfig& config, uint64_t seed);

  const CityConfig& config() const { return config_; }
  const RoadNetwork& network() const { return network_; }

  /// Multiplicative congestion factor in (0, 1] for an edge at a given
  /// second-of-day. Arterials are hit harder at rush hour.
  double SpeedFactor(int64_t edge_id, int64_t seconds_of_day) const;

  /// Expected traversal seconds of an edge entered at `seconds_of_day`.
  double ExpectedEdgeSeconds(int64_t edge_id, int64_t seconds_of_day) const;

  /// Installs (or clears, with nullptr) a disruption schedule. Incidents
  /// modify CongestionFactor / ExpectedEdgeSecondsAt below; the
  /// seconds-of-day overloads above stay incident-blind by design so
  /// clear-day callers are bitwise unaffected.
  void SetIncidents(std::shared_ptr<const IncidentSchedule> schedule) {
    incidents_ = std::move(schedule);
  }
  const IncidentSchedule* incidents() const { return incidents_.get(); }

  /// Congestion factor at an absolute unix time: the time-of-day
  /// SpeedFactor times any active incident modifiers at the edge midpoint,
  /// clamped to >= 0.05 (a closure slows an edge ~20x but never divides by
  /// zero). Equals SpeedFactor(edge, SecondsOfDay(t)) with no schedule.
  double CongestionFactor(int64_t edge_id, int64_t unix_time) const;

  /// Expected traversal seconds at an absolute unix time, incident-aware.
  /// Equals ExpectedEdgeSeconds(edge, SecondsOfDay(t)) with no schedule.
  double ExpectedEdgeSecondsAt(int64_t edge_id, int64_t unix_time) const;

  /// True if the edge belongs to an arterial row/column.
  bool IsArterial(int64_t edge_id) const {
    return arterial_[static_cast<size_t>(edge_id)];
  }

  /// Per-edge static quality multiplier in [0.85, 1.15].
  double EdgeQuality(int64_t edge_id) const {
    return quality_[static_cast<size_t>(edge_id)];
  }

 private:
  CityConfig config_;
  RoadNetwork network_;
  std::vector<bool> arterial_;
  std::vector<double> quality_;
  std::shared_ptr<const IncidentSchedule> incidents_;
};

}  // namespace dot

#endif  // DOT_SIM_CITY_H_
