#include "sim/incidents.h"

#include <algorithm>
#include <cmath>

#include "sim/city.h"
#include "util/rng.h"

namespace dot {

const char* IncidentKindName(IncidentKind kind) {
  switch (kind) {
    case IncidentKind::kClosure: return "closure";
    case IncidentKind::kAccident: return "accident";
    case IncidentKind::kWeather: return "weather";
    case IncidentKind::kSurge: return "surge";
  }
  return "unknown";
}

namespace {

/// Per-kind speed impact at severity 1. Closures collapse below the City's
/// 0.05 serving clamp; the others scale down proportionally.
double KindImpact(IncidentKind kind) {
  switch (kind) {
    case IncidentKind::kClosure: return 0.98;
    case IncidentKind::kAccident: return 0.65;
    case IncidentKind::kWeather: return 0.45;
    case IncidentKind::kSurge: return 0.25;
  }
  return 0;
}

}  // namespace

bool IncidentSchedule::AnyActive(int64_t unix_time) const {
  for (const auto& inc : incidents_) {
    if (inc.Active(unix_time)) return true;
  }
  return false;
}

double IncidentSchedule::SpeedModifier(const GpsPoint& p,
                                       int64_t unix_time) const {
  double modifier = 1.0;
  for (const auto& inc : incidents_) {
    if (!inc.Active(unix_time) || !inc.Covers(p)) continue;
    modifier *= 1.0 - KindImpact(inc.kind) * std::clamp(inc.severity, 0.0, 1.0);
  }
  return std::max(0.02, modifier);
}

double IncidentSchedule::DemandMultiplier(int64_t unix_time) const {
  double m = 1.0;
  for (const auto& inc : incidents_) {
    if (inc.kind != IncidentKind::kSurge || !inc.Active(unix_time)) continue;
    m *= 1.0 + 2.0 * std::clamp(inc.severity, 0.0, 1.0);
  }
  return m;
}

IncidentSchedule IncidentSchedule::Storm(const City& city, int64_t t0,
                                         int64_t t1, uint64_t seed) {
  Rng rng(seed);
  const RoadNetwork& net = city.network();
  auto random_node_gps = [&]() {
    return net.node(rng.UniformInt(0, net.num_nodes() - 1)).gps;
  };
  int64_t mid = t0 + (t1 - t0) / 2;

  IncidentSchedule s;
  Incident weather;
  weather.kind = IncidentKind::kWeather;
  weather.start_unix = t0;
  weather.end_unix = t1;
  weather.radius_meters = 0;  // city-wide
  weather.severity = 0.6;
  s.Add(weather);

  Incident closure;
  closure.kind = IncidentKind::kClosure;
  closure.start_unix = t0;
  closure.end_unix = t1;
  closure.center = random_node_gps();
  closure.radius_meters = 900;
  closure.severity = 1.0;
  s.Add(closure);

  Incident accident;
  accident.kind = IncidentKind::kAccident;
  accident.start_unix = t0 + (t1 - t0) / 4;
  accident.end_unix = t1;
  accident.center = random_node_gps();
  accident.radius_meters = 1400;
  accident.severity = 0.8;
  s.Add(accident);

  Incident surge;
  surge.kind = IncidentKind::kSurge;
  surge.start_unix = mid;
  surge.end_unix = t1;
  surge.center = random_node_gps();
  surge.radius_meters = 2500;
  surge.severity = 0.7;
  s.Add(surge);
  return s;
}

}  // namespace dot
