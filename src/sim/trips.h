// Trip demand, route choice (with deliberate outlier detours) and GPS
// sampling on top of a synthetic City.
//
// The generator reproduces the data phenomena the paper's evaluation relies
// on (Fig. 1): several plausible routes per OD pair whose attractiveness
// depends on departure time, a minority of outlier detours with much larger
// travel times, and irregular noisy GPS sampling.

#ifndef DOT_SIM_TRIPS_H_
#define DOT_SIM_TRIPS_H_

#include <vector>

#include "geo/trajectory.h"
#include "sim/city.h"

namespace dot {

/// \brief Parameters of a generated trip set.
struct TripConfig {
  int64_t num_trips = 2000;
  /// Unix timestamp of day 0, 00:00.
  int64_t start_unix = 1541030400;  // 2018-11-01 (Chengdu-like default)
  int64_t num_days = 10;

  /// Fraction of trips that take a long detour via an unrelated waypoint
  /// (the paper's outlier trajectories, e.g. T4 via point B in Fig. 1).
  double outlier_prob = 0.08;
  /// A detour qualifies as an outlier when its cost exceeds this multiple of
  /// the best route's cost.
  double detour_min_factor = 1.6;

  /// Number of candidate routes considered by normal drivers.
  int64_t route_candidates = 3;
  /// Softmax temperature (seconds) over candidate costs; lower = greedier.
  double route_choice_temp = 90.0;
  /// Drivers' perceived cost multiplier for arterials vs side streets:
  /// habit and simplicity make arterials feel cheaper than they are. This
  /// drives realized routes away from the true time-optimal path — the gap
  /// that makes shortest-path oracles inaccurate (paper Fig. 1).
  double perceived_arterial_factor = 0.72;
  double perceived_street_factor = 1.35;

  /// GPS sampler: mean gap, uniform jitter, and positional noise.
  double gps_interval_mean = 29.0;
  double gps_interval_jitter = 12.0;
  double gps_noise_meters = 10.0;

  /// OD pairs are resampled until the straight-line distance lies in range.
  double min_od_meters = 1300.0;
  double max_od_meters = 5500.0;

  /// Per-trip multiplicative speed noise (driver behaviour).
  double trip_speed_noise = 0.12;
  /// Per-edge intersection/signal delay range, seconds (streets; arterials
  /// use half of it).
  double intersection_delay_min = 5.0;
  double intersection_delay_max = 30.0;

  /// Chengdu-like trip mix matching Table 1 (Nov 1-10 2018, 29 s sampling).
  static TripConfig ChengduLike();
  /// Harbin-like trip mix (Jan 3-7 2015, 44 s sampling).
  static TripConfig HarbinLike();
};

/// \brief A simulated trip: trajectory plus generation ground truth.
struct SimulatedTrip {
  Trajectory trajectory;
  std::vector<int64_t> edge_path;  ///< edges actually driven
  bool is_outlier = false;
  OdtInput odt;
};

/// \brief Samples trips from a City.
class TripGenerator {
 public:
  TripGenerator(const City* city, uint64_t seed);

  /// Generates `config.num_trips` trips. Trajectories are raw (pre-filter);
  /// apply TrajectoryFilter afterwards as in Sec. 6.1.
  std::vector<SimulatedTrip> Generate(const TripConfig& config);

  /// Samples `n` ODT queries from the same demand model as Generate —
  /// hotspot-weighted OD pairs within the configured distance band, noisy
  /// GPS endpoints, departure times following the daily demand profile —
  /// without routing or driving them. This is the cheap query stream the
  /// serving load generator replays: realistic OD/ToD traffic at rates far
  /// beyond what full trajectory simulation could produce.
  std::vector<OdtInput> GenerateDemand(int64_t n, const TripConfig& config);

  /// Samples a departure second-of-day from the daily demand profile
  /// (morning/evening peaks). Exposed for tests.
  int64_t SampleSecondsOfDay();

 private:
  int64_t SampleNodeNearHotspot();
  int64_t SampleOrigin();
  int64_t SampleDestination(int64_t origin, const TripConfig& config);
  /// Picks the driven route: usually one of the k best under expected
  /// departure-time costs (incident-aware when the City carries a
  /// schedule), occasionally an outlier detour.
  std::vector<int64_t> ChooseRoute(int64_t from, int64_t to,
                                   int64_t depart_unix,
                                   const TripConfig& config, bool* is_outlier);
  Trajectory Drive(const std::vector<int64_t>& edge_path, int64_t depart_unix,
                   const TripConfig& config);

  const City* city_;
  Rng rng_;
  std::vector<int64_t> hotspots_;  // node ids
};

}  // namespace dot

#endif  // DOT_SIM_TRIPS_H_
