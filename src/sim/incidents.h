// Time-windowed disruption events layered on top of a City's congestion
// model (DESIGN.md §5k): road closures, accident slowdowns, weather, and
// surge demand. Incidents are what the continual fine-tuning loop adapts
// to — a stale oracle trained on clear-day trajectories mispredicts inside
// an incident window, and the adaptation round closes that gap.
//
// An installed schedule modifies City::CongestionFactor multiplicatively;
// with no schedule (or no active incident) every query reduces to the
// clear-day model bitwise, so existing determinism tests are unaffected.

#ifndef DOT_SIM_INCIDENTS_H_
#define DOT_SIM_INCIDENTS_H_

#include <cstdint>
#include <vector>

#include "geo/geo.h"

namespace dot {

class City;

enum class IncidentKind {
  kClosure,   ///< road closed: speed collapses to the clamp floor
  kAccident,  ///< localized heavy slowdown
  kWeather,   ///< broad moderate slowdown (rain / snow), usually city-wide
  kSurge,     ///< demand spike (event letting out); mild slowdown + extra trips
};

const char* IncidentKindName(IncidentKind kind);

/// \brief One disruption: a kind, a half-open time window [start_unix,
/// end_unix), a circular footprint, and a severity in [0, 1].
struct Incident {
  IncidentKind kind = IncidentKind::kAccident;
  int64_t start_unix = 0;
  int64_t end_unix = 0;
  GpsPoint center{0, 0};
  /// Footprint radius; <= 0 means city-wide (e.g. weather).
  double radius_meters = 0;
  double severity = 0.5;

  /// Half-open: active at start_unix, inactive at end_unix.
  bool Active(int64_t unix_time) const {
    return unix_time >= start_unix && unix_time < end_unix;
  }
  bool Covers(const GpsPoint& p) const {
    return radius_meters <= 0 || DistanceMeters(center, p) <= radius_meters;
  }
};

/// \brief An immutable set of incidents a City consults per (point, time)
/// query. Install via City::SetIncidents.
class IncidentSchedule {
 public:
  void Add(const Incident& incident) { incidents_.push_back(incident); }
  const std::vector<Incident>& incidents() const { return incidents_; }
  bool empty() const { return incidents_.empty(); }

  /// True if any incident window contains `unix_time` (footprint ignored).
  bool AnyActive(int64_t unix_time) const;

  /// Multiplicative speed modifier at point `p` and time `unix_time`; 1.0
  /// when clear. Active covering incidents compound; the product is floored
  /// at 0.02 so stacked incidents cannot drive speeds negative (the City
  /// applies its own serving clamp on top).
  double SpeedModifier(const GpsPoint& p, int64_t unix_time) const;

  /// Demand multiplier >= 1 from active surge incidents (footprint
  /// ignored: surges move trip *counts*, not per-edge speeds).
  double DemandMultiplier(int64_t unix_time) const;

  /// A canned "incident storm" over [t0, t1) for benches and chaos tests:
  /// a city-wide weather event, an arterial closure, an accident, and a
  /// surge in the second half. Placement is deterministic under `seed`.
  static IncidentSchedule Storm(const City& city, int64_t t0, int64_t t1,
                                uint64_t seed);

 private:
  std::vector<Incident> incidents_;
};

}  // namespace dot

#endif  // DOT_SIM_INCIDENTS_H_
