#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dot {
namespace train {

double GradNorm(const std::vector<Tensor>& params) {
  double sq = 0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    for (float g : p.grad_vec()) sq += static_cast<double>(g) * g;
  }
  return std::sqrt(sq);
}

double ClipGradNorm(std::vector<Tensor> params, float max_norm) {
  double norm = GradNorm(params);
  if (max_norm > 0 && std::isfinite(norm) &&
      norm > static_cast<double>(max_norm)) {
    float scale = static_cast<float>(static_cast<double>(max_norm) / norm);
    for (auto& p : params) {
      if (!p.has_grad()) continue;
      float* g = p.grad();
      for (int64_t i = 0; i < p.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

void TrainReport::Accumulate(const TrainReport& other) {
  epochs_run += other.epochs_run;
  steps += other.steps;
  skipped_steps += other.skipped_steps;
  rollbacks += other.rollbacks;
  early_stopped = early_stopped || other.early_stopped;
  epoch_losses.insert(epoch_losses.end(), other.epoch_losses.begin(),
                      other.epoch_losses.end());
}

namespace {

/// Fault tolerance for one stage's step loop (DESIGN.md §5d): a step whose
/// loss or gradient norm is non-finite never reaches the optimizer; after
/// `rollback_after` *consecutive* poisoned steps the parameters are
/// restored from the last-good snapshot, which is refreshed at every epoch
/// boundary that saw no poisoned step.
class TrainingGuard {
 public:
  TrainingGuard(const std::string& stage, std::vector<Tensor> params,
                int64_t rollback_after)
      : stage_(stage),
        params_(std::move(params)),
        rollback_after_(rollback_after),
        skipped_(obs::MetricsRegistry::Get().GetCounter(
            "dot_train_skipped_steps_total", {{"stage", stage}})),
        rollbacks_(obs::MetricsRegistry::Get().GetCounter(
            "dot_train_rollbacks_total", {{"stage", stage}})) {
    TakeSnapshot();
  }

  void StepOk() { consecutive_bad_ = 0; }

  /// Records a poisoned (skipped) step; rolls back and returns true once
  /// the consecutive-bad budget is exhausted.
  bool StepBad(const char* what) {
    skipped_->Increment();
    ++skipped_count_;
    epoch_had_bad_ = true;
    ++consecutive_bad_;
    DOT_LOG_WARN << "[" << stage_ << "] skipping step: non-finite " << what
                 << " (" << consecutive_bad_ << " consecutive)";
    if (rollback_after_ > 0 && consecutive_bad_ >= rollback_after_) {
      for (size_t i = 0; i < params_.size(); ++i) {
        params_[i].CopyFrom(snapshot_[i]);
      }
      rollbacks_->Increment();
      ++rollback_count_;
      consecutive_bad_ = 0;
      DOT_LOG_WARN << "[" << stage_ << "] rolled back to last-good weights";
      return true;
    }
    return false;
  }

  /// Call once per epoch: refreshes the snapshot only if the whole epoch
  /// was healthy (a poisoned epoch must not become the rollback target).
  void EndEpoch() {
    if (!epoch_had_bad_) TakeSnapshot();
    epoch_had_bad_ = false;
  }

  int64_t rollback_count() const { return rollback_count_; }
  int64_t skipped_count() const { return skipped_count_; }

 private:
  void TakeSnapshot() {
    snapshot_.clear();
    snapshot_.reserve(params_.size());
    for (const auto& p : params_) snapshot_.push_back(p.ToVector());
  }

  const std::string stage_;
  std::vector<Tensor> params_;
  int64_t rollback_after_;
  int64_t consecutive_bad_ = 0;
  int64_t rollback_count_ = 0;
  int64_t skipped_count_ = 0;
  bool epoch_had_bad_ = false;
  std::vector<std::vector<float>> snapshot_;
  obs::Counter* skipped_;
  obs::Counter* rollbacks_;
};

/// Per-epoch training series, one labeled set per stage.
struct StageMetrics {
  explicit StageMetrics(const std::string& stage) {
    auto& reg = obs::MetricsRegistry::Get();
    std::vector<std::pair<std::string, std::string>> labels = {
        {"stage", stage}};
    epoch_loss = reg.GetGauge("dot_train_epoch_loss", labels);
    epoch_time_s = reg.GetGauge("dot_train_epoch_time_seconds", labels);
    grad_norm = reg.GetGauge("dot_train_grad_norm", labels);
    epochs_total = reg.GetCounter("dot_train_epochs_total", labels);
    steps_total = reg.GetCounter("dot_train_steps_total", labels);
  }
  obs::Gauge* epoch_loss;
  obs::Gauge* epoch_time_s;
  obs::Gauge* grad_norm;
  obs::Counter* epochs_total;
  obs::Counter* steps_total;
};

}  // namespace

TrainReport Trainer::Run(TrainTask* task, Rng* rng) {
  TrainReport report;
  const int64_t n = task->NumExamples();
  if (n <= 0 || config_.epochs <= 0) return report;
  const int64_t b = std::min<int64_t>(config_.batch_size, n);

  std::vector<int64_t> order(static_cast<size_t>(n));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);

  StageMetrics sm(config_.stage);
  TrainingGuard guard(config_.stage, task->Parameters(),
                      config_.rollback_after_bad_steps);
  // The DOT_FAILPOINT macro caches its registry pointer per call site,
  // which would pin the first stage's name here — resolve per Run instead.
  fail::Failpoint* nan_fp =
      fail::Get("train." + config_.stage + ".nan_loss");

  std::vector<int64_t> batch(static_cast<size_t>(b));
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("Trainer::epoch");
    Stopwatch epoch_sw;
    task->BeginEpoch(epoch);
    rng->Shuffle(&order);
    double loss_sum = 0;
    int64_t batches = 0;
    for (size_t start = 0; start + static_cast<size_t>(b) <= order.size();
         start += static_cast<size_t>(b)) {
      std::copy(order.begin() + static_cast<int64_t>(start),
                order.begin() + static_cast<int64_t>(start) + b, batch.begin());
      double loss_val = task->Forward(batch);
      if (nan_fp->Fire() == fail::Action::kNan) {
        loss_val = std::numeric_limits<double>::quiet_NaN();
      }
      if (!std::isfinite(loss_val)) {
        guard.StepBad("loss");
        continue;
      }
      task->Backward();
      double gnorm = ClipGradNorm(task->Parameters(), config_.grad_clip_norm);
      if (!std::isfinite(gnorm)) {
        guard.StepBad("gradient norm");
        continue;
      }
      task->OptimizerStep();
      guard.StepOk();
      loss_sum += loss_val;
      ++batches;
    }
    guard.EndEpoch();
    double mean_loss =
        batches > 0 ? loss_sum / static_cast<double>(batches) : 0;
    ++report.epochs_run;
    report.steps += batches;
    report.epoch_losses.push_back(mean_loss);
    sm.epoch_loss->Set(mean_loss);
    sm.epoch_time_s->Set(epoch_sw.ElapsedSeconds());
    sm.epochs_total->Increment();
    sm.steps_total->Increment(batches);
    // Grad norm walks every parameter; skip the walk when metrics are off.
    if (obs::MetricsEnabled()) {
      sm.grad_norm->Set(GradNorm(task->Parameters()));
    }
    if (config_.verbose) {
      DOT_LOG_INFO << "[" << config_.stage << "] epoch " << epoch + 1 << "/"
                   << config_.epochs << " mean loss " << mean_loss;
    }
    if (!task->EndEpoch(epoch, mean_loss)) {
      report.early_stopped = true;
      break;
    }
  }
  report.skipped_steps = guard.skipped_count();
  report.rollbacks = guard.rollback_count();
  return report;
}

}  // namespace train
}  // namespace dot
