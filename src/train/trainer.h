// Reusable training loop (DESIGN.md §5k): epoch/batch iteration with the
// PR-3 fault-tolerance machinery — non-finite loss/gradient skip, global
// gradient-norm clipping, last-good-snapshot rollback — factored out of
// DotOracle so offline stage training and online continual fine-tuning run
// the exact same hardened loop.
//
// A stage implements TrainTask (forward/backward/step over index batches);
// Trainer owns everything stage-agnostic: shuffling, the step guard, the
// per-epoch observability gauges (labeled `dot_train_*{stage=...}`), and
// the `train.<stage>.nan_loss` failpoint. The loop structure replicates
// the pre-refactor DotOracle loops operation-for-operation so fixed-seed
// loss trajectories are bitwise unchanged (tests/trainer_test.cc).

#ifndef DOT_TRAIN_TRAINER_H_
#define DOT_TRAIN_TRAINER_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace dot {
namespace train {

/// L2 norm of the accumulated gradients of `params` (training telemetry).
double GradNorm(const std::vector<Tensor>& params);

/// Scales every gradient so the global L2 norm is at most `max_norm`
/// (0 = off). Returns the pre-clip norm; a non-finite norm is returned
/// unscaled so callers can treat the step as poisoned.
double ClipGradNorm(std::vector<Tensor> params, float max_norm);

/// \brief One trainable stage, driven by Trainer::Run.
///
/// The split between Forward and Backward matters for fault tolerance: a
/// step whose loss is non-finite is skipped *before* Backward, so a
/// poisoned forward pass never touches the gradients.
class TrainTask {
 public:
  virtual ~TrainTask() = default;

  /// Number of training examples; Trainer shuffles [0, NumExamples).
  virtual int64_t NumExamples() const = 0;

  /// The parameters the guard snapshots and the clip walks.
  virtual std::vector<Tensor> Parameters() = 0;

  /// Called at the top of every epoch, before the shuffle (learning-rate
  /// schedules live here).
  virtual void BeginEpoch(int64_t epoch) { (void)epoch; }

  /// Zeroes gradients, runs the forward pass over `batch` (indices into
  /// [0, NumExamples)), and returns the loss value. The loss tensor must be
  /// retained for a subsequent Backward call.
  virtual double Forward(const std::vector<int64_t>& batch) = 0;

  /// Backpropagates the loss retained by the last Forward.
  virtual void Backward() = 0;

  /// Applies one optimizer step (the task owns its optimizer).
  virtual void OptimizerStep() = 0;

  /// Called after the epoch's guard/metrics bookkeeping with the epoch's
  /// mean loss. Return false to stop training early (validation-based
  /// early stopping lives here).
  virtual bool EndEpoch(int64_t epoch, double mean_loss) {
    (void)epoch;
    (void)mean_loss;
    return true;
  }
};

/// \brief Stage-agnostic knobs of one Trainer::Run.
struct TrainerConfig {
  /// Stage tag: metric label ({stage="..."}), failpoint name
  /// (`train.<stage>.nan_loss`), and log prefix. "stage1" / "stage2" /
  /// "finetune".
  std::string stage = "stage1";
  int64_t epochs = 1;
  int64_t batch_size = 8;
  /// L2 gradient-norm clip applied before every optimizer step (0 = off).
  float grad_clip_norm = 0.0f;
  /// Consecutive poisoned steps before rolling back to the last-good
  /// snapshot (0 = skip-only, never roll back).
  int64_t rollback_after_bad_steps = 3;
  bool verbose = false;
};

/// \brief What one Trainer::Run did (diagnostics + parity tests).
struct TrainReport {
  int64_t epochs_run = 0;
  int64_t steps = 0;          ///< optimizer steps actually applied
  int64_t skipped_steps = 0;  ///< non-finite steps the optimizer never saw
  int64_t rollbacks = 0;      ///< last-good restores
  bool early_stopped = false;
  /// Mean loss of each completed epoch, in order (bitwise-stable for a
  /// fixed seed; the parity test's ground truth).
  std::vector<double> epoch_losses;

  double last_epoch_loss() const {
    return epoch_losses.empty() ? 0.0 : epoch_losses.back();
  }
  /// Merges `other` (a later Run over the same logical job) into this.
  void Accumulate(const TrainReport& other);
};

/// \brief The hardened epoch/batch loop, shared by every stage.
class Trainer {
 public:
  explicit Trainer(const TrainerConfig& config) : config_(config) {}

  /// Runs `config.epochs` epochs of `task`. `rng` drives the per-epoch
  /// shuffle (callers pass their model's stream so trajectories reproduce).
  TrainReport Run(TrainTask* task, Rng* rng);

 private:
  TrainerConfig config_;
};

}  // namespace train
}  // namespace dot

#endif  // DOT_TRAIN_TRAINER_H_
