# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/road_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/diffusion_test[1]_include.cmake")
include("/root/repo/build/tests/unet_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/dot_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_service_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/attention_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
