file(REMOVE_RECURSE
  "CMakeFiles/dot_oracle_test.dir/dot_oracle_test.cc.o"
  "CMakeFiles/dot_oracle_test.dir/dot_oracle_test.cc.o.d"
  "dot_oracle_test"
  "dot_oracle_test.pdb"
  "dot_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
