# Empty dependencies file for oracle_service_test.
# This may be replaced when dependencies are built.
