file(REMOVE_RECURSE
  "CMakeFiles/oracle_service_test.dir/oracle_service_test.cc.o"
  "CMakeFiles/oracle_service_test.dir/oracle_service_test.cc.o.d"
  "oracle_service_test"
  "oracle_service_test.pdb"
  "oracle_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
