file(REMOVE_RECURSE
  "CMakeFiles/road_test.dir/road_test.cc.o"
  "CMakeFiles/road_test.dir/road_test.cc.o.d"
  "road_test"
  "road_test.pdb"
  "road_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
