file(REMOVE_RECURSE
  "CMakeFiles/unet_test.dir/unet_test.cc.o"
  "CMakeFiles/unet_test.dir/unet_test.cc.o.d"
  "unet_test"
  "unet_test.pdb"
  "unet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
