# Empty compiler generated dependencies file for unet_test.
# This may be replaced when dependencies are built.
