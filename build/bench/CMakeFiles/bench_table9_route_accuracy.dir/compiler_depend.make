# Empty compiler generated dependencies file for bench_table9_route_accuracy.
# This may be replaced when dependencies are built.
