# Empty compiler generated dependencies file for dot_bench_common.
# This may be replaced when dependencies are built.
