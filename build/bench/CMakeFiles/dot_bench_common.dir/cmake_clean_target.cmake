file(REMOVE_RECURSE
  "libdot_bench_common.a"
)
