file(REMOVE_RECURSE
  "CMakeFiles/dot_bench_common.dir/common.cc.o"
  "CMakeFiles/dot_bench_common.dir/common.cc.o.d"
  "libdot_bench_common.a"
  "libdot_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
