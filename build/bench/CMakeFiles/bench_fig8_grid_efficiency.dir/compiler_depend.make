# Empty compiler generated dependencies file for bench_fig8_grid_efficiency.
# This may be replaced when dependencies are built.
