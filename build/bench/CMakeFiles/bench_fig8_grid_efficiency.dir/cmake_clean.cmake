file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_grid_efficiency.dir/bench_fig8_grid_efficiency.cc.o"
  "CMakeFiles/bench_fig8_grid_efficiency.dir/bench_fig8_grid_efficiency.cc.o.d"
  "bench_fig8_grid_efficiency"
  "bench_fig8_grid_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_grid_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
