
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_temporal.cc" "bench/CMakeFiles/bench_fig12_temporal.dir/bench_fig12_temporal.cc.o" "gcc" "bench/CMakeFiles/bench_fig12_temporal.dir/bench_fig12_temporal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dot_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dot_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dot_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/dot_road.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/dot_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
