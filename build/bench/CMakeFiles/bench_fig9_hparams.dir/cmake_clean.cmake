file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_hparams.dir/bench_fig9_hparams.cc.o"
  "CMakeFiles/bench_fig9_hparams.dir/bench_fig9_hparams.cc.o.d"
  "bench_fig9_hparams"
  "bench_fig9_hparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
