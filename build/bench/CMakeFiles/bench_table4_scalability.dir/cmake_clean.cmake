file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_scalability.dir/bench_table4_scalability.cc.o"
  "CMakeFiles/bench_table4_scalability.dir/bench_table4_scalability.cc.o.d"
  "bench_table4_scalability"
  "bench_table4_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
