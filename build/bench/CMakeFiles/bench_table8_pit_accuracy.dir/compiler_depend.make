# Empty compiler generated dependencies file for bench_table8_pit_accuracy.
# This may be replaced when dependencies are built.
