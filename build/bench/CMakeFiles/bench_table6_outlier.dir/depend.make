# Empty dependencies file for bench_table6_outlier.
# This may be replaced when dependencies are built.
