file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_outlier.dir/bench_table6_outlier.cc.o"
  "CMakeFiles/bench_table6_outlier.dir/bench_table6_outlier.cc.o.d"
  "bench_table6_outlier"
  "bench_table6_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
