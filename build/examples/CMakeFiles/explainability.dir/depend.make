# Empty dependencies file for explainability.
# This may be replaced when dependencies are built.
