# Empty compiler generated dependencies file for outlier_robustness.
# This may be replaced when dependencies are built.
