# Empty dependencies file for fleet_pricing.
# This may be replaced when dependencies are built.
