file(REMOVE_RECURSE
  "CMakeFiles/fleet_pricing.dir/fleet_pricing.cpp.o"
  "CMakeFiles/fleet_pricing.dir/fleet_pricing.cpp.o.d"
  "fleet_pricing"
  "fleet_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
