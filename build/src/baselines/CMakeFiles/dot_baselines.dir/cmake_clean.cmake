file(REMOVE_RECURSE
  "CMakeFiles/dot_baselines.dir/cell_history.cc.o"
  "CMakeFiles/dot_baselines.dir/cell_history.cc.o.d"
  "CMakeFiles/dot_baselines.dir/deepod.cc.o"
  "CMakeFiles/dot_baselines.dir/deepod.cc.o.d"
  "CMakeFiles/dot_baselines.dir/embedding.cc.o"
  "CMakeFiles/dot_baselines.dir/embedding.cc.o.d"
  "CMakeFiles/dot_baselines.dir/oracle.cc.o"
  "CMakeFiles/dot_baselines.dir/oracle.cc.o.d"
  "CMakeFiles/dot_baselines.dir/outlier.cc.o"
  "CMakeFiles/dot_baselines.dir/outlier.cc.o.d"
  "CMakeFiles/dot_baselines.dir/path_tte.cc.o"
  "CMakeFiles/dot_baselines.dir/path_tte.cc.o.d"
  "CMakeFiles/dot_baselines.dir/regression.cc.o"
  "CMakeFiles/dot_baselines.dir/regression.cc.o.d"
  "CMakeFiles/dot_baselines.dir/routers.cc.o"
  "CMakeFiles/dot_baselines.dir/routers.cc.o.d"
  "CMakeFiles/dot_baselines.dir/temp.cc.o"
  "CMakeFiles/dot_baselines.dir/temp.cc.o.d"
  "libdot_baselines.a"
  "libdot_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
