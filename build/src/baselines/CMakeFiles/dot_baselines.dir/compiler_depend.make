# Empty compiler generated dependencies file for dot_baselines.
# This may be replaced when dependencies are built.
