
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cell_history.cc" "src/baselines/CMakeFiles/dot_baselines.dir/cell_history.cc.o" "gcc" "src/baselines/CMakeFiles/dot_baselines.dir/cell_history.cc.o.d"
  "/root/repo/src/baselines/deepod.cc" "src/baselines/CMakeFiles/dot_baselines.dir/deepod.cc.o" "gcc" "src/baselines/CMakeFiles/dot_baselines.dir/deepod.cc.o.d"
  "/root/repo/src/baselines/embedding.cc" "src/baselines/CMakeFiles/dot_baselines.dir/embedding.cc.o" "gcc" "src/baselines/CMakeFiles/dot_baselines.dir/embedding.cc.o.d"
  "/root/repo/src/baselines/oracle.cc" "src/baselines/CMakeFiles/dot_baselines.dir/oracle.cc.o" "gcc" "src/baselines/CMakeFiles/dot_baselines.dir/oracle.cc.o.d"
  "/root/repo/src/baselines/outlier.cc" "src/baselines/CMakeFiles/dot_baselines.dir/outlier.cc.o" "gcc" "src/baselines/CMakeFiles/dot_baselines.dir/outlier.cc.o.d"
  "/root/repo/src/baselines/path_tte.cc" "src/baselines/CMakeFiles/dot_baselines.dir/path_tte.cc.o" "gcc" "src/baselines/CMakeFiles/dot_baselines.dir/path_tte.cc.o.d"
  "/root/repo/src/baselines/regression.cc" "src/baselines/CMakeFiles/dot_baselines.dir/regression.cc.o" "gcc" "src/baselines/CMakeFiles/dot_baselines.dir/regression.cc.o.d"
  "/root/repo/src/baselines/routers.cc" "src/baselines/CMakeFiles/dot_baselines.dir/routers.cc.o" "gcc" "src/baselines/CMakeFiles/dot_baselines.dir/routers.cc.o.d"
  "/root/repo/src/baselines/temp.cc" "src/baselines/CMakeFiles/dot_baselines.dir/temp.cc.o" "gcc" "src/baselines/CMakeFiles/dot_baselines.dir/temp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/dot_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/dot_road.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dot_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/dot_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
