file(REMOVE_RECURSE
  "libdot_baselines.a"
)
