file(REMOVE_RECURSE
  "CMakeFiles/dot_util.dir/logging.cc.o"
  "CMakeFiles/dot_util.dir/logging.cc.o.d"
  "CMakeFiles/dot_util.dir/status.cc.o"
  "CMakeFiles/dot_util.dir/status.cc.o.d"
  "CMakeFiles/dot_util.dir/table.cc.o"
  "CMakeFiles/dot_util.dir/table.cc.o.d"
  "CMakeFiles/dot_util.dir/thread_pool.cc.o"
  "CMakeFiles/dot_util.dir/thread_pool.cc.o.d"
  "libdot_util.a"
  "libdot_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
