file(REMOVE_RECURSE
  "libdot_road.a"
)
