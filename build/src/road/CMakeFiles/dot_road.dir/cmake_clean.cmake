file(REMOVE_RECURSE
  "CMakeFiles/dot_road.dir/road_network.cc.o"
  "CMakeFiles/dot_road.dir/road_network.cc.o.d"
  "CMakeFiles/dot_road.dir/segment_stats.cc.o"
  "CMakeFiles/dot_road.dir/segment_stats.cc.o.d"
  "libdot_road.a"
  "libdot_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
