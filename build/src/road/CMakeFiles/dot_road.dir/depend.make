# Empty dependencies file for dot_road.
# This may be replaced when dependencies are built.
