file(REMOVE_RECURSE
  "libdot_core.a"
)
