file(REMOVE_RECURSE
  "CMakeFiles/dot_core.dir/diffusion.cc.o"
  "CMakeFiles/dot_core.dir/diffusion.cc.o.d"
  "CMakeFiles/dot_core.dir/dot_oracle.cc.o"
  "CMakeFiles/dot_core.dir/dot_oracle.cc.o.d"
  "CMakeFiles/dot_core.dir/estimator.cc.o"
  "CMakeFiles/dot_core.dir/estimator.cc.o.d"
  "CMakeFiles/dot_core.dir/oracle_service.cc.o"
  "CMakeFiles/dot_core.dir/oracle_service.cc.o.d"
  "CMakeFiles/dot_core.dir/unet.cc.o"
  "CMakeFiles/dot_core.dir/unet.cc.o.d"
  "libdot_core.a"
  "libdot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
