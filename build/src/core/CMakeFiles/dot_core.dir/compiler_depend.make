# Empty compiler generated dependencies file for dot_core.
# This may be replaced when dependencies are built.
