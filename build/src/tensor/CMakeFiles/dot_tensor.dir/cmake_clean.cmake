file(REMOVE_RECURSE
  "CMakeFiles/dot_tensor.dir/nn.cc.o"
  "CMakeFiles/dot_tensor.dir/nn.cc.o.d"
  "CMakeFiles/dot_tensor.dir/ops_basic.cc.o"
  "CMakeFiles/dot_tensor.dir/ops_basic.cc.o.d"
  "CMakeFiles/dot_tensor.dir/ops_conv.cc.o"
  "CMakeFiles/dot_tensor.dir/ops_conv.cc.o.d"
  "CMakeFiles/dot_tensor.dir/ops_linalg.cc.o"
  "CMakeFiles/dot_tensor.dir/ops_linalg.cc.o.d"
  "CMakeFiles/dot_tensor.dir/ops_norm.cc.o"
  "CMakeFiles/dot_tensor.dir/ops_norm.cc.o.d"
  "CMakeFiles/dot_tensor.dir/optim.cc.o"
  "CMakeFiles/dot_tensor.dir/optim.cc.o.d"
  "CMakeFiles/dot_tensor.dir/tensor.cc.o"
  "CMakeFiles/dot_tensor.dir/tensor.cc.o.d"
  "libdot_tensor.a"
  "libdot_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
