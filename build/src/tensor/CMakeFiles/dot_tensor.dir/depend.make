# Empty dependencies file for dot_tensor.
# This may be replaced when dependencies are built.
