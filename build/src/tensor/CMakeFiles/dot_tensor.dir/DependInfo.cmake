
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/nn.cc" "src/tensor/CMakeFiles/dot_tensor.dir/nn.cc.o" "gcc" "src/tensor/CMakeFiles/dot_tensor.dir/nn.cc.o.d"
  "/root/repo/src/tensor/ops_basic.cc" "src/tensor/CMakeFiles/dot_tensor.dir/ops_basic.cc.o" "gcc" "src/tensor/CMakeFiles/dot_tensor.dir/ops_basic.cc.o.d"
  "/root/repo/src/tensor/ops_conv.cc" "src/tensor/CMakeFiles/dot_tensor.dir/ops_conv.cc.o" "gcc" "src/tensor/CMakeFiles/dot_tensor.dir/ops_conv.cc.o.d"
  "/root/repo/src/tensor/ops_linalg.cc" "src/tensor/CMakeFiles/dot_tensor.dir/ops_linalg.cc.o" "gcc" "src/tensor/CMakeFiles/dot_tensor.dir/ops_linalg.cc.o.d"
  "/root/repo/src/tensor/ops_norm.cc" "src/tensor/CMakeFiles/dot_tensor.dir/ops_norm.cc.o" "gcc" "src/tensor/CMakeFiles/dot_tensor.dir/ops_norm.cc.o.d"
  "/root/repo/src/tensor/optim.cc" "src/tensor/CMakeFiles/dot_tensor.dir/optim.cc.o" "gcc" "src/tensor/CMakeFiles/dot_tensor.dir/optim.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/dot_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/dot_tensor.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dot_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
