file(REMOVE_RECURSE
  "libdot_tensor.a"
)
