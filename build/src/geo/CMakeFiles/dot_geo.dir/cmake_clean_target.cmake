file(REMOVE_RECURSE
  "libdot_geo.a"
)
