# Empty dependencies file for dot_geo.
# This may be replaced when dependencies are built.
