file(REMOVE_RECURSE
  "CMakeFiles/dot_geo.dir/geo.cc.o"
  "CMakeFiles/dot_geo.dir/geo.cc.o.d"
  "CMakeFiles/dot_geo.dir/grid.cc.o"
  "CMakeFiles/dot_geo.dir/grid.cc.o.d"
  "CMakeFiles/dot_geo.dir/io.cc.o"
  "CMakeFiles/dot_geo.dir/io.cc.o.d"
  "CMakeFiles/dot_geo.dir/pit.cc.o"
  "CMakeFiles/dot_geo.dir/pit.cc.o.d"
  "CMakeFiles/dot_geo.dir/trajectory.cc.o"
  "CMakeFiles/dot_geo.dir/trajectory.cc.o.d"
  "libdot_geo.a"
  "libdot_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
