file(REMOVE_RECURSE
  "CMakeFiles/dot_sim.dir/city.cc.o"
  "CMakeFiles/dot_sim.dir/city.cc.o.d"
  "CMakeFiles/dot_sim.dir/trips.cc.o"
  "CMakeFiles/dot_sim.dir/trips.cc.o.d"
  "libdot_sim.a"
  "libdot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
