# Empty dependencies file for dot_sim.
# This may be replaced when dependencies are built.
