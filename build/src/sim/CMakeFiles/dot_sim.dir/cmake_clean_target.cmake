file(REMOVE_RECURSE
  "libdot_sim.a"
)
