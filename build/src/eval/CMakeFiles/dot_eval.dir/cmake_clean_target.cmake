file(REMOVE_RECURSE
  "libdot_eval.a"
)
