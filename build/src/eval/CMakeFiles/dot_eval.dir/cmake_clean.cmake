file(REMOVE_RECURSE
  "CMakeFiles/dot_eval.dir/dataset.cc.o"
  "CMakeFiles/dot_eval.dir/dataset.cc.o.d"
  "CMakeFiles/dot_eval.dir/metrics.cc.o"
  "CMakeFiles/dot_eval.dir/metrics.cc.o.d"
  "libdot_eval.a"
  "libdot_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
