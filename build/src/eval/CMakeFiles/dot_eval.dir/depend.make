# Empty dependencies file for dot_eval.
# This may be replaced when dependencies are built.
