// Tests for the eval module: metrics and dataset splitting.

#include <gtest/gtest.h>

#include "eval/dataset.h"
#include "geo/pit.h"
#include "eval/metrics.h"

namespace dot {
namespace {

TEST(MetricsTest, EmptyAccumulatorIsZero) {
  MetricsAccumulator acc;
  RegressionMetrics m = acc.Finalize();
  EXPECT_EQ(m.count, 0);
  EXPECT_EQ(m.rmse, 0);
  EXPECT_EQ(m.mae, 0);
  EXPECT_EQ(m.mape, 0);
}

TEST(MetricsTest, KnownValues) {
  MetricsAccumulator acc;
  acc.Add(12, 10);  // err 2
  acc.Add(9, 10);   // err -1
  RegressionMetrics m = acc.Finalize();
  EXPECT_EQ(m.count, 2);
  EXPECT_NEAR(m.rmse, std::sqrt((4.0 + 1.0) / 2.0), 1e-9);
  EXPECT_NEAR(m.mae, 1.5, 1e-9);
  EXPECT_NEAR(m.mape, 100.0 * (0.2 + 0.1) / 2.0, 1e-9);
}

TEST(MetricsTest, ZeroTruthExcludedFromMape) {
  MetricsAccumulator acc;
  acc.Add(5, 0);    // excluded from MAPE, included in RMSE/MAE
  acc.Add(11, 10);  // 10% error
  RegressionMetrics m = acc.Finalize();
  EXPECT_EQ(m.count, 2);
  EXPECT_NEAR(m.mape, 10.0, 1e-9);
}

TEST(MetricsTest, PerfectPredictions) {
  MetricsAccumulator acc;
  for (int i = 1; i <= 5; ++i) acc.Add(i, i);
  RegressionMetrics m = acc.Finalize();
  EXPECT_EQ(m.rmse, 0);
  EXPECT_EQ(m.mae, 0);
  EXPECT_EQ(m.mape, 0);
}

Trajectory TrajAt(int64_t depart, int64_t duration) {
  Trajectory t;
  t.points.push_back({{104.0, 30.0}, depart});
  t.points.push_back({{104.02, 30.0}, depart + duration});
  return t;
}

TEST(DatasetTest, ChronologicalSplitOrdersAndSizes) {
  std::vector<TripSample> samples;
  // Departures deliberately out of order.
  for (int64_t depart : {500, 100, 900, 300, 700, 200, 800, 400, 600, 1000}) {
    TripSample s;
    s.trajectory = TrajAt(depart, 600);
    s.odt = OdtFromTrajectory(s.trajectory);
    s.travel_time_minutes = 10;
    samples.push_back(s);
  }
  DatasetSplit split = ChronologicalSplit(samples, 0.8, 0.1);
  EXPECT_EQ(split.train.size(), 8u);
  EXPECT_EQ(split.val.size(), 1u);
  EXPECT_EQ(split.test.size(), 1u);
  // All training departures precede validation, which precedes test.
  for (const auto& s : split.train) {
    EXPECT_LE(s.odt.departure_time, split.val.front().odt.departure_time);
  }
  EXPECT_LE(split.val.front().odt.departure_time,
            split.test.front().odt.departure_time);
}

TEST(DatasetTest, ToSamplesAppliesFilterAndComputesMinutes) {
  std::vector<SimulatedTrip> trips(2);
  // Valid trip: 10 minutes, dense sampling, > 500 m.
  Trajectory& good = trips[0].trajectory;
  for (int64_t i = 0; i <= 10; ++i) {
    good.points.push_back({{104.0 + 0.002 * static_cast<double>(i), 30.0}, i * 60});
  }
  trips[0].odt = OdtFromTrajectory(good);
  trips[0].is_outlier = true;
  // Invalid: too short.
  trips[1].trajectory = TrajAt(0, 60);
  trips[1].odt = OdtFromTrajectory(trips[1].trajectory);

  auto samples = ToSamples(trips, TrajectoryFilter{});
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0].travel_time_minutes, 10.0, 1e-9);
  EXPECT_TRUE(samples[0].is_outlier);
}

TEST(DatasetTest, TrajectoriesOfExtracts) {
  std::vector<TripSample> samples(3);
  for (auto& s : samples) s.trajectory = TrajAt(0, 600);
  EXPECT_EQ(TrajectoriesOf(samples).size(), 3u);
}

TEST(PitSequenceTest, OrderedByOffset) {
  Pit pit(4);
  auto set = [&](int64_t r, int64_t c, float offset) {
    pit.Set(kPitMask, r, c, 1.0f);
    pit.Set(kPitTimeOffset, r, c, offset);
  };
  set(3, 3, 1.0f);   // last
  set(0, 0, -1.0f);  // first
  set(1, 2, 0.0f);   // middle
  auto seq = PitToCellSequence(pit);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0], 0);
  EXPECT_EQ(seq[1], 1 * 4 + 2);
  EXPECT_EQ(seq[2], 3 * 4 + 3);
}

TEST(PitSequenceTest, EmptyPitGivesEmptySequence) {
  Pit pit(4);
  EXPECT_TRUE(PitToCellSequence(pit).empty());
}

}  // namespace
}  // namespace dot
