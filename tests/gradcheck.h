// Numerical gradient checking helper for the tensor library tests.

#ifndef DOT_TESTS_GRADCHECK_H_
#define DOT_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm_kernel.h"
#include "tensor/tensor.h"

namespace dot::testing {

/// Verifies analytic gradients of `fn` (mapping `inputs` to a scalar tensor)
/// against central finite differences. Perturbs every element of every input.
inline void ExpectGradientsMatch(
    std::vector<Tensor> inputs,
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    float h = 1e-2f, float rtol = 5e-2f, float atol = 1e-3f) {
  // Gradients are defined against the fp32 forward (the engine pins
  // recording forwards to fp32 itself, but the finite-difference probes
  // below run under NoGradGuard where DOT_GEMM_PRECISION=int8 would kick
  // in and its quantization noise dwarfs the h-perturbation). Pin fp32 for
  // the whole check.
  struct PrecisionPin {
    gemm::Precision prev = gemm::SetPrecision(gemm::Precision::kFp32);
    ~PrecisionPin() { gemm::SetPrecision(prev); }
  } pin;

  for (auto& t : inputs) {
    t.set_requires_grad(true);
    t.ZeroGrad();  // callers may reuse tensors across checks
  }

  Tensor loss = fn(inputs);
  ASSERT_EQ(loss.numel(), 1) << "gradcheck function must return a scalar";
  loss.Backward();

  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (auto& t : inputs) {
    analytic.push_back(t.has_grad() ? t.grad_vec() : std::vector<float>(t.numel(), 0.f));
  }

  NoGradGuard guard;
  for (size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor& t = inputs[ti];
    for (int64_t i = 0; i < t.numel(); ++i) {
      float orig = t.at(i);
      t.at(i) = orig + h;
      float up = fn(inputs).item();
      t.at(i) = orig - h;
      float down = fn(inputs).item();
      t.at(i) = orig;
      float numeric = (up - down) / (2.0f * h);
      float got = analytic[ti][static_cast<size_t>(i)];
      float tol = atol + rtol * std::fabs(numeric);
      EXPECT_NEAR(got, numeric, tol)
          << "input " << ti << " element " << i;
    }
  }
}

}  // namespace dot::testing

#endif  // DOT_TESTS_GRADCHECK_H_
