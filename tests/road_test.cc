// Tests for the road-network substrate: graph construction, nearest-node
// queries, Dijkstra, Yen k-shortest paths, and segment statistics.

#include <gtest/gtest.h>

#include "road/road_network.h"
#include "road/segment_stats.h"

namespace dot {
namespace {

/// A 3x3 lattice with unit spacing (in degrees for simplicity; speeds are
/// set so free-flow weights are easy to reason about).
RoadNetwork MakeLattice(int64_t n = 3, double spacing = 0.01) {
  RoadNetwork net;
  for (int64_t y = 0; y < n; ++y) {
    for (int64_t x = 0; x < n; ++x) {
      net.AddNode({static_cast<double>(x) * spacing, static_cast<double>(y) * spacing});
    }
  }
  for (int64_t y = 0; y < n; ++y) {
    for (int64_t x = 0; x + 1 < n; ++x) {
      net.AddBidirectional(y * n + x, y * n + x + 1, 10.0);
    }
  }
  for (int64_t x = 0; x < n; ++x) {
    for (int64_t y = 0; y + 1 < n; ++y) {
      net.AddBidirectional(y * n + x, (y + 1) * n + x, 10.0);
    }
  }
  net.BuildIndex(8);
  return net;
}

TEST(RoadNetworkTest, CountsAndAccessors) {
  RoadNetwork net = MakeLattice(3);
  EXPECT_EQ(net.num_nodes(), 9);
  EXPECT_EQ(net.num_edges(), 24);  // 12 undirected segments
  EXPECT_GT(net.edge(0).length_meters, 0);
}

TEST(RoadNetworkTest, EdgeLengthDefaultsToNodeDistance) {
  RoadNetwork net;
  int64_t a = net.AddNode({0, 0});
  int64_t b = net.AddNode({0.01, 0});
  int64_t e = net.AddEdge(a, b, 10.0);
  EXPECT_NEAR(net.edge(e).length_meters, DistanceMeters({0, 0}, {0.01, 0}), 1e-6);
}

TEST(RoadNetworkTest, FreeFlowSeconds) {
  RoadNetwork net;
  int64_t a = net.AddNode({0, 0});
  int64_t b = net.AddNode({0.01, 0});
  int64_t e = net.AddEdge(a, b, 10.0);
  EXPECT_NEAR(net.FreeFlowSeconds(e), net.edge(e).length_meters / 10.0, 1e-9);
}

TEST(RoadNetworkTest, NearestNodeExactAndNear) {
  RoadNetwork net = MakeLattice(3);
  EXPECT_EQ(net.NearestNode({0.0, 0.0}), 0);
  EXPECT_EQ(net.NearestNode({0.021, 0.011}), 1 * 3 + 2);
}

TEST(RoadNetworkTest, NearestNodeWithoutIndexFallsBack) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1, 1});
  EXPECT_EQ(net.NearestNode({0.9, 0.9}), 1);
}

TEST(RoadNetworkTest, ShortestPathStraightLine) {
  RoadNetwork net = MakeLattice(3);
  RoutingResult r = net.ShortestPath(0, 2);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.node_path, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(r.edge_path.size(), 2u);
}

TEST(RoadNetworkTest, ShortestPathManhattanCost) {
  RoadNetwork net = MakeLattice(3);
  RoutingResult r = net.ShortestPath(0, 8);  // corner to corner
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.node_path.size(), 5u);  // 4 hops
  // All edges ~111.2 km * 0.01 = ~1112 m at 10 m/s -> ~111 s each.
  EXPECT_NEAR(r.cost, 4 * 111.2, 5.0);
}

TEST(RoadNetworkTest, ShortestPathUsesCustomWeights) {
  RoadNetwork net = MakeLattice(3);
  // Make every edge incident to the center node 4 expensive.
  std::vector<double> w(static_cast<size_t>(net.num_edges()), 1.0);
  for (int64_t e = 0; e < net.num_edges(); ++e) {
    if (net.edge(e).from == 4 || net.edge(e).to == 4) {
      w[static_cast<size_t>(e)] = 100.0;
    }
  }
  RoutingResult r = net.ShortestPath(0, 8, w);
  ASSERT_TRUE(r.found());
  for (int64_t node : r.node_path) EXPECT_NE(node, 4);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
}

TEST(RoadNetworkTest, UnreachableReturnsEmpty) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1, 1});  // no edges
  RoutingResult r = net.ShortestPath(0, 1);
  EXPECT_FALSE(r.found());
}

TEST(RoadNetworkTest, KShortestPathsDistinctAndSorted) {
  RoadNetwork net = MakeLattice(3);
  auto paths = net.KShortestPaths(0, 8, 4);
  ASSERT_GE(paths.size(), 3u);
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].cost, paths[i - 1].cost);
    EXPECT_NE(paths[i].node_path, paths[i - 1].node_path);
  }
  // Corner-to-corner on a lattice: several equal-cost 4-hop routes exist.
  EXPECT_NEAR(paths[0].cost, paths[1].cost, 1.0);
}

TEST(RoadNetworkTest, KShortestPathsKOneMatchesDijkstra) {
  RoadNetwork net = MakeLattice(3);
  auto paths = net.KShortestPaths(0, 7, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].node_path, net.ShortestPath(0, 7).node_path);
}

TEST(RoadNetworkTest, KShortestPathsValidEdgeSequences) {
  RoadNetwork net = MakeLattice(4);
  auto paths = net.KShortestPaths(0, 15, 5);
  for (const auto& p : paths) {
    ASSERT_EQ(p.edge_path.size() + 1, p.node_path.size());
    for (size_t i = 0; i < p.edge_path.size(); ++i) {
      EXPECT_EQ(net.edge(p.edge_path[i]).from, p.node_path[i]);
      EXPECT_EQ(net.edge(p.edge_path[i]).to, p.node_path[i + 1]);
    }
  }
}

TEST(MapMatcherTest, SnapsAndDeduplicates) {
  RoadNetwork net = MakeLattice(3);
  MapMatcher matcher(&net);
  Trajectory t;
  t.points.push_back({{0.0001, 0.0001}, 0});    // node 0
  t.points.push_back({{0.0002, -0.0001}, 30});  // still node 0
  t.points.push_back({{0.0101, 0.0001}, 60});   // node 1
  auto nodes = matcher.MatchNodes(t);
  EXPECT_EQ(nodes, (std::vector<int64_t>{0, 1}));
}

TEST(SegmentStatsTest, LearnsSlowdownFromTrajectories) {
  RoadNetwork net = MakeLattice(3);
  // Synthetic trajectory moving along the bottom row at half free-flow speed:
  // edge free-flow ~111 s, observed 222 s.
  Trajectory t;
  t.points.push_back({{0.0, 0.0}, 0});
  t.points.push_back({{0.01, 0.0}, 222});
  t.points.push_back({{0.02, 0.0}, 444});
  SegmentStats stats = SegmentStats::Learn(net, {t});
  EXPECT_GT(stats.num_observed(), 0);
  // Find the bottom-row forward edges and check their learned time.
  for (int64_t e = 0; e < net.num_edges(); ++e) {
    const RoadEdge& edge = net.edge(e);
    if (edge.from == 0 && edge.to == 1) {
      EXPECT_NEAR(stats.edge_seconds()[static_cast<size_t>(e)], 222, 15);
    }
  }
}

TEST(SegmentStatsTest, UnobservedEdgesFallBackToFreeFlow) {
  RoadNetwork net = MakeLattice(3);
  SegmentStats stats = SegmentStats::Learn(net, {});
  EXPECT_EQ(stats.num_observed(), 0);
  for (int64_t e = 0; e < net.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(stats.edge_seconds()[static_cast<size_t>(e)],
                     net.FreeFlowSeconds(e));
  }
}

}  // namespace
}  // namespace dot
