// Unit tests for the symmetric per-channel int8 quantization primitives
// (tensor/quantize.h): scale computation, round-trip error bound,
// saturation, degenerate channels, and the non-finite rejection contract
// the int8 GEMM path's fp32 fallback relies on.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/quantize.h"
#include "util/rng.h"

namespace dot {
namespace {

TEST(ChannelScale, KnownValues) {
  // max|x| = 6.35 -> scale = 6.35 / 127 = 0.05.
  std::vector<float> x = {1.0f, -6.35f, 2.5f, 0.0f};
  float scale = -1.0f;
  ASSERT_TRUE(quant::ChannelScale(x.data(), 4, 1, &scale));
  EXPECT_FLOAT_EQ(scale, 6.35f / 127.0f);

  // The strided view {1.0, 2.5} skips the extreme element.
  ASSERT_TRUE(quant::ChannelScale(x.data(), 2, 2, &scale));
  EXPECT_FLOAT_EQ(scale, 2.5f / 127.0f);
}

TEST(ChannelScale, SingleElementChannel) {
  float x = -3.0f;
  float scale = 0.0f;
  ASSERT_TRUE(quant::ChannelScale(&x, 1, 1, &scale));
  EXPECT_FLOAT_EQ(scale, 3.0f / 127.0f);
  // The extreme element always round-trips to exactly +/-127.
  EXPECT_EQ(quant::QuantizeValue(x, quant::InverseScale(scale)), -127);
}

TEST(ChannelScale, AllZeroChannel) {
  std::vector<float> x(16, 0.0f);
  float scale = -1.0f;
  ASSERT_TRUE(quant::ChannelScale(x.data(), 16, 1, &scale));
  EXPECT_EQ(scale, 0.0f);
  // Scale 0 => inverse scale 0 => everything quantizes (and dequantizes)
  // to zero instead of dividing by zero.
  EXPECT_EQ(quant::InverseScale(0.0f), 0.0f);
  std::vector<int8_t> q(16, 99);
  quant::QuantizeChannel(x.data(), 16, 1, scale, q.data());
  for (int8_t v : q) EXPECT_EQ(v, 0);
}

TEST(ChannelScale, EmptyChannel) {
  float scale = -1.0f;
  ASSERT_TRUE(quant::ChannelScale(nullptr, 0, 1, &scale));
  EXPECT_EQ(scale, 0.0f);
}

TEST(ChannelScale, RejectsNonFinite) {
  for (float bad : {std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity(),
                    -std::numeric_limits<float>::infinity()}) {
    std::vector<float> x = {1.0f, bad, 2.0f};
    float scale = 123.0f;
    EXPECT_FALSE(quant::ChannelScale(x.data(), 3, 1, &scale));
    EXPECT_EQ(scale, 0.0f) << "rejection must not leak a partial scale";
  }
}

TEST(QuantizeValue, SaturatesAtPlusMinus127) {
  // Values beyond the channel max (possible when a caller reuses a scale
  // from other data) clamp to the symmetric limits — never -128.
  float inv = quant::InverseScale(1.0f);  // scale 1 -> q = round(v)
  EXPECT_EQ(quant::QuantizeValue(1e9f, inv), 127);
  EXPECT_EQ(quant::QuantizeValue(-1e9f, inv), -127);
  EXPECT_EQ(quant::QuantizeValue(127.49f, inv), 127);
  EXPECT_EQ(quant::QuantizeValue(-500.0f, inv), -127);
}

TEST(QuantizeValue, RoundsToNearest) {
  float inv = 1.0f;
  EXPECT_EQ(quant::QuantizeValue(3.4f, inv), 3);
  EXPECT_EQ(quant::QuantizeValue(3.6f, inv), 4);
  EXPECT_EQ(quant::QuantizeValue(-3.6f, inv), -4);
  // Ties round to even (default FP environment).
  EXPECT_EQ(quant::QuantizeValue(2.5f, inv), 2);
  EXPECT_EQ(quant::QuantizeValue(3.5f, inv), 4);
}

TEST(RoundTrip, ErrorBoundedByHalfScale) {
  Rng rng(20260807);
  for (int trial = 0; trial < 50; ++trial) {
    int64_t n = 1 + static_cast<int64_t>(rng.Uniform(0, 64));
    std::vector<float> x(static_cast<size_t>(n));
    float mag = static_cast<float>(std::pow(10.0, rng.Uniform(-3, 3)));
    for (auto& v : x) v = static_cast<float>(rng.Uniform(-mag, mag));
    float scale = 0.0f;
    ASSERT_TRUE(quant::ChannelScale(x.data(), n, 1, &scale));
    std::vector<int8_t> q(static_cast<size_t>(n));
    quant::QuantizeChannel(x.data(), n, 1, scale, q.data());
    // |x - s*q| <= s/2 up to the float rounding of the x/s product; 0.51
    // absorbs that rounding.
    for (int64_t i = 0; i < n; ++i) {
      float back = scale * static_cast<float>(q[i]);
      EXPECT_LE(std::fabs(x[static_cast<size_t>(i)] - back), 0.51f * scale)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(ComputeRowScales, PerRowAndRejection) {
  // Row-major 2x3: rows scale independently.
  std::vector<float> a = {1.0f, -2.0f, 0.5f, 10.0f, 0.0f, -20.0f};
  std::vector<float> scales(2, -1.0f);
  ASSERT_TRUE(quant::ComputeRowScales(a.data(), 2, 3, scales.data()));
  EXPECT_FLOAT_EQ(scales[0], 2.0f / 127.0f);
  EXPECT_FLOAT_EQ(scales[1], 20.0f / 127.0f);

  // One NaN anywhere rejects the whole matrix and zeroes every scale
  // (PR 3 idiom: refuse non-finite weights, don't clamp them).
  a[4] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(quant::ComputeRowScales(a.data(), 2, 3, scales.data()));
  EXPECT_EQ(scales[0], 0.0f);
  EXPECT_EQ(scales[1], 0.0f);
}

}  // namespace
}  // namespace dot
