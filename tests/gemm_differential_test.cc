// Differential harness for the GEMM kernel engine: every kernel
// (naive/blocked/simd) x every layout (NN/TA/TB) over a seeded shape grid —
// degenerate dims, non-multiples of the block size, tall-skinny, short-wide,
// and fuzzed random shapes — checked against a double-precision reference
// and against each other.
//
// Tolerance policy (DESIGN.md §5e): for C[i,j] = sum_p A[i,p] * B[p,j],
// float accumulation of k terms carries a worst-case relative error of about
// k * eps against the magnitude sum S[i,j] = sum_p |A[i,p]| |B[p,j]|. The
// kernels only reassociate the sum (cache blocking changes the grouping, FMA
// contracts the rounding), so every kernel satisfies
//
//     |c[i,j] - cref[i,j]| <= (k + 8) * eps * S[i,j]        (vs double ref)
//     |c1[i,j] - c2[i,j]| <= 2 * (k + 8) * eps * S[i,j]     (cross-kernel)
//
// with eps = 2^-24 and the +8 absorbing the final rounding and padded-lane
// bookkeeping. On well-conditioned elements (S comparable to |cref|, i.e.
// little cancellation) the same bound is also asserted in ULPs.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm_kernel.h"
#include "tensor/ops_internal.h"
#include "tensor/quantize.h"
#include "util/rng.h"

namespace dot {
namespace {

constexpr double kEps = 1.0 / (1 << 24);  // 2^-24, float unit roundoff

struct Shape {
  int64_t m, k, n;
};

std::string ShapeName(const Shape& s) {
  return std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
         std::to_string(s.n);
}

// The fixed part of the grid. Block-size edges target MR=8, NR∈{8,32},
// KC=256, MC=128, NC=2048 (one below / exact / one above); the named shapes
// mirror the real call sites (im2col conv, attention, FC).
const Shape kFixedShapes[] = {
    // degenerate and near-degenerate
    {1, 1, 1},
    {1, 7, 1},
    {2, 1, 2},
    // microkernel edges (MR/NR boundaries)
    {7, 5, 7},
    {8, 5, 8},
    {9, 5, 9},
    {7, 3, 31},
    {8, 3, 32},
    {9, 3, 33},
    {15, 17, 16},
    {16, 16, 17},
    {17, 15, 15},
    // KC/MC boundaries
    {8, 255, 8},
    {8, 256, 8},
    {8, 257, 8},
    {127, 19, 9},
    {128, 19, 9},
    {129, 19, 9},
    {63, 65, 127},
    // tall-skinny / short-wide
    {301, 7, 3},
    {3, 9, 517},
    {2, 300, 2},
    // real call-site shapes (scaled-down conv / attention / FC)
    {16, 144, 1037},
    {29, 16, 29},
    {64, 96, 40},
};

const gemm::Layout kLayouts[] = {gemm::Layout::kNN, gemm::Layout::kTA,
                                 gemm::Layout::kTB};

const char* LayoutName(gemm::Layout layout) {
  switch (layout) {
    case gemm::Layout::kNN:
      return "NN";
    case gemm::Layout::kTA:
      return "TA";
    case gemm::Layout::kTB:
      return "TB";
  }
  return "?";
}

// op(A)/op(B) element accessors shared by the reference and the bound.
double RefA(const std::vector<float>& a, gemm::Layout layout, int64_t m,
            int64_t k, int64_t i, int64_t p) {
  return layout == gemm::Layout::kTA ? a[static_cast<size_t>(p * m + i)]
                                     : a[static_cast<size_t>(i * k + p)];
}

double RefB(const std::vector<float>& b, gemm::Layout layout, int64_t k,
            int64_t n, int64_t p, int64_t j) {
  return layout == gemm::Layout::kTB ? b[static_cast<size_t>(j * k + p)]
                                     : b[static_cast<size_t>(p * n + j)];
}

/// Double-precision reference product and per-element magnitude sums S.
void ReferenceGemm(const std::vector<float>& a, const std::vector<float>& b,
                   gemm::Layout layout, int64_t m, int64_t k, int64_t n,
                   std::vector<double>* cref, std::vector<double>* mag) {
  cref->assign(static_cast<size_t>(m * n), 0.0);
  mag->assign(static_cast<size_t>(m * n), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0, s = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        double av = RefA(a, layout, m, k, i, p);
        double bv = RefB(b, layout, k, n, p, j);
        acc += av * bv;
        s += std::fabs(av) * std::fabs(bv);
      }
      (*cref)[static_cast<size_t>(i * n + j)] = acc;
      (*mag)[static_cast<size_t>(i * n + j)] = s;
    }
  }
}

int64_t UlpDistance(float x, float y) {
  // Monotone mapping of floats onto int32 so ULP distance is a subtraction.
  auto key = [](float v) {
    int32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits >= 0 ? static_cast<int64_t>(bits)
                     : std::numeric_limits<int32_t>::min() -
                           static_cast<int64_t>(bits);
  };
  return std::llabs(key(x) - key(y));
}

std::vector<float> RandomVec(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(count));
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

void CheckShape(gemm::Kernel kernel, gemm::Layout layout, const Shape& s,
                bool accumulate, uint64_t seed) {
  SCOPED_TRACE(std::string(gemm::KernelName(kernel)) + "/" +
               LayoutName(layout) + "/" + ShapeName(s) +
               (accumulate ? "/acc" : "") + "/seed" + std::to_string(seed));
  const int64_t m = s.m, k = s.k, n = s.n;
  std::vector<float> a = RandomVec(m * k, seed);
  std::vector<float> b = RandomVec(k * n, seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<float> c0 = RandomVec(m * n, seed ^ 0xda3e39cb94b95bdbull);

  std::vector<double> cref, mag;
  ReferenceGemm(a, b, layout, m, k, n, &cref, &mag);

  std::vector<float> c = c0;
  gemm::Run(kernel, layout, a.data(), b.data(), c.data(), m, k, n, accumulate);

  const double bound_scale = (static_cast<double>(k) + 8.0) * kEps;
  const int64_t ulp_bound = 32 * (k + 8);
  for (int64_t i = 0; i < m * n; ++i) {
    const size_t idx = static_cast<size_t>(i);
    double expected = cref[idx] + (accumulate ? c0[idx] : 0.0f);
    double s_mag = mag[idx] + (accumulate ? std::fabs(c0[idx]) : 0.0);
    double err = std::fabs(static_cast<double>(c[idx]) - expected);
    ASSERT_LE(err, bound_scale * s_mag + 1e-30)
        << "element " << i << ": got " << c[idx] << " want " << expected
        << " (mag sum " << s_mag << ")";
    // ULP bound only where the sum is well conditioned: heavy cancellation
    // legitimately loses relative precision and is covered by the absolute
    // bound above.
    if (s_mag > 0 && std::fabs(expected) > 0.25 * s_mag) {
      ASSERT_LE(UlpDistance(c[idx], static_cast<float>(expected)), ulp_bound)
          << "element " << i << ": got " << c[idx] << " want " << expected;
    }
  }
}

bool KernelRunnable(gemm::Kernel kernel) {
  return kernel != gemm::Kernel::kSimd || gemm::SimdAvailable();
}

class GemmDifferential : public ::testing::TestWithParam<gemm::Kernel> {
 protected:
  void SetUp() override {
    if (!KernelRunnable(GetParam())) {
      GTEST_SKIP() << "SIMD microkernel unavailable on this CPU/build";
    }
  }
};

TEST_P(GemmDifferential, FixedShapeGridVsDoubleReference) {
  uint64_t seed = 0x5eed;
  for (const Shape& s : kFixedShapes) {
    for (gemm::Layout layout : kLayouts) {
      for (bool accumulate : {false, true}) {
        CheckShape(GetParam(), layout, s, accumulate, ++seed);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST_P(GemmDifferential, FuzzedShapesVsDoubleReference) {
  // Seeded fuzzer: dimensions biased toward block-size edges and small
  // values, deterministic across runs.
  Rng rng(20260806);
  auto fuzz_dim = [&rng]() -> int64_t {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return rng.UniformInt(1, 9);  // tiny / microkernel edge
      case 1: {
        const int64_t base[] = {8, 16, 32, 128, 256};
        return base[rng.UniformInt(0, 4)] + rng.UniformInt(-1, 1);
      }
      default:
        return rng.UniformInt(1, 200);
    }
  };
  for (int iter = 0; iter < 24; ++iter) {
    Shape s{fuzz_dim(), fuzz_dim(), fuzz_dim()};
    gemm::Layout layout = kLayouts[rng.UniformInt(0, 2)];
    bool accumulate = rng.UniformInt(0, 1) == 1;
    CheckShape(GetParam(), layout, s, accumulate,
               static_cast<uint64_t>(rng.UniformInt(1, 1 << 30)));
    if (HasFatalFailure()) return;
  }
}

TEST_P(GemmDifferential, DegenerateDimsAndNullPointers) {
  // m/k/n ∈ {0, 1}: empty operands may be null; k==0 must zero-fill C
  // exactly when !accumulate and leave it untouched when accumulating.
  for (int64_t m : {0, 1}) {
    for (int64_t k : {0, 1}) {
      for (int64_t n : {0, 1}) {
        for (gemm::Layout layout : kLayouts) {
          for (bool accumulate : {false, true}) {
            SCOPED_TRACE(ShapeName({m, k, n}) + "/" + LayoutName(layout) +
                         (accumulate ? "/acc" : ""));
            std::vector<float> a(static_cast<size_t>(m * k), 2.0f);
            std::vector<float> b(static_cast<size_t>(k * n), 3.0f);
            std::vector<float> c(static_cast<size_t>(m * n), 7.0f);
            gemm::Run(GetParam(), layout, a.empty() ? nullptr : a.data(),
                      b.empty() ? nullptr : b.data(),
                      c.empty() ? nullptr : c.data(), m, k, n, accumulate);
            if (m == 1 && n == 1) {
              float expected = k == 0 ? (accumulate ? 7.0f : 0.0f)
                                      : (accumulate ? 13.0f : 6.0f);
              EXPECT_EQ(c[0], expected);
            }
          }
        }
      }
    }
  }
}

TEST_P(GemmDifferential, CrossKernelAgreement) {
  // Every kernel must agree with naive within 2x the reference bound.
  const Shape shapes[] = {{33, 65, 47}, {128, 256, 96}, {5, 129, 517}};
  uint64_t seed = 0xabcd;
  for (const Shape& s : shapes) {
    for (gemm::Layout layout : kLayouts) {
      SCOPED_TRACE(std::string(gemm::KernelName(GetParam())) + "/" +
                   LayoutName(layout) + "/" + ShapeName(s));
      const int64_t m = s.m, k = s.k, n = s.n;
      std::vector<float> a = RandomVec(m * k, ++seed);
      std::vector<float> b = RandomVec(k * n, seed ^ 0x2545f4914f6cdd1dull);
      std::vector<double> cref, mag;
      ReferenceGemm(a, b, layout, m, k, n, &cref, &mag);
      std::vector<float> c_ref(static_cast<size_t>(m * n));
      std::vector<float> c_kernel(static_cast<size_t>(m * n));
      gemm::Run(gemm::Kernel::kNaive, layout, a.data(), b.data(), c_ref.data(),
                m, k, n, false);
      gemm::Run(GetParam(), layout, a.data(), b.data(), c_kernel.data(), m, k,
                n, false);
      const double bound_scale = 2.0 * (static_cast<double>(k) + 8.0) * kEps;
      for (int64_t i = 0; i < m * n; ++i) {
        const size_t idx = static_cast<size_t>(i);
        double err = std::fabs(static_cast<double>(c_kernel[idx]) -
                               static_cast<double>(c_ref[idx]));
        ASSERT_LE(err, bound_scale * mag[idx] + 1e-30)
            << "element " << i << ": " << gemm::KernelName(GetParam())
            << " gives " << c_kernel[idx] << ", naive gives " << c_ref[idx];
      }
    }
  }
}

TEST_P(GemmDifferential, RepeatedRunsBitwiseIdentical) {
  // Same kernel + same inputs -> bitwise-identical output, run to run.
  const Shape s{61, 130, 45};
  std::vector<float> a = RandomVec(s.m * s.k, 11);
  std::vector<float> b = RandomVec(s.k * s.n, 22);
  for (gemm::Layout layout : kLayouts) {
    std::vector<float> c1(static_cast<size_t>(s.m * s.n));
    std::vector<float> c2(static_cast<size_t>(s.m * s.n));
    gemm::Run(GetParam(), layout, a.data(), b.data(), c1.data(), s.m, s.k,
              s.n, false);
    gemm::Run(GetParam(), layout, a.data(), b.data(), c2.data(), s.m, s.k,
              s.n, false);
    ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                             c1.size() * sizeof(float)))
        << LayoutName(layout);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GemmDifferential,
                         ::testing::Values(gemm::Kernel::kNaive,
                                           gemm::Kernel::kBlocked,
                                           gemm::Kernel::kSimd),
                         [](const auto& info) {
                           return std::string(gemm::KernelName(info.param));
                         });

// ---- Int8 quantized path (DESIGN.md §5j) ------------------------------------
//
// Tolerance derivation: symmetric per-channel quantization writes
// A_ip = sa_i q^a_ip + e^a_ip with |e^a_ip| <= sa_i / 2 (and likewise B
// with per-column sb_j), so the dequantized product deviates from the
// exact one by at most
//
//   |C_q[i,j] - C[i,j]| <= sum_p ( |A_ip| sb_j/2 + |B_pj| sa_i/2
//                                  + sa_i sb_j/4 )
//                        = rowabs_i sb_j/2 + colabs_j sa_i/2
//                          + k sa_i sb_j/4
//
// — a scale * k bound, NOT an eps * k bound: quantization error is the
// dominant term by orders of magnitude. The few float roundings in the
// dequant write (int32->float is exact below 2^24, then two multiplies)
// are absorbed by a 1.05 slack factor plus a 4-eps relative term. Scales
// are recomputed in-test with the same quantize.h primitives the engine
// uses, so the bound tracks the actual grid.

// Per-op(A)-row and per-op(B)-column scales, exactly as the engine
// computes them.
void OpScales(const std::vector<float>& a, const std::vector<float>& b,
              gemm::Layout layout, int64_t m, int64_t k, int64_t n,
              std::vector<float>* sa, std::vector<float>* sb) {
  sa->assign(static_cast<size_t>(m), 0.0f);
  sb->assign(static_cast<size_t>(n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    const float* row =
        layout == gemm::Layout::kTA ? a.data() + i : a.data() + i * k;
    int64_t stride = layout == gemm::Layout::kTA ? m : 1;
    ASSERT_TRUE(quant::ChannelScale(row, k, stride, &(*sa)[i]));
  }
  for (int64_t j = 0; j < n; ++j) {
    const float* col =
        layout == gemm::Layout::kTB ? b.data() + j * k : b.data() + j;
    int64_t stride = layout == gemm::Layout::kTB ? 1 : n;
    ASSERT_TRUE(quant::ChannelScale(col, k, stride, &(*sb)[j]));
  }
}

void CheckShapeInt8(gemm::Kernel kernel, gemm::Layout layout, const Shape& s,
                    bool accumulate, uint64_t seed) {
  SCOPED_TRACE(std::string("int8/") + gemm::KernelName(kernel) + "/" +
               LayoutName(layout) + "/" + ShapeName(s) +
               (accumulate ? "/acc" : "") + "/seed" + std::to_string(seed));
  const int64_t m = s.m, k = s.k, n = s.n;
  std::vector<float> a = RandomVec(m * k, seed);
  std::vector<float> b = RandomVec(k * n, seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<float> c0 = RandomVec(m * n, seed ^ 0xda3e39cb94b95bdbull);

  std::vector<double> cref, mag;
  ReferenceGemm(a, b, layout, m, k, n, &cref, &mag);
  std::vector<float> sa, sb;
  OpScales(a, b, layout, m, k, n, &sa, &sb);

  // Row / column magnitude sums for the bound.
  std::vector<double> rowabs(static_cast<size_t>(m), 0.0);
  std::vector<double> colabs(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      rowabs[static_cast<size_t>(i)] += std::fabs(RefA(a, layout, m, k, i, p));
    }
  }
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t p = 0; p < k; ++p) {
      colabs[static_cast<size_t>(j)] += std::fabs(RefB(b, layout, k, n, p, j));
    }
  }

  std::vector<float> c = c0;
  gemm::RunEx(kernel, gemm::Precision::kInt8, layout, a.data(), b.data(),
              c.data(), m, k, n, accumulate);

  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const size_t idx = static_cast<size_t>(i * n + j);
      const double sai = sa[static_cast<size_t>(i)];
      const double sbj = sb[static_cast<size_t>(j)];
      double expected = cref[idx] + (accumulate ? c0[idx] : 0.0f);
      double quant_bound = rowabs[static_cast<size_t>(i)] * sbj * 0.5 +
                           colabs[static_cast<size_t>(j)] * sai * 0.5 +
                           static_cast<double>(k) * sai * sbj * 0.25;
      double err = std::fabs(static_cast<double>(c[idx]) - expected);
      ASSERT_LE(err,
                1.05 * quant_bound + 4.0 * kEps * std::fabs(expected) + 1e-30)
          << "element (" << i << "," << j << "): got " << c[idx] << " want "
          << expected << " (quant bound " << quant_bound << ")";
    }
  }
}

class Int8Differential : public ::testing::TestWithParam<gemm::Kernel> {
 protected:
  void SetUp() override {
    if (!KernelRunnable(GetParam())) {
      GTEST_SKIP() << "SIMD microkernel unavailable on this CPU/build";
    }
  }
};

TEST_P(Int8Differential, FixedShapeGridVsExactReference) {
  // Same precision x kernel x layout x accumulate grid as the fp32 wall,
  // seeded independently.
  uint64_t seed = 0x17e8;
  for (const Shape& s : kFixedShapes) {
    for (gemm::Layout layout : kLayouts) {
      for (bool accumulate : {false, true}) {
        CheckShapeInt8(GetParam(), layout, s, accumulate, ++seed);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST_P(Int8Differential, FuzzedShapesVsExactReference) {
  Rng rng(20260807);
  auto fuzz_dim = [&rng]() -> int64_t {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return rng.UniformInt(1, 9);
      case 1: {
        const int64_t base[] = {8, 16, 32, 128, 256};
        return base[rng.UniformInt(0, 4)] + rng.UniformInt(-1, 1);
      }
      default:
        return rng.UniformInt(1, 200);
    }
  };
  for (int iter = 0; iter < 16; ++iter) {
    Shape s{fuzz_dim(), fuzz_dim(), fuzz_dim()};
    gemm::Layout layout = kLayouts[rng.UniformInt(0, 2)];
    bool accumulate = rng.UniformInt(0, 1) == 1;
    CheckShapeInt8(GetParam(), layout, s, accumulate,
                   static_cast<uint64_t>(rng.UniformInt(1, 1 << 30)));
    if (HasFatalFailure()) return;
  }
}

TEST_P(Int8Differential, BitwiseEqualToNaiveInt8) {
  // Integer accumulation has no association order and every path
  // quantizes through the same primitives, so the int8 kernels agree
  // BITWISE with the int8 naive reference — a much stronger contract than
  // the fp32 cross-kernel tolerance. Shapes cover edge tiles (non
  // multiples of 8) on both dimensions.
  const Shape shapes[] = {{7, 23, 9}, {33, 65, 47}, {64, 256, 40},
                          {5, 129, 517}, {129, 31, 8}};
  uint64_t seed = 0xfeed;
  for (const Shape& s : shapes) {
    for (gemm::Layout layout : kLayouts) {
      for (bool accumulate : {false, true}) {
        SCOPED_TRACE(std::string("int8/") + gemm::KernelName(GetParam()) +
                     "/" + LayoutName(layout) + "/" + ShapeName(s) +
                     (accumulate ? "/acc" : ""));
        const int64_t m = s.m, k = s.k, n = s.n;
        std::vector<float> a = RandomVec(m * k, ++seed);
        std::vector<float> b = RandomVec(k * n, seed ^ 0x2545f4914f6cdd1dull);
        std::vector<float> c0 = RandomVec(m * n, seed ^ 0x7777);
        std::vector<float> c_naive = c0, c_kernel = c0;
        gemm::RunEx(gemm::Kernel::kNaive, gemm::Precision::kInt8, layout,
                    a.data(), b.data(), c_naive.data(), m, k, n, accumulate);
        gemm::RunEx(GetParam(), gemm::Precision::kInt8, layout, a.data(),
                    b.data(), c_kernel.data(), m, k, n, accumulate);
        ASSERT_EQ(0, std::memcmp(c_naive.data(), c_kernel.data(),
                                 c_naive.size() * sizeof(float)));
      }
    }
  }
}

TEST_P(Int8Differential, DegenerateDimsAndNullPointers) {
  // The quantized path must keep the engine's degenerate-dim contract:
  // m==0 / n==0 return, k==0 zero-fills only when !accumulate, null
  // pointers allowed for empty operands. k==1 exercises the odd-k pad.
  for (int64_t m : {0, 1}) {
    for (int64_t k : {0, 1}) {
      for (int64_t n : {0, 1}) {
        for (gemm::Layout layout : kLayouts) {
          for (bool accumulate : {false, true}) {
            SCOPED_TRACE(std::string("int8/") + ShapeName({m, k, n}) + "/" +
                         LayoutName(layout) + (accumulate ? "/acc" : ""));
            std::vector<float> a(static_cast<size_t>(m * k), 2.0f);
            std::vector<float> b(static_cast<size_t>(k * n), 3.0f);
            std::vector<float> c(static_cast<size_t>(m * n), 7.0f);
            gemm::RunEx(GetParam(), gemm::Precision::kInt8, layout,
                        a.empty() ? nullptr : a.data(),
                        b.empty() ? nullptr : b.data(),
                        c.empty() ? nullptr : c.data(), m, k, n, accumulate);
            if (m == 1 && n == 1) {
              // k==1: both operands are their channel's extreme element,
              // so they quantize exactly and 2*3 is exact in int8 too.
              float expected = k == 0 ? (accumulate ? 7.0f : 0.0f)
                                      : (accumulate ? 13.0f : 6.0f);
              EXPECT_EQ(c[0], expected);
            }
          }
        }
      }
    }
  }
}

TEST_P(Int8Differential, NonFiniteOperandFallsBackToFp32) {
  // A NaN/Inf anywhere in either operand refuses quantization; the call
  // must produce exactly what the fp32 kernel produces.
  const int64_t m = 9, k = 17, n = 11;
  for (int which : {0, 1}) {
    for (float bad : {std::numeric_limits<float>::quiet_NaN(),
                      std::numeric_limits<float>::infinity()}) {
      std::vector<float> a = RandomVec(m * k, 91);
      std::vector<float> b = RandomVec(k * n, 92);
      (which == 0 ? a[5] : b[7]) = bad;
      std::vector<float> c_q(static_cast<size_t>(m * n));
      std::vector<float> c_f(static_cast<size_t>(m * n));
      gemm::RunEx(GetParam(), gemm::Precision::kInt8, gemm::Layout::kNN,
                  a.data(), b.data(), c_q.data(), m, k, n, false);
      gemm::Run(GetParam(), gemm::Layout::kNN, a.data(), b.data(), c_f.data(),
                m, k, n, false);
      ASSERT_EQ(0, std::memcmp(c_q.data(), c_f.data(),
                               c_q.size() * sizeof(float)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, Int8Differential,
                         ::testing::Values(gemm::Kernel::kNaive,
                                           gemm::Kernel::kBlocked,
                                           gemm::Kernel::kSimd),
                         [](const auto& info) {
                           return std::string(gemm::KernelName(info.param));
                         });

// ---- Dispatch-level regressions (internal::Gemm* wrappers) ------------------

TEST(GemmDispatch, EmptyProductsTolerateNullPointers) {
  // The PR 3 empty-vector serialize fix, mirrored for GEMM: m*n == 0 (or
  // k == 0 with empty inputs) must not dereference anything.
  internal::Gemm(nullptr, nullptr, nullptr, 0, 5, 3, false);
  internal::Gemm(nullptr, nullptr, nullptr, 4, 7, 0, true);
  internal::GemmTA(nullptr, nullptr, nullptr, 0, 0, 0, false);
  internal::GemmTB(nullptr, nullptr, nullptr, 0, 3, 0, true);
  float c[2] = {5.0f, 5.0f};
  internal::Gemm(nullptr, nullptr, c, 1, 0, 2, false);  // k==0 zero-fills
  EXPECT_EQ(c[0], 0.0f);
  EXPECT_EQ(c[1], 0.0f);
  c[0] = c[1] = 5.0f;
  internal::GemmTB(nullptr, nullptr, c, 2, 0, 1, true);  // k==0 + acc: no-op
  EXPECT_EQ(c[0], 5.0f);
  EXPECT_EQ(c[1], 5.0f);
}

TEST(GemmDispatch, KernelNamesRoundTrip) {
  for (gemm::Kernel k : {gemm::Kernel::kNaive, gemm::Kernel::kBlocked,
                         gemm::Kernel::kSimd}) {
    gemm::Kernel parsed;
    ASSERT_TRUE(gemm::ParseKernelName(gemm::KernelName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  gemm::Kernel parsed = gemm::Kernel::kNaive;
  EXPECT_FALSE(gemm::ParseKernelName("avx9000", &parsed));
  EXPECT_FALSE(gemm::ParseKernelName(nullptr, &parsed));
  EXPECT_EQ(parsed, gemm::Kernel::kNaive);  // untouched on failure
}

TEST(GemmDispatch, SetKernelRoutesDispatchers) {
  // SetKernel changes what internal::Gemm runs; kSimd degrades to kBlocked
  // when unsupported and the return value reports the real choice.
  gemm::Kernel prev = gemm::ActiveKernel();
  gemm::Kernel got = gemm::SetKernel(gemm::Kernel::kSimd);
  if (gemm::SimdAvailable()) {
    EXPECT_EQ(got, gemm::Kernel::kSimd);
  } else {
    EXPECT_EQ(got, gemm::Kernel::kBlocked);
  }
  EXPECT_EQ(gemm::ActiveKernel(), got);

  std::vector<float> a = RandomVec(12 * 40, 3);
  std::vector<float> b = RandomVec(40 * 9, 4);
  std::vector<float> via_dispatch(12 * 9), direct(12 * 9);
  internal::Gemm(a.data(), b.data(), via_dispatch.data(), 12, 40, 9, false);
  gemm::Run(got, gemm::Layout::kNN, a.data(), b.data(), direct.data(), 12, 40,
            9, false);
  EXPECT_EQ(0, std::memcmp(via_dispatch.data(), direct.data(),
                           direct.size() * sizeof(float)));
  EXPECT_EQ(gemm::SetKernel(prev), prev);
}

TEST(GemmDispatch, PrecisionNamesRoundTrip) {
  for (gemm::Precision p : {gemm::Precision::kFp32, gemm::Precision::kInt8}) {
    gemm::Precision parsed;
    ASSERT_TRUE(gemm::ParsePrecisionName(gemm::PrecisionName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  gemm::Precision parsed = gemm::Precision::kFp32;
  EXPECT_FALSE(gemm::ParsePrecisionName("fp16", &parsed));
  EXPECT_FALSE(gemm::ParsePrecisionName(nullptr, &parsed));
  EXPECT_EQ(parsed, gemm::Precision::kFp32);  // untouched on failure
}

TEST(GemmDispatch, SetPrecisionRoutesDispatchers) {
  // Under SetPrecision(kInt8) the internal::Gemm wrappers take the quantized
  // path — but only outside grad mode: recording forwards must stay fp32 so
  // autograd gradients match the forward they differentiate.
  gemm::Precision prev = gemm::SetPrecision(gemm::Precision::kInt8);
  EXPECT_EQ(gemm::ActivePrecision(), gemm::Precision::kInt8);

  const int64_t m = 12, k = 40, n = 9;
  std::vector<float> a = RandomVec(m * k, 5);
  std::vector<float> b = RandomVec(k * n, 6);
  std::vector<float> int8_direct(static_cast<size_t>(m * n));
  std::vector<float> fp32_direct(static_cast<size_t>(m * n));
  gemm::RunEx(gemm::ActiveKernel(), gemm::Precision::kInt8, gemm::Layout::kNN,
              a.data(), b.data(), int8_direct.data(), m, k, n, false);
  gemm::Run(gemm::ActiveKernel(), gemm::Layout::kNN, a.data(), b.data(),
            fp32_direct.data(), m, k, n, false);
  ASSERT_NE(0, std::memcmp(int8_direct.data(), fp32_direct.data(),
                           int8_direct.size() * sizeof(float)))
      << "test needs a shape where int8 and fp32 visibly differ";

  std::vector<float> via_dispatch(static_cast<size_t>(m * n));
  {
    NoGradGuard guard;  // inference: quantized path active
    internal::Gemm(a.data(), b.data(), via_dispatch.data(), m, k, n, false);
  }
  EXPECT_EQ(0, std::memcmp(via_dispatch.data(), int8_direct.data(),
                           via_dispatch.size() * sizeof(float)));

  internal::Gemm(a.data(), b.data(), via_dispatch.data(), m, k, n,
                 false);  // grad mode on: forced fp32
  EXPECT_EQ(0, std::memcmp(via_dispatch.data(), fp32_direct.data(),
                           via_dispatch.size() * sizeof(float)));

  EXPECT_EQ(gemm::SetPrecision(prev), prev);
}

}  // namespace
}  // namespace dot
