// Differential harness for the GEMM kernel engine: every kernel
// (naive/blocked/simd) x every layout (NN/TA/TB) over a seeded shape grid —
// degenerate dims, non-multiples of the block size, tall-skinny, short-wide,
// and fuzzed random shapes — checked against a double-precision reference
// and against each other.
//
// Tolerance policy (DESIGN.md §5e): for C[i,j] = sum_p A[i,p] * B[p,j],
// float accumulation of k terms carries a worst-case relative error of about
// k * eps against the magnitude sum S[i,j] = sum_p |A[i,p]| |B[p,j]|. The
// kernels only reassociate the sum (cache blocking changes the grouping, FMA
// contracts the rounding), so every kernel satisfies
//
//     |c[i,j] - cref[i,j]| <= (k + 8) * eps * S[i,j]        (vs double ref)
//     |c1[i,j] - c2[i,j]| <= 2 * (k + 8) * eps * S[i,j]     (cross-kernel)
//
// with eps = 2^-24 and the +8 absorbing the final rounding and padded-lane
// bookkeeping. On well-conditioned elements (S comparable to |cref|, i.e.
// little cancellation) the same bound is also asserted in ULPs.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm_kernel.h"
#include "tensor/ops_internal.h"
#include "util/rng.h"

namespace dot {
namespace {

constexpr double kEps = 1.0 / (1 << 24);  // 2^-24, float unit roundoff

struct Shape {
  int64_t m, k, n;
};

std::string ShapeName(const Shape& s) {
  return std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
         std::to_string(s.n);
}

// The fixed part of the grid. Block-size edges target MR=8, NR∈{8,32},
// KC=256, MC=128, NC=2048 (one below / exact / one above); the named shapes
// mirror the real call sites (im2col conv, attention, FC).
const Shape kFixedShapes[] = {
    // degenerate and near-degenerate
    {1, 1, 1},
    {1, 7, 1},
    {2, 1, 2},
    // microkernel edges (MR/NR boundaries)
    {7, 5, 7},
    {8, 5, 8},
    {9, 5, 9},
    {7, 3, 31},
    {8, 3, 32},
    {9, 3, 33},
    {15, 17, 16},
    {16, 16, 17},
    {17, 15, 15},
    // KC/MC boundaries
    {8, 255, 8},
    {8, 256, 8},
    {8, 257, 8},
    {127, 19, 9},
    {128, 19, 9},
    {129, 19, 9},
    {63, 65, 127},
    // tall-skinny / short-wide
    {301, 7, 3},
    {3, 9, 517},
    {2, 300, 2},
    // real call-site shapes (scaled-down conv / attention / FC)
    {16, 144, 1037},
    {29, 16, 29},
    {64, 96, 40},
};

const gemm::Layout kLayouts[] = {gemm::Layout::kNN, gemm::Layout::kTA,
                                 gemm::Layout::kTB};

const char* LayoutName(gemm::Layout layout) {
  switch (layout) {
    case gemm::Layout::kNN:
      return "NN";
    case gemm::Layout::kTA:
      return "TA";
    case gemm::Layout::kTB:
      return "TB";
  }
  return "?";
}

// op(A)/op(B) element accessors shared by the reference and the bound.
double RefA(const std::vector<float>& a, gemm::Layout layout, int64_t m,
            int64_t k, int64_t i, int64_t p) {
  return layout == gemm::Layout::kTA ? a[static_cast<size_t>(p * m + i)]
                                     : a[static_cast<size_t>(i * k + p)];
}

double RefB(const std::vector<float>& b, gemm::Layout layout, int64_t k,
            int64_t n, int64_t p, int64_t j) {
  return layout == gemm::Layout::kTB ? b[static_cast<size_t>(j * k + p)]
                                     : b[static_cast<size_t>(p * n + j)];
}

/// Double-precision reference product and per-element magnitude sums S.
void ReferenceGemm(const std::vector<float>& a, const std::vector<float>& b,
                   gemm::Layout layout, int64_t m, int64_t k, int64_t n,
                   std::vector<double>* cref, std::vector<double>* mag) {
  cref->assign(static_cast<size_t>(m * n), 0.0);
  mag->assign(static_cast<size_t>(m * n), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0, s = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        double av = RefA(a, layout, m, k, i, p);
        double bv = RefB(b, layout, k, n, p, j);
        acc += av * bv;
        s += std::fabs(av) * std::fabs(bv);
      }
      (*cref)[static_cast<size_t>(i * n + j)] = acc;
      (*mag)[static_cast<size_t>(i * n + j)] = s;
    }
  }
}

int64_t UlpDistance(float x, float y) {
  // Monotone mapping of floats onto int32 so ULP distance is a subtraction.
  auto key = [](float v) {
    int32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits >= 0 ? static_cast<int64_t>(bits)
                     : std::numeric_limits<int32_t>::min() -
                           static_cast<int64_t>(bits);
  };
  return std::llabs(key(x) - key(y));
}

std::vector<float> RandomVec(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(count));
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

void CheckShape(gemm::Kernel kernel, gemm::Layout layout, const Shape& s,
                bool accumulate, uint64_t seed) {
  SCOPED_TRACE(std::string(gemm::KernelName(kernel)) + "/" +
               LayoutName(layout) + "/" + ShapeName(s) +
               (accumulate ? "/acc" : "") + "/seed" + std::to_string(seed));
  const int64_t m = s.m, k = s.k, n = s.n;
  std::vector<float> a = RandomVec(m * k, seed);
  std::vector<float> b = RandomVec(k * n, seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<float> c0 = RandomVec(m * n, seed ^ 0xda3e39cb94b95bdbull);

  std::vector<double> cref, mag;
  ReferenceGemm(a, b, layout, m, k, n, &cref, &mag);

  std::vector<float> c = c0;
  gemm::Run(kernel, layout, a.data(), b.data(), c.data(), m, k, n, accumulate);

  const double bound_scale = (static_cast<double>(k) + 8.0) * kEps;
  const int64_t ulp_bound = 32 * (k + 8);
  for (int64_t i = 0; i < m * n; ++i) {
    const size_t idx = static_cast<size_t>(i);
    double expected = cref[idx] + (accumulate ? c0[idx] : 0.0f);
    double s_mag = mag[idx] + (accumulate ? std::fabs(c0[idx]) : 0.0);
    double err = std::fabs(static_cast<double>(c[idx]) - expected);
    ASSERT_LE(err, bound_scale * s_mag + 1e-30)
        << "element " << i << ": got " << c[idx] << " want " << expected
        << " (mag sum " << s_mag << ")";
    // ULP bound only where the sum is well conditioned: heavy cancellation
    // legitimately loses relative precision and is covered by the absolute
    // bound above.
    if (s_mag > 0 && std::fabs(expected) > 0.25 * s_mag) {
      ASSERT_LE(UlpDistance(c[idx], static_cast<float>(expected)), ulp_bound)
          << "element " << i << ": got " << c[idx] << " want " << expected;
    }
  }
}

bool KernelRunnable(gemm::Kernel kernel) {
  return kernel != gemm::Kernel::kSimd || gemm::SimdAvailable();
}

class GemmDifferential : public ::testing::TestWithParam<gemm::Kernel> {
 protected:
  void SetUp() override {
    if (!KernelRunnable(GetParam())) {
      GTEST_SKIP() << "SIMD microkernel unavailable on this CPU/build";
    }
  }
};

TEST_P(GemmDifferential, FixedShapeGridVsDoubleReference) {
  uint64_t seed = 0x5eed;
  for (const Shape& s : kFixedShapes) {
    for (gemm::Layout layout : kLayouts) {
      for (bool accumulate : {false, true}) {
        CheckShape(GetParam(), layout, s, accumulate, ++seed);
        if (HasFatalFailure()) return;
      }
    }
  }
}

TEST_P(GemmDifferential, FuzzedShapesVsDoubleReference) {
  // Seeded fuzzer: dimensions biased toward block-size edges and small
  // values, deterministic across runs.
  Rng rng(20260806);
  auto fuzz_dim = [&rng]() -> int64_t {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return rng.UniformInt(1, 9);  // tiny / microkernel edge
      case 1: {
        const int64_t base[] = {8, 16, 32, 128, 256};
        return base[rng.UniformInt(0, 4)] + rng.UniformInt(-1, 1);
      }
      default:
        return rng.UniformInt(1, 200);
    }
  };
  for (int iter = 0; iter < 24; ++iter) {
    Shape s{fuzz_dim(), fuzz_dim(), fuzz_dim()};
    gemm::Layout layout = kLayouts[rng.UniformInt(0, 2)];
    bool accumulate = rng.UniformInt(0, 1) == 1;
    CheckShape(GetParam(), layout, s, accumulate,
               static_cast<uint64_t>(rng.UniformInt(1, 1 << 30)));
    if (HasFatalFailure()) return;
  }
}

TEST_P(GemmDifferential, DegenerateDimsAndNullPointers) {
  // m/k/n ∈ {0, 1}: empty operands may be null; k==0 must zero-fill C
  // exactly when !accumulate and leave it untouched when accumulating.
  for (int64_t m : {0, 1}) {
    for (int64_t k : {0, 1}) {
      for (int64_t n : {0, 1}) {
        for (gemm::Layout layout : kLayouts) {
          for (bool accumulate : {false, true}) {
            SCOPED_TRACE(ShapeName({m, k, n}) + "/" + LayoutName(layout) +
                         (accumulate ? "/acc" : ""));
            std::vector<float> a(static_cast<size_t>(m * k), 2.0f);
            std::vector<float> b(static_cast<size_t>(k * n), 3.0f);
            std::vector<float> c(static_cast<size_t>(m * n), 7.0f);
            gemm::Run(GetParam(), layout, a.empty() ? nullptr : a.data(),
                      b.empty() ? nullptr : b.data(),
                      c.empty() ? nullptr : c.data(), m, k, n, accumulate);
            if (m == 1 && n == 1) {
              float expected = k == 0 ? (accumulate ? 7.0f : 0.0f)
                                      : (accumulate ? 13.0f : 6.0f);
              EXPECT_EQ(c[0], expected);
            }
          }
        }
      }
    }
  }
}

TEST_P(GemmDifferential, CrossKernelAgreement) {
  // Every kernel must agree with naive within 2x the reference bound.
  const Shape shapes[] = {{33, 65, 47}, {128, 256, 96}, {5, 129, 517}};
  uint64_t seed = 0xabcd;
  for (const Shape& s : shapes) {
    for (gemm::Layout layout : kLayouts) {
      SCOPED_TRACE(std::string(gemm::KernelName(GetParam())) + "/" +
                   LayoutName(layout) + "/" + ShapeName(s));
      const int64_t m = s.m, k = s.k, n = s.n;
      std::vector<float> a = RandomVec(m * k, ++seed);
      std::vector<float> b = RandomVec(k * n, seed ^ 0x2545f4914f6cdd1dull);
      std::vector<double> cref, mag;
      ReferenceGemm(a, b, layout, m, k, n, &cref, &mag);
      std::vector<float> c_ref(static_cast<size_t>(m * n));
      std::vector<float> c_kernel(static_cast<size_t>(m * n));
      gemm::Run(gemm::Kernel::kNaive, layout, a.data(), b.data(), c_ref.data(),
                m, k, n, false);
      gemm::Run(GetParam(), layout, a.data(), b.data(), c_kernel.data(), m, k,
                n, false);
      const double bound_scale = 2.0 * (static_cast<double>(k) + 8.0) * kEps;
      for (int64_t i = 0; i < m * n; ++i) {
        const size_t idx = static_cast<size_t>(i);
        double err = std::fabs(static_cast<double>(c_kernel[idx]) -
                               static_cast<double>(c_ref[idx]));
        ASSERT_LE(err, bound_scale * mag[idx] + 1e-30)
            << "element " << i << ": " << gemm::KernelName(GetParam())
            << " gives " << c_kernel[idx] << ", naive gives " << c_ref[idx];
      }
    }
  }
}

TEST_P(GemmDifferential, RepeatedRunsBitwiseIdentical) {
  // Same kernel + same inputs -> bitwise-identical output, run to run.
  const Shape s{61, 130, 45};
  std::vector<float> a = RandomVec(s.m * s.k, 11);
  std::vector<float> b = RandomVec(s.k * s.n, 22);
  for (gemm::Layout layout : kLayouts) {
    std::vector<float> c1(static_cast<size_t>(s.m * s.n));
    std::vector<float> c2(static_cast<size_t>(s.m * s.n));
    gemm::Run(GetParam(), layout, a.data(), b.data(), c1.data(), s.m, s.k,
              s.n, false);
    gemm::Run(GetParam(), layout, a.data(), b.data(), c2.data(), s.m, s.k,
              s.n, false);
    ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                             c1.size() * sizeof(float)))
        << LayoutName(layout);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GemmDifferential,
                         ::testing::Values(gemm::Kernel::kNaive,
                                           gemm::Kernel::kBlocked,
                                           gemm::Kernel::kSimd),
                         [](const auto& info) {
                           return std::string(gemm::KernelName(info.param));
                         });

// ---- Dispatch-level regressions (internal::Gemm* wrappers) ------------------

TEST(GemmDispatch, EmptyProductsTolerateNullPointers) {
  // The PR 3 empty-vector serialize fix, mirrored for GEMM: m*n == 0 (or
  // k == 0 with empty inputs) must not dereference anything.
  internal::Gemm(nullptr, nullptr, nullptr, 0, 5, 3, false);
  internal::Gemm(nullptr, nullptr, nullptr, 4, 7, 0, true);
  internal::GemmTA(nullptr, nullptr, nullptr, 0, 0, 0, false);
  internal::GemmTB(nullptr, nullptr, nullptr, 0, 3, 0, true);
  float c[2] = {5.0f, 5.0f};
  internal::Gemm(nullptr, nullptr, c, 1, 0, 2, false);  // k==0 zero-fills
  EXPECT_EQ(c[0], 0.0f);
  EXPECT_EQ(c[1], 0.0f);
  c[0] = c[1] = 5.0f;
  internal::GemmTB(nullptr, nullptr, c, 2, 0, 1, true);  // k==0 + acc: no-op
  EXPECT_EQ(c[0], 5.0f);
  EXPECT_EQ(c[1], 5.0f);
}

TEST(GemmDispatch, KernelNamesRoundTrip) {
  for (gemm::Kernel k : {gemm::Kernel::kNaive, gemm::Kernel::kBlocked,
                         gemm::Kernel::kSimd}) {
    gemm::Kernel parsed;
    ASSERT_TRUE(gemm::ParseKernelName(gemm::KernelName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  gemm::Kernel parsed = gemm::Kernel::kNaive;
  EXPECT_FALSE(gemm::ParseKernelName("avx9000", &parsed));
  EXPECT_FALSE(gemm::ParseKernelName(nullptr, &parsed));
  EXPECT_EQ(parsed, gemm::Kernel::kNaive);  // untouched on failure
}

TEST(GemmDispatch, SetKernelRoutesDispatchers) {
  // SetKernel changes what internal::Gemm runs; kSimd degrades to kBlocked
  // when unsupported and the return value reports the real choice.
  gemm::Kernel prev = gemm::ActiveKernel();
  gemm::Kernel got = gemm::SetKernel(gemm::Kernel::kSimd);
  if (gemm::SimdAvailable()) {
    EXPECT_EQ(got, gemm::Kernel::kSimd);
  } else {
    EXPECT_EQ(got, gemm::Kernel::kBlocked);
  }
  EXPECT_EQ(gemm::ActiveKernel(), got);

  std::vector<float> a = RandomVec(12 * 40, 3);
  std::vector<float> b = RandomVec(40 * 9, 4);
  std::vector<float> via_dispatch(12 * 9), direct(12 * 9);
  internal::Gemm(a.data(), b.data(), via_dispatch.data(), 12, 40, 9, false);
  gemm::Run(got, gemm::Layout::kNN, a.data(), b.data(), direct.data(), 12, 40,
            9, false);
  EXPECT_EQ(0, std::memcmp(via_dispatch.data(), direct.data(),
                           direct.size() * sizeof(float)));
  EXPECT_EQ(gemm::SetKernel(prev), prev);
}

}  // namespace
}  // namespace dot
