// Chaos harness for the sharded oracle (DESIGN.md §5i): crash, poison,
// and slow individual shards under concurrent load through the router and
// assert the serving invariants the refactor exists for — no request lost
// or double-answered, availability through the degradation ladder, shard
// quarantine + probe recovery, and zero-error hot swaps mid-load. Faults
// are injected through the `serve.shard_dispatch[.<id>]` failpoints.
//
// check.sh runs this suite under TSan (stage 10): every test that spawns
// load threads doubles as a race detector over the shard/router locking.

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/shard.h"
#include "serve/router.h"
#include "util/failpoint.h"

namespace dot {
namespace {

class ChaosFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 4);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 300;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 23, "chaos"));
    grid_ = new Grid(dataset_->MakeGrid(8).ValueOrDie());
    DotConfig cfg;
    cfg.grid_size = 8;
    cfg.diffusion_steps = 30;
    cfg.sample_steps = 6;
    cfg.unet.base_channels = 8;
    cfg.unet.levels = 2;
    cfg.unet.cond_dim = 32;
    cfg.estimator.embed_dim = 32;
    cfg.estimator.layers = 1;
    cfg.stage1_epochs = 1;
    cfg.stage2_epochs = 2;
    cfg.val_samples = 0;
    cfg.stage2_inferred_fraction = 0.0;  // cheap per-process fixture setup
    cfg_ = new DotConfig(cfg);
    DotOracle oracle(cfg, *grid_);
    ASSERT_TRUE(oracle.TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        oracle.TrainStage2(dataset_->split.train, dataset_->split.val).ok());
    // Shards load replicas from a sealed checkpoint, exactly like
    // dot_server — the factory re-runs on every hot swap.
    ckpt_ = new std::string("/tmp/dot_chaos_" +
                            std::to_string(::getpid()) + ".ckpt");
    ASSERT_TRUE(oracle.SaveFile(*ckpt_).ok());
  }
  static void TearDownTestSuite() {
    if (ckpt_ != nullptr) std::remove(ckpt_->c_str());
    delete ckpt_;
    delete cfg_;
    delete grid_;
    delete dataset_;
    delete city_;
    ckpt_ = nullptr;
    cfg_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }
  // Never leak an armed failpoint into the next test.
  void TearDown() override { fail::DisarmAll(); }

  static ModelFactory CheckpointFactory() {
    return []() -> Result<std::unique_ptr<DotOracle>> {
      auto oracle = std::make_unique<DotOracle>(*cfg_, *grid_);
      Status loaded = oracle->LoadFile(*ckpt_);
      if (!loaded.ok()) return loaded;
      return oracle;
    };
  }

  /// Fast-failover shard config: no retry sleeps, quick probes.
  static ShardConfig FastShardConfig(const std::string& id) {
    ShardConfig cfg;
    cfg.shard_id = id;
    cfg.quarantine_after_failures = 3;
    cfg.probe_backoff_initial_ms = 10;
    cfg.probe_backoff_max_ms = 100;
    cfg.service.max_retries = 0;
    cfg.service.retry_backoff_ms = 0;
    return cfg;
  }

  static std::unique_ptr<OracleShard> MakeShard(ShardConfig cfg) {
    Result<std::unique_ptr<OracleShard>> shard =
        OracleShard::Create(CheckpointFactory(), std::move(cfg));
    EXPECT_TRUE(shard.ok()) << shard.status().ToString();
    return std::move(*shard);
  }

  static serve::ShardRouter MakeRouter(int n, const std::string& id_prefix) {
    std::vector<std::unique_ptr<OracleShard>> shards;
    for (int s = 0; s < n; ++s) {
      shards.push_back(MakeShard(FastShardConfig(id_prefix +
                                                 std::to_string(s))));
    }
    return serve::ShardRouter(std::move(shards));
  }

  /// A wave of `n` real OD pairs starting at test-trip `start` (cycled).
  static std::vector<OdtInput> Wave(int start, int n) {
    const auto& trips = dataset_->split.test;
    std::vector<OdtInput> wave;
    wave.reserve(n);
    for (int i = 0; i < n; ++i) {
      wave.push_back(trips[(start + i) % trips.size()].odt);
    }
    return wave;
  }

  static void ExpectAllServed(const Result<std::vector<DotEstimate>>& r,
                              size_t expected) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->size(), expected);
    for (const DotEstimate& e : *r) {
      EXPECT_TRUE(std::isfinite(e.minutes));
      EXPECT_GT(e.minutes, 0.0);
    }
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotConfig* cfg_;
  static std::string* ckpt_;
};

City* ChaosFixture::city_ = nullptr;
BenchmarkDataset* ChaosFixture::dataset_ = nullptr;
Grid* ChaosFixture::grid_ = nullptr;
DotConfig* ChaosFixture::cfg_ = nullptr;
std::string* ChaosFixture::ckpt_ = nullptr;

// ---- Crash one shard under concurrent load ---------------------------------

TEST_F(ChaosFixture, CrashedShardUnderLoadLosesNothingAndRecovers) {
  serve::ShardRouter router = MakeRouter(3, "c");
  // Shard c1's model "crashes" on every dispatch for the whole load run.
  fail::Arm("serve.shard_dispatch.c1", fail::Action::kError);

  constexpr int kThreads = 4;
  constexpr int kWavesPerThread = 20;
  constexpr int kWaveSize = 8;
  std::atomic<int64_t> answered{0};
  std::atomic<int64_t> full_or_degraded{0};
  std::atomic<int64_t> wave_errors{0};
  std::vector<std::thread> load;
  for (int t = 0; t < kThreads; ++t) {
    load.emplace_back([&, t] {
      for (int w = 0; w < kWavesPerThread; ++w) {
        std::vector<OdtInput> wave = Wave(t * 31 + w * kWaveSize, kWaveSize);
        Result<std::vector<DotEstimate>> r = router.Route(wave, {});
        if (!r.ok()) {
          ++wave_errors;
          continue;
        }
        // Exactly one answer per input — nothing lost, nothing duplicated.
        if (r->size() != wave.size()) {
          ++wave_errors;
          continue;
        }
        answered += static_cast<int64_t>(r->size());
        for (const DotEstimate& e : *r) {
          if (std::isfinite(e.minutes) && e.minutes > 0) ++full_or_degraded;
        }
      }
    });
  }
  for (auto& t : load) t.join();

  // Availability floor: every single request was answered with a usable
  // estimate (full quality off healthy shards, ladder-tagged off the
  // crashed one). The ISSUE floor is 99%; the design delivers 100%.
  int64_t total = kThreads * kWavesPerThread * kWaveSize;
  EXPECT_EQ(wave_errors.load(), 0);
  EXPECT_EQ(answered.load(), total);
  EXPECT_GE(full_or_degraded.load(), (total * 99) / 100);

  // The crashed shard was quarantined, the healthy ones untouched.
  std::vector<ShardStatus> statuses = router.Statuses();
  ASSERT_EQ(statuses.size(), 3u);
  for (const ShardStatus& s : statuses) {
    if (s.id == "c1") {
      EXPECT_EQ(s.health, ShardHealth::kQuarantined);
      EXPECT_GE(s.quarantines, 1);
    } else {
      EXPECT_EQ(s.health, ShardHealth::kHealthy);
      EXPECT_EQ(s.failures, 0);
    }
  }

  // Disarm the fault: the next due probe must bring the shard back.
  fail::DisarmAll();
  OracleShard* crashed = nullptr;
  for (size_t i = 0; i < router.shard_count(); ++i) {
    if (router.shard(i)->id() == "c1") crashed = router.shard(i);
  }
  ASSERT_NE(crashed, nullptr);
  for (int attempt = 0;
       attempt < 100 && crashed->health() != ShardHealth::kHealthy;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // Keep traffic flowing so a due probe has a wave to ride on.
    Result<std::vector<DotEstimate>> r =
        router.Route(Wave(attempt, kWaveSize), {});
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(crashed->health(), ShardHealth::kHealthy);
  // Recovered means full path: a fresh wave serves at full quality again.
  Result<std::vector<DotEstimate>> after = crashed->ServeWave(Wave(0, 2), {});
  ExpectAllServed(after, 2);
  EXPECT_EQ((*after)[0].quality, ServedQuality::kFull);
}

// ---- NaN poisoning, quarantine threshold, and ladder tagging ---------------

TEST_F(ChaosFixture, NanPoisonQuarantinesAtThresholdAndLadderIsTagged) {
  auto clock = std::make_shared<double>(0.0);
  ShardConfig cfg = FastShardConfig("n0");
  cfg.probe_backoff_initial_ms = 200;
  cfg.now_ms = [clock] { return *clock; };
  std::unique_ptr<OracleShard> shard = MakeShard(std::move(cfg));

  fail::Arm("serve.shard_dispatch.n0", fail::Action::kNan);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(shard->health(),
              i < 3 ? ShardHealth::kHealthy : ShardHealth::kQuarantined);
    Result<std::vector<DotEstimate>> r = shard->ServeWave(Wave(i, 4), {});
    ExpectAllServed(r, 4);
    // A poisoned dispatch serves through the ladder, tagged below full.
    for (const DotEstimate& e : *r) {
      EXPECT_NE(e.quality, ServedQuality::kFull);
    }
  }
  EXPECT_EQ(shard->health(), ShardHealth::kQuarantined);
  ShardStatus st = shard->status();
  EXPECT_EQ(st.consecutive_failures, 3);
  EXPECT_EQ(st.quarantines, 1);
  EXPECT_NEAR(st.next_probe_in_ms, 200, 1e-9);

  // Probe not yet due: the wave is answered ladder-only (no model touch,
  // so no probe consumed and the armed failpoint does not fire).
  int64_t fires_before = fail::Get("serve.shard_dispatch.n0")->fire_count();
  Result<std::vector<DotEstimate>> ladder = shard->ServeWave(Wave(9, 4), {});
  ExpectAllServed(ladder, 4);
  for (const DotEstimate& e : *ladder) {
    EXPECT_NE(e.quality, ServedQuality::kFull);
  }
  EXPECT_EQ(fail::Get("serve.shard_dispatch.n0")->fire_count(), fires_before);
  EXPECT_EQ(shard->status().probes, 0);

  // Fault cleared + backoff elapsed: the next wave is the probe, succeeds,
  // and the shard re-enters full-quality service.
  fail::DisarmAll();
  *clock += 250;
  Result<std::vector<DotEstimate>> probe = shard->ServeWave(Wave(0, 2), {});
  ExpectAllServed(probe, 2);
  EXPECT_EQ(shard->health(), ShardHealth::kHealthy);
  EXPECT_EQ(shard->status().probes, 1);
  EXPECT_EQ(shard->status().consecutive_failures, 0);
  EXPECT_EQ((*probe)[0].quality, ServedQuality::kFull);
}

// ---- Probe backoff doubles while the fault persists ------------------------

TEST_F(ChaosFixture, FailedProbesBackOffExponentially) {
  auto clock = std::make_shared<double>(0.0);
  ShardConfig cfg = FastShardConfig("p0");
  cfg.probe_backoff_initial_ms = 200;
  cfg.probe_backoff_max_ms = 500;
  cfg.now_ms = [clock] { return *clock; };
  std::unique_ptr<OracleShard> shard = MakeShard(std::move(cfg));

  fail::Arm("serve.shard_dispatch.p0", fail::Action::kError);
  for (int i = 0; i < 3; ++i) {
    ExpectAllServed(shard->ServeWave(Wave(i, 2), {}), 2);
  }
  ASSERT_EQ(shard->health(), ShardHealth::kQuarantined);
  EXPECT_NEAR(shard->status().next_probe_in_ms, 200, 1e-9);

  *clock += 200;  // first probe due: fails, backoff doubles to 400
  ExpectAllServed(shard->ServeWave(Wave(0, 2), {}), 2);
  EXPECT_EQ(shard->status().probes, 1);
  EXPECT_NEAR(shard->status().next_probe_in_ms, 400, 1e-9);

  *clock += 400;  // second probe: fails, doubling is capped at 500
  ExpectAllServed(shard->ServeWave(Wave(2, 2), {}), 2);
  EXPECT_EQ(shard->status().probes, 2);
  EXPECT_NEAR(shard->status().next_probe_in_ms, 500, 1e-9);

  fail::DisarmAll();
  *clock += 500;  // fault cleared: the third probe recovers the shard
  ExpectAllServed(shard->ServeWave(Wave(4, 2), {}), 2);
  EXPECT_EQ(shard->health(), ShardHealth::kHealthy);
  EXPECT_EQ(shard->status().probes, 3);
  EXPECT_NEAR(shard->status().next_probe_in_ms, 0, 1e-9);
}

// ---- Injected latency drives the p95 triage --------------------------------

TEST_F(ChaosFixture, DelayInjectionMarksShardDegradedThenRecovers) {
  ShardConfig cfg = FastShardConfig("d0");
  // Generous threshold + a much larger injected delay: the gap has to
  // survive sanitizer slowdowns (TSan makes cache-hit waves ~10-20x slower).
  cfg.degraded_p95_us = 60000;  // 60 ms
  cfg.degraded_min_samples = 3;
  cfg.window_seconds = 0.8;  // short window so recovery fits in a test
  cfg.window_bucket_seconds = 0.2;
  std::unique_ptr<OracleShard> shard = MakeShard(std::move(cfg));

  // Warm the cache so un-delayed waves are far under the threshold.
  std::vector<OdtInput> wave = Wave(0, 4);
  ExpectAllServed(shard->ServeWave(wave, {}), 4);

  // 200 ms of injected latency ahead of every dispatch: a hung dependency.
  fail::Arm("serve.shard_dispatch.d0", fail::Action::kDelay, /*count=*/-1,
            /*arg=*/200.0);
  for (int i = 0; i < 4; ++i) {
    ExpectAllServed(shard->ServeWave(wave, {}), 4);
  }
  EXPECT_EQ(shard->health(), ShardHealth::kDegraded);
  EXPECT_GT(shard->status().window_p95_us, 60000);
  // Degraded is triage, not failover: the shard still serves full quality.
  Result<std::vector<DotEstimate>> r = shard->ServeWave(wave, {});
  ExpectAllServed(r, 4);
  EXPECT_EQ((*r)[0].quality, ServedQuality::kFull);

  // Latency source removed + slow samples aged out: triage flips back.
  // The rolling window covers up to window_seconds + bucket_seconds (1.0 s)
  // depending on bucket alignment, so sleep past that worst case — one
  // surviving 200 ms sample would pin the p95 above the threshold.
  fail::DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(1300));
  for (int i = 0; i < 4 && shard->health() != ShardHealth::kHealthy; ++i) {
    ExpectAllServed(shard->ServeWave(wave, {}), 4);
  }
  EXPECT_EQ(shard->health(), ShardHealth::kHealthy);
}

// ---- Hot swap under concurrent load ----------------------------------------

TEST_F(ChaosFixture, HotSwapUnderLoadServesZeroErrorsAndBumpsVersions) {
  serve::ShardRouter router = MakeRouter(3, "s");
  for (const ShardStatus& s : router.Statuses()) {
    EXPECT_EQ(s.model_version, 1);
  }

  constexpr int kThreads = 3;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> served{0};
  std::vector<std::thread> load;
  for (int t = 0; t < kThreads; ++t) {
    load.emplace_back([&, t] {
      for (int w = 0; !stop.load(std::memory_order_relaxed); ++w) {
        std::vector<OdtInput> wave = Wave(t * 17 + w, 6);
        Result<std::vector<DotEstimate>> r = router.Route(wave, {});
        if (!r.ok() || r->size() != wave.size()) {
          ++errors;
          continue;
        }
        served += static_cast<int64_t>(r->size());
        for (const DotEstimate& e : *r) {
          if (!std::isfinite(e.minutes) || e.minutes <= 0) ++errors;
        }
      }
    });
  }
  // Let the load reach steady state, then swap every shard mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status swapped = router.SwapAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : load) t.join();

  EXPECT_TRUE(swapped.ok()) << swapped.ToString();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(served.load(), 0);
  for (const ShardStatus& s : router.Statuses()) {
    EXPECT_EQ(s.model_version, 2);
    EXPECT_EQ(s.swaps, 1);
    EXPECT_EQ(s.health, ShardHealth::kHealthy);
  }
  // And the swapped fleet keeps serving.
  ExpectAllServed(router.Route(Wave(0, 6), {}), 6);
}

// ---- Swap failure leaves the old model serving -----------------------------

TEST_F(ChaosFixture, FailedSwapKeepsTheCurrentModelServing) {
  // Factory succeeds once (shard creation), then the checkpoint "goes
  // away" — every swap attempt must fail without disturbing serving.
  auto calls = std::make_shared<std::atomic<int>>(0);
  ModelFactory flaky = [calls]() -> Result<std::unique_ptr<DotOracle>> {
    if (calls->fetch_add(1) > 0) {
      return Status::Internal("checkpoint store unavailable");
    }
    auto oracle = std::make_unique<DotOracle>(*cfg_, *grid_);
    Status loaded = oracle->LoadFile(*ckpt_);
    if (!loaded.ok()) return loaded;
    return oracle;
  };
  Result<std::unique_ptr<OracleShard>> shard =
      OracleShard::Create(flaky, FastShardConfig("f0"));
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();

  Status swap = (*shard)->HotSwap();
  EXPECT_FALSE(swap.ok());
  EXPECT_EQ((*shard)->model_version(), 1);
  EXPECT_EQ((*shard)->status().swaps, 0);
  Result<std::vector<DotEstimate>> r = (*shard)->ServeWave(Wave(0, 3), {});
  ExpectAllServed(r, 3);
  EXPECT_EQ((*r)[0].quality, ServedQuality::kFull);
}

TEST_F(ChaosFixture, UntrainedFactoryOutputIsRejectedAtCreateAndSwap) {
  ModelFactory untrained = []() -> Result<std::unique_ptr<DotOracle>> {
    return std::make_unique<DotOracle>(*cfg_, *grid_);  // never trained
  };
  Result<std::unique_ptr<OracleShard>> bad =
      OracleShard::Create(untrained, FastShardConfig("u0"));
  EXPECT_FALSE(bad.ok());
}

// ---- Per-shard metrics -----------------------------------------------------

TEST_F(ChaosFixture, PerShardCountersAreLabeledPerShard) {
  auto counter = [](const std::string& name, const std::string& shard) {
    return obs::MetricsRegistry::Get().GetCounter(name, {{"shard", shard}});
  };
  int64_t waves_m0 = counter("dot_shard_waves_total", "m0")->Value();
  int64_t waves_m1 = counter("dot_shard_waves_total", "m1")->Value();
  int64_t queries_m0 = counter("dot_shard_queries_total", "m0")->Value();
  int64_t queries_m1 = counter("dot_shard_queries_total", "m1")->Value();
  int64_t full_m0 = obs::MetricsRegistry::Get()
                        .GetCounter("dot_shard_quality_total",
                                    {{"shard", "m0"}, {"level", "full"}})
                        ->Value();

  std::vector<std::unique_ptr<OracleShard>> shards;
  shards.push_back(MakeShard(FastShardConfig("m0")));
  shards.push_back(MakeShard(FastShardConfig("m1")));
  // Serve only on m0: its counters move, m1's stay put (the labels really
  // separate the series).
  ExpectAllServed(shards[0]->ServeWave(Wave(0, 5), {}), 5);
  EXPECT_EQ(counter("dot_shard_waves_total", "m0")->Value(), waves_m0 + 1);
  EXPECT_EQ(counter("dot_shard_queries_total", "m0")->Value(),
            queries_m0 + 5);
  EXPECT_EQ(counter("dot_shard_waves_total", "m1")->Value(), waves_m1);
  EXPECT_EQ(counter("dot_shard_queries_total", "m1")->Value(), queries_m1);

  // Quality tallies land under the right level label.
  EXPECT_EQ(obs::MetricsRegistry::Get()
                .GetCounter("dot_shard_quality_total",
                            {{"shard", "m0"}, {"level", "full"}})
                ->Value(),
            full_m0 + 5);

  // The exposition renders the labeled series.
  std::string text = obs::MetricsToPrometheusText();
  EXPECT_NE(text.find("dot_shard_waves_total{shard=\"m0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dot_shard_quality_total{shard=\"m0\",level=\"full\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dot_shard_health{shard=\"m0\"}"), std::string::npos);
}

}  // namespace
}  // namespace dot
