// Tests for the stage-2 estimators, including the MViT == ViT equivalence
// property (paper Sec. 5.2: masking only changes the computation, not the
// function) and the speed advantage of the masked scheme.

#include "core/estimator.h"

#include <gtest/gtest.h>

#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "util/stopwatch.h"

namespace dot {
namespace {

EstimatorConfig SmallConfig(int64_t grid = 12) {
  EstimatorConfig cfg;
  cfg.grid_size = grid;
  cfg.embed_dim = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  return cfg;
}

/// A PiT with a diagonal route and plausible channel values.
Pit DiagonalPit(int64_t grid, int64_t cells_visited, float tod = 0.1f) {
  Pit pit(grid);
  for (int64_t i = 0; i < std::min(grid, cells_visited); ++i) {
    pit.Set(kPitMask, i, i, 1.0f);
    pit.Set(kPitTimeOfDay, i, i, tod);
    float offset = cells_visited > 1
                       ? 2.0f * static_cast<float>(i) /
                                 static_cast<float>(cells_visited - 1) -
                             1.0f
                       : 0.0f;
    pit.Set(kPitTimeOffset, i, i, offset);
  }
  return pit;
}

TEST(EstimatorTest, MvitOutputShape) {
  Rng rng(1);
  TransformerEstimator mvit(SmallConfig(), /*masked=*/true, &rng);
  std::vector<Pit> batch = {DiagonalPit(12, 5), DiagonalPit(12, 8)};
  NoGradGuard guard;
  Tensor y = mvit.ForwardBatch(batch, {});
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 1}));
}

TEST(EstimatorTest, MvitEqualsVitOnSamePit) {
  // Build both estimators with identical weights (same seed stream) and
  // check the property the paper relies on: masked attention over packed
  // valid tokens computes the same function as full attention with a mask.
  Rng rng1(7), rng2(7);
  EstimatorConfig cfg = SmallConfig();
  TransformerEstimator mvit(cfg, /*masked=*/true, &rng1);
  TransformerEstimator vit(cfg, /*masked=*/false, &rng2);
  // The MViT==ViT equivalence is an fp32 contract: under dynamic int8 the
  // packed and masked paths quantize V over different sequence lengths, so
  // their column scales (and thus outputs) differ by a quantization step.
  struct Fp32Pin {
    gemm::Precision prev = gemm::SetPrecision(gemm::Precision::kFp32);
    ~Fp32Pin() { gemm::SetPrecision(prev); }
  } pin;
  NoGradGuard guard;
  for (int64_t visited : {1, 3, 7, 12}) {
    Pit pit = DiagonalPit(12, visited);
    float a = mvit.ForwardBatch({pit}, {}).at(0);
    float b = vit.ForwardBatch({pit}, {}).at(0);
    EXPECT_NEAR(a, b, 5e-4) << "visited=" << visited;
  }
}

TEST(EstimatorTest, MvitFasterThanVitOnSparsePits) {
  Rng rng1(8), rng2(8);
  EstimatorConfig cfg = SmallConfig(/*grid=*/24);
  TransformerEstimator mvit(cfg, true, &rng1);
  TransformerEstimator vit(cfg, false, &rng2);
  std::vector<Pit> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(DiagonalPit(24, 12));
  NoGradGuard guard;
  // Warm up once.
  mvit.ForwardBatch(batch, {});
  vit.ForwardBatch(batch, {});
  Stopwatch sw;
  for (int i = 0; i < 3; ++i) mvit.ForwardBatch(batch, {});
  double t_mvit = sw.ElapsedSeconds();
  sw.Restart();
  for (int i = 0; i < 3; ++i) vit.ForwardBatch(batch, {});
  double t_vit = sw.ElapsedSeconds();
  // 12 valid tokens vs 576: the masked scheme must be clearly faster.
  EXPECT_LT(t_mvit, t_vit * 0.6);
}

TEST(EstimatorTest, DifferentRoutesGiveDifferentEstimates) {
  Rng rng(9);
  TransformerEstimator mvit(SmallConfig(), true, &rng);
  NoGradGuard guard;
  float a = mvit.ForwardBatch({DiagonalPit(12, 3)}, {}).at(0);
  float b = mvit.ForwardBatch({DiagonalPit(12, 11)}, {}).at(0);
  EXPECT_NE(a, b);
}

TEST(EstimatorTest, EmptyPitFallsBackGracefully) {
  Rng rng(10);
  TransformerEstimator mvit(SmallConfig(), true, &rng);
  NoGradGuard guard;
  Pit empty(12);
  Tensor y = mvit.ForwardBatch({empty}, {});
  EXPECT_TRUE(std::isfinite(y.at(0)));
}

TEST(EstimatorTest, AblationVariantsConstructAndRun) {
  Rng rng(11);
  EstimatorConfig no_ce = SmallConfig();
  no_ce.use_cell_embedding = false;
  EstimatorConfig no_st = SmallConfig();
  no_st.use_latent_cast = false;
  TransformerEstimator a(no_ce, true, &rng);
  TransformerEstimator b(no_st, true, &rng);
  NoGradGuard guard;
  Pit pit = DiagonalPit(12, 6);
  EXPECT_TRUE(std::isfinite(a.ForwardBatch({pit}, {}).at(0)));
  EXPECT_TRUE(std::isfinite(b.ForwardBatch({pit}, {}).at(0)));
  EXPECT_LT(a.NumParams(), TransformerEstimator(SmallConfig(), true, &rng).NumParams());
}

TEST(EstimatorTest, CnnShapeAndFiniteness) {
  Rng rng(12);
  CnnEstimator cnn(SmallConfig(), &rng);
  NoGradGuard guard;
  Tensor y = cnn.ForwardBatch({DiagonalPit(12, 4), DiagonalPit(12, 9)}, {});
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 1}));
  EXPECT_TRUE(std::isfinite(y.at(0)));
}

TEST(EstimatorTest, FactoryProducesRequestedKind) {
  Rng rng(13);
  auto mvit = MakeEstimator(EstimatorKind::kMvit, SmallConfig(), &rng);
  auto vit = MakeEstimator(EstimatorKind::kVit, SmallConfig(), &rng);
  auto cnn = MakeEstimator(EstimatorKind::kCnn, SmallConfig(), &rng);
  ASSERT_NE(mvit, nullptr);
  ASSERT_NE(vit, nullptr);
  ASSERT_NE(cnn, nullptr);
  auto* t1 = dynamic_cast<TransformerEstimator*>(mvit.get());
  auto* t2 = dynamic_cast<TransformerEstimator*>(vit.get());
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_TRUE(t1->masked());
  EXPECT_FALSE(t2->masked());
  EXPECT_NE(dynamic_cast<CnnEstimator*>(cnn.get()), nullptr);
}

TEST(EstimatorTest, TrainingFitsTravelTimeFromPitLength) {
  // Travel time proportional to route length: a few epochs must reduce MSE
  // dramatically — the stage-2 learning sanity check.
  Rng rng(14);
  TransformerEstimator mvit(SmallConfig(), true, &rng);
  optim::Adam opt(mvit.Parameters(), 5e-3f);
  std::vector<Pit> pits;
  std::vector<float> targets;
  for (int64_t len = 2; len <= 11; ++len) {
    pits.push_back(DiagonalPit(12, len));
    targets.push_back(static_cast<float>(len) / 11.0f);  // normalized target
  }
  Tensor y = Tensor::FromVector({static_cast<int64_t>(targets.size()), 1}, targets);
  double first = 0, last = 0;
  for (int it = 0; it < 60; ++it) {
    mvit.ZeroGrad();
    Tensor loss = MseLoss(mvit.ForwardBatch(pits, {}), y);
    if (it == 0) first = loss.item();
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first * 0.1);
}

}  // namespace
}  // namespace dot
