// Tests for the baseline methods of Sec. 6.2: correctness of each method's
// mechanics plus learning sanity checks on a small simulated city.

#include <gtest/gtest.h>

#include <unordered_set>

#include "baselines/cell_history.h"
#include "baselines/deepod.h"
#include "baselines/embedding.h"
#include "baselines/outlier.h"
#include "baselines/path_tte.h"
#include "baselines/regression.h"
#include "baselines/routers.h"
#include "baselines/temp.h"
#include "eval/metrics.h"

namespace dot {
namespace {

/// Small shared dataset for the learning checks.
class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 12;
    cc.rush_hour_strength = 0.65;
    cc.spacing_meters = 900;
    city_ = new City(cc, 5);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 1500;
    tc.max_od_meters = 7000;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 55, "test-city"));
    grid_ = new Grid(dataset_->MakeGrid(16).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete grid_;
    delete dataset_;
    delete city_;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }

  /// MAE of always predicting the training mean — the bar every learning
  /// method must beat.
  static double MeanPredictorMae() {
    double mean = 0;
    for (const auto& s : dataset_->split.train) mean += s.travel_time_minutes;
    mean /= static_cast<double>(dataset_->split.train.size());
    MetricsAccumulator acc;
    for (const auto& s : dataset_->split.test) acc.Add(mean, s.travel_time_minutes);
    return acc.Finalize().mae;
  }

  static double TestMae(const OdtOracle& oracle) {
    MetricsAccumulator acc;
    for (const auto& s : dataset_->split.test) {
      acc.Add(oracle.EstimateMinutes(s.odt), s.travel_time_minutes);
    }
    return acc.Finalize().mae;
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
};

City* BaselineFixture::city_ = nullptr;
BenchmarkDataset* BaselineFixture::dataset_ = nullptr;
Grid* BaselineFixture::grid_ = nullptr;

// ---- TEMP -------------------------------------------------------------------------

TEST(TempUnitTest, AveragesNeighborsIncludingOutlier) {
  // The Fig. 1 example: three 15-minute trips and one 35-minute outlier with
  // the same OD and departure window. TEMP must return 20 — the failure mode
  // motivating DOT.
  std::vector<TripSample> train;
  for (double minutes : {15.0, 15.0, 15.0, 35.0}) {
    TripSample s;
    s.odt = {{104.00, 30.60}, {104.02, 30.62}, 8 * 3600};
    s.travel_time_minutes = minutes;
    train.push_back(s);
  }
  TempOracle temp;
  ASSERT_TRUE(temp.Train(train, {}).ok());
  OdtInput q{{104.0001, 30.6001}, {104.0201, 30.6199}, 8 * 3600 + 600};
  EXPECT_NEAR(temp.EstimateMinutes(q), 20.0, 0.01);
}

TEST(TempUnitTest, WidensSearchWhenNoCloseNeighbors) {
  std::vector<TripSample> train;
  TripSample far;
  far.odt = {{104.00, 30.60}, {104.05, 30.65}, 12 * 3600};
  far.travel_time_minutes = 25.0;
  train.push_back(far);
  train.push_back(far);
  train.push_back(far);
  TempOracle temp;
  ASSERT_TRUE(temp.Train(train, {}).ok());
  // Query ~2 km away and 3 hours off: only reachable after widening.
  OdtInput q{{104.02, 30.60}, {104.07, 30.65}, 15 * 3600};
  EXPECT_NEAR(temp.EstimateMinutes(q), 25.0, 0.01);
}

TEST(TempUnitTest, FallsBackToGlobalMean) {
  std::vector<TripSample> train;
  TripSample a;
  a.odt = {{104.00, 30.60}, {104.05, 30.65}, 6 * 3600};
  a.travel_time_minutes = 10.0;
  train.push_back(a);
  TempOracle temp;
  ASSERT_TRUE(temp.Train(train, {}).ok());
  OdtInput q{{105.5, 31.5}, {105.9, 31.9}, 20 * 3600};
  EXPECT_NEAR(temp.EstimateMinutes(q), 10.0, 1e-9);  // global mean of 1 trip
}

// ---- LR / GBM ----------------------------------------------------------------------

TEST_F(BaselineFixture, LinearRegressionRecoversLinearSignal) {
  // Craft targets that are exactly linear in the distance feature.
  std::vector<TripSample> train = dataset_->split.train;
  for (auto& s : train) {
    s.travel_time_minutes =
        3.0 + 2.5 * (DistanceMeters(s.odt.origin, s.odt.destination) / 1000.0);
  }
  LinearRegressionOracle lr(*grid_);
  ASSERT_TRUE(lr.Train(train, {}).ok());
  for (size_t i = 0; i < 10; ++i) {
    const auto& s = dataset_->split.test[i];
    double want =
        3.0 + 2.5 * (DistanceMeters(s.odt.origin, s.odt.destination) / 1000.0);
    EXPECT_NEAR(lr.EstimateMinutes(s.odt), want, 0.05);
  }
}

TEST_F(BaselineFixture, LrBeatsMeanPredictor) {
  LinearRegressionOracle lr(*grid_);
  ASSERT_TRUE(lr.Train(dataset_->split.train, dataset_->split.val).ok());
  EXPECT_LT(TestMae(lr), MeanPredictorMae());
}

TEST(RegressionTreeUnitTest, PredictFollowsSplits) {
  RegressionTree tree;
  tree.nodes.push_back({0, 0.5, 0.0, 1, 2});   // root: split on f0 <= 0.5
  tree.nodes.push_back({-1, 0, 10.0, -1, -1});  // left leaf
  tree.nodes.push_back({-1, 0, 20.0, -1, -1});  // right leaf
  EXPECT_DOUBLE_EQ(tree.Predict({0.2}), 10.0);
  EXPECT_DOUBLE_EQ(tree.Predict({0.7}), 20.0);
}

TEST_F(BaselineFixture, GbmFitsNonlinearSignalBetterThanLr) {
  // Target nonlinear in the features: LR cannot represent it, GBM can.
  std::vector<TripSample> train = dataset_->split.train;
  std::vector<TripSample> test = dataset_->split.test;
  auto target = [&](const TripSample& s) {
    double km = DistanceMeters(s.odt.origin, s.odt.destination) / 1000.0;
    return km > 3.0 ? 30.0 : 8.0;  // step function of distance
  };
  for (auto& s : train) s.travel_time_minutes = target(s);
  for (auto& s : test) s.travel_time_minutes = target(s);
  LinearRegressionOracle lr(*grid_);
  GbmOracle gbm(*grid_);
  ASSERT_TRUE(lr.Train(train, {}).ok());
  ASSERT_TRUE(gbm.Train(train, {}).ok());
  MetricsAccumulator lr_acc, gbm_acc;
  for (const auto& s : test) {
    lr_acc.Add(lr.EstimateMinutes(s.odt), s.travel_time_minutes);
    gbm_acc.Add(gbm.EstimateMinutes(s.odt), s.travel_time_minutes);
  }
  EXPECT_LT(gbm_acc.Finalize().mae, lr_acc.Finalize().mae * 0.7);
}

TEST_F(BaselineFixture, GbmBeatsMeanPredictor) {
  GbmOracle gbm(*grid_);
  ASSERT_TRUE(gbm.Train(dataset_->split.train, dataset_->split.val).ok());
  EXPECT_LT(TestMae(gbm), MeanPredictorMae());
  EXPECT_GT(gbm.num_trees(), 10);
}

// ---- Neural ODT baselines ------------------------------------------------------------

TEST_F(BaselineFixture, StnnBeatsMeanPredictor) {
  StnnOracle stnn(*grid_);
  ASSERT_TRUE(stnn.Train(dataset_->split.train, dataset_->split.val).ok());
  EXPECT_LT(TestMae(stnn), MeanPredictorMae());
}

TEST_F(BaselineFixture, MuratBeatsMeanPredictor) {
  MuratOracle murat(*grid_);
  ASSERT_TRUE(murat.Train(dataset_->split.train, dataset_->split.val).ok());
  EXPECT_LT(TestMae(murat), MeanPredictorMae());
}

TEST_F(BaselineFixture, RneBeatsMeanPredictor) {
  RneOracle rne(*grid_);
  ASSERT_TRUE(rne.Train(dataset_->split.train, dataset_->split.val).ok());
  EXPECT_LT(TestMae(rne), MeanPredictorMae());
}

TEST_F(BaselineFixture, DeepOdBeatsMeanPredictor) {
  DeepOdConfig cfg;
  cfg.epochs = 6;  // keep the unit test quick
  DeepOdOracle deepod(*grid_, cfg);
  ASSERT_TRUE(deepod.Train(dataset_->split.train, dataset_->split.val).ok());
  EXPECT_LT(TestMae(deepod), MeanPredictorMae());
}

// ---- CellHistory ----------------------------------------------------------------------

TEST_F(BaselineFixture, CellHistoryLearnsTransitions) {
  CellHistory history = CellHistory::Learn(dataset_->split.train, *grid_);
  EXPECT_GT(history.global_mean_seconds(), 5);
  EXPECT_LT(history.global_mean_seconds(), 600);
  // Some transitions must have been observed, and successors must be
  // consistent with counts.
  int64_t observed = 0;
  for (int64_t c = 0; c < grid_->num_cells(); ++c) {
    for (int64_t to : history.Successors(c)) {
      EXPECT_GT(history.TransitionCount(c, to), 0);
      ++observed;
    }
  }
  EXPECT_GT(observed, 50);
}

TEST_F(BaselineFixture, RouteToPitProducesValidChannels) {
  CellHistory history = CellHistory::Learn(dataset_->split.train, *grid_);
  const auto& sample = dataset_->split.test[0];
  std::vector<int64_t> path = CellPathOf(sample.trajectory, *grid_, true);
  Pit pit = history.RouteToPit(path, sample.odt.departure_time);
  EXPECT_EQ(pit.NumVisited(), static_cast<int64_t>(
      std::unordered_set<int64_t>(path.begin(), path.end()).size()));
  // Offsets of first/last route cells must be -1 / +1.
  int64_t l = grid_->grid_size();
  EXPECT_NEAR(pit.At(kPitTimeOffset, path.front() / l, path.front() % l), -1.0f,
              1e-5);
}

// ---- Routers ----------------------------------------------------------------------------

TEST_F(BaselineFixture, DijkstraRouteConnectsEndpoints) {
  DijkstraRouter router(&city_->network(), *grid_);
  ASSERT_TRUE(router.Train(dataset_->split.train).ok());
  const auto& s = dataset_->split.test[0];
  std::vector<int64_t> route = router.Route(s.odt);
  ASSERT_GE(route.size(), 2u);
  EXPECT_EQ(route.front(), grid_->CellIndex(grid_->Locate(s.odt.origin)));
  EXPECT_EQ(route.back(), grid_->CellIndex(grid_->Locate(s.odt.destination)));
  EXPECT_GT(router.EstimateMinutes(s.odt), 0);
}

TEST_F(BaselineFixture, DeepStReachesDestinationOnMostQueries) {
  DeepStRouter router(*grid_);
  ASSERT_TRUE(router.Train(dataset_->split.train).ok());
  int64_t reached = 0, total = 0;
  for (size_t i = 0; i < std::min<size_t>(dataset_->split.test.size(), 30); ++i) {
    const auto& s = dataset_->split.test[i];
    std::vector<int64_t> route = router.Route(s.odt);
    int64_t dest = grid_->CellIndex(grid_->Locate(s.odt.destination));
    if (!route.empty() && route.back() == dest) ++reached;
    ++total;
  }
  EXPECT_GT(reached, total * 7 / 10);
}

TEST_F(BaselineFixture, DeepStBeatsDijkstraOnTravelTime) {
  // The paper's Table 3 ordering: the learned router's times are closer to
  // reality than shortest-path times.
  DijkstraRouter dijkstra(&city_->network(), *grid_);
  DeepStRouter deepst(*grid_);
  ASSERT_TRUE(dijkstra.Train(dataset_->split.train).ok());
  ASSERT_TRUE(deepst.Train(dataset_->split.train).ok());
  MetricsAccumulator dj, ds;
  for (size_t i = 0; i < std::min<size_t>(dataset_->split.test.size(), 60); ++i) {
    const auto& s = dataset_->split.test[i];
    dj.Add(dijkstra.EstimateMinutes(s.odt), s.travel_time_minutes);
    ds.Add(deepst.EstimateMinutes(s.odt), s.travel_time_minutes);
  }
  EXPECT_LT(ds.Finalize().mae, dj.Finalize().mae);
}

// ---- Path-based TTE ----------------------------------------------------------------------

TEST_F(BaselineFixture, WddraWithTruePathsBeatsMeanPredictor) {
  PathTteConfig cfg;
  cfg.epochs = 5;
  RecurrentPathEstimator wddra(*grid_, /*deep=*/false, cfg);
  ASSERT_TRUE(wddra.Train(dataset_->split.train, dataset_->split.val).ok());
  MetricsAccumulator acc;
  for (const auto& s : dataset_->split.test) {
    std::vector<int64_t> path = CellPathOf(s.trajectory, *grid_, true);
    acc.Add(wddra.EstimateMinutes(path, s.odt), s.travel_time_minutes);
  }
  EXPECT_LT(acc.Finalize().mae, MeanPredictorMae());
}

TEST_F(BaselineFixture, StdgcnSearchReturnsTrainedModel) {
  PathTteConfig cfg;
  cfg.epochs = 3;
  auto model = SearchStdgcn(*grid_, dataset_->split.train, dataset_->split.val, cfg);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), "STDGCN");
  const auto& s = dataset_->split.test[0];
  std::vector<int64_t> path = CellPathOf(s.trajectory, *grid_, true);
  double est = model->EstimateMinutes(path, s.odt);
  EXPECT_GT(est, 0);
  EXPECT_LT(est, 120);
}

// ---- Outlier detection -----------------------------------------------------------------

TEST_F(BaselineFixture, OutlierDetectorFindsInjectedDetours) {
  OutlierReport report = DetectOutliers(dataset_->split.train, *grid_);
  // Recall on simulator-injected outliers should beat the base rate clearly.
  int64_t true_outliers = 0, caught = 0;
  for (size_t i = 0; i < dataset_->split.train.size(); ++i) {
    if (dataset_->split.train[i].is_outlier) {
      ++true_outliers;
      if (report.is_outlier[i]) ++caught;
    }
  }
  ASSERT_GT(true_outliers, 0);
  double recall = static_cast<double>(caught) / static_cast<double>(true_outliers);
  double flag_rate = static_cast<double>(report.num_flagged) /
                     static_cast<double>(dataset_->split.train.size());
  EXPECT_GT(recall, flag_rate);  // better than random flagging
  EXPECT_LT(flag_rate, 0.5);     // doesn't throw away half the data
}

TEST_F(BaselineFixture, RemoveOutliersKeepsMajority) {
  auto kept = RemoveOutliers(dataset_->split.train, *grid_);
  EXPECT_GT(kept.size(), dataset_->split.train.size() / 2);
  EXPECT_LE(kept.size(), dataset_->split.train.size());
}

}  // namespace
}  // namespace dot
