// Tests for the OracleService caching layer.

#include "core/oracle_service.h"

#include <gtest/gtest.h>

#include "util/stopwatch.h"

namespace dot {
namespace {

class OracleServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 4);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 300;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 11, "svc"));
    grid_ = new Grid(dataset_->MakeGrid(8).ValueOrDie());
    DotConfig cfg;
    cfg.grid_size = 8;
    cfg.diffusion_steps = 30;
    cfg.sample_steps = 6;
    cfg.unet.base_channels = 8;
    cfg.unet.levels = 2;
    cfg.unet.cond_dim = 32;
    cfg.estimator.embed_dim = 32;
    cfg.estimator.layers = 1;
    cfg.stage1_epochs = 1;
    cfg.stage2_epochs = 2;
    cfg.val_samples = 0;
    cfg.stage2_inferred_fraction = 0.0;  // cheap per-process fixture setup
    oracle_ = new DotOracle(cfg, *grid_);
    ASSERT_TRUE(oracle_->TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        oracle_->TrainStage2(dataset_->split.train, dataset_->split.val).ok());
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete grid_;
    delete dataset_;
    delete city_;
    oracle_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotOracle* oracle_;
};

City* OracleServiceFixture::city_ = nullptr;
BenchmarkDataset* OracleServiceFixture::dataset_ = nullptr;
Grid* OracleServiceFixture::grid_ = nullptr;
DotOracle* OracleServiceFixture::oracle_ = nullptr;

TEST_F(OracleServiceFixture, RepeatQueryHitsCache) {
  OracleService service(oracle_);
  const OdtInput& odt = dataset_->split.test[0].odt;
  Result<DotEstimate> first = service.Query(odt);
  ASSERT_TRUE(first.ok());
  Result<DotEstimate> second = service.Query(odt);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service.stats().queries, 2);
  EXPECT_EQ(service.stats().cache_hits, 1);
  // Cached estimate comes from the cached PiT — identical value.
  EXPECT_DOUBLE_EQ(first->minutes, second->minutes);
}

TEST_F(OracleServiceFixture, CacheHitIsMuchFaster) {
  OracleService service(oracle_);
  const OdtInput& odt = dataset_->split.test[1].odt;
  Stopwatch sw;
  ASSERT_TRUE(service.Query(odt).ok());
  double cold = sw.ElapsedSeconds();
  sw.Restart();
  ASSERT_TRUE(service.Query(odt).ok());
  double warm = sw.ElapsedSeconds();
  EXPECT_LT(warm, cold * 0.5);
}

TEST_F(OracleServiceFixture, NearbyQueriesShareBuckets) {
  OracleService service(oracle_);
  OdtInput a = dataset_->split.test[2].odt;
  OdtInput b = a;
  // A few meters and seconds away: same cells, same slot.
  b.origin.lng += 1e-5;
  b.departure_time += 30;
  ASSERT_TRUE(service.Query(a).ok());
  ASSERT_TRUE(service.Query(b).ok());
  EXPECT_EQ(service.stats().cache_hits, 1);
}

TEST_F(OracleServiceFixture, DifferentSlotsMissCache) {
  OracleService service(oracle_);
  OdtInput a = dataset_->split.test[3].odt;
  OdtInput b = a;
  b.departure_time += 6 * 3600;  // different slot
  ASSERT_TRUE(service.Query(a).ok());
  ASSERT_TRUE(service.Query(b).ok());
  EXPECT_EQ(service.stats().cache_hits, 0);
  EXPECT_EQ(service.cache_size(), 2);
}

TEST_F(OracleServiceFixture, WarmPrecomputesBuckets) {
  OracleService service(oracle_);
  std::vector<OdtInput> odts;
  for (size_t i = 0; i < 5; ++i) odts.push_back(dataset_->split.test[i].odt);
  ASSERT_TRUE(service.Warm(odts).ok());
  EXPECT_GT(service.cache_size(), 0);
  for (const auto& odt : odts) ASSERT_TRUE(service.Query(odt).ok());
  EXPECT_EQ(service.stats().cache_hits, service.stats().queries);
}

TEST_F(OracleServiceFixture, ClearCacheResets) {
  OracleService service(oracle_);
  ASSERT_TRUE(service.Query(dataset_->split.test[0].odt).ok());
  EXPECT_GT(service.cache_size(), 0);
  service.ClearCache();
  EXPECT_EQ(service.cache_size(), 0);
}

TEST_F(OracleServiceFixture, HitRateStatistics) {
  OracleService service(oracle_);
  EXPECT_EQ(service.stats().hit_rate(), 0.0);
  const OdtInput& odt = dataset_->split.test[0].odt;
  ASSERT_TRUE(service.Query(odt).ok());
  ASSERT_TRUE(service.Query(odt).ok());
  ASSERT_TRUE(service.Query(odt).ok());
  EXPECT_NEAR(service.stats().hit_rate(), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace dot
