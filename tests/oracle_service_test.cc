// Tests for the OracleService caching layer.

#include "core/oracle_service.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "util/stopwatch.h"

namespace dot {
namespace {

class OracleServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 4);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 300;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 11, "svc"));
    grid_ = new Grid(dataset_->MakeGrid(8).ValueOrDie());
    DotConfig cfg;
    cfg.grid_size = 8;
    cfg.diffusion_steps = 30;
    cfg.sample_steps = 6;
    cfg.unet.base_channels = 8;
    cfg.unet.levels = 2;
    cfg.unet.cond_dim = 32;
    cfg.estimator.embed_dim = 32;
    cfg.estimator.layers = 1;
    cfg.stage1_epochs = 1;
    cfg.stage2_epochs = 2;
    cfg.val_samples = 0;
    cfg.stage2_inferred_fraction = 0.0;  // cheap per-process fixture setup
    oracle_ = new DotOracle(cfg, *grid_);
    ASSERT_TRUE(oracle_->TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        oracle_->TrainStage2(dataset_->split.train, dataset_->split.val).ok());
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete grid_;
    delete dataset_;
    delete city_;
    oracle_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotOracle* oracle_;
};

City* OracleServiceFixture::city_ = nullptr;
BenchmarkDataset* OracleServiceFixture::dataset_ = nullptr;
Grid* OracleServiceFixture::grid_ = nullptr;
DotOracle* OracleServiceFixture::oracle_ = nullptr;

TEST_F(OracleServiceFixture, RepeatQueryHitsCache) {
  OracleService service(oracle_);
  const OdtInput& odt = dataset_->split.test[0].odt;
  Result<DotEstimate> first = service.Query(odt);
  ASSERT_TRUE(first.ok());
  Result<DotEstimate> second = service.Query(odt);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service.stats().queries, 2);
  EXPECT_EQ(service.stats().cache_hits, 1);
  // Cached estimate comes from the cached PiT — identical value.
  EXPECT_DOUBLE_EQ(first->minutes, second->minutes);
}

TEST_F(OracleServiceFixture, CacheHitIsMuchFaster) {
  OracleService service(oracle_);
  const OdtInput& odt = dataset_->split.test[1].odt;
  Stopwatch sw;
  ASSERT_TRUE(service.Query(odt).ok());
  double cold = sw.ElapsedSeconds();
  sw.Restart();
  ASSERT_TRUE(service.Query(odt).ok());
  double warm = sw.ElapsedSeconds();
  EXPECT_LT(warm, cold * 0.5);
}

TEST_F(OracleServiceFixture, NearbyQueriesShareBuckets) {
  OracleService service(oracle_);
  OdtInput a = dataset_->split.test[2].odt;
  OdtInput b = a;
  // A few meters and seconds away: same cells, same slot.
  b.origin.lng += 1e-5;
  b.departure_time += 30;
  ASSERT_TRUE(service.Query(a).ok());
  ASSERT_TRUE(service.Query(b).ok());
  EXPECT_EQ(service.stats().cache_hits, 1);
}

TEST_F(OracleServiceFixture, DifferentSlotsMissCache) {
  OracleService service(oracle_);
  OdtInput a = dataset_->split.test[3].odt;
  OdtInput b = a;
  b.departure_time += 6 * 3600;  // different slot
  ASSERT_TRUE(service.Query(a).ok());
  ASSERT_TRUE(service.Query(b).ok());
  EXPECT_EQ(service.stats().cache_hits, 0);
  EXPECT_EQ(service.cache_size(), 2);
}

TEST_F(OracleServiceFixture, WarmPrecomputesBuckets) {
  OracleService service(oracle_);
  std::vector<OdtInput> odts;
  for (size_t i = 0; i < 5; ++i) odts.push_back(dataset_->split.test[i].odt);
  ASSERT_TRUE(service.Warm(odts).ok());
  EXPECT_GT(service.cache_size(), 0);
  for (const auto& odt : odts) ASSERT_TRUE(service.Query(odt).ok());
  EXPECT_EQ(service.stats().cache_hits, service.stats().queries);
}

TEST_F(OracleServiceFixture, ClearCacheResets) {
  OracleService service(oracle_);
  ASSERT_TRUE(service.Query(dataset_->split.test[0].odt).ok());
  EXPECT_GT(service.cache_size(), 0);
  service.ClearCache();
  EXPECT_EQ(service.cache_size(), 0);
}

TEST_F(OracleServiceFixture, HitRateStatistics) {
  OracleService service(oracle_);
  EXPECT_EQ(service.stats().hit_rate(), 0.0);
  const OdtInput& odt = dataset_->split.test[0].odt;
  ASSERT_TRUE(service.Query(odt).ok());
  ASSERT_TRUE(service.Query(odt).ok());
  ASSERT_TRUE(service.Query(odt).ok());
  EXPECT_NEAR(service.stats().hit_rate(), 2.0 / 3.0, 1e-9);
}

TEST_F(OracleServiceFixture, EvictsLeastRecentlyUsedBucket) {
  OracleServiceConfig cfg;
  cfg.max_entries = 2;
  OracleService service(oracle_, cfg);
  OdtInput base = dataset_->split.test[0].odt;
  auto at_hour = [&](int64_t k) {
    OdtInput odt = base;
    odt.departure_time += k * 3600;  // one bucket per hour with 30-min slots
    return odt;
  };
  ASSERT_TRUE(service.Query(at_hour(0)).ok());
  ASSERT_TRUE(service.Query(at_hour(1)).ok());
  EXPECT_EQ(service.cache_size(), 2);
  EXPECT_EQ(service.stats().evictions, 0);
  // Third distinct bucket evicts the oldest (hour 0), never the whole cache.
  ASSERT_TRUE(service.Query(at_hour(2)).ok());
  EXPECT_EQ(service.cache_size(), 2);
  EXPECT_EQ(service.stats().evictions, 1);
  // Hour 1 and 2 survived; hour 0 is gone.
  ASSERT_TRUE(service.Query(at_hour(1)).ok());
  ASSERT_TRUE(service.Query(at_hour(2)).ok());
  EXPECT_EQ(service.stats().cache_hits, 2);
  ASSERT_TRUE(service.Query(at_hour(0)).ok());
  EXPECT_EQ(service.stats().cache_hits, 2);
  EXPECT_EQ(service.stats().evictions, 2);
}

TEST_F(OracleServiceFixture, CacheHitRefreshesRecency) {
  OracleServiceConfig cfg;
  cfg.max_entries = 2;
  OracleService service(oracle_, cfg);
  OdtInput base = dataset_->split.test[1].odt;
  auto at_hour = [&](int64_t k) {
    OdtInput odt = base;
    odt.departure_time += k * 3600;
    return odt;
  };
  ASSERT_TRUE(service.Query(at_hour(0)).ok());
  ASSERT_TRUE(service.Query(at_hour(1)).ok());
  // Touching hour 0 makes hour 1 the LRU victim for the next insert.
  ASSERT_TRUE(service.Query(at_hour(0)).ok());
  ASSERT_TRUE(service.Query(at_hour(2)).ok());
  ASSERT_TRUE(service.Query(at_hour(0)).ok());
  EXPECT_EQ(service.stats().cache_hits, 2);
  EXPECT_EQ(service.stats().evictions, 1);
}

TEST_F(OracleServiceFixture, WarmEvictsWhenOverCapacity) {
  OracleServiceConfig cfg;
  cfg.max_entries = 3;
  OracleService service(oracle_, cfg);
  std::vector<OdtInput> odts;
  OdtInput base = dataset_->split.test[2].odt;
  for (int64_t k = 0; k < 6; ++k) {
    OdtInput odt = base;
    odt.departure_time += k * 3600;
    odts.push_back(odt);
  }
  ASSERT_TRUE(service.Warm(odts).ok());
  EXPECT_EQ(service.cache_size(), 3);
  EXPECT_EQ(service.stats().evictions, 3);
}

TEST_F(OracleServiceFixture, ScriptedWorkloadAccountsHitsMissesDedup) {
  OracleService service(oracle_);
  OdtInput q0 = dataset_->split.test[0].odt;
  OdtInput q1 = dataset_->split.test[0].odt;
  q1.departure_time += 6 * 3600;  // distinct slot -> distinct bucket
  OdtInput q2 = dataset_->split.test[0].odt;
  q2.departure_time += 12 * 3600;

  // Wave 1, cold cache: q0 misses, its duplicate free-rides on the same
  // miss-fill (dedup hit, NOT a cache hit), q1 misses.
  Result<std::vector<DotEstimate>> wave1 = service.QueryBatch({q0, q0, q1});
  ASSERT_TRUE(wave1.ok());
  OracleServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 3);
  EXPECT_EQ(stats.batch_queries, 1);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.dedup_hits, 1);
  EXPECT_EQ(stats.cache_misses, 2);
  // Both duplicates resolved to the same miss-fill.
  EXPECT_DOUBLE_EQ((*wave1)[0].minutes, (*wave1)[1].minutes);

  // Wave 2: q0 and q1 are now cached; q2 is a fresh miss.
  ASSERT_TRUE(service.QueryBatch({q0, q1, q2}).ok());
  stats = service.stats();
  EXPECT_EQ(stats.queries, 6);
  EXPECT_EQ(stats.cache_hits, 2);
  EXPECT_EQ(stats.dedup_hits, 1);
  EXPECT_EQ(stats.cache_misses, 3);

  // Single-query path: one warm hit, one cold miss on a fourth bucket.
  ASSERT_TRUE(service.Query(q2).ok());
  OdtInput q3 = dataset_->split.test[0].odt;
  q3.departure_time += 18 * 3600;
  ASSERT_TRUE(service.Query(q3).ok());
  stats = service.stats();
  EXPECT_EQ(stats.queries, 8);
  EXPECT_EQ(stats.cache_hits, 3);
  EXPECT_EQ(stats.cache_misses, 4);
  EXPECT_EQ(stats.evictions, 0);
  // hit_rate counts dedup free-riders: (3 + 1) / 8.
  EXPECT_NEAR(stats.hit_rate(), 0.5, 1e-12);

  // The same workload shows up in the process-wide metrics export.
  std::string text = obs::MetricsToPrometheusText();
  EXPECT_NE(text.find("dot_service_queries_total"), std::string::npos);
  EXPECT_NE(text.find("dot_service_dedup_hits_total"), std::string::npos);
  EXPECT_NE(text.find("dot_service_batch_latency_us_count"), std::string::npos);
  obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  EXPECT_GE(snap.counters.at("dot_service_queries_total"), 8);
  EXPECT_GE(snap.counters.at("dot_service_dedup_hits_total"), 1);
  EXPECT_GE(snap.histograms.at("dot_service_query_latency_us").count, 2);
  EXPECT_GT(snap.histograms.at("dot_service_query_latency_us").p50, 0.0);
  EXPECT_GE(snap.histograms.at("dot_service_batch_size").count, 2);
}

TEST_F(OracleServiceFixture, QueryBatchTraceHasNestedSpans) {
  OracleService service(oracle_);
  std::vector<OdtInput> wave;
  for (size_t i = 0; i < 3; ++i) wave.push_back(dataset_->split.test[i].odt);
  obs::StartTracing();
  ASSERT_TRUE(service.QueryBatch(wave).ok());
  std::vector<obs::TraceEvent> events = obs::StopTracing();

  auto find = [&](const std::string& name) -> const obs::TraceEvent* {
    for (const auto& e : events) {
      if (e.name == name) return &e;
    }
    return nullptr;
  };
  const obs::TraceEvent* batch = find("OracleService::QueryBatch");
  const obs::TraceEvent* infer = find("DotOracle::InferPits");
  const obs::TraceEvent* stage2 = find("DotOracle::EstimateFromPits");
  const obs::TraceEvent* step = find("reverse_step");
  const obs::TraceEvent* conv = find("conv2d");
  ASSERT_NE(batch, nullptr);
  ASSERT_NE(infer, nullptr);
  ASSERT_NE(stage2, nullptr);
  ASSERT_NE(step, nullptr);
  ASSERT_NE(conv, nullptr);

  // The acceptance chain: service -> oracle stage 1 -> per-reverse-step ->
  // conv ops, plus the stage-2 pass under the same service span.
  EXPECT_EQ(infer->parent_id, batch->id);
  EXPECT_EQ(stage2->parent_id, batch->id);
  auto by_id = [&](uint64_t id) -> const obs::TraceEvent* {
    for (const auto& e : events) {
      if (e.id == id) return &e;
    }
    return nullptr;
  };
  // reverse_step sits under the sampler span, which sits under InferPits.
  const obs::TraceEvent* sampler = by_id(step->parent_id);
  ASSERT_NE(sampler, nullptr);
  EXPECT_EQ(sampler->parent_id, infer->id);
  EXPECT_FALSE(step->args.empty()) << "reverse_step must carry its step index";
  // At least one conv span is a child of a reverse step.
  bool conv_under_step = false;
  for (const auto& e : events) {
    if (e.name != "conv2d") continue;
    const obs::TraceEvent* parent = by_id(e.parent_id);
    if (parent != nullptr && parent->name == "reverse_step") {
      conv_under_step = true;
      break;
    }
  }
  EXPECT_TRUE(conv_under_step);

  // And the export is a loadable chrome trace.
  std::string json = obs::ToChromeJson(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("OracleService::QueryBatch"), std::string::npos);
}

TEST_F(OracleServiceFixture, TracingDoesNotChangeBatchResults) {
  // Tracing must not perturb the serving path: a wave answered under
  // tracing and its cached re-issue (tracing off) agree exactly.
  OracleService service(oracle_);
  std::vector<OdtInput> wave;
  for (size_t i = 0; i < 2; ++i) wave.push_back(dataset_->split.test[i].odt);
  obs::StartTracing();
  Result<std::vector<DotEstimate>> traced = service.QueryBatch(wave);
  obs::StopTracing();
  ASSERT_TRUE(traced.ok());
  Result<std::vector<DotEstimate>> cached = service.QueryBatch(wave);
  ASSERT_TRUE(cached.ok());
  for (size_t i = 0; i < wave.size(); ++i) {
    EXPECT_DOUBLE_EQ((*traced)[i].minutes, (*cached)[i].minutes);
  }
}

TEST_F(OracleServiceFixture, ConcurrentQueriesKeepStatsConsistent) {
  OracleServiceConfig cfg;
  cfg.max_entries = 4;  // small enough to force concurrent evictions
  OracleService service(oracle_, cfg);
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 3;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        OdtInput odt = dataset_->split.test[(t + i) % 6].odt;
        odt.departure_time += t * 3600;
        if (t % 2 == 0) {
          if (!service.Query(odt).ok()) ++failures;
        } else {
          OdtInput other = dataset_->split.test[(t + i + 1) % 6].odt;
          Result<std::vector<DotEstimate>> r = service.QueryBatch({odt, other});
          if (!r.ok() || r->size() != 2) ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  OracleServiceStats stats = service.stats();
  // Half the threads issue 1 query per iteration, half issue 2.
  EXPECT_EQ(stats.queries, kThreads / 2 * kItersPerThread * 3);
  EXPECT_EQ(stats.batch_queries, kThreads / 2 * kItersPerThread);
  EXPECT_LE(stats.cache_hits, stats.queries);
  EXPECT_LE(service.cache_size(), cfg.max_entries);
}

}  // namespace
}  // namespace dot
