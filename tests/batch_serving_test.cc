// Batch-vs-single equivalence tests for the batched serving path: a wave
// answered by EstimateBatch / QueryBatch must be bitwise identical to the
// same queries issued sequentially against identical oracle state (the
// samplers fork one noise stream per query, in query order), so batching
// is purely a throughput optimization.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle_service.h"

namespace dot {
namespace {

// Exercise the parallel conv/GEMM partitioning even on single-core boxes;
// the kernels are deterministic for any thread count, which is exactly what
// these equivalence tests certify end to end.
const bool kForceThreads = [] {
  setenv("DOT_NUM_THREADS", "4", /*overwrite=*/0);
  return true;
}();

class BatchServingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 4);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 200;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 17, "batch"));
    grid_ = new Grid(dataset_->MakeGrid(8).ValueOrDie());
    config_ = new DotConfig();
    config_->grid_size = 8;
    config_->diffusion_steps = 20;
    config_->sample_steps = 4;
    config_->unet.base_channels = 8;
    config_->unet.levels = 2;
    config_->unet.cond_dim = 32;
    config_->estimator.embed_dim = 32;
    config_->estimator.layers = 1;
    config_->stage1_epochs = 1;
    config_->stage2_epochs = 1;
    config_->val_samples = 0;
    config_->stage2_inferred_fraction = 0.0;
    DotOracle trained(*config_, *grid_);
    ASSERT_TRUE(trained.TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        trained.TrainStage2(dataset_->split.train, dataset_->split.val).ok());
    checkpoint_ = ::testing::TempDir() + "/batch_serving_oracle.bin";
    ASSERT_TRUE(trained.SaveFile(checkpoint_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(checkpoint_.c_str());
    delete config_;
    delete grid_;
    delete dataset_;
    delete city_;
    config_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }

  /// A trained oracle with a *fresh* sampling RNG: loading the checkpoint
  /// into a newly constructed oracle leaves rng_ at its seed state, so two
  /// clones start bitwise identical — the precondition for comparing a
  /// batched call on one against sequential calls on the other.
  static std::unique_ptr<DotOracle> NewClone() {
    auto oracle = std::make_unique<DotOracle>(*config_, *grid_);
    EXPECT_TRUE(oracle->LoadFile(checkpoint_).ok());
    return oracle;
  }

  static const OdtInput& TestOdt(size_t i) {
    return dataset_->split.test[i].odt;
  }

  static void ExpectSamePit(const Pit& a, const Pit& b, size_t query) {
    ASSERT_EQ(a.tensor().numel(), b.tensor().numel());
    for (int64_t j = 0; j < a.tensor().numel(); ++j) {
      ASSERT_EQ(a.tensor().at(j), b.tensor().at(j))
          << "query " << query << " pit element " << j;
    }
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotConfig* config_;
  static std::string checkpoint_;
};

City* BatchServingFixture::city_ = nullptr;
BenchmarkDataset* BatchServingFixture::dataset_ = nullptr;
Grid* BatchServingFixture::grid_ = nullptr;
DotConfig* BatchServingFixture::config_ = nullptr;
std::string BatchServingFixture::checkpoint_;

TEST_F(BatchServingFixture, EstimateBatchMatchesSequentialEstimates) {
  auto batched_oracle = NewClone();
  auto single_oracle = NewClone();
  std::vector<OdtInput> odts = {TestOdt(0), TestOdt(1), TestOdt(2)};
  Result<std::vector<DotEstimate>> batched = batched_oracle->EstimateBatch(odts);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), odts.size());
  for (size_t i = 0; i < odts.size(); ++i) {
    Result<DotEstimate> single = single_oracle->Estimate(odts[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_DOUBLE_EQ((*batched)[i].minutes, single->minutes) << "query " << i;
    ExpectSamePit((*batched)[i].pit, single->pit, i);
  }
}

TEST_F(BatchServingFixture, EstimateBatchOfOneMatchesEstimate) {
  auto a = NewClone();
  auto b = NewClone();
  Result<std::vector<DotEstimate>> batch = a->EstimateBatch({TestOdt(3)});
  Result<DotEstimate> single = b->Estimate(TestOdt(3));
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_DOUBLE_EQ((*batch)[0].minutes, single->minutes);
  ExpectSamePit((*batch)[0].pit, single->pit, 0);
}

TEST_F(BatchServingFixture, EstimateBatchEmptyInputReturnsEmpty) {
  auto oracle = NewClone();
  Result<std::vector<DotEstimate>> r = oracle->EstimateBatch({});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST_F(BatchServingFixture, UntrainedOracleFailsPrecondition) {
  DotOracle untrained(*config_, *grid_);
  EXPECT_FALSE(untrained.trained());
  EXPECT_FALSE(untrained.EstimateBatch({TestOdt(0)}).ok());
  OracleService service(&untrained);
  EXPECT_FALSE(service.Query(TestOdt(0)).ok());
  EXPECT_FALSE(service.QueryBatch({TestOdt(0)}).ok());
}

TEST_F(BatchServingFixture, QueryBatchMatchesSequentialQueriesOnColdCache) {
  auto batched_oracle = NewClone();
  auto single_oracle = NewClone();
  OracleService batched_service(batched_oracle.get());
  OracleService single_service(single_oracle.get());
  // Includes a later duplicate of query 1's bucket: sequentially it is a
  // cache hit, batched it reuses the wave's single miss-fill — same PiT
  // either way.
  OdtInput dup = TestOdt(1);
  dup.departure_time += 30;
  std::vector<OdtInput> wave = {TestOdt(0), TestOdt(1), TestOdt(2), dup};
  Result<std::vector<DotEstimate>> batched = batched_service.QueryBatch(wave);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), wave.size());
  for (size_t i = 0; i < wave.size(); ++i) {
    Result<DotEstimate> single = single_service.Query(wave[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_DOUBLE_EQ((*batched)[i].minutes, single->minutes) << "query " << i;
    ExpectSamePit((*batched)[i].pit, single->pit, i);
  }
  EXPECT_EQ(batched_service.stats().queries, single_service.stats().queries);
  // Sequentially the duplicate is a warm cache hit; batched it rides along
  // on the wave's single miss-fill and is accounted as a dedup hit. Either
  // way exactly one query skipped stage-1 sampling.
  EXPECT_EQ(single_service.stats().cache_hits, 1);
  EXPECT_EQ(batched_service.stats().cache_hits, 0);
  EXPECT_EQ(batched_service.stats().dedup_hits, 1);
  EXPECT_DOUBLE_EQ(batched_service.stats().hit_rate(),
                   single_service.stats().hit_rate());
}

TEST_F(BatchServingFixture, QueryBatchPartitionsHitsAndMisses) {
  auto oracle = NewClone();
  OracleService service(oracle.get());
  ASSERT_TRUE(service.Query(TestOdt(0)).ok());  // pre-fill one bucket
  OdtInput dup = TestOdt(1);
  dup.departure_time += 30;  // same bucket as TestOdt(1)
  Result<std::vector<DotEstimate>> r =
      service.QueryBatch({TestOdt(0), TestOdt(1), TestOdt(2), dup});
  ASSERT_TRUE(r.ok());
  OracleServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 5);        // 1 single + 4 batch members
  EXPECT_EQ(stats.batch_queries, 1);
  // The pre-filled bucket is a cache hit, the in-wave duplicate is a dedup
  // hit on the wave's miss-fill, and the two new buckets are batched misses.
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.dedup_hits, 1);
  EXPECT_EQ(stats.cache_misses, 3);  // the pre-fill miss + the two new buckets
  EXPECT_EQ(service.cache_size(), 3);
}

TEST_F(BatchServingFixture, RepeatedQueryBatchIsFullyCached) {
  auto oracle = NewClone();
  OracleService service(oracle.get());
  std::vector<OdtInput> wave = {TestOdt(0), TestOdt(1), TestOdt(2)};
  Result<std::vector<DotEstimate>> first = service.QueryBatch(wave);
  ASSERT_TRUE(first.ok());
  Result<std::vector<DotEstimate>> second = service.QueryBatch(wave);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service.stats().cache_hits, 3);
  for (size_t i = 0; i < wave.size(); ++i) {
    // The cached PiT feeds the same stage-2 estimator: identical answers.
    EXPECT_DOUBLE_EQ((*first)[i].minutes, (*second)[i].minutes);
  }
}

}  // namespace
}  // namespace dot
