// Reproducibility tests: every stochastic component is seed-deterministic,
// so whole pipelines must reproduce bit-for-bit given the same seeds.

#include <gtest/gtest.h>

#include "core/unet.h"
#include "eval/dataset.h"
#include "sim/city.h"
#include "sim/trips.h"

namespace dot {
namespace {

TEST(Determinism, DatasetBuildsIdentically) {
  CityConfig cc = CityConfig::ChengduLike();
  cc.grid_nodes = 8;
  cc.spacing_meters = 1300;
  City city_a(cc, 5), city_b(cc, 5);
  TripConfig tc = TripConfig::ChengduLike();
  tc.num_trips = 120;
  BenchmarkDataset a = BuildDataset(city_a, tc, 77, "a");
  BenchmarkDataset b = BuildDataset(city_b, tc, 77, "b");
  ASSERT_EQ(a.split.train.size(), b.split.train.size());
  ASSERT_EQ(a.split.test.size(), b.split.test.size());
  for (size_t i = 0; i < a.split.train.size(); ++i) {
    EXPECT_EQ(a.split.train[i].odt.departure_time,
              b.split.train[i].odt.departure_time);
    EXPECT_DOUBLE_EQ(a.split.train[i].travel_time_minutes,
                     b.split.train[i].travel_time_minutes);
    EXPECT_EQ(a.split.train[i].odt.origin, b.split.train[i].odt.origin);
  }
}

TEST(Determinism, DifferentSeedsDifferentTrips) {
  CityConfig cc = CityConfig::ChengduLike();
  cc.grid_nodes = 8;
  cc.spacing_meters = 1300;
  City city(cc, 5);
  TripConfig tc = TripConfig::ChengduLike();
  tc.num_trips = 60;
  TripGenerator g1(&city, 1), g2(&city, 2);
  auto t1 = g1.Generate(tc);
  auto t2 = g2.Generate(tc);
  int64_t same = 0;
  for (size_t i = 0; i < t1.size(); ++i) {
    if (t1[i].odt.departure_time == t2[i].odt.departure_time) ++same;
  }
  EXPECT_LT(same, static_cast<int64_t>(t1.size()) / 4);
}

TEST(Determinism, UnetForwardIsSeedDeterministic) {
  UnetConfig cfg;
  cfg.base_channels = 8;
  cfg.levels = 2;
  cfg.cond_dim = 16;
  cfg.max_steps = 50;
  Rng rng_a(9), rng_b(9);
  UnetDenoiser a(cfg, &rng_a);
  UnetDenoiser b(cfg, &rng_b);
  Rng in_rng(10);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, &in_rng);
  Tensor cond = Tensor::Zeros({1, 5});
  NoGradGuard guard;
  Tensor ya = a.PredictNoise(x, {3}, cond);
  Tensor yb = b.PredictNoise(x, {3}, cond);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya.at(i), yb.at(i));
}

TEST(Determinism, SpatialConditionFlagChangesArchitecture) {
  UnetConfig with = {};
  with.base_channels = 8;
  with.levels = 2;
  with.cond_dim = 16;
  with.max_steps = 50;
  UnetConfig without = with;
  without.spatial_condition = false;
  Rng r1(1), r2(1);
  UnetDenoiser a(with, &r1);
  UnetDenoiser b(without, &r2);
  // The stem consumes 3 extra channels when spatial conditioning is on.
  EXPECT_GT(a.NumParams(), b.NumParams());
  // The no-spatial variant still runs.
  Rng in_rng(2);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, &in_rng);
  NoGradGuard guard;
  Tensor y = b.PredictNoise(x, {1}, Tensor::Zeros({1, 5}));
  EXPECT_EQ(y.shape(), x.shape());
}

}  // namespace
}  // namespace dot
